module mtvp

go 1.22
