// Package mtvp's benchmark harness regenerates every table and figure of
// the paper's evaluation as Go benchmarks: each BenchmarkFigN/BenchmarkTable
// runs the corresponding experiment on the full SPEC stand-in suite (at a
// reduced per-run instruction budget so the whole harness stays tractable)
// and reports the paper's headline numbers as custom metrics. Use
// cmd/mtvpbench for full-fidelity regeneration with printed tables.
package mtvp_test

import (
	"strings"
	"testing"

	"mtvp/internal/bpred"
	"mtvp/internal/cache"
	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/experiments"
	"mtvp/internal/mem"
	"mtvp/internal/stats"
	"mtvp/internal/storebuf"
	"mtvp/internal/vpred"
	"mtvp/internal/workload"
)

// benchOpts returns experiment options scaled for the benchmark harness.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Insts = 40_000
	return o
}

// avgRow extracts the named row's last-column value (the most aggressive
// machine) from a table, for ReportMetric.
func reportAverages(b *testing.B, tables []*stats.Table) {
	b.Helper()
	for _, tab := range tables {
		for _, r := range tab.Rows {
			if r.Name != "average" && r.Name != "AVG INT" && r.Name != "AVG FP" {
				continue
			}
			suite := "int"
			if r.Name == "AVG FP" || strings.Contains(tab.Title, "FP") {
				suite = "fp"
			}
			b.ReportMetric(r.Values[len(r.Values)-1], "avgpct-"+suite)
		}
	}
}

// BenchmarkTable1Baseline runs every benchmark on the Table 1 baseline and
// reports the suite's mean IPC (the denominator of every figure).
func BenchmarkTable1Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum float64
		benches := workload.All()
		for _, w := range benches {
			cfg := core.Baseline()
			cfg.MaxInsts = 40_000
			prog, image := w.Build(1)
			res, err := core.Run(cfg, prog, image)
			if err != nil {
				b.Fatal(err)
			}
			sum += res.IPC()
		}
		b.ReportMetric(sum/float64(len(benches)), "mean-ipc")
	}
}

// BenchmarkFig1OracleMTVP regenerates Figure 1 (oracle value prediction,
// STVP vs MTVP 2/4/8).
func BenchmarkFig1OracleMTVP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkFig2SpawnLatency regenerates Figure 2 (spawn latency 1/8/16).
func BenchmarkFig2SpawnLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkStoreBufferSweep regenerates the §5.3 store-buffer size sweep.
func BenchmarkStoreBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.StoreBufferSweep(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, []*stats.Table{tab})
	}
}

// BenchmarkFig3RealisticWF regenerates Figure 3 (Wang–Franklin predictor).
func BenchmarkFig3RealisticWF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkDFCMvsWF regenerates the §5.4 DFCM comparison.
func BenchmarkDFCMvsWF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.DFCMCompare(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkFig4FetchPolicy regenerates Figure 4 (no-stall vs single fetch
// path).
func BenchmarkFig4FetchPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkFig5MultiValuePotential regenerates Figure 5 (wrong primary,
// correct value present and over threshold).
func BenchmarkFig5MultiValuePotential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, tab := range tables {
			for _, r := range tab.Rows {
				sum += r.Values[0]
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n), "mean-fraction")
		}
	}
}

// BenchmarkMultiValueMTVP regenerates the §5.6 multiple-value experiment.
func BenchmarkMultiValueMTVP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.MultiValue(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkFig6WideWindow regenerates Figure 6 (wide window vs best MTVP vs
// spawn-only).
func BenchmarkFig6WideWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkAblationPrefetchOff runs the no-prefetcher ablation (the paper
// notes MTVP gains are larger without the stride prefetcher).
func BenchmarkAblationPrefetchOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.PrefetchAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// BenchmarkAblationSelectors compares ILP-pred, L3-oracle, and unconditional
// load selection (§5.1).
func BenchmarkAblationSelectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := experiments.SelectorCompare(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportAverages(b, tables)
	}
}

// --- microbenchmarks of the substrates --------------------------------------

// BenchmarkEngineCyclesPerSecond measures raw simulation speed on the mcf
// stand-in under MTVP8 with the realistic predictor.
func BenchmarkEngineCyclesPerSecond(b *testing.B) {
	w, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := core.MTVP(8, config.PredWangFranklin, config.SelILPPred)
		cfg.MaxInsts = 50_000
		prog, image := w.Build(1)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Cycles), "cycles/op")
		b.ReportMetric(float64(res.Stats.Committed), "insts/op")
	}
}

func BenchmarkWangFranklinLookupTrain(b *testing.B) {
	p := vpred.NewWangFranklin(config.DefaultWF(), 0)
	r := mem.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%256) * 4
		p.Lookup(pc, 0)
		p.Train(pc, r.Next()>>48)
	}
}

func BenchmarkDFCMLookupTrain(b *testing.B) {
	p := vpred.NewDFCM(config.DefaultDFCM())
	r := mem.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%256) * 4
		p.Lookup(pc, 0)
		p.Train(pc, r.Next()>>48)
	}
}

func Benchmark2bcgskew(b *testing.B) {
	p := bpred.New2bcgskew(core.Baseline().Branch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(i%512) * 4
		taken := i%3 != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkCacheHierarchyLoad(b *testing.B) {
	cfg := core.Baseline()
	st := &stats.Stats{}
	h := cache.NewHierarchy(&cfg, st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0x44, uint64(i%100_000)*64, int64(i))
	}
}

func BenchmarkOverlayChainLoad(b *testing.B) {
	m := mem.New()
	top := storebuf.New(m)
	for d := 0; d < 8; d++ {
		for a := uint64(0); a < 64; a++ {
			top.Store(a*8, 8, uint64(d))
		}
		tops := top.Fork(2)
		tops[1].Release()
		top = tops[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.Load(uint64(i%64)*8, 8)
	}
}
