// Quickstart: simulate one benchmark on the baseline machine and on
// multithreaded value prediction, and report the speedup — the smallest
// complete use of the library's public API.
package main

import (
	"fmt"
	"log"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

func main() {
	bench, err := workload.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}

	// Every run needs a freshly built program + memory image.
	run := func(cfg config.Config) *core.Result {
		cfg.MaxInsts = 150_000
		prog, image := bench.Build(1)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(core.Baseline())
	mtvp := run(core.MTVP(4, config.PredWangFranklin, config.SelILPPred))

	fmt.Printf("benchmark      %s (SPEC INT stand-in)\n", bench.Name)
	fmt.Printf("baseline IPC   %.4f\n", base.IPC())
	fmt.Printf("mtvp4 IPC      %.4f\n", mtvp.IPC())
	fmt.Printf("speedup        %+.1f%%\n", stats.SpeedupPct(base.IPC(), mtvp.IPC()))
	fmt.Printf("spawned %d speculative threads, %d confirmed, %d killed\n",
		mtvp.Stats.Spawns, mtvp.Stats.Confirms, mtvp.Stats.Kills)
}
