// Fpstream: reproduce the paper's floating-point observation in miniature.
// Traditional single-threaded value prediction shows almost nothing on FP
// codes — not because FP values lack locality, but because the prediction
// model is wrong for them: the window fills behind the stalled load. A
// spawned thread that can commit past the load turns the same predictions
// into real speedup (§1, §5.4).
package main

import (
	"fmt"
	"log"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

func main() {
	// A swim-like multi-grid sweep: nine source arrays overwhelm the
	// eight stream buffers, and plane boundaries break the strides, so
	// plenty of misses survive the prefetcher. Values repeat in runs
	// (piecewise-smooth grids), so the predictor covers them easily.
	bench := workload.Stream("demo-fpstream", workload.FP, workload.StreamParams{
		Arrays:      9,
		Len:         96 << 10,
		BlockLen:    64,
		PoolSize:    8,
		DominantPct: 80,
		ReusePct:    15,
		Stride:      8,
		JumpEvery:   512,
		JumpBytes:   4096,
		BodyOps:     35,
		FP:          true,
		Iters:       1 << 20,
	})
	gather := workload.Gather("demo-gather", workload.FP, workload.GatherParams{
		Items:       96 << 10,
		TableLen:    1 << 21,
		PoolSize:    6,
		DominantPct: 93,
		ReusePct:    5,
		FPData:      true,
		StoreOut:    true,
		BodyOps:     45,
		Iters:       1 << 20,
	})

	run := func(b workload.Benchmark, cfg config.Config) float64 {
		cfg.MaxInsts = 150_000
		prog, image := b.Build(1)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC()
	}

	for _, b := range []workload.Benchmark{bench, gather} {
		base := run(b, core.Baseline())
		stvp := run(b, core.STVP(config.PredWangFranklin, config.SelILPPred))
		mtvp := run(b, core.MTVP(8, config.PredWangFranklin, config.SelILPPred))
		fmt.Printf("%s:\n", b.Name)
		fmt.Printf("  baseline IPC %.4f\n", base)
		fmt.Printf("  stvp         %+7.1f%%   (traditional VP: little to show on FP)\n",
			stats.SpeedupPct(base, stvp))
		fmt.Printf("  mtvp8        %+7.1f%%   (same predictor, threaded)\n\n",
			stats.SpeedupPct(base, mtvp))
	}
}
