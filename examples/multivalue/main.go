// Multivalue: demonstrate following several predicted values for one load
// (§5.6). A load whose value distribution has two or three strong modes is
// mispredicted often with a single value, but with multiple contexts the
// machine can follow every over-threshold candidate and keep whichever
// matches — turning near-misses (Figure 5's "correct value present and over
// threshold") into confirmed speculation.
package main

import (
	"fmt"
	"log"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

func main() {
	// Cache-resident compute with a periodic long-latency load whose value
	// splits 50/50 across two modes: single-value prediction guesses wrong
	// half the time (killing its speculative thread), while following both
	// candidate values keeps the run-ahead alive either way — the §5.6
	// scenario, using the liberal predictor plus the discriminating
	// L3-miss-oracle criticality selector.
	bench := workload.Blocked("demo-multival", workload.INT, workload.BlockedParams{
		WorkingSet:   16 << 10,
		MulChain:     1,
		SideTableLen: 1 << 20,
		SideEvery:    12,
		SideDominant: 50,
		Iters:        1 << 20,
	})

	run := func(cfg config.Config) *core.Result {
		cfg.MaxInsts = 250_000
		prog, image := bench.Build(1)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(core.Baseline())
	single := run(core.MTVP(8, config.PredWangFranklin, config.SelL3Oracle))
	multi := run(core.MTVPMultiValue(8, 2, 2))

	fmt.Printf("baseline IPC %.4f\n\n", base.IPC())
	fmt.Printf("single-value mtvp8:  %+6.1f%%  (vp acc %.3f, wrong-but-present %d)\n",
		stats.SpeedupPct(base.IPC(), single.IPC()),
		single.Stats.VPAccuracy(), single.Stats.VPWrongButPresent)
	fmt.Printf("multi-value  mtvp8:  %+6.1f%%  (vp acc %.3f, saved by alternate %d)\n",
		stats.SpeedupPct(base.IPC(), multi.IPC()),
		multi.Stats.VPAccuracy(), multi.Stats.MultiValueSaves)
}
