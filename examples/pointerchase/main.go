// Pointerchase: build a custom mcf-style linked-structure workload with the
// archetype API and sweep the number of hardware contexts, showing how
// threaded value prediction converts value-predictable pointer loads into
// memory-level parallelism that a single thread's window cannot reach.
package main

import (
	"fmt"
	"log"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

func main() {
	// A 16MB structure walked mostly in allocation order: next pointers
	// are stride-predictable inside runs, payloads are mostly one value.
	bench := workload.PointerChase("demo-chase", workload.INT, workload.ChaseParams{
		Nodes:       1 << 18,
		NodeBytes:   64,
		PoolSize:    8,
		DominantPct: 92,
		ReusePct:    5,
		SeqPct:      85,
		BodyOps:     64,
		Iters:       1 << 20,
	})

	run := func(cfg config.Config) float64 {
		cfg.MaxInsts = 150_000
		prog, image := bench.Build(1)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			log.Fatal(err)
		}
		return res.IPC()
	}

	base := run(core.Baseline())
	fmt.Printf("baseline IPC %.4f\n\n", base)
	fmt.Printf("%-28s %10s %10s\n", "machine", "IPC", "speedup")

	stvp := run(core.STVP(config.PredWangFranklin, config.SelILPPred))
	fmt.Printf("%-28s %10.4f %+9.1f%%\n", "stvp (Wang-Franklin)", stvp, stats.SpeedupPct(base, stvp))

	for _, n := range []int{2, 4, 8} {
		ipc := run(core.MTVP(n, config.PredWangFranklin, config.SelILPPred))
		name := fmt.Sprintf("mtvp%d (Wang-Franklin)", n)
		fmt.Printf("%-28s %10.4f %+9.1f%%\n", name, ipc, stats.SpeedupPct(base, ipc))
	}
}
