package config

import "testing"

func TestBaselineMatchesTable1(t *testing.T) {
	c := Baseline()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"FetchWidth", c.FetchWidth, 16},
		{"FetchBlocks", c.FetchBlocks, 2},
		{"ROBSize", c.ROBSize, 256},
		{"RenameRegs", c.RenameRegs, 224},
		{"IQSize", c.IQSize, 64},
		{"FQSize", c.FQSize, 64},
		{"MQSize", c.MQSize, 64},
		{"IssueWidth", c.IssueWidth, 8},
		{"IntIssue", c.IntIssue, 6},
		{"FPIssue", c.FPIssue, 2},
		{"MemIssue", c.MemIssue, 4},
		{"ICache size", c.ICache.SizeBytes, 64 << 10},
		{"ICache assoc", c.ICache.Assoc, 2},
		{"ICache latency", c.ICache.Latency, 2},
		{"DL1 size", c.DL1.SizeBytes, 64 << 10},
		{"DL1 latency", c.DL1.Latency, 2},
		{"L2 size", c.L2.SizeBytes, 512 << 10},
		{"L2 assoc", c.L2.Assoc, 8},
		{"L2 latency", c.L2.Latency, 20},
		{"L3 size", c.L3.SizeBytes, 4 << 20},
		{"L3 assoc", c.L3.Assoc, 16},
		{"L3 latency", c.L3.Latency, 50},
		{"MemLatency", c.MemLatency, 1000},
		{"Prefetch entries", c.Prefetch.Entries, 256},
		{"Stream buffers", c.Prefetch.StreamBuffers, 8},
		{"Meta entries", c.Branch.MetaEntries, 64 << 10},
		{"Bimodal entries", c.Branch.BimodalEntries, 16 << 10},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestWFDefaultsMatchPaper(t *testing.T) {
	wf := DefaultWF()
	if wf.VHTEntries != 4096 || wf.ValPHTEntries != 32768 {
		t.Errorf("WF tables %d/%d, want 4K/32K", wf.VHTEntries, wf.ValPHTEntries)
	}
	if wf.LearnedValues != 5 || wf.ConfInc != 1 || wf.ConfDec != 8 ||
		wf.Threshold != 12 || wf.ConfMax != 32 {
		t.Errorf("WF confidence parameters deviate from §5.4: %+v", wf)
	}
}

func TestPresets(t *testing.T) {
	base := Baseline()

	stvp := base.WithSTVP(PredWangFranklin, SelILPPred)
	if stvp.VP.Mode != VPSTVP || stvp.Contexts != 1 {
		t.Errorf("STVP preset: %+v", stvp.VP)
	}

	mtvp := base.WithMTVP(8, PredOracle, SelL3Oracle)
	if mtvp.VP.Mode != VPMTVP || mtvp.Contexts != 8 ||
		mtvp.VP.Predictor != PredOracle || mtvp.VP.Selector != SelL3Oracle {
		t.Errorf("MTVP preset: %+v contexts=%d", mtvp.VP, mtvp.Contexts)
	}

	ww := base.WideWindow()
	if ww.ROBSize != 8192 || ww.IQSize != 8192 || ww.VP.Mode != VPNone {
		t.Errorf("wide-window preset: rob=%d iq=%d", ww.ROBSize, ww.IQSize)
	}
	if err := ww.Validate(); err != nil {
		t.Errorf("wide-window invalid: %v", err)
	}

	so := base.SpawnOnly(4)
	if !so.VP.SpawnOnly || so.VP.Mode != VPMTVP || so.Contexts != 4 {
		t.Errorf("spawn-only preset: %+v", so.VP)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Contexts = 0 },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.MemLatency = 0 },
		func(c *Config) { c.VP.Mode = VPMTVP; c.Contexts = 1 },
		func(c *Config) { c.VP.SpawnLatency = -1 },
		func(c *Config) { c.VP.MultiValue = true; c.VP.MaxValuesPerLoad = 1 },
		func(c *Config) { c.DL1.SizeBytes = 48 << 10 }, // non-power-of-two sets
	}
	for i, mutate := range bad {
		c := Baseline()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cp := CacheParams{SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64}
	if s := cp.Sets(); s != 512 {
		t.Errorf("sets = %d, want 512", s)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		VPNone.String(), VPSTVP.String(), VPMTVP.String(),
		PredOracle.String(), PredWangFranklin.String(), PredDFCM.String(),
		SelILPPred.String(), SelL3Oracle.String(),
		FetchSFP.String(), FetchNoStall.String(),
	} {
		if s == "" || s == "pred?" {
			t.Errorf("bad stringer output %q", s)
		}
	}
}
