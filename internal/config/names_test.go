package config

import (
	"errors"
	"strings"
	"testing"
)

// TestParsePredictorRegistry round-trips every registered predictor name
// through ParsePredictor and the kind's String form: the registry and the
// stringers can never disagree.
func TestParsePredictorRegistry(t *testing.T) {
	names := PredictorNames()
	if len(names) != int(predKinds) {
		t.Fatalf("PredictorNames has %d entries for %d kinds", len(names), int(predKinds))
	}
	for _, name := range names {
		k, err := ParsePredictor(name)
		if err != nil {
			t.Fatalf("ParsePredictor(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParsePredictor(%q) = %v, which strings as %q", name, k, k.String())
		}
	}
	// Historical CLI aliases keep resolving.
	for alias, want := range map[string]PredictorKind{
		"dfcm": PredDFCM, "fcm": PredFCM, "vpq": PredVPQStride, "eq": PredEqualityLCV,
	} {
		if k, err := ParsePredictor(alias); err != nil || k != want {
			t.Errorf("ParsePredictor(%q) = %v, %v; want %v", alias, k, err, want)
		}
	}
}

// TestParseUnknownNamesStructured checks the structured error contract: an
// unknown name yields an *UnknownNameError that names what failed and lists
// every valid choice.
func TestParseUnknownNamesStructured(t *testing.T) {
	cases := []struct {
		what  string
		parse func(string) error
		valid []string
	}{
		{"predictor", func(s string) error { _, err := ParsePredictor(s); return err }, PredictorNames()},
		{"sharing mode", func(s string) error { _, err := ParseSharing(s); return err }, SharingNames()},
		{"selector", func(s string) error { _, err := ParseSelector(s); return err }, SelectorNames()},
	}
	for _, c := range cases {
		err := c.parse("definitely-not-registered")
		if err == nil {
			t.Fatalf("%s: unknown name parsed without error", c.what)
		}
		var ue *UnknownNameError
		if !errors.As(err, &ue) {
			t.Fatalf("%s: error %T is not *UnknownNameError", c.what, err)
		}
		if ue.What != c.what || ue.Name != "definitely-not-registered" {
			t.Errorf("%s: error fields %+v", c.what, ue)
		}
		for _, v := range c.valid {
			if !strings.Contains(err.Error(), v) {
				t.Errorf("%s: error %q does not list valid name %q", c.what, err, v)
			}
		}
	}
}

// TestValidatePredictorAndSharing is the table-driven validation suite for
// the predictor registry: out-of-range kinds and modes must be rejected
// with an error listing the valid names, and every registered combination
// must validate.
func TestValidatePredictorAndSharing(t *testing.T) {
	bad := []struct {
		name    string
		mutate  func(*Config)
		errHint string // substring the error must carry
	}{
		{"predictor kind below range", func(c *Config) { c.VP.Predictor = -1 }, "unknown predictor"},
		{"predictor kind above range", func(c *Config) { c.VP.Predictor = predKinds }, "unknown predictor"},
		{"predictor kind far above range", func(c *Config) { c.VP.Predictor = 99 }, "oracle"},
		{"sharing mode below range", func(c *Config) { c.VP.Sharing = -1 }, "unknown sharing mode"},
		{"sharing mode above range", func(c *Config) { c.VP.Sharing = shareModes }, "partitioned"},
		{"vpq without table", func(c *Config) { c.VP.Predictor = PredVPQStride; c.VP.VPQ.TableEntries = 0 }, "VPQ"},
		{"vpq without queue", func(c *Config) { c.VP.Predictor = PredVPQStride; c.VP.VPQ.QueueEntries = 0 }, "VPQ"},
		{"equality without table", func(c *Config) { c.VP.Predictor = PredEqualityLCV; c.VP.Equality.TableEntries = 0 }, "equality"},
		{"equality without decay period", func(c *Config) { c.VP.Predictor = PredEqualityLCV; c.VP.Equality.DecayPeriod = 0 }, "equality"},
	}
	for _, tc := range bad {
		c := Baseline()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errHint) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.errHint)
		}
	}

	for k := PredictorKind(0); k < predKinds; k++ {
		for m := SharingMode(0); m < shareModes; m++ {
			c := Baseline().WithMTVP(4, k, SelILPPred)
			c.VP.Sharing = m
			if err := c.Validate(); err != nil {
				t.Errorf("registered combination %v/%v rejected: %v", k, m, err)
			}
		}
	}
}
