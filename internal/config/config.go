// Package config defines the architectural parameters of the simulated
// machine. The defaults returned by Baseline reproduce Table 1 of Tuck &
// Tullsen, "Multithreaded Value Prediction" (HPCA-11, 2005); preset helpers
// derive the paper's other machine configurations (STVP, MTVP, spawn-only,
// idealized wide-window) from it.
package config

import "fmt"

// CacheParams describes one cache level.
type CacheParams struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	Latency   int // access latency in cycles on a hit
}

// Sets returns the number of sets implied by size, associativity, and line
// size.
func (c CacheParams) Sets() int {
	return c.SizeBytes / (c.Assoc * c.LineBytes)
}

// PrefetchParams configures the PC-based stride prefetcher of Table 1.
type PrefetchParams struct {
	Enabled       bool
	Entries       int // PC-indexed stride table entries (256)
	StreamBuffers int // concurrent stream buffers (8)
	BufferDepth   int // lines each stream buffer runs ahead
	MinConfidence int // stride repeats required before allocating a stream
}

// BranchParams sizes the 2bcgskew predictor of Table 1.
type BranchParams struct {
	MetaEntries    int // meta chooser (64K)
	GshareEntries  int // gshare/gskew tables (64K)
	BimodalEntries int // bimodal table (16K)
	HistBits       int // global history length
}

// VPMode selects the value-prediction architecture.
type VPMode int

// Value-prediction architectures evaluated in the paper.
const (
	// VPNone disables value prediction (the baseline machine).
	VPNone VPMode = iota
	// VPSTVP is traditional single-threaded value prediction with
	// selective-reissue recovery.
	VPSTVP
	// VPMTVP is threaded value prediction: predicted loads spawn a
	// speculative hardware thread that may commit past the load.
	// Single-thread predictions are still made when no context is free.
	VPMTVP
)

func (m VPMode) String() string {
	switch m {
	case VPSTVP:
		return "stvp"
	case VPMTVP:
		return "mtvp"
	default:
		return "novp"
	}
}

// PredictorKind names a value predictor implementation.
type PredictorKind int

// Value predictors implemented in internal/vpred.
const (
	PredOracle PredictorKind = iota // always-correct (limit study)
	PredWangFranklin
	PredDFCM
	PredFCM
	PredLastValue
	PredStride
	// PredVPQStride is a retire-trained stride predictor with an explicit
	// value prediction queue tracking in-flight instances (721sim style).
	PredVPQStride
	// PredEqualityLCV is an equality predictor over a last-committed-value
	// table with dueling confidence counters and periodic decay (BALCVP).
	PredEqualityLCV

	predKinds // sentinel: number of predictor kinds
)

func (k PredictorKind) String() string {
	if k < 0 || k >= predKinds {
		return "pred?"
	}
	return predictorNames[k]
}

// SharingMode selects how predictor tables are organised across hardware
// contexts (Durbhakula-style shared vs private vs partitioned structures).
// It is orthogonal to the predictor choice.
type SharingMode int

// Predictor table organisations across hardware contexts.
const (
	// ShareShared is one full-size table bank used by every context: maximum
	// capacity per context but subject to cross-context interference.
	ShareShared SharingMode = iota
	// SharePrivate gives every context its own full-size bank: no
	// interference, but a cold bank for each freshly spawned context and a
	// Contexts-fold total hardware budget.
	SharePrivate
	// SharePartitioned divides a single table budget evenly across contexts:
	// isolation at constant total cost, at the price of smaller tables.
	SharePartitioned

	shareModes // sentinel: number of sharing modes
)

func (m SharingMode) String() string {
	if m < 0 || m >= shareModes {
		return "share?"
	}
	return sharingNames[m]
}

// SelectorKind names a criticality (load-selection) predictor.
type SelectorKind int

// Criticality predictors implemented in internal/crit.
const (
	// SelILPPred tracks per-PC forward progress for each prediction mode
	// and only allows modes that beat no-prediction (the paper's default).
	SelILPPred SelectorKind = iota
	// SelL3Oracle predicts loads that miss to memory (MTVP) or miss in
	// the L1 (STVP), using oracle cache knowledge.
	SelL3Oracle
	// SelAlways predicts every confident load.
	SelAlways
	// SelNever disables selection (no loads are predicted).
	SelNever
)

func (k SelectorKind) String() string {
	switch k {
	case SelILPPred:
		return "ilp-pred"
	case SelL3Oracle:
		return "l3-oracle"
	case SelAlways:
		return "always"
	default:
		return "never"
	}
}

// FetchPolicy selects what the spawning thread does after an MTVP spawn.
type FetchPolicy int

const (
	// FetchSFP is single fetch path MTVP: the parent stops fetching until
	// its prediction is confirmed (the paper's default and best policy).
	FetchSFP FetchPolicy = iota
	// FetchNoStall lets the parent keep fetching, with ICOUNT arbitrating
	// between parent and children (shown counterproductive in Figure 4).
	FetchNoStall
)

func (p FetchPolicy) String() string {
	if p == FetchNoStall {
		return "no-stall"
	}
	return "sfp"
}

// WangFranklinParams sizes the hybrid Wang–Franklin predictor (§5.4).
type WangFranklinParams struct {
	VHTEntries    int // value history table (4K)
	ValPHTEntries int // value pattern history table (32K)
	LearnedValues int // learned value slots per VHT entry (5)
	HistLen       int // pattern history length in outcomes
	ConfMax       int // saturating confidence ceiling (32)
	ConfInc       int // increment on correct prediction (1)
	ConfDec       int // decrement on incorrect prediction (8)
	Threshold     int // minimum confidence to predict (12)
}

// DFCMParams sizes the order-3 differential FCM predictor with Burtscher's
// improved index function.
type DFCMParams struct {
	Order     int
	L1Entries int
	L2Entries int
	ConfMax   int
	ConfInc   int
	ConfDec   int
	Threshold int
}

// VPQStrideParams sizes the retire-trained stride predictor with an explicit
// value prediction queue (PredVPQStride).
type VPQStrideParams struct {
	TableEntries int // direct-mapped, PC-tagged SVP table entries
	QueueEntries int // VPQ capacity (phase-bit ring)
	ConfMax      int // saturating confidence ceiling
	ConfInc      int // increment when the trained stride repeats
	ConfDec      int // decrement when the stride breaks
	Threshold    int // minimum confidence to predict
}

// EqualityParams sizes the equality/last-committed-value predictor
// (PredEqualityLCV): one LCV table plus dueling eq/neq saturating counters
// with periodic decay.
type EqualityParams struct {
	TableEntries int    // direct-mapped, PC-tagged LCV + counter entries
	CounterMax   int    // per-direction saturating counter ceiling
	DecayPeriod  uint64 // trainings between whole-table decay sweeps
	Threshold    int    // minimum eq counter to predict "equal"
}

// VPParams configures value prediction and the MTVP machinery.
type VPParams struct {
	Mode      VPMode
	Predictor PredictorKind
	Selector  SelectorKind

	// Sharing selects how the predictor's tables are organised across
	// hardware contexts (shared / private / partitioned).
	Sharing SharingMode

	// SpawnLatency is the cycles needed to flash-copy the register map
	// and spawn a thread (1, 8, or 16 in §5.2).
	SpawnLatency int
	// StoreBufEntries bounds each speculative context's store buffer;
	// 0 means unbounded (the oracle limit study of §5.1).
	StoreBufEntries int
	// SharedStoreBuf switches to the §3.3 single-fetch-path simplification:
	// one tagged store buffer whose SharedStoreBufEntries are shared by all
	// contexts, instead of a private buffer per context.
	SharedStoreBuf        bool
	SharedStoreBufEntries int
	FetchPolicy           FetchPolicy

	// MultiValue enables following several predicted values for one load
	// (§5.6). MaxValuesPerLoad bounds the children spawned per load.
	MultiValue       bool
	MaxValuesPerLoad int
	// LiberalThreshold, when nonzero, lowers the confidence threshold for
	// secondary values in multi-value mode (the "more liberal predictor").
	LiberalThreshold int

	// SpawnOnly spawns a thread at a selected load without substituting a
	// predicted value: dependents wait for the real load, only independent
	// work proceeds (the "split-window" comparison of Figure 6).
	SpawnOnly bool

	WF       WangFranklinParams
	DFCM     DFCMParams
	VPQ      VPQStrideParams
	Equality EqualityParams
}

// FaultParams selects a deterministic fault-injection campaign. Faults are
// microarchitectural only — they corrupt speculation metadata and timing
// state, never architectural values — so a checked run under any profile
// must either recover to an oracle-clean finish or abort with a structured
// fault report.
type FaultParams struct {
	// Profile names a built-in fault profile from internal/fault ("" or
	// "none" disables injection).
	Profile string
	// Seed seeds the injector's RNG stream (0 picks a fixed default), so a
	// campaign run is exactly reproducible from (Profile, Seed).
	Seed uint64
}

// RecoveryParams tunes the engine's recovery controller: the deadlock
// watchdog's retry budget and backoff, the per-context misprediction-storm
// quarantine, and the graceful-degradation ladder.
type RecoveryParams struct {
	// WatchdogCycles is the base commit-progress watchdog: cycles with no
	// useful commit before the controller intervenes. 0 selects the
	// default of 4*MemLatency + 50_000. Repeated breaks back the watchdog
	// off exponentially up to 8x this base.
	WatchdogCycles int64
	// DeadlockBudget bounds consecutive deadlock-break recoveries before
	// the controller escalates to degradation (0 selects the default of
	// 8); the budget refills after sustained commit progress.
	DeadlockBudget int
	// CooldownCommits is the clean-commit cool-down after which a degraded
	// context earns one speculation level back (0 selects 50_000).
	CooldownCommits uint64
	// QuarantineOff disables the per-context misprediction-storm detector.
	QuarantineOff bool
	// DegradeOff disables the graceful-degradation ladder: exhausting the
	// deadlock budget aborts with a fault report immediately.
	DegradeOff bool
}

// Config holds every architectural parameter of the simulated machine.
type Config struct {
	// Front end.
	FetchWidth    int // instructions fetched per cycle (16)
	FetchBlocks   int // cache lines fetchable per cycle (2)
	FrontEndDepth int // fetch-to-dispatch stages; sets mispredict cost
	Contexts      int // hardware thread contexts (1, 2, 4, 8)

	// Window.
	ROBSize    int // shared reorder buffer entries (256)
	RenameRegs int // shared rename registers beyond architectural (224)
	IQSize     int // integer queue (64)
	FQSize     int // FP queue (64)
	MQSize     int // memory queue (64)

	// Issue and commit.
	IssueWidth  int // total issue bandwidth (8)
	IntIssue    int // integer issue slots (6)
	FPIssue     int // FP issue slots (2)
	MemIssue    int // load/store issue slots (4)
	CommitWidth int // commit bandwidth (8)

	// Functional unit latencies (cycles).
	LatIntALU int
	LatIntMul int
	LatIntDiv int
	LatFPAdd  int
	LatFPMul  int
	LatFPDiv  int

	// Memory hierarchy.
	ICache     CacheParams
	DL1        CacheParams
	L2         CacheParams
	L3         CacheParams
	MemLatency int // main memory (1000)

	Prefetch PrefetchParams
	Branch   BranchParams
	VP       VPParams

	// Run limits.
	MaxInsts  uint64 // stop after this many useful committed instructions
	MaxCycles uint64 // hard safety stop
	Seed      uint64 // workload/data seed

	// Differential checking (observational; not part of the modelled
	// machine). Check runs a lockstep in-order oracle alongside the
	// pipeline, verifying every useful committed instruction's PC,
	// destination value, and store address/data, and enables the pipeline
	// invariant auditor. A divergence or invariant violation fails the run
	// with a windowed dump of recent commits. CheckWindow sets the
	// per-thread commit history kept for that dump (0 = default).
	Check       bool
	CheckWindow int

	// Observe, when non-nil, is polled by the engine every ~1024 simulated
	// cycles with the current cycle and useful-commit counts. Returning
	// false cancels the run: the engine stops at the next poll and returns
	// pipeline.ErrCanceled. Like Check and tracing it is observational —
	// not part of the modelled machine — and it must be fast and must not
	// block: the campaign harness (internal/harness) uses it to feed its
	// simulated-cycle progress watchdog and to propagate context
	// cancellation (deadlines, stall kills, SIGINT) into a running
	// simulation. Excluded from JSON: a Config must serialize so the
	// distributed sweep fabric (internal/fabric) can ship fully-resolved
	// machine configs to remote workers, and hooks are per-process anyway
	// (each worker installs its own Observe for heartbeating).
	Observe func(cycles, commits uint64) (keepRunning bool) `json:"-"`

	// Robustness: fault injection and the recovery controller.
	Faults   FaultParams
	Recovery RecoveryParams

	// DisableFastForward turns off the engine's idle-cycle fast-forward
	// (pipeline/engine.go). Fast-forward is a pure host-time optimization —
	// every simulated outcome is identical with it on or off (test-enforced)
	// — so this knob exists only for A/B validation and debugging. The
	// MTVP_NO_FASTFWD environment variable forces the same behaviour.
	DisableFastForward bool

	// DisableEventQueue selects the legacy polling scheduler — the
	// per-cycle nextWake quiescence scan — instead of the event-driven
	// calendar in which every stage enqueues its own next activation
	// (pipeline/events.go). Like fast-forward, the event queue is a pure
	// host-time optimization: simulated outcomes are bit-identical either
	// way (test-enforced), so this knob exists only for A/B validation and
	// debugging. The MTVP_NO_EVENTQ environment variable forces the same
	// behaviour.
	DisableEventQueue bool
}

// Baseline returns the Table 1 machine with value prediction disabled.
func Baseline() Config {
	return Config{
		FetchWidth:    16,
		FetchBlocks:   2,
		FrontEndDepth: 15, // half of the 30-stage pipe is the front end
		Contexts:      1,

		ROBSize:    256,
		RenameRegs: 224,
		IQSize:     64,
		FQSize:     64,
		MQSize:     64,

		IssueWidth:  8,
		IntIssue:    6,
		FPIssue:     2,
		MemIssue:    4,
		CommitWidth: 8,

		LatIntALU: 1,
		LatIntMul: 3,
		LatIntDiv: 20,
		LatFPAdd:  4,
		LatFPMul:  4,
		LatFPDiv:  16,

		ICache:     CacheParams{Name: "IL1", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		DL1:        CacheParams{Name: "DL1", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 2},
		L2:         CacheParams{Name: "L2", SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64, Latency: 20},
		L3:         CacheParams{Name: "L3", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Latency: 50},
		MemLatency: 1000,

		Prefetch: PrefetchParams{
			Enabled:       true,
			Entries:       256,
			StreamBuffers: 8,
			BufferDepth:   4,
			MinConfidence: 2,
		},
		Branch: BranchParams{
			MetaEntries:    64 << 10,
			GshareEntries:  64 << 10,
			BimodalEntries: 16 << 10,
			HistBits:       14,
		},
		VP: VPParams{
			Mode:             VPNone,
			Predictor:        PredWangFranklin,
			Selector:         SelILPPred,
			SpawnLatency:     8,
			StoreBufEntries:  128,
			FetchPolicy:      FetchSFP,
			MaxValuesPerLoad: 1,
			WF:               DefaultWF(),
			DFCM:             DefaultDFCM(),
			VPQ:              DefaultVPQStride(),
			Equality:         DefaultEquality(),
		},

		MaxInsts:  500_000,
		MaxCycles: 80_000_000,
		Seed:      1,
	}
}

// DefaultWF returns the paper's Wang–Franklin predictor sizing (§5.4).
func DefaultWF() WangFranklinParams {
	return WangFranklinParams{
		VHTEntries:    4096,
		ValPHTEntries: 32768,
		LearnedValues: 5,
		HistLen:       6,
		ConfMax:       32,
		ConfInc:       1,
		ConfDec:       8,
		Threshold:     12,
	}
}

// DefaultDFCM returns the order-3 DFCM sizing comparable to the WF tables.
func DefaultDFCM() DFCMParams {
	return DFCMParams{
		Order:     3,
		L1Entries: 4096,
		L2Entries: 32768,
		ConfMax:   32,
		ConfInc:   1,
		ConfDec:   4, // more aggressive than WF, as the paper observes
		Threshold: 8,
	}
}

// DefaultVPQStride returns a VPQ stride predictor sized comparably to the
// other realistic predictors, with a queue deep enough for the pipeline's
// in-flight loads.
func DefaultVPQStride() VPQStrideParams {
	return VPQStrideParams{
		TableEntries: 4096,
		QueueEntries: 256,
		ConfMax:      32,
		ConfInc:      1,
		ConfDec:      8,
		Threshold:    12,
	}
}

// DefaultEquality returns the equality/LCV predictor sizing: 3-bit dueling
// counters as in the exemplar design, decayed every 8K trainings.
func DefaultEquality() EqualityParams {
	return EqualityParams{
		TableEntries: 4096,
		CounterMax:   7,
		DecayPeriod:  8192,
		Threshold:    5,
	}
}

// WithSTVP returns a copy configured for single-threaded value prediction.
func (c Config) WithSTVP(pred PredictorKind, sel SelectorKind) Config {
	c.VP.Mode = VPSTVP
	c.VP.Predictor = pred
	c.VP.Selector = sel
	c.Contexts = 1
	return c
}

// WithMTVP returns a copy configured for multithreaded value prediction with
// the given number of hardware contexts.
func (c Config) WithMTVP(contexts int, pred PredictorKind, sel SelectorKind) Config {
	c.VP.Mode = VPMTVP
	c.VP.Predictor = pred
	c.VP.Selector = sel
	c.Contexts = contexts
	return c
}

// WideWindow returns the idealized checkpoint machine of §5.7: an 8192-entry
// ROB, 8192-entry queues, and effectively unlimited rename registers, with no
// value prediction.
func (c Config) WideWindow() Config {
	c.VP.Mode = VPNone
	c.Contexts = 1
	c.ROBSize = 8192
	c.IQSize = 8192
	c.FQSize = 8192
	c.MQSize = 8192
	c.RenameRegs = 1 << 20
	return c
}

// SpawnOnly returns the split-window comparison machine of Figure 6: threads
// are spawned at selected loads but no value is predicted.
func (c Config) SpawnOnly(contexts int) Config {
	c.VP.Mode = VPMTVP
	c.VP.SpawnOnly = true
	c.Contexts = contexts
	return c
}

// Validate checks the configuration for inconsistencies.
func (c *Config) Validate() error {
	switch {
	case c.Contexts < 1:
		return fmt.Errorf("config: Contexts must be >= 1, got %d", c.Contexts)
	case c.FetchWidth < 1:
		return fmt.Errorf("config: FetchWidth must be >= 1, got %d", c.FetchWidth)
	case c.ROBSize < 1 || c.IQSize < 1 || c.FQSize < 1 || c.MQSize < 1:
		return fmt.Errorf("config: window sizes must be >= 1")
	case c.IssueWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("config: issue/commit width must be >= 1")
	case c.MemLatency < 1:
		return fmt.Errorf("config: MemLatency must be >= 1, got %d", c.MemLatency)
	case c.VP.Mode == VPMTVP && c.Contexts < 2 && !c.VP.SpawnOnly:
		return fmt.Errorf("config: MTVP needs >= 2 contexts, got %d", c.Contexts)
	case c.VP.Predictor < 0 || c.VP.Predictor >= predKinds:
		return &UnknownNameError{What: "predictor", Name: fmt.Sprintf("#%d", int(c.VP.Predictor)), Valid: PredictorNames()}
	case c.VP.Sharing < 0 || c.VP.Sharing >= shareModes:
		return &UnknownNameError{What: "sharing mode", Name: fmt.Sprintf("#%d", int(c.VP.Sharing)), Valid: SharingNames()}
	case c.VP.Predictor == PredVPQStride && (c.VP.VPQ.TableEntries < 1 || c.VP.VPQ.QueueEntries < 1):
		return fmt.Errorf("config: VPQ stride predictor needs TableEntries and QueueEntries >= 1")
	case c.VP.Predictor == PredEqualityLCV && (c.VP.Equality.TableEntries < 1 || c.VP.Equality.DecayPeriod < 1):
		return fmt.Errorf("config: equality/LCV predictor needs TableEntries and DecayPeriod >= 1")
	case c.VP.SpawnLatency < 0:
		return fmt.Errorf("config: SpawnLatency must be >= 0")
	case c.VP.MultiValue && c.VP.MaxValuesPerLoad < 2:
		return fmt.Errorf("config: MultiValue needs MaxValuesPerLoad >= 2")
	case c.VP.SharedStoreBuf && c.VP.SharedStoreBufEntries < 1:
		return fmt.Errorf("config: SharedStoreBuf needs SharedStoreBufEntries >= 1")
	case c.CheckWindow < 0:
		return fmt.Errorf("config: CheckWindow must be >= 0, got %d", c.CheckWindow)
	case c.Recovery.WatchdogCycles < 0:
		return fmt.Errorf("config: Recovery.WatchdogCycles must be >= 0, got %d", c.Recovery.WatchdogCycles)
	case c.Recovery.DeadlockBudget < 0:
		return fmt.Errorf("config: Recovery.DeadlockBudget must be >= 0, got %d", c.Recovery.DeadlockBudget)
	}
	for _, cp := range []CacheParams{c.ICache, c.DL1, c.L2, c.L3} {
		if cp.Sets() < 1 {
			return fmt.Errorf("config: cache %s has no sets", cp.Name)
		}
		if cp.Sets()&(cp.Sets()-1) != 0 {
			return fmt.Errorf("config: cache %s set count %d is not a power of two", cp.Name, cp.Sets())
		}
	}
	return nil
}
