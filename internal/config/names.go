package config

import (
	"fmt"
	"strings"
)

// Canonical name tables. Indexed by the enum value, so String() and the
// Parse*/“*Names“ helpers can never disagree about what is registered.
var (
	predictorNames = [predKinds]string{
		PredOracle:       "oracle",
		PredWangFranklin: "wf",
		PredDFCM:         "dfcm3",
		PredFCM:          "fcm3",
		PredLastValue:    "lastvalue",
		PredStride:       "stride",
		PredVPQStride:    "vpq-stride",
		PredEqualityLCV:  "eqlcv",
	}
	// predictorAliases accepts historical CLI spellings.
	predictorAliases = map[string]PredictorKind{
		"dfcm": PredDFCM,
		"fcm":  PredFCM,
		"vpq":  PredVPQStride,
		"eq":   PredEqualityLCV,
	}
	sharingNames = [shareModes]string{
		ShareShared:      "shared",
		SharePrivate:     "private",
		SharePartitioned: "partitioned",
	}
	selectorNames = map[string]SelectorKind{
		"ilp-pred":  SelILPPred,
		"ilp":       SelILPPred,
		"l3-oracle": SelL3Oracle,
		"l3":        SelL3Oracle,
		"always":    SelAlways,
		"never":     SelNever,
	}
)

// UnknownNameError reports a name that does not match any registered entity
// of the given kind, along with every valid choice.
type UnknownNameError struct {
	What  string   // what was being named: "predictor", "sharing mode", ...
	Name  string   // the unknown name
	Valid []string // the registered names, in canonical order
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("config: unknown %s %q (valid: %s)",
		e.What, e.Name, strings.Join(e.Valid, ", "))
}

// PredictorNames returns the canonical name of every registered predictor,
// in enum order.
func PredictorNames() []string {
	return append([]string(nil), predictorNames[:]...)
}

// ParsePredictor resolves a predictor name (canonical or alias) to its kind.
// Unknown names yield an *UnknownNameError listing the valid choices.
func ParsePredictor(name string) (PredictorKind, error) {
	for k, n := range predictorNames {
		if n == name {
			return PredictorKind(k), nil
		}
	}
	if k, ok := predictorAliases[name]; ok {
		return k, nil
	}
	return 0, &UnknownNameError{What: "predictor", Name: name, Valid: PredictorNames()}
}

// SharingNames returns the canonical name of every table sharing mode, in
// enum order.
func SharingNames() []string {
	return append([]string(nil), sharingNames[:]...)
}

// ParseSharing resolves a table sharing mode name. Unknown names yield an
// *UnknownNameError listing the valid choices.
func ParseSharing(name string) (SharingMode, error) {
	for m, n := range sharingNames {
		if n == name {
			return SharingMode(m), nil
		}
	}
	return 0, &UnknownNameError{What: "sharing mode", Name: name, Valid: SharingNames()}
}

// SelectorNames returns the canonical name of every criticality selector.
func SelectorNames() []string {
	return []string{"ilp-pred", "l3-oracle", "always", "never"}
}

// ParseSelector resolves a criticality selector name. Unknown names yield an
// *UnknownNameError listing the valid choices.
func ParseSelector(name string) (SelectorKind, error) {
	if k, ok := selectorNames[name]; ok {
		return k, nil
	}
	return 0, &UnknownNameError{What: "selector", Name: name, Valid: SelectorNames()}
}
