// Package version carries the build identity every mtvp binary reports:
// the -version flag output and the conventional mtvp_build_info metric
// (constant 1 with the version riding the labels) on every /metrics
// surface.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"mtvp/internal/telemetry"
)

// Version identifies the build. Release builds inject it:
//
//	go build -ldflags "-X mtvp/internal/version.Version=v1.2.3"
//
// Dev builds fall back to the VCS revision stamped into the build info.
var Version = "dev"

// String returns the effective version: the injected Version, or
// "dev+<revision>" when the toolchain stamped one.
func String() string {
	if Version != "dev" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return Version + "+" + s.Value[:12]
			}
		}
	}
	return Version
}

// Print writes the standard -version line for a binary.
func Print(w io.Writer, binary string) {
	fmt.Fprintf(w, "%s %s (%s, %s/%s)\n", binary, String(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Register exports the build identity on reg as mtvp_build_info.
func Register(reg *telemetry.Registry) {
	reg.LabeledGaugeFunc("mtvp_build_info",
		fmt.Sprintf("version=%q,go=%q", String(), runtime.Version()),
		"build identity (constant 1; the version rides the labels)",
		func() float64 { return 1 })
}
