package version

import (
	"strings"
	"testing"

	"mtvp/internal/telemetry"
)

func TestPrintAndBuildInfoMetric(t *testing.T) {
	var b strings.Builder
	Print(&b, "mtvptest")
	if !strings.HasPrefix(b.String(), "mtvptest "+String()+" (go") {
		t.Fatalf("unexpected -version line: %q", b.String())
	}

	reg := telemetry.NewRegistry()
	Register(reg)
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mtvp_build_info{version=") || !strings.Contains(out, "} 1") {
		t.Fatalf("mtvp_build_info gauge missing:\n%s", out)
	}
}
