// Package cache models the simulator's memory hierarchy: a split L1, a
// unified L2 and L3, and main memory, with the latencies of Table 1.
//
// Each installed line carries the cycle its data actually arrives, so a hit
// to a line whose fill is still in flight waits for the fill — which is
// also how outstanding misses to the same line merge (MSHR behaviour).
// Demand misses consult the stream buffers of the stride prefetcher before
// paying the full miss penalty.
package cache

import (
	"mtvp/internal/config"
	"mtvp/internal/prefetch"
	"mtvp/internal/stats"
)

// HitLevel identifies where an access was satisfied.
type HitLevel int

// Levels an access can be satisfied at, from fastest to slowest.
const (
	HitL1 HitLevel = iota + 1
	HitStream
	HitL2
	HitL3
	HitMem
)

func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitStream:
		return "stream"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	default:
		return "mem"
	}
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU tick
	ready int64  // cycle the line's data arrives (fill completion)
}

type level struct {
	cp       config.CacheParams
	lines    []line
	setMask  uint64
	lineBits uint
	tick     uint64
}

func newLevel(cp config.CacheParams) *level {
	sets := cp.Sets()
	lb := uint(0)
	for 1<<lb < cp.LineBytes {
		lb++
	}
	return &level{
		cp:       cp,
		lines:    make([]line, sets*cp.Assoc),
		setMask:  uint64(sets - 1),
		lineBits: lb,
	}
}

func (l *level) set(addr uint64) []line {
	s := (addr >> l.lineBits) & l.setMask
	i := int(s) * l.cp.Assoc
	return l.lines[i : i+l.cp.Assoc]
}

func (l *level) tag(addr uint64) uint64 { return addr >> l.lineBits }

// lookup checks for addr, updating LRU on a hit. It returns the cycle the
// hit's data is available given an access at cycle now: at least the access
// latency, later if the line's fill is still in flight.
func (l *level) lookup(addr uint64, now int64) (int64, bool) {
	set, tag := l.set(addr), l.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			l.tick++
			set[i].used = l.tick
			avail := now + int64(l.cp.Latency)
			if set[i].ready > avail {
				avail = set[i].ready
			}
			return avail, true
		}
	}
	return 0, false
}

// probe checks for addr without disturbing LRU state (oracle queries). It
// reports presence regardless of whether the fill has landed.
func (l *level) probe(addr uint64) bool {
	set, tag := l.set(addr), l.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// fill installs addr's line with data arriving at ready, evicting the LRU
// way. A line already present keeps the earlier of the two ready times.
func (l *level) fill(addr uint64, ready int64) {
	set, tag := l.set(addr), l.tag(addr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if ready < set[i].ready {
				set[i].ready = ready
			}
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	l.tick++
	set[victim] = line{tag: tag, valid: true, used: l.tick, ready: ready}
}

// Hierarchy is the full data-side memory system plus the instruction cache.
type Hierarchy struct {
	icache *level
	dl1    *level
	l2     *level
	l3     *level
	memLat int

	pref *prefetch.Prefetcher // nil when disabled

	st *stats.Stats
}

// NewHierarchy builds the hierarchy from cfg, attaching st for counters.
// The prefetcher is created internally when cfg.Prefetch.Enabled.
func NewHierarchy(cfg *config.Config, st *stats.Stats) *Hierarchy {
	h := &Hierarchy{
		icache: newLevel(cfg.ICache),
		dl1:    newLevel(cfg.DL1),
		l2:     newLevel(cfg.L2),
		l3:     newLevel(cfg.L3),
		memLat: cfg.MemLatency,
		st:     st,
	}
	if cfg.Prefetch.Enabled {
		h.pref = prefetch.New(cfg.Prefetch, cfg.DL1.LineBytes)
	}
	return h
}

func (h *Hierarchy) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(h.dl1.cp.LineBytes-1)
}

// Load performs a demand data load for pc at addr starting at cycle now.
// It returns the cycle the data is available and the level that supplied it.
// The stride prefetcher is trained on every L1 miss, in issue order — so
// out-of-order issue can mistrain it, the interaction §5.1 describes.
func (h *Hierarchy) Load(pc, addr uint64, now int64) (int64, HitLevel) {
	h.st.Loads++
	if avail, ok := h.dl1.lookup(addr, now); ok {
		return avail, HitL1
	}
	h.st.DL1Miss++

	// Demand miss: train the prefetcher and probe the stream buffers.
	if h.pref != nil {
		if ready, ok := h.pref.Demand(h.lineAddr(addr), now); ok {
			h.st.PrefHits++
			if n := now + int64(h.dl1.cp.Latency); n > ready {
				ready = n
			}
			h.dl1.fill(addr, ready)
			h.l2.fill(addr, ready)
			h.streamAdvance(now)
			h.pref.Train(pc, addr, now)
			return ready, HitStream
		}
		h.pref.Train(pc, addr, now)
		h.streamAdvance(now)
	}

	if avail, ok := h.l2.lookup(addr, now); ok {
		h.dl1.fill(addr, avail)
		return avail, HitL2
	}
	h.st.L2Miss++
	if avail, ok := h.l3.lookup(addr, now); ok {
		h.dl1.fill(addr, avail)
		h.l2.fill(addr, avail)
		return avail, HitL3
	}
	h.st.L3Miss++
	ready := now + int64(h.memLat)
	h.dl1.fill(addr, ready)
	h.l2.fill(addr, ready)
	h.l3.fill(addr, ready)
	return ready, HitMem
}

// streamAdvance launches the prefetches the stream buffers want, charging
// each the latency of the level that supplies it. Prefetched data lives in
// the stream buffer only — a buffer evicted before its lines are consumed
// wastes them, which is what makes more concurrent streams than buffers
// (swim's nine grids against eight buffers) expensive.
func (h *Hierarchy) streamAdvance(now int64) {
	for {
		la, ok := h.pref.NextPrefetch()
		if !ok {
			return
		}
		h.st.PrefIssued++
		var ready int64
		switch {
		case h.l2.probe(la):
			ready, _ = h.l2.lookup(la, now)
		case h.l3.probe(la):
			ready, _ = h.l3.lookup(la, now)
		default:
			ready = now + int64(h.memLat)
		}
		h.pref.Complete(la, ready)
	}
}

// Store notifies the hierarchy of a committed store (write-allocate into the
// L1; stores are not on the load critical path, so no latency is returned).
func (h *Hierarchy) Store(addr uint64) {
	h.st.Stores++
	if _, ok := h.dl1.lookup(addr, 0); !ok {
		h.dl1.fill(addr, 0)
	}
}

// InstFetch models an instruction-cache access for the line at addr and
// returns the cycle the instructions are available.
func (h *Hierarchy) InstFetch(addr uint64, now int64) int64 {
	if avail, ok := h.icache.lookup(addr, now); ok {
		return avail
	}
	var ready int64
	if avail, ok := h.l2.lookup(addr, now); ok {
		ready = avail
	} else if avail, ok := h.l3.lookup(addr, now); ok {
		ready = avail
		h.l2.fill(addr, ready)
	} else {
		ready = now + int64(h.memLat)
		h.l2.fill(addr, ready)
		h.l3.fill(addr, ready)
	}
	h.icache.fill(addr, ready)
	return ready
}

// ProbeLevel reports, without side effects, the level a load to addr would
// hit. The L3-miss-oracle criticality predictor uses it.
func (h *Hierarchy) ProbeLevel(addr uint64) HitLevel {
	switch {
	case h.dl1.probe(addr):
		return HitL1
	case h.pref != nil && h.pref.Probe(h.lineAddr(addr)):
		return HitStream
	case h.l2.probe(addr):
		return HitL2
	case h.l3.probe(addr):
		return HitL3
	default:
		return HitMem
	}
}
