package cache

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/stats"
)

func testCfg() *config.Config {
	cfg := config.Baseline()
	return &cfg
}

func newH(t *testing.T, pref bool) (*Hierarchy, *stats.Stats) {
	t.Helper()
	cfg := testCfg()
	cfg.Prefetch.Enabled = pref
	st := &stats.Stats{}
	return NewHierarchy(cfg, st), st
}

func TestColdMissGoesToMemory(t *testing.T) {
	h, st := newH(t, false)
	ready, lvl := h.Load(0x100, 0xABC000, 1000)
	if lvl != HitMem {
		t.Fatalf("cold access hit %v", lvl)
	}
	if ready != 1000+1000 {
		t.Errorf("memory ready = %d, want 2000", ready)
	}
	if st.DL1Miss != 1 || st.L2Miss != 1 || st.L3Miss != 1 {
		t.Errorf("miss counters: %d %d %d", st.DL1Miss, st.L2Miss, st.L3Miss)
	}
}

func TestHitAfterFill(t *testing.T) {
	h, _ := newH(t, false)
	h.Load(0x100, 0xABC000, 0)
	ready, lvl := h.Load(0x100, 0xABC008, 5000) // same line, after fill
	if lvl != HitL1 {
		t.Fatalf("refill access hit %v, want L1", lvl)
	}
	if ready != 5002 {
		t.Errorf("L1 hit ready = %d, want 5002", ready)
	}
}

func TestInFlightLineMergesMisses(t *testing.T) {
	h, _ := newH(t, false)
	r1, _ := h.Load(0x100, 0xABC000, 100)
	// Second access to the same line 10 cycles later must wait for the
	// first fill, not start a new 1000-cycle miss.
	r2, lvl := h.Load(0x104, 0xABC008, 110)
	if lvl != HitL1 {
		t.Fatalf("merged access hit %v, want L1 (tag present)", lvl)
	}
	if r2 != r1 {
		t.Errorf("merged access ready = %d, want %d (first fill)", r2, r1)
	}
}

func TestLRUReplacement(t *testing.T) {
	h, _ := newH(t, false)
	cfg := testCfg()
	// Fill one DL1 set (2 ways) plus one more line mapping to it.
	sets := cfg.DL1.Sets()
	line := uint64(cfg.DL1.LineBytes)
	a := uint64(0x100000)
	b := a + uint64(sets)*line   // same set, different tag
	c := a + 2*uint64(sets)*line // same set, third tag
	h.Load(0, a, 0)
	h.Load(0, b, 2000)
	h.Load(0, a, 4000) // touch a: b becomes LRU
	h.Load(0, c, 6000) // evicts b
	_, lvl := h.Load(0, a, 8000)
	if lvl != HitL1 {
		t.Errorf("recently used line evicted (hit %v)", lvl)
	}
	_, lvl = h.Load(0, b, 10000)
	if lvl == HitL1 {
		t.Errorf("LRU line not evicted")
	}
}

func TestL2AndL3Hits(t *testing.T) {
	h, _ := newH(t, false)
	cfg := testCfg()
	line := uint64(cfg.DL1.LineBytes)
	// Load enough distinct lines to spill the 64KB DL1 but stay in L2.
	n := cfg.DL1.SizeBytes/cfg.DL1.LineBytes + 64
	for i := 0; i < n; i++ {
		h.Load(0, uint64(i)*line, int64(i)*2000)
	}
	// Line 0 fell out of DL1 but is in L2.
	_, lvl := h.Load(0, 0, int64(n)*2000+10)
	if lvl != HitL2 {
		t.Errorf("spilled line hit %v, want L2", lvl)
	}
}

func TestStoreAllocates(t *testing.T) {
	h, st := newH(t, false)
	h.Store(0xFE0000)
	if st.Stores != 1 {
		t.Errorf("store count %d", st.Stores)
	}
	_, lvl := h.Load(0, 0xFE0000, 100)
	if lvl != HitL1 {
		t.Errorf("store-allocated line hit %v", lvl)
	}
}

func TestInstFetch(t *testing.T) {
	h, _ := newH(t, false)
	r := h.InstFetch(0x40, 0)
	if r != 1000 {
		t.Errorf("cold ifetch ready = %d, want 1000", r)
	}
	r = h.InstFetch(0x40, 2000)
	if r != 2002 {
		t.Errorf("warm ifetch ready = %d, want 2002 (2-cycle IL1)", r)
	}
}

func TestProbeLevelNoSideEffects(t *testing.T) {
	h, st := newH(t, false)
	if lvl := h.ProbeLevel(0x123400); lvl != HitMem {
		t.Errorf("cold probe = %v", lvl)
	}
	if st.Loads != 0 {
		t.Error("probe counted as a load")
	}
	h.Load(0, 0x123400, 0)
	if lvl := h.ProbeLevel(0x123400); lvl != HitL1 {
		t.Errorf("post-fill probe = %v", lvl)
	}
}

func TestStridePrefetchCoversStream(t *testing.T) {
	h, st := newH(t, true)
	cfg := testCfg()
	line := int64(cfg.DL1.LineBytes)
	pc := uint64(0x44)
	now := int64(0)
	// Sequential line-stride loads from one PC. After training, stream
	// buffers should supply later lines.
	streamHitSeen := false
	for i := int64(0); i < 64; i++ {
		addr := uint64(0x200000 + i*line)
		ready, lvl := h.Load(pc, addr, now)
		if lvl == HitStream {
			streamHitSeen = true
		}
		now = ready + 10
	}
	if !streamHitSeen {
		t.Error("no stream-buffer hits on a pure line-stride stream")
	}
	if st.PrefIssued == 0 {
		t.Error("prefetcher never issued")
	}
}

func TestPrefetchReducesStallVsNoPrefetch(t *testing.T) {
	run := func(pref bool) int64 {
		h, _ := newH(t, pref)
		cfg := testCfg()
		line := int64(cfg.DL1.LineBytes)
		now := int64(0)
		for i := int64(0); i < 128; i++ {
			ready, _ := h.Load(0x44, uint64(0x400000+i*line), now)
			now = ready + 5
		}
		return now
	}
	without, with := run(false), run(true)
	if with >= without {
		t.Errorf("prefetching did not help: %d cycles with vs %d without", with, without)
	}
}
