package crit

import (
	"testing"

	"mtvp/internal/cache"
	"mtvp/internal/config"
)

func TestL3OracleMapping(t *testing.T) {
	s := &L3Oracle{Mode: config.VPMTVP}
	if d := s.Select(0, cache.HitMem, true); d != DecideMTVP {
		t.Errorf("mem miss with context -> %v, want mtvp", d)
	}
	if d := s.Select(0, cache.HitMem, false); d != DecideSTVP {
		t.Errorf("mem miss without context -> %v, want stvp fallback", d)
	}
	if d := s.Select(0, cache.HitL2, true); d != DecideSTVP {
		t.Errorf("L2 hit -> %v, want stvp", d)
	}
	if d := s.Select(0, cache.HitL1, true); d != DecideNone {
		t.Errorf("L1 hit -> %v, want none", d)
	}
}

func TestAlwaysAndNever(t *testing.T) {
	a := &Always{Mode: config.VPMTVP}
	if d := a.Select(0, cache.HitL1, true); d != DecideMTVP {
		t.Errorf("always -> %v", d)
	}
	if d := a.Select(0, cache.HitL1, false); d != DecideSTVP {
		t.Errorf("always w/o context -> %v", d)
	}
	if d := (Never{}).Select(0, cache.HitMem, true); d != DecideNone {
		t.Errorf("never -> %v", d)
	}
}

// feed observes n windows of the given progress rate for a mode.
func feed(s *ILPPred, pc uint64, mode Decision, n int, insts, cycles uint64) {
	for i := 0; i < n; i++ {
		s.Observe(pc, mode, insts, cycles)
	}
}

func TestILPPredOptimisticStart(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	if d := s.Select(0x10, cache.HitMem, true); d != DecideMTVP {
		t.Errorf("cold entry -> %v, want optimistic mtvp", d)
	}
}

func TestILPPredVetoesUnprofitableMTVP(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	pc := uint64(0x20)
	feed(s, pc, DecideNone, 8, 500, 1000) // 0.5 insts/cycle without VP
	feed(s, pc, DecideMTVP, 8, 400, 1000) // worse with spawning
	feed(s, pc, DecideSTVP, 8, 900, 1000) // better with STVP
	got := map[Decision]int{}
	for i := 0; i < 64; i++ {
		got[s.Select(pc, cache.HitMem, true)]++
	}
	if got[DecideMTVP] != 0 {
		t.Errorf("unprofitable MTVP selected %d times", got[DecideMTVP])
	}
	if got[DecideSTVP] == 0 {
		t.Error("profitable STVP never selected")
	}
}

func TestILPPredPrefersMTVPWhenItWins(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	pc := uint64(0x24)
	feed(s, pc, DecideNone, 8, 300, 1000)
	feed(s, pc, DecideMTVP, 8, 900, 1000)
	feed(s, pc, DecideSTVP, 8, 400, 1000)
	mtvp := 0
	for i := 0; i < 64; i++ {
		if s.Select(pc, cache.HitMem, true) == DecideMTVP {
			mtvp++
		}
	}
	if mtvp < 48 {
		t.Errorf("winning MTVP selected only %d/64 times", mtvp)
	}
}

func TestILPPredMarginRejectsTies(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	pc := uint64(0x28)
	feed(s, pc, DecideNone, 8, 500, 1000)
	feed(s, pc, DecideMTVP, 8, 510, 1000) // within the margin: not a clear win
	feed(s, pc, DecideSTVP, 8, 505, 1000)
	for i := 0; i < 64; i++ {
		if d := s.Select(pc, cache.HitMem, true); d == DecideMTVP || d == DecideSTVP {
			t.Fatalf("marginal mode selected: %v", d)
		}
	}
}

func TestILPPredCalibrationSampling(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	pc := uint64(0x2c)
	none := 0
	for i := 0; i < 160; i++ {
		if s.Select(pc, cache.HitMem, true) == DecideNone {
			none++
		}
	}
	if none < 160/16 {
		t.Errorf("only %d calibration windows in 160 selections", none)
	}
}

func TestILPPredRespectsContextAvailability(t *testing.T) {
	s := NewILPPred(64, config.VPMTVP)
	pc := uint64(0x30)
	feed(s, pc, DecideNone, 8, 300, 1000)
	feed(s, pc, DecideMTVP, 8, 900, 1000)
	feed(s, pc, DecideSTVP, 8, 800, 1000)
	for i := 0; i < 32; i++ {
		if d := s.Select(pc, cache.HitMem, false); d == DecideMTVP {
			t.Fatal("selected MTVP with no free context")
		}
	}
}

func TestILPPredSTVPModeCap(t *testing.T) {
	s := NewILPPred(64, config.VPSTVP)
	pc := uint64(0x34)
	feed(s, pc, DecideNone, 8, 300, 1000)
	feed(s, pc, DecideMTVP, 8, 900, 1000)
	for i := 0; i < 32; i++ {
		if d := s.Select(pc, cache.HitMem, true); d == DecideMTVP {
			t.Fatal("STVP-mode machine selected MTVP")
		}
	}
}

func TestILPPredEntryReplacement(t *testing.T) {
	s := NewILPPred(4, config.VPMTVP)
	// Two PCs aliasing to the same entry: the newcomer resets state.
	feed(s, 0x0, DecideNone, 8, 100, 1000)
	feed(s, 0x0, DecideMTVP, 8, 50, 1000) // vetoed for pc 0
	if d := s.Select(0x4, cache.HitMem, true); d != DecideMTVP {
		t.Errorf("aliased fresh PC -> %v, want optimistic mtvp", d)
	}
}

func TestRateExactDivision(t *testing.T) {
	p := progress{insts: 100, cycles: 400}
	if r := p.rate(); r != 100*65536/400 {
		t.Errorf("rate = %d", r)
	}
	if (progress{}).rate() != 0 {
		t.Error("zero-cycle rate not zero")
	}
}

func TestNewSelectsConfiguredSelector(t *testing.T) {
	cfg := config.Baseline()
	for _, k := range []config.SelectorKind{
		config.SelILPPred, config.SelL3Oracle, config.SelAlways, config.SelNever,
	} {
		cfg.VP.Selector = k
		if New(&cfg) == nil {
			t.Errorf("New returned nil for %v", k)
		}
	}
}
