// Package crit implements the criticality predictors — load selectors — the
// paper uses to decide which confident value predictions are worth
// following, and in which mode (single-threaded or threaded).
//
// ILP-pred (§5.1) is the paper's implementable selector: per load PC it
// tracks the forward progress (issued instructions) and elapsed cycles
// between making a prediction of each type and confirming it, and allows a
// prediction type only when its average progress beats making no prediction.
// Averages use the paper's division-free approximation: the progress counter
// shifted down by the floor-log2 of the cycle counter.
package crit

import (
	"fmt"

	"mtvp/internal/cache"
	"mtvp/internal/config"
)

// Decision is a load-selection outcome.
type Decision int

// Prediction modes a selector can choose for a confident load.
const (
	DecideNone Decision = iota
	DecideSTVP
	DecideMTVP
)

func (d Decision) String() string {
	switch d {
	case DecideSTVP:
		return "stvp"
	case DecideMTVP:
		return "mtvp"
	default:
		return "none"
	}
}

// Selector decides whether and how to follow a confident value prediction.
type Selector interface {
	// Select picks a mode for the confident load at pc. level is the
	// cache level the load would hit (oracle information — only the
	// L3-oracle selector may use it); mtvpOK reports whether a hardware
	// context is free to spawn.
	Select(pc uint64, level cache.HitLevel, mtvpOK bool) Decision
	// Observe records a resolved measurement window for pc: the mode
	// chosen, instructions issued, and cycles elapsed from prediction to
	// confirmation (or an equivalent no-prediction window).
	Observe(pc uint64, mode Decision, insts, cycles uint64)
}

// New builds the selector named by the configuration.
func New(cfg *config.Config) Selector {
	switch cfg.VP.Selector {
	case config.SelILPPred:
		return NewILPPred(4096, cfg.VP.Mode)
	case config.SelL3Oracle:
		return &L3Oracle{Mode: cfg.VP.Mode}
	case config.SelAlways:
		return &Always{Mode: cfg.VP.Mode}
	default:
		return Never{}
	}
}

// progress accumulates one mode's forward-progress statistics.
type progress struct {
	insts   uint64
	cycles  uint64
	samples uint32
}

// rate returns the mode's average forward progress per cycle, in 1/65536
// instruction units. The paper approximates this division in hardware by
// shifting the progress counter down by the largest power of two in the
// aggregate cycle count; that quantisation can misrank modes by up to 2x on
// short windows, so this software model divides exactly.
func (p progress) rate() uint64 {
	if p.cycles == 0 {
		return 0
	}
	return p.insts * 65536 / p.cycles
}

type ilpEntry struct {
	pc    uint64
	modes [3]progress // indexed by Decision
	seen  uint32
	valid bool
}

// ILPPred is the adaptive forward-progress selector. Because it needs
// no-prediction windows for comparison, it periodically forces a confident
// load to go unpredicted (one in every sampleEvery encounters).
type ILPPred struct {
	entries []ilpEntry
	mode    config.VPMode

	// minSamples is how many windows of a mode are gathered before its
	// measured rate can veto it; until then the mode is allowed
	// (optimistic start, as in the paper's warm-up behaviour).
	minSamples uint32
	// sampleEvery forces a no-prediction calibration window per PC.
	sampleEvery uint32
}

// NewILPPred returns an ILP-pred selector with the given table size.
// mode caps the most aggressive decision available.
func NewILPPred(entries int, mode config.VPMode) *ILPPred {
	return &ILPPred{
		entries:     make([]ilpEntry, entries),
		mode:        mode,
		minSamples:  4,
		sampleEvery: 16,
	}
}

func (s *ILPPred) entry(pc uint64) *ilpEntry {
	e := &s.entries[pc%uint64(len(s.entries))]
	if !e.valid || e.pc != pc {
		*e = ilpEntry{pc: pc, valid: true}
	}
	return e
}

// Select implements Selector.
func (s *ILPPred) Select(pc uint64, _ cache.HitLevel, mtvpOK bool) Decision {
	e := s.entry(pc)
	e.seen++
	if e.seen%s.sampleEvery == 0 {
		return DecideNone // calibration window for the no-VP baseline
	}
	base := e.modes[DecideNone]
	allowed := func(d Decision) bool {
		m := e.modes[d]
		if m.samples < s.minSamples || base.samples < s.minSamples {
			return true // not enough data: stay optimistic
		}
		// Require a clear win, not a tie: spawning costs a context,
		// the register-map copy, and a front-end refill, so a mode
		// whose measured progress merely matches no-prediction loses.
		return m.rate() > base.rate()+base.rate()/8
	}
	if s.mode == config.VPMTVP && mtvpOK && allowed(DecideMTVP) {
		return DecideMTVP
	}
	if allowed(DecideSTVP) {
		return DecideSTVP
	}
	return DecideNone
}

// Observe implements Selector.
func (s *ILPPred) Observe(pc uint64, mode Decision, insts, cycles uint64) {
	e := s.entry(pc)
	m := &e.modes[mode]
	m.insts += insts
	m.cycles += cycles
	m.samples++
	// Periodically age the counters so the selector adapts to phase
	// changes instead of being dominated by stale history.
	if m.insts > 1<<40 || m.cycles > 1<<40 {
		m.insts >>= 1
		m.cycles >>= 1
	}
}

// Dump renders the selector's populated entries (for diagnostics/tests).
func (s *ILPPred) Dump() string {
	var b []byte
	for i := range s.entries {
		e := &s.entries[i]
		if !e.valid || e.seen < 32 {
			continue
		}
		b = append(b, []byte(fmt.Sprintf(
			"pc=%#x seen=%d none{n=%d r=%d} stvp{n=%d r=%d} mtvp{n=%d r=%d}\n",
			e.pc, e.seen,
			e.modes[DecideNone].samples, e.modes[DecideNone].rate(),
			e.modes[DecideSTVP].samples, e.modes[DecideSTVP].rate(),
			e.modes[DecideMTVP].samples, e.modes[DecideMTVP].rate()))...)
	}
	return string(b)
}

// L3Oracle is the expected-cache-behaviour selector of §5.1: loads that
// would miss to memory are followed in a thread, loads that miss the L1 are
// value predicted in place.
type L3Oracle struct {
	Mode config.VPMode
}

// Select implements Selector.
func (s *L3Oracle) Select(_ uint64, level cache.HitLevel, mtvpOK bool) Decision {
	switch {
	case level == cache.HitMem && s.Mode == config.VPMTVP && mtvpOK:
		return DecideMTVP
	case level >= cache.HitL2 || (level == cache.HitMem && s.Mode == config.VPSTVP):
		return DecideSTVP
	default:
		return DecideNone
	}
}

// Observe is a no-op: the oracle needs no feedback.
func (s *L3Oracle) Observe(uint64, Decision, uint64, uint64) {}

// Always follows every confident prediction, threaded when possible.
type Always struct {
	Mode config.VPMode
}

// Select implements Selector.
func (s *Always) Select(_ uint64, _ cache.HitLevel, mtvpOK bool) Decision {
	if s.Mode == config.VPMTVP && mtvpOK {
		return DecideMTVP
	}
	return DecideSTVP
}

// Observe is a no-op.
func (s *Always) Observe(uint64, Decision, uint64, uint64) {}

// Never declines every prediction.
type Never struct{}

// Select implements Selector.
func (Never) Select(uint64, cache.HitLevel, bool) Decision { return DecideNone }

// Observe is a no-op.
func (Never) Observe(uint64, Decision, uint64, uint64) {}

var (
	_ Selector = (*ILPPred)(nil)
	_ Selector = (*L3Oracle)(nil)
	_ Selector = (*Always)(nil)
	_ Selector = Never{}
)
