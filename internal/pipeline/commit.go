package pipeline

import (
	"mtvp/internal/isa"
	"mtvp/internal/oracle"
	"mtvp/internal/trace"
)

// commit retires done instructions in order from each thread's ROB, oldest
// thread first, within the shared commit bandwidth. This is the stage that
// gives threaded value prediction its advantage: a spawned thread commits
// past the stalled load (into its store buffer), while a single thread
// would be blocked behind it.
func (e *Engine) commit() {
	budget := e.cfg.CommitWidth
	for _, t := range e.liveByOrder() {
		for budget > 0 {
			if t.robHead >= len(t.rob) {
				break
			}
			u := t.rob[t.robHead]
			if u.state == stSquashed {
				t.robHead++
				continue
			}
			if u.state != stDone {
				break
			}
			e.commitOne(t, u)
			budget--
			if e.finished {
				return
			}
		}
		e.compactROB(t)
		if t.retiring && t.robEmpty() {
			e.freeRetiring(t)
			if e.finished { // a drained elder released a buffered HALT
				return
			}
		}
	}
}

func (e *Engine) commitOne(t *thread, u *uop) {
	if e.auditOn {
		e.auditCommit(t, u)
	}
	e.setUopState(u, stCommitted)
	t.robHead++
	e.robUsed--
	if u.usesRename {
		e.renameUsed--
	}
	t.committed++
	e.st.Committed++
	e.lastProgress = e.now
	e.noteCommitProgress()
	// Event edge: freed ROB/rename/store resources and the advanced head
	// make the next cycle actionable (more commits, blocked dispatch).
	e.wake(e.now + 1)
	if e.commitHook != nil {
		e.commitHook(u)
	}
	if e.checker != nil {
		e.checkCommit(t, u)
	}
	e.emit(trace.KCommit, u)

	switch {
	case u.dec.IsLoad:
		// Commit-time value-predictor training, as in the paper — but
		// only from the non-speculative lineage: speculative threads
		// commit out of program order relative to each other (and may be
		// wrong-path entirely), and letting them train garbles the value
		// history and pattern tables.
		if t.promoted {
			e.vp.Train(t.id, u.dec.InstAddr, u.ex.Value)
		}
	case u.dec.IsStore:
		e.commitStore(t, u)
	case u.dec.Inst.Op == isa.HALT:
		// The run ends only once the halting thread is the oldest live
		// thread: a promoted thread can commit HALT while a confirmed-away
		// elder is still draining older work, and finishing then would
		// freeze architectural state (and the checker's commit stream)
		// with that older work permanently missing.
		t.haltCommitted = true
		if t.promoted && e.oldestLive() == t {
			e.finishAt(t)
		}
	}
}

// commitStore retires a store: a non-speculative thread's store leaves the
// buffer and writes the cache; a speculative thread's store stays buffered
// (occupying its entry) until the thread is confirmed all the way up.
func (e *Engine) commitStore(t *thread, u *uop) {
	for i := range t.storeQ {
		if t.storeQ[i].u == u {
			if t.promoted {
				if e.auditOn {
					e.auditStoreDrain(t, t.storeQ[i].addr)
				}
				e.hier.Store(t.storeQ[i].addr)
				t.storeQ = append(t.storeQ[:i], t.storeQ[i+1:]...)
				e.noteStoreFree(1)
			} else {
				t.storeQ[i].u = nil // data committed, entry retained
			}
			return
		}
	}
}

// freeRetiring releases a confirmed-away parent once its final commits have
// drained, splicing its heir into its place in the thread lineage. The heir
// is looked up in the confirmed event's child list at drain time: if the
// original survivor has itself confirmed away in the meantime, the list
// already names its replacement.
func (e *Engine) freeRetiring(t *thread) {
	var heir *thread
	if t.confirmEvent != nil {
		for _, c := range t.confirmEvent.children {
			if c.live {
				heir = c
				break
			}
		}
	}
	t.retiring = false
	t.live = false
	// Event edge: the freed context, the heir's promotion, and any drained
	// stores change what the next cycle can do.
	e.wake(e.now + 1)
	e.slots[t.id] = nil
	e.threadRemoved(t)
	t.overlay.Release()
	// The drained ROB holds only committed/squashed uops; recycle them. Any
	// remaining storeQ entries carry u == nil (their stores committed before
	// the drain finished), so the transfer below never revives a freed uop.
	e.freeROB(t)

	if heir == nil {
		// Every child of the confirmed event died with a mispredicted
		// ancestor before the drain finished; nothing inherits. Any
		// still-buffered checker records die with the lineage — this
		// stream will be refetched (under new sequence numbers) by the
		// surviving ancestor.
		t.checkBuf = nil
		e.flushOldestCheck()
		return
	}
	heir.parent = t.parent
	heir.spawn = t.spawn
	heir.committed += t.committed
	if len(t.checkBuf) > 0 {
		// A parent that retired while itself still speculative hands its
		// unverified commits to the heir along with its lineage slot.
		heir.checkBuf = append(append([]oracle.Record(nil), t.checkBuf...), heir.checkBuf...)
		t.checkBuf = nil
	}
	if t.spawn != nil {
		for i, c := range t.spawn.children {
			if c == t {
				t.spawn.children[i] = heir
			}
		}
	}
	// Older buffered stores transfer to the heir so load forwarding and
	// buffer occupancy stay correct.
	if len(t.storeQ) > 0 {
		heir.storeQ = append(append([]storeEntry(nil), t.storeQ...), heir.storeQ...)
	}
	e.promoteReady()
}

// promoteReady promotes every thread whose ancestry has become fully
// non-speculative: its buffered committed stores drain to the cache and its
// overlay chain is collapsed.
func (e *Engine) promoteReady() {
	for _, t := range e.liveByOrder() {
		if t.promoted || t.isSpec() {
			continue
		}
		t.promoted = true
		e.emitThread(trace.KPromote, t, "non-speculative; store buffer drains")
		kept := t.storeQ[:0]
		for _, se := range t.storeQ {
			if se.u == nil || se.u.state == stCommitted {
				if e.auditOn {
					e.auditStoreDrain(t, se.addr)
				}
				e.hier.Store(se.addr)
				e.noteStoreFree(1)
			} else {
				kept = append(kept, se)
			}
		}
		t.storeQ = kept
		t.overlay.Collapse()
	}
	// A buffered HALT fires once its thread surfaces as the oldest live
	// thread — every elder drained and freed, so the program truly is over.
	if ts := e.liveByOrder(); !e.finished && len(ts) > 0 && ts[0].promoted && ts[0].haltCommitted {
		e.finishAt(ts[0])
	}
	e.flushOldestCheck()
}

// finishAt ends the simulation: a non-speculative thread committed HALT.
// Outstanding speculative threads are wrong-path by definition (the program
// is over) and are killed so final state checks see only committed work.
func (e *Engine) finishAt(t *thread) {
	e.finished = true
	e.haltedThread = t
	for _, o := range e.liveByOrder() {
		if o != t && descendsFrom(o, t) {
			e.killSubtree(o)
		}
	}
}
