package pipeline

import "mtvp/internal/oracle"

// Lockstep differential checking (cfg.Check). Commits arrive out of global
// program order: a speculative child commits past its parent's stalled load
// while the parent is still draining, and a killed thread's commits must be
// discarded retroactively. The engine therefore verifies eagerly only for
// the oldest live thread once it is promoted (its commits are definitely
// useful and in program order), and buffers every other thread's commits on
// the thread itself. Buffered records are:
//
//   - verified when their thread becomes the oldest promoted thread (its
//     elders fully drained, so its stream is the next useful work),
//   - inherited by the heir when a confirmed-away parent is freed while
//     still speculative itself, and
//   - dropped when the thread is killed (the engine discounts those commits
//     from useful work; the checker must never see them).
//
// Across the promoted lineage chain, thread commit streams are disjoint and
// ascending in fetch sequence (a confirmed parent's surviving work all
// precedes its heir's first fetch), so per-thread flushing in lineage order
// yields the exact program-order stream.

// checkCommit feeds one committed uop to the checker. Called from commitOne
// after the test commit hook, so fault-injection tests can corrupt the
// record the checker sees.
func (e *Engine) checkCommit(t *thread, u *uop) {
	rec := oracle.Record{Seq: u.seq, Thread: t.id, Order: t.order, Ex: u.ex}
	e.checker.Note(rec)
	if t.promoted && e.oldestLive() == t {
		e.flushCheck(t)
		e.verifyCheck(rec)
	} else {
		t.checkBuf = append(t.checkBuf, rec)
	}
}

// flushCheck verifies a thread's buffered commits in program order.
func (e *Engine) flushCheck(t *thread) {
	for _, rec := range t.checkBuf {
		e.verifyCheck(rec)
	}
	t.checkBuf = nil
}

func (e *Engine) verifyCheck(rec oracle.Record) {
	if e.checkErr != nil {
		return
	}
	if err := e.checker.Verify(rec); err != nil {
		e.checkErr = err
	}
}

// flushOldestCheck verifies the oldest live thread's buffered commits once
// it is promoted. Called after thread-set changes (retiring parent freed,
// promotions cascaded) that may have made buffered work the oldest.
func (e *Engine) flushOldestCheck() {
	if e.checker == nil {
		return
	}
	if ts := e.liveByOrder(); len(ts) > 0 && ts[0].promoted {
		e.flushCheck(ts[0])
	}
}

// flushFinalCheck runs at end of a completed run: it verifies remaining
// buffered commits down the promoted chain, stopping at the first thread
// that still holds uncommitted work (its successors' commits would leave a
// program-order gap the oracle cannot skip).
func (e *Engine) flushFinalCheck() {
	if e.checker == nil {
		return
	}
	for _, t := range e.liveByOrder() {
		if !t.promoted {
			break
		}
		e.flushCheck(t)
		if !threadDrained(t) {
			break
		}
	}
}

// threadDrained reports whether a thread has no uncommitted, unsquashed
// work left — nothing of its stream remains to commit.
func threadDrained(t *thread) bool {
	for i := t.robHead; i < len(t.rob); i++ {
		if t.rob[i].state != stSquashed {
			return false
		}
	}
	for _, u := range t.fetchBuf[t.fbHead:] {
		if u.state != stSquashed {
			return false
		}
	}
	return true
}

// oldestLive returns the oldest live thread, or nil.
func (e *Engine) oldestLive() *thread {
	if ts := e.liveByOrder(); len(ts) > 0 {
		return ts[0]
	}
	return nil
}

// CheckedCommits returns the number of useful commits verified against the
// lockstep oracle (0 when checking is disabled).
func (e *Engine) CheckedCommits() uint64 {
	if e.checker == nil {
		return 0
	}
	return e.checker.Verified()
}

// FinalCheck compares end-of-run architectural state (surviving register
// file and the drained memory image) against the oracle. It is meaningful
// after Finalize on a run that committed HALT; with checking disabled it
// reports nothing.
func (e *Engine) FinalCheck() error {
	if e.checker == nil {
		return nil
	}
	regs, ok := e.ArchRegs()
	if !ok {
		return nil
	}
	return e.checker.Final(regs, e.mem)
}
