package pipeline

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// Steady-state engine micro-benchmarks. Each case runs a fixed number of
// simulated cycles, so host time per op tracks simulator throughput
// directly and benchstat comparisons against the committed baseline
// (BENCH_5.json, ci perf job) are meaningful. ReportMetric publishes the
// simulated-cycle and committed-instruction rates alongside ns/op.

type steadyCase struct {
	name   string
	cycles uint64
	cfg    func() config.Config
	bench  workload.Benchmark
}

func steadyCases() []steadyCase {
	return []steadyCase{
		{
			// DL1-resident chase: commits nearly every cycle; stresses the
			// per-cycle stage walk and uop recycling, never the idle path.
			name:   "hit-heavy",
			cycles: 300_000,
			cfg:    config.Baseline,
			bench: workload.PointerChase("steady-hit", workload.INT, workload.ChaseParams{
				Nodes: 256, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 90, BodyOps: 12, Iters: 1 << 40,
			}),
		},
		{
			// 16 MB chase, far over the 4 MB L3: almost every next-pointer
			// load is a ~1000-cycle miss — the regime the paper cares about
			// and the one idle-cycle fast-forward targets.
			name:   "miss-heavy",
			cycles: 1_000_000,
			cfg:    config.Baseline,
			bench: workload.PointerChase("steady-miss", workload.INT, workload.ChaseParams{
				Nodes: 1 << 18, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 10, BodyOps: 4, Iters: 1 << 40,
			}),
		},
		{
			// MTVP8 with the oracle predictor over an L3-busting chase:
			// continuous spawn/confirm churn exercises thread bookkeeping,
			// overlay forks, and ordered-list maintenance.
			name:   "deep-speculation",
			cycles: 300_000,
			cfg:    func() config.Config { return mtvpOracleCfg(8) },
			bench: workload.PointerChase("steady-spec", workload.INT, workload.ChaseParams{
				Nodes: 1 << 16, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 30, BodyOps: 8, Iters: 1 << 40,
			}),
		},
	}
}

func BenchmarkEngineSteadyState(b *testing.B) {
	for _, c := range steadyCases() {
		b.Run(c.name, func(b *testing.B) {
			var simCycles, simInsts uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := c.cfg()
				cfg.MaxInsts = 1 << 62
				cfg.MaxCycles = c.cycles
				prog, image := c.bench.Build(1)
				st := &stats.Stats{}
				eng, err := New(&cfg, prog, image, st)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				simCycles += st.Cycles
				simInsts += st.Committed
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(simCycles)/sec/1e6, "Mcycles/s")
				b.ReportMetric(float64(simInsts)/sec/1e6, "Minsts/s")
			}
		})
	}
}
