package pipeline

import (
	"sort"

	"mtvp/internal/fault"
	"mtvp/internal/isa"
	"mtvp/internal/trace"
)

// issue selects ready instructions oldest-first across the shared queues,
// subject to the total issue width and per-class limits (6 integer, 2 FP,
// 4 load/store), and schedules their completions.
func (e *Engine) issue() {
	total := e.cfg.IssueWidth
	intLeft, fpLeft, memLeft := e.cfg.IntIssue, e.cfg.FPIssue, e.cfg.MemIssue

	ready := e.readyBuf[:0]
	for q := queueKind(0); q < numQueues; q++ {
		e.compactQueue(q)
		// The scan-and-wake loop reads only the flat SoA mirrors until a
		// candidate passes the state and stick checks; the uop struct
		// itself is touched just for the operand-readiness walk.
		for _, s := range e.waiting[q] {
			if e.soaState[s] != stWaiting || e.soaStuck[s] > e.now {
				continue
			}
			if u := e.slotUops[s]; e.uopReady(u) {
				ready = append(ready, u)
			}
		}
	}
	e.readyBuf = ready
	sort.Sort((*uopsBySeq)(&e.readyBuf))

	for _, u := range e.readyBuf {
		if total == 0 {
			break
		}
		if u.state != stWaiting {
			// A reissued uop can appear twice in the waiting lists (its
			// pre-issue entry plus the reissue append); the first issue
			// this cycle invalidates later duplicates.
			continue
		}
		switch u.queue {
		case qInt:
			if intLeft == 0 {
				continue
			}
			intLeft--
		case qFP:
			if fpLeft == 0 {
				continue
			}
			fpLeft--
		default:
			if memLeft == 0 {
				continue
			}
			memLeft--
		}
		total--
		e.issueOne(u)
	}
}

// uopReady reports whether all of u's producers have results (or offer
// speculative ones) and any forwarding store has executed.
func (e *Engine) uopReady(u *uop) bool {
	for _, pr := range u.prods {
		if p := pr.get(); p != nil && !producerReady(p) {
			return false
		}
	}
	if f := u.fwdFrom.get(); f != nil && !producerReady(f) {
		return false
	}
	return true
}

func (e *Engine) issueOne(u *uop) {
	e.setUopState(u, stIssued)
	u.issueGen++
	u.thread.icount--
	e.qUsed[u.queue]--
	e.st.Issued++

	done := e.now + e.latencyOf(u)
	u.doneCycle = done
	e.completions.schedule(u, done)
	// Event edges: the completion fires at done, and the freed queue slot
	// (plus any width-limited ready peers) makes the next cycle actionable.
	e.wake(done)
	e.wake(e.now + 1)
	if u.class == isa.ClassLoad {
		e.noteLoadLatencyTelemetry(done - e.now)
	}
	e.emit(trace.KIssue, u)
}

// latencyOf computes the execution latency of u, performing the cache
// access for loads (this is where the prefetcher trains, in issue order).
func (e *Engine) latencyOf(u *uop) int64 {
	cfg := e.cfg
	switch u.class {
	case isa.ClassLoad:
		if u.fwdStore {
			e.st.StoreBufHits++
			return int64(cfg.DL1.Latency)
		}
		pcAddr := u.dec.InstAddr
		ready, lvl := e.hier.Load(pcAddr, u.ex.Addr, e.now)
		u.hitLevel = lvl
		lat := ready - e.now
		if e.injectFault(fault.MemDelay) {
			// Memory-system hiccup: the completion is late by a large
			// constant, stressing the watchdog and resolve paths.
			lat += int64(e.inj.Profile().MemDelayCycles)
		}
		return lat
	case isa.ClassStore:
		return 1
	case isa.ClassIntMul:
		return int64(cfg.LatIntMul)
	case isa.ClassIntDiv:
		return int64(cfg.LatIntDiv)
	case isa.ClassFPAdd:
		return int64(cfg.LatFPAdd)
	case isa.ClassFPMul:
		return int64(cfg.LatFPMul)
	case isa.ClassFPDiv:
		return int64(cfg.LatFPDiv)
	default:
		return int64(cfg.LatIntALU)
	}
}

// compactQueue drops issued and squashed uops from a waiting list.
func (e *Engine) compactQueue(q queueKind) {
	w := e.waiting[q][:0]
	for _, s := range e.waiting[q] {
		if e.soaState[s] == stWaiting {
			w = append(w, s)
		}
	}
	e.waiting[q] = w
}
