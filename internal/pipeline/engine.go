package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"mtvp/internal/bpred"
	"mtvp/internal/cache"
	"mtvp/internal/config"
	"mtvp/internal/crit"
	"mtvp/internal/fault"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/oracle"
	"mtvp/internal/stats"
	"mtvp/internal/storebuf"
	"mtvp/internal/telemetry"
	"mtvp/internal/trace"
	"mtvp/internal/vpred"
)

// Engine is the cycle-level SMT processor. One Engine simulates one program
// (the paper studies single-threaded applications; all hardware contexts
// beyond the first exist for speculation).
type Engine struct {
	cfg  *config.Config
	prog *isa.Program
	mem  *mem.Memory

	hier *cache.Hierarchy
	bp   bpred.Predictor
	vp   vpred.Predictor
	sel  crit.Selector
	st   *stats.Stats

	slots   []*thread // hardware contexts; nil = free
	now     int64
	seqCtr  uint64
	ordCtr  int64
	fbufCap int

	robUsed         int
	renameUsed      int
	sharedStoreUsed int // occupancy of the unified tagged store buffer
	qUsed           [numQueues]int
	qCap            [numQueues]int
	waiting         [numQueues][]*uop
	completions     uopHeap

	finished     bool
	haltedThread *thread
	lastProgress int64 // cycle of the last commit (watchdog)

	// ordered caches liveByOrder between thread-set changes. A rebuild
	// allocates a fresh slice so snapshots held by in-flight iterations
	// stay valid.
	ordered      []*thread
	orderedDirty bool

	// pendingWindows holds resolved value-prediction events whose ILP-pred
	// measurement window is still open: windows have a minimum length so a
	// short window cannot be dominated by the commit burst of a draining
	// parent (which would credit the spawn with work it did not cause).
	pendingWindows []*vpEvent

	commitHook func(u *uop)       // test instrumentation; nil in normal runs
	tracer     trace.Tracer       // optional event tracer; nil in normal runs
	tel        *telemetry.Machine // optional metrics probe; nil in normal runs

	// Robustness: the fault injector (nil-safe; nil when no profile is
	// armed) and the recovery controller (always present).
	inj *fault.Injector
	rec *recovery

	// Differential checking (cfg.Check): the lockstep oracle checker and
	// the invariant auditor. Both nil/off in normal performance runs.
	checker  *oracle.Checker
	checkErr error
	auditOn  bool
	auditErr error
}

// SetTracer attaches an event tracer. Tracing is observational only.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// emit sends an instruction-level event to the tracer, if attached.
func (e *Engine) emit(k trace.Kind, u *uop) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:  e.now,
		Kind:   k,
		Thread: u.thread.id,
		Order:  u.thread.order,
		Seq:    u.seq,
		PC:     u.ex.PC,
		Text:   u.ex.Inst.String(),
	})
}

// emitThread sends a thread-level event to the tracer, if attached.
func (e *Engine) emitThread(k trace.Kind, t *thread, text string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:  e.now,
		Kind:   k,
		Thread: t.id,
		Order:  t.order,
		PC:     -1,
		Text:   text,
	})
}

// emitThreadPeer is emitThread for pairwise events (spawn, confirm): peer
// is the other context — the spawning or retiring parent — so
// machine-readable sinks can draw flow arrows between tracks.
func (e *Engine) emitThreadPeer(k trace.Kind, t, peer *thread, text string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:     e.now,
		Kind:      k,
		Thread:    t.id,
		Order:     t.order,
		PC:        -1,
		Text:      text,
		Peer:      peer.id,
		PeerOrder: peer.order,
		HasPeer:   true,
	})
}

// New builds an engine for prog over memory under cfg. The memory should
// already hold the workload's initialised data.
func New(cfg *config.Config, prog *isa.Program, memory *mem.Memory, st *stats.Stats) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		prog:    prog,
		mem:     memory,
		hier:    cache.NewHierarchy(cfg, st),
		bp:      bpred.New2bcgskew(cfg.Branch),
		vp:      vpred.New(cfg),
		sel:     crit.New(cfg),
		st:      st,
		slots:   make([]*thread, cfg.Contexts),
		fbufCap: cfg.FetchWidth * cfg.FrontEndDepth,
	}
	e.qCap[qInt] = cfg.IQSize
	e.qCap[qFP] = cfg.FQSize
	e.qCap[qMem] = cfg.MQSize

	prof, err := fault.ByName(cfg.Faults.Profile)
	if err != nil {
		return nil, err
	}
	if !prof.Empty() {
		e.inj = fault.NewInjector(prof, cfg.Faults.Seed)
	}
	// Quarantine clamps to twice the predictor's normal confidence bar.
	e.rec = newRecovery(cfg, 2*vpred.BaseThreshold(cfg))

	if cfg.Check {
		// The checker clones the image before the engine can touch it;
		// the auditor rides the same knob.
		e.checker = oracle.NewChecker(prog, memory, cfg.CheckWindow)
		e.auditOn = true
	}

	root := &thread{
		id:       0,
		live:     true,
		overlay:  storebuf.New(memory),
		order:    e.ordCtr,
		promoted: true,
	}
	root.ctx = isa.NewContext(prog, root.overlay)
	e.ordCtr++
	e.slots[0] = root
	e.orderedDirty = true
	return e, nil
}

// Stats returns the engine's counter set.
func (e *Engine) Stats() *stats.Stats { return e.st }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// storeBufFull reports whether thread t may not allocate another store
// buffer entry: per-context capacity by default, or the shared pool of the
// unified tagged buffer (§3.3) when configured.
func (e *Engine) storeBufFull(t *thread) bool {
	if e.cfg.VP.SharedStoreBuf {
		return e.sharedStoreUsed >= e.cfg.VP.SharedStoreBufEntries
	}
	return t.storeQFull(e.cfg.VP.StoreBufEntries)
}

func (e *Engine) noteStoreAlloc() {
	if e.cfg.VP.SharedStoreBuf {
		e.sharedStoreUsed++
	}
}

func (e *Engine) noteStoreFree(n int) {
	if e.cfg.VP.SharedStoreBuf {
		e.sharedStoreUsed -= n
		if e.sharedStoreUsed < 0 {
			panic("pipeline: shared store buffer over-released")
		}
	}
}

// freeSlot returns the index of a free hardware context, or -1.
func (e *Engine) freeSlot() int {
	for i, t := range e.slots {
		if t == nil {
			return i
		}
	}
	return -1
}

func (e *Engine) freeSlots() int {
	n := 0
	for _, t := range e.slots {
		if t == nil {
			n++
		}
	}
	return n
}

// liveByOrder returns the live threads oldest-first. The result must be
// treated as read-only; it is cached until the thread set changes.
func (e *Engine) liveByOrder() []*thread {
	if !e.orderedDirty {
		return e.ordered
	}
	ts := make([]*thread, 0, len(e.slots))
	for _, t := range e.slots {
		if t != nil && t.live {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].order < ts[j].order })
	e.ordered = ts
	e.orderedDirty = false
	return ts
}

// Run simulates until the useful-instruction budget is exhausted, the
// program halts, or the cycle cap is reached. It returns an error only when
// the machine cannot make progress (a *fault.Report after recovery is
// exhausted) or a checked run diverges, never for program behaviour.
// ErrCanceled is returned by Run when a cfg.Observe hook asks the engine to
// stop: the campaign harness canceled the run (deadline, progress-watchdog
// stall kill, or shutdown). The run's statistics are valid up to the cycle
// of cancellation.
var ErrCanceled = errors.New("run canceled by observer")

// observeMask sets how often a cfg.Observe hook is polled: every 1024
// simulated cycles, frequent enough that cancellation lands within
// microseconds of wall time but far off the per-cycle hot path.
const observeMask = 1<<10 - 1

func (e *Engine) Run() error {
	for !e.finished {
		e.now++
		e.commit()
		if e.checkErr != nil {
			e.st.Cycles = uint64(e.now)
			return e.checkErr
		}
		e.complete()
		e.issue()
		e.dispatch()
		e.fetch()
		if e.tel != nil {
			e.telemetryCycle()
		}
		if e.auditOn {
			if err := e.auditCycle(); err != nil {
				e.st.Cycles = uint64(e.now)
				return err
			}
		}

		if e.st.Committed >= e.cfg.MaxInsts {
			break
		}
		if uint64(e.now) >= e.cfg.MaxCycles {
			break
		}
		if e.cfg.Observe != nil && e.now&observeMask == 0 {
			if !e.cfg.Observe(uint64(e.now), e.st.Committed) {
				e.st.Cycles = uint64(e.now)
				if e.tracer != nil {
					e.tracer.Emit(trace.Event{
						Cycle: e.now, Kind: trace.KCancel,
						Thread: -1, PC: -1,
						Text: "canceled by observer",
					})
				}
				return ErrCanceled
			}
		}
		// Commit-progress watchdog, with exponential backoff after each
		// recovery so a break/re-stall loop terminates in bounded time.
		if e.now-e.lastProgress > e.rec.watchdogBase*e.rec.backoff.Multiplier() {
			if e.recoverStall() {
				continue
			}
			e.st.Cycles = uint64(e.now)
			return e.faultReport(fmt.Sprintf("no commit progress since cycle %d (now %d): %s",
				e.lastProgress, e.now, e.describeStall()))
		}
	}
	e.st.Cycles = uint64(e.now)
	if e.finished {
		// The run ended at a useful HALT: whatever useful work was still
		// buffered on younger promoted threads is program-order complete
		// and can be verified now.
		e.flushFinalCheck()
		if e.checkErr != nil {
			return e.checkErr
		}
	}
	if e.auditOn {
		if e.auditErr == nil {
			e.auditScan()
		}
		if e.auditErr != nil {
			return e.auditErr
		}
	}
	return nil
}

// breakDeadlock recovers from speculation-induced resource deadlock: a
// spawned thread's dependence map names parent uops that are still waiting to
// dispatch, and its dependent uops fill the shared issue queues until the
// parent can no longer dispatch the very load that would resolve the
// speculation — circular wait, zero commits. Real designs bound speculative
// resource occupancy; ours recovers by killing the youngest speculative
// subtree (its queue slots free, the machine resumes). It is one action of
// the recovery controller (recover.go), which bounds and backs off retries.
func (e *Engine) breakDeadlock() bool {
	var victim *thread
	for _, t := range e.liveByOrder() {
		if t.isSpec() && (victim == nil || t.order > victim.order) {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	e.emitThread(trace.KKill, victim, "killed to break resource deadlock")
	e.killSubtree(victim)
	e.lastProgress = e.now
	return true
}

// Finalize drains the surviving architectural thread's speculative store
// state into flat memory so the image reflects committed execution. It is
// meaningful after a run that ended at a HALT.
func (e *Engine) Finalize() {
	arch := e.archThread()
	if arch != nil {
		arch.overlay.DrainTo(e.mem)
	}
}

// archThread returns the oldest live non-speculative thread.
func (e *Engine) archThread() *thread {
	for _, t := range e.liveByOrder() {
		if !t.isSpec() {
			return t
		}
	}
	return nil
}

// ArchRegs returns the architectural register file of the surviving thread
// (for equivalence tests) and whether one exists.
func (e *Engine) ArchRegs() ([isa.NumRegs]uint64, bool) {
	t := e.archThread()
	if t == nil {
		return [isa.NumRegs]uint64{}, false
	}
	return t.ctx.R, true
}

// Halted reports whether the program ran to completion (committed a HALT).
func (e *Engine) Halted() bool { return e.haltedThread != nil }

func (e *Engine) describeStall() string {
	s := fmt.Sprintf("rob=%d/%d rename=%d/%d q=[%d %d %d]",
		e.robUsed, e.cfg.ROBSize, e.renameUsed, e.cfg.RenameRegs,
		e.qUsed[qInt], e.qUsed[qFP], e.qUsed[qMem])
	for _, t := range e.liveByOrder() {
		s += fmt.Sprintf(" T%d{ord=%d rob=%d fbuf=%d blocked=%d stall=%v retiring=%v spec=%v halted=%v pc=%d}",
			t.id, t.order, t.robOccupied(), len(t.fetchBuf), t.fetchBlocked,
			t.stallFetch, t.retiring, t.isSpec(), t.ctx.Halted, t.ctx.PC)
	}
	return s
}
