package pipeline

import (
	"errors"
	"fmt"
	"os"

	"mtvp/internal/bpred"
	"mtvp/internal/cache"
	"mtvp/internal/config"
	"mtvp/internal/crit"
	"mtvp/internal/fault"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/oracle"
	"mtvp/internal/stats"
	"mtvp/internal/storebuf"
	"mtvp/internal/telemetry"
	"mtvp/internal/trace"
	"mtvp/internal/vpred"
)

// Engine is the cycle-level SMT processor. One Engine simulates one program
// (the paper studies single-threaded applications; all hardware contexts
// beyond the first exist for speculation).
type Engine struct {
	cfg  *config.Config
	prog *isa.Program
	dec  []isa.Decoded // predecode table, indexed by PC
	mem  *mem.Memory

	hier *cache.Hierarchy
	bp   bpred.Predictor
	vp   *vpred.Bank
	sel  crit.Selector
	st   *stats.Stats

	slots   []*thread // hardware contexts; nil = free
	now     int64
	seqCtr  uint64
	ordCtr  int64
	fbufCap int

	robUsed         int
	renameUsed      int
	sharedStoreUsed int // occupancy of the unified tagged store buffer
	qUsed           [numQueues]int
	qCap            [numQueues]int
	waiting         [numQueues][]int32 // uop pool slots (see the SoA arrays)
	completions     uopHeap

	// Struct-of-arrays storage for the scheduler's hot uop fields, indexed
	// by the pooled uop's permanent slot. The issue stage's scan-and-wake
	// loop touches only these two flat arrays (plus the waiting slot lists
	// above), so it walks cache lines instead of chasing uop pointers; the
	// full uop struct is only dereferenced once a candidate passes. The
	// mirrors are written exclusively through setUopState/setStuckUntil and
	// follow the pool's ghost discipline: a freed uop's slot keeps its
	// terminal state until reallocation, so a stale waiting-list slot reads
	// stCommitted/stSquashed and drops out, exactly as the bare pointers
	// did before (pool.go).
	soaState []uopState
	soaStuck []int64
	slotUops []*uop // slot -> uop; stable for the engine's lifetime

	finished     bool
	haltedThread *thread
	lastProgress int64 // cycle of the last commit (watchdog)

	// ordered is the live threads oldest-first, maintained incrementally at
	// spawn and death (ordCtr is monotone, so a new thread is always the
	// youngest and appends in place). Every mutation builds a fresh slice so
	// snapshots held by in-flight iterations stay valid.
	ordered []*thread

	// noFF disables idle-cycle fast-forward (Config.DisableFastForward or
	// the MTVP_NO_FASTFWD environment variable); ffSkipped counts the idle
	// cycles elided, for tests that need to prove the fast path engaged.
	noFF      bool
	ffSkipped uint64

	// evq is the event-driven scheduler's calendar (events.go); nil when
	// Config.DisableEventQueue or MTVP_NO_EVENTQ selects the legacy polling
	// scan. evqCheck makes every calendar jump cross-check against the
	// polling scan (tests and fuzzing only).
	evq      *eventQueue
	evqCheck bool

	// Hot-loop scratch, reused across cycles to keep the steady state
	// allocation-free.
	uopFree   []*uop
	pickedBuf []*thread
	readyBuf  []*uop

	// pendingWindows holds resolved value-prediction events whose ILP-pred
	// measurement window is still open: windows have a minimum length so a
	// short window cannot be dominated by the commit burst of a draining
	// parent (which would credit the spawn with work it did not cause).
	pendingWindows []*vpEvent

	commitHook func(u *uop)       // test instrumentation; nil in normal runs
	tracer     trace.Tracer       // optional event tracer; nil in normal runs
	tel        *telemetry.Machine // optional metrics probe; nil in normal runs

	// Robustness: the fault injector (nil-safe; nil when no profile is
	// armed) and the recovery controller (always present).
	inj *fault.Injector
	rec *recovery

	// Differential checking (cfg.Check): the lockstep oracle checker and
	// the invariant auditor. Both nil/off in normal performance runs.
	checker  *oracle.Checker
	checkErr error
	auditOn  bool
	auditErr error
}

// SetTracer attaches an event tracer. Tracing is observational only.
func (e *Engine) SetTracer(t trace.Tracer) { e.tracer = t }

// emit sends an instruction-level event to the tracer, if attached.
func (e *Engine) emit(k trace.Kind, u *uop) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:  e.now,
		Kind:   k,
		Thread: u.thread.id,
		Order:  u.thread.order,
		Seq:    u.seq,
		PC:     u.ex.PC,
		Text:   u.ex.Inst.String(),
	})
}

// emitThread sends a thread-level event to the tracer, if attached.
func (e *Engine) emitThread(k trace.Kind, t *thread, text string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:  e.now,
		Kind:   k,
		Thread: t.id,
		Order:  t.order,
		PC:     -1,
		Text:   text,
	})
}

// emitThreadPeer is emitThread for pairwise events (spawn, confirm): peer
// is the other context — the spawning or retiring parent — so
// machine-readable sinks can draw flow arrows between tracks.
func (e *Engine) emitThreadPeer(k trace.Kind, t, peer *thread, text string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:     e.now,
		Kind:      k,
		Thread:    t.id,
		Order:     t.order,
		PC:        -1,
		Text:      text,
		Peer:      peer.id,
		PeerOrder: peer.order,
		HasPeer:   true,
	})
}

// New builds an engine for prog over memory under cfg. The memory should
// already hold the workload's initialised data.
func New(cfg *config.Config, prog *isa.Program, memory *mem.Memory, st *stats.Stats) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		prog:    prog,
		dec:     prog.Decode(),
		mem:     memory,
		noFF:    cfg.DisableFastForward || os.Getenv("MTVP_NO_FASTFWD") != "",
		hier:    cache.NewHierarchy(cfg, st),
		bp:      bpred.New2bcgskew(cfg.Branch),
		vp:      vpred.NewBank(cfg),
		sel:     crit.New(cfg),
		st:      st,
		slots:   make([]*thread, cfg.Contexts),
		fbufCap: cfg.FetchWidth * cfg.FrontEndDepth,
	}
	e.qCap[qInt] = cfg.IQSize
	e.qCap[qFP] = cfg.FQSize
	e.qCap[qMem] = cfg.MQSize
	if !cfg.DisableEventQueue && os.Getenv("MTVP_NO_EVENTQ") == "" {
		e.evq = &eventQueue{}
	}

	prof, err := fault.ByName(cfg.Faults.Profile)
	if err != nil {
		return nil, err
	}
	if !prof.Empty() {
		e.inj = fault.NewInjector(prof, cfg.Faults.Seed)
	}
	// Quarantine clamps to twice the predictor's normal confidence bar.
	e.rec = newRecovery(cfg, 2*vpred.BaseThreshold(cfg))

	if cfg.Check {
		// The checker clones the image before the engine can touch it;
		// the auditor rides the same knob.
		e.checker = oracle.NewChecker(prog, memory, cfg.CheckWindow)
		e.auditOn = true
	}

	root := &thread{
		id:       0,
		live:     true,
		overlay:  storebuf.New(memory),
		order:    e.ordCtr,
		promoted: true,
	}
	root.ctx = isa.NewContext(prog, root.overlay)
	e.ordCtr++
	e.slots[0] = root
	e.ordered = []*thread{root}
	return e, nil
}

// Stats returns the engine's counter set.
func (e *Engine) Stats() *stats.Stats { return e.st }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// storeBufFull reports whether thread t may not allocate another store
// buffer entry: per-context capacity by default, or the shared pool of the
// unified tagged buffer (§3.3) when configured.
func (e *Engine) storeBufFull(t *thread) bool {
	if e.cfg.VP.SharedStoreBuf {
		return e.sharedStoreUsed >= e.cfg.VP.SharedStoreBufEntries
	}
	return t.storeQFull(e.cfg.VP.StoreBufEntries)
}

func (e *Engine) noteStoreAlloc() {
	if e.cfg.VP.SharedStoreBuf {
		e.sharedStoreUsed++
	}
}

func (e *Engine) noteStoreFree(n int) {
	if e.cfg.VP.SharedStoreBuf {
		e.sharedStoreUsed -= n
		if e.sharedStoreUsed < 0 {
			panic("pipeline: shared store buffer over-released")
		}
	}
}

// freeSlot returns the index of a free hardware context, or -1.
func (e *Engine) freeSlot() int {
	for i, t := range e.slots {
		if t == nil {
			return i
		}
	}
	return -1
}

func (e *Engine) freeSlots() int {
	n := 0
	for _, t := range e.slots {
		if t == nil {
			n++
		}
	}
	return n
}

// liveByOrder returns the live threads oldest-first. The result must be
// treated as read-only; it is maintained incrementally by threadAdded and
// threadRemoved, which build fresh slices — so a snapshot taken before a
// thread-set change (killSubtree's iteration, for example) stays intact.
func (e *Engine) liveByOrder() []*thread { return e.ordered }

// threadAdded appends a newly spawned thread. ordCtr is monotone, so the
// new thread is always the youngest and the list stays sorted.
func (e *Engine) threadAdded(t *thread) {
	next := make([]*thread, 0, len(e.ordered)+1)
	next = append(next, e.ordered...)
	e.ordered = append(next, t)
}

// threadRemoved drops a dead thread, preserving order.
func (e *Engine) threadRemoved(t *thread) {
	next := make([]*thread, 0, len(e.ordered))
	for _, o := range e.ordered {
		if o != t {
			next = append(next, o)
		}
	}
	e.ordered = next
}

// Run simulates until the useful-instruction budget is exhausted, the
// program halts, or the cycle cap is reached. It returns an error only when
// the machine cannot make progress (a *fault.Report after recovery is
// exhausted) or a checked run diverges, never for program behaviour.
// ErrCanceled is returned by Run when a cfg.Observe hook asks the engine to
// stop: the campaign harness canceled the run (deadline, progress-watchdog
// stall kill, or shutdown). The run's statistics are valid up to the cycle
// of cancellation.
var ErrCanceled = errors.New("run canceled by observer")

// observeMask sets how often a cfg.Observe hook is polled: every 1024
// simulated cycles, frequent enough that cancellation lands within
// microseconds of wall time but far off the per-cycle hot path.
const observeMask = 1<<10 - 1

func (e *Engine) Run() error {
	// Fold the predictor bank's sharing-probe counters into the run's stats
	// on every exit path (finish, cancel, check failure, fault abort).
	defer e.foldSharingStats()
	for !e.finished {
		stop, err := e.runCycle()
		if err != nil {
			return err
		}
		if stop {
			break
		}
	}
	e.st.Cycles = uint64(e.now)
	if e.finished {
		// The run ended at a useful HALT: whatever useful work was still
		// buffered on younger promoted threads is program-order complete
		// and can be verified now.
		e.flushFinalCheck()
		if e.checkErr != nil {
			return e.checkErr
		}
	}
	if e.auditOn {
		if e.auditErr == nil {
			e.auditScan()
		}
		if e.auditErr != nil {
			return e.auditErr
		}
	}
	return nil
}

// runCycle simulates exactly one cycle (plus, at its end, any provably inert
// cycles the fast-forward can elide). It reports whether the run should stop
// and any terminal error, leaving Run itself a thin loop — and giving the
// zero-allocation test a per-cycle unit to measure.
func (e *Engine) runCycle() (stop bool, err error) {
	e.now++
	e.commit()
	if e.checkErr != nil {
		e.st.Cycles = uint64(e.now)
		return true, e.checkErr
	}
	e.complete()
	e.issue()
	e.dispatch()
	e.fetch()
	if e.tel != nil {
		e.telemetryCycle()
	}
	if e.auditOn {
		if err := e.auditCycle(); err != nil {
			e.st.Cycles = uint64(e.now)
			return true, err
		}
	}

	if e.st.Committed >= e.cfg.MaxInsts {
		return true, nil
	}
	if uint64(e.now) >= e.cfg.MaxCycles {
		return true, nil
	}
	if e.cfg.Observe != nil && e.now&observeMask == 0 {
		if !e.cfg.Observe(uint64(e.now), e.st.Committed) {
			e.st.Cycles = uint64(e.now)
			if e.tracer != nil {
				e.tracer.Emit(trace.Event{
					Cycle: e.now, Kind: trace.KCancel,
					Thread: -1, PC: -1,
					Text: "canceled by observer",
				})
			}
			return true, ErrCanceled
		}
	}
	// Commit-progress watchdog, with exponential backoff after each
	// recovery so a break/re-stall loop terminates in bounded time.
	if e.now-e.lastProgress > e.rec.watchdogBase*e.rec.backoff.Multiplier() {
		if !e.recoverStall() {
			e.st.Cycles = uint64(e.now)
			return true, e.faultReport(fmt.Sprintf("no commit progress since cycle %d (now %d): %s",
				e.lastProgress, e.now, e.describeStall()))
		}
	}
	if !e.finished {
		// Neither scheduler skips ahead once the program has finished:
		// the jump would inflate the final cycle count with a post-HALT
		// idle window no stage will ever run in. (The polling fast-forward
		// used to do exactly that on halting runs, leaving Stats.Cycles
		// dependent on the DisableFastForward flag; guarded, both
		// schedulers and both flags agree on every run.)
		if e.evq != nil {
			e.eventForward()
		} else if !e.noFF {
			e.fastForward()
		}
	}
	return false, nil
}

// fastForward elides cycles during which the machine provably cannot change
// state: no thread can commit, complete, issue, dispatch, or fetch before
// the earliest wake-up edge. It jumps `now` to the cycle before that edge —
// the wake cycle itself then runs through the normal per-cycle loop — and
// replays the only per-idle-cycle effects the skipped range would have had:
// the FetchBlocked counter (fetch() increments it exactly once per cycle in
// which no thread is fetch-eligible, which holds for every skipped cycle by
// construction) and the telemetry probe's sample-bucket closes (gauges and
// counters are constant over an inert range, so the closes are synthesized
// with zero deltas; see Machine.TickIdleRange). Everything observable — the
// stats, the time series, the Observe/watchdog/audit polling cycles — is
// bit-identical to per-cycle execution, which the fast-forward A/B test and
// the MTVP_NO_FASTFWD sweep enforce.
func (e *Engine) fastForward() {
	wake, ok := e.nextWake()
	if !ok {
		return
	}
	target := wake - 1
	// Never skip past the cycle-budget boundary: the per-cycle machine
	// still executes cycle MaxCycles before stopping.
	if mc := e.cfg.MaxCycles; mc <= uint64(1)<<62 && target > int64(mc)-1 {
		target = int64(mc) - 1
	}
	if target <= e.now {
		return
	}
	if e.tel != nil {
		e.telemetrySkip(e.now+1, target)
	}
	skipped := uint64(target - e.now)
	e.st.FetchBlocked += skipped
	e.ffSkipped += skipped
	e.now = target
}

// nextWake computes the earliest future cycle at which the machine could
// act, returning ok=false when the machine is not quiescent (some stage has
// work right now, so no cycle may be skipped). Every state transition the
// per-cycle loop could perform is either available now (not quiescent) or
// gated by one of the enumerated edges:
//
//   - commit: a done/squashed ROB head, or a drained retiring thread, acts
//     on the next cycle — not quiescent;
//   - complete: pending completions wake at the heap's top cycle, and
//     deferred ILP-pred windows flush at startCycle+windowMinCycles
//     (flushWindows feeds the selector the then-current cycle, so the flush
//     must happen on exactly that cycle);
//   - issue: a ready, unstuck waiting uop issues now — not quiescent; a
//     stuck one wakes when its stick elapses. Readiness only changes on
//     completions or dispatches, both covered;
//   - dispatch: a thread's head uop dispatches when its front-end delay and
//     spawn hold expire — an edge if in the future, activity if resources
//     are free now. If resources are exhausted, they can only be released
//     by a commit, squash, or issue, all covered by other edges;
//   - fetch: a fetch-eligible thread acts now; one gated only by
//     fetchBlocked wakes then. All other gates (blockedOn, stallFetch,
//     retiring, halt) clear solely through covered events;
//   - environment: the Observe poll, the periodic audit scan, and the
//     commit-progress watchdog run at fixed cycle edges and must observe
//     identical cycles, so each caps the jump.
func (e *Engine) nextWake() (int64, bool) {
	// The watchdog edge always exists and bounds the skip.
	wake := e.lastProgress + e.rec.watchdogBase*e.rec.backoff.Multiplier() + 1
	edge := func(c int64) {
		if c < wake {
			wake = c
		}
	}

	for _, t := range e.liveByOrder() {
		if t.robHead < len(t.rob) {
			switch t.rob[t.robHead].state {
			case stDone, stSquashed:
				return 0, false // commit acts next cycle
			}
		}
		if t.retiring && t.robEmpty() {
			return 0, false // freeRetiring acts next cycle
		}
		if t.fetchBufLen() > 0 {
			u := t.fetchBuf[t.fbHead]
			if u.state == stSquashed {
				return 0, false // dispatch consumes it for free
			}
			dr := u.fetchCycle + int64(e.cfg.FrontEndDepth)
			if t.dispatchHold > dr {
				dr = t.dispatchHold
			}
			if dr > e.now {
				edge(dr)
			} else if e.dispatchResourcesFree(u) {
				return 0, false
			}
			// Resource-blocked: wait for a commit/squash/issue edge.
		}
		if !t.retiring && !t.stallFetch && t.blockedOn == nil && !t.ctx.Halted &&
			t.fetchBufLen() < e.fbufCap {
			if t.fetchBlocked > e.now {
				edge(t.fetchBlocked)
			} else {
				return 0, false // fetch-eligible now
			}
		}
	}

	for q := queueKind(0); q < numQueues; q++ {
		for _, s := range e.waiting[q] {
			if e.soaState[s] != stWaiting {
				continue
			}
			if e.soaStuck[s] > e.now {
				edge(e.soaStuck[s])
				continue
			}
			if e.uopReady(e.slotUops[s]) {
				return 0, false // issues next cycle
			}
		}
	}

	if len(e.completions.items) > 0 {
		edge(e.completions.items[0].cycle)
	}
	for _, ev := range e.pendingWindows {
		edge(ev.startCycle + windowMinCycles)
	}
	if e.cfg.Observe != nil {
		edge((e.now | observeMask) + 1) // next poll cycle
	}
	if e.auditOn {
		edge(e.now + auditInterval - e.now%auditInterval) // next scan cycle
	}
	return wake, true
}

// dispatchResourcesFree mirrors tryDispatch's structural-resource checks
// without mutating anything (tryDispatch itself is pure on failure).
func (e *Engine) dispatchResourcesFree(u *uop) bool {
	if e.robUsed >= e.cfg.ROBSize {
		return false
	}
	if e.qUsed[u.queue] >= e.qCap[u.queue] {
		return false
	}
	if u.hasDest && e.renameUsed >= e.cfg.RenameRegs {
		return false
	}
	if u.dec.IsStore && e.storeBufFull(u.thread) {
		return false
	}
	return true
}

// breakDeadlock recovers from speculation-induced resource deadlock: a
// spawned thread's dependence map names parent uops that are still waiting to
// dispatch, and its dependent uops fill the shared issue queues until the
// parent can no longer dispatch the very load that would resolve the
// speculation — circular wait, zero commits. Real designs bound speculative
// resource occupancy; ours recovers by killing the youngest speculative
// subtree (its queue slots free, the machine resumes). It is one action of
// the recovery controller (recover.go), which bounds and backs off retries.
func (e *Engine) breakDeadlock() bool {
	var victim *thread
	for _, t := range e.liveByOrder() {
		if t.isSpec() && (victim == nil || t.order > victim.order) {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	e.emitThread(trace.KKill, victim, "killed to break resource deadlock")
	e.killSubtree(victim)
	e.lastProgress = e.now
	return true
}

// Finalize drains the surviving architectural thread's speculative store
// state into flat memory so the image reflects committed execution. It is
// meaningful after a run that ended at a HALT.
func (e *Engine) Finalize() {
	arch := e.archThread()
	if arch != nil {
		arch.overlay.DrainTo(e.mem)
	}
}

// archThread returns the oldest live non-speculative thread.
func (e *Engine) archThread() *thread {
	for _, t := range e.liveByOrder() {
		if !t.isSpec() {
			return t
		}
	}
	return nil
}

// ArchRegs returns the architectural register file of the surviving thread
// (for equivalence tests) and whether one exists.
func (e *Engine) ArchRegs() ([isa.NumRegs]uint64, bool) {
	t := e.archThread()
	if t == nil {
		return [isa.NumRegs]uint64{}, false
	}
	return t.ctx.R, true
}

// Halted reports whether the program ran to completion (committed a HALT).
func (e *Engine) Halted() bool { return e.haltedThread != nil }

func (e *Engine) describeStall() string {
	s := fmt.Sprintf("rob=%d/%d rename=%d/%d q=[%d %d %d]",
		e.robUsed, e.cfg.ROBSize, e.renameUsed, e.cfg.RenameRegs,
		e.qUsed[qInt], e.qUsed[qFP], e.qUsed[qMem])
	for _, t := range e.liveByOrder() {
		s += fmt.Sprintf(" T%d{ord=%d rob=%d fbuf=%d blocked=%d stall=%v retiring=%v spec=%v halted=%v pc=%d}",
			t.id, t.order, t.robOccupied(), t.fetchBufLen(), t.fetchBlocked,
			t.stallFetch, t.retiring, t.isSpec(), t.ctx.Halted, t.ctx.PC)
	}
	return s
}
