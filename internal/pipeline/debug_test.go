package pipeline

import (
	"sort"
	"testing"

	"mtvp/internal/isa"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// TestCommitStreamMatchesFunctional reconstructs the useful committed
// instruction stream (all commits minus killed threads' work, ordered by
// fetch sequence) and compares it PC-by-PC against the functional reference.
func TestCommitStreamMatchesFunctional(t *testing.T) {
	bench := workload.PointerChase("dbg-chase-fp", workload.FP, workload.ChaseParams{
		Nodes: 256, NodeBytes: 64, PoolSize: 8, DominantPct: 85, ReusePct: 5, FPVal: true, Iters: 3,
	})

	refProg, refMem := bench.Build(7)
	refCtx := isa.NewContext(refProg, refMem)
	var refPCs []int64
	for {
		pc := refCtx.PC
		if _, ok := refCtx.Step(); !ok {
			break
		}
		refPCs = append(refPCs, pc)
	}

	cfg := mtvpOracleCfg(8)
	cfg.MaxInsts = 50_000_000
	cfg.MaxCycles = 200_000_000
	prog, image := bench.Build(7)
	st := &stats.Stats{}
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		seq    uint64
		pc     int64
		thread *thread
	}
	var log []rec
	eng.commitHook = func(u *uop) {
		log = append(log, rec{seq: u.seq, pc: u.ex.PC, thread: u.thread})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Halted() {
		t.Fatalf("did not halt: committed=%d cycles=%d", st.Committed, eng.Now())
	}

	// Useful stream: drop commits from killed threads, order by fetch
	// sequence (a child commits concurrently with its stalled parent, so
	// temporal commit order interleaves).
	var got []rec
	for _, r := range log {
		if r.thread.killed {
			continue
		}
		got = append(got, r)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].seq < got[j].seq })
	for i := 1; i < len(got); i++ {
		if got[i].seq == got[i-1].seq {
			t.Fatalf("duplicate commit of seq %d (pc %d)", got[i].seq, got[i].pc)
		}
	}
	if len(got) != len(refPCs) {
		t.Errorf("useful commits %d, functional %d", len(got), len(refPCs))
	}
	n := len(got)
	if len(refPCs) < n {
		n = len(refPCs)
	}
	for i := 0; i < n; i++ {
		if got[i].pc != refPCs[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < i+5 && j < n; j++ {
				t.Logf("  [%d] got pc=%d (seq %d, T%d ord %d) want pc=%d",
					j, got[j].pc, got[j].seq, got[j].thread.id, got[j].thread.order, refPCs[j])
			}
			t.Fatalf("divergence at commit %d", i)
		}
	}
}
