package pipeline

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/stats"
)

// mtvpOracleCfg is the §5.1 limit-study machine used by the pipeline's own
// white-box tests.
func mtvpOracleCfg(contexts int) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, config.PredOracle, config.SelILPPred)
	cfg.VP.SpawnLatency = 1
	cfg.VP.StoreBufEntries = 0
	return cfg
}

// runStats builds and runs an engine, returning its stats.
func runStats(t *testing.T, cfg *config.Config, prog *isa.Program, image *mem.Memory) *stats.Stats {
	t.Helper()
	st := &stats.Stats{}
	eng, err := New(cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return st
}

// newStats returns a fresh counter set for hand-driven engine tests.
func newStats() *stats.Stats { return &stats.Stats{} }
