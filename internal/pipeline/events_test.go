package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/stats"
	"mtvp/internal/telemetry"
	"mtvp/internal/workload"
)

// TestEventQueueUnit pins the calendar's container behaviour: min ordering,
// O(1) same-cycle dedup, horizon clamping, and drain-at-or-before.
func TestEventQueueUnit(t *testing.T) {
	q := &eventQueue{}

	q.add(50, 10)
	q.add(30, 10)
	q.add(50, 10) // duplicate: absorbed by the mark ring
	q.add(40, 10)
	if q.depth() != 3 {
		t.Fatalf("depth = %d, want 3 (duplicate not deduped?)", q.depth())
	}
	if q.deduped != 1 {
		t.Fatalf("deduped = %d, want 1", q.deduped)
	}
	if q.heap[0] != 30 {
		t.Fatalf("min = %d, want 30", q.heap[0])
	}

	q.drain(40)
	if q.depth() != 1 || q.heap[0] != 50 {
		t.Fatalf("after drain(40): depth=%d min=%v, want one entry at 50", q.depth(), q.heap)
	}
	if q.fired != 2 {
		t.Fatalf("fired = %d, want 2", q.fired)
	}

	// A far edge clamps to the horizon; the hop slot still dedups.
	q.add(1_000_000, 100)
	if q.heap[len(q.heap)-1] != 100+eqWindow && q.heap[0] != 100+eqWindow {
		t.Fatalf("far edge not clamped to horizon: %v", q.heap)
	}
	q.add(2_000_000, 100) // different far cycle, same clamped hop
	if q.depth() != 2 {
		t.Fatalf("clamped hops not deduped: depth=%d heap=%v", q.depth(), q.heap)
	}

	// Slot aliasing across the ring must not dedup distinct cycles.
	q2 := &eventQueue{}
	q2.add(eqWindow/2, 1)
	q2.drain(eqWindow / 2)
	q2.add(eqWindow/2+eqWindow, eqWindow) // same slot, later cycle
	if q2.depth() != 1 {
		t.Fatalf("stale mark swallowed a later cycle in the same slot: depth=%d", q2.depth())
	}

	// Pop order over a shuffled batch must be sorted.
	q3 := &eventQueue{}
	for _, c := range []int64{9, 3, 7, 1, 8, 2, 6, 4, 5} {
		q3.add(c, 0)
	}
	prev := int64(-1)
	for q3.depth() > 0 {
		c := q3.popTop()
		if c < prev {
			t.Fatalf("pop order not sorted: %d after %d", c, prev)
		}
		prev = c
	}
}

// abOutcome is everything the scheduler A/B suite compares: the full stats
// counter set (including Cycles), architectural registers, halt status, the
// telemetry time series, and any structured abort.
type abOutcome struct {
	st     stats.Stats
	regs   [isa.NumRegs]uint64
	regsOK bool
	halted bool
	now    int64
	points []telemetry.Point
	ff     uint64
	errStr string
}

func runAB(t *testing.T, cfg config.Config, bench workload.Benchmark, polling, noFF bool) abOutcome {
	t.Helper()
	cfg.DisableEventQueue = polling
	cfg.DisableFastForward = noFF
	prog, image := bench.Build(1)
	st := &stats.Stats{}
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	sampler := telemetry.NewSampler(0)
	eng.SetTelemetry(telemetry.NewMachine(nil, sampler))
	out := abOutcome{}
	if err := eng.Run(); err != nil {
		// Structured aborts (fault.Report) are outcomes too and must be
		// identical across schedulers.
		out.errStr = err.Error()
	}
	eng.FinishTelemetry()
	out.st = *st
	out.regs, out.regsOK = eng.ArchRegs()
	out.halted = eng.Halted()
	out.now = eng.now
	out.points = sampler.Points()
	out.ff = eng.ffSkipped
	return out
}

func compareAB(t *testing.T, event, polling abOutcome) {
	t.Helper()
	if event.st != polling.st {
		t.Errorf("stats diverge:\nevent:   %+v\npolling: %+v", event.st, polling.st)
	}
	if event.now != polling.now {
		t.Errorf("final cycle diverges: event=%d polling=%d", event.now, polling.now)
	}
	if event.regsOK != polling.regsOK || event.regs != polling.regs {
		t.Errorf("architectural registers diverge:\nevent:   ok=%v %v\npolling: ok=%v %v",
			event.regsOK, event.regs, polling.regsOK, polling.regs)
	}
	if event.halted != polling.halted {
		t.Errorf("halted diverges: event=%v polling=%v", event.halted, polling.halted)
	}
	if event.errStr != polling.errStr {
		t.Errorf("run error diverges:\nevent:   %q\npolling: %q", event.errStr, polling.errStr)
	}
	if !reflect.DeepEqual(event.points, polling.points) {
		t.Errorf("telemetry time series diverge: event has %d points, polling has %d",
			len(event.points), len(polling.points))
		for i := range event.points {
			if i < len(polling.points) && event.points[i] != polling.points[i] {
				t.Errorf("first divergent point %d:\nevent:   %+v\npolling: %+v",
					i, event.points[i], polling.points[i])
				break
			}
		}
	}
}

// abCases is the archetype sweep both scheduler equivalence tests walk:
// miss-heavy single-thread (long idle stretches), deep MTVP speculation
// (spawn/confirm/kill and window edges), a run-to-HALT workload (the final
// cycle count is observable, so the schedulers must agree on the finishing
// cycle exactly), and two fault-injection profiles (recovery-watchdog
// deadlines, IQ sticks, memory jitter as first-class events).
func abCases() []struct {
	name   string
	cycles uint64
	cfg    func() config.Config
	bench  workload.Benchmark
} {
	return []struct {
		name   string
		cycles uint64
		cfg    func() config.Config
		bench  workload.Benchmark
	}{
		{
			name:   "miss-heavy-baseline",
			cycles: 400_000,
			cfg:    config.Baseline,
			bench: workload.PointerChase("ab-miss", workload.INT, workload.ChaseParams{
				Nodes: 1 << 18, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 10, BodyOps: 4, Iters: 1 << 40,
			}),
		},
		{
			name:   "deep-speculation-mtvp8",
			cycles: 150_000,
			cfg:    func() config.Config { return mtvpOracleCfg(8) },
			bench: workload.PointerChase("ab-spec", workload.INT, workload.ChaseParams{
				Nodes: 1 << 16, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 30, BodyOps: 8, Iters: 1 << 40,
			}),
		},
		{
			// Runs to HALT inside the budget: Stats.Cycles is set by the
			// finishing cycle itself, pinning the no-jump-after-finish rule.
			name:   "halting-baseline",
			cycles: 1 << 40,
			cfg:    config.Baseline,
			bench: workload.PointerChase("ab-halt", workload.INT, workload.ChaseParams{
				Nodes: 256, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 20, BodyOps: 4, Iters: 30,
			}),
		},
		{
			name:   "fault-monsoon-mtvp4",
			cycles: 200_000,
			cfg: func() config.Config {
				cfg := mtvpOracleCfg(4)
				cfg.Faults.Profile = "monsoon"
				cfg.Faults.Seed = 1234
				return cfg
			},
			bench: workload.PointerChase("ab-monsoon", workload.INT, workload.ChaseParams{
				Nodes: 1 << 16, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 30, BodyOps: 8, Iters: 1 << 40,
			}),
		},
		{
			// Wedged issue-queue slots outlive the watchdog, so recovery
			// (unstick, deadlock break, backoff) must fire on identical
			// cycles under both schedulers.
			name:   "recovery-ladder-stuck-iq",
			cycles: 400_000,
			cfg: func() config.Config {
				cfg := mtvpOracleCfg(4)
				cfg.Faults.Profile = "stuck-iq-storm"
				cfg.Faults.Seed = 99
				return cfg
			},
			bench: workload.PointerChase("ab-stuck", workload.INT, workload.ChaseParams{
				Nodes: 1 << 16, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 30, BodyOps: 8, Iters: 1 << 40,
			}),
		},
	}
}

// TestEventQueueIsInvisible is the event engine's A/B guarantee: for every
// archetype, with fast-forward both on and off, the event-driven scheduler
// must be bit-identical to the polling scan — statistics (including the
// final cycle count), architectural registers, telemetry time series, and
// structured aborts. With fast-forward on, the calendar jump must actually
// engage or the comparison is vacuous.
func TestEventQueueIsInvisible(t *testing.T) {
	t.Setenv("MTVP_NO_FASTFWD", "")
	t.Setenv("MTVP_NO_EVENTQ", "")

	for _, c := range abCases() {
		for _, noFF := range []bool{false, true} {
			name := c.name
			if noFF {
				name += "/noff"
			}
			t.Run(name, func(t *testing.T) {
				cfg := c.cfg()
				cfg.MaxInsts = 1 << 62
				cfg.MaxCycles = c.cycles

				event := runAB(t, cfg, c.bench, false, noFF)
				polling := runAB(t, cfg, c.bench, true, noFF)

				if !noFF && event.ff == 0 && c.name != "halting-baseline" {
					t.Errorf("event scheduler never jumped (ffSkipped = 0); comparison is vacuous")
				}
				if noFF && (event.ff != 0 || polling.ff != 0) {
					t.Errorf("noFF legs skipped cycles: event=%d polling=%d", event.ff, polling.ff)
				}
				if c.name == "halting-baseline" && !event.halted {
					t.Errorf("halting case did not halt; finishing-cycle pin is vacuous")
				}
				compareAB(t, event, polling)
			})
		}
	}
}

// TestEventScheduleCrossCheck runs the event engine with the calendar
// cross-checked against the polling quiescence scan on every jump: any
// sleep past a cycle where a stage could act panics. This is the directed
// (non-fuzz) lost-wakeup hunt over the same archetype sweep.
func TestEventScheduleCrossCheck(t *testing.T) {
	t.Setenv("MTVP_NO_FASTFWD", "")
	t.Setenv("MTVP_NO_EVENTQ", "")

	for _, c := range abCases() {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg()
			cfg.MaxInsts = 1 << 62
			cfg.MaxCycles = c.cycles
			prog, image := c.bench.Build(1)
			st := &stats.Stats{}
			eng, err := New(&cfg, prog, image, st)
			if err != nil {
				t.Fatal(err)
			}
			if eng.evq == nil {
				t.Fatal("event scheduler not active")
			}
			eng.evqCheck = true
			if err := eng.Run(); err != nil {
				t.Logf("run ended with structured error (acceptable): %v", err)
			}
		})
	}
}

// FuzzEventSchedule fuzzes workload shape, machine size, and fault seeding,
// asserting the calendar never sleeps past a ready stage (the cross-check
// panics on a lost wakeup) and that the event run matches a polling run of
// the same machine exactly.
func FuzzEventSchedule(f *testing.F) {
	f.Add(uint8(2), uint16(256), uint8(60), uint8(30), uint8(4), uint8(0), uint32(1))
	f.Add(uint8(4), uint16(1024), uint8(20), uint8(10), uint8(8), uint8(1), uint32(7))
	f.Add(uint8(8), uint16(4096), uint8(80), uint8(50), uint8(2), uint8(2), uint32(42))
	f.Add(uint8(1), uint16(64), uint8(0), uint8(0), uint8(1), uint8(3), uint32(9))

	profiles := []string{"none", "monsoon", "stuck-iq-storm", "mem-jitter", "spawn-storm"}

	f.Fuzz(func(t *testing.T, contexts uint8, nodes uint16, seqPct, reusePct, bodyOps, profIdx uint8, seed uint32) {
		nctx := int(contexts%7) + 2 // mtvpOracleCfg needs >= 2 contexts
		nn := int(nodes)
		if nn < 16 {
			nn = 16
		}
		params := workload.ChaseParams{
			Nodes: nn, NodeBytes: 64, PoolSize: 8,
			DominantPct: 50, ReusePct: int(reusePct % 50), SeqPct: int(seqPct % 100),
			BodyOps: int(bodyOps%12) + 1, Iters: 1 << 40,
		}
		bench := workload.PointerChase(fmt.Sprintf("fuzz-%d", seed), workload.INT, params)

		cfg := mtvpOracleCfg(nctx)
		cfg.MaxInsts = 1 << 62
		cfg.MaxCycles = 60_000
		cfg.Faults.Profile = profiles[int(profIdx)%len(profiles)]
		cfg.Faults.Seed = uint64(seed)

		// Event run with the lost-wakeup cross-check armed.
		prog, image := bench.Build(1)
		st := &stats.Stats{}
		eng, err := New(&cfg, prog, image, st)
		if err != nil {
			t.Fatal(err)
		}
		eng.evqCheck = true
		var evErr string
		if err := eng.Run(); err != nil {
			evErr = err.Error()
		}

		// Polling reference run.
		cfg2 := cfg
		cfg2.DisableEventQueue = true
		prog2, image2 := bench.Build(1)
		st2 := &stats.Stats{}
		eng2, err := New(&cfg2, prog2, image2, st2)
		if err != nil {
			t.Fatal(err)
		}
		var polErr string
		if err := eng2.Run(); err != nil {
			polErr = err.Error()
		}

		if *st != *st2 {
			t.Fatalf("stats diverge:\nevent:   %+v\npolling: %+v", *st, *st2)
		}
		if evErr != polErr {
			t.Fatalf("run error diverges: event=%q polling=%q", evErr, polErr)
		}
		r1, ok1 := eng.ArchRegs()
		r2, ok2 := eng2.ArchRegs()
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("architectural registers diverge")
		}
	})
}

// BenchmarkEventQueue micro-benchmarks the calendar's three hot operations:
// near-edge enqueue (mark-ring accept), duplicate enqueue (dedup hit), and
// the fire-and-requeue cycle of a sliding schedule.
func BenchmarkEventQueue(b *testing.B) {
	b.Run("enqueue", func(b *testing.B) {
		q := &eventQueue{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := int64(i)
			q.add(now+1+int64(i%700), now)
			q.drain(now)
		}
	})
	b.Run("dedup", func(b *testing.B) {
		q := &eventQueue{}
		q.add(1<<20, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.add(1<<20, 0) // always a mark-ring hit
		}
	})
	b.Run("requeue", func(b *testing.B) {
		// A sliding window of 64 in-flight completions, one firing and one
		// scheduled per step — the steady-state shape of a busy machine.
		q := &eventQueue{}
		for i := int64(0); i < 64; i++ {
			q.add(i+1, 0)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := int64(i)
			q.drain(now)
			q.add(now+64, now)
		}
	})
}
