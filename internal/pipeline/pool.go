package pipeline

// The uop free list. Steady-state simulation churns through one uop per
// dynamic instruction; recycling them through a per-engine pool removes
// that allocation entirely (TestZeroAllocSteadyState pins it).
//
// Discipline:
//
//   - A uop may be freed only once it is stCommitted or stSquashed and has
//     been removed from every engine-owned container that stores bare
//     pointers (its thread's rob, fetchBuf, storeQ, and — by the
//     stage-ordering argument below — the waiting lists).
//   - Fields are reset at ALLOCATION, not at free. Between free and reuse
//     the carcass keeps its terminal state, so any ghost entry still
//     naming it (a waiting-list slot not yet compacted) reads
//     stCommitted/stSquashed and drops it, just as it would have before
//     pooling. Frees happen in the commit/complete stages (and in the
//     end-of-cycle recovery path); reuse happens only in the fetch stage,
//     which every ghost-purging compactQueue pass precedes.
//   - gen is bumped at free, invalidating every uopRef into the old
//     lifetime. issueGen is never reset: completion-heap entries from a
//     previous lifetime can therefore never match a recycled uop.
//   - Every uop owns a permanent pool slot indexing the engine's
//     struct-of-arrays mirrors (soaState, soaStuck); the mirrors follow
//     the same discipline — reset at allocation, terminal state preserved
//     across free — so a slot held by a stale waiting-list entry reads
//     exactly what the stale pointer would have.
func (e *Engine) allocUop() *uop {
	n := len(e.uopFree)
	if n == 0 {
		u := &uop{slot: int32(len(e.slotUops))}
		e.slotUops = append(e.slotUops, u)
		e.soaState = append(e.soaState, stFetched)
		e.soaStuck = append(e.soaStuck, 0)
		return u
	}
	u := e.uopFree[n-1]
	e.uopFree[n-1] = nil
	e.uopFree = e.uopFree[:n-1]
	gen, issueGen, slot := u.gen, u.issueGen, u.slot
	prods, consumers := u.prods[:0], u.consumers[:0]
	*u = uop{gen: gen, issueGen: issueGen, slot: slot, prods: prods, consumers: consumers}
	e.soaState[slot] = stFetched
	e.soaStuck[slot] = 0
	return u
}

// setUopState is the single write path for a uop's pipeline state, keeping
// the struct field and the slot-indexed mirror in lockstep. The mirror is
// what the issue scan and the polling quiescence scan read.
func (e *Engine) setUopState(u *uop, s uopState) {
	u.state = s
	e.soaState[u.slot] = s
}

// setStuckUntil is the single write path for a uop's IQStick deadline,
// mirrored like setUopState.
func (e *Engine) setStuckUntil(u *uop, c int64) {
	u.stuckUntil = c
	e.soaStuck[u.slot] = c
}

// freeUop returns u to the pool. The caller must have unlinked u from every
// bare-pointer container first; uopRefs elsewhere go stale via the gen bump.
func (e *Engine) freeUop(u *uop) {
	if u.pooled {
		panic("pipeline: uop double-free")
	}
	if u.state != stCommitted && u.state != stSquashed {
		panic("pipeline: freeing an in-flight uop")
	}
	u.pooled = true
	u.gen++
	e.uopFree = append(e.uopFree, u)
}

// freeROB frees every uop in t.rob and drops the slice. Valid only when the
// thread is done: each entry committed or squashed, the fetch buffer empty
// or abandoned, and the store queue free of in-flight entries.
func (e *Engine) freeROB(t *thread) {
	for _, u := range t.rob {
		e.freeUop(u)
	}
	t.rob = nil
	t.robHead = 0
}

// compactROB drops committed/squashed prefix entries once they dominate the
// slice, recycling them through the pool.
func (e *Engine) compactROB(t *thread) {
	if t.robHead > 256 && t.robHead > len(t.rob)/2 {
		for _, u := range t.rob[:t.robHead] {
			e.freeUop(u)
		}
		n := copy(t.rob, t.rob[t.robHead:])
		tail := t.rob[n:]
		for i := range tail {
			tail[i] = nil
		}
		t.rob = t.rob[:n]
		t.robHead = 0
	}
}

// compactFetchBuf slides the fetch buffer's unconsumed suffix down once the
// consumed prefix dominates, so the slice never grows without bound while
// staying allocation-free in steady state.
func (t *thread) compactFetchBuf() {
	if t.fbHead > 64 && t.fbHead > len(t.fetchBuf)/2 {
		n := copy(t.fetchBuf, t.fetchBuf[t.fbHead:])
		tail := t.fetchBuf[n:]
		for i := range tail {
			tail[i] = nil
		}
		t.fetchBuf = t.fetchBuf[:n]
		t.fbHead = 0
	}
}
