// Package pipeline implements the execution-driven, cycle-level SMT
// out-of-order processor the paper evaluates on, including the threaded
// value prediction machinery itself: spawn, confirm, and kill of
// speculative hardware threads, single-fetch-path and no-stall fetch
// policies, selective reissue for single-threaded value prediction, and
// speculative store buffering via overlay chains.
//
// The functional layer is execute-at-fetch: every instruction is
// interpreted in its thread's architectural context the moment it is
// fetched, and the timing layer then models when its result becomes
// visible. Value-predicted spawns fork the functional context with the
// predicted value substituted, so a wrong prediction genuinely sends the
// child thread down a divergent data path until it is killed.
package pipeline

import (
	"container/heap"

	"mtvp/internal/cache"
	"mtvp/internal/isa"
)

type uopState uint8

const (
	stFetched uopState = iota // in the front-end pipe
	stWaiting                 // dispatched into an issue queue
	stIssued                  // executing
	stDone                    // result available
	stCommitted
	stSquashed
)

type queueKind uint8

const (
	qInt queueKind = iota
	qFP
	qMem
	numQueues
)

func queueFor(c isa.Class) queueKind {
	switch c {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		return qFP
	case isa.ClassLoad, isa.ClassStore:
		return qMem
	default:
		return qInt
	}
}

// uop is one in-flight instruction.
type uop struct {
	seq    uint64
	thread *thread
	ex     isa.Exec
	class  isa.Class
	queue  queueKind

	state    uopState
	issueGen uint32 // invalidates stale completion-heap entries

	fetchCycle    int64
	dispatchCycle int64
	doneCycle     int64

	pendingSrcs int
	prods       []*uop // producers this uop waited on (for reissue)
	consumers   []*uop // uops that depend on this one's result

	// Memory.
	fwdFrom  *uop // store this load forwards from (nil = cache access)
	fwdStore bool // load forwards from a store buffer / queue entry
	hitLevel cache.HitLevel

	// Branch.
	mispredicted bool

	// Fault injection: an IQStick fault wedges the uop's queue slot until
	// this cycle (0 = not stuck). The recovery controller may clear it.
	stuckUntil int64

	// Value prediction.
	vp        *vpEvent // non-nil if this load drives a VP event or window
	specReady bool     // STVP: dest usable by consumers before the load returns

	hasDest    bool
	usesRename bool
}

// producerReady reports whether a producer no longer blocks its consumers:
// it has a result (done or committed), offers a speculative value (STVP),
// or was squashed (its consumers' functional values were already captured
// at fetch, so timing must not deadlock on it).
func producerReady(p *uop) bool {
	switch p.state {
	case stDone, stCommitted, stSquashed:
		return true
	}
	return p.specReady
}

// uopHeap orders pending completions by doneCycle.
type uopHeap struct {
	items []heapItem
}

type heapItem struct {
	cycle int64
	gen   uint32
	u     *uop
}

func (h *uopHeap) Len() int           { return len(h.items) }
func (h *uopHeap) Less(i, j int) bool { return h.items[i].cycle < h.items[j].cycle }
func (h *uopHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *uopHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *uopHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func (h *uopHeap) schedule(u *uop, cycle int64) {
	heap.Push(h, heapItem{cycle: cycle, gen: u.issueGen, u: u})
}

// pop returns the next uop whose completion is due at or before now,
// skipping entries invalidated by squash or reissue.
func (h *uopHeap) pop(now int64) (*uop, bool) {
	for h.Len() > 0 {
		top := h.items[0]
		if top.cycle > now {
			return nil, false
		}
		heap.Pop(h)
		if top.u.state == stIssued && top.u.issueGen == top.gen {
			return top.u, true
		}
	}
	return nil, false
}
