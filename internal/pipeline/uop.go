// Package pipeline implements the execution-driven, cycle-level SMT
// out-of-order processor the paper evaluates on, including the threaded
// value prediction machinery itself: spawn, confirm, and kill of
// speculative hardware threads, single-fetch-path and no-stall fetch
// policies, selective reissue for single-threaded value prediction, and
// speculative store buffering via overlay chains.
//
// The functional layer is execute-at-fetch: every instruction is
// interpreted in its thread's architectural context the moment it is
// fetched, and the timing layer then models when its result becomes
// visible. Value-predicted spawns fork the functional context with the
// predicted value substituted, so a wrong prediction genuinely sends the
// child thread down a divergent data path until it is killed.
package pipeline

import (
	"mtvp/internal/cache"
	"mtvp/internal/isa"
)

type uopState uint8

const (
	stFetched uopState = iota // in the front-end pipe
	stWaiting                 // dispatched into an issue queue
	stIssued                  // executing
	stDone                    // result available
	stCommitted
	stSquashed
)

type queueKind uint8

const (
	qInt queueKind = iota
	qFP
	qMem
	numQueues
)

func queueFor(c isa.Class) queueKind {
	switch c {
	case isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		return qFP
	case isa.ClassLoad, isa.ClassStore:
		return qMem
	default:
		return qInt
	}
}

// uop is one in-flight instruction. uops are recycled through the engine's
// free list (pool.go): `gen` is bumped every time a uop is freed, so a
// uopRef taken in a previous lifetime can be detected as stale instead of
// silently aliasing the new occupant.
type uop struct {
	seq    uint64
	thread *thread
	ex     isa.Exec
	dec    *isa.Decoded // predecode-table entry for ex.Inst
	class  isa.Class
	queue  queueKind

	state    uopState
	gen      uint32 // pool lifetime; incremented on free
	issueGen uint32 // invalidates stale completion-heap entries
	slot     int32  // permanent pool slot; indexes the engine's SoA mirrors

	fetchCycle    int64
	dispatchCycle int64
	doneCycle     int64

	pendingSrcs int
	prods       []uopRef // producers this uop waited on (for reissue)
	consumers   []uopRef // uops that depend on this one's result

	// Memory.
	fwdFrom  uopRef // store this load forwards from (zero = cache access)
	fwdStore bool   // load forwards from a store buffer / queue entry
	hitLevel cache.HitLevel

	// Branch.
	mispredicted bool

	// Fault injection: an IQStick fault wedges the uop's queue slot until
	// this cycle (0 = not stuck). The recovery controller may clear it.
	stuckUntil int64

	// Value prediction.
	vp        *vpEvent // non-nil if this load drives a VP event or window
	specReady bool     // STVP: dest usable by consumers before the load returns

	hasDest    bool
	usesRename bool
	pooled     bool // on the free list (double-free guard)
}

// uopRef is a generation-validated reference to a pooled uop. A ref goes
// stale when its target is freed — which only happens after the target
// committed or was squashed — so every consumer of a stale ref treats it
// exactly as it treated a committed/squashed pointer before pooling.
type uopRef struct {
	u   *uop
	gen uint32
}

func ref(u *uop) uopRef { return uopRef{u: u, gen: u.gen} }

// get returns the referenced uop, or nil when the ref is empty or stale.
func (r uopRef) get() *uop {
	if r.u == nil || r.u.gen != r.gen {
		return nil
	}
	return r.u
}

// uopsBySeq sorts ready uops oldest-first. A pointer receiver keeps the
// sort.Interface conversion allocation-free in the issue hot loop.
type uopsBySeq []*uop

func (s *uopsBySeq) Len() int           { return len(*s) }
func (s *uopsBySeq) Less(i, j int) bool { return (*s)[i].seq < (*s)[j].seq }
func (s *uopsBySeq) Swap(i, j int)      { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// producerReady reports whether a producer no longer blocks its consumers:
// it has a result (done or committed), offers a speculative value (STVP),
// or was squashed (its consumers' functional values were already captured
// at fetch, so timing must not deadlock on it).
func producerReady(p *uop) bool {
	switch p.state {
	case stDone, stCommitted, stSquashed:
		return true
	}
	return p.specReady
}

// uopHeap orders pending completions by doneCycle. It is a hand-rolled
// binary min-heap rather than container/heap because the latter boxes every
// pushed and popped element through interface{}, allocating twice per issued
// uop. The sift-up/sift-down below replicate container/heap's algorithm
// move for move (same comparisons, same swap order), so the pop order among
// equal-cycle entries — and therefore every simulated outcome — is
// bit-identical to the previous implementation.
type uopHeap struct {
	items []heapItem
}

type heapItem struct {
	cycle int64
	gen   uint32
	u     *uop
}

func (h *uopHeap) Len() int { return len(h.items) }

func (h *uopHeap) schedule(u *uop, cycle int64) {
	h.items = append(h.items, heapItem{cycle: cycle, gen: u.issueGen, u: u})
	// Sift up, as container/heap.Push would.
	j := len(h.items) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h.items[j].cycle < h.items[i].cycle) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		j = i
	}
}

// popTop removes and returns the minimum element, replicating
// container/heap.Pop's swap-to-end-then-sift-down exactly.
func (h *uopHeap) popTop() heapItem {
	n := len(h.items) - 1
	h.items[0], h.items[n] = h.items[n], h.items[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.items[j2].cycle < h.items[j1].cycle {
			j = j2
		}
		if !(h.items[j].cycle < h.items[i].cycle) {
			break
		}
		h.items[i], h.items[j] = h.items[j], h.items[i]
		i = j
	}
	it := h.items[n]
	h.items[n] = heapItem{}
	h.items = h.items[:n]
	return it
}

// pop returns the next uop whose completion is due at or before now,
// skipping entries invalidated by squash or reissue.
func (h *uopHeap) pop(now int64) (*uop, bool) {
	for h.Len() > 0 {
		top := h.items[0]
		if top.cycle > now {
			return nil, false
		}
		h.popTop()
		if top.u.state == stIssued && top.u.issueGen == top.gen {
			return top.u, true
		}
	}
	return nil, false
}
