package pipeline

import (
	"mtvp/internal/telemetry"
)

// SetTelemetry attaches a telemetry machine probe. Like tracing it is
// strictly observational: the engine feeds gauges, counters, and histograms
// but never reads them back, so results are identical with or without it
// (test-enforced in internal/core).
func (e *Engine) SetTelemetry(m *telemetry.Machine) { e.tel = m }

// telemetryCycle feeds the probe one simulated cycle: instantaneous
// occupancy gauges plus the cumulative counter snapshot the sampler
// differentiates into cycle-bucketed time series. The event-queue gauges
// are registry-only (not sampled into the time series), so the series stay
// bit-identical between the event-driven and polling schedulers.
func (e *Engine) telemetryCycle() {
	e.tel.Tick(e.now, e.telemetryGauges(), e.telemetryCounters())
	if e.evq != nil {
		e.tel.EventQDepth.Set(int64(e.evq.depth()))
		e.tel.EventQFired.Set(int64(e.evq.fired))
		e.tel.EventQDeduped.Set(int64(e.evq.deduped))
	}
}

// telemetrySkip feeds the probe a fast-forwarded idle span [from, to]. The
// engine's counters and gauges are frozen across the span (that is what made
// it skippable), so the probe can close every sample bucket that would have
// closed during it from the one snapshot, byte-identically to per-cycle Ticks.
func (e *Engine) telemetrySkip(from, to int64) {
	e.tel.TickIdleRange(from, to, e.telemetryGauges(), e.telemetryCounters())
}

// FinishTelemetry closes the probe's final partial sample bucket. Call
// once, after Run returns (the statistics of canceled and aborted runs are
// valid up to their final cycle, so their tail bucket is too).
func (e *Engine) FinishTelemetry() {
	if e.tel == nil {
		return
	}
	e.tel.Finish(e.now, e.telemetryGauges(), e.telemetryCounters())
}

func (e *Engine) telemetryGauges() telemetry.CycleGauges {
	g := telemetry.CycleGauges{
		ROBUsed:    e.robUsed,
		RenameUsed: e.renameUsed,
		IQUsed:     e.qUsed[qInt],
		FQUsed:     e.qUsed[qFP],
		MQUsed:     e.qUsed[qMem],
	}
	if e.cfg.VP.SharedStoreBuf {
		g.StoreBufUsed = e.sharedStoreUsed
	}
	for _, t := range e.slots {
		if t == nil || !t.live {
			continue
		}
		g.LiveThreads++
		if t.isSpec() {
			g.SpecThreads++
		}
		if !e.cfg.VP.SharedStoreBuf {
			g.StoreBufUsed += len(t.storeQ)
		}
	}
	return g
}

func (e *Engine) telemetryCounters() telemetry.CycleCounters {
	sh := e.vp.Stats()
	return telemetry.CycleCounters{
		Committed:      e.st.Committed,
		Squashed:       e.st.Squashed,
		Loads:          e.st.Loads,
		DL1Miss:        e.st.DL1Miss,
		VPCorrect:      e.st.VPCorrect,
		VPWrong:        e.st.VPWrong,
		Spawns:         e.st.Spawns,
		Confirms:       e.st.Confirms,
		Kills:          e.st.Kills,
		VPCrossLookups: sh.CrossLookups,
		VPCrossEvicts:  sh.CrossEvicts,
	}
}

// foldSharingStats copies the predictor bank's cross-context interference
// counters into the run's stats. Called once when Run returns.
func (e *Engine) foldSharingStats() {
	sh := e.vp.Stats()
	e.st.VPCrossLookups = sh.CrossLookups
	e.st.VPShareHelpful = sh.Constructive
	e.st.VPShareHarmful = sh.Destructive
	e.st.VPCrossTrains = sh.CrossTrains
	e.st.VPCrossEvictions = sh.CrossEvicts
}

// specDepth returns t's speculation-chain depth (the root thread is 0).
func specDepth(t *thread) uint64 {
	var d uint64
	for cur := t.parent; cur != nil; cur = cur.parent {
		d++
	}
	return d
}

// noteSpawnTelemetry records one spawned child's chain depth.
func (e *Engine) noteSpawnTelemetry(c *thread) {
	if e.tel == nil {
		return
	}
	e.tel.SpawnDepth.Observe(specDepth(c))
}

// noteConfirmTelemetry records a confirmed speculation: its lifetime in
// cycles and how far past the load the surviving child had committed.
func (e *Engine) noteConfirmTelemetry(survivor *thread, ev *vpEvent) {
	if e.tel == nil {
		return
	}
	e.tel.SpecLifetime.Observe(uint64(e.now - ev.startCycle))
	e.tel.ConfirmDistance.Observe(survivor.committed)
}

// noteKillTelemetry records a killed speculative thread: its lifetime in
// cycles and the committed instructions discounted with it.
func (e *Engine) noteKillTelemetry(t *thread) {
	if e.tel == nil || t.spawn == nil {
		return
	}
	e.tel.SpecLifetime.Observe(uint64(e.now - t.spawn.startCycle))
	e.tel.KillDistance.Observe(t.committed)
}

// noteLoadLatencyTelemetry records one load's issue-to-completion latency.
func (e *Engine) noteLoadLatencyTelemetry(lat int64) {
	if e.tel == nil {
		return
	}
	e.tel.LoadLatency.Observe(uint64(lat))
}
