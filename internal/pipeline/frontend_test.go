package pipeline

import (
	"testing"

	"mtvp/internal/asm"
	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/workload"
)

// callKernel builds a loop whose only hard-to-predict control flow is the
// JR return from a helper — isolating the return-address stack.
func callKernel(iters int64) (*isa.Program, *mem.Memory) {
	b := asm.New("calls")
	b.Li(isa.R5, iters)
	b.J("start")
	b.Label("helper")
	b.Addi(isa.R3, isa.R3, 1)
	b.Muli(isa.R3, isa.R3, 3)
	b.Jr(isa.R28)
	b.Label("start")
	b.Label("loop")
	b.Jal(isa.R28, "helper")
	b.Addi(isa.R5, isa.R5, -1)
	b.Bne(isa.R5, isa.R0, "loop")
	b.Halt()
	return b.MustBuild(), mem.New()
}

// TestRASPredictsReturns: returns through the RAS must be near-perfectly
// predicted when calls and returns nest properly.
func TestRASPredictsReturns(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxInsts = 1 << 40
	cfg.MaxCycles = 10_000_000
	prog, image := callKernel(2000)
	st := runStats(t, &cfg, prog, image)
	if st.Branches == 0 {
		t.Fatal("no control-flow events recorded")
	}
	if acc := st.BranchAccuracy(); acc < 0.99 {
		t.Errorf("accuracy %.3f on pure call/return kernel", acc)
	}
}

// TestEmptyRASMispredicts: a return with no matching call must mispredict
// (the stack predicts -1), costing resolution latency — the machine still
// produces the right result.
func TestEmptyRASMispredicts(t *testing.T) {
	b := asm.New("badret")
	b.Li(isa.R1, 5) // return target: instruction 5
	b.Jr(isa.R1)    // no preceding JAL: RAS is empty
	b.Nop()
	b.Nop()
	b.Nop()
	b.Addi(isa.R2, isa.R2, 9) // 5
	b.Halt()
	cfg := config.Baseline()
	cfg.MaxInsts = 1 << 30
	prog := b.MustBuild()
	st := runStats(t, &cfg, prog, mem.New())
	if st.BranchWrong == 0 {
		t.Error("unmatched JR did not mispredict")
	}
}

// TestRASSurvivesSpawn: a child spawned between a call and its return must
// inherit the parent's return-address stack. The kernel's only branches are
// the loop bounds, the side-load gate, and the JR returns, so accuracy
// collapses if children lose the stack.
func TestRASSurvivesSpawn(t *testing.T) {
	b := workload.Blocked("ras-spawn", workload.INT, workload.BlockedParams{
		WorkingSet: 8 << 10, MulChain: 1,
		SideTableLen: 1 << 14, SideEvery: 8, SideDominant: 95, Iters: 4,
	})
	cfg := config.Baseline().WithMTVP(4, config.PredWangFranklin, config.SelL3Oracle)
	eng, mt := runBench(t, b, cfg)
	if !eng.Halted() {
		t.Fatal("did not halt")
	}
	_, base := runBench(t, b, config.Baseline())
	// Spawning may add a few wrong-path branches, but must not collapse
	// return prediction.
	if mt.BranchAccuracy() < base.BranchAccuracy()-0.05 {
		t.Errorf("accuracy %.3f under spawning vs %.3f baseline; RAS likely not inherited",
			mt.BranchAccuracy(), base.BranchAccuracy())
	}
}

// TestICountFetchesSpeculativeThreads: with several live threads, fetch
// must reach speculative children rather than starving them.
func TestICountFetchesSpeculativeThreads(t *testing.T) {
	b := chaseBench(4096, 2)
	cfg := mtvpOracleCfg(8)
	cfg.VP.FetchPolicy = config.FetchNoStall // parent and children compete
	eng, st := runBench(t, b, cfg)
	if !eng.Halted() {
		t.Fatal("did not halt")
	}
	if st.Spawns == 0 {
		t.Fatal("no spawns under no-stall")
	}
	if st.Confirms == 0 {
		t.Error("no confirms: speculative threads starved of fetch")
	}
}

// TestFrontEndDepthDelaysDispatch: instructions must not commit before the
// front-end pipe has filled.
func TestFrontEndDepthDelaysDispatch(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxInsts = 100
	prog, image := chaseBench(64, 1).Build(1)
	st := runStats(t, &cfg, prog, image)
	if st.Cycles < uint64(cfg.FrontEndDepth) {
		t.Errorf("first commits after only %d cycles (front end depth %d)",
			st.Cycles, cfg.FrontEndDepth)
	}
}

// TestWarmHandoffState: after an SFP spawn the child must carry a warm
// front end (pipeWarm > 0) and the configured dispatch hold, while no-stall
// children get no warm pipe for free.
func TestWarmHandoffState(t *testing.T) {
	b := chaseBench(2048, 1<<20)
	cfg := mtvpOracleCfg(2)
	cfg.MaxInsts = 3_000
	prog, image := b.Build(5)
	st := &struct{ seen bool }{}
	eng, err := New(&cfg, prog, image, newStats())
	if err != nil {
		t.Fatal(err)
	}
	// Step cycles manually until a spawn happens, then inspect the child.
	for i := 0; i < 200_000 && !st.seen; i++ {
		eng.now++
		eng.commit()
		eng.complete()
		eng.issue()
		eng.dispatch()
		eng.fetch()
		for _, th := range eng.liveByOrder() {
			if th.spawn != nil && th.pipeWarm > 0 {
				st.seen = true
				if th.dispatchHold <= th.fetchBlocked-1 {
					t.Errorf("dispatch hold %d not beyond spawn point %d",
						th.dispatchHold, th.fetchBlocked)
				}
			}
		}
	}
	if !st.seen {
		t.Fatal("no spawned child with a warm front end observed")
	}
}
