package pipeline

import (
	"fmt"

	"mtvp/internal/crit"
	"mtvp/internal/trace"
)

// windowMinCycles is the minimum ILP-pred measurement window. Windows run
// from prediction to at least this many cycles later even when the load
// returns quickly, so the handoff costs and drain bursts around a spawn are
// inside the measurement rather than after it.
const windowMinCycles = 256

// deferWindow schedules the event's forward-progress observation for when
// its measurement window closes.
func (e *Engine) deferWindow(ev *vpEvent) {
	if e.now >= ev.startCycle+windowMinCycles {
		e.observeWindow(ev)
		return
	}
	e.pendingWindows = append(e.pendingWindows, ev)
	// Event edge: flushWindows must observe the window on exactly the
	// cycle its minimum length elapses (the selector is fed e.now).
	e.wake(ev.startCycle + windowMinCycles)
}

// observeWindow reports one closed window to the selector. Forward progress
// is measured in net useful committed instructions (the paper's
// committed-count ILP-pred variant): issued counts would credit wrong-path
// work from children that are about to be killed.
func (e *Engine) observeWindow(ev *vpEvent) {
	var progress uint64
	if e.st.Committed > ev.startProgress {
		progress = e.st.Committed - ev.startProgress
	}
	e.sel.Observe(ev.pc, ev.mode, progress, uint64(e.now-ev.startCycle))
}

// flushWindows observes every pending window whose minimum length has
// elapsed.
func (e *Engine) flushWindows() {
	kept := e.pendingWindows[:0]
	for _, ev := range e.pendingWindows {
		if e.now >= ev.startCycle+windowMinCycles {
			e.observeWindow(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	e.pendingWindows = kept
}

// complete retires finished executions: it marks results available,
// releases branch-blocked fetch, and resolves value-prediction events when
// the predicted load's real value returns from the memory system.
func (e *Engine) complete() {
	e.flushWindows()
	for {
		u, ok := e.completions.pop(e.now)
		if !ok {
			return
		}
		e.setUopState(u, stDone)
		// Event edge: the result unblocks consumers (issue), the ROB head
		// (commit), and possibly branch-blocked fetch, all next cycle.
		e.wake(e.now + 1)
		e.emit(trace.KComplete, u)
		if u.mispredicted && u.thread.live && u.thread.blockedOn == u {
			u.thread.blockedOn = nil
			if u.thread.fetchBlocked < e.now+1 {
				u.thread.fetchBlocked = e.now + 1
			}
		}
		if u.vp != nil && !u.vp.resolved {
			e.resolveEvent(u.vp)
		}
	}
}

// resolveEvent handles a value prediction whose load has returned: it
// feeds the ILP-pred measurement window, verifies the prediction, and
// confirms or kills speculative threads.
func (e *Engine) resolveEvent(ev *vpEvent) {
	ev.resolved = true
	e.deferWindow(ev)
	if ev.measureOnly {
		return
	}

	switch ev.mode {
	case crit.DecideSTVP:
		t := ev.load.thread
		t.unverifiedSTVP--
		e.noteOutcome(t, ev.correct)
		if ev.correct {
			e.st.VPCorrect++
			return
		}
		e.st.VPWrong++
		e.noteWrongButPresent(ev)
		e.selectiveReissue(ev.load)
		// A thread spawned after this load forked register state that
		// embedded the wrong value; it cannot be repaired by reissue
		// (it may have committed dependents), so it dies and the parent
		// re-executes its stream itself.
		if sp := t.pendingSpawn; sp != nil && sp.load != nil && sp.load.seq > ev.load.seq {
			e.abandonEvent(sp)
			t.stallFetch = false
			if t.fetchBlocked < e.now+1 {
				t.fetchBlocked = e.now + 1
			}
		}

	case crit.DecideMTVP:
		t := ev.load.thread
		t.pendingSpawn = nil

		var survivor *thread
		for i, c := range ev.children {
			if ev.childVals[i] == ev.actual && c.live {
				survivor = c
				break
			}
		}
		if ev.spawnOnly && len(ev.children) > 0 && ev.children[0].live {
			survivor = ev.children[0]
		}

		if survivor == nil {
			// Every followed value was wrong: kill the children and
			// let the parent proceed past the load with the real value.
			if !ev.spawnOnly {
				e.st.VPWrong++
				e.noteWrongButPresent(ev)
				e.noteOutcome(t, false)
			}
			for _, c := range ev.children {
				if c.live {
					e.killSubtree(c)
				}
			}
			t.stallFetch = false
			if t.fetchBlocked < e.now+1 {
				t.fetchBlocked = e.now + 1
			}
			return
		}

		if !ev.spawnOnly {
			e.st.VPCorrect++
			if survivor != ev.children[0] {
				e.st.MultiValueSaves++
			}
			e.noteOutcome(t, true)
		}
		e.st.Confirms++
		for _, c := range ev.children {
			if c != survivor && c.live {
				e.killSubtree(c)
			}
		}
		// The parent drains its remaining commits (through the load)
		// and then hands its place in the lineage to the survivor. Any
		// redundant post-load work the parent did under the no-stall
		// policy is squashed now.
		e.noteConfirmTelemetry(survivor, ev)
		if e.tracer != nil {
			e.emitThreadPeer(trace.KConfirm, survivor, t, fmt.Sprintf("prediction at pc %d confirmed; T%d/%d retiring",
				ev.load.ex.PC, t.id, t.order))
		}
		e.squashYoungerThan(t, ev.load.seq)
		t.retiring = true
		t.stallFetch = false
		// The survivor (or whatever live thread replaces it in the
		// event's child list by drain time) inherits t's lineage slot.
		t.confirmEvent = ev
	}
}

// noteWrongButPresent implements the Figure 5 measurement: the primary
// prediction was wrong, but the correct value was in the predictor and over
// threshold as an alternate.
func (e *Engine) noteWrongButPresent(ev *vpEvent) {
	for _, alt := range ev.alternates {
		if alt.Value == ev.actual {
			e.st.VPWrongButPresent++
			return
		}
	}
}

// selectiveReissue models single-threaded value-prediction recovery: every
// instruction that (transitively) consumed the mispredicted load's value
// re-executes once the real value is available. Instructions that never
// issued are untouched — they will simply issue with the right value.
func (e *Engine) selectiveReissue(load *uop) {
	seen := map[*uop]bool{load: true}
	var work []*uop
	for _, cr := range load.consumers {
		// A stale ref names a recycled uop whose old lifetime already
		// committed or squashed — exactly the states the walk skips.
		if c := cr.get(); c != nil {
			work = append(work, c)
		}
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		switch u.state {
		case stIssued, stDone:
			// Consumed a (possibly) wrong value: squash the result
			// and return to the queue.
			e.setUopState(u, stWaiting)
			u.issueGen++
			e.qUsed[u.queue]++
			u.thread.icount++
			e.waiting[u.queue] = append(e.waiting[u.queue], u.slot)
			e.wake(e.now + 1) // may re-issue next cycle
			e.st.Reissues++
			e.emit(trace.KReissue, u)
			for _, cr := range u.consumers {
				if c := cr.get(); c != nil {
					work = append(work, c)
				}
			}
		default:
			// Waiting, fetched, or squashed: never executed with the
			// wrong value; its consumers cannot have either.
		}
	}
}

// squashYoungerThan squashes every uop in t younger than seq (exclusive):
// the redundant post-spawn stream of a confirmed parent under the no-stall
// fetch policy. It also unwinds any value-prediction events those uops
// carried.
func (e *Engine) squashYoungerThan(t *thread, seq uint64) {
	for i := len(t.rob) - 1; i >= t.robHead; i-- {
		u := t.rob[i]
		if u.seq <= seq {
			break
		}
		e.squashUop(u)
	}
	// Drop squashed entries from the fetch buffer and store queue.
	fb := t.fetchBuf[:0]
	for _, u := range t.fetchBuf[t.fbHead:] {
		if u.state != stSquashed {
			fb = append(fb, u)
		}
	}
	for i := len(fb); i < len(t.fetchBuf); i++ {
		t.fetchBuf[i] = nil
	}
	t.fetchBuf = fb
	t.fbHead = 0
	sq := t.storeQ[:0]
	for _, se := range t.storeQ {
		if se.u == nil || se.u.state != stSquashed {
			sq = append(sq, se)
		} else {
			e.noteStoreFree(1)
		}
	}
	t.storeQ = sq
}

// squashUop removes one uop from the machine, releasing whatever resources
// its state holds. Committed uops cannot be squashed here (thread kills
// handle committed-work accounting separately).
func (e *Engine) squashUop(u *uop) {
	if u.state == stSquashed || u.state == stCommitted {
		return
	}
	switch u.state {
	case stFetched:
		u.thread.icount--
	case stWaiting:
		u.thread.icount--
		e.qUsed[u.queue]--
		e.robUsed--
		if u.usesRename {
			e.renameUsed--
		}
	case stIssued, stDone:
		e.robUsed--
		if u.usesRename {
			e.renameUsed--
		}
	}
	e.setUopState(u, stSquashed)
	u.issueGen++
	// Event edge: a squashed ROB or fetch-buffer head is consumed for free
	// next cycle, and the released resources may unblock dispatch.
	e.wake(e.now + 1)
	e.st.Squashed++
	e.emit(trace.KSquash, u)
	if u.vp != nil && !u.vp.resolved {
		e.abandonEvent(u.vp)
	}
}

// abandonEvent resolves an event whose load was squashed: its children are
// wrong-path threads of a wrong-path prediction and die with it.
func (e *Engine) abandonEvent(ev *vpEvent) {
	ev.resolved = true
	if ev.load != nil {
		t := ev.load.thread
		switch ev.mode {
		case crit.DecideSTVP:
			t.unverifiedSTVP--
		case crit.DecideMTVP:
			if t.pendingSpawn == ev {
				t.pendingSpawn = nil
			}
		}
	}
	for _, c := range ev.children {
		if c.live {
			e.killSubtree(c)
		}
	}
}

// killSubtree kills t and every live descendant of t.
func (e *Engine) killSubtree(t *thread) {
	for _, o := range e.liveByOrder() {
		if o != t && descendsFrom(o, t) {
			e.killOne(o)
		}
	}
	e.killOne(t)
}

func descendsFrom(t, anc *thread) bool {
	for cur := t.parent; cur != nil; cur = cur.parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// killOne destroys a single speculative thread: all of its in-flight work
// is squashed, its committed instructions are discounted from useful IPC,
// and its store-buffer overlay is released.
func (e *Engine) killOne(t *thread) {
	if !t.live {
		return
	}
	for i := t.robHead; i < len(t.rob); i++ {
		e.squashUop(t.rob[i])
	}
	if t.pendingSpawn != nil && !t.pendingSpawn.resolved {
		// The spawn load may already have completed; make sure the
		// event cannot fire later against a dead thread.
		e.abandonEvent(t.pendingSpawn)
	}
	e.st.Squashed += t.committed
	e.st.Committed -= t.committed
	e.st.Kills++
	e.noteKillTelemetry(t)
	if e.tracer != nil {
		e.emitThread(trace.KKill, t, fmt.Sprintf("committed %d discounted", t.committed))
	}
	t.live = false
	t.killed = true
	t.retiring = false
	// Event edge: the freed context and resources change what the next
	// cycle can do (spawns, dispatch, the parent's fetch restart).
	e.wake(e.now + 1)
	e.threadRemoved(t)
	e.noteStoreFree(len(t.storeQ))
	t.fetchBuf = nil
	t.fbHead = 0
	t.storeQ = nil
	// The thread's commits were discounted from useful work above; the
	// checker must never verify them.
	t.checkBuf = nil
	t.overlay.Release()
	e.slots[t.id] = nil
	if e.auditOn {
		e.auditKill(t)
	}
	// Recycle after the kill audit so dangling-rename checks still see the
	// dead uops' original generations.
	e.freeROB(t)
}
