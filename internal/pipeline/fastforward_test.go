package pipeline

import (
	"reflect"
	"testing"

	"mtvp/internal/asm"
	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/stats"
	"mtvp/internal/telemetry"
	"mtvp/internal/workload"
)

// TestFastForwardIsInvisible is the A/B guarantee behind idle-cycle
// fast-forward: running the same machine on the same workload with the
// optimization force-disabled must produce byte-identical statistics,
// architectural register state, and telemetry time series. The fast path
// must also actually engage (ffSkipped > 0), or the test proves nothing.
// The event-driven scheduler is pinned off here — this test validates the
// polling scan's own jump; events_test.go owns the event-vs-polling axis.
func TestFastForwardIsInvisible(t *testing.T) {
	t.Setenv("MTVP_NO_FASTFWD", "") // pin the env override off
	t.Setenv("MTVP_NO_EVENTQ", "1") // polling scheduler only

	cases := []struct {
		name   string
		cycles uint64
		cfg    func() config.Config
		bench  workload.Benchmark
	}{
		{
			// Single thread over an L3-busting chase: almost every cycle
			// between load returns is idle — the fast-forward's home turf.
			name:   "miss-heavy-baseline",
			cycles: 400_000,
			cfg:    config.Baseline,
			bench: workload.PointerChase("ab-miss", workload.INT, workload.ChaseParams{
				Nodes: 1 << 18, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 10, BodyOps: 4, Iters: 1 << 40,
			}),
		},
		{
			// MTVP8 with continuous spawn/confirm churn: exercises every
			// wake-edge the quiescence scan must account for (spawn holds,
			// retiring drains, pending windows, multi-thread fetch).
			name:   "deep-speculation-mtvp8",
			cycles: 150_000,
			cfg:    func() config.Config { return mtvpOracleCfg(8) },
			bench: workload.PointerChase("ab-spec", workload.INT, workload.ChaseParams{
				Nodes: 1 << 16, NodeBytes: 64, PoolSize: 8,
				DominantPct: 60, ReusePct: 30, SeqPct: 30, BodyOps: 8, Iters: 1 << 40,
			}),
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			type outcome struct {
				st     stats.Stats
				regs   [isa.NumRegs]uint64
				regsOK bool
				halted bool
				points []telemetry.Point
				ff     uint64
			}
			run := func(disable bool) outcome {
				cfg := c.cfg()
				cfg.MaxInsts = 1 << 62
				cfg.MaxCycles = c.cycles
				cfg.DisableFastForward = disable
				prog, image := c.bench.Build(1)
				st := &stats.Stats{}
				eng, err := New(&cfg, prog, image, st)
				if err != nil {
					t.Fatal(err)
				}
				sampler := telemetry.NewSampler(0)
				eng.SetTelemetry(telemetry.NewMachine(nil, sampler))
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				eng.FinishTelemetry()
				regs, ok := eng.ArchRegs()
				return outcome{
					st: *st, regs: regs, regsOK: ok,
					halted: eng.Halted(),
					points: sampler.Points(),
					ff:     eng.ffSkipped,
				}
			}

			fast := run(false)
			slow := run(true)

			if fast.ff == 0 {
				t.Errorf("fast-forward never engaged (ffSkipped = 0); A/B comparison is vacuous")
			}
			if slow.ff != 0 {
				t.Errorf("DisableFastForward run skipped %d cycles", slow.ff)
			}
			if fast.st != slow.st {
				t.Errorf("stats diverge:\nfast: %+v\nslow: %+v", fast.st, slow.st)
			}
			if fast.regsOK != slow.regsOK || fast.regs != slow.regs {
				t.Errorf("architectural registers diverge:\nfast: ok=%v %v\nslow: ok=%v %v",
					fast.regsOK, fast.regs, slow.regsOK, slow.regs)
			}
			if fast.halted != slow.halted {
				t.Errorf("halted diverges: fast=%v slow=%v", fast.halted, slow.halted)
			}
			if !reflect.DeepEqual(fast.points, slow.points) {
				t.Errorf("telemetry time series diverge: fast has %d points, slow has %d",
					len(fast.points), len(slow.points))
			}
		})
	}
}

// missRing builds a load-only pointer ring far larger than the L3, so every
// chase step is a full memory-latency miss with nothing else in flight: the
// steady state is one long idle stretch per load, all of it fast-forwarded.
// No stores means the functional overlay never grows, which is what lets the
// idle regime hold a zero-allocation steady state.
func missRing(nodes int) (*isa.Program, *mem.Memory) {
	const nodeBytes = 64
	const base = uint64(0x100000)
	r := mem.NewRand(7)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	addr := func(i int) uint64 { return base + uint64(i)*nodeBytes }
	m := mem.New()
	for i := 0; i < nodes; i++ {
		m.Store(addr(perm[i]), 8, addr(perm[(i+1)%nodes]))
	}

	b := asm.New("miss-ring")
	b.Liu(isa.R1, addr(perm[0]))
	b.Label("loop")
	b.Ld(isa.R1, isa.R1, 0)
	b.Addi(isa.R2, isa.R2, 1)
	b.J("loop")
	b.Halt()
	return b.MustBuild(), m
}

// TestZeroAllocSteadyState pins the hot loop's allocation behaviour: once
// the engine is warm (slices at capacity, uop pool populated, overlay keys
// touched, calendar heap at depth), a simulated cycle must not allocate at
// all — neither on the commit-every-cycle path nor on the fast-forwarded
// idle path, under both the event-driven and the polling scheduler.
func TestZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("warmup is a few hundred ms per case")
	}
	t.Setenv("MTVP_NO_FASTFWD", "")
	t.Setenv("MTVP_NO_EVENTQ", "")

	cases := []struct {
		name  string
		build func() (*isa.Program, *mem.Memory)
		warm  int
	}{
		{
			// DL1-resident chase, commits nearly every cycle: exercises
			// fetch/dispatch/issue/commit and uop recycling. Stores revisit
			// the same node addresses, so the overlay map stops growing
			// after the first traversal.
			name: "hit-heavy",
			build: func() (*isa.Program, *mem.Memory) {
				return workload.PointerChase("zeroalloc-hit", workload.INT, workload.ChaseParams{
					Nodes: 256, NodeBytes: 64, PoolSize: 8,
					DominantPct: 60, ReusePct: 30, SeqPct: 90, BodyOps: 12, Iters: 1 << 40,
				}).Build(1)
			},
			warm: 80_000,
		},
		{
			// Load-only miss ring: ~1000 idle cycles per chase step, all
			// fast-forwarded — pins the nextWake/fastForward path itself.
			name:  "miss-idle",
			build: func() (*isa.Program, *mem.Memory) { return missRing(1 << 17) },
			warm:  80_000,
		},
	}

	for _, c := range cases {
		for _, engine := range []string{"event", "polling"} {
			t.Run(c.name+"/"+engine, func(t *testing.T) {
				cfg := config.Baseline()
				cfg.MaxInsts = 1 << 62
				cfg.MaxCycles = 1 << 40
				cfg.DisableEventQueue = engine == "polling"
				// The stride prefetcher's stream-tracking maps churn entries;
				// it stays on in benchmarks but is out of scope for the
				// zero-alloc pin.
				cfg.Prefetch.Enabled = false
				prog, image := c.build()
				st := &stats.Stats{}
				eng, err := New(&cfg, prog, image, st)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < c.warm; i++ {
					if stop, err := eng.runCycle(); err != nil || stop {
						t.Fatalf("warmup ended early at cycle %d: stop=%v err=%v", eng.now, stop, err)
					}
				}
				avg := testing.AllocsPerRun(300, func() {
					if _, err := eng.runCycle(); err != nil {
						t.Fatal(err)
					}
				})
				if avg != 0 {
					t.Errorf("steady-state cycle allocates: %.2f allocs/cycle", avg)
				}
				if st.Committed == 0 {
					t.Fatal("workload committed nothing; the steady state measured is vacuous")
				}
			})
		}
	}
}
