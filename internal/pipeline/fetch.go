package pipeline

import (
	"fmt"

	"mtvp/internal/config"
	"mtvp/internal/crit"
	"mtvp/internal/fault"
	"mtvp/internal/isa"
	"mtvp/internal/trace"
)

// fetch implements the ICOUNT.n.m front end: each cycle up to FetchBlocks
// threads are selected by lowest in-flight count, and each fetches up to
// FetchWidth/FetchBlocks instructions, stopping at taken branches,
// mispredictions, value-prediction spawns (single fetch path), instruction
// cache misses, and front-end capacity.
func (e *Engine) fetch() {
	perThread := e.cfg.FetchWidth / e.cfg.FetchBlocks
	if perThread < 1 {
		perThread = 1
	}
	picked := e.pickedBuf[:0]
	for b := 0; b < e.cfg.FetchBlocks; b++ {
		t := e.pickFetchThread(picked)
		if t == nil {
			e.st.FetchBlocked++
			break
		}
		picked = append(picked, t)
		e.fetchFrom(t, perThread)
	}
	e.pickedBuf = picked
}

func (e *Engine) pickFetchThread(picked []*thread) *thread {
	var best *thread
next:
	for _, t := range e.liveByOrder() {
		for _, p := range picked {
			if p == t {
				continue next
			}
		}
		if !e.canFetch(t) {
			continue
		}
		if best == nil || t.icount < best.icount {
			best = t
		}
	}
	return best
}

func (e *Engine) canFetch(t *thread) bool {
	return !t.retiring &&
		!t.stallFetch &&
		t.blockedOn == nil &&
		t.fetchBlocked <= e.now &&
		!t.ctx.Halted &&
		t.fetchBufLen() < e.fbufCap
}

func (e *Engine) fetchFrom(t *thread, max int) {
	var lastLine uint64 = ^uint64(0)
	for n := 0; n < max; n++ {
		if !e.canFetch(t) {
			return
		}
		pc := t.ctx.PC
		if pc < 0 || pc >= int64(len(e.dec)) {
			return // past the end of the program; Step will halt the context
		}
		d := &e.dec[pc]

		// Instruction cache: one access per line touched.
		line := d.InstAddr &^ uint64(e.cfg.ICache.LineBytes-1)
		if line != lastLine {
			ready := e.hier.InstFetch(line, e.now)
			if ready > e.now+int64(e.cfg.ICache.Latency) {
				t.fetchBlocked = ready
				return
			}
			lastLine = line
		}

		// Value prediction hook: decide before the load executes so a
		// spawned thread can fork from the pre-load register state.
		var ev *vpEvent
		if d.IsLoad && e.cfg.VP.Mode != config.VPNone {
			ev = e.vpDecide(t, d)
		}

		ex, ok := t.ctx.Step()
		if !ok {
			return
		}
		u := e.newUop(t, ex, d)
		if ev != nil {
			u.vp = ev
			ev.load = u
			if !ev.measureOnly {
				e.emit(trace.KPredict, u)
			}
			if ev.mode == crit.DecideMTVP {
				e.spawn(t, u, ev)
			}
		}

		if d.IsBranch {
			e.st.Branches++
			pred := e.bp.Predict(d.InstAddr)
			e.bp.Update(d.InstAddr, ex.Taken)
			if pred != ex.Taken {
				e.st.BranchWrong++
				u.mispredicted = true
				t.blockedOn = u
				return
			}
			if ex.Taken {
				return // taken branch ends this thread's fetch block
			}
		} else if d.IsControl {
			switch d.Inst.Op {
			case isa.JAL:
				t.rasPush(pc + 1)
			case isa.JR:
				// Indirect jumps are predicted by the return-address
				// stack; a wrong prediction blocks fetch until the
				// jump resolves, like a branch mispredict.
				e.st.Branches++
				if t.rasPop() != ex.NextPC {
					e.st.BranchWrong++
					u.mispredicted = true
					t.blockedOn = u
					return
				}
			}
			return // jumps redirect fetch; end the block
		}
	}
}

func (e *Engine) newUop(t *thread, ex isa.Exec, d *isa.Decoded) *uop {
	e.seqCtr++
	fetchCycle := e.now
	if t.pipeWarm > 0 {
		// Delivered from the parent's warm front end: dispatchable now.
		fetchCycle = e.now - int64(e.cfg.FrontEndDepth)
		t.pipeWarm--
	}
	u := e.allocUop()
	u.seq = e.seqCtr
	u.thread = t
	u.ex = ex
	u.dec = d
	u.class = d.Class
	u.queue = queueFor(d.Class)
	e.setUopState(u, stFetched)
	u.fetchCycle = fetchCycle
	// Event edge: the uop becomes dispatchable once its front-end delay
	// elapses (a pipe-warm backdated cycle clamps to next cycle).
	e.wake(fetchCycle + int64(e.cfg.FrontEndDepth))
	u.hasDest = d.HasDest
	t.rob = append(t.rob, u)
	t.compactFetchBuf()
	t.fetchBuf = append(t.fetchBuf, u)
	t.icount++
	e.st.Fetched++
	e.emit(trace.KFetch, u)
	return u
}

// vpDecide consults the value predictor and the criticality selector for
// the load the thread is about to execute, returning the event to attach to
// the load's uop (nil when nothing is predicted or measured).
func (e *Engine) vpDecide(t *thread, dec *isa.Decoded) *vpEvent {
	// The degradation ladder may have capped this context's speculation
	// below the configured mode (recover.go).
	mode := e.effectiveMode(t.id)
	if mode == config.VPNone {
		return nil
	}
	in := dec.Inst
	addr := t.ctx.EffAddr(in)
	actual := t.ctx.Mem.Load(addr, dec.MemSize)
	pcAddr := dec.InstAddr

	e.st.VPLookups++
	lookupPC := pcAddr
	if e.injectFault(fault.PredAlias) {
		// Aliasing storm: the lookup indexes someone else's table entry.
		// Training (by ev.pc) still uses the real PC, so the corrupted
		// prediction competes with legitimately trained state.
		lookupPC ^= 1 + e.inj.Rand64()%1023
	}
	pr := e.vp.Lookup(t.id, lookupPC, actual)
	if pr.Valid && e.injectFault(fault.PredBitFlip) {
		// Value-table soft error: one bit of the predicted value flips.
		// It is followed like any prediction and caught at resolve.
		pr.Value ^= 1 << (e.inj.Rand64() & 63)
	}
	if !e.cfg.VP.SpawnOnly {
		if !pr.Valid || !pr.Confident {
			return nil
		}
		e.st.VPConfident++

		// Misprediction-storm quarantine: a clamped context only follows
		// predictions well above the normal confidence bar; a disabled
		// context follows none.
		if q := e.quarantineFor(t); q != nil {
			switch q.State() {
			case fault.QDisabled:
				e.st.QuarantineSuppressed++
				return nil
			case fault.QClamped:
				if pr.Conf < e.rec.clampConf {
					e.st.QuarantineSuppressed++
					return nil
				}
			}
		}
	}

	mtvpOK := mode == config.VPMTVP &&
		e.freeSlot() >= 0 &&
		t.pendingSpawn == nil
	level := e.hier.ProbeLevel(addr)
	decision := e.sel.Select(pcAddr, level, mtvpOK)

	ev := &vpEvent{
		pc:            pcAddr,
		mode:          decision,
		predicted:     pr.Value,
		actual:        actual,
		correct:       pr.Value == actual,
		alternates:    pr.Alternates,
		startCycle:    e.now,
		startProgress: e.st.Committed,
	}
	switch decision {
	case crit.DecideNone:
		ev.measureOnly = true
	case crit.DecideSTVP:
		if e.cfg.VP.SpawnOnly {
			return nil // the spawn-only machine never value-predicts
		}
		e.st.VPPredicted++
		e.st.STVPUsed++
		t.unverifiedSTVP++
	case crit.DecideMTVP:
		if e.cfg.VP.SpawnOnly {
			ev.spawnOnly = true
			ev.correct = true
		} else {
			e.st.VPPredicted++
		}
	}
	return ev
}

// spawn creates the speculative thread(s) for an MTVP event. The parent's
// functional context has not yet executed the load, so each child forks from
// the pre-load register state with the load destination overwritten by its
// predicted value (or left dependent on the real load in spawn-only mode).
func (e *Engine) spawn(t *thread, loadU *uop, ev *vpEvent) {
	if e.injectFault(fault.SpawnLost) {
		// The spawn event is lost in flight: no child is created and the
		// parent proceeds as if the selector had declined, exactly like
		// racing out of free contexts below.
		ev.measureOnly = true
		ev.mode = crit.DecideNone
		e.st.SpawnDenied++
		return
	}
	in := loadU.ex.Inst
	values := []uint64{ev.predicted}
	if e.cfg.VP.MultiValue && !ev.spawnOnly {
		for _, alt := range ev.alternates {
			if len(values) >= e.cfg.VP.MaxValuesPerLoad || e.freeSlots() <= len(values) {
				break
			}
			values = append(values, alt.Value)
		}
	}
	if ev.spawnOnly {
		values = []uint64{ev.actual}
	}
	if e.injectFault(fault.SpawnDup) {
		// Duplicated spawn event: a second child chases the primary value
		// and must lose the survivor selection at confirmation (or be
		// dropped here if no context is free).
		values = append(values, values[0])
	}

	// Fork the store-buffer overlay: the parent's current overlay is
	// frozen and shared; parent and children each get a fresh top.
	tops := t.overlay.Fork(1 + len(values))
	t.overlay = tops[0]
	t.ctx.Mem = tops[0]

	for i, v := range values {
		slot := e.freeSlot()
		if slot < 0 {
			// No context for a secondary value; drop it.
			tops[1+i].Release()
			continue
		}
		cctx := t.ctx.Fork(tops[1+i])
		if !ev.spawnOnly {
			cctx.SetReg(in.Rd, v)
		}
		cctx.PC = loadU.ex.PC + 1
		cctx.Halted = false

		e.ordCtr++
		c := &thread{
			id:           slot,
			live:         true,
			ctx:          cctx,
			overlay:      tops[1+i],
			parent:       t,
			spawn:        ev,
			order:        e.ordCtr,
			fetchBlocked: e.now + 1,
			dispatchHold: e.now + int64(e.cfg.VP.SpawnLatency),
			lastWriter:   t.lastWriter,
			ras:          t.ras,
			rasSP:        t.rasSP,
		}
		if e.cfg.VP.FetchPolicy == config.FetchSFP && i == 0 {
			// §3.3: with a single fetch path, the spawned thread starts
			// at the next sequential PC and consumes instructions the
			// front end already fetched — no fetch interruption.
			c.pipeWarm = e.cfg.FrontEndDepth * (e.cfg.FetchWidth / e.cfg.FetchBlocks)
		}
		if ev.spawnOnly {
			// Dependents of the load wait for the real value.
			c.lastWriter[in.Rd] = ref(loadU)
		} else {
			// The predicted value is immediately available.
			c.lastWriter[in.Rd] = uopRef{}
		}
		e.slots[slot] = c
		e.threadAdded(c)
		ev.children = append(ev.children, c)
		ev.childVals = append(ev.childVals, v)
		if e.auditOn {
			e.auditSpawn(t, c, in.Rd, loadU, ev.spawnOnly)
		}
	}

	if len(ev.children) == 0 {
		// Spawn failed outright (raced out of contexts): degrade to a
		// plain measurement so resolution still happens cleanly.
		ev.measureOnly = true
		ev.mode = crit.DecideNone
		e.st.SpawnDenied++
		return
	}
	e.st.Spawns += uint64(len(ev.children))
	for i, c := range ev.children {
		e.noteSpawnTelemetry(c)
		if e.tracer != nil {
			e.emitThreadPeer(trace.KSpawn, c, t, fmt.Sprintf("from T%d/%d at pc %d value %#x",
				t.id, t.order, loadU.ex.PC, ev.childVals[i]))
		}
	}
	t.pendingSpawn = ev
	if e.cfg.VP.FetchPolicy == config.FetchSFP {
		t.stallFetch = true
	}
	// Event edge: the children's first dispatch waits out the spawn
	// latency (their fetch edges are re-announced every executed cycle).
	e.wake(e.now + int64(e.cfg.VP.SpawnLatency))
}
