package pipeline

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// chaseBench builds a small pointer-chase kernel: serially dependent,
// memory-missing, value-predictable — the workload MTVP is made for.
func chaseBench(nodes int, iters int64) workload.Benchmark {
	return workload.PointerChase("pl-chase", workload.INT, workload.ChaseParams{
		Nodes: nodes, NodeBytes: 64, PoolSize: 4,
		DominantPct: 95, ReusePct: 3, SeqPct: 90, BodyOps: 24, Iters: iters,
	})
}

func runBench(t *testing.T, b workload.Benchmark, cfg config.Config) (*Engine, *stats.Stats) {
	t.Helper()
	cfg.MaxInsts = 40_000_000
	cfg.MaxCycles = 100_000_000
	prog, image := b.Build(5)
	st := &stats.Stats{}
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng, st
}

func TestBaselineCommitsMatchFunctional(t *testing.T) {
	b := chaseBench(128, 3)
	prog, image := b.Build(5)
	ref := isa.NewContext(prog, image.Clone())
	refN := ref.Run(1 << 40)

	_, st := runBench(t, b, config.Baseline())
	if st.Committed != refN {
		t.Errorf("committed %d, functional %d", st.Committed, refN)
	}
}

func TestResourceAccountingReturnsToZero(t *testing.T) {
	for _, contexts := range []int{1, 4, 8} {
		cfg := config.Baseline()
		if contexts > 1 {
			cfg = cfg.WithMTVP(contexts, config.PredWangFranklin, config.SelILPPred)
		}
		eng, _ := runBench(t, chaseBench(256, 3), cfg)
		if !eng.Halted() {
			t.Fatalf("contexts=%d: did not halt", contexts)
		}
		if eng.robUsed != 0 || eng.renameUsed != 0 {
			t.Errorf("contexts=%d: rob=%d rename=%d after drain",
				contexts, eng.robUsed, eng.renameUsed)
		}
		for q := queueKind(0); q < numQueues; q++ {
			if eng.qUsed[q] != 0 {
				t.Errorf("contexts=%d: queue %d occupancy %d after drain",
					contexts, q, eng.qUsed[q])
			}
		}
		live := eng.liveByOrder()
		if len(live) != 1 {
			t.Errorf("contexts=%d: %d live threads at end", contexts, len(live))
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Baseline().WithMTVP(4, config.PredWangFranklin, config.SelILPPred)
	_, s1 := runBench(t, chaseBench(256, 3), cfg)
	_, s2 := runBench(t, chaseBench(256, 3), cfg)
	if *s1 != *s2 {
		t.Errorf("two identical runs diverged:\n%v\n%v", s1, s2)
	}
}

func TestMTVPBeatsBaselineOnChase(t *testing.T) {
	b := chaseBench(2048, 2)
	_, base := runBench(t, b, config.Baseline())
	_, mtvp := runBench(t, b, mtvpOracleCfg(4))
	if mtvp.UsefulIPC() <= base.UsefulIPC()*1.2 {
		t.Errorf("mtvp4-oracle IPC %.4f vs baseline %.4f: expected a clear win",
			mtvp.UsefulIPC(), base.UsefulIPC())
	}
	if mtvp.Spawns == 0 || mtvp.Confirms == 0 {
		t.Errorf("no threading activity: %+v", mtvp)
	}
}

func TestMoreContextsHelp(t *testing.T) {
	// A memory-resident chase (16MB >> L3) under an instruction budget:
	// deeper speculation must overlap more of the serial miss chain.
	b := workload.PointerChase("pl-scale", workload.INT, workload.ChaseParams{
		Nodes: 1 << 18, NodeBytes: 64, PoolSize: 4,
		DominantPct: 95, ReusePct: 3, SeqPct: 90, BodyOps: 48, Iters: 1 << 20,
	})
	run := func(contexts int) float64 {
		cfg := mtvpOracleCfg(contexts)
		cfg.MaxInsts = 120_000
		prog, image := b.Build(5)
		st := &stats.Stats{}
		eng, err := New(&cfg, prog, image, st)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return st.UsefulIPC()
	}
	two, eight := run(2), run(8)
	if eight <= two {
		t.Errorf("mtvp8 %.4f <= mtvp2 %.4f", eight, two)
	}
}

func TestSpawnLatencyCosts(t *testing.T) {
	b := chaseBench(2048, 2)
	mk := func(lat int) config.Config {
		cfg := mtvpOracleCfg(4)
		cfg.VP.SpawnLatency = lat
		return cfg
	}
	_, fast := runBench(t, b, mk(1))
	_, slow := runBench(t, b, mk(64))
	if slow.Cycles < fast.Cycles {
		t.Errorf("64-cycle spawns ran faster (%d) than 1-cycle (%d)",
			slow.Cycles, fast.Cycles)
	}
}

func TestStoreBufferBoundsSpeculation(t *testing.T) {
	b := chaseBench(2048, 2)
	mk := func(entries int) config.Config {
		cfg := mtvpOracleCfg(4)
		cfg.VP.StoreBufEntries = entries
		return cfg
	}
	_, tiny := runBench(t, b, mk(2))
	_, big := runBench(t, b, mk(0)) // unbounded
	if big.UsefulIPC() <= tiny.UsefulIPC() {
		t.Errorf("unbounded store buffer IPC %.4f <= 2-entry %.4f",
			big.UsefulIPC(), tiny.UsefulIPC())
	}
}

func TestSTVPSelectiveReissueOnMispredict(t *testing.T) {
	// Low-dominance payloads: the last-value predictor stays marginal and
	// mispredicts regularly, exercising selective reissue.
	b := workload.PointerChase("pl-misp", workload.INT, workload.ChaseParams{
		Nodes: 512, NodeBytes: 64, PoolSize: 2,
		DominantPct: 88, ReusePct: 12, SeqPct: 95, BodyOps: 8, Iters: 3,
	})
	cfg := config.Baseline().WithSTVP(config.PredLastValue, config.SelAlways)
	_, st := runBench(t, b, cfg)
	if st.VPWrong == 0 {
		t.Skip("no mispredictions produced; predictor too strong for this data")
	}
	if st.Reissues == 0 {
		t.Errorf("mispredictions (%d) without reissues", st.VPWrong)
	}
}

func TestMTVPKillRecovery(t *testing.T) {
	// Same marginal data under MTVP: wrong predictions must kill children
	// and the machine must still produce the exact functional result
	// (checked globally by the core equivalence tests; here we check the
	// kill path is actually exercised and the run completes).
	b := workload.PointerChase("pl-kill", workload.INT, workload.ChaseParams{
		Nodes: 512, NodeBytes: 64, PoolSize: 2,
		DominantPct: 85, ReusePct: 15, SeqPct: 95, BodyOps: 8, Iters: 3,
	})
	cfg := config.Baseline().WithMTVP(4, config.PredLastValue, config.SelAlways)
	eng, st := runBench(t, b, cfg)
	if !eng.Halted() {
		t.Fatal("did not halt")
	}
	if st.Kills == 0 {
		t.Skip("no kills produced; predictor too strong for this data")
	}
	if st.Squashed == 0 {
		t.Error("kills without squashed instructions")
	}
}

func TestSpawnOnlySplitWindow(t *testing.T) {
	// Independent gather misses: spawn-only cannot predict values but can
	// commit independent work past the stalled load.
	b := workload.Gather("pl-gather", workload.FP, workload.GatherParams{
		Items: 4096, TableLen: 1 << 17, PoolSize: 4,
		DominantPct: 0, ReusePct: 0, FPData: true, BodyOps: 40, Iters: 2,
	})
	_, base := runBench(t, b, config.Baseline())
	_, so := runBench(t, b, config.Baseline().SpawnOnly(4))
	if so.UsefulIPC() <= base.UsefulIPC() {
		t.Errorf("spawn-only IPC %.4f <= baseline %.4f", so.UsefulIPC(), base.UsefulIPC())
	}
	if so.VPPredicted != 0 {
		t.Errorf("spawn-only made %d value predictions", so.VPPredicted)
	}
}

func TestWideWindowHelpsIndependentMisses(t *testing.T) {
	b := workload.Gather("pl-ww", workload.FP, workload.GatherParams{
		Items: 4096, TableLen: 1 << 17, PoolSize: 4,
		DominantPct: 0, ReusePct: 0, FPData: true, BodyOps: 40, Iters: 2,
	})
	_, base := runBench(t, b, config.Baseline())
	_, ww := runBench(t, b, config.Baseline().WideWindow())
	if ww.UsefulIPC() <= base.UsefulIPC() {
		t.Errorf("wide window IPC %.4f <= baseline %.4f", ww.UsefulIPC(), base.UsefulIPC())
	}
}

func TestBranchMispredictsHurt(t *testing.T) {
	mk := func(bias int) workload.Benchmark {
		return workload.Branchy("pl-br", workload.INT, workload.BranchyParams{
			Tokens: 8192, Classes: 2, BiasPct: bias, TableLen: 256, Iters: 3,
		})
	}
	_, predictable := runBench(t, mk(98), config.Baseline())
	_, random := runBench(t, mk(50), config.Baseline())
	if random.BranchAccuracy() >= predictable.BranchAccuracy() {
		t.Errorf("accuracy: random %.3f >= biased %.3f",
			random.BranchAccuracy(), predictable.BranchAccuracy())
	}
	if random.UsefulIPC() >= predictable.UsefulIPC() {
		t.Errorf("IPC: random %.4f >= biased %.4f",
			random.UsefulIPC(), predictable.UsefulIPC())
	}
}

func TestBudgetStop(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxInsts = 5000
	prog, image := chaseBench(1<<14, 1<<20).Build(5)
	st := &stats.Stats{}
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Halted() {
		t.Error("halted on an effectively infinite kernel")
	}
	if st.Committed < 5000 || st.Committed > 5000+64 {
		t.Errorf("committed %d, budget 5000", st.Committed)
	}
}

func TestCycleCapStop(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxInsts = 1 << 40
	cfg.MaxCycles = 10_000
	prog, image := chaseBench(1<<14, 1<<20).Build(5)
	st := &stats.Stats{}
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st.Cycles < 10_000 || st.Cycles > 11_000 {
		t.Errorf("cycles %d, cap 10000", st.Cycles)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Baseline()
	cfg.Contexts = 0
	prog, image := chaseBench(64, 1).Build(1)
	if _, err := New(&cfg, prog, image, &stats.Stats{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	// The block-sort kernel stores into locations it soon reloads: the
	// timing model must forward from the store queue.
	b := workload.BlockSort("pl-fwd", workload.INT, workload.SortParams{
		BufLen: 2048, Window: 16, BodyOps: 2, Iters: 2,
	})
	_, st := runBench(t, b, config.Baseline())
	if st.StoreBufHits == 0 {
		t.Error("no store-buffer forwarding on a read-after-write kernel")
	}
}

func TestUnifiedStoreBufferSharedCapacity(t *testing.T) {
	b := chaseBench(2048, 2)
	mk := func(entries int) config.Config {
		cfg := mtvpOracleCfg(4)
		cfg.VP.SharedStoreBuf = true
		cfg.VP.SharedStoreBufEntries = entries
		return cfg
	}
	engTiny, tiny := runBench(t, b, mk(4))
	engBig, big := runBench(t, b, mk(512))
	if !engTiny.Halted() || !engBig.Halted() {
		t.Fatal("did not halt")
	}
	if engTiny.sharedStoreUsed != 0 || engBig.sharedStoreUsed != 0 {
		t.Errorf("shared store pool not empty after drain: %d, %d",
			engTiny.sharedStoreUsed, engBig.sharedStoreUsed)
	}
	if big.UsefulIPC() <= tiny.UsefulIPC() {
		t.Errorf("512-entry unified buffer IPC %.4f <= 4-entry %.4f",
			big.UsefulIPC(), tiny.UsefulIPC())
	}
}

func TestMultiValueSpawnsAndSaves(t *testing.T) {
	// Bimodal table values: the primary prediction is often wrong but the
	// alternate carries the right value.
	b := workload.Gather("pl-mv", workload.FP, workload.GatherParams{
		Items: 8192, TableLen: 1 << 16, PoolSize: 2,
		DominantPct: 55, ReusePct: 45, FPData: true, BodyOps: 30, Iters: 3,
	})
	cfg := config.Baseline().WithMTVP(8, config.PredWangFranklin, config.SelL3Oracle)
	cfg.VP.MultiValue = true
	cfg.VP.MaxValuesPerLoad = 3
	cfg.VP.LiberalThreshold = 4
	eng, st := runBench(t, b, cfg)
	if !eng.Halted() {
		t.Fatal("did not halt")
	}
	if st.MultiValueSaves == 0 {
		t.Error("no multi-value saves on a bimodal workload")
	}
}
