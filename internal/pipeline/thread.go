package pipeline

import (
	"mtvp/internal/crit"
	"mtvp/internal/isa"
	"mtvp/internal/oracle"
	"mtvp/internal/storebuf"
	"mtvp/internal/vpred"
)

// storeEntry tracks one store's occupancy in a thread's store buffer for
// timing-level forwarding and capacity stalls.
type storeEntry struct {
	addr uint64
	size int
	u    *uop // nil once the store has committed (data definitely ready)
}

// vpEvent is one followed (or measured) value prediction: the load, the mode
// chosen, the spawned children if any, and the measurement window ILP-pred
// consumes. Events resolve when the load's real value returns from memory.
type vpEvent struct {
	pc         uint64
	mode       crit.Decision
	load       *uop
	predicted  uint64
	actual     uint64
	correct    bool
	spawnOnly  bool
	alternates []vpred.Candidate // alternate confident values at predict time
	children   []*thread         // spawned threads (MTVP), primary first

	childVals []uint64 // value each child is following, parallel to children

	resolved      bool
	startCycle    int64
	startProgress uint64 // net useful commits at prediction time (ILP-pred window)
	measureOnly   bool   // DecideNone calibration window: nothing speculated
}

// thread is one hardware context.
type thread struct {
	id   int // hardware context slot
	live bool

	ctx     *isa.Context
	overlay *storebuf.Overlay

	parent *thread
	spawn  *vpEvent // event that created this thread (nil for the root)
	order  int64    // global speculation order; larger = younger

	// Reorder buffer: this thread's uops in fetch order. head indexes the
	// oldest un-committed entry; the slice is compacted periodically.
	rob     []*uop
	robHead int

	// Front end. fetchBuf is consumed from fbHead (a head index instead of
	// re-slicing keeps dispatch allocation-free; the consumed prefix is
	// compacted away periodically).
	fetchBuf     []*uop // fetched, not yet dispatched; live from fbHead
	fbHead       int
	fetchBlocked int64 // no fetch until this cycle
	blockedOn    *uop   // mispredicted branch gating fetch (nil = time gate)
	stallFetch   bool   // SFP: stalled after spawning, until resolution
	retiring     bool   // confirmed-away parent draining its final commits
	icount       int    // uops in front end + queues (ICOUNT fetch policy)
	// pipeWarm models the paper's single-fetch-path handoff: the spawn
	// happens at the rename stage, so the front end's already-fetched
	// post-load instructions are delivered to the child with no bubble.
	// While pipeWarm > 0, fetched uops dispatch without front-end delay.
	pipeWarm int
	// dispatchHold delays the child's first dispatch by the spawn latency
	// (the rename-map copy / copy-on-write setup of §5.2).
	dispatchHold int64

	// Per-architectural-register last writer, for dependence tracking.
	// Generation-checked refs: a stale entry names a recycled uop that
	// committed or was squashed in a previous lifetime, which dependence
	// tracking always skipped anyway.
	lastWriter [isa.NumRegs]uopRef

	// Return-address stack for predicting JR targets. Per-context state,
	// copied on spawn like the register map.
	ras   [rasDepth]int64
	rasSP int

	// Store buffer (timing view).
	storeQ []storeEntry

	// Value prediction bookkeeping.
	pendingSpawn   *vpEvent // this thread's unresolved MTVP spawn (max one)
	unverifiedSTVP int      // in-flight single-thread predictions
	confirmEvent   *vpEvent // confirmed spawn whose surviving child replaces this thread after drain
	promoted       bool     // has become non-speculative (store buffer drains at commit)
	haltCommitted  bool     // committed a HALT while still speculative

	committed uint64 // instructions committed since spawn (squashable)
	killed    bool   // destroyed on a misprediction (its commits were discounted)

	// checkBuf holds this thread's committed instructions that the
	// lockstep checker cannot verify yet (the thread is speculative or an
	// older thread is still draining). Flushed when the thread becomes the
	// oldest promoted thread, inherited by the heir at retirement, dropped
	// on kill. Nil unless cfg.Check is set.
	checkBuf []oracle.Record
}

// isSpec reports whether the thread's existence still depends on an
// unresolved value prediction somewhere in its ancestry.
func (t *thread) isSpec() bool {
	for cur := t; cur != nil; cur = cur.parent {
		if cur.spawn != nil && !cur.spawn.resolved {
			return true
		}
	}
	return false
}

// fetchBufLen returns the number of unconsumed fetch-buffer entries.
func (t *thread) fetchBufLen() int { return len(t.fetchBuf) - t.fbHead }

// robEmpty reports whether every fetched uop has committed or been squashed.
func (t *thread) robEmpty() bool {
	return t.robHead >= len(t.rob) && t.fetchBufLen() == 0
}

// robOccupied returns the number of live, uncommitted uops.
func (t *thread) robOccupied() int { return len(t.rob) - t.robHead }

// storeQFull reports whether the thread's store buffer is at capacity.
func (t *thread) storeQFull(capacity int) bool {
	return capacity > 0 && len(t.storeQ) >= capacity
}

// forwardSource finds the newest store visible to a load on this thread's
// speculation chain that overlaps [addr, addr+size). It searches the
// thread's own in-flight stores (newest first), then its store buffer, then
// ancestors — exactly the paper's "store buffer must be searched by every
// load" rule extended over the thread list.
func (t *thread) forwardSource(loadSeq uint64, addr uint64, size int) (*uop, bool) {
	for cur := t; cur != nil; cur = cur.parent {
		// In-flight stores, newest first, older than the load.
		for i := len(cur.rob) - 1; i >= cur.robHead; i-- {
			s := cur.rob[i]
			if s.seq >= loadSeq || !s.dec.IsStore || s.state == stSquashed {
				continue
			}
			if overlaps(s.ex.Addr, s.dec.MemSize, addr, size) {
				return s, true
			}
		}
		// Buffered committed stores, newest first.
		for i := len(cur.storeQ) - 1; i >= 0; i-- {
			se := cur.storeQ[i]
			if se.u != nil && se.u.seq >= loadSeq {
				continue
			}
			if overlaps(se.addr, se.size, addr, size) {
				return se.u, true
			}
		}
	}
	return nil, false
}

// rasDepth is the return-address stack depth.
const rasDepth = 16

// rasPush records a call's return address.
func (t *thread) rasPush(ret int64) {
	t.ras[t.rasSP%rasDepth] = ret
	t.rasSP++
}

// rasPop predicts a return target; an empty stack predicts -1 (always
// wrong, charging the mispredict penalty).
func (t *thread) rasPop() int64 {
	if t.rasSP == 0 {
		return -1
	}
	t.rasSP--
	return t.ras[t.rasSP%rasDepth]
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}
