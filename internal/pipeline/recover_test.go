package pipeline

import (
	"errors"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/fault"
)

// recoveryCfg arms a fault profile on a checked machine with an impatient
// watchdog, so recovery-controller paths trigger within test-sized runs.
func recoveryCfg(cfg config.Config, profile string, seed uint64) config.Config {
	cfg = checkedCfg(cfg)
	cfg.MaxInsts = 40_000
	cfg.Faults.Profile = profile
	cfg.Faults.Seed = seed
	cfg.Recovery.WatchdogCycles = 2_000
	return cfg
}

// requireRecoveredOrReport enforces the robustness contract on a run's
// error: nil (recovered oracle-clean — the checker was armed) or a
// structured *fault.Report. Anything else, most importantly an oracle
// divergence, fails the test.
func requireRecoveredOrReport(t *testing.T, err error) *fault.Report {
	t.Helper()
	if err == nil {
		return nil
	}
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Fatalf("run failed without a structured fault report: %v", err)
	}
	return rep
}

// TestWatchdogConsecutiveBoundedBreaks wedges issue-queue slots hard enough
// (stuck-iq-storm: 1.5% of dispatches stick for 80k cycles) that the
// watchdog must intervene at least twice in a row, and requires each
// intervention to be a bounded, counted break — never a hang, never a wrong
// committed value.
func TestWatchdogConsecutiveBoundedBreaks(t *testing.T) {
	cfg := recoveryCfg(config.Baseline(), "stuck-iq-storm", 11)
	prog, image := checkerBench("stuck-chase").Build(5)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := requireRecoveredOrReport(t, eng.Run())
	if st.FaultIQStick == 0 {
		t.Fatal("profile injected no IQStick faults; the test exercised nothing")
	}
	if st.DeadlockBreaks < 2 {
		t.Fatalf("DeadlockBreaks = %d, want >= 2 consecutive watchdog breaks", st.DeadlockBreaks)
	}
	if st.RecoveryUnsticks == 0 {
		t.Fatalf("watchdog broke %d times without unsticking any queue slot", st.DeadlockBreaks)
	}
	if rep != nil && rep.Breaks != st.DeadlockBreaks {
		t.Fatalf("report counted %d breaks, stats counted %d", rep.Breaks, st.DeadlockBreaks)
	}
}

// TestWatchdogBackoffEscalates drives the backoff state machine the way the
// watchdog does and checks that patience doubles per spent break up to the
// cap, and that the budget is hard-bounded.
func TestWatchdogBackoffEscalates(t *testing.T) {
	b := fault.NewBackoff(3, 8)
	wantMult := []int64{2, 4, 8}
	for i, want := range wantMult {
		if !b.Allow() {
			t.Fatalf("break %d denied with budget remaining", i)
		}
		if got := b.Multiplier(); got != want {
			t.Fatalf("after break %d multiplier = %d, want %d", i, got, want)
		}
	}
	if b.Allow() {
		t.Fatal("break allowed after the budget was exhausted")
	}
	b.Progress()
	if !b.Allow() {
		t.Fatal("sustained progress did not refill the break budget")
	}
	if got := b.Multiplier(); got != 2 {
		t.Fatalf("multiplier after refill+break = %d, want 2 (reset then doubled)", got)
	}
}

// TestDegradationLadderEngages exhausts a one-break budget under the
// issue-queue storm on an MTVP machine and requires the second recovery
// layer — stepping contexts down the speculation ladder — to engage rather
// than aborting immediately.
func TestDegradationLadderEngages(t *testing.T) {
	cfg := recoveryCfg(mtvpOracleCfg(4), "stuck-iq-storm", 3)
	cfg.Recovery.DeadlockBudget = 1
	cfg.Recovery.CooldownCommits = 5_000
	prog, image := checkerBench("degrade-chase").Build(9)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := requireRecoveredOrReport(t, eng.Run())
	if st.Degradations == 0 {
		t.Fatalf("budget of 1 exhausted (breaks=%d, report=%v) but no context degraded",
			st.DeadlockBreaks, rep)
	}
	for slot, l := range eng.rec.ladders {
		if l.Level() == fault.LevelFull && rep != nil {
			t.Fatalf("aborted with slot %d still at %s: abort must come after full degradation",
				slot, l.Level())
		}
	}
}

// TestDegradationDisabledAbortsStructured turns the degradation layer off:
// once the bounded break budget is spent the engine must abort with a
// structured fault report (not hang, not return a bare error).
func TestDegradationDisabledAbortsStructured(t *testing.T) {
	cfg := recoveryCfg(mtvpOracleCfg(4), "stuck-iq-storm", 3)
	cfg.Recovery.DeadlockBudget = 1
	cfg.Recovery.DegradeOff = true
	prog, image := checkerBench("abort-chase").Build(9)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	rep := requireRecoveredOrReport(t, eng.Run())
	if rep == nil {
		t.Skip("run recovered within budget under this seed; abort path not reachable")
	}
	if st.Degradations != 0 {
		t.Fatalf("DegradeOff machine degraded %d times", st.Degradations)
	}
	if rep.Reason == "" || rep.Injected == nil {
		t.Fatalf("fault report incomplete: %+v", rep)
	}
}

// TestQuarantineEngagesUnderPredictorChaos floods the value predictor with
// bit flips (pred-chaos: 40% of confident predictions corrupted) on an
// always-follow MTVP machine and requires the per-context misprediction
// storm detector to clamp or disable prediction, suppressing later follows.
// The oracle checker is armed throughout: the flipped values must never
// reach architectural state.
func TestQuarantineEngagesUnderPredictorChaos(t *testing.T) {
	cfg := recoveryCfg(
		config.Baseline().WithMTVP(4, config.PredWangFranklin, config.SelAlways),
		"pred-chaos", 17)
	prog, image := checkerBench("chaos-chase").Build(5)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	requireRecoveredOrReport(t, eng.Run())
	if st.FaultPredBitFlip == 0 {
		t.Fatal("pred-chaos injected nothing")
	}
	if st.QuarantineClamps == 0 && st.QuarantineDisables == 0 {
		t.Fatalf("misprediction storm (flips=%d wrong=%d) never tripped quarantine",
			st.FaultPredBitFlip, st.VPWrong)
	}
	if st.QuarantineSuppressed == 0 {
		t.Fatal("quarantine engaged but suppressed no follows")
	}
}

// TestQuarantineOffKnob checks the escape hatch: with quarantine disabled
// the same storm must not clamp anything (and the run must still satisfy
// the recover-or-report contract).
func TestQuarantineOffKnob(t *testing.T) {
	cfg := recoveryCfg(
		config.Baseline().WithMTVP(4, config.PredWangFranklin, config.SelAlways),
		"pred-chaos", 17)
	cfg.Recovery.QuarantineOff = true
	prog, image := checkerBench("chaos-chase").Build(5)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	requireRecoveredOrReport(t, eng.Run())
	if st.QuarantineClamps+st.QuarantineDisables+st.QuarantineSuppressed != 0 {
		t.Fatalf("QuarantineOff machine still quarantined: clamp=%d disable=%d supp=%d",
			st.QuarantineClamps, st.QuarantineDisables, st.QuarantineSuppressed)
	}
}

// TestEffectiveModeLadderCap pins the mode arithmetic the degradation path
// depends on: each ladder rung caps the configured mode, and restoration
// lifts the cap again.
func TestEffectiveModeLadderCap(t *testing.T) {
	cfg := mtvpOracleCfg(2)
	cfg.Recovery.CooldownCommits = 10
	prog, image := checkerBench("cap-chase").Build(1)
	eng, err := New(&cfg, prog, image, newStats())
	if err != nil {
		t.Fatal(err)
	}
	l := eng.rec.ladders[0]
	if got := eng.effectiveMode(0); got != config.VPMTVP {
		t.Fatalf("fresh slot effective mode = %v, want MTVP", got)
	}
	l.Degrade()
	if got := eng.effectiveMode(0); got != config.VPSTVP {
		t.Fatalf("after one rung effective mode = %v, want STVP", got)
	}
	l.Degrade()
	if got := eng.effectiveMode(0); got != config.VPNone {
		t.Fatalf("after two rungs effective mode = %v, want None", got)
	}
	for i := 0; i < 2; i++ {
		for !l.Progress(1) {
		}
	}
	if got := eng.effectiveMode(0); got != config.VPMTVP {
		t.Fatalf("after full cooldown effective mode = %v, want MTVP restored", got)
	}
}
