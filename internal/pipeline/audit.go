package pipeline

import (
	"fmt"

	"mtvp/internal/isa"
	"mtvp/internal/storebuf"
)

// The invariant auditor is the structural half of the correctness net (the
// lockstep oracle in check.go is the architectural half). It is enabled by
// cfg.Check — the same knob the test suite and the -check CLI flag use — so
// normal performance runs pay nothing. Cheap site assertions (commit from a
// dead thread, speculative store drain, rename-map state at spawn and kill)
// run at every occurrence; the full machine scan runs every auditInterval
// cycles. The first violation aborts the run with a description.

// auditInterval is the cycle stride of the full invariant scan. Site
// assertions are not rate-limited.
const auditInterval = 64

// auditFail records the first invariant violation.
func (e *Engine) auditFail(format string, args ...interface{}) {
	if e.auditErr == nil {
		e.auditErr = fmt.Errorf("pipeline: invariant violation at cycle %d: %s",
			e.now, fmt.Sprintf(format, args...))
	}
}

// auditCycle is called once per simulated cycle when auditing is enabled.
func (e *Engine) auditCycle() error {
	if e.auditErr == nil && e.now%auditInterval == 0 {
		e.auditScan()
	}
	return e.auditErr
}

// auditCommit checks per-commit invariants: only live, never-killed threads
// may commit, and a thread's commit stream is strictly age-ordered.
func (e *Engine) auditCommit(t *thread, u *uop) {
	if t.killed || !t.live {
		e.auditFail("T%d/%d committed seq %d (pc %d) after being killed/freed",
			t.id, t.order, u.seq, u.ex.PC)
	}
	if u.thread != t {
		e.auditFail("T%d/%d committed seq %d belonging to T%d",
			t.id, t.order, u.seq, u.thread.id)
	}
}

// auditStoreDrain guards the store-buffer containment invariant at the two
// drain sites: a store may reach the cache hierarchy only from a thread
// whose entire ancestry is non-speculative.
func (e *Engine) auditStoreDrain(t *thread, addr uint64) {
	if !t.promoted || t.isSpec() {
		e.auditFail("speculative T%d/%d drained store addr %#x to the cache (promoted=%v spec=%v)",
			t.id, t.order, addr, t.promoted, t.isSpec())
	}
}

// auditSpawn checks rename-map consistency at spawn: the child's last-writer
// table must be the parent's flash copy with exactly the load destination
// rewritten (to nil for a followed prediction — the value is architecturally
// in the child's forked register file — or to the load itself in spawn-only
// mode, where dependents wait for the real value).
func (e *Engine) auditSpawn(parent, child *thread, rd isa.Reg, loadU *uop, spawnOnly bool) {
	for r := 0; r < isa.NumRegs; r++ {
		want := parent.lastWriter[r]
		if isa.Reg(r) == rd {
			want = uopRef{}
			if spawnOnly {
				want = ref(loadU)
			}
		}
		if child.lastWriter[r] != want {
			e.auditFail("spawned T%d/%d rename map reg %d inconsistent with parent T%d/%d",
				child.id, child.order, r, parent.id, parent.order)
			return
		}
	}
	if child.parent != parent {
		e.auditFail("spawned T%d/%d does not point at parent T%d/%d",
			child.id, child.order, parent.id, parent.order)
	}
}

// auditKill checks rename-map consistency after a thread kill: no surviving
// thread outside the dying subtree may still name one of its uops as a
// register's last writer (the dependence graph would dangle into squashed
// state). Threads that descend from the killed thread are skipped — they
// are killed next within the same killSubtree walk.
func (e *Engine) auditKill(t *thread) {
	for _, o := range e.liveByOrder() {
		if o == t || descendsFrom(o, t) {
			continue
		}
		for r := 0; r < isa.NumRegs; r++ {
			if w := o.lastWriter[r].get(); w != nil && w.thread == t {
				e.auditFail("surviving T%d/%d rename map reg %d names uop seq %d of killed T%d/%d",
					o.id, o.order, r, w.seq, t.id, t.order)
				return
			}
		}
	}
}

// auditScan is the full structural walk: ROB age ordering, shared resource
// counter reconciliation, rename-map liveness, per-thread ICOUNT, overlay
// isolation, and speculative/promoted exclusion.
func (e *Engine) auditScan() {
	var robN, renameN, storeN int
	var qN [numQueues]int
	overlays := make(map[*storebuf.Overlay]*thread)

	for _, t := range e.liveByOrder() {
		if t.killed {
			e.auditFail("T%d/%d is live but marked killed", t.id, t.order)
			return
		}
		if t.promoted && t.isSpec() {
			e.auditFail("T%d/%d is promoted while still speculative", t.id, t.order)
			return
		}
		if t.overlay.Frozen() {
			e.auditFail("T%d/%d executes against a frozen overlay", t.id, t.order)
			return
		}
		if err := t.overlay.CheckChain(); err != nil {
			e.auditFail("T%d/%d overlay chain corrupt: %v", t.id, t.order, err)
			return
		}
		if prev, dup := overlays[t.overlay]; dup {
			e.auditFail("T%d/%d and T%d/%d share a store-buffer overlay",
				t.id, t.order, prev.id, prev.order)
			return
		}
		overlays[t.overlay] = t

		// ROB age ordering: fetch sequence strictly increases front to
		// back (squashed entries keep their place and their seq).
		for i := 1; i < len(t.rob); i++ {
			if t.rob[i].seq <= t.rob[i-1].seq {
				e.auditFail("T%d/%d ROB age order broken at index %d: seq %d after %d",
					t.id, t.order, i, t.rob[i].seq, t.rob[i-1].seq)
				return
			}
		}

		// Rename map must not dangle into killed threads.
		for r := 0; r < isa.NumRegs; r++ {
			if w := t.lastWriter[r].get(); w != nil && w.thread.killed {
				e.auditFail("T%d/%d rename map reg %d names uop seq %d of killed T%d/%d",
					t.id, t.order, r, w.seq, w.thread.id, w.thread.order)
				return
			}
		}

		// Shared-resource occupancy contributed by this thread.
		icount := 0
		for i := t.robHead; i < len(t.rob); i++ {
			u := t.rob[i]
			switch u.state {
			case stWaiting:
				robN++
				qN[u.queue]++
				icount++
				if u.usesRename {
					renameN++
				}
			case stIssued, stDone:
				robN++
				if u.usesRename {
					renameN++
				}
			}
		}
		for _, u := range t.fetchBuf[t.fbHead:] {
			if u.state == stFetched {
				icount++
			}
		}
		if icount != t.icount {
			e.auditFail("T%d/%d icount %d, recount %d", t.id, t.order, t.icount, icount)
			return
		}
		storeN += len(t.storeQ)
	}

	if robN != e.robUsed {
		e.auditFail("ROB occupancy %d, recount %d", e.robUsed, robN)
		return
	}
	if renameN != e.renameUsed {
		e.auditFail("rename register occupancy %d, recount %d", e.renameUsed, renameN)
		return
	}
	for q := queueKind(0); q < numQueues; q++ {
		if qN[q] != e.qUsed[q] {
			e.auditFail("queue %d occupancy %d, recount %d", q, e.qUsed[q], qN[q])
			return
		}
	}
	if e.cfg.VP.SharedStoreBuf && storeN != e.sharedStoreUsed {
		e.auditFail("shared store buffer occupancy %d, recount %d", e.sharedStoreUsed, storeN)
	}
}
