package pipeline

import (
	"fmt"

	"mtvp/internal/config"
	"mtvp/internal/fault"
	"mtvp/internal/trace"
)

// The recovery controller generalises the PR 1 deadlock watchdog into a
// layered response to lost commit progress:
//
//  1. Bounded squash-and-retry. Each watchdog firing spends one unit of a
//     refillable break budget and doubles the watchdog's patience
//     (exponential backoff), then tries the cheapest repair first: clearing
//     stuck issue-queue slots, else killing the youngest speculative
//     subtree. Sustained commit progress refills the budget.
//  2. Graceful degradation. When the budget is exhausted and the machine is
//     still stuck, every hardware context steps down the speculation ladder
//     (MTVP -> STVP -> non-speculative), all speculative state is flushed,
//     and the budget is reset for the degraded machine. A cool-down of clean
//     commits earns the levels back.
//  3. Structured abort. A machine that cannot commit even with speculation
//     fully disabled returns a *fault.Report instead of hanging — the
//     campaign contract is "recover oracle-clean or abort structured".
//
// Orthogonally, a per-context misprediction-storm quarantine watches
// resolved predictions and first clamps (higher confidence bar), then fully
// disables, a context's use of the value predictor, rehabilitating it as the
// storm passes.
type recovery struct {
	backoff *fault.Backoff
	ladders []*fault.Ladder     // per hardware context slot
	quars   []*fault.Quarantine // per hardware context slot; nil when off

	watchdogBase      int64  // cycles without commits before intervening
	clampConf         int    // confidence bar under QClamped
	commitsSinceBreak uint64 // refills the break budget at progressRefill
	degradeOff        bool
}

// progressRefill is the number of useful commits since the last watchdog
// intervention after which the break budget refills: a machine making real
// progress gets its full allowance back for the next incident.
const progressRefill = 10_000

func newRecovery(cfg *config.Config, clampConf int) *recovery {
	base := cfg.Recovery.WatchdogCycles
	if base == 0 {
		base = int64(4*cfg.MemLatency) + 50_000
	}
	r := &recovery{
		backoff:      fault.NewBackoff(cfg.Recovery.DeadlockBudget, 8),
		ladders:      make([]*fault.Ladder, cfg.Contexts),
		watchdogBase: base,
		clampConf:    clampConf,
		degradeOff:   cfg.Recovery.DegradeOff,
	}
	for i := range r.ladders {
		r.ladders[i] = fault.NewLadder(cfg.Recovery.CooldownCommits)
	}
	if !cfg.Recovery.QuarantineOff {
		r.quars = make([]*fault.Quarantine, cfg.Contexts)
		for i := range r.quars {
			r.quars[i] = fault.NewQuarantine()
		}
	}
	return r
}

// emitSlot sends a context-slot-level recovery event to the tracer. Slot -1
// marks events with no specific context (e.g. a global injection site).
func (e *Engine) emitSlot(k trace.Kind, slot int, text string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(trace.Event{
		Cycle:  e.now,
		Kind:   k,
		Thread: slot,
		Order:  -1,
		PC:     -1,
		Text:   text,
	})
}

// injectFault rolls one injection opportunity for fault class k, doing the
// stats and trace bookkeeping on a hit. All injection sites go through here.
func (e *Engine) injectFault(k fault.Kind) bool {
	if !e.inj.Fire(k) {
		return false
	}
	e.st.FaultsInjected++
	switch k {
	case fault.PredBitFlip:
		e.st.FaultPredBitFlip++
	case fault.PredAlias:
		e.st.FaultPredAlias++
	case fault.StoreDrop:
		e.st.FaultStoreDrop++
	case fault.StoreCorrupt:
		e.st.FaultStoreCorrupt++
	case fault.SpawnLost:
		e.st.FaultSpawnLost++
	case fault.SpawnDup:
		e.st.FaultSpawnDup++
	case fault.MemDelay:
		e.st.FaultMemDelay++
	case fault.IQStick:
		e.st.FaultIQStick++
	}
	if e.tracer != nil {
		e.emitSlot(trace.KFault, -1, "injected "+k.String())
	}
	return true
}

// effectiveMode caps the configured VP mode by the context slot's current
// degradation level.
func (e *Engine) effectiveMode(slot int) config.VPMode {
	mode := e.cfg.VP.Mode
	switch e.rec.ladders[slot].Level() {
	case fault.LevelSTVP:
		if mode > config.VPSTVP {
			mode = config.VPSTVP
		}
	case fault.LevelNone:
		mode = config.VPNone
	}
	return mode
}

// quarantineFor returns the misprediction-storm detector of t's context
// slot, or nil when quarantine is disabled.
func (e *Engine) quarantineFor(t *thread) *fault.Quarantine {
	if e.rec.quars == nil {
		return nil
	}
	return e.rec.quars[t.id]
}

// noteOutcome feeds one resolved, followed prediction to the quarantine of
// the predicting thread's context slot.
func (e *Engine) noteOutcome(t *thread, correct bool) {
	q := e.quarantineFor(t)
	if q == nil {
		return
	}
	if correct {
		if q.OnCorrect() && e.tracer != nil {
			e.emitSlot(trace.KQuarantine, t.id, "relaxed to "+q.State().String())
		}
		return
	}
	if q.OnWrong() {
		switch q.State() {
		case fault.QClamped:
			e.st.QuarantineClamps++
		case fault.QDisabled:
			e.st.QuarantineDisables++
		}
		if e.tracer != nil {
			e.emitSlot(trace.KQuarantine, t.id, "escalated to "+q.State().String())
		}
	}
}

// noteCommitProgress is called once per useful commit: it refills the break
// budget after sustained progress, decays the quarantines, and walks every
// degraded context slot back up the speculation ladder after its cool-down.
func (e *Engine) noteCommitProgress() {
	r := e.rec
	r.commitsSinceBreak++
	if r.commitsSinceBreak == progressRefill {
		r.backoff.Progress()
	}
	for slot, l := range r.ladders {
		if l.Progress(1) {
			e.st.Restorations++
			if e.tracer != nil {
				e.emitSlot(trace.KRestore, slot, "speculation restored to "+l.Level().String())
			}
		}
		if r.quars != nil {
			if q := r.quars[slot]; q.Tick() && e.tracer != nil {
				e.emitSlot(trace.KQuarantine, slot, "decayed to "+q.State().String())
			}
		}
	}
}

// recoverStall is the watchdog's response to lost commit progress. It
// returns false only when every recovery layer is exhausted — the caller
// then aborts with a structured fault report.
func (e *Engine) recoverStall() bool {
	e.rec.commitsSinceBreak = 0
	if e.rec.backoff.Allow() {
		if e.unstickQueues() {
			e.st.DeadlockBreaks++
			e.lastProgress = e.now
			return true
		}
		if e.breakDeadlock() {
			e.st.DeadlockBreaks++
			return true
		}
		// Budget allowed a break but there was nothing to unstick and no
		// speculation to kill; retrying cannot help, so escalate.
	}
	if !e.rec.degradeOff && e.degradeAll() {
		return true
	}
	return false
}

// unstickQueues clears every issue-queue slot wedged by an injected IQStick
// fault, the cheapest recovery action: the instructions become schedulable
// again without squashing any work.
func (e *Engine) unstickQueues() bool {
	n := 0
	for q := queueKind(0); q < numQueues; q++ {
		for _, s := range e.waiting[q] {
			if e.soaState[s] == stWaiting && e.soaStuck[s] > e.now {
				e.setStuckUntil(e.slotUops[s], 0)
				n++
			}
		}
	}
	if n == 0 {
		return false
	}
	// Event edge: the unstuck uops may issue next cycle.
	e.wake(e.now + 1)
	e.st.RecoveryUnsticks += uint64(n)
	if e.tracer != nil {
		e.emitSlot(trace.KRecover, -1, fmt.Sprintf("force-cleared %d stuck issue-queue slots", n))
	}
	return true
}

// degradeAll steps every hardware context down the speculation ladder until
// its effective mode actually drops (on an STVP-configured machine the first
// rung is a no-op), flushes all speculative state, and grants the degraded
// machine a fresh break budget. It returns false when there was nothing
// left to give up.
func (e *Engine) degradeAll() bool {
	if e.cfg.VP.Mode == config.VPNone {
		return false
	}
	stepped := false
	for slot, l := range e.rec.ladders {
		before := e.effectiveMode(slot)
		if before == config.VPNone {
			continue
		}
		for l.Degrade() {
			e.st.Degradations++
			if e.effectiveMode(slot) != before {
				break
			}
		}
		stepped = true
		if e.tracer != nil {
			e.emitSlot(trace.KDegrade, slot, "speculation degraded to "+l.Level().String())
		}
	}
	if !stepped {
		return false
	}
	// The degraded machine must restart from a clean, non-speculative
	// state: clear wedged queue slots, kill all speculation, and refill
	// the break budget.
	e.unstickQueues()
	e.killAllSpec()
	e.rec.backoff.Reset()
	e.lastProgress = e.now
	return true
}

// killAllSpec kills every live speculative subtree, oldest first.
func (e *Engine) killAllSpec() {
	for {
		var victim *thread
		for _, t := range e.liveByOrder() {
			if t.live && t.isSpec() {
				victim = t
				break
			}
		}
		if victim == nil {
			return
		}
		e.killSubtree(victim)
	}
}

// faultReport builds the structured abort record for an unrecoverable run.
func (e *Engine) faultReport(reason string) error {
	return &fault.Report{
		Reason:       reason,
		Cycle:        e.now,
		Committed:    e.st.Committed,
		Injected:     e.inj.Counts(),
		Breaks:       e.st.DeadlockBreaks,
		Degradations: e.st.Degradations,
	}
}
