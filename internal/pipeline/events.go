package pipeline

import "fmt"

// The event-driven engine core. PR 5's fast-forward proved the machine can
// predict its own wake edges with a per-cycle quiescence scan (nextWake);
// this file inverts that loop: every stage enqueues its own next activation
// into a calendar — completions, store-buffer window flushes, dispatch
// delays, fetch unblocks, spawn holds, squash/kill edges — and the engine
// advances directly to the earliest scheduled event instead of rescanning
// every queue on every idle cycle.
//
// Soundness rests on one asymmetry: a SPURIOUS wake (the calendar names a
// cycle where nothing happens) is harmless, because an executed inert cycle
// is observationally identical to a skipped one — every stage no-ops, fetch
// counts exactly one FetchBlocked cycle either way, and the telemetry probe
// closes the same sample buckets with the same frozen snapshot. A LOST
// wakeup (the calendar sleeps past a cycle where a stage could act) would
// change simulated behaviour, so every mutation that can make a stage
// actionable wakes the calendar, conservatively over-approximating the
// polling scan clause for clause (the catalog lives in DESIGN.md §17). The
// A/B equivalence suite pins event and polling runs bit-identical, and
// FuzzEventSchedule cross-checks the calendar against nextWake on every
// jump.
//
// eqWindow is the calendar horizon in cycles. Every enqueue is clamped to
// at most eqWindow cycles ahead, which buys two properties at the price of
// an occasional spurious "horizon hop" (a wake that just re-arms a farther
// edge): the dedup ring covers every entry, so the heap can never hold more
// than eqWindow distinct cycles regardless of how often a far edge is
// re-announced, and the backing arrays reach a fixed point quickly — zero
// steady-state allocations (test-enforced).
const eqWindow = 1 << 12

// eventQueue is a monotone cycle-keyed calendar: a hand-rolled binary
// min-heap of bare int64 cycles (no per-event payload — the wake cycle
// re-runs the normal stage loop, which rediscovers whatever work is due)
// fronted by a mark ring that drops duplicate enqueues of the same cycle in
// O(1). Cycles only move forward, so a fired mark can never falsely match a
// later enqueue: slot aliases differ in the full cycle value the ring
// stores.
type eventQueue struct {
	heap []int64
	mark [eqWindow]int64 // mark[c&(eqWindow-1)] == c ⇒ c already enqueued

	// Instrumentation (telemetry gauges, tests, benchmarks).
	enqueued uint64 // entries accepted into the heap
	deduped  uint64 // enqueues dropped by the mark ring
	fired    uint64 // entries popped at or before their cycle
}

// add schedules a wake at cycle c (clamped into (now, now+eqWindow]).
// Duplicate adds of the same cycle are dropped in O(1).
func (q *eventQueue) add(c, now int64) {
	if c > now+eqWindow {
		// Beyond the horizon: arm a hop at the horizon instead. The hop
		// cycle is inert (harmless), and wakeStandingEdges re-announces
		// every far-capable edge on each executed cycle until it is
		// inside the horizon.
		c = now + eqWindow
	}
	s := c & (eqWindow - 1)
	if q.mark[s] == c {
		q.deduped++
		return
	}
	q.mark[s] = c
	q.enqueued++
	q.heap = append(q.heap, c)
	// Sift up (container/heap's algorithm, monomorphized on int64).
	j := len(q.heap) - 1
	for j > 0 {
		i := (j - 1) / 2
		if q.heap[i] <= q.heap[j] {
			break
		}
		q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
		j = i
	}
}

// drain pops every entry at or before now. Fired entries need no handling:
// the cycle that just executed performed whatever work they announced.
func (q *eventQueue) drain(now int64) {
	for len(q.heap) > 0 && q.heap[0] <= now {
		q.popTop()
		q.fired++
	}
}

// popTop removes the minimum entry (sift-down, container/heap order).
func (q *eventQueue) popTop() int64 {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && q.heap[j2] < q.heap[j] {
			j = j2
		}
		if q.heap[i] <= q.heap[j] {
			break
		}
		q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
		i = j
	}
	return top
}

// depth reports the number of pending calendar entries.
func (q *eventQueue) depth() int { return len(q.heap) }

// wake schedules the calendar for cycle c (clamped to the future). Nil-safe
// in polling mode so the stage code can announce edges unconditionally.
func (e *Engine) wake(c int64) {
	if e.evq == nil {
		return
	}
	if c <= e.now {
		c = e.now + 1
	}
	e.evq.add(c, e.now)
}

// wakeStandingEdges re-announces, at the end of every executed cycle, the
// edges that can outlive the calendar horizon or that are cheaper to
// rediscover than to track through every mutation. This is the other half
// of the horizon-clamp contract in add(): a far edge's clamped hop is only
// sound because the edge's owner re-announces it on each executed cycle
// until it is inside the horizon. The standing edges, mirroring nextWake
// clause for clause:
//
//   - per-thread front-end edges: a fetch-eligible thread (or one gated
//     only by a known fetchBlocked cycle, which mem-jitter faults can push
//     past the horizon), and a squashed fetch-buffer head awaiting its free
//     consumption by dispatch (the polling scan treats that head as
//     activity even under a spawn hold, so the event engine chains through
//     the same cycles rather than sleeping past them);
//   - stuck issue-queue slots: fault-injected stuckUntil cycles reach 120k
//     cycles out, dwarfing the horizon;
//   - the earliest pending completion, which memory-jitter faults can
//     delay past the horizon;
//   - pending store-buffer windows: their minimum-flush edge can be past
//     due while the window waits on another condition, and the polling
//     scan refuses to jump in that state, so the event engine must keep
//     waking cycle by cycle to match it.
//
// Cost is O(live threads + waiting uops + pending windows) per executed
// cycle — cache-linear over the SoA mirrors — and the dedup ring absorbs
// the repeats. Idle (skipped) cycles pay nothing; that is the point.
func (e *Engine) wakeStandingEdges() {
	q := e.evq
	for _, t := range e.ordered {
		if t.fetchBufLen() > 0 && t.fetchBuf[t.fbHead].state == stSquashed {
			q.add(e.now+1, e.now)
		}
		if t.retiring || t.stallFetch || t.blockedOn != nil || t.ctx.Halted ||
			t.fetchBufLen() >= e.fbufCap {
			continue
		}
		if t.fetchBlocked > e.now {
			q.add(t.fetchBlocked, e.now)
		} else {
			q.add(e.now+1, e.now)
		}
	}
	for k := queueKind(0); k < numQueues; k++ {
		for _, s := range e.waiting[k] {
			if e.soaState[s] == stWaiting && e.soaStuck[s] > e.now {
				q.add(e.soaStuck[s], e.now)
			}
		}
	}
	if len(e.completions.items) > 0 {
		if c := e.completions.items[0].cycle; c > e.now {
			q.add(c, e.now)
		} else {
			q.add(e.now+1, e.now)
		}
	}
	for _, ev := range e.pendingWindows {
		if c := ev.startCycle + windowMinCycles; c > e.now {
			q.add(c, e.now)
		} else {
			q.add(e.now+1, e.now)
		}
	}
}

// eventForward is the calendar counterpart of fastForward: it retires the
// cycle's fired entries and jumps `now` to the cycle before the earliest
// pending event, bounded by the same computed edges the polling scan uses
// (the commit-progress watchdog, the Observe poll, the audit stride, the
// cycle budget). The skipped range is provably inert — every actionable
// cycle has a calendar entry, by the wake-edge catalog — so its only
// effects are replayed exactly as fastForward replays them: one
// FetchBlocked count per skipped cycle and the telemetry sampler's
// idle-range bucket closes.
func (e *Engine) eventForward() {
	q := e.evq
	q.drain(e.now)
	if e.noFF {
		// A/B leg: keep the calendar bounded (drained above) but execute
		// every cycle, exactly like polling with fast-forward off. The
		// standing-edge refresh is jump bookkeeping, so it is skipped too.
		return
	}
	if len(q.heap) > 0 && q.heap[0] == e.now+1 && !e.evqCheck {
		// Something is already scheduled next cycle, so no jump is
		// possible and the standing-edge refresh can wait: far edges only
		// need to be current when a jump target is computed, and the next
		// executed cycle re-evaluates from scratch. This is the busy-phase
		// fast path — the polling scan's early exit, in calendar form.
		return
	}
	e.wakeStandingEdges()
	// The watchdog edge always exists and bounds the jump.
	wake := e.lastProgress + e.rec.watchdogBase*e.rec.backoff.Multiplier() + 1
	if len(q.heap) > 0 && q.heap[0] < wake {
		wake = q.heap[0]
	}
	if e.cfg.Observe != nil {
		if p := (e.now | observeMask) + 1; p < wake {
			wake = p
		}
	}
	if e.auditOn {
		if a := e.now + auditInterval - e.now%auditInterval; a < wake {
			wake = a
		}
	}
	if e.evqCheck {
		e.crossCheckWake(wake)
	}
	target := wake - 1
	// Never skip past the cycle-budget boundary: the per-cycle machine
	// still executes cycle MaxCycles before stopping.
	if mc := e.cfg.MaxCycles; mc <= uint64(1)<<62 && target > int64(mc)-1 {
		target = int64(mc) - 1
	}
	if target <= e.now {
		return
	}
	if e.tel != nil {
		e.telemetrySkip(e.now+1, target)
	}
	skipped := uint64(target - e.now)
	e.st.FetchBlocked += skipped
	e.ffSkipped += skipped
	e.now = target
}

// crossCheckWake validates a calendar-proposed wake cycle against the
// polling quiescence scan (enabled by tests and FuzzEventSchedule; never in
// production runs). A lost wakeup — the calendar sleeping past a cycle
// where a stage could act — is the one bug class that would silently change
// simulated behaviour, so it panics loudly instead.
func (e *Engine) crossCheckWake(wake int64) {
	scan, quiet := e.nextWake()
	if !quiet {
		if wake > e.now+1 {
			panic(fmt.Sprintf("pipeline: lost wakeup at cycle %d: a stage can act at cycle %d but the earliest event is %d",
				e.now, e.now+1, wake))
		}
		return
	}
	if wake > scan {
		panic(fmt.Sprintf("pipeline: lost wakeup at cycle %d: polling scan wakes at %d but the earliest event is %d",
			e.now, scan, wake))
	}
}
