package pipeline

import (
	"errors"
	"strings"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/oracle"
	"mtvp/internal/workload"
)

func checkerBench(name string) workload.Benchmark {
	return workload.PointerChase(name, workload.INT, workload.ChaseParams{
		Nodes: 256, NodeBytes: 64, PoolSize: 8, DominantPct: 85, ReusePct: 5, Iters: 3,
	})
}

func checkedCfg(cfg config.Config) config.Config {
	cfg.Check = true
	cfg.MaxInsts = 50_000_000
	cfg.MaxCycles = 200_000_000
	return cfg
}

// TestCheckerDetectsInjectedWrongValue corrupts one committed destination
// value through the test commit hook (which runs before the checker sees the
// record) and requires the lockstep oracle to flag exactly that commit — the
// ISSUE's fault-injection acceptance criterion.
func TestCheckerDetectsInjectedWrongValue(t *testing.T) {
	cfg := checkedCfg(config.Baseline())
	prog, image := checkerBench("fault-chase").Build(3)
	eng, err := New(&cfg, prog, image, newStats())
	if err != nil {
		t.Fatal(err)
	}

	var commits int
	var corruptedSeq uint64
	eng.commitHook = func(u *uop) {
		commits++
		if corruptedSeq == 0 && commits >= 100 && u.hasDest {
			u.ex.Value ^= 0xdeadbeef
			corruptedSeq = u.seq
		}
	}

	err = eng.Run()
	if corruptedSeq == 0 {
		t.Fatal("fault never injected: no destination-writing commit after #100")
	}
	var d *oracle.Divergence
	if !errors.As(err, &d) {
		t.Fatalf("corrupted commit not detected: err = %v", err)
	}
	if d.Rec.Seq != corruptedSeq {
		t.Fatalf("divergence flagged seq %d, corrupted seq %d", d.Rec.Seq, corruptedSeq)
	}
	if !strings.Contains(d.Error(), "oracle divergence") ||
		!strings.Contains(d.Error(), "recent commits by hardware context") {
		t.Fatalf("divergence report missing expected sections:\n%s", d.Error())
	}
}

// TestCheckerDetectsInjectedWrongValueMTVP injects the fault on the
// multithreaded machine, into a commit of the oldest promoted thread so the
// corrupted instruction is guaranteed useful (a speculative thread's commit
// could be killed and legitimately never verified).
func TestCheckerDetectsInjectedWrongValueMTVP(t *testing.T) {
	cfg := checkedCfg(mtvpOracleCfg(8))
	prog, image := checkerBench("fault-chase-mtvp").Build(3)
	eng, err := New(&cfg, prog, image, newStats())
	if err != nil {
		t.Fatal(err)
	}

	var commits int
	var corruptedSeq uint64
	eng.commitHook = func(u *uop) {
		commits++
		if corruptedSeq == 0 && commits >= 500 && u.hasDest && u.thread.promoted {
			u.ex.Value ^= 0x5a5a5a5a
			corruptedSeq = u.seq
		}
	}

	err = eng.Run()
	if corruptedSeq == 0 {
		t.Fatal("fault never injected")
	}
	var d *oracle.Divergence
	if !errors.As(err, &d) {
		t.Fatalf("corrupted commit not detected: err = %v", err)
	}
	if d.Rec.Seq != corruptedSeq {
		t.Fatalf("divergence flagged seq %d, corrupted seq %d", d.Rec.Seq, corruptedSeq)
	}
}

// TestCheckedMTVPRunClean runs the limit-study MTVP machine under full
// checking and requires a clean halt with every useful commit verified.
func TestCheckedMTVPRunClean(t *testing.T) {
	cfg := checkedCfg(mtvpOracleCfg(8))
	prog, image := checkerBench("clean-chase").Build(7)
	st := newStats()
	eng, err := New(&cfg, prog, image, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("checked run diverged: %v", err)
	}
	if !eng.Halted() {
		t.Fatalf("did not halt: committed=%d cycles=%d", st.Committed, eng.Now())
	}
	eng.Finalize()
	if err := eng.FinalCheck(); err != nil {
		t.Fatalf("final state check failed: %v", err)
	}
	if got := eng.CheckedCommits(); got != st.Committed {
		t.Fatalf("verified %d commits, engine counted %d useful", got, st.Committed)
	}
	if eng.CheckedCommits() == 0 {
		t.Fatal("checker verified nothing")
	}
}

// newAuditEngine builds a checked engine without running it, for white-box
// auditor tests.
func newAuditEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := checkedCfg(config.Baseline())
	prog, image := checkerBench("audit-chase").Build(1)
	eng, err := New(&cfg, prog, image, newStats())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAuditorDetectsCounterDrift(t *testing.T) {
	eng := newAuditEngine(t)
	eng.robUsed = 7 // no uop in flight accounts for these entries
	eng.auditScan()
	if eng.auditErr == nil || !strings.Contains(eng.auditErr.Error(), "ROB occupancy") {
		t.Fatalf("ROB counter drift not flagged: %v", eng.auditErr)
	}
}

func TestAuditorDetectsROBAgeOrder(t *testing.T) {
	eng := newAuditEngine(t)
	root := eng.liveByOrder()[0]
	// Squashed entries keep their place and their seq, so two out-of-order
	// squashed uops corrupt age order without touching occupancy counters.
	root.rob = append(root.rob,
		&uop{seq: 5, thread: root, state: stSquashed},
		&uop{seq: 3, thread: root, state: stSquashed})
	eng.auditScan()
	if eng.auditErr == nil || !strings.Contains(eng.auditErr.Error(), "age order") {
		t.Fatalf("ROB age-order violation not flagged: %v", eng.auditErr)
	}
}

func TestAuditorDetectsDeadThreadCommit(t *testing.T) {
	eng := newAuditEngine(t)
	dead := &thread{id: 1, order: 9, killed: true}
	u := &uop{seq: 42, thread: dead}
	eng.auditCommit(dead, u)
	if eng.auditErr == nil || !strings.Contains(eng.auditErr.Error(), "killed") {
		t.Fatalf("commit from killed thread not flagged: %v", eng.auditErr)
	}
}

func TestAuditorDetectsSpeculativeStoreDrain(t *testing.T) {
	eng := newAuditEngine(t)
	parent := eng.liveByOrder()[0]
	spec := &thread{id: 1, order: 9, live: true, parent: parent, spawn: &vpEvent{}}
	eng.auditStoreDrain(spec, 0x1000)
	if eng.auditErr == nil || !strings.Contains(eng.auditErr.Error(), "speculative") {
		t.Fatalf("speculative store drain not flagged: %v", eng.auditErr)
	}
}
