package pipeline

import (
	"mtvp/internal/crit"
	"mtvp/internal/fault"
	"mtvp/internal/trace"
)

// dispatch renames and inserts fetched uops into the issue queues and the
// ROB, oldest thread first, until the cycle's bandwidth or a shared resource
// (ROB entries, rename registers, queue slots, store-buffer entries) runs
// out. Instructions become dispatchable FrontEndDepth cycles after fetch,
// modelling the deep front end of the 30-stage pipe.
func (e *Engine) dispatch() {
	budget := e.cfg.CommitWidth
	for _, t := range e.liveByOrder() {
		if t.dispatchHold > e.now {
			continue
		}
		for budget > 0 && t.fetchBufLen() > 0 {
			u := t.fetchBuf[t.fbHead]
			if u.state == stSquashed {
				t.fetchBuf[t.fbHead] = nil
				t.fbHead++
				continue
			}
			if u.fetchCycle+int64(e.cfg.FrontEndDepth) > e.now {
				break
			}
			if !e.tryDispatch(t, u) {
				break
			}
			t.fetchBuf[t.fbHead] = nil
			t.fbHead++
			budget--
		}
	}
}

// tryDispatch allocates resources and dependence links for u. It returns
// false when a structural resource is exhausted (the thread stalls).
func (e *Engine) tryDispatch(t *thread, u *uop) bool {
	if e.robUsed >= e.cfg.ROBSize {
		return false
	}
	if e.qUsed[u.queue] >= e.qCap[u.queue] {
		return false
	}
	u.usesRename = u.hasDest
	if u.usesRename && e.renameUsed >= e.cfg.RenameRegs {
		return false
	}
	isStore := u.dec.IsStore
	if isStore && e.storeBufFull(t) {
		return false
	}

	// Register dependences. The last-writer table may point at producers
	// in ancestor threads (state copied at spawn). A stale ref names a
	// recycled uop that committed or was squashed in a past lifetime, which
	// the pre-pool code skipped by state check.
	for _, r := range u.dec.Srcs() {
		w := t.lastWriter[r].get()
		if w == nil || w.state == stCommitted || w.state == stSquashed {
			continue
		}
		u.prods = append(u.prods, ref(w))
		w.consumers = append(w.consumers, ref(u))
	}

	// Loads: find a forwarding store on the speculation chain, if any.
	if u.dec.IsLoad {
		if src, ok := t.forwardSource(u.seq, u.ex.Addr, u.dec.MemSize); ok {
			u.fwdStore = true
			if src != nil && src.state != stCommitted && src.state != stSquashed {
				u.fwdFrom = ref(src)
				src.consumers = append(src.consumers, ref(u))
			}
		}
	}

	if u.hasDest {
		t.lastWriter[u.ex.Inst.Rd] = ref(u)
	}
	if isStore {
		if e.injectFault(fault.StoreDrop) {
			// Timing-level store-buffer entry lost: no forwarding to
			// younger loads and no drain traffic. Functional state is
			// untouched — the store's value already lives in the
			// thread's overlay — so only timing suffers.
		} else {
			se := storeEntry{
				addr: u.ex.Addr,
				size: u.dec.MemSize,
				u:    u,
			}
			if e.injectFault(fault.StoreCorrupt) {
				// Corrupted address tag: forwarding matches and drain
				// traffic hit the wrong line. Again timing-only — load
				// values come from the functional layer.
				se.addr ^= 1 + e.inj.Rand64()&63
			}
			t.storeQ = append(t.storeQ, se)
			e.noteStoreAlloc()
		}
	}

	// A followed single-thread prediction makes the load's destination
	// speculatively available to consumers immediately.
	if u.vp != nil && u.vp.mode == crit.DecideSTVP {
		u.specReady = true
	}

	if e.injectFault(fault.IQStick) {
		// Wedged issue-queue slot: the uop refuses to issue until the
		// stick elapses or the recovery controller force-clears it.
		e.setStuckUntil(u, e.now+int64(e.inj.Profile().StickCycles))
		e.wake(u.stuckUntil)
	}

	e.setUopState(u, stWaiting)
	u.dispatchCycle = e.now
	e.robUsed++
	e.qUsed[u.queue]++
	if u.usesRename {
		e.renameUsed++
	}
	e.waiting[u.queue] = append(e.waiting[u.queue], u.slot)
	// Event edge: the dispatched uop (or a consumer its STVP specReady just
	// unblocked) may issue next cycle, and the thread's next head may
	// dispatch.
	e.wake(e.now + 1)
	e.emit(trace.KDispatch, u)
	return true
}
