package bpred

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/mem"
)

func params() config.BranchParams {
	return config.BranchParams{
		MetaEntries:    64 << 10,
		GshareEntries:  64 << 10,
		BimodalEntries: 16 << 10,
		HistBits:       14,
	}
}

// accuracy trains the predictor on a sequence and returns the fraction of
// correct predictions over the second half (after warmup).
func accuracy(p Predictor, seq []struct {
	pc    uint64
	taken bool
}) float64 {
	correct, total := 0, 0
	for i, s := range seq {
		pred := p.Predict(s.pc)
		p.Update(s.pc, s.taken)
		if i >= len(seq)/2 {
			total++
			if pred == s.taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestAlwaysTakenLoop(t *testing.T) {
	p := New2bcgskew(params())
	var seq []struct {
		pc    uint64
		taken bool
	}
	for i := 0; i < 2000; i++ {
		seq = append(seq, struct {
			pc    uint64
			taken bool
		}{0x40, true})
	}
	if acc := accuracy(p, seq); acc < 0.99 {
		t.Errorf("always-taken accuracy %.3f", acc)
	}
}

func TestLoopExitPattern(t *testing.T) {
	// Taken 7 times, not-taken once, repeating: history-based components
	// should learn the exit.
	p := New2bcgskew(params())
	var seq []struct {
		pc    uint64
		taken bool
	}
	for i := 0; i < 8000; i++ {
		seq = append(seq, struct {
			pc    uint64
			taken bool
		}{0x80, i%8 != 7})
	}
	if acc := accuracy(p, seq); acc < 0.95 {
		t.Errorf("loop-exit accuracy %.3f, want >= 0.95", acc)
	}
}

func TestAlternatingPattern(t *testing.T) {
	p := New2bcgskew(params())
	var seq []struct {
		pc    uint64
		taken bool
	}
	for i := 0; i < 4000; i++ {
		seq = append(seq, struct {
			pc    uint64
			taken bool
		}{0xC0, i%2 == 0})
	}
	if acc := accuracy(p, seq); acc < 0.97 {
		t.Errorf("alternating accuracy %.3f", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New2bcgskew(params())
	r := mem.NewRand(5)
	var seq []struct {
		pc    uint64
		taken bool
	}
	for i := 0; i < 8000; i++ {
		seq = append(seq, struct {
			pc    uint64
			taken bool
		}{0x100, r.Intn(2) == 0})
	}
	acc := accuracy(p, seq)
	if acc < 0.40 || acc > 0.62 {
		t.Errorf("random-branch accuracy %.3f, expected near 0.5", acc)
	}
}

func TestBiasedBranches(t *testing.T) {
	p := New2bcgskew(params())
	r := mem.NewRand(9)
	var seq []struct {
		pc    uint64
		taken bool
	}
	for i := 0; i < 8000; i++ {
		seq = append(seq, struct {
			pc    uint64
			taken bool
		}{0x140, r.Intn(100) < 90})
	}
	if acc := accuracy(p, seq); acc < 0.85 {
		t.Errorf("90%%-biased accuracy %.3f", acc)
	}
}

func TestManyBranchesNoCatastrophicAliasing(t *testing.T) {
	// Hundreds of strongly biased branches at distinct PCs: the skewed
	// banks should keep them apart.
	p := New2bcgskew(params())
	var seq []struct {
		pc    uint64
		taken bool
	}
	for round := 0; round < 40; round++ {
		for b := 0; b < 400; b++ {
			pc := uint64(0x1000 + b*4)
			seq = append(seq, struct {
				pc    uint64
				taken bool
			}{pc, b%2 == 0}) // bias direction by PC
		}
	}
	if acc := accuracy(p, seq); acc < 0.97 {
		t.Errorf("multi-branch accuracy %.3f", acc)
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Errorf("counter did not saturate at 3: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Errorf("counter did not saturate at 0: %d", c)
	}
}

func TestStaticPredictor(t *testing.T) {
	s := &Static{Taken: true}
	if !s.Predict(0x1234) {
		t.Error("static taken predictor predicted not-taken")
	}
	s.Update(0x1234, false) // must not panic or change anything
	if !s.Predict(0x1234) {
		t.Error("static predictor changed state on update")
	}
}
