// Package bpred implements the 2bcgskew branch predictor of Table 1: a
// 16K-entry bimodal table, two 64K-entry gskew banks indexed by skewed
// hashes of the PC and global history, and a 64K-entry meta table that
// chooses between the bimodal prediction and the e-gskew majority vote.
package bpred

import "mtvp/internal/config"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the branch's actual direction and
	// advances the global history.
	Update(pc uint64, taken bool)
}

// counter is a 2-bit saturating counter; taken when >= 2.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// TwoBcgskew is the 2bcgskew predictor.
type TwoBcgskew struct {
	bim  []counter
	g0   []counter
	g1   []counter
	meta []counter
	hist uint64
	mask uint64
}

// New2bcgskew builds the predictor from the Table 1 sizing.
func New2bcgskew(p config.BranchParams) *TwoBcgskew {
	init := func(n int) []counter {
		t := make([]counter, n)
		for i := range t {
			t[i] = 2 // weakly taken
		}
		return t
	}
	return &TwoBcgskew{
		bim:  init(p.BimodalEntries),
		g0:   init(p.GshareEntries),
		g1:   init(p.GshareEntries),
		meta: init(p.MetaEntries),
		mask: (1 << uint(p.HistBits)) - 1,
	}
}

// The three skewing functions decorrelate aliasing across the banks.
func (b *TwoBcgskew) idxBim(pc uint64) uint64 {
	return pc % uint64(len(b.bim))
}

func (b *TwoBcgskew) idxG0(pc uint64) uint64 {
	h := b.hist & b.mask
	return (pc ^ h ^ (pc >> 7)) % uint64(len(b.g0))
}

func (b *TwoBcgskew) idxG1(pc uint64) uint64 {
	h := b.hist & b.mask
	return (pc ^ (h << 3) ^ (pc >> 13) ^ (h >> 5)) % uint64(len(b.g1))
}

func (b *TwoBcgskew) idxMeta(pc uint64) uint64 {
	h := b.hist & b.mask
	return (pc ^ (h << 1)) % uint64(len(b.meta))
}

func (b *TwoBcgskew) vote(pc uint64) (bim, skew, meta bool) {
	bimC := b.bim[b.idxBim(pc)]
	g0C := b.g0[b.idxG0(pc)]
	g1C := b.g1[b.idxG1(pc)]
	bim = bimC.taken()
	n := 0
	if bim {
		n++
	}
	if g0C.taken() {
		n++
	}
	if g1C.taken() {
		n++
	}
	skew = n >= 2
	meta = b.meta[b.idxMeta(pc)].taken()
	return
}

// Predict implements Predictor.
func (b *TwoBcgskew) Predict(pc uint64) bool {
	bim, skew, meta := b.vote(pc)
	if meta {
		return skew
	}
	return bim
}

// Update implements Predictor. It uses 2bcgskew's partial-update policy:
// on a correct prediction only agreeing banks are strengthened; on a
// misprediction every bank is trained toward the outcome, and the meta
// chooser moves toward whichever of bimodal/e-gskew was right.
func (b *TwoBcgskew) Update(pc uint64, taken bool) {
	bim, skew, meta := b.vote(pc)
	pred := bim
	if meta {
		pred = skew
	}
	ib, i0, i1, im := b.idxBim(pc), b.idxG0(pc), b.idxG1(pc), b.idxMeta(pc)

	if bim != skew {
		// The components disagree: train the chooser toward the one
		// that was correct.
		b.meta[im] = b.meta[im].train(skew == taken)
	}
	if pred == taken {
		// Partial update: strengthen only the banks that agreed.
		if bim == taken {
			b.bim[ib] = b.bim[ib].train(taken)
		}
		if b.g0[i0].taken() == taken {
			b.g0[i0] = b.g0[i0].train(taken)
		}
		if b.g1[i1].taken() == taken {
			b.g1[i1] = b.g1[i1].train(taken)
		}
	} else {
		b.bim[ib] = b.bim[ib].train(taken)
		b.g0[i0] = b.g0[i0].train(taken)
		b.g1[i1] = b.g1[i1].train(taken)
	}
	b.hist = (b.hist << 1) | boolBit(taken)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Static is a trivial always-taken predictor used in tests and as a
// baseline ablation.
type Static struct{ Taken bool }

// Predict returns the static direction.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Update is a no-op.
func (s *Static) Update(uint64, bool) {}

var (
	_ Predictor = (*TwoBcgskew)(nil)
	_ Predictor = (*Static)(nil)
)
