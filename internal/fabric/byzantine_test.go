package fabric

// Byzantine-defense tests: attestation rejection, fleet trust quarantine,
// verify-k quorums, spot checks, tiebreaks, admission control — unit level
// with a fake clock, then end-to-end with real workers, a hostile agent,
// and a seeded lossy network.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtvp/internal/fabric/chaos"
	"mtvp/internal/telemetry"
)

// A result whose digest does not verify is rejected before the journal,
// requeues its cell without spending retry budget, and escalates the
// worker's fleet trust: clamped after one corrupt result, quarantined
// (disabled) after two. A quarantined worker gets no leases, is never
// pruned from the fleet view, and an honest worker completes the cell.
func TestCorruptResultsQuarantineWorkerWithoutBudget(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 1, Registry: reg})
	sub, _ := co.Submit(testSpec("byz", 1))
	id, key := sub.ID, "byz/cell-00"

	corrupt := func() ResultResponse {
		req := signedOK(co, "evil", id, key, `{"v":1}`)
		req.Result = json.RawMessage(`{"EVIL":true}`) // payload != attested payload
		resp, err := co.Result(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two corrupt results through two fresh leases. Retries=1, so if the
	// rejections charged the budget the cell would be failed by now.
	for i, wantTrust := range []string{"clamped", "disabled"} {
		if _, ok := co.Lease("evil"); !ok {
			t.Fatalf("round %d: lease refused", i)
		}
		if resp := corrupt(); resp.Accepted {
			t.Fatalf("round %d: corrupt result must be rejected", i)
		}
		if trust := co.Fleet()[0].Trust; trust != wantTrust {
			t.Fatalf("round %d: trust = %q, want %q", i, trust, wantTrust)
		}
	}
	st, _ := co.Status(id)
	if st.Corrupt != 2 || st.Failed != 0 || st.Queued != 1 || st.Requeues != 2 {
		t.Fatalf("corrupt results must requeue without budget: %+v", st)
	}

	// Quarantined: no more leases, and even a validly-signed result is
	// worthless.
	if _, ok := co.Lease("evil"); ok {
		t.Fatal("a quarantined worker must get no leases")
	}
	if resp, _ := co.Result(signedOK(co, "evil", id, key, `{"v":1}`)); resp.Accepted {
		t.Fatal("a quarantined worker's results must be rejected")
	}

	// An honest worker finishes the cell; the corrupt payload never made it
	// anywhere near the results.
	co.Lease("good")
	if resp, _ := co.Result(signedOK(co, "good", id, key, `{"v":1}`)); !resp.Accepted {
		t.Fatal("honest result must be accepted")
	}
	res, _ := co.Results(id)
	if string(res.Results[key]) != `{"v":1}` || res.State != StateComplete {
		t.Fatalf("honest result must win: %+v", res)
	}

	// The fleet view and metrics expose the quarantine.
	var b strings.Builder
	reg.WritePrometheus(&b)
	for _, want := range []string{
		"mtvp_fabric_results_corrupt_total 2",
		"mtvp_fabric_quarantines_total 1",
		"mtvp_fabric_workers_quarantined 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// A disabled worker's per-worker gauges come off the /metrics surface
	// (the aggregate quarantined gauge keeps counting it); they return only
	// if its trust decays back below disabled.
	for _, gone := range []string{
		`mtvp_fleet_trust{worker="evil"}`,
		`mtvp_fleet_corrupt_results_total{worker="evil"}`,
	} {
		if strings.Contains(b.String(), gone) {
			t.Errorf("metrics still expose %q after quarantine", gone)
		}
	}

	// Pruning skips quarantined workers: their record is the point.
	clk.advance(500 * time.Second)
	co.ExpireLeases()
	fleet := co.Fleet()
	if len(fleet) != 1 || fleet[0].Name != "evil" || fleet[0].Trust != "disabled" {
		t.Fatalf("quarantined worker must survive pruning (honest idle one goes): %+v", fleet)
	}
}

// A clamped (suspect) worker's solo result is not trusted: its valid vote
// raises the cell's bar to two agreeing votes, and a healthy worker's
// corroboration completes it.
func TestClampedWorkerNeedsCorroboration(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 3})
	sub, _ := co.Submit(testSpec("suspect", 1))
	id, key := sub.ID, "suspect/cell-00"

	// One corrupt result clamps w1.
	co.Lease("w1")
	bad := signedOK(co, "w1", id, key, `{"v":7}`)
	bad.Digest = "sha256:bogus"
	co.Result(bad)
	if trust := co.Fleet()[0].Trust; trust != "clamped" {
		t.Fatalf("one corrupt result must clamp: %q", trust)
	}

	// Its valid result is accepted as a vote but does not complete the cell.
	co.Lease("w1")
	if resp, _ := co.Result(signedOK(co, "w1", id, key, `{"v":7}`)); !resp.Accepted {
		t.Fatal("clamped worker's valid vote must be accepted")
	}
	st, _ := co.Status(id)
	if st.Done != 0 || st.Queued != 1 {
		t.Fatalf("suspect's solo vote must not complete the cell: %+v", st)
	}
	// The suspect cannot corroborate itself.
	if _, ok := co.Lease("w1"); ok {
		t.Fatal("a worker must never lease a cell it already voted on")
	}
	co.Lease("w2")
	if resp, _ := co.Result(signedOK(co, "w2", id, key, `{"v":7}`)); !resp.Accepted {
		t.Fatal("corroborating vote must be accepted")
	}
	st, _ = co.Status(id)
	if st.Done != 1 || st.State != StateComplete {
		t.Fatalf("two agreeing votes must complete: %+v", st)
	}
}

// -verify 2: every cell needs two distinct workers' agreeing digests.
func TestVerifyQuorumRequiresTwoVotes(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{Verify: 2})
	sub, _ := co.Submit(testSpec("vk", 2))
	id := sub.ID

	// w1 runs and votes both cells; neither completes on its word alone.
	for i := 0; i < 2; i++ {
		lease, ok := co.Lease("w1")
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		if resp, _ := co.Result(signedOK(co, "w1", id, lease.Spec.Key, `{"ok":1}`)); !resp.Accepted {
			t.Fatal("first vote must be accepted")
		}
	}
	st, _ := co.Status(id)
	if st.Done != 0 || st.Queued != 2 {
		t.Fatalf("one vote of two must not complete cells: %+v", st)
	}
	if _, ok := co.Lease("w1"); ok {
		t.Fatal("a worker must not vote twice on one cell")
	}

	// w2 corroborates both; the campaign completes and both workers are
	// credited.
	for i := 0; i < 2; i++ {
		lease, ok := co.Lease("w2")
		if !ok {
			t.Fatalf("corroborating lease %d refused", i)
		}
		co.Result(signedOK(co, "w2", id, lease.Spec.Key, `{"ok":1}`))
	}
	st, _ = co.Status(id)
	if st.Done != 2 || st.State != StateComplete {
		t.Fatalf("quorum reached must complete: %+v", st)
	}
	for _, w := range co.Fleet() {
		if w.Done != 2 {
			t.Fatalf("both voters must be credited: %+v", w)
		}
	}
}

// Disagreeing verification votes widen the electorate (spending budget);
// when the budget runs out with no majority, the cell fails as no-quorum.
func TestVerifyDisagreementWidensThenFailsNoQuorum(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{Verify: 2, Retries: 1})
	sub, _ := co.Submit(testSpec("split", 1))
	id, key := sub.ID, "split/cell-00"

	// Three workers, three different answers.
	for i, payload := range []string{`{"v":1}`, `{"v":2}`, `{"v":3}`} {
		w := fmt.Sprintf("w%d", i+1)
		if _, ok := co.Lease(w); !ok {
			t.Fatalf("%s: lease refused (electorate should have widened)", w)
		}
		if resp, _ := co.Result(signedOK(co, w, id, key, payload)); !resp.Accepted {
			t.Fatalf("%s: valid vote must be accepted", w)
		}
	}
	st, _ := co.Status(id)
	if st.State != StateFailed || st.Failed != 1 {
		t.Fatalf("unresolvable disagreement must fail the cell: %+v", st)
	}
	res, _ := co.Results(id)
	if len(res.Failures) != 1 || res.Failures[0].Kind != FailNoQuorum {
		t.Fatalf("failure must be classified no-quorum: %+v", res.Failures)
	}
}

// With a LocalRun tiebreaker, a split vote is settled by the coordinator's
// own re-execution: the matching voter wins, the other is outvoted and
// struck.
func TestVerifyTiebreakLocalRun(t *testing.T) {
	ran := make(chan string, 1)
	co := newTestCoordinator(t, nil, CoordinatorConfig{
		Verify: 2,
		LocalRun: func(_ context.Context, spec JobSpec, _ func(uint64, uint64)) (json.RawMessage, error) {
			ran <- spec.Key
			return json.RawMessage(`{"v":1}`), nil
		},
	})
	sub, _ := co.Submit(testSpec("tie", 1))
	id, key := sub.ID, "tie/cell-00"

	co.Lease("honest")
	co.Result(signedOK(co, "honest", id, key, `{"v":1}`))
	co.Lease("liar")
	co.Result(signedOK(co, "liar", id, key, `{"v":999}`))

	select {
	case k := <-ran:
		if k != key {
			t.Fatalf("tiebreak ran wrong cell %q", k)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tiebreak never ran")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := co.Status(id)
		if st.Done == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tiebreak never settled the cell: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, _ := co.Results(id)
	if string(res.Results[key]) != `{"v":1}` {
		t.Fatalf("tiebreak must pick the matching vote: %s", res.Results[key])
	}
	for _, w := range co.Fleet() {
		switch w.Name {
		case "honest":
			if w.Done != 1 || w.Outvoted != 0 {
				t.Fatalf("honest voter must be credited: %+v", w)
			}
		case "liar":
			if w.Outvoted != 1 || w.Trust != "clamped" {
				t.Fatalf("outvoted liar must be struck: %+v", w)
			}
		}
	}
}

// The seeded spot-checker escalates a completed cell to a second,
// confirming vote even with verification off.
func TestSpotCheckEscalatesToSecondVote(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{SpotCheckPPM: 1_000_000})
	sub, _ := co.Submit(testSpec("spot", 1))
	id, key := sub.ID, "spot/cell-00"

	co.Lease("w1")
	if resp, _ := co.Result(signedOK(co, "w1", id, key, `{"v":5}`)); !resp.Accepted {
		t.Fatal("audited vote must still be accepted")
	}
	st, _ := co.Status(id)
	if st.Done != 0 || st.SpotChecks != 1 || st.Queued != 1 {
		t.Fatalf("spot check must re-queue the cell for a confirming vote: %+v", st)
	}
	co.Lease("w2")
	co.Result(signedOK(co, "w2", id, key, `{"v":5}`))
	st, _ = co.Status(id)
	if st.Done != 1 || st.State != StateComplete {
		t.Fatalf("confirming vote must complete the audit: %+v", st)
	}
}

// Admission control sheds load over the configured limits with a typed
// OverloadError, but never sheds an idempotent re-submit (attach).
func TestAdmissionLimits(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{MaxQueuedCells: 4})
	if _, err := co.Submit(testSpec("a", 3)); err != nil {
		t.Fatal(err)
	}
	_, err := co.Submit(testSpec("b", 3))
	var over *OverloadError
	if !errors.As(err, &over) || over.RetryAfter <= 0 {
		t.Fatalf("over-limit submit must shed with OverloadError: %v", err)
	}
	if r, err := co.Submit(testSpec("a", 3)); err != nil || !r.Attached {
		t.Fatalf("attach must never be shed: %+v %v", r, err)
	}
	if _, err := co.Submit(testSpec("c", 1)); err != nil {
		t.Fatalf("a submit within the limit must be admitted: %v", err)
	}

	// Per-tenant campaign cap, keyed by campaign name; finishing a campaign
	// frees the slot.
	co2 := newTestCoordinator(t, nil, CoordinatorConfig{MaxCampaignsPerTenant: 1})
	sub, _ := co2.Submit(testSpec("tenant", 1))
	spec2 := testSpec("tenant", 1)
	spec2.Fingerprint = "fp2"
	if _, err := co2.Submit(spec2); !errors.As(err, &over) {
		t.Fatalf("second campaign for one tenant must shed: %v", err)
	}
	if _, err := co2.Submit(testSpec("other", 1)); err != nil {
		t.Fatalf("a different tenant must be admitted: %v", err)
	}
	co2.Lease("w")
	co2.Result(signedOK(co2, "w", sub.ID, "tenant/cell-00", `1`))
	if _, err := co2.Submit(spec2); err != nil {
		t.Fatalf("finished campaign must free the tenant slot: %v", err)
	}
}

// The HTTP layer maps shedding to 429 + Retry-After, and the client
// surfaces it as an OverloadError after honoring the backoff.
func TestServerSheds429WithRetryAfter(t *testing.T) {
	_, srv := startServer(t, CoordinatorConfig{MaxQueuedCells: 1, LeaseTTL: 2 * time.Second},
		ServerConfig{Token: "t"})

	body, _ := json.Marshal(testSpec("shed", 2))
	req, _ := http.NewRequest(http.MethodPost, srv.URL()+PathCampaigns, strings.NewReader(string(body)))
	req.Header.Set("Authorization", "Bearer t")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	// The client retries on the advertised interval; with a short ctx it
	// gives up and returns the typed error.
	cl := NewClient(srv.URL(), "t")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = cl.Submit(ctx, testSpec("shed", 2))
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("client must surface shedding as OverloadError, got %v", err)
	}
}

// Oversized request bodies are cut off with 413, not buffered.
func TestServerRejectsOversizedBody(t *testing.T) {
	_, srv := startServer(t, CoordinatorConfig{}, ServerConfig{MaxBody: 1024})
	big := `{"name":"big","jobs":[` + strings.Repeat(`{"key":"k"},`, 200) + `{"key":"z"}]}`
	resp, err := http.Post(srv.URL()+PathCampaigns, "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d, want 413", resp.StatusCode)
	}
}

// A journaled result whose payload was corrupted at rest fails attestation
// re-verification on reload and its cell re-runs; a pre-attestation record
// (no digest) is tolerated for compatibility.
func TestReloadReverifiesJournaledDigests(t *testing.T) {
	dir := t.TempDir()
	build := func() string {
		co := newTestCoordinator(t, nil, CoordinatorConfig{JournalDir: dir})
		sub, _ := co.Submit(testSpec("rest", 1))
		co.Lease("w1")
		co.Result(signedOK(co, "w1", sub.ID, "rest/cell-00", `{"v":2}`))
		co.Close()
		return sub.ID
	}
	id := build()
	path := filepath.Join(dir, id+".journal")
	journal, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Clean reload resumes the cell as done.
	co := newTestCoordinator(t, nil, CoordinatorConfig{JournalDir: dir})
	if st, _ := co.Status(id); st.Done != 1 {
		t.Fatalf("clean reload must resume: %+v", st)
	}
	co.Close()

	// Tamper with the journaled payload (digest left in place): the record
	// no longer verifies and the cell re-runs.
	tampered := strings.Replace(string(journal), `{"v":2}`, `{"v":9}`, 1)
	if tampered == string(journal) {
		t.Fatal("test bug: payload not found in journal")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	co = newTestCoordinator(t, nil, CoordinatorConfig{JournalDir: dir})
	if st, _ := co.Status(id); st.Done != 0 || st.Queued != 1 {
		t.Fatalf("tampered record must re-run its cell: %+v", st)
	}
	co.Close()

	// Strip the digest entirely (a journal written before attestation):
	// tolerated, the record resumes.
	var rec struct {
		Digest string `json:"digest"`
	}
	var line string
	for _, l := range strings.Split(strings.TrimSpace(tampered), "\n") {
		if strings.Contains(l, `"kind":"cell"`) {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatal("test bug: no cell record in journal")
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	legacy := strings.Replace(string(journal), `,"digest":"`+rec.Digest+`"`, "", 1)
	if legacy == string(journal) {
		t.Fatal("test bug: digest field not found in journal")
	}
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	co = newTestCoordinator(t, nil, CoordinatorConfig{JournalDir: dir})
	if st, _ := co.Status(id); st.Done != 1 {
		t.Fatalf("digest-less legacy record must be tolerated: %+v", st)
	}
	co.Close()
}

// The headline end-to-end proof: a fleet with one always-corrupting
// byzantine worker, talking through a seeded lossy network, still produces
// a byte-identical campaign report; the byzantine worker ends quarantined
// (visible in the fleet view and metrics) and no corrupted result ever
// reaches the journal.
func TestByzantineFleetUnderChaosByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	spec := func(name string) CampaignSpec {
		s := CampaignSpec{Name: name, Fingerprint: "insts=3000 seed=1"}
		for i := 0; i < 10; i++ {
			s.Jobs = append(s.Jobs, JobSpec{
				Key:   fmt.Sprintf("byz/bench-%02d/mtvp4", i),
				Bench: fmt.Sprintf("bench-%02d", i), Preset: "mtvp4", Seed: uint64(i),
			})
		}
		return s
	}

	// Baseline: a clean solo run.
	_, srvClean := startServer(t, CoordinatorConfig{LeaseTTL: time.Second, Retries: 8},
		ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond})
	startWorker(t, srvClean.URL(), "t", "clean", 1, detRun)
	resClean, blobClean := runCampaign(t, srvClean.URL(), "t", spec("byz-run"))
	if resClean.State != StateComplete {
		t.Fatalf("clean run must complete: %+v", resClean)
	}

	// Hostile: journaled coordinator, lossy network, one tampering agent.
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	co, srv := startServer(t,
		CoordinatorConfig{LeaseTTL: time.Second, Retries: 8, Registry: reg, JournalDir: dir},
		ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond})

	lossy, _ := chaos.ByName("lossy")
	proxy, err := chaos.NewProxy("127.0.0.1:0", srv.URL(), lossy, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Two honest workers and a byzantine one, all through the lossy wire.
	// The byzantine agent mangles every payload after attesting it — the
	// exact fault the digest check exists to catch.
	for i := 0; i < 2; i++ {
		startWorker(t, proxy.URL(), "t", fmt.Sprintf("honest-%d", i), 1, detRun)
	}
	byzCtx, byzCancel := context.WithCancel(context.Background())
	defer byzCancel()
	byzDone := make(chan struct{})
	go func() {
		defer close(byzDone)
		RunWorker(byzCtx, WorkerConfig{
			Coordinator: proxy.URL(), Token: "t", Name: "byzantine", Slots: 1,
			Poll: 10 * time.Millisecond, Run: detRun,
			Tamper: func(json.RawMessage) json.RawMessage { return json.RawMessage(`{"EVIL":true}`) },
		})
	}()
	defer func() {
		byzCancel()
		select {
		case <-byzDone:
		case <-time.After(5 * time.Second):
			t.Error("byzantine worker failed to drain")
		}
	}()

	res, blob := runCampaign(t, srv.URL(), "t", spec("byz-run"))
	if res.State != StateComplete {
		t.Fatalf("hostile run must still complete: %+v", res)
	}
	if string(blob) != string(blobClean) {
		t.Errorf("byzantine+chaos report differs from clean report:\n%s\nvs\n%s", blob, blobClean)
	}

	// The byzantine worker ends quarantined, visibly.
	var byz *WorkerStatus
	for _, w := range co.Fleet() {
		if w.Name == "byzantine" {
			w := w
			byz = &w
		}
	}
	if byz == nil || byz.Trust != "disabled" || byz.Corrupt < 2 {
		t.Fatalf("byzantine worker must end quarantined: %+v", byz)
	}
	st, _ := co.Status(CampaignID(spec("byz-run")))
	if st.Corrupt < 2 {
		t.Fatalf("campaign must count the corrupt results: %+v", st)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "mtvp_fabric_workers_quarantined 1") {
		t.Error("metrics missing mtvp_fabric_workers_quarantined 1")
	}
	if strings.Contains(b.String(), `mtvp_fleet_trust{worker="byzantine"}`) {
		t.Error("quarantined worker's per-worker gauges must be unregistered")
	}

	// Not one corrupted payload reached the journal.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "EVIL") {
			t.Fatalf("corrupted payload leaked into journal %s", e.Name())
		}
	}
}

// Under -verify 2 a worker that LIES consistently — valid attestation over
// a wrong result, the fault attestation alone cannot catch — is outvoted
// by the honest majority and loses trust; the report stays byte-identical
// to a clean run.
func TestLyingWorkerOutvotedUnderVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	spec := func(name string) CampaignSpec {
		s := CampaignSpec{Name: name, Fingerprint: "insts=3000 seed=1"}
		for i := 0; i < 6; i++ {
			s.Jobs = append(s.Jobs, JobSpec{
				Key:   fmt.Sprintf("lie/bench-%02d/mtvp4", i),
				Bench: fmt.Sprintf("bench-%02d", i), Preset: "mtvp4", Seed: uint64(i),
			})
		}
		return s
	}

	_, srvClean := startServer(t, CoordinatorConfig{LeaseTTL: time.Second, Retries: 8},
		ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond})
	startWorker(t, srvClean.URL(), "t", "clean", 1, detRun)
	_, blobClean := runCampaign(t, srvClean.URL(), "t", spec("lie-run"))

	co, srv := startServer(t,
		CoordinatorConfig{LeaseTTL: time.Second, Retries: 8, Verify: 2},
		ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond})
	for i := 0; i < 2; i++ {
		startWorker(t, srv.URL(), "t", fmt.Sprintf("honest-%d", i), 1, detRun)
	}
	lie := func(ctx context.Context, spec JobSpec, progress func(uint64, uint64)) (json.RawMessage, error) {
		progress(1, 1)
		return json.RawMessage(fmt.Sprintf(`{"key":%q,"ipc":"LIE"}`, spec.Key)), nil
	}
	startWorker(t, srv.URL(), "t", "liar", 1, lie)

	res, blob := runCampaign(t, srv.URL(), "t", spec("lie-run"))
	if res.State != StateComplete {
		t.Fatalf("verified run must complete: %+v", res)
	}
	if string(blob) != string(blobClean) {
		t.Errorf("lying worker corrupted the verified report:\n%s\nvs\n%s", blob, blobClean)
	}
	for _, w := range co.Fleet() {
		if w.Name == "liar" && (w.Outvoted < 1 || w.Trust == "healthy") {
			t.Errorf("consistently-outvoted liar must lose trust: %+v", w)
		}
	}
}
