package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mtvp/internal/fault"
	"mtvp/internal/harness"
)

// RunFunc executes one leased cell. progress must be called (cheaply, from
// the simulator's observer poll) with the cell's current simulated cycle
// and commit counts; the agent samples it for heartbeats. The returned
// JSON is passed to the coordinator untouched — it must depend only on the
// spec, never on the worker, so reports stay byte-identical across fleets.
type RunFunc func(ctx context.Context, spec JobSpec, progress func(cycles, commits uint64)) (json.RawMessage, error)

// WorkerConfig tunes one worker agent.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:8100").
	Coordinator string
	// Token authenticates against the coordinator.
	Token string
	// Name is the agent's stable self-identification; "" selects host:pid.
	Name string
	// Slots is the number of cells run concurrently (<1 selects GOMAXPROCS).
	Slots int
	// Poll is the idle backoff between lease attempts when the coordinator
	// has nothing queued or is unreachable (0 selects 500ms). Actual sleeps
	// are jittered ±50% from a seeded stream so a fleet of identically
	// configured workers never polls in lockstep.
	Poll time.Duration
	// ReportTimeout bounds each attempt to deliver a finished cell's result
	// (0 selects 10s). Raise it for coordinators behind slow links; lease
	// expiry covers the loss either way.
	ReportTimeout time.Duration
	// JitterSeed seeds the poll/retry jitter streams (0 selects a fixed
	// default); each slot derives its own stream, so a worker's backoff
	// schedule is reproducible from the seed.
	JitterSeed uint64
	// Run executes a cell (required).
	Run RunFunc
	// Tamper, when non-nil, mangles every successful result payload AFTER
	// its attestation digest is computed — a byzantine worker whose payload
	// does not match its own attestation. Test/chaos use only: this is the
	// fault the coordinator's digest verification exists to catch.
	Tamper func(json.RawMessage) json.RawMessage
	// Logf, when non-nil, receives agent progress lines.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) name() string {
	if c.Name != "" {
		return c.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

func (c WorkerConfig) slots() int {
	if c.Slots < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Slots
}

func (c WorkerConfig) poll() time.Duration {
	if c.Poll <= 0 {
		return 500 * time.Millisecond
	}
	return c.Poll
}

func (c WorkerConfig) reportTimeout() time.Duration {
	if c.ReportTimeout <= 0 {
		return 10 * time.Second
	}
	return c.ReportTimeout
}

// errLeaseLost cancels a running cell whose lease the coordinator revoked.
var errLeaseLost = errors.New("fabric: lease lost")

// RunWorker runs the agent loop until ctx is cancelled: every slot pulls a
// lease, runs the cell under a heartbeat stream, and reports the outcome
// with its attestation digest. On shutdown, in-flight cells are cancelled
// and their leases handed back (released) so they requeue immediately
// without spending retry budget. Worker death without the handback is also
// safe — that is what lease expiry is for — the release is just faster.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Run == nil {
		return fmt.Errorf("fabric: worker needs a Run function")
	}
	w := &worker{
		cfg:    cfg,
		name:   cfg.name(),
		client: NewClient(cfg.Coordinator, cfg.Token),
	}
	w.logf("worker %s: %d slot(s), coordinator %s", w.name, cfg.slots(), cfg.Coordinator)
	var wg sync.WaitGroup
	for i := 0; i < cfg.slots(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx, i)
		}()
	}
	wg.Wait()
	w.logf("worker %s: drained", w.name)
	return nil
}

type worker struct {
	cfg    WorkerConfig
	name   string
	client *Client
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// jitter spreads d over [d/2, 3d/2) from the slot's seeded stream.
func jitter(dice *fault.Dice, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(dice.Rand64()%uint64(d))
}

// slotLoop pulls and runs leases until ctx ends. Each slot derives its own
// jitter stream so sleeps are reproducible per (seed, slot) yet decorrelated
// across a fleet.
func (w *worker) slotLoop(ctx context.Context, slot int) {
	dice := fault.NewDice(w.cfg.JitterSeed ^ (uint64(slot+1) * 0x9e3779b97f4a7c15))
	for ctx.Err() == nil {
		var lease Lease
		err := w.client.do(ctx, http.MethodPost, PathLease, LeaseRequest{Worker: w.name}, &lease)
		var over *OverloadError
		switch {
		case errors.Is(err, errNoContent):
			sleepCtx(ctx, jitter(dice, w.cfg.poll())) // nothing queued
			continue
		case errors.As(err, &over):
			// The coordinator is shedding: honor its Retry-After instead of
			// hammering it on the poll period.
			w.logf("worker %s: coordinator overloaded, backing off %s", w.name, over.RetryAfter)
			sleepCtx(ctx, jitter(dice, over.RetryAfter))
			continue
		case err != nil:
			if ctx.Err() == nil {
				w.logf("worker %s: lease: %v (retrying)", w.name, err)
			}
			sleepCtx(ctx, jitter(dice, w.cfg.poll()))
			continue
		}
		w.runLease(ctx, lease, dice)
	}
}

// runLease executes one leased cell under a heartbeat stream.
func (w *worker) runLease(ctx context.Context, lease Lease, dice *fault.Dice) {
	jctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var cycles, commits atomic.Uint64
	progress := func(cy, co uint64) {
		cycles.Store(cy)
		commits.Store(co)
	}

	// Heartbeat stream: extend the lease; a refused heartbeat means the
	// lease is gone (expired and requeued, campaign cancelled) and the
	// cell must be abandoned mid-run. Each heartbeat piggybacks a compact
	// metric snapshot: a monotonic Seq plus the cycle/commit progress
	// accumulated since the last *acknowledged* heartbeat, so the
	// coordinator folds each delta exactly once no matter how the network
	// duplicates or drops requests. Absolute counters ride along for old
	// coordinators.
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		every := lease.HeartbeatEvery
		if every <= 0 {
			every = time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		var seq, ackedCycles, ackedCommits uint64
		for {
			select {
			case <-jctx.Done():
				return
			case <-t.C:
				cy, co := cycles.Load(), commits.Load()
				seq++
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				var resp HeartbeatResponse
				err := w.client.do(jctx, http.MethodPost, PathHeartbeat, HeartbeatRequest{
					Worker: w.name, Campaign: lease.Campaign, Key: lease.Spec.Key,
					Cycles: cy, Commits: co,
					Seq: seq, DCycles: cy - ackedCycles, DCommits: co - ackedCommits,
					HeapMB: float64(ms.HeapAlloc) / (1 << 20),
				}, &resp)
				if err != nil {
					// Network errors are tolerated: the coordinator will expire
					// us if we stay unreachable, which is the designed outcome.
					// The unacked delta stays pending and rides the next beat.
					continue
				}
				if !resp.OK {
					cancel(errLeaseLost)
					return
				}
				ackedCycles, ackedCommits = cy, co
			}
		}
	}()

	started := time.Now()
	result, err := w.runIsolated(jctx, lease.Spec, progress)
	execDur := time.Since(started)
	cancel(nil)
	<-hbDone

	key := lease.Spec.Key
	switch {
	case errors.Is(context.Cause(jctx), errLeaseLost):
		// The coordinator already requeued the cell; anything we produced
		// would be deduped, so only report a success (it is free to accept
		// or dedup) and drop failures silently.
		if err == nil {
			w.report(w.okReport(lease, result, execDur, cycles.Load(), commits.Load()), dice)
		}
	case ctx.Err() != nil && err != nil:
		// Draining shutdown: hand the lease back without burning budget.
		w.report(ResultRequest{Worker: w.name, Campaign: lease.Campaign, Key: key, Released: true}, dice)
		w.logf("worker %s: released %s (draining)", w.name, key)
	case err != nil:
		w.report(ResultRequest{
			Worker: w.name, Campaign: lease.Campaign, Key: key,
			OK: false, Error: err.Error(), FailKind: failKind(err),
		}, dice)
		w.logf("worker %s: %s failed: %v", w.name, key, err)
	default:
		w.report(w.okReport(lease, result, execDur, cycles.Load(), commits.Load()), dice)
	}
}

// okReport builds a successful result report: the attestation digest is
// computed over the exact payload bytes, then the (test-only) tamper hook
// gets its chance to be byzantine. The execution report echoes the lease's
// trace/span identity so the worker-side execution span stitches into the
// coordinator's timeline.
func (w *worker) okReport(lease Lease, result json.RawMessage, dur time.Duration, cycles, commits uint64) ResultRequest {
	digest := ResultDigest(lease.Campaign, lease.Spec, result)
	if w.cfg.Tamper != nil {
		result = w.cfg.Tamper(result)
	}
	return ResultRequest{
		Worker: w.name, Campaign: lease.Campaign, Key: lease.Spec.Key,
		OK: true, Result: result, Digest: digest,
		Exec: &ExecReport{
			Trace: lease.Trace, Span: lease.Span,
			DurMS:  float64(dur) / float64(time.Millisecond),
			Cycles: cycles, Commits: commits,
		},
	}
}

// runIsolated runs the cell with panic capture: a panicking simulation
// becomes a structured failure report, not agent death.
func (w *worker) runIsolated(ctx context.Context, spec JobSpec, progress func(uint64, uint64)) (res json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &harness.PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	return w.cfg.Run(ctx, spec, progress)
}

// report delivers a terminal outcome with bounded retries — the result of
// a finished cell is worth a few attempts, but a worker must never wedge
// on an unreachable coordinator (lease expiry covers the loss). Retry
// pacing is jittered from the slot's seeded stream.
func (w *worker) report(req ResultRequest, dice *fault.Dice) {
	// Detached from the worker ctx: drain-time reports must still go out.
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), w.cfg.reportTimeout())
		var resp ResultResponse
		err := w.client.do(ctx, http.MethodPost, PathResult, req, &resp)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(jitter(dice, time.Duration(attempt+1)*200*time.Millisecond))
	}
	w.logf("worker %s: failed to report %s (lease expiry will recover it)", w.name, req.Key)
}

// failKind classifies a cell error for the coordinator.
func failKind(err error) harness.FailKind {
	var pe *harness.PanicError
	if errors.As(err, &pe) {
		return harness.FailPanic
	}
	return harness.FailError
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
