package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mtvp/internal/fault"
)

// Client is the campaign-submission side of the fabric protocol: submit a
// batch of cells, poll until the fabric finishes them, fetch the results.
type Client struct {
	base  string
	token string
	hc    *http.Client
	// Poll is the status-poll period used by Wait (0 selects 500ms). Actual
	// sleeps are jittered ±50% from a seeded stream so many clients polling
	// one coordinator spread out instead of beating in sync.
	Poll time.Duration
	// JitterSeed seeds the poll-jitter stream (0 selects a fixed default).
	JitterSeed uint64
}

// NewClient builds a client for the coordinator at base (e.g.
// "http://sweep-host:8100") authenticating with token.
func NewClient(base, token string) *Client {
	return &Client{base: base, token: token, hc: &http.Client{Timeout: 30 * time.Second}}
}

// do runs one JSON round trip. A nil in body means no payload; a nil out
// skips decoding. Status 204 returns errNoContent.
var errNoContent = fmt.Errorf("fabric: no content")

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fabric: marshal request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return errNoContent
	case resp.StatusCode == http.StatusTooManyRequests:
		// Admission-control shedding: surface the server's Retry-After as a
		// typed error so callers back off for the advertised interval.
		retry := 1 * time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retry = time.Duration(secs) * time.Second
			}
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return &OverloadError{Reason: string(bytes.TrimSpace(msg)), RetryAfter: retry}
	case resp.StatusCode >= 300:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("fabric: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit registers a campaign and returns its (deterministic) ID. A
// submission shed by admission control (429) is retried after the
// coordinator's advertised Retry-After until ctx ends, at which point the
// *OverloadError is returned.
func (c *Client) Submit(ctx context.Context, spec CampaignSpec) (SubmitResponse, error) {
	dice := fault.NewDice(c.JitterSeed)
	for {
		var resp SubmitResponse
		err := c.do(ctx, http.MethodPost, PathCampaigns, spec, &resp)
		var over *OverloadError
		if !errors.As(err, &over) {
			return resp, err
		}
		t := time.NewTimer(jitter(dice, over.RetryAfter))
		select {
		case <-ctx.Done():
			t.Stop()
			return SubmitResponse{}, over
		case <-t.C:
		}
	}
}

// Status fetches one campaign's live counters.
func (c *Client) Status(ctx context.Context, id string) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.do(ctx, http.MethodGet, PathCampaigns+"/"+id, nil, &st)
	return st, err
}

// Results fetches a campaign's results (complete or not).
func (c *Client) Results(ctx context.Context, id string) (CampaignResults, error) {
	var res CampaignResults
	err := c.do(ctx, http.MethodGet, PathCampaigns+"/"+id+"/results", nil, &res)
	return res, err
}

// List fetches every campaign's live counters, in submission order.
func (c *Client) List(ctx context.Context) ([]CampaignStatus, error) {
	var out []CampaignStatus
	err := c.do(ctx, http.MethodGet, PathCampaigns, nil, &out)
	return out, err
}

// Timeline fetches a campaign's span timeline and straggler report; k
// bounds the tail-cell table (<=0 selects the server default).
func (c *Client) Timeline(ctx context.Context, id string, k int) (CampaignTimeline, error) {
	path := PathCampaigns + "/" + id + "/timeline"
	if k > 0 {
		path += "?k=" + strconv.Itoa(k)
	}
	var tl CampaignTimeline
	err := c.do(ctx, http.MethodGet, path, nil, &tl)
	return tl, err
}

// TraceJSON fetches a campaign's Chrome/Perfetto trace-event export as raw
// bytes (the caller writes it to a file for ui.perfetto.dev).
func (c *Client) TraceJSON(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathCampaigns+"/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("fabric: GET trace: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// Cancel stops a campaign.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, PathCampaigns+"/"+id, nil, nil)
}

// Fleet fetches the live worker view.
func (c *Client) Fleet(ctx context.Context) ([]WorkerStatus, error) {
	var fleet []WorkerStatus
	err := c.do(ctx, http.MethodGet, PathFleet, nil, &fleet)
	return fleet, err
}

// Wait polls the campaign until it leaves StateRunning (or ctx ends),
// calling onStatus (when non-nil) after every poll, then returns the final
// results. Transient network errors are retried — the whole point of the
// fabric is surviving exactly that.
func (c *Client) Wait(ctx context.Context, id string, onStatus func(CampaignStatus)) (CampaignResults, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	dice := fault.NewDice(c.JitterSeed)
	for {
		st, err := c.Status(ctx, id)
		if err == nil {
			if onStatus != nil {
				onStatus(st)
			}
			if st.State != StateRunning {
				return c.Results(ctx, id)
			}
		} else if ctx.Err() != nil {
			return CampaignResults{}, ctx.Err()
		}
		t := time.NewTimer(jitter(dice, poll))
		select {
		case <-ctx.Done():
			t.Stop()
			return CampaignResults{}, ctx.Err()
		case <-t.C:
		}
	}
}
