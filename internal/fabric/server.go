package fabric

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"mtvp/internal/obs"
)

// maxBodyBytes bounds every request body the coordinator will buffer: a
// campaign of a few thousand cells fits comfortably; a hostile client
// streaming gigabytes gets cut off at the reader, not at OOM.
const maxBodyBytes = 16 << 20

// ServerConfig tunes the coordinator's HTTP front end.
type ServerConfig struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Token, when non-empty, is the bearer token every /api/v1 request
	// must present (Authorization: Bearer <token>). Empty disables auth —
	// loopback experiments only; production runs must set it.
	Token string
	// ExpireEvery is the lease-expiry scan period (0 selects LeaseTTL/4).
	ExpireEvery time.Duration
	// MaxBody overrides the per-request body cap (0 selects 16 MiB).
	MaxBody int64
}

func (c ServerConfig) maxBody() int64 {
	if c.MaxBody > 0 {
		return c.MaxBody
	}
	return maxBodyBytes
}

// Server exposes a Coordinator over HTTP: the campaign API (submit /
// status / results / cancel), the worker protocol (lease / heartbeat /
// result), the fleet view, and — when the coordinator was built with a
// telemetry registry — the live /metrics, /healthz, and pprof surface on
// the same listener.
type Server struct {
	co     *Coordinator
	cfg    ServerConfig
	ln     net.Listener
	srv    *http.Server
	cancel context.CancelFunc
}

// NewServer binds the address, starts serving co, and starts the periodic
// lease-expiry scan.
func NewServer(co *Coordinator, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{co: co, cfg: cfg, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathCampaigns, s.auth(s.handleSubmit))
	mux.HandleFunc("GET "+PathCampaigns, s.auth(s.handleList))
	mux.HandleFunc("GET "+PathCampaigns+"/{id}", s.auth(s.handleStatus))
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/results", s.auth(s.handleResults))
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/timeline", s.auth(s.handleTimeline))
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/trace", s.auth(s.handleTrace))
	mux.HandleFunc("DELETE "+PathCampaigns+"/{id}", s.auth(s.handleCancel))
	mux.HandleFunc("POST "+PathLease, s.auth(s.handleLease))
	mux.HandleFunc("POST "+PathHeartbeat, s.auth(s.handleHeartbeat))
	mux.HandleFunc("POST "+PathResult, s.auth(s.handleResult))
	mux.HandleFunc("GET "+PathFleet, s.auth(s.handleFleet))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if co.cfg.Registry != nil {
		// The profiling and metrics surface carries internal detail
		// (cmdline, heap contents); it sits behind the same bearer token as
		// the API.
		reg := co.cfg.Registry
		mux.HandleFunc("GET /metrics", s.auth(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w)
		}))
		mux.HandleFunc("/debug/pprof/", s.auth(pprof.Index))
		mux.HandleFunc("/debug/pprof/cmdline", s.auth(pprof.Cmdline))
		mux.HandleFunc("/debug/pprof/profile", s.auth(pprof.Profile))
		mux.HandleFunc("/debug/pprof/symbol", s.auth(pprof.Symbol))
		mux.HandleFunc("/debug/pprof/trace", s.auth(pprof.Trace))
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	every := cfg.ExpireEvery
	if every <= 0 {
		every = co.cfg.leaseTTL() / 4
		if every < 10*time.Millisecond {
			every = 10 * time.Millisecond
		}
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				co.ExpireLeases()
			}
		}
	}()

	// Slowloris armor: a client must deliver its headers within 5s and its
	// whole request within 30s, and idle keep-alive connections are
	// reclaimed after 2 minutes. No write timeout: the debug surface
	// (pprof profiles) legitimately streams for longer than any sane cap.
	s.srv = &http.Server{
		Handler:           http.MaxBytesHandler(mux, cfg.maxBody()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the expiry scan and the HTTP server. The coordinator (and
// its journals) stays usable; close it separately.
func (s *Server) Close() error {
	s.cancel()
	return s.srv.Close()
}

// auth wraps an API handler with bearer-token authentication.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Token == "" {
		return h
	}
	want := []byte(s.cfg.Token)
	return func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), want) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		// Bodies are capped by MaxBytesHandler; blowing the cap is its own
		// status, not a generic parse failure.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if !readJSON(w, r, &spec) {
		return
	}
	resp, err := s.co.Submit(spec)
	var over *OverloadError
	switch {
	case errors.As(err, &over):
		// Admission-control shedding: tell the client when to come back.
		secs := int(over.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		http.Error(w, over.Reason, http.StatusTooManyRequests)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.co.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.co.Status(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	res, err := s.co.Results(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, res)
}

// handleTimeline serves the campaign's span timeline, straggler report, and
// progress series as JSON. ?k=N bounds the tail-cell table.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	tl, err := s.co.Timeline(r.PathValue("id"), k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, tl)
}

// handleTrace streams the campaign's spans as Chrome/Perfetto trace-event
// JSON (load in https://ui.perfetto.dev or chrome://tracing). Open spans are
// drawn up to the coordinator's current clock.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name, spans, err := s.co.TraceSpans(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", r.PathValue("id")+".trace.json"))
	if err := obs.WriteTrace(w, name, spans, s.co.now()); err != nil {
		// Headers are gone; all we can do is drop the connection mid-stream.
		s.co.logf("fabric: trace export for %s: %v", r.PathValue("id"), err)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.co.Cancel(r.PathValue("id")); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	lease, ok := s.co.Lease(req.Worker)
	if !ok {
		w.WriteHeader(http.StatusNoContent) // nothing queued: poll again later
		return
	}
	writeJSON(w, lease)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, HeartbeatResponse{OK: s.co.Heartbeat(req)})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := s.co.Result(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.co.Fleet())
}
