package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mtvp/internal/fault"
	"mtvp/internal/harness"
	"mtvp/internal/telemetry"
)

// CoordinatorConfig tunes one coordinator. The zero value is usable for
// in-memory operation; set JournalDir for crash-resumable persistence.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted lease survives without a heartbeat
	// before its cell is requeued (0 selects 15s). Workers are told to
	// heartbeat every TTL/3.
	LeaseTTL time.Duration
	// Retries bounds how many times a cell is re-leased after a lost lease
	// or reported failure before it is marked failed (0 selects 3). The
	// budget reuses fault.Backoff — worker loss is paced by the same
	// machinery that paces the simulated machine's own recoveries.
	Retries int
	// JournalDir, when non-empty, persists every campaign: the spec as
	// <id>.spec.json (written atomically at submit) and completions through
	// the harness's fsynced JSONL journal as <id>.journal. A coordinator
	// restarted on the same directory resumes every campaign without
	// re-running completed cells.
	JournalDir string
	// PruneAfter retires a worker from the fleet view after this much
	// silence with no leases held (0 selects 10×LeaseTTL).
	PruneAfter time.Duration
	// Registry, when non-nil, exports the live fleet view: aggregate
	// counters plus per-worker labeled gauges (leases held, heartbeat age,
	// jobs done/failed, cycle rate).
	Registry *telemetry.Registry
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests drive lease expiry deterministically).
	Now func() time.Time
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c CoordinatorConfig) retries() int {
	if c.Retries <= 0 {
		return 3
	}
	return c.Retries
}

func (c CoordinatorConfig) pruneAfter() time.Duration {
	if c.PruneAfter > 0 {
		return c.PruneAfter
	}
	return 10 * c.leaseTTL()
}

// jobState is one cell's position in the lease lifecycle.
type jobState int

const (
	jobQueued jobState = iota
	jobLeased
	jobDone
	jobFailed
)

// job is one cell's coordinator-side state.
type job struct {
	spec     JobSpec
	state    jobState
	worker   string    // lease holder while leased
	expiry   time.Time // lease deadline while leased
	attempts int
	budget   *fault.Backoff // requeue budget (worker loss, reported failures)
	result   json.RawMessage
	failure  *harness.JobFailure

	lastCycles  uint64    // last heartbeat's cycle count (rate derivation)
	lastBeatAt  time.Time // last heartbeat wall time
	everBeaten  bool
}

// campaign is one tenant's batch of cells.
type campaign struct {
	id          string
	name        string
	fingerprint string
	jobs        map[string]*job
	order       []string // submission order = report order
	queue       []string // runnable cells, FIFO; requeues go to the back
	jnl         *harness.Journal
	cancelled   bool
	done        int
	failed      int
	requeues    int
}

func (c *campaign) state() CampaignState {
	switch {
	case c.cancelled:
		return StateCancelled
	case c.done == len(c.order):
		return StateComplete
	case c.done+c.failed == len(c.order):
		return StateFailed
	default:
		return StateRunning
	}
}

// workerInfo is one agent's fleet-view row.
type workerInfo struct {
	name      string
	lastSeen  time.Time
	leases    int
	done      uint64
	failed    uint64
	lost      uint64
	cycleRate float64 // EWMA cycles/sec
}

// Coordinator owns the multi-tenant lease state machine. All methods are
// safe for concurrent use; the HTTP server (server.go) is a thin layer
// over them.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // campaign submission order (fair-share rotation)
	rr        int      // round-robin cursor into order
	workers   map[string]*workerInfo

	metrics *fleetMetrics
}

// fleetMetrics is the aggregate + per-worker telemetry surface.
type fleetMetrics struct {
	reg           *telemetry.Registry
	leasesGranted *telemetry.Counter
	heartbeats    *telemetry.Counter
	expiries      *telemetry.Counter
	requeues      *telemetry.Counter
	resultsOK     *telemetry.Counter
	resultsFailed *telemetry.Counter
	dedups        *telemetry.Counter
	campaignsLive *telemetry.Gauge
	jobsQueued    *telemetry.Gauge
	jobsLeased    *telemetry.Gauge
}

// NewCoordinator builds a coordinator and, when JournalDir is set, reloads
// every persisted campaign from it (completed cells keep their journaled
// results; queued and previously-leased cells are requeued; failed cells
// re-run with a fresh budget, mirroring local journal-resume semantics).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	co := &Coordinator{
		cfg:       cfg,
		campaigns: map[string]*campaign{},
		workers:   map[string]*workerInfo{},
	}
	if reg := cfg.Registry; reg != nil {
		co.metrics = &fleetMetrics{
			reg:           reg,
			leasesGranted: reg.Counter("mtvp_fabric_leases_granted_total", "job leases granted to workers"),
			heartbeats:    reg.Counter("mtvp_fabric_heartbeats_total", "lease heartbeats accepted"),
			expiries:      reg.Counter("mtvp_fabric_lease_expiries_total", "leases lost to heartbeat loss or expiry"),
			requeues:      reg.Counter("mtvp_fabric_requeues_total", "cells requeued after a lost lease or failure"),
			resultsOK:     reg.Counter("mtvp_fabric_results_ok_total", "successful cell results accepted"),
			resultsFailed: reg.Counter("mtvp_fabric_results_failed_total", "failed cell results reported"),
			dedups:        reg.Counter("mtvp_fabric_result_dedups_total", "double-completions deduped on job key"),
			campaignsLive: reg.Gauge("mtvp_fabric_campaigns_running", "campaigns currently running"),
			jobsQueued:    reg.Gauge("mtvp_fabric_jobs_queued", "cells waiting for a lease across all campaigns"),
			jobsLeased:    reg.Gauge("mtvp_fabric_jobs_leased", "cells currently leased across all campaigns"),
		}
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("fabric: journal dir: %w", err)
		}
		if err := co.reload(); err != nil {
			return nil, err
		}
	}
	return co, nil
}

func (co *Coordinator) now() time.Time {
	if co.cfg.Now != nil {
		return co.cfg.Now()
	}
	return time.Now()
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// CampaignID derives the deterministic campaign identity from a spec:
// resubmitting the same (name, fingerprint, job keys) — after a client
// retry or a coordinator restart — attaches to the existing campaign.
func CampaignID(spec CampaignSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", spec.Name, spec.Fingerprint)
	for _, j := range spec.Jobs {
		fmt.Fprintf(h, "%s\x00", j.Key)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Submit registers a campaign (idempotently: a spec with a known identity
// attaches to the existing campaign) and persists it when a journal
// directory is configured.
func (co *Coordinator) Submit(spec CampaignSpec) (SubmitResponse, error) {
	if spec.Name == "" || len(spec.Jobs) == 0 {
		return SubmitResponse{}, fmt.Errorf("fabric: campaign needs a name and at least one job")
	}
	seen := map[string]bool{}
	for _, j := range spec.Jobs {
		if j.Key == "" {
			return SubmitResponse{}, fmt.Errorf("fabric: campaign %q has a job with an empty key", spec.Name)
		}
		if seen[j.Key] {
			return SubmitResponse{}, fmt.Errorf("fabric: campaign %q has duplicate job key %q", spec.Name, j.Key)
		}
		seen[j.Key] = true
	}
	id := CampaignID(spec)

	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.campaigns[id]; ok {
		return SubmitResponse{ID: id, Attached: true}, nil
	}
	c, err := co.installLocked(id, spec, nil)
	if err != nil {
		return SubmitResponse{}, err
	}
	if co.cfg.JournalDir != "" {
		if err := co.persistSpec(id, spec); err != nil {
			c.jnl.Close()
			os.Remove(co.journalPath(id))
			delete(co.campaigns, id)
			co.order = co.order[:len(co.order)-1]
			return SubmitResponse{}, err
		}
	}
	co.logf("campaign %s (%s): %d cells submitted", id, c.name, len(c.order))
	co.updateGaugesLocked()
	return SubmitResponse{ID: id}, nil
}

// installLocked builds the campaign state from a spec plus (on reload) the
// journaled records, opens its journal, and queues the unfinished cells.
func (co *Coordinator) installLocked(id string, spec CampaignSpec, prior map[string]*harness.Record) (*campaign, error) {
	c := &campaign{
		id:          id,
		name:        spec.Name,
		fingerprint: spec.Fingerprint,
		jobs:        map[string]*job{},
	}
	for _, s := range spec.Jobs {
		j := &job{spec: s, budget: fault.NewBackoff(co.cfg.retries(), 64)}
		if rec := prior[s.Key]; rec != nil && rec.Status == harness.StatusDone && len(rec.Result) > 0 {
			j.state = jobDone
			j.attempts = rec.Attempts
			j.result = append(json.RawMessage(nil), rec.Result...)
			c.done++
		} else {
			c.queue = append(c.queue, s.Key)
		}
		c.jobs[s.Key] = j
		c.order = append(c.order, s.Key)
	}
	if co.cfg.JournalDir != "" {
		jnl, err := harness.OpenJournal(co.journalPath(id), spec.Name, spec.Fingerprint)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
	}
	co.campaigns[id] = c
	co.order = append(co.order, id)
	return c, nil
}

func (co *Coordinator) specPath(id string) string {
	return filepath.Join(co.cfg.JournalDir, id+".spec.json")
}

func (co *Coordinator) journalPath(id string) string {
	return filepath.Join(co.cfg.JournalDir, id+".journal")
}

// persistSpec writes the campaign spec atomically (tmp + rename): a crash
// mid-submit leaves either a complete spec or none.
func (co *Coordinator) persistSpec(id string, spec CampaignSpec) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("fabric: marshal spec: %w", err)
	}
	tmp := co.specPath(id) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("fabric: persist spec: %w", err)
	}
	return os.Rename(tmp, co.specPath(id))
}

// reload restores every persisted campaign from the journal directory.
func (co *Coordinator) reload() error {
	ents, err := os.ReadDir(co.cfg.JournalDir)
	if err != nil {
		return fmt.Errorf("fabric: reload: %w", err)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".spec.json") {
			names = append(names, n)
		}
	}
	sort.Strings(names) // deterministic reload order
	for _, n := range names {
		id := strings.TrimSuffix(n, ".spec.json")
		b, err := os.ReadFile(filepath.Join(co.cfg.JournalDir, n))
		if err != nil {
			return fmt.Errorf("fabric: reload %s: %w", n, err)
		}
		var spec CampaignSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("fabric: reload %s: corrupt spec: %w", n, err)
		}
		prior, warns, err := harness.LoadJournal(co.journalPath(id), spec.Fingerprint)
		if err != nil {
			return fmt.Errorf("fabric: reload %s: %w", n, err)
		}
		for _, w := range warns {
			co.logf("%s", w)
		}
		c, err := co.installLocked(id, spec, prior)
		if err != nil {
			return err
		}
		co.logf("campaign %s (%s): reloaded, %d/%d cells already done",
			id, c.name, c.done, len(c.order))
	}
	co.updateGaugesLocked()
	return nil
}

// Lease grants the next cell to worker, fair-share round-robin across
// running campaigns. ok is false when no work is queued.
func (co *Coordinator) Lease(worker string) (Lease, bool) {
	if worker == "" {
		return Lease{}, false
	}
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchWorkerLocked(worker, now)
	// Round-robin by campaign: start at the cursor, take the first
	// campaign with queued work, advance the cursor past it.
	for i := 0; i < len(co.order); i++ {
		c := co.campaigns[co.order[(co.rr+i)%len(co.order)]]
		if c.cancelled {
			continue
		}
		var j *job
		for len(c.queue) > 0 {
			key := c.queue[0]
			c.queue = c.queue[1:]
			if cand := c.jobs[key]; cand.state == jobQueued {
				j = cand
				break
			}
			// Stale entry: the cell reached a terminal state (late success
			// after requeue) while still listed. Never re-lease it.
		}
		if j == nil {
			continue
		}
		co.rr = (co.rr + i + 1) % len(co.order)
		j.state = jobLeased
		j.worker = worker
		j.expiry = now.Add(co.cfg.leaseTTL())
		j.attempts++
		j.lastCycles = 0
		j.lastBeatAt = now
		j.everBeaten = false
		co.workers[worker].leases++
		if co.metrics != nil {
			co.metrics.leasesGranted.Inc()
		}
		co.updateGaugesLocked()
		return Lease{
			Campaign:       c.id,
			Spec:           j.spec,
			TTL:            co.cfg.leaseTTL(),
			HeartbeatEvery: co.cfg.leaseTTL() / 3,
		}, true
	}
	return Lease{}, false
}

// Heartbeat extends a lease and feeds the fleet view. ok is false when the
// worker no longer owns the lease (expired and requeued, already completed
// by someone else, campaign cancelled): the worker should abandon the cell.
func (co *Coordinator) Heartbeat(req HeartbeatRequest) bool {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	w := co.touchWorkerLocked(req.Worker, now)
	c := co.campaigns[req.Campaign]
	if c == nil || c.cancelled {
		return false
	}
	j := c.jobs[req.Key]
	if j == nil || j.state != jobLeased || j.worker != req.Worker {
		return false
	}
	j.expiry = now.Add(co.cfg.leaseTTL())
	// Cycle rate: EWMA over heartbeat deltas.
	if dt := now.Sub(j.lastBeatAt).Seconds(); dt > 0 && j.everBeaten && req.Cycles >= j.lastCycles {
		inst := float64(req.Cycles-j.lastCycles) / dt
		if w.cycleRate == 0 {
			w.cycleRate = inst
		} else {
			w.cycleRate = 0.75*w.cycleRate + 0.25*inst
		}
	}
	j.lastCycles = req.Cycles
	j.lastBeatAt = now
	j.everBeaten = true
	if co.metrics != nil {
		co.metrics.heartbeats.Inc()
	}
	return true
}

// Result records a cell's terminal outcome. Successful results are deduped
// idempotently on job key (first result wins, even from a worker whose
// lease already expired); failures spend the cell's requeue budget.
func (co *Coordinator) Result(req ResultRequest) (ResultResponse, error) {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchWorkerLocked(req.Worker, now)
	c := co.campaigns[req.Campaign]
	if c == nil {
		return ResultResponse{}, fmt.Errorf("fabric: unknown campaign %q", req.Campaign)
	}
	j := c.jobs[req.Key]
	if j == nil {
		return ResultResponse{}, fmt.Errorf("fabric: campaign %s has no job %q", req.Campaign, req.Key)
	}
	if c.cancelled {
		return ResultResponse{Accepted: false}, nil
	}
	if j.state == jobDone {
		// Double completion: a worker we presumed dead finished anyway.
		if co.metrics != nil {
			co.metrics.dedups.Inc()
		}
		co.logf("campaign %s: deduped double completion of %s from %s", c.id, req.Key, req.Worker)
		return ResultResponse{Accepted: false}, nil
	}
	if req.Released {
		// Voluntary handback (draining worker): requeue at no budget cost.
		if j.state == jobLeased && j.worker == req.Worker {
			co.releaseLeaseLocked(c, j)
			j.state = jobQueued
			c.queue = append(c.queue, req.Key)
			c.requeues++
			if co.metrics != nil {
				co.metrics.requeues.Inc()
			}
			co.logf("campaign %s: %s released by draining worker %s, requeued", c.id, req.Key, req.Worker)
			co.updateGaugesLocked()
			return ResultResponse{Accepted: true}, nil
		}
		return ResultResponse{Accepted: false}, nil
	}
	if req.OK {
		// First result wins, even from a worker whose lease already
		// expired. Reconcile whatever state the cell drifted into while the
		// report was in flight.
		switch j.state {
		case jobLeased:
			co.releaseLeaseLocked(c, j)
		case jobQueued:
			// Requeued after the reporter's lease expired: drop the stale
			// queue entry so the cell is never re-leased over a done result.
			c.queue = removeKey(c.queue, req.Key)
		case jobFailed:
			// Budget exhausted, but a real result arrived anyway: revive the
			// cell (the journal's latest-record-wins reload agrees).
			c.failed--
			co.logf("campaign %s: late success from %s revived failed cell %s", c.id, req.Worker, req.Key)
		}
		j.state = jobDone
		j.result = append(json.RawMessage(nil), req.Result...)
		j.failure = nil
		c.done++
		c.jnl.Done(req.Key, j.attempts, json.RawMessage(j.result), req.Worker)
		if w := co.workers[req.Worker]; w != nil {
			w.done++
		}
		if co.metrics != nil {
			co.metrics.resultsOK.Inc()
		}
		co.updateGaugesLocked()
		return ResultResponse{Accepted: true}, nil
	}

	// Failures are only accepted from the current lease holder: a stale
	// report from an expired lease must not spend the budget of — or
	// double-requeue — a cell another worker now owns.
	if j.state != jobLeased || j.worker != req.Worker {
		return ResultResponse{Accepted: false}, nil
	}
	co.releaseLeaseLocked(c, j)

	kind := req.FailKind
	if kind == "" {
		kind = harness.FailError
	}
	if w := co.workers[req.Worker]; w != nil {
		w.failed++
	}
	if co.metrics != nil {
		co.metrics.resultsFailed.Inc()
	}
	co.failOrRequeueLocked(c, j, req.Worker, harness.JobFailure{
		Key: req.Key, Seed: j.spec.Seed, Kind: kind,
		Attempts: j.attempts, Err: req.Error,
	})
	co.updateGaugesLocked()
	return ResultResponse{Accepted: true}, nil
}

// removeKey drops the first occurrence of key from q in place.
func removeKey(q []string, key string) []string {
	for i, k := range q {
		if k == key {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// releaseLeaseLocked drops a lease's bookkeeping (the job's next state is
// the caller's business).
func (co *Coordinator) releaseLeaseLocked(c *campaign, j *job) {
	if j.state == jobLeased {
		if w := co.workers[j.worker]; w != nil && w.leases > 0 {
			w.leases--
		}
		j.worker = ""
	}
}

// failOrRequeueLocked spends the cell's requeue budget: requeue while it
// lasts, mark failed once exhausted. worker is the agent the failure is
// attributed to in the journal.
func (co *Coordinator) failOrRequeueLocked(c *campaign, j *job, worker string, f harness.JobFailure) {
	if j.budget.Allow() {
		j.state = jobQueued
		c.queue = append(c.queue, f.Key)
		c.requeues++
		if co.metrics != nil {
			co.metrics.requeues.Inc()
		}
		co.logf("campaign %s: requeued %s after %s (%s), attempt %d", c.id, f.Key, f.Kind, f.Err, f.Attempts)
		return
	}
	j.state = jobFailed
	j.failure = &f
	c.failed++
	c.jnl.Failed(f, worker)
	co.logf("campaign %s: %s FAILED permanently: %s", c.id, f.Key, f.Err)
}

// ExpireLeases requeues every lease whose heartbeat deadline has passed —
// the worker-loss detector — and prunes long-silent idle workers from the
// fleet view. It returns how many leases expired. The server runs this on
// a ticker; tests call it directly with a fake clock.
func (co *Coordinator) ExpireLeases() int {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	expired := 0
	for _, id := range co.order {
		c := co.campaigns[id]
		for _, key := range c.order {
			j := c.jobs[key]
			if j.state != jobLeased || now.Before(j.expiry) {
				continue
			}
			expired++
			worker := j.worker
			if w := co.workers[worker]; w != nil {
				w.lost++
			}
			if co.metrics != nil {
				co.metrics.expiries.Inc()
			}
			co.releaseLeaseLocked(c, j)
			co.failOrRequeueLocked(c, j, worker, harness.JobFailure{
				Key: key, Seed: j.spec.Seed, Kind: FailLostWorker,
				Attempts: j.attempts,
				Err:      fmt.Sprintf("lease on %s expired (no heartbeat from %q within %s)", key, worker, co.cfg.leaseTTL()),
			})
		}
	}
	// Prune workers that hold nothing and have gone silent.
	for name, w := range co.workers {
		if w.leases == 0 && now.Sub(w.lastSeen) > co.cfg.pruneAfter() {
			delete(co.workers, name)
			co.dropWorkerGauges(name)
		}
	}
	if expired > 0 {
		co.updateGaugesLocked()
	}
	return expired
}

// FailLostWorker classifies a cell whose lease expired because its worker
// stopped heartbeating — the fabric's worker-loss fault class.
const FailLostWorker harness.FailKind = "lost-worker"

// Status reports one campaign's live counters.
func (co *Coordinator) Status(id string) (CampaignStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return CampaignStatus{}, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	return co.statusLocked(c), nil
}

func (co *Coordinator) statusLocked(c *campaign) CampaignStatus {
	leased := 0
	for _, j := range c.jobs {
		if j.state == jobLeased {
			leased++
		}
	}
	return CampaignStatus{
		ID:          c.id,
		Name:        c.name,
		Fingerprint: c.fingerprint,
		State:       c.state(),
		Total:       len(c.order),
		Queued:      len(c.queue),
		Leased:      leased,
		Done:        c.done,
		Failed:      c.failed,
		Requeues:    c.requeues,
	}
}

// List reports every campaign, in submission order.
func (co *Coordinator) List() []CampaignStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]CampaignStatus, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.statusLocked(co.campaigns[id]))
	}
	return out
}

// Results returns a campaign's per-key results (raw worker JSON) and the
// structured failures of cells that exhausted their budgets. Available at
// any time; callers that need completeness should check State first.
func (co *Coordinator) Results(id string) (CampaignResults, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return CampaignResults{}, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	out := CampaignResults{
		ID:      c.id,
		State:   c.state(),
		Results: make(map[string]json.RawMessage, c.done),
	}
	for _, key := range c.order {
		j := c.jobs[key]
		switch j.state {
		case jobDone:
			out.Results[key] = append(json.RawMessage(nil), j.result...)
		case jobFailed:
			out.Failures = append(out.Failures, *j.failure)
		}
	}
	return out, nil
}

// Cancel stops a campaign: queued cells are dropped, running workers are
// told their leases are lost at the next heartbeat, and late results are
// ignored. Journaled completions are kept.
func (co *Coordinator) Cancel(id string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return fmt.Errorf("fabric: unknown campaign %q", id)
	}
	if !c.cancelled {
		c.cancelled = true
		c.queue = nil
		for _, j := range c.jobs {
			if j.state == jobLeased {
				co.releaseLeaseLocked(c, j)
				j.state = jobQueued
			}
		}
		co.logf("campaign %s (%s): cancelled", c.id, c.name)
	}
	co.updateGaugesLocked()
	return nil
}

// Fleet reports the live worker view, sorted by name.
func (co *Coordinator) Fleet() []WorkerStatus {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerStatus, 0, len(co.workers))
	for _, w := range co.workers {
		out = append(out, WorkerStatus{
			Name:         w.name,
			Leases:       w.leases,
			HeartbeatAge: now.Sub(w.lastSeen),
			Done:         w.done,
			Failed:       w.failed,
			Lost:         w.lost,
			CycleRate:    w.cycleRate,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Close flushes and closes every campaign journal.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range co.campaigns {
		c.jnl.Close()
		c.jnl = nil
	}
}

// touchWorkerLocked records contact from a worker, registering its
// per-worker fleet gauges on first sight.
func (co *Coordinator) touchWorkerLocked(name string, now time.Time) *workerInfo {
	if name == "" {
		return nil
	}
	w := co.workers[name]
	if w == nil {
		w = &workerInfo{name: name}
		co.workers[name] = w
		co.registerWorkerGauges(name)
		co.logf("worker %q joined the fleet", name)
	}
	w.lastSeen = now
	return w
}

// registerWorkerGauges exports one worker's fleet row as labeled gauges.
// The gauge funcs read coordinator state at scrape time (the registry
// releases its own lock before calling them, so lock order is safe).
func (co *Coordinator) registerWorkerGauges(name string) {
	if co.metrics == nil {
		return
	}
	labels := fmt.Sprintf("worker=%q", name)
	read := func(f func(*workerInfo) float64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			w := co.workers[name]
			if w == nil {
				return 0
			}
			return f(w)
		}
	}
	reg := co.metrics.reg
	reg.LabeledGaugeFunc("mtvp_fleet_leases", labels,
		"cells currently leased to the worker",
		read(func(w *workerInfo) float64 { return float64(w.leases) }))
	reg.LabeledGaugeFunc("mtvp_fleet_heartbeat_age_seconds", labels,
		"seconds since the worker last contacted the coordinator",
		func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			w := co.workers[name]
			if w == nil {
				return 0
			}
			return co.now().Sub(w.lastSeen).Seconds()
		})
	reg.LabeledGaugeFunc("mtvp_fleet_jobs_done", labels,
		"cells the worker completed successfully",
		read(func(w *workerInfo) float64 { return float64(w.done) }))
	reg.LabeledGaugeFunc("mtvp_fleet_jobs_failed", labels,
		"cell failures the worker reported",
		read(func(w *workerInfo) float64 { return float64(w.failed) }))
	reg.LabeledGaugeFunc("mtvp_fleet_leases_lost", labels,
		"leases the worker lost to heartbeat expiry",
		read(func(w *workerInfo) float64 { return float64(w.lost) }))
	reg.LabeledGaugeFunc("mtvp_fleet_cycle_rate", labels,
		"recent simulated cycles per second (EWMA over heartbeats)",
		read(func(w *workerInfo) float64 { return w.cycleRate }))
}

// dropWorkerGauges retires a pruned worker's labeled gauges.
func (co *Coordinator) dropWorkerGauges(name string) {
	if co.metrics == nil {
		return
	}
	labels := fmt.Sprintf("worker=%q", name)
	for _, metric := range []string{
		"mtvp_fleet_leases", "mtvp_fleet_heartbeat_age_seconds",
		"mtvp_fleet_jobs_done", "mtvp_fleet_jobs_failed",
		"mtvp_fleet_leases_lost", "mtvp_fleet_cycle_rate",
	} {
		co.metrics.reg.Unregister(metric, labels)
	}
}

// updateGaugesLocked refreshes the aggregate gauges.
func (co *Coordinator) updateGaugesLocked() {
	if co.metrics == nil {
		return
	}
	running, queued, leased := 0, 0, 0
	for _, c := range co.campaigns {
		if c.state() == StateRunning {
			running++
		}
		queued += len(c.queue)
		for _, j := range c.jobs {
			if j.state == jobLeased {
				leased++
			}
		}
	}
	co.metrics.campaignsLive.Set(int64(running))
	co.metrics.jobsQueued.Set(int64(queued))
	co.metrics.jobsLeased.Set(int64(leased))
}
