package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mtvp/internal/fault"
	"mtvp/internal/harness"
	"mtvp/internal/obs"
	"mtvp/internal/telemetry"
)

// CoordinatorConfig tunes one coordinator. The zero value is usable for
// in-memory operation; set JournalDir for crash-resumable persistence.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted lease survives without a heartbeat
	// before its cell is requeued (0 selects 15s). Workers are told to
	// heartbeat every TTL/3.
	LeaseTTL time.Duration
	// Retries bounds how many times a cell is re-leased after a lost lease
	// or reported failure before it is marked failed (0 selects 3). The
	// budget reuses fault.Backoff — worker loss is paced by the same
	// machinery that paces the simulated machine's own recoveries.
	Retries int
	// JournalDir, when non-empty, persists every campaign: the spec as
	// <id>.spec.json (written atomically at submit) and completions through
	// the harness's fsynced JSONL journal as <id>.journal. A coordinator
	// restarted on the same directory resumes every campaign without
	// re-running completed cells.
	JournalDir string
	// PruneAfter retires a worker from the fleet view after this much
	// silence with no leases held (0 selects 10×LeaseTTL). Workers under
	// trust quarantine are never pruned — their record is the point.
	PruneAfter time.Duration

	// Verify is the byzantine-defense redundancy factor k: each cell is
	// leased to k distinct workers and accepted only when a majority of the
	// k attestation digests agree (<2 disables redundancy; a single honest
	// digest then suffices). Workers whose digest loses a quorum are struck
	// toward fleet quarantine.
	Verify int
	// SpotCheckPPM re-leases a completed cell to a second worker for a
	// confirming vote at this parts-per-million rate even when Verify is
	// off — a random audit of a fleet that is normally trusted. Rolls come
	// from a seeded splitmix64 stream (fault.Dice), so a spot-check
	// schedule is reproducible from SpotCheckSeed.
	SpotCheckPPM uint32
	// SpotCheckSeed seeds the spot-check dice (0 selects a fixed default).
	SpotCheckSeed uint64
	// LocalRun, when non-nil, is the coordinator-local tiebreaker: when all
	// k verification votes are in and no digest has a majority, the
	// coordinator re-executes the cell itself and its digest decides the
	// quorum. Without it, disagreement widens the electorate (one more
	// worker per round, paced by the cell's retry budget).
	LocalRun RunFunc

	// MaxQueuedCells caps the total number of cells waiting for a lease
	// across all campaigns (0 = unlimited). A submit that would exceed it
	// is shed with an OverloadError (HTTP 429 + Retry-After).
	MaxQueuedCells int
	// MaxCampaignsPerTenant caps concurrently running campaigns sharing one
	// campaign name — the fabric's tenant key (0 = unlimited).
	MaxCampaignsPerTenant int

	// Registry, when non-nil, exports the live fleet view: aggregate
	// counters plus per-worker labeled gauges (leases held, heartbeat age,
	// jobs done/failed, cycle rate, trust level, corrupt results).
	Registry *telemetry.Registry
	// Logf, when non-nil, receives coordinator progress lines.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests drive lease expiry deterministically).
	Now func() time.Time
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c CoordinatorConfig) retries() int {
	if c.Retries <= 0 {
		return 3
	}
	return c.Retries
}

func (c CoordinatorConfig) pruneAfter() time.Duration {
	if c.PruneAfter > 0 {
		return c.PruneAfter
	}
	return 10 * c.leaseTTL()
}

func (c CoordinatorConfig) verifyK() int {
	if c.Verify < 2 {
		return 1
	}
	return c.Verify
}

// fleetTuning is the fleet-level adaptation of the pipeline's misprediction
// quarantine: one attested-corrupt result (WrongCost == ClampAt) clamps a
// worker to suspect, a second disables it outright. Suspects rehabilitate
// through corroborated results (CorrectCredit each); a disabled worker only
// recovers through passive decay, one point per DecayEvery expiry scans.
var fleetTuning = fault.QuarantineTuning{
	WrongCost: 32, CorrectCredit: 2,
	ClampAt: 32, DisableAt: 64, ScoreMax: 96,
	DecayEvery: 16,
}

// OverloadError is admission-control shedding: the coordinator refused new
// load and the caller should retry no sooner than RetryAfter. The HTTP
// layer maps it to 429 + Retry-After.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("fabric: overloaded: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Fault kinds the coordinator classifies cells with, beyond the harness's
// own set.
const (
	// FailLostWorker classifies a cell whose lease expired because its
	// worker stopped heartbeating — the fabric's worker-loss fault class.
	FailLostWorker harness.FailKind = "lost-worker"
	// FailNoQuorum classifies a cell whose verification votes never
	// reached a majority before its retry budget ran out — a byzantine
	// disagreement the fleet could not resolve.
	FailNoQuorum harness.FailKind = "no-quorum"
	// FailTiebreak classifies a cell whose coordinator-local tiebreak
	// re-execution itself failed.
	FailTiebreak harness.FailKind = "tiebreak-error"
)

// jobState is one cell's position in the lease/vote lifecycle.
type jobState int

const (
	// jobPending: queued for (more) leases and/or collecting attestation
	// votes. With Verify off this is the classic queued-or-leased state.
	jobPending jobState = iota
	// jobTiebreak: all votes in, no majority; a coordinator-local
	// re-execution is in flight and will decide the quorum.
	jobTiebreak
	jobDone
	jobFailed
)

// leaseInfo is one active lease granted to one worker.
type leaseInfo struct {
	expiry     time.Time
	lastCycles uint64    // last heartbeat's cycle count (rate derivation)
	lastBeatAt time.Time // last heartbeat wall time
	everBeaten bool

	// Observability: the lease's span identity and attempt ordinal, the
	// grant instant (span start + straggler duration base), the highest
	// heartbeat Seq whose deltas were folded (duplicate-request dedup), and
	// the absolute progress folded so far (lost-ack overlap clamp).
	attempt       int
	spanID        string
	granted       time.Time
	lastSeq       uint64
	foldedCycles  uint64
	foldedCommits uint64
}

// vote is one worker's attested result for a cell.
type vote struct {
	worker  string
	digest  string
	result  json.RawMessage
	attempt int // the lease attempt that produced the vote (0: unknown/late)
}

// job is one cell's coordinator-side state. A cell may hold several leases
// at once under -verify k; votes accumulate until one digest reaches a
// majority of needVotes.
type job struct {
	spec       JobSpec
	state      jobState
	leases     map[string]*leaseInfo
	queued     bool // currently listed in the campaign queue
	attempts   int
	budget     *fault.Backoff // requeue budget (worker loss, failures, quorum widening)
	needVotes  int            // distinct attestations wanted (1 = trust the first)
	votes      []vote
	spotRolled bool // the spot-check dice has been consumed for this cell
	result     json.RawMessage
	digest     string
	failure    *harness.JobFailure

	// Observability: the cell's trace ID, its currently-open queue span
	// (ID, "" when none), and whether the verify span has been opened.
	trace      string
	openQueue  string
	verifyOpen bool
}

// voted reports whether worker already cast a vote for this cell.
func (j *job) voted(worker string) bool {
	for _, v := range j.votes {
		if v.worker == worker {
			return true
		}
	}
	return false
}

// campaign is one tenant's batch of cells.
type campaign struct {
	id          string
	name        string
	fingerprint string
	jobs        map[string]*job
	order       []string // submission order = report order
	queue       []string // cells wanting a lease, FIFO; requeues go to the back
	jnl         *harness.Journal
	cancelled   bool
	done        int
	failed      int
	requeues    int
	corrupt     int
	spotChecks  int

	// Observability: the bounded span store, the heartbeat-delta progress
	// accumulators, the aggregate cycle-rate EWMA, and its time series.
	trace      *obs.Trace
	simCycles  uint64
	simCommits uint64
	cycleRate  float64
	rateSeries *obs.Series
}

func (c *campaign) state() CampaignState {
	switch {
	case c.cancelled:
		return StateCancelled
	case c.done == len(c.order):
		return StateComplete
	case c.done+c.failed == len(c.order):
		return StateFailed
	default:
		return StateRunning
	}
}

// workerInfo is one agent's fleet-view row.
type workerInfo struct {
	name      string
	lastSeen  time.Time
	leases    int
	done      uint64
	failed    uint64
	lost      uint64
	corrupt   uint64  // attestation-digest rejections
	outvoted  uint64  // verification quorums lost
	cycleRate float64 // EWMA cycles/sec

	// Straggler analytics: the durations of the worker's closed lease spans
	// (milliseconds) and its last heartbeat-reported live heap.
	durations *obs.Digest
	heapMB    float64

	// quar is the fleet-level trust state machine (fault.Quarantine with
	// fleetTuning): healthy → clamped (results need corroboration) →
	// disabled (no leases, results rejected).
	quar *fault.Quarantine

	corruptCtr *telemetry.Counter // labeled per-worker corrupt counter
}

// Coordinator owns the multi-tenant lease state machine. All methods are
// safe for concurrent use; the HTTP server (server.go) is a thin layer
// over them.
type Coordinator struct {
	cfg CoordinatorConfig

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // campaign submission order (fair-share rotation)
	rr        int      // round-robin cursor into order
	workers   map[string]*workerInfo
	spot      *fault.Dice // seeded spot-check roller

	metrics *fleetMetrics
}

// fleetMetrics is the aggregate + per-worker telemetry surface.
type fleetMetrics struct {
	reg           *telemetry.Registry
	leasesGranted *telemetry.Counter
	heartbeats    *telemetry.Counter
	expiries      *telemetry.Counter
	requeues      *telemetry.Counter
	resultsOK     *telemetry.Counter
	resultsFailed *telemetry.Counter
	dedups        *telemetry.Counter
	corrupt       *telemetry.Counter
	quarantines   *telemetry.Counter
	spotChecks    *telemetry.Counter
	tiebreaks     *telemetry.Counter
	sheds         *telemetry.Counter
	campaignsLive *telemetry.Gauge
	jobsQueued    *telemetry.Gauge
	jobsLeased    *telemetry.Gauge
	quarantined   *telemetry.Gauge
	simCycles     *telemetry.Counter
	simCommits    *telemetry.Counter
}

// NewCoordinator builds a coordinator and, when JournalDir is set, reloads
// every persisted campaign from it (completed cells keep their journaled
// results after their attestation digests re-verify; queued and
// previously-leased cells are requeued; failed cells re-run with a fresh
// budget, mirroring local journal-resume semantics).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	co := &Coordinator{
		cfg:       cfg,
		campaigns: map[string]*campaign{},
		workers:   map[string]*workerInfo{},
		spot:      fault.NewDice(cfg.SpotCheckSeed),
	}
	if reg := cfg.Registry; reg != nil {
		co.metrics = &fleetMetrics{
			reg:           reg,
			leasesGranted: reg.Counter("mtvp_fabric_leases_granted_total", "job leases granted to workers"),
			heartbeats:    reg.Counter("mtvp_fabric_heartbeats_total", "lease heartbeats accepted"),
			expiries:      reg.Counter("mtvp_fabric_lease_expiries_total", "leases lost to heartbeat loss or expiry"),
			requeues:      reg.Counter("mtvp_fabric_requeues_total", "cells requeued after a lost lease or failure"),
			resultsOK:     reg.Counter("mtvp_fabric_results_ok_total", "successful cell results accepted"),
			resultsFailed: reg.Counter("mtvp_fabric_results_failed_total", "failed cell results reported"),
			dedups:        reg.Counter("mtvp_fabric_result_dedups_total", "double-completions deduped on job key"),
			corrupt:       reg.Counter("mtvp_fabric_results_corrupt_total", "results rejected for a missing or mismatching attestation digest"),
			quarantines:   reg.Counter("mtvp_fabric_quarantines_total", "workers disabled by the fleet trust quarantine"),
			spotChecks:    reg.Counter("mtvp_fabric_spot_checks_total", "cells escalated to redundant verification by the seeded spot-checker"),
			tiebreaks:     reg.Counter("mtvp_fabric_tiebreaks_total", "coordinator-local re-executions resolving vote disagreements"),
			sheds:         reg.Counter("mtvp_fabric_submits_shed_total", "campaign submissions shed by admission control (429)"),
			campaignsLive: reg.Gauge("mtvp_fabric_campaigns_running", "campaigns currently running"),
			jobsQueued:    reg.Gauge("mtvp_fabric_jobs_queued", "cells waiting for a lease across all campaigns"),
			jobsLeased:    reg.Gauge("mtvp_fabric_jobs_leased", "cell leases currently active across all campaigns"),
			quarantined:   reg.Gauge("mtvp_fabric_workers_quarantined", "workers currently disabled by the fleet trust quarantine"),
			simCycles:     reg.Counter("mtvp_fabric_sim_cycles_total", "simulated cycles accumulated from worker heartbeat deltas"),
			simCommits:    reg.Counter("mtvp_fabric_sim_commits_total", "useful committed instructions accumulated from worker heartbeat deltas"),
		}
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("fabric: journal dir: %w", err)
		}
		if err := co.reload(); err != nil {
			return nil, err
		}
	}
	return co, nil
}

func (co *Coordinator) now() time.Time {
	if co.cfg.Now != nil {
		return co.cfg.Now()
	}
	return time.Now()
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// CampaignID derives the deterministic campaign identity from a spec:
// resubmitting the same (name, fingerprint, job keys) — after a client
// retry or a coordinator restart — attaches to the existing campaign.
func CampaignID(spec CampaignSpec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", spec.Name, spec.Fingerprint)
	for _, j := range spec.Jobs {
		fmt.Fprintf(h, "%s\x00", j.Key)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Submit registers a campaign (idempotently: a spec with a known identity
// attaches to the existing campaign) and persists it when a journal
// directory is configured. Load beyond the admission limits is shed with
// an *OverloadError.
func (co *Coordinator) Submit(spec CampaignSpec) (SubmitResponse, error) {
	if spec.Name == "" || len(spec.Jobs) == 0 {
		return SubmitResponse{}, fmt.Errorf("fabric: campaign needs a name and at least one job")
	}
	seen := map[string]bool{}
	for _, j := range spec.Jobs {
		if j.Key == "" {
			return SubmitResponse{}, fmt.Errorf("fabric: campaign %q has a job with an empty key", spec.Name)
		}
		if seen[j.Key] {
			return SubmitResponse{}, fmt.Errorf("fabric: campaign %q has duplicate job key %q", spec.Name, j.Key)
		}
		seen[j.Key] = true
	}
	id := CampaignID(spec)

	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.campaigns[id]; ok {
		return SubmitResponse{ID: id, Attached: true}, nil
	}
	// Admission control. An attach above never sheds — it adds no load.
	if err := co.admitLocked(spec); err != nil {
		if co.metrics != nil {
			co.metrics.sheds.Inc()
		}
		co.logf("campaign %q shed by admission control: %v", spec.Name, err)
		return SubmitResponse{}, err
	}
	c, err := co.installLocked(id, spec, nil, nil)
	if err != nil {
		return SubmitResponse{}, err
	}
	if co.cfg.JournalDir != "" {
		if err := co.persistSpec(id, spec); err != nil {
			c.jnl.Close()
			os.Remove(co.journalPath(id))
			delete(co.campaigns, id)
			co.order = co.order[:len(co.order)-1]
			return SubmitResponse{}, err
		}
	}
	co.logf("campaign %s (%s): %d cells submitted", id, c.name, len(c.order))
	co.updateGaugesLocked()
	return SubmitResponse{ID: id}, nil
}

// admitLocked enforces the overload limits on a new (non-attaching) spec.
func (co *Coordinator) admitLocked(spec CampaignSpec) error {
	retry := co.cfg.leaseTTL()
	if lim := co.cfg.MaxCampaignsPerTenant; lim > 0 {
		n := 0
		for _, id := range co.order {
			c := co.campaigns[id]
			if c.name == spec.Name && c.state() == StateRunning {
				n++
			}
		}
		if n >= lim {
			return &OverloadError{
				Reason:     fmt.Sprintf("tenant %q already has %d running campaign(s), limit %d", spec.Name, n, lim),
				RetryAfter: retry,
			}
		}
	}
	if lim := co.cfg.MaxQueuedCells; lim > 0 {
		queued := 0
		for _, c := range co.campaigns {
			queued += len(c.queue)
		}
		if queued+len(spec.Jobs) > lim {
			return &OverloadError{
				Reason:     fmt.Sprintf("%d cells queued + %d submitted exceeds the %d-cell admission limit", queued, len(spec.Jobs), lim),
				RetryAfter: retry,
			}
		}
	}
	return nil
}

// installLocked builds the campaign state from a spec plus (on reload) the
// journaled records and span timelines, opens its journal, and queues the
// unfinished cells. Every cell gets its deterministic trace identity here;
// unfinished cells open their root and first queue spans, finished cells
// seed their journaled spans so crash-resume keeps the timeline.
func (co *Coordinator) installLocked(id string, spec CampaignSpec, prior map[string]*harness.Record, priorSpans map[string][]obs.Span) (*campaign, error) {
	now := co.now()
	c := &campaign{
		id:          id,
		name:        spec.Name,
		fingerprint: spec.Fingerprint,
		jobs:        map[string]*job{},
		trace:       obs.NewTrace(id, obs.DefaultSpanLimit(len(spec.Jobs))),
		rateSeries:  obs.NewSeries("cycle_rate", 0),
	}
	for _, s := range spec.Jobs {
		j := &job{
			spec:      s,
			leases:    map[string]*leaseInfo{},
			budget:    fault.NewBackoff(co.cfg.retries(), 64),
			needVotes: co.cfg.verifyK(),
			trace:     obs.TraceID(id, s.Key),
		}
		if rec := prior[s.Key]; rec != nil && rec.Status == harness.StatusDone && len(rec.Result) > 0 &&
			co.reverifyLocked(id, s, rec) {
			j.state = jobDone
			j.attempts = rec.Attempts
			j.result = append(json.RawMessage(nil), rec.Result...)
			j.digest = rec.Digest
			c.done++
			c.trace.Seed(priorSpans[s.Key])
		} else {
			c.queue = append(c.queue, s.Key)
			j.queued = true
			co.openCellSpansLocked(c, j, now)
		}
		c.jobs[s.Key] = j
		c.order = append(c.order, s.Key)
	}
	if co.cfg.JournalDir != "" {
		jnl, err := harness.OpenJournal(co.journalPath(id), spec.Name, spec.Fingerprint)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
	}
	co.campaigns[id] = c
	co.order = append(co.order, id)
	co.registerCampaignGauges(c)
	return c, nil
}

// openCellSpansLocked opens an unfinished cell's root span and its first
// queue span.
func (co *Coordinator) openCellSpansLocked(c *campaign, j *job, now time.Time) {
	root := obs.SpanID(j.trace, obs.KindCell, 0)
	c.trace.Start(obs.Span{
		Trace: j.trace, ID: root, Kind: obs.KindCell, Key: j.spec.Key, Start: now,
	})
	j.openQueue = obs.SpanID(j.trace, obs.KindQueue, j.attempts+1)
	c.trace.Start(obs.Span{
		Trace: j.trace, ID: j.openQueue, Parent: root, Kind: obs.KindQueue,
		Key: j.spec.Key, Attempt: j.attempts + 1, Start: now,
	})
}

// registerCampaignGauges exports the campaign's aggregate cycle rate as a
// labeled gauge (0 once the campaign leaves the running state).
func (co *Coordinator) registerCampaignGauges(c *campaign) {
	if co.metrics == nil {
		return
	}
	id := c.id
	co.metrics.reg.LabeledGaugeFunc("mtvp_fleet_campaign_cycle_rate",
		fmt.Sprintf("campaign=%q,id=%q", c.name, id),
		"campaign aggregate simulated-cycle rate (cycles/sec, EWMA over heartbeat deltas)",
		func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			c := co.campaigns[id]
			if c == nil || c.state() != StateRunning {
				return 0
			}
			return c.cycleRate
		})
}

// reverifyLocked re-checks a journaled record's attestation digest on
// reload. Records without a digest (pre-attestation journals, local
// campaigns) are accepted as-is; a record whose digest no longer matches
// its payload was corrupted at rest and its cell re-runs.
func (co *Coordinator) reverifyLocked(id string, spec JobSpec, rec *harness.Record) bool {
	if rec.Digest == "" {
		return true
	}
	if rec.Digest == ResultDigest(id, spec, rec.Result) {
		return true
	}
	co.logf("campaign %s: journaled result for %s fails attestation re-verification; cell will re-run", id, spec.Key)
	return false
}

func (co *Coordinator) specPath(id string) string {
	return filepath.Join(co.cfg.JournalDir, id+".spec.json")
}

func (co *Coordinator) journalPath(id string) string {
	return filepath.Join(co.cfg.JournalDir, id+".journal")
}

// persistSpec writes the campaign spec atomically (tmp + rename): a crash
// mid-submit leaves either a complete spec or none.
func (co *Coordinator) persistSpec(id string, spec CampaignSpec) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("fabric: marshal spec: %w", err)
	}
	tmp := co.specPath(id) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("fabric: persist spec: %w", err)
	}
	return os.Rename(tmp, co.specPath(id))
}

// reload restores every persisted campaign from the journal directory.
func (co *Coordinator) reload() error {
	ents, err := os.ReadDir(co.cfg.JournalDir)
	if err != nil {
		return fmt.Errorf("fabric: reload: %w", err)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".spec.json") {
			names = append(names, n)
		}
	}
	sort.Strings(names) // deterministic reload order
	for _, n := range names {
		id := strings.TrimSuffix(n, ".spec.json")
		b, err := os.ReadFile(filepath.Join(co.cfg.JournalDir, n))
		if err != nil {
			return fmt.Errorf("fabric: reload %s: %w", n, err)
		}
		var spec CampaignSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("fabric: reload %s: corrupt spec: %w", n, err)
		}
		prior, priorSpans, warns, err := harness.LoadJournalFull(co.journalPath(id), spec.Fingerprint)
		if err != nil {
			return fmt.Errorf("fabric: reload %s: %w", n, err)
		}
		for _, w := range warns {
			co.logf("%s", w)
		}
		c, err := co.installLocked(id, spec, prior, priorSpans)
		if err != nil {
			return err
		}
		co.logf("campaign %s (%s): reloaded, %d/%d cells already done",
			id, c.name, c.done, len(c.order))
	}
	co.updateGaugesLocked()
	return nil
}

// wantingLocked is how many more leases a cell should be granted: votes it
// still needs, minus votes already cast by trusted workers, minus leases in
// flight.
func (co *Coordinator) wantingLocked(j *job) int {
	if j.state != jobPending {
		return 0
	}
	trusted := 0
	for _, v := range j.votes {
		if w := co.workers[v.worker]; w == nil || w.quar.State() != fault.QDisabled {
			trusted++
		}
	}
	return j.needVotes - trusted - len(j.leases)
}

// enqueueLocked lists a cell in its campaign queue if it wants more leases
// and is not already listed, opening a queue span for the new wait.
func (co *Coordinator) enqueueLocked(c *campaign, j *job, key string) {
	if j.state == jobPending && !j.queued && co.wantingLocked(j) > 0 {
		c.queue = append(c.queue, key)
		j.queued = true
		if j.openQueue == "" {
			j.openQueue = obs.SpanID(j.trace, obs.KindQueue, j.attempts+1)
			c.trace.Start(obs.Span{
				Trace: j.trace, ID: j.openQueue,
				Parent: obs.SpanID(j.trace, obs.KindCell, 0),
				Kind:   obs.KindQueue, Key: key, Attempt: j.attempts + 1,
				Start: co.now(),
			})
		}
	}
}

// dequeueLocked delists a cell from its campaign queue.
func (co *Coordinator) dequeueLocked(c *campaign, j *job, key string) {
	if j.queued {
		c.queue = removeKey(c.queue, key)
		j.queued = false
	}
}

// removeKey drops the first occurrence of key from q in place.
func removeKey(q []string, key string) []string {
	for i, k := range q {
		if k == key {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Lease grants the next cell to worker, fair-share round-robin across
// running campaigns. ok is false when no work is queued for this worker —
// including when the worker is trust-quarantined, which gets no work at
// all. Under -verify k a cell is never leased twice to the same worker.
func (co *Coordinator) Lease(worker string) (Lease, bool) {
	if worker == "" {
		return Lease{}, false
	}
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	w := co.touchWorkerLocked(worker, now)
	if w.quar.State() == fault.QDisabled {
		return Lease{}, false
	}
	// Round-robin by campaign: start at the cursor, take the first
	// campaign with leasable work for THIS worker, advance the cursor past
	// it.
	for i := 0; i < len(co.order); i++ {
		c := co.campaigns[co.order[(co.rr+i)%len(co.order)]]
		if c.cancelled {
			continue
		}
		j, key := co.pickLocked(c, worker)
		if j == nil {
			continue
		}
		co.rr = (co.rr + i + 1) % len(co.order)
		j.attempts++
		// Spans: the wait is over — close the open queue span and open the
		// lease span for this attempt, parented under the cell root.
		if j.openQueue != "" {
			c.trace.End(j.openQueue, now, obs.StatusOK)
			j.openQueue = ""
		}
		spanID := obs.SpanID(j.trace, obs.KindLease, j.attempts)
		c.trace.Start(obs.Span{
			Trace: j.trace, ID: spanID,
			Parent: obs.SpanID(j.trace, obs.KindCell, 0),
			Kind:   obs.KindLease, Key: key, Worker: worker,
			Attempt: j.attempts, Start: now,
		})
		j.leases[worker] = &leaseInfo{
			expiry:     now.Add(co.cfg.leaseTTL()),
			lastBeatAt: now,
			attempt:    j.attempts,
			spanID:     spanID,
			granted:    now,
		}
		if co.wantingLocked(j) <= 0 {
			co.dequeueLocked(c, j, key)
		}
		w.leases++
		if co.metrics != nil {
			co.metrics.leasesGranted.Inc()
		}
		co.updateGaugesLocked()
		return Lease{
			Campaign:       c.id,
			Spec:           j.spec,
			TTL:            co.cfg.leaseTTL(),
			HeartbeatEvery: co.cfg.leaseTTL() / 3,
			Trace:          j.trace,
			Span:           spanID,
			Attempt:        j.attempts,
		}, true
	}
	return Lease{}, false
}

// pickLocked scans a campaign's queue for the first cell leasable by
// worker, dropping stale entries as it goes. A cell the worker already
// voted on or already holds a lease for is skipped but stays queued for
// other workers; a cell that still wants further leases after this one is
// rotated to the back of the queue.
func (co *Coordinator) pickLocked(c *campaign, worker string) (*job, string) {
	for idx := 0; idx < len(c.queue); {
		key := c.queue[idx]
		j := c.jobs[key]
		if j.state != jobPending || co.wantingLocked(j) <= 0 {
			// Stale entry: the cell reached a terminal state or collected
			// its leases while still listed. Never re-lease it.
			j.queued = false
			c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
			continue
		}
		if j.voted(worker) || j.leases[worker] != nil {
			idx++ // ineligible for this worker, fine for others
			continue
		}
		if co.wantingLocked(j) > 1 {
			// Still wants more after this grant: rotate to the back so
			// sibling cells get their first lease ahead of its second.
			c.queue = append(append(c.queue[:idx], c.queue[idx+1:]...), key)
		}
		return j, key
	}
	return nil, ""
}

// Heartbeat extends a lease and feeds the fleet view. ok is false when the
// worker no longer owns the lease (expired and requeued, already completed
// by someone else, campaign cancelled, worker quarantined): the worker
// should abandon the cell.
func (co *Coordinator) Heartbeat(req HeartbeatRequest) bool {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	w := co.touchWorkerLocked(req.Worker, now)
	if w == nil || w.quar.State() == fault.QDisabled {
		return false
	}
	c := co.campaigns[req.Campaign]
	if c == nil || c.cancelled {
		return false
	}
	j := c.jobs[req.Key]
	if j == nil || j.state != jobPending {
		return false
	}
	li := j.leases[req.Worker]
	if li == nil {
		return false
	}
	li.expiry = now.Add(co.cfg.leaseTTL())
	if req.HeapMB > 0 {
		w.heapMB = req.HeapMB
	}
	dt := now.Sub(li.lastBeatAt).Seconds()
	switch {
	case req.Seq != 0 && req.Seq <= li.lastSeq:
		// Duplicate delivery (retry, chaos proxy): the lease extends but the
		// deltas were already folded — folding again would double-count.
	case req.Seq != 0:
		// Delta protocol: fold the simulated progress accumulated since the
		// last *acked* heartbeat into the campaign and fleet accumulators,
		// exactly once per Seq. A lost ack makes the worker re-send an
		// overlapping delta under a fresh Seq; clamping against the absolute
		// counters (monotonic within a lease) keeps the fold exact.
		li.lastSeq = req.Seq
		dc, dm := req.DCycles, req.DCommits
		if req.Cycles >= li.foldedCycles && dc > req.Cycles-li.foldedCycles {
			dc = req.Cycles - li.foldedCycles
		}
		if req.Commits >= li.foldedCommits && dm > req.Commits-li.foldedCommits {
			dm = req.Commits - li.foldedCommits
		}
		li.foldedCycles += dc
		li.foldedCommits += dm
		c.simCycles += dc
		c.simCommits += dm
		if co.metrics != nil {
			co.metrics.simCycles.Add(dc)
			co.metrics.simCommits.Add(dm)
		}
		if li.spanID != "" && (dc > 0 || dm > 0) {
			c.trace.Update(li.spanID, func(s *obs.Span) {
				s.Cycles += dc
				s.Commits += dm
			})
		}
		if dt > 0 && li.everBeaten {
			inst := float64(dc) / dt
			if w.cycleRate == 0 {
				w.cycleRate = inst
			} else {
				w.cycleRate = 0.75*w.cycleRate + 0.25*inst
			}
			if c.cycleRate == 0 {
				c.cycleRate = inst
			} else {
				c.cycleRate = 0.75*c.cycleRate + 0.25*inst
			}
			c.rateSeries.Add(now, c.cycleRate)
		}
	default:
		// Legacy worker (no Seq): derive the rate from absolute counters.
		if dt > 0 && li.everBeaten && req.Cycles >= li.lastCycles {
			inst := float64(req.Cycles-li.lastCycles) / dt
			if w.cycleRate == 0 {
				w.cycleRate = inst
			} else {
				w.cycleRate = 0.75*w.cycleRate + 0.25*inst
			}
		}
	}
	li.lastCycles = req.Cycles
	li.lastBeatAt = now
	li.everBeaten = true
	if co.metrics != nil {
		co.metrics.heartbeats.Inc()
	}
	return true
}

// dropLeaseLocked removes worker's lease on j (the job's next state is the
// caller's business). It reports whether a lease was held.
func (co *Coordinator) dropLeaseLocked(j *job, worker string) bool {
	if j.leases[worker] == nil {
		return false
	}
	delete(j.leases, worker)
	if w := co.workers[worker]; w != nil && w.leases > 0 {
		w.leases--
	}
	return true
}

// revokeLeaseLocked is dropLeaseLocked plus observability: it closes the
// lease's span with the revocation's status and note and feeds the lease
// duration into the worker's straggler digest. Every lease-ending path goes
// through here except campaign cancellation (EndOpen closes those spans
// wholesale).
func (co *Coordinator) revokeLeaseLocked(c *campaign, j *job, worker, status, note string) bool {
	li := j.leases[worker]
	if li == nil {
		return false
	}
	now := co.now()
	if li.spanID != "" {
		c.trace.Update(li.spanID, func(s *obs.Span) {
			if !s.End.IsZero() {
				return
			}
			s.End = now
			s.Status = status
			if note != "" {
				s.Note = note
			}
		})
		if d := now.Sub(li.granted); d > 0 {
			if w := co.workers[worker]; w != nil {
				if w.durations == nil {
					w.durations = obs.NewDigest(1024)
				}
				w.durations.Add(float64(d) / float64(time.Millisecond))
			}
		}
	}
	return co.dropLeaseLocked(j, worker)
}

// Result records a cell's terminal outcome. Successful results must carry
// a valid attestation digest; they are then recorded as votes and the cell
// completes once a digest reaches a majority of the cell's needed votes
// (immediately, with verification off). Corrupt results are rejected
// without reaching the journal and without charging the cell's retry
// budget, and count against the worker's fleet trust. Failures spend the
// cell's requeue budget.
func (co *Coordinator) Result(req ResultRequest) (ResultResponse, error) {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	w := co.touchWorkerLocked(req.Worker, now)
	c := co.campaigns[req.Campaign]
	if c == nil {
		return ResultResponse{}, fmt.Errorf("fabric: unknown campaign %q", req.Campaign)
	}
	j := c.jobs[req.Key]
	if j == nil {
		return ResultResponse{}, fmt.Errorf("fabric: campaign %s has no job %q", req.Campaign, req.Key)
	}
	if c.cancelled {
		return ResultResponse{Accepted: false}, nil
	}
	if req.Released {
		// Voluntary handback (draining worker): requeue at no budget cost.
		if j.state == jobPending && co.revokeLeaseLocked(c, j, req.Worker, obs.StatusReleased, "released by draining worker") {
			co.enqueueLocked(c, j, req.Key)
			c.requeues++
			if co.metrics != nil {
				co.metrics.requeues.Inc()
			}
			co.logf("campaign %s: %s released by draining worker %s, requeued", c.id, req.Key, req.Worker)
			co.updateGaugesLocked()
			return ResultResponse{Accepted: true}, nil
		}
		return ResultResponse{Accepted: false}, nil
	}
	if req.OK {
		resp := co.voteLocked(c, j, w, req)
		co.updateGaugesLocked()
		return resp, nil
	}

	// Failures are only accepted from a current lease holder: a stale
	// report from an expired lease must not spend the budget of — or
	// double-requeue — a cell another worker now owns.
	if j.state != jobPending || !co.revokeLeaseLocked(c, j, req.Worker, obs.StatusError, req.Error) {
		return ResultResponse{Accepted: false}, nil
	}
	kind := req.FailKind
	if kind == "" {
		kind = harness.FailError
	}
	if w != nil {
		w.failed++
	}
	if co.metrics != nil {
		co.metrics.resultsFailed.Inc()
	}
	co.failOrRequeueLocked(c, j, req.Key, req.Worker, harness.JobFailure{
		Key: req.Key, Seed: j.spec.Seed, Kind: kind,
		Attempts: j.attempts, Err: req.Error,
	})
	co.updateGaugesLocked()
	return ResultResponse{Accepted: true}, nil
}

// voteLocked processes one successful, digest-carrying result report.
func (co *Coordinator) voteLocked(c *campaign, j *job, w *workerInfo, req ResultRequest) ResultResponse {
	// A quarantined worker's word is worth nothing, not even a dedup.
	if w == nil || w.quar.State() == fault.QDisabled {
		co.logf("campaign %s: rejected result for %s from quarantined worker %q", c.id, req.Key, req.Worker)
		return ResultResponse{Accepted: false}
	}

	// Attestation: recompute the canonical digest over the bytes received
	// against the spec handed out. A mismatch (or a missing digest) means
	// the payload is not provably the simulator's output for this cell —
	// reject it before it can touch the journal, requeue the cell at no
	// budget cost, and strike the worker's trust.
	if want := ResultDigest(c.id, j.spec, req.Result); req.Digest != want {
		c.corrupt++
		w.corrupt++
		if w.corruptCtr != nil {
			w.corruptCtr.Inc()
		}
		if co.metrics != nil {
			co.metrics.corrupt.Inc()
		}
		co.logf("campaign %s: CORRUPT result for %s from %q (digest %.24q, want %.24q)",
			c.id, req.Key, req.Worker, req.Digest, want)
		if co.revokeLeaseLocked(c, j, req.Worker, obs.StatusCorrupt, "attestation digest mismatch") {
			co.enqueueLocked(c, j, req.Key)
			c.requeues++
			if co.metrics != nil {
				co.metrics.requeues.Inc()
			}
		}
		co.strikeLocked(w, "corrupt result for "+req.Key)
		return ResultResponse{Accepted: false}
	}

	if j.state == jobDone {
		// Double completion: a worker we presumed dead finished anyway. A
		// matching digest is a benign race; a differing digest means this
		// worker disagrees with an accepted quorum — strike it.
		if req.Digest != j.digest && j.digest != "" {
			w.outvoted++
			co.strikeLocked(w, "late disagreement on "+req.Key)
		}
		if co.metrics != nil {
			co.metrics.dedups.Inc()
		}
		co.logf("campaign %s: deduped double completion of %s from %s", c.id, req.Key, req.Worker)
		return ResultResponse{Accepted: false}
	}
	if j.voted(req.Worker) {
		if co.metrics != nil {
			co.metrics.dedups.Inc()
		}
		return ResultResponse{Accepted: false}
	}

	// Spans: stitch the worker's execution under the coordinator's lease
	// span (flow across the process boundary), record the report delivery as
	// an instant, and close the lease. A late report whose lease already
	// expired gets no execute span — its lease timeline ended at expiry.
	now := co.now()
	attempt := 0
	if li := j.leases[req.Worker]; li != nil {
		attempt = li.attempt
		start := li.granted
		var cyc, com uint64
		if req.Exec != nil {
			// The worker reports its own wall duration; clamp the span into
			// the lease window so a skewed worker clock cannot place the
			// execution before its grant.
			if d := time.Duration(req.Exec.DurMS * float64(time.Millisecond)); d > 0 {
				if s := now.Add(-d); s.After(start) {
					start = s
				}
			}
			cyc, com = req.Exec.Cycles, req.Exec.Commits
			// Fold the residual progress the heartbeats never carried (a
			// cell faster than the beat interval heartbeats zero times);
			// the fold stays exactly-once through the same clamp the
			// delta protocol uses.
			if dc := cyc - li.foldedCycles; cyc >= li.foldedCycles && dc > 0 {
				li.foldedCycles = cyc
				c.simCycles += dc
				if co.metrics != nil {
					co.metrics.simCycles.Add(dc)
				}
			}
			if dm := com - li.foldedCommits; com >= li.foldedCommits && dm > 0 {
				li.foldedCommits = com
				c.simCommits += dm
				if co.metrics != nil {
					co.metrics.simCommits.Add(dm)
				}
			}
		}
		c.trace.Start(obs.Span{
			Trace: j.trace, ID: obs.SpanID(j.trace, obs.KindExecute, attempt),
			Parent: li.spanID, Kind: obs.KindExecute, Key: req.Key,
			Worker: req.Worker, Attempt: attempt,
			Start: start, End: now, Status: obs.StatusOK,
			Cycles: cyc, Commits: com,
		})
		c.trace.Start(obs.Span{
			Trace: j.trace, ID: obs.SpanID(j.trace, obs.KindReport, attempt),
			Parent: li.spanID, Kind: obs.KindReport, Key: req.Key,
			Worker: req.Worker, Attempt: attempt,
			Start: now, End: now, Status: obs.StatusOK,
		})
	}
	co.revokeLeaseLocked(c, j, req.Worker, obs.StatusOK, "")
	j.votes = append(j.votes, vote{
		worker:  req.Worker,
		digest:  req.Digest,
		result:  append(json.RawMessage(nil), req.Result...),
		attempt: attempt,
	})
	// A clamped (suspect) worker's solo word is not enough: raise the
	// cell's bar to two agreeing votes.
	if w.quar.State() == fault.QClamped && j.needVotes < 2 {
		j.needVotes = 2
		co.logf("campaign %s: %s reported by suspect worker %q, requiring corroboration", c.id, req.Key, req.Worker)
	}
	// Seeded spot-check: even a trusted fleet gets audited. Roll once per
	// cell, at its first vote, so the audit re-leases completed work.
	if !j.spotRolled && co.cfg.SpotCheckPPM > 0 {
		j.spotRolled = true
		if j.needVotes < 2 && co.spot.Roll(co.cfg.SpotCheckPPM) {
			j.needVotes = 2
			c.spotChecks++
			if co.metrics != nil {
				co.metrics.spotChecks.Inc()
			}
			co.logf("campaign %s: spot-checking %s (re-leasing for a confirming vote)", c.id, req.Key)
		}
	}
	// Spans: under verification (k>1, a suspect's corroboration bar, or a
	// spot check) the vote collection gets a verify span with one instant
	// per vote cast.
	if j.needVotes > 1 {
		verifyID := obs.SpanID(j.trace, obs.KindVerify, 0)
		if !j.verifyOpen {
			j.verifyOpen = true
			c.trace.Start(obs.Span{
				Trace: j.trace, ID: verifyID,
				Parent: obs.SpanID(j.trace, obs.KindCell, 0),
				Kind:   obs.KindVerify, Key: req.Key, Start: now,
			})
		}
		c.trace.Start(obs.Span{
			Trace: j.trace, ID: obs.SpanID(j.trace, obs.KindVote, len(j.votes)),
			Parent: verifyID, Kind: obs.KindVote, Key: req.Key,
			Worker: req.Worker, Attempt: len(j.votes),
			Start: now, End: now, Status: obs.StatusOK,
			Note: fmt.Sprintf("digest %.16s", req.Digest),
		})
	}
	co.settleLocked(c, j, req.Key)
	return ResultResponse{Accepted: true}
}

// settleLocked examines a pending cell's votes: finalize on majority,
// escalate on full-house disagreement, or keep collecting.
func (co *Coordinator) settleLocked(c *campaign, j *job, key string) {
	digest, count, trusted := co.tallyLocked(j)
	quorum := j.needVotes/2 + 1
	if count >= quorum {
		co.finalizeLocked(c, j, key, digest, nil)
		return
	}
	if trusted >= j.needVotes {
		// Every wanted vote is in and none has a majority: a byzantine
		// disagreement. The coordinator-local tiebreaker decides if
		// configured; otherwise widen the electorate one worker per round,
		// paced by the cell's retry budget.
		switch {
		case co.cfg.LocalRun != nil && j.state != jobTiebreak:
			j.state = jobTiebreak
			co.dequeueLocked(c, j, key)
			if co.metrics != nil {
				co.metrics.tiebreaks.Inc()
			}
			co.logf("campaign %s: vote disagreement on %s, running local tiebreak", c.id, key)
			go co.runTiebreak(c.id, key, j.spec)
		case j.budget.Allow():
			j.needVotes++
			c.requeues++
			if co.metrics != nil {
				co.metrics.requeues.Inc()
			}
			co.logf("campaign %s: vote disagreement on %s, widening electorate to %d", c.id, key, j.needVotes)
			co.enqueueLocked(c, j, key)
		default:
			co.failLocked(c, j, key, harness.JobFailure{
				Key: key, Seed: j.spec.Seed, Kind: FailNoQuorum,
				Attempts: j.attempts,
				Err:      fmt.Sprintf("%d attestation votes, no digest reached the %d-vote quorum", trusted, quorum),
			}, "")
		}
		return
	}
	co.enqueueLocked(c, j, key)
}

// tallyLocked counts votes per digest, ignoring votes cast by workers that
// have since been quarantined. It returns the leading digest (first to
// reach its count, deterministically), its count, and the trusted total.
func (co *Coordinator) tallyLocked(j *job) (top string, topCount, trusted int) {
	counts := map[string]int{}
	var order []string
	for _, v := range j.votes {
		if w := co.workers[v.worker]; w != nil && w.quar.State() == fault.QDisabled {
			continue
		}
		trusted++
		counts[v.digest]++
		if counts[v.digest] == 1 {
			order = append(order, v.digest)
		}
	}
	for _, d := range order {
		if counts[d] > topCount {
			top, topCount = d, counts[d]
		}
	}
	return top, topCount, trusted
}

// finalizeLocked completes a cell on the winning digest. result overrides
// the payload (the tiebreaker's local bytes); nil selects the first vote
// matching the digest — byte-identical to any other matching vote, since
// the digest covers the payload. Voters on the winning side earn trust
// credit; voters on any other digest are outvoted and struck.
func (co *Coordinator) finalizeLocked(c *campaign, j *job, key, digest string, result json.RawMessage) {
	now := co.now()
	var winner string
	winningAttempt := 0
	for _, v := range j.votes {
		if v.digest == digest {
			if result == nil {
				result = v.result
			}
			if winner == "" {
				winner = v.worker
				winningAttempt = v.attempt
			}
			break
		}
	}
	if winner == "" {
		winner = "coordinator" // tiebreak-only quorum: the local run decided
	}
	// Revoke leases still in flight; their late reports dedup against the
	// accepted digest.
	for wname := range j.leases {
		co.revokeLeaseLocked(c, j, wname, obs.StatusReleased, "superseded by accepted quorum")
	}
	co.dequeueLocked(c, j, key)
	if j.openQueue != "" {
		c.trace.End(j.openQueue, now, obs.StatusOK)
		j.openQueue = ""
	}
	if j.state == jobFailed {
		// Budget exhausted earlier, but a quorum formed anyway: revive the
		// cell (the journal's latest-record-wins reload agrees).
		c.failed--
		co.logf("campaign %s: late quorum revived failed cell %s", c.id, key)
	}
	j.state = jobDone
	j.result = append(json.RawMessage(nil), result...)
	j.digest = digest
	j.failure = nil
	c.done++
	c.jnl.Done(key, j.attempts, json.RawMessage(j.result), winner, digest)
	// Spans: mark the winning attempt's path Final, close the verify span
	// and cell root, record the checkpoint write as an instant, and persist
	// the finished timeline through the journal so crash-resume reconstructs
	// it.
	markFinal := func(kind obs.Kind, attempt int) {
		c.trace.Update(obs.SpanID(j.trace, kind, attempt), func(s *obs.Span) { s.Final = true })
	}
	rootID := obs.SpanID(j.trace, obs.KindCell, 0)
	if winningAttempt > 0 {
		markFinal(obs.KindQueue, winningAttempt)
		markFinal(obs.KindLease, winningAttempt)
		markFinal(obs.KindExecute, winningAttempt)
		markFinal(obs.KindReport, winningAttempt)
	}
	if j.verifyOpen {
		c.trace.End(obs.SpanID(j.trace, obs.KindVerify, 0), now, obs.StatusOK)
		markFinal(obs.KindVerify, 0)
	}
	c.trace.Start(obs.Span{
		Trace: j.trace, ID: obs.SpanID(j.trace, obs.KindJournal, 0),
		Parent: rootID, Kind: obs.KindJournal, Key: key,
		Start: now, End: now, Status: obs.StatusOK, Final: true,
	})
	c.trace.End(rootID, now, obs.StatusOK)
	markFinal(obs.KindCell, 0)
	c.jnl.Spans(key, c.trace.CellSpans(key))
	for _, v := range j.votes {
		w := co.workers[v.worker]
		if w == nil {
			continue
		}
		if v.digest == digest {
			w.done++
			co.creditLocked(w)
		} else {
			w.outvoted++
			co.strikeLocked(w, "outvoted on "+key)
		}
	}
	if co.metrics != nil {
		co.metrics.resultsOK.Inc()
	}
}

// runTiebreak re-executes a disputed cell locally and resolves its quorum
// with the authoritative digest. Runs outside the coordinator lock — a
// simulation can take minutes and heartbeats must keep flowing.
func (co *Coordinator) runTiebreak(campaignID, key string, spec JobSpec) {
	result, err := co.cfg.LocalRun(context.Background(), spec, nil)
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[campaignID]
	if c == nil || c.cancelled {
		return
	}
	j := c.jobs[key]
	if j == nil || j.state != jobTiebreak {
		return
	}
	if err != nil {
		co.failLocked(c, j, key, harness.JobFailure{
			Key: key, Seed: spec.Seed, Kind: FailTiebreak,
			Attempts: j.attempts,
			Err:      fmt.Sprintf("local tiebreak re-execution failed: %v", err),
		}, "coordinator")
		co.updateGaugesLocked()
		return
	}
	digest := ResultDigest(campaignID, spec, result)
	co.logf("campaign %s: local tiebreak for %s decided digest %.24q", campaignID, key, digest)
	co.finalizeLocked(c, j, key, digest, result)
	co.updateGaugesLocked()
}

// strikeLocked charges one trust strike against a worker, escalating its
// quarantine level when the score crosses a threshold.
func (co *Coordinator) strikeLocked(w *workerInfo, why string) {
	if w == nil {
		return
	}
	was := w.quar.State()
	w.quar.OnWrong()
	if st := w.quar.State(); st != was {
		co.logf("worker %q trust degraded to %s after %s", w.name, st, why)
		if st == fault.QDisabled {
			co.quarantineWorkerLocked(w)
		}
	}
}

// creditLocked rewards a corroborated result, relaxing the worker's
// quarantine level with hysteresis.
func (co *Coordinator) creditLocked(w *workerInfo) {
	if w == nil {
		return
	}
	was := w.quar.State()
	if w.quar.OnCorrect() {
		co.logf("worker %q trust recovered from %s to %s", w.name, was, w.quar.State())
	}
}

// quarantineWorkerLocked revokes everything a freshly-disabled worker
// holds: its leases requeue at no budget cost (the worker is the fault,
// not the cells), and pending cells it voted on are re-opened for
// replacement votes.
func (co *Coordinator) quarantineWorkerLocked(w *workerInfo) {
	if co.metrics != nil {
		co.metrics.quarantines.Inc()
	}
	// A disabled worker's per-worker gauges come off the /metrics surface
	// (they re-register if its trust ever decays back); the aggregate
	// quarantined gauge keeps counting it.
	co.dropWorkerGauges(w.name)
	co.logf("worker %q QUARANTINED: leases revoked, votes discounted", w.name)
	for _, id := range co.order {
		c := co.campaigns[id]
		if c.cancelled {
			continue
		}
		for _, key := range c.order {
			j := c.jobs[key]
			if j.state != jobPending {
				continue
			}
			if co.revokeLeaseLocked(c, j, w.name, obs.StatusReleased, "worker quarantined") {
				c.requeues++
				if co.metrics != nil {
					co.metrics.requeues.Inc()
				}
			}
			co.enqueueLocked(c, j, key)
		}
	}
}

// failOrRequeueLocked spends the cell's requeue budget: requeue while it
// lasts, mark failed once exhausted. worker is the agent the failure is
// attributed to in the journal.
func (co *Coordinator) failOrRequeueLocked(c *campaign, j *job, key, worker string, f harness.JobFailure) {
	if j.budget.Allow() {
		co.enqueueLocked(c, j, key)
		c.requeues++
		if co.metrics != nil {
			co.metrics.requeues.Inc()
		}
		co.logf("campaign %s: requeued %s after %s (%s), attempt %d", c.id, key, f.Kind, f.Err, f.Attempts)
		return
	}
	co.failLocked(c, j, key, f, worker)
}

// failLocked marks a cell permanently failed.
func (co *Coordinator) failLocked(c *campaign, j *job, key string, f harness.JobFailure, worker string) {
	now := co.now()
	for wname := range j.leases {
		co.revokeLeaseLocked(c, j, wname, obs.StatusReleased, "cell failed")
	}
	co.dequeueLocked(c, j, key)
	j.state = jobFailed
	j.failure = &f
	c.failed++
	c.jnl.Failed(f, worker)
	// Spans: close the cell's open path as failed, record the checkpoint
	// write, and persist the timeline.
	if j.openQueue != "" {
		c.trace.End(j.openQueue, now, obs.StatusFailed)
		j.openQueue = ""
	}
	if j.verifyOpen {
		c.trace.End(obs.SpanID(j.trace, obs.KindVerify, 0), now, obs.StatusFailed)
	}
	rootID := obs.SpanID(j.trace, obs.KindCell, 0)
	c.trace.Start(obs.Span{
		Trace: j.trace, ID: obs.SpanID(j.trace, obs.KindJournal, 0),
		Parent: rootID, Kind: obs.KindJournal, Key: key,
		Start: now, End: now, Status: obs.StatusOK, Final: true,
	})
	c.trace.Update(rootID, func(s *obs.Span) {
		if s.End.IsZero() {
			s.End = now
			s.Status = obs.StatusFailed
			s.Note = fmt.Sprintf("%s: %s", f.Kind, f.Err)
		}
	})
	c.jnl.Spans(key, c.trace.CellSpans(key))
	co.logf("campaign %s: %s FAILED permanently: %s", c.id, key, f.Err)
}

// ExpireLeases requeues every lease whose heartbeat deadline has passed —
// the worker-loss detector — decays worker trust scores, and prunes
// long-silent idle workers from the fleet view (quarantined workers are
// kept: their record is the point). It returns how many leases expired.
// The server runs this on a ticker; tests call it directly with a fake
// clock.
func (co *Coordinator) ExpireLeases() int {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	expired := 0
	for _, id := range co.order {
		c := co.campaigns[id]
		for _, key := range c.order {
			j := c.jobs[key]
			if j.state != jobPending {
				continue
			}
			for wname, li := range j.leases {
				if now.Before(li.expiry) {
					continue
				}
				expired++
				if w := co.workers[wname]; w != nil {
					w.lost++
				}
				if co.metrics != nil {
					co.metrics.expiries.Inc()
				}
				co.revokeLeaseLocked(c, j, wname, obs.StatusExpired,
					fmt.Sprintf("no heartbeat from %q within %s", wname, co.cfg.leaseTTL()))
				co.failOrRequeueLocked(c, j, key, wname, harness.JobFailure{
					Key: key, Seed: j.spec.Seed, Kind: FailLostWorker,
					Attempts: j.attempts,
					Err:      fmt.Sprintf("lease on %s expired (no heartbeat from %q within %s)", key, wname, co.cfg.leaseTTL()),
				})
				if j.state != jobPending {
					break // the cell failed; remaining leases were revoked
				}
			}
		}
	}
	// Trust decay: one passive tick per scan walks quarantine scores back
	// down, so a disabled worker that was fixed and redeployed eventually
	// rehabilitates. A worker recovering from disabled gets its per-worker
	// gauges back (quarantine dropped them).
	for _, w := range co.workers {
		was := w.quar.State()
		if w.quar.Tick() {
			co.logf("worker %q trust decayed from %s to %s", w.name, was, w.quar.State())
			if was == fault.QDisabled && w.quar.State() != fault.QDisabled {
				co.registerWorkerGauges(w.name, w)
			}
		}
	}
	// Prune workers that hold nothing, have gone silent, and are in good
	// standing.
	for name, w := range co.workers {
		if w.leases == 0 && w.quar.State() == fault.QHealthy && now.Sub(w.lastSeen) > co.cfg.pruneAfter() {
			delete(co.workers, name)
			co.dropWorkerGauges(name)
		}
	}
	if expired > 0 {
		co.updateGaugesLocked()
	}
	return expired
}

// Status reports one campaign's live counters.
func (co *Coordinator) Status(id string) (CampaignStatus, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return CampaignStatus{}, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	return co.statusLocked(c), nil
}

func (co *Coordinator) statusLocked(c *campaign) CampaignStatus {
	leased := 0
	for _, j := range c.jobs {
		if len(j.leases) > 0 {
			leased++
		}
	}
	return CampaignStatus{
		ID:          c.id,
		Name:        c.name,
		Fingerprint: c.fingerprint,
		State:       c.state(),
		Total:       len(c.order),
		Queued:      len(c.queue),
		Leased:      leased,
		Done:        c.done,
		Failed:      c.failed,
		Requeues:    c.requeues,
		Corrupt:     c.corrupt,
		SpotChecks:  c.spotChecks,
	}
}

// List reports every campaign, in submission order.
func (co *Coordinator) List() []CampaignStatus {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]CampaignStatus, 0, len(co.order))
	for _, id := range co.order {
		out = append(out, co.statusLocked(co.campaigns[id]))
	}
	return out
}

// TraceSpans returns a campaign's display name and a snapshot of its span
// store for the Chrome/Perfetto trace export.
func (co *Coordinator) TraceSpans(id string) (string, []obs.Span, error) {
	co.mu.Lock()
	c := co.campaigns[id]
	co.mu.Unlock()
	if c == nil {
		return "", nil, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	return c.name, c.trace.Snapshot(), nil
}

// Timeline returns a campaign's span timeline, straggler report (k tail
// cells; <=0 selects the analyzer default), heartbeat-fed progress
// accumulators, and cycle-rate series.
func (co *Coordinator) Timeline(id string, k int) (CampaignTimeline, error) {
	co.mu.Lock()
	c := co.campaigns[id]
	if c == nil {
		co.mu.Unlock()
		return CampaignTimeline{}, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	tl := CampaignTimeline{
		ID:         c.id,
		Name:       c.name,
		State:      c.state(),
		CycleRate:  c.cycleRate,
		SimCycles:  c.simCycles,
		SimCommits: c.simCommits,
	}
	trace, series := c.trace, c.rateSeries
	co.mu.Unlock()
	// Snapshots take the trace/series locks only — no coordinator lock held.
	tl.Spans = trace.Snapshot()
	obs.SortCanonical(tl.Spans)
	tl.Dropped = trace.Dropped()
	tl.Report = obs.Analyze(tl.Spans, k, co.now())
	tl.Series = series.Snapshot()
	return tl, nil
}

// Results returns a campaign's per-key results (raw worker JSON) and the
// structured failures of cells that exhausted their budgets. Available at
// any time; callers that need completeness should check State first.
func (co *Coordinator) Results(id string) (CampaignResults, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return CampaignResults{}, fmt.Errorf("fabric: unknown campaign %q", id)
	}
	out := CampaignResults{
		ID:      c.id,
		State:   c.state(),
		Results: make(map[string]json.RawMessage, c.done),
	}
	for _, key := range c.order {
		j := c.jobs[key]
		switch j.state {
		case jobDone:
			out.Results[key] = append(json.RawMessage(nil), j.result...)
		case jobFailed:
			out.Failures = append(out.Failures, *j.failure)
		}
	}
	return out, nil
}

// Cancel stops a campaign: queued cells are dropped, running workers are
// told their leases are lost at the next heartbeat, and late results are
// ignored. Journaled completions are kept.
func (co *Coordinator) Cancel(id string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	c := co.campaigns[id]
	if c == nil {
		return fmt.Errorf("fabric: unknown campaign %q", id)
	}
	if !c.cancelled {
		c.cancelled = true
		c.queue = nil
		for _, j := range c.jobs {
			j.queued = false
			j.openQueue = ""
			for wname := range j.leases {
				co.dropLeaseLocked(j, wname)
			}
		}
		c.trace.EndOpen(co.now(), obs.StatusCancelled)
		co.logf("campaign %s (%s): cancelled", c.id, c.name)
	}
	co.updateGaugesLocked()
	return nil
}

// Fleet reports the live worker view, sorted by name.
func (co *Coordinator) Fleet() []WorkerStatus {
	now := co.now()
	co.mu.Lock()
	defer co.mu.Unlock()
	fleetMean := co.fleetMeanLocked()
	out := make([]WorkerStatus, 0, len(co.workers))
	for _, w := range co.workers {
		ws := WorkerStatus{
			Name:         w.name,
			Leases:       w.leases,
			HeartbeatAge: now.Sub(w.lastSeen),
			Done:         w.done,
			Failed:       w.failed,
			Lost:         w.lost,
			CycleRate:    w.cycleRate,
			Trust:        w.quar.State().String(),
			Corrupt:      w.corrupt,
			Outvoted:     w.outvoted,
			HeapMB:       w.heapMB,
		}
		if w.durations != nil && w.durations.Count() > 0 {
			ws.P50MS = w.durations.Quantile(0.50)
			ws.P99MS = w.durations.Quantile(0.99)
			ws.MeanMS = w.durations.Mean()
			if fleetMean > 0 {
				ws.Slowdown = ws.MeanMS / fleetMean
			}
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Close flushes and closes every campaign journal.
func (co *Coordinator) Close() {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range co.campaigns {
		c.jnl.Close()
		c.jnl = nil
	}
}

// touchWorkerLocked records contact from a worker, registering its
// per-worker fleet gauges on first sight.
func (co *Coordinator) touchWorkerLocked(name string, now time.Time) *workerInfo {
	if name == "" {
		return nil
	}
	w := co.workers[name]
	if w == nil {
		w = &workerInfo{name: name, quar: fault.NewQuarantineTuned(fleetTuning)}
		co.workers[name] = w
		co.registerWorkerGauges(name, w)
		co.logf("worker %q joined the fleet", name)
	}
	w.lastSeen = now
	return w
}

// registerWorkerGauges exports one worker's fleet row as labeled gauges.
// The gauge funcs read coordinator state at scrape time (the registry
// releases its own lock before calling them, so lock order is safe).
func (co *Coordinator) registerWorkerGauges(name string, w *workerInfo) {
	if co.metrics == nil {
		return
	}
	labels := fmt.Sprintf("worker=%q", name)
	read := func(f func(*workerInfo) float64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			w := co.workers[name]
			if w == nil {
				return 0
			}
			return f(w)
		}
	}
	reg := co.metrics.reg
	reg.LabeledGaugeFunc("mtvp_fleet_leases", labels,
		"cells currently leased to the worker",
		read(func(w *workerInfo) float64 { return float64(w.leases) }))
	reg.LabeledGaugeFunc("mtvp_fleet_heartbeat_age_seconds", labels,
		"seconds since the worker last contacted the coordinator",
		func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			w := co.workers[name]
			if w == nil {
				return 0
			}
			return co.now().Sub(w.lastSeen).Seconds()
		})
	reg.LabeledGaugeFunc("mtvp_fleet_jobs_done", labels,
		"cells the worker completed successfully",
		read(func(w *workerInfo) float64 { return float64(w.done) }))
	reg.LabeledGaugeFunc("mtvp_fleet_jobs_failed", labels,
		"cell failures the worker reported",
		read(func(w *workerInfo) float64 { return float64(w.failed) }))
	reg.LabeledGaugeFunc("mtvp_fleet_leases_lost", labels,
		"leases the worker lost to heartbeat expiry",
		read(func(w *workerInfo) float64 { return float64(w.lost) }))
	reg.LabeledGaugeFunc("mtvp_fleet_cycle_rate", labels,
		"recent simulated cycles per second (EWMA over heartbeats)",
		read(func(w *workerInfo) float64 { return w.cycleRate }))
	reg.LabeledGaugeFunc("mtvp_fleet_trust", labels,
		"fleet trust quarantine level (0 healthy, 1 clamped, 2 disabled)",
		read(func(w *workerInfo) float64 { return float64(w.quar.State()) }))
	reg.LabeledGaugeFunc("mtvp_fleet_p99_ms", labels,
		"p99 lease duration in milliseconds (straggler digest)",
		read(func(w *workerInfo) float64 {
			if w.durations == nil {
				return 0
			}
			return w.durations.Quantile(0.99)
		}))
	reg.LabeledGaugeFunc("mtvp_fleet_slowdown", labels,
		"worker mean lease duration relative to the fleet mean (1.0 = average)",
		read(func(w *workerInfo) float64 {
			fleet := co.fleetMeanLocked()
			if fleet <= 0 || w.durations == nil || w.durations.Count() == 0 {
				return 0
			}
			return w.durations.Mean() / fleet
		}))
	reg.LabeledGaugeFunc("mtvp_fleet_heap_mb", labels,
		"worker live heap in MiB (heartbeat-reported)",
		read(func(w *workerInfo) float64 { return w.heapMB }))
	w.corruptCtr = reg.LabeledCounter("mtvp_fleet_corrupt_results_total", labels,
		"results from the worker rejected for attestation-digest mismatch")
	// Re-registration after a quarantine recovery gets a fresh counter;
	// restore the worker's lifetime corrupt count so the series does not
	// restart at zero.
	if v := w.corruptCtr.Value(); v < w.corrupt {
		w.corruptCtr.Add(w.corrupt - v)
	}
}

// fleetMeanLocked is the fleet-wide mean closed-lease duration (ms),
// weighted by each worker's sample count.
func (co *Coordinator) fleetMeanLocked() float64 {
	var sum float64
	var n uint64
	for _, w := range co.workers {
		if w.durations == nil {
			continue
		}
		cnt := w.durations.Count()
		sum += w.durations.Mean() * float64(cnt)
		n += cnt
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// dropWorkerGauges retires a pruned worker's labeled gauges.
func (co *Coordinator) dropWorkerGauges(name string) {
	if co.metrics == nil {
		return
	}
	labels := fmt.Sprintf("worker=%q", name)
	for _, metric := range []string{
		"mtvp_fleet_leases", "mtvp_fleet_heartbeat_age_seconds",
		"mtvp_fleet_jobs_done", "mtvp_fleet_jobs_failed",
		"mtvp_fleet_leases_lost", "mtvp_fleet_cycle_rate",
		"mtvp_fleet_trust", "mtvp_fleet_p99_ms", "mtvp_fleet_slowdown",
		"mtvp_fleet_heap_mb", "mtvp_fleet_corrupt_results_total",
	} {
		co.metrics.reg.Unregister(metric, labels)
	}
}

// updateGaugesLocked refreshes the aggregate gauges.
func (co *Coordinator) updateGaugesLocked() {
	if co.metrics == nil {
		return
	}
	running, queued, leased := 0, 0, 0
	for _, c := range co.campaigns {
		if c.state() == StateRunning {
			running++
		}
		queued += len(c.queue)
		for _, j := range c.jobs {
			leased += len(j.leases)
		}
	}
	quarantined := 0
	for _, w := range co.workers {
		if w.quar.State() == fault.QDisabled {
			quarantined++
		}
	}
	co.metrics.campaignsLive.Set(int64(running))
	co.metrics.jobsQueued.Set(int64(queued))
	co.metrics.jobsLeased.Set(int64(leased))
	co.metrics.quarantined.Set(int64(quarantined))
}
