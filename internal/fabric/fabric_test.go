package fabric

// End-to-end tests: a real coordinator server, real worker agents, real
// HTTP in between. The RunFunc is a deterministic stand-in for the
// simulator (a pure function of the spec), which is exactly the property
// the fabric relies on for byte-identical reports.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"mtvp/internal/telemetry"
)

// detRun computes a result purely from the spec — the distributed analogue
// of the deterministic simulator.
func detRun(_ context.Context, spec JobSpec, progress func(uint64, uint64)) (json.RawMessage, error) {
	progress(spec.Seed*100, spec.Seed*10)
	return json.RawMessage(fmt.Sprintf(`{"key":%q,"ipc":%d.5}`, spec.Key, spec.Seed)), nil
}

func startServer(t *testing.T, cfg CoordinatorConfig, scfg ServerConfig) (*Coordinator, *Server) {
	t.Helper()
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Addr = "127.0.0.1:0"
	srv, err := NewServer(co, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); co.Close() })
	return co, srv
}

func startWorker(t *testing.T, url, token, name string, slots int, run RunFunc) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunWorker(ctx, WorkerConfig{
			Coordinator: url, Token: token, Name: name, Slots: slots,
			Poll: 10 * time.Millisecond, Run: run,
		})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("worker failed to drain")
		}
	})
	return cancel
}

// runCampaign submits spec, waits for it, and returns the canonical JSON
// encoding of the results payload (the "report bytes").
func runCampaign(t *testing.T, url, token string, spec CampaignSpec) (CampaignResults, []byte) {
	t.Helper()
	cl := NewClient(url, token)
	cl.Poll = 20 * time.Millisecond
	sub, err := cl.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cl.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Canonicalise: strip the campaign ID (scenarios use distinct names so
	// they can coexist on one coordinator) and marshal results + failures.
	// Go maps marshal with sorted keys, so this is deterministic.
	blob, err := json.Marshal(struct {
		Results  any `json:"results"`
		Failures any `json:"failures"`
	}{res.Results, res.Failures})
	if err != nil {
		t.Fatal(err)
	}
	return res, blob
}

func TestServerRejectsBadToken(t *testing.T) {
	_, srv := startServer(t, CoordinatorConfig{}, ServerConfig{Token: "sekrit"})

	for _, tc := range []struct {
		name, token string
		wantStatus  int
	}{
		{"no token", "", http.StatusUnauthorized},
		{"wrong token", "wrong", http.StatusUnauthorized},
		{"good token", "sekrit", http.StatusOK},
	} {
		cl := NewClient(srv.URL(), tc.token)
		req, _ := http.NewRequest(http.MethodGet, srv.URL()+PathFleet, nil)
		if cl.token != "" {
			req.Header.Set("Authorization", "Bearer "+cl.token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: got %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
	}

	// /healthz stays open (load balancers probe it unauthenticated).
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz must not require auth, got %d", resp.StatusCode)
	}
}

// The telemetry/profiling surface shares the listener with the API and must
// sit behind the same bearer token — pprof leaks cmdline and heap contents.
func TestDebugSurfaceRequiresAuth(t *testing.T) {
	_, srv := startServer(t,
		CoordinatorConfig{Registry: telemetry.NewRegistry()},
		ServerConfig{Token: "sekrit"})

	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s without token: got %d, want 401", path, resp.StatusCode)
		}

		req, _ := http.NewRequest(http.MethodGet, srv.URL()+path, nil)
		req.Header.Set("Authorization", "Bearer sekrit")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with token: got %d, want 200", path, resp.StatusCode)
		}
	}
}

// The worker-loss chaos test: the same campaign runs (a) on one worker,
// (b) on four workers, (c) on three workers plus a zombie that grabs
// leases and goes silent mid-cell. All three produce byte-identical
// results.
func TestWorkerLossYieldsByteIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	cfg := CoordinatorConfig{LeaseTTL: 300 * time.Millisecond, Retries: 5}
	scfg := ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond}

	spec := func(name string) CampaignSpec {
		s := CampaignSpec{Name: name, Fingerprint: "insts=3000 seed=1"}
		for i := 0; i < 10; i++ {
			s.Jobs = append(s.Jobs, JobSpec{
				Key:   fmt.Sprintf("chaos/bench-%02d/mtvp4", i),
				Bench: fmt.Sprintf("bench-%02d", i), Preset: "mtvp4", Seed: uint64(i),
			})
		}
		return s
	}

	// (a) One worker.
	_, srvA := startServer(t, cfg, scfg)
	startWorker(t, srvA.URL(), "t", "solo", 1, detRun)
	resA, blobA := runCampaign(t, srvA.URL(), "t", spec("solo-run"))
	if resA.State != StateComplete {
		t.Fatalf("solo run must complete: %+v", resA)
	}

	// (b) Four workers.
	_, srvB := startServer(t, cfg, scfg)
	for i := 0; i < 4; i++ {
		startWorker(t, srvB.URL(), "t", fmt.Sprintf("fleet-%d", i), 1, detRun)
	}
	_, blobB := runCampaign(t, srvB.URL(), "t", spec("fleet-run"))

	// (c) Three workers plus a zombie: before the survivors attach, the
	// zombie leases three cells over HTTP and goes silent — a hard-killed
	// process mid-lease. Lease expiry must recover every cell it swallowed
	// (the submit the client sends later attaches to this same campaign:
	// IDs are deterministic).
	coC, srvC := startServer(t, cfg, scfg)
	zcl := NewClient(srvC.URL(), "t")
	if _, err := zcl.Submit(context.Background(), spec("chaos-run")); err != nil {
		t.Fatal(err)
	}
	var swallowed int
	for i := 0; i < 3; i++ {
		var lease Lease
		if err := zcl.do(context.Background(), http.MethodPost, PathLease, LeaseRequest{Worker: "zombie"}, &lease); err != nil {
			t.Fatalf("zombie lease %d: %v", i, err)
		}
		swallowed++
	}
	for i := 0; i < 3; i++ {
		startWorker(t, srvC.URL(), "t", fmt.Sprintf("survivor-%d", i), 1, detRun)
	}
	resC, blobC := runCampaign(t, srvC.URL(), "t", spec("chaos-run"))
	if resC.State != StateComplete {
		t.Fatalf("chaos run must still complete: %+v", resC)
	}
	if swallowed != 3 {
		t.Fatalf("zombie swallowed %d leases, want 3", swallowed)
	}
	st, _ := coC.Status(CampaignID(spec("chaos-run")))
	if st.Requeues < 3 {
		t.Fatalf("the 3 swallowed leases must show up as requeues: %+v", st)
	}

	if string(blobA) != string(blobB) {
		t.Errorf("1-worker and 4-worker results differ:\n%s\n%s", blobA, blobB)
	}
	if string(blobA) != string(blobC) {
		t.Errorf("chaos results differ from solo results:\n%s\n%s", blobA, blobC)
	}
}

// A draining worker (context cancelled mid-cell, the SIGTERM path) hands
// its lease back without spending retry budget, and a successor finishes
// the cell.
func TestDrainingWorkerReleasesLease(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	co, srv := startServer(t, CoordinatorConfig{LeaseTTL: 5 * time.Second, Retries: 1},
		ServerConfig{ExpireEvery: 50 * time.Millisecond})
	sub, err := co.Submit(testSpec("drain", 1))
	if err != nil {
		t.Fatal(err)
	}

	// The first worker blocks until cancelled — it can only ever drain.
	started := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, _ JobSpec, _ func(uint64, uint64)) (json.RawMessage, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	cancel := startWorker(t, srv.URL(), "", "leaver", 1, blockRun)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the cell")
	}
	cancel() // SIGTERM analogue: drain

	// The handback must arrive as a release (requeue, no budget spent).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := co.Status(sub.ID)
		if st.Queued == 1 && st.Requeues == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never handed back: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := co.Status(sub.ID)
	if st.Failed != 0 {
		t.Fatalf("voluntary release must not spend budget: %+v", st)
	}

	// A successor picks it up and completes the campaign, despite the
	// Retries=1 budget (the release did not consume it).
	startWorker(t, srv.URL(), "", "successor", 1, detRun)
	for {
		st, _ := co.Status(sub.ID)
		if st.State == StateComplete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("successor never finished the cell: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A worker whose lease expires mid-run (coordinator presumed it dead, e.g.
// a network partition) is told so by its next heartbeat and abandons the
// cell instead of wasting the slot.
func TestHeartbeatRefusalAbandonsCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	clk := newFakeClock()
	co, srv := startServer(t, CoordinatorConfig{LeaseTTL: 200 * time.Millisecond, Retries: 2, Now: clk.now},
		ServerConfig{ExpireEvery: time.Hour}) // expiry driven manually below
	sub, err := co.Submit(testSpec("partition", 1))
	if err != nil {
		t.Fatal(err)
	}

	abandoned := make(chan struct{})
	slowRun := func(ctx context.Context, _ JobSpec, _ func(uint64, uint64)) (json.RawMessage, error) {
		<-ctx.Done() // never finishes on its own
		close(abandoned)
		return nil, ctx.Err()
	}
	startWorker(t, srv.URL(), "", "victim", 1, slowRun)

	// Wait for the lease, then expire it behind the worker's back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := co.Status(sub.ID)
		if st.Leased == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never leased the cell")
		}
		time.Sleep(10 * time.Millisecond)
	}
	clk.advance(time.Second)
	if n := co.ExpireLeases(); n != 1 {
		t.Fatalf("want 1 expiry, got %d", n)
	}

	// The worker's next heartbeat is refused and the run context cancelled.
	select {
	case <-abandoned:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never abandoned the lost lease")
	}
}
