// Package fabric is the distributed sweep service: a campaign coordinator
// that shards sweep cells across remote worker agents over HTTP/JSON, and
// the worker/client sides of that protocol.
//
// The design puts a network under robustness machinery the repo already
// trusts. Cells keep the stable job keys the local harness uses
// ("fig1/mcf/mtvp4"), which double as the idempotency token: a cell
// completed twice (a worker presumed dead that finished anyway) is deduped
// on key, first result wins. Every completion is persisted through the
// harness's fsynced JSONL journal, so a coordinator crash resumes without
// re-running finished cells, and reports assembled from the results are
// byte-identical regardless of worker count, worker deaths, or requeue
// order (the simulator is deterministic; ordering is by job key, never by
// completion).
//
// Work distribution is pull-based leasing, modeled on agent/ingest
// architectures: workers poll for a lease, run the cell, stream periodic
// heartbeats, and report the result. A lease whose heartbeat stops expires
// and the cell is requeued through a bounded fault.Backoff retry budget —
// worker loss is just another fault class. The coordinator is multi-tenant
// from day one: any number of campaigns run concurrently, leases are
// granted fair-share (round-robin by campaign), and the submit/query/
// cancel API is token-authenticated.
package fabric

import (
	"encoding/json"
	"time"

	"mtvp/internal/config"
	"mtvp/internal/harness"
	"mtvp/internal/obs"
)

// API routes (all under the coordinator's listener; every /api/v1 route
// requires the bearer token when one is configured).
const (
	PathCampaigns = "/api/v1/campaigns" // POST submit, GET list; /{id} GET status, DELETE cancel; /{id}/results, /{id}/timeline, /{id}/trace GET
	PathLease     = "/api/v1/lease"     // POST: worker pulls a job lease
	PathHeartbeat = "/api/v1/heartbeat" // POST: worker extends a lease
	PathResult    = "/api/v1/result"    // POST: worker reports a terminal outcome
	PathFleet     = "/api/v1/fleet"     // GET: live per-worker fleet view + straggler analytics
)

// JobSpec is one sweep cell in wire form: everything a remote worker needs
// to reproduce the cell exactly. Config is the fully-resolved machine
// configuration (instruction budget, seed, faults included), so workers
// never re-derive experiment presets and version skew cannot change what a
// key means.
type JobSpec struct {
	// Key is the cell's stable identity ("fig1/mcf/mtvp4"): the journal
	// key, the dedup token, and the report ordering key.
	Key string `json:"key"`
	// Bench names the workload (resolved via workload.ByName on the worker).
	Bench string `json:"bench"`
	// Preset labels the machine column for error messages ("mtvp4").
	Preset string `json:"preset"`
	// Seed is the workload build seed.
	Seed uint64 `json:"seed"`
	// Config is the complete machine configuration for this cell.
	Config config.Config `json:"config"`
}

// CampaignSpec is a submit request: a named batch of cells plus the
// fingerprint that guards resume and idempotent resubmission.
type CampaignSpec struct {
	// Name identifies the campaign ("fig1") in journals and summaries.
	Name string `json:"name"`
	// Fingerprint encodes the options the cells were generated under
	// (instruction budget, seeds, fault profile). Campaigns with the same
	// identity (name, fingerprint, job keys) dedupe onto one campaign ID:
	// resubmitting after a client or coordinator restart attaches to the
	// existing run instead of duplicating it.
	Fingerprint string `json:"fingerprint"`
	// Jobs are the cells, in submission order (= report order).
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse acknowledges a submit with the campaign's ID (derived
// deterministically from the spec identity) and whether the spec attached
// to an already-known campaign.
type SubmitResponse struct {
	ID       string `json:"id"`
	Attached bool   `json:"attached"` // true: campaign already existed (dedup or resume)
}

// CampaignState is the lifecycle of a campaign.
type CampaignState string

// Campaign states.
const (
	StateRunning   CampaignState = "running"   // cells queued or leased
	StateComplete  CampaignState = "complete"  // every cell done
	StateFailed    CampaignState = "failed"    // finished, but cells exhausted retries
	StateCancelled CampaignState = "cancelled" // cancelled by the client
)

// CampaignStatus is the live view of one campaign.
type CampaignStatus struct {
	ID          string        `json:"id"`
	Name        string        `json:"name"`
	Fingerprint string        `json:"fingerprint"`
	State       CampaignState `json:"state"`
	Total       int           `json:"total"`
	Queued      int           `json:"queued"`
	Leased      int           `json:"leased"`
	Done        int           `json:"done"`
	Failed      int           `json:"failed"`
	// Requeues counts leases lost to expiry or reported failures that were
	// put back on the queue (the graceful-degradation path working).
	Requeues int `json:"requeues"`
	// Corrupt counts results rejected for a missing or mismatching
	// attestation digest (the byzantine-defense path working).
	Corrupt int `json:"corrupt,omitempty"`
	// SpotChecks counts cells escalated to redundant verification by the
	// seeded spot-checker.
	SpotChecks int `json:"spot_checks,omitempty"`
}

// CampaignResults is the terminal payload: per-key raw results (the
// worker's JSON, passed through untouched) plus structured failures for
// cells that exhausted their retry budgets.
type CampaignResults struct {
	ID       string                     `json:"id"`
	State    CampaignState              `json:"state"`
	Results  map[string]json.RawMessage `json:"results"`
	Failures []harness.JobFailure       `json:"failures,omitempty"`
}

// LeaseRequest is a worker's pull for work.
type LeaseRequest struct {
	// Worker is the agent's stable self-chosen name ("host:pid" by
	// default); the fleet view and journals attribute work to it.
	Worker string `json:"worker"`
}

// Lease is one granted cell. The worker must heartbeat at least every
// HeartbeatEvery (TTL/3) or the lease expires and the cell is requeued.
type Lease struct {
	Campaign       string        `json:"campaign"`
	Spec           JobSpec       `json:"spec"`
	TTL            time.Duration `json:"ttl"`
	HeartbeatEvery time.Duration `json:"heartbeat_every"`

	// Trace/Span propagate the cell's deterministic observability identity
	// (obs.TraceID of the cell, obs.SpanID of this lease attempt) so the
	// worker's execution span stitches into the coordinator's timeline.
	Trace string `json:"trace,omitempty"`
	Span  string `json:"span,omitempty"`
	// Attempt is this lease's 1-based attempt ordinal for the cell.
	Attempt int `json:"attempt,omitempty"`
}

// HeartbeatRequest extends a lease and reports simulated progress.
type HeartbeatRequest struct {
	Worker   string `json:"worker"`
	Campaign string `json:"campaign"`
	Key      string `json:"key"`
	// Cycles is the cell's current simulated-cycle count (an absolute
	// counter, kept for lease-progress display and old workers).
	Cycles uint64 `json:"cycles"`
	// Commits is the cell's useful committed instruction count (absolute).
	Commits uint64 `json:"commits"`

	// Seq numbers this lease's heartbeats from 1. The coordinator folds the
	// delta fields of a given Seq at most once, so a duplicated request (a
	// retry, a chaotic proxy) cannot double-count simulated progress. 0
	// means the worker predates delta reporting; only the absolute fields
	// are used.
	Seq uint64 `json:"seq,omitempty"`
	// DCycles/DCommits are the simulated cycles/commits accumulated since
	// the last heartbeat the coordinator acknowledged — deltas, so fleet
	// aggregation is a plain sum regardless of retries, requeues, or
	// re-leases.
	DCycles  uint64 `json:"dcycles,omitempty"`
	DCommits uint64 `json:"dcommits,omitempty"`
	// HeapMB is the worker process's live heap, piggybacked for the fleet
	// memory view.
	HeapMB float64 `json:"heap_mb,omitempty"`
}

// HeartbeatResponse tells the worker whether it still owns the lease. Lost
// leases (expired and requeued, campaign cancelled, coordinator restarted)
// mean the worker should abandon the cell; if it finishes anyway, the
// result report is deduped idempotently.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// ResultRequest reports a cell's terminal outcome from one attempt.
type ResultRequest struct {
	Worker   string `json:"worker"`
	Campaign string `json:"campaign"`
	Key      string `json:"key"`
	// OK: Result carries the cell's JSON result. Not OK: Error/FailKind
	// describe the failure and the coordinator decides requeue vs exhaust.
	OK       bool             `json:"ok"`
	Result   json.RawMessage  `json:"result,omitempty"`
	Error    string           `json:"error,omitempty"`
	FailKind harness.FailKind `json:"fail_kind,omitempty"`
	// Digest attests the result: ResultDigest(Campaign, spec, Result)
	// computed worker-side over the exact bytes sent. The coordinator
	// recomputes it; a missing or mismatching digest is a corrupt result —
	// rejected, never journaled, and a trust strike against the worker.
	Digest string `json:"digest,omitempty"`
	// Released hands the lease back voluntarily (a draining worker shutting
	// down on SIGTERM): the cell requeues immediately WITHOUT spending its
	// retry budget — an orderly departure is not a fault.
	Released bool `json:"released,omitempty"`

	// Exec describes the worker's execution span for a successful result so
	// it stitches into the coordinator's timeline. It is observational and
	// NOT covered by the attestation digest: a forged Exec can at worst
	// distort a trace view, never a result.
	Exec *ExecReport `json:"exec,omitempty"`
}

// ExecReport is the worker-side execution span of one completed cell.
type ExecReport struct {
	// Trace/Span echo the lease's observability identity.
	Trace string `json:"trace"`
	Span  string `json:"span"`
	// DurMS is the wall time the simulation ran on the worker.
	DurMS float64 `json:"dur_ms"`
	// Cycles/Commits are the cell's final simulated counters.
	Cycles  uint64 `json:"cycles"`
	Commits uint64 `json:"commits"`
}

// ResultResponse acknowledges a result report. Accepted is false when the
// report was deduped (the cell was already done).
type ResultResponse struct {
	Accepted bool `json:"accepted"`
}

// WorkerStatus is one agent's row in the fleet view.
type WorkerStatus struct {
	Name string `json:"name"`
	// Leases is the number of cells currently leased to this worker.
	Leases int `json:"leases"`
	// HeartbeatAge is the time since the worker last contacted the
	// coordinator (lease, heartbeat, or result).
	HeartbeatAge time.Duration `json:"heartbeat_age"`
	Done         uint64        `json:"done"`
	Failed       uint64        `json:"failed"`
	// Lost counts leases this worker lost to expiry — its worker-loss score.
	Lost uint64 `json:"lost"`
	// CycleRate is the worker's recent simulated-cycle throughput
	// (cycles/sec, EWMA over heartbeat deltas).
	CycleRate float64 `json:"cycle_rate"`
	// Trust is the worker's fleet-quarantine level: "healthy", "clamped"
	// (suspect — its solo results need a corroborating vote from another
	// worker), or "disabled" (quarantined — no leases, results rejected).
	Trust string `json:"trust"`
	// Corrupt counts results from this worker rejected for a missing or
	// mismatching attestation digest.
	Corrupt uint64 `json:"corrupt"`
	// Outvoted counts verification quorums this worker's digest lost.
	Outvoted uint64 `json:"outvoted"`

	// Straggler analytics over the worker's closed lease spans.
	P50MS  float64 `json:"p50_ms,omitempty"`
	P99MS  float64 `json:"p99_ms,omitempty"`
	MeanMS float64 `json:"mean_ms,omitempty"`
	// Slowdown is the worker's mean lease duration relative to the fleet
	// mean (1.0 = average; 2.0 = twice as slow; 0 = unknown).
	Slowdown float64 `json:"slowdown,omitempty"`
	// HeapMB is the worker's last heartbeat-reported live heap.
	HeapMB float64 `json:"heap_mb,omitempty"`
}

// CampaignTimeline is the machine-readable campaign observability view:
// every stored span, the straggler analytics over them, and the
// heartbeat-fed fleet cycle-rate series.
type CampaignTimeline struct {
	ID    string        `json:"id"`
	Name  string        `json:"name"`
	State CampaignState `json:"state"`
	// Spans is the bounded span store's snapshot in canonical order;
	// Dropped counts spans discarded at the store bound (the journal keeps
	// the durable copy).
	Spans   []obs.Span `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
	// Report is the straggler analytics: fleet quantiles, per-worker
	// slowdown, tail cells.
	Report obs.Report `json:"report"`
	// CycleRate is the campaign's aggregate simulated-cycle rate
	// (cycles/sec, EWMA over heartbeat deltas across all workers).
	CycleRate float64 `json:"cycle_rate"`
	// SimCycles/SimCommits accumulate heartbeat deltas campaign-wide.
	SimCycles  uint64 `json:"sim_cycles"`
	SimCommits uint64 `json:"sim_commits"`
	// Series is the cycle-rate time series (bounded, decimating).
	Series []obs.Point `json:"series,omitempty"`
}
