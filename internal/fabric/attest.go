package fabric

// Result attestation: every successful result a worker reports carries a
// canonical sha256 digest binding the payload to the exact cell it claims
// to answer — (campaign ID, job key, resolved config fingerprint, result
// bytes). The worker computes it over the bytes it is about to send; the
// coordinator recomputes it over the bytes it received against the spec it
// handed out. Anything in between — a bit-flipped wire, a stale worker
// binary resolving the config differently, a hostile agent rewriting
// payloads — breaks the digest and the result is rejected before it can
// reach the journal or a report.
//
// The digest is also the quorum token of `-verify k` redundancy: two
// workers agree on a cell exactly when their digests match, which (sha256
// collisions aside) means their payload bytes match, which is precisely the
// byte-identical-report property the fabric promises.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
)

// DigestPrefix versions the attestation format; a digest from a different
// scheme never verifies.
const DigestPrefix = "sha256:"

// ConfigFingerprint is the canonical digest of a cell's fully-resolved
// machine configuration (the JSON encoding, which Go marshals with a fixed
// field order). Two workers running "the same" cell from skewed binaries
// that resolve the config differently produce different fingerprints, so
// version skew surfaces as an attestation failure instead of a silently
// different report.
func ConfigFingerprint(spec JobSpec) string {
	b, err := json.Marshal(spec.Config)
	if err != nil {
		// config.Config is plain data; Marshal cannot fail on it. Guard
		// anyway: an unmarshalable config must never verify as anything.
		return DigestPrefix + "unmarshalable-config"
	}
	sum := sha256.Sum256(b)
	return DigestPrefix + hex.EncodeToString(sum[:])
}

// ResultDigest is the canonical attestation digest for one cell result.
// Fields are length-prefixed before hashing, so no concatenation of
// (campaign, key, fingerprint, payload) can collide with another split of
// the same bytes.
func ResultDigest(campaign string, spec JobSpec, result json.RawMessage) string {
	h := sha256.New()
	var n [8]byte
	field := func(b []byte) {
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	field([]byte(campaign))
	field([]byte(spec.Key))
	field([]byte(ConfigFingerprint(spec)))
	field(result)
	return DigestPrefix + hex.EncodeToString(h.Sum(nil))
}
