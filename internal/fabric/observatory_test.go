package fabric

// Fleet-observatory tests: the causal span layer, heartbeat-piggybacked
// metric folding, straggler analytics, the trace/timeline HTTP surface, and
// the determinism golden — the same campaign's logical span DAG must come
// out identical whether it ran locally, on one worker, or on a chaotic
// fleet that lost leases along the way.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"mtvp/internal/obs"
	"mtvp/internal/telemetry"
)

// TestHeartbeatDeltasFoldExactlyOnce exercises the delta protocol's
// exactly-once fold: duplicate deliveries of an already-folded Seq are
// no-ops, and a lost ack (the worker re-sends an overlapping delta under a
// fresh Seq) is clamped against the absolute counters so campaign progress
// stays exact.
func TestHeartbeatDeltasFoldExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: time.Minute, Registry: reg})
	sub, err := co.Submit(testSpec("deltas", 1))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID
	lease, ok := co.Lease("w1")
	if !ok {
		t.Fatal("lease refused")
	}
	key := lease.Spec.Key
	if lease.Trace == "" || lease.Span == "" || lease.Attempt != 1 {
		t.Fatalf("lease must carry trace identity: %+v", lease)
	}

	hb := func(seq, dc, cycles uint64) {
		clk.advance(time.Second)
		if !co.Heartbeat(HeartbeatRequest{Worker: "w1", Campaign: id, Key: key,
			Seq: seq, DCycles: dc, Cycles: cycles, HeapMB: 64}) {
			t.Fatalf("heartbeat seq %d refused", seq)
		}
	}
	hb(1, 100, 100)
	hb(1, 100, 100) // duplicate delivery: lease extends, no double fold
	hb(2, 200, 200) // lost ack: overlapping delta, clamped to the missing 100
	hb(3, 50, 250)

	tl, err := co.Timeline(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.SimCycles != 250 {
		t.Fatalf("campaign cycles must fold exactly once: want 250, got %d", tl.SimCycles)
	}

	// The final report folds only the residual the heartbeats never
	// carried: absolute 300 with 250 already folded adds exactly 50.
	req := signedOK(co, "w1", id, key, `1`)
	req.Exec = &ExecReport{Trace: lease.Trace, Span: lease.Span, DurMS: 5, Cycles: 300, Commits: 30}
	if _, err := co.Result(req); err != nil {
		t.Fatal(err)
	}
	tl, err = co.Timeline(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.SimCycles != 300 || tl.SimCommits != 30 {
		t.Fatalf("result must fold the residual exactly once: want 300/30, got %d/%d",
			tl.SimCycles, tl.SimCommits)
	}
	for _, s := range tl.Spans {
		if s.ID == lease.Span && s.Cycles != 250 {
			t.Fatalf("lease span must accumulate folded deltas: want 250, got %d", s.Cycles)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mtvp_fabric_sim_cycles_total 300") {
		t.Errorf("fabric counter must match the fold:\n%s", b.String())
	}
}

// TestStragglerAnalyticsNameSlowedWorker drives two workers through one
// campaign under a fake clock — one 9x slower than the other — and checks
// that the timeline's straggler report, the tail cells, and the fleet view
// all point at the slow one.
func TestStragglerAnalyticsNameSlowedWorker(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: time.Hour})
	sub, err := co.Submit(testSpec("straggle", 6))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID

	// Both workers take their cells at t0 so queue wait cancels out of the
	// per-cell totals; the laggard then sits on its leases 9x longer.
	leases := map[string][]Lease{}
	for _, worker := range []string{"fast", "fast", "fast", "laggard", "laggard", "laggard"} {
		lease, ok := co.Lease(worker)
		if !ok {
			t.Fatalf("lease for %s refused", worker)
		}
		leases[worker] = append(leases[worker], lease)
	}
	clk.advance(100 * time.Millisecond)
	for _, lease := range leases["fast"] {
		if _, err := co.Result(signedOK(co, "fast", id, lease.Spec.Key, `1`)); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(800 * time.Millisecond)
	for _, lease := range leases["laggard"] {
		if _, err := co.Result(signedOK(co, "laggard", id, lease.Spec.Key, `1`)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := co.Status(id)
	if st.State != StateComplete {
		t.Fatalf("campaign must complete: %+v", st)
	}

	tl, err := co.Timeline(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Report.Slowest(); got != "laggard" {
		t.Fatalf("straggler report must name the slowed worker: got %q\n%+v", got, tl.Report)
	}
	var fastSD, lagSD float64
	for _, w := range tl.Report.Workers {
		switch w.Name {
		case "fast":
			fastSD = w.Slowdown
		case "laggard":
			lagSD = w.Slowdown
		}
	}
	if !(lagSD > 1 && fastSD < 1 && lagSD > 3*fastSD) {
		t.Fatalf("slowdown ratios wrong: fast=%.2f laggard=%.2f", fastSD, lagSD)
	}
	if len(tl.Report.Tail) != 3 {
		t.Fatalf("want 3 tail cells, got %d", len(tl.Report.Tail))
	}
	for _, c := range tl.Report.Tail {
		if c.Worker != "laggard" {
			t.Errorf("tail cell %s must belong to the laggard, got %q", c.Key, c.Worker)
		}
	}

	// The fleet view carries the same verdict for /api/v1/fleet scrapers.
	for _, w := range co.Fleet() {
		switch w.Name {
		case "laggard":
			if w.Slowdown <= 1 || w.P99MS < 800 {
				t.Errorf("fleet view must show the laggard slow: %+v", w)
			}
		case "fast":
			if w.Slowdown >= 1 {
				t.Errorf("fleet view must show the fast worker fast: %+v", w)
			}
		}
	}
}

// TestTimelineSurvivesRestart finishes half a campaign, crashes the
// coordinator, and reconstructs the timeline from the journal: finalized
// cells keep their full span trees (execute still parented under the
// coordinator's lease span, worker attribution intact) and the straggler
// analytics still name the slow worker.
func TestTimelineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{JournalDir: dir, LeaseTTL: time.Hour})
	sub, err := co.Submit(testSpec("resume", 4))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID

	done := map[string]string{} // key -> worker
	for i := 0; i < 2; i++ {
		worker, dur := "fast", 100*time.Millisecond
		if i == 1 {
			worker, dur = "laggard", 900*time.Millisecond
		}
		lease, ok := co.Lease(worker)
		if !ok {
			t.Fatal("lease refused")
		}
		clk.advance(dur)
		if _, err := co.Result(signedOK(co, worker, id, lease.Spec.Key, `1`)); err != nil {
			t.Fatal(err)
		}
		done[lease.Spec.Key] = worker
	}
	co.Lease("doomed") // in-flight at the crash; its open spans die with us
	co.Close()

	co2 := newTestCoordinator(t, clk, CoordinatorConfig{JournalDir: dir, LeaseTTL: time.Hour})
	tl, err := co2.Timeline(id, 0)
	if err != nil {
		t.Fatalf("timeline must survive the restart: %v", err)
	}

	byID := map[string]obs.Span{}
	for _, s := range tl.Spans {
		byID[s.ID] = s
	}
	for key, worker := range done {
		tr := obs.TraceID(id, key)
		lease, ok := byID[obs.SpanID(tr, obs.KindLease, 1)]
		if !ok || lease.Worker != worker || !lease.Final || lease.Status != obs.StatusOK {
			t.Fatalf("%s: journaled lease span wrong: %+v", key, lease)
		}
		exec, ok := byID[obs.SpanID(tr, obs.KindExecute, 1)]
		if !ok {
			t.Fatalf("%s: execute span lost across the restart", key)
		}
		if exec.Parent != lease.ID {
			t.Fatalf("%s: execute must stay parented under the lease: %+v", key, exec)
		}
		if _, ok := byID[obs.SpanID(tr, obs.KindJournal, 0)]; !ok {
			t.Fatalf("%s: journal checkpoint span lost", key)
		}
	}
	if got := tl.Report.Slowest(); got != "laggard" {
		t.Fatalf("analytics over journaled spans must still name the laggard: got %q", got)
	}

	// The two unfinished cells re-open fresh root/queue spans for the
	// resumed run — the timeline is live again, not a fossil.
	var openRoots int
	for _, s := range tl.Spans {
		if s.Kind == obs.KindCell && s.End.IsZero() {
			openRoots++
		}
	}
	if openRoots != 2 {
		t.Fatalf("want 2 live cell roots after resume, got %d", openRoots)
	}
}

// TestTraceAndTimelineEndpoints drives one cell through a real server and
// scrapes the observability surface over HTTP: the timeline JSON stitches
// the worker's execute span under the coordinator's lease span, and the
// trace endpoint serves one well-formed Chrome trace-event document with
// named worker tracks and dispatch flow arrows.
func TestTraceAndTimelineEndpoints(t *testing.T) {
	co, srv := startServer(t, CoordinatorConfig{}, ServerConfig{Token: "t"})
	sub, err := co.Submit(testSpec("scrape", 1))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID
	lease, ok := co.Lease("w1")
	if !ok {
		t.Fatal("lease refused")
	}
	if _, err := co.Result(signedOK(co, "w1", id, lease.Spec.Key, `1`)); err != nil {
		t.Fatal(err)
	}

	cl := NewClient(srv.URL(), "t")
	tl, err := cl.Timeline(context.Background(), id, 5)
	if err != nil {
		t.Fatal(err)
	}
	var leaseSpan, execSpan *obs.Span
	for i := range tl.Spans {
		switch tl.Spans[i].Kind {
		case obs.KindLease:
			leaseSpan = &tl.Spans[i]
		case obs.KindExecute:
			execSpan = &tl.Spans[i]
		}
	}
	if leaseSpan == nil || execSpan == nil {
		t.Fatalf("timeline missing lease/execute spans: %+v", tl.Spans)
	}
	if execSpan.Parent != leaseSpan.ID || execSpan.Worker != "w1" {
		t.Fatalf("execute span must be stitched under the lease: %+v", execSpan)
	}

	raw, err := cl.TraceJSON(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			TID  int    `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace endpoint must serve valid JSON: %v\n%.300s", err, raw)
	}
	var workerTrack, dispatchFlow, executeEvent bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "worker w1" {
			workerTrack = true
		}
		if ev.Cat == "flow" && ev.Name == "dispatch" {
			dispatchFlow = true
		}
		if ev.Cat == "execute" && ev.TID > 0 {
			executeEvent = true
		}
	}
	if !workerTrack || !dispatchFlow || !executeEvent {
		t.Fatalf("trace document incomplete: workerTrack=%v dispatchFlow=%v executeEvent=%v",
			workerTrack, dispatchFlow, executeEvent)
	}

	// Unknown campaigns 404 on both endpoints.
	if _, err := cl.Timeline(context.Background(), "nope", 0); err == nil {
		t.Error("timeline for unknown campaign must fail")
	}
	if _, err := cl.TraceJSON(context.Background(), "nope"); err == nil {
		t.Error("trace for unknown campaign must fail")
	}
}

// TestSpanDAGDeterminismGolden is the determinism golden: the same
// campaign, run on one worker, on four workers, and on a fleet where a
// zombie swallowed leases mid-cell, projects to the same logical span DAG —
// and that DAG is exactly the canonical first-attempt prediction.
func TestSpanDAGDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spins real workers")
	}
	cfg := CoordinatorConfig{LeaseTTL: 300 * time.Millisecond, Retries: 5}
	scfg := ServerConfig{Token: "t", ExpireEvery: 20 * time.Millisecond}

	spec := CampaignSpec{Name: "dag-golden", Fingerprint: "insts=3000 seed=1"}
	var keys []string
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("dag/bench-%02d/mtvp4", i)
		keys = append(keys, key)
		spec.Jobs = append(spec.Jobs, JobSpec{
			Key: key, Bench: fmt.Sprintf("bench-%02d", i), Preset: "mtvp4", Seed: uint64(i),
		})
	}
	id := CampaignID(spec)
	golden := obs.CanonicalDAG(id, keys)

	dagOf := func(name string, workers int, zombies int) []obs.Node {
		t.Helper()
		co, srv := startServer(t, cfg, scfg)
		if zombies > 0 {
			// A zombie leases cells over HTTP and goes silent — lease expiry
			// must requeue them, and the winning retry must renumber onto
			// the same logical DAG.
			zcl := NewClient(srv.URL(), "t")
			if _, err := zcl.Submit(context.Background(), spec); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < zombies; i++ {
				var lease Lease
				if err := zcl.do(context.Background(), "POST", PathLease, LeaseRequest{Worker: "zombie"}, &lease); err != nil {
					t.Fatalf("zombie lease %d: %v", i, err)
				}
			}
		}
		for i := 0; i < workers; i++ {
			startWorker(t, srv.URL(), "t", fmt.Sprintf("%s-%d", name, i), 1, detRun)
		}
		res, _ := runCampaign(t, srv.URL(), "t", spec)
		if res.State != StateComplete {
			t.Fatalf("%s run must complete: %+v", name, res)
		}
		_, spans, err := co.TraceSpans(id)
		if err != nil {
			t.Fatal(err)
		}
		return obs.LogicalDAG(spans, true)
	}

	solo := dagOf("solo", 1, 0)
	fleet := dagOf("fleet", 4, 0)
	chaos := dagOf("chaos", 3, 3)

	if diff := obs.DiffDAG(golden, solo); diff != "" {
		t.Errorf("solo run diverges from the canonical DAG:\n%s", diff)
	}
	if diff := obs.DiffDAG(solo, fleet); diff != "" {
		t.Errorf("1-worker and 4-worker DAGs differ:\n%s", diff)
	}
	if diff := obs.DiffDAG(solo, chaos); diff != "" {
		t.Errorf("chaos DAG differs from the solo DAG:\n%s", diff)
	}
}
