package fabric

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"mtvp/internal/harness"
	"mtvp/internal/telemetry"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time             { return f.t }
func (f *fakeClock) advance(d time.Duration)    { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func testSpec(name string, n int) CampaignSpec {
	spec := CampaignSpec{Name: name, Fingerprint: "fp"}
	for i := 0; i < n; i++ {
		spec.Jobs = append(spec.Jobs, JobSpec{
			Key:   fmt.Sprintf("%s/cell-%02d", name, i),
			Bench: "mcf", Preset: "mtvp4", Seed: uint64(i),
		})
	}
	return spec
}

func newTestCoordinator(t *testing.T, clk *fakeClock, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if clk != nil {
		cfg.Now = clk.now
	}
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// signedOK builds a success report carrying a valid attestation digest for
// one of the coordinator's cells — what an honest worker sends.
func signedOK(co *Coordinator, worker, campaign, key, payload string) ResultRequest {
	co.mu.Lock()
	spec := co.campaigns[campaign].jobs[key].spec
	co.mu.Unlock()
	res := json.RawMessage(payload)
	return ResultRequest{
		Worker: worker, Campaign: campaign, Key: key,
		OK: true, Result: res, Digest: ResultDigest(campaign, spec, res),
	}
}

func TestSubmitIsIdempotent(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{})
	spec := testSpec("fig1", 3)
	r1, err := co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := co.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID != r2.ID || r1.Attached || !r2.Attached {
		t.Fatalf("resubmit must attach to the same campaign: %+v vs %+v", r1, r2)
	}
	if len(co.List()) != 1 {
		t.Fatalf("want 1 campaign, got %d", len(co.List()))
	}

	// A different fingerprint is a different campaign.
	spec2 := spec
	spec2.Fingerprint = "other"
	r3, err := co.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.ID == r1.ID {
		t.Fatal("different fingerprints must not collide on one campaign ID")
	}
}

func TestSubmitValidation(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{})
	if _, err := co.Submit(CampaignSpec{Name: "x"}); err == nil {
		t.Error("empty campaign must be rejected")
	}
	spec := testSpec("dup", 2)
	spec.Jobs[1].Key = spec.Jobs[0].Key
	if _, err := co.Submit(spec); err == nil {
		t.Error("duplicate job keys must be rejected")
	}
}

func TestLeaseLifecycleAndExpiry(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 1})
	sub, err := co.Submit(testSpec("exp", 1))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID
	key := "exp/cell-00"

	lease, ok := co.Lease("w1")
	if !ok || lease.Spec.Key != key || lease.Campaign != id {
		t.Fatalf("bad lease: %+v ok=%v", lease, ok)
	}
	if _, ok := co.Lease("w2"); ok {
		t.Fatal("only one cell: second lease must find nothing")
	}

	// Heartbeats keep the lease alive past its original TTL.
	clk.advance(8 * time.Second)
	if !co.Heartbeat(HeartbeatRequest{Worker: "w1", Campaign: id, Key: key, Cycles: 1000}) {
		t.Fatal("heartbeat from the lease holder must be accepted")
	}
	clk.advance(8 * time.Second)
	if n := co.ExpireLeases(); n != 0 {
		t.Fatalf("heartbeat extended the lease; expired %d", n)
	}

	// Heartbeat loss: the lease expires and the cell requeues once
	// (Retries=1), and the next lease can go to another worker.
	clk.advance(11 * time.Second)
	if n := co.ExpireLeases(); n != 1 {
		t.Fatalf("want 1 expiry, got %d", n)
	}
	if co.Heartbeat(HeartbeatRequest{Worker: "w1", Campaign: id, Key: key, Cycles: 2000}) {
		t.Fatal("heartbeat after expiry must be refused")
	}
	st, _ := co.Status(id)
	if st.Queued != 1 || st.Requeues != 1 || st.State != StateRunning {
		t.Fatalf("cell must requeue after expiry: %+v", st)
	}
	lease2, ok := co.Lease("w2")
	if !ok || lease2.Spec.Key != key {
		t.Fatalf("requeued cell must be leasable by another worker: %+v ok=%v", lease2, ok)
	}

	// Budget exhausted: the second expiry fails the cell permanently with
	// the worker-loss fault class.
	clk.advance(11 * time.Second)
	if n := co.ExpireLeases(); n != 1 {
		t.Fatalf("want 1 expiry, got %d", n)
	}
	st, _ = co.Status(id)
	if st.Failed != 1 || st.State != StateFailed {
		t.Fatalf("budget exhausted must fail the cell: %+v", st)
	}
	res, _ := co.Results(id)
	if len(res.Failures) != 1 || res.Failures[0].Kind != FailLostWorker {
		t.Fatalf("failure must be classified as worker loss: %+v", res.Failures)
	}
	if !strings.Contains(res.Failures[0].Err, `"w2"`) {
		t.Fatalf("failure must name the lost worker: %s", res.Failures[0].Err)
	}
}

func TestDoubleCompletionDedup(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 3})
	sub, _ := co.Submit(testSpec("dedup", 1))
	id, key := sub.ID, "dedup/cell-00"

	co.Lease("w1")
	clk.advance(11 * time.Second)
	co.ExpireLeases() // w1 presumed dead, cell requeued
	co.Lease("w2")

	// w2 finishes first.
	r2, err := co.Result(signedOK(co, "w2", id, key, `{"v":2}`))
	if err != nil || !r2.Accepted {
		t.Fatalf("first completion must be accepted: %+v %v", r2, err)
	}
	// The presumed-dead w1 finishes anyway: deduped, first result kept.
	r1, err := co.Result(signedOK(co, "w1", id, key, `{"v":1}`))
	if err != nil || r1.Accepted {
		t.Fatalf("double completion must be deduped: %+v %v", r1, err)
	}
	res, _ := co.Results(id)
	if string(res.Results[key]) != `{"v":2}` {
		t.Fatalf("first result must win, got %s", res.Results[key])
	}
	if res.State != StateComplete {
		t.Fatalf("campaign must be complete, got %s", res.State)
	}
}

// A late success for a cell that was requeued after its lease expired must
// drop the stale queue entry: the cell is done and must never be re-leased,
// re-completed, or double-counted toward campaign completion.
func TestLateSuccessForRequeuedCellDropsQueueEntry(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 3})
	sub, _ := co.Submit(testSpec("late", 1))
	id, key := sub.ID, "late/cell-00"

	co.Lease("w1")
	clk.advance(11 * time.Second)
	co.ExpireLeases() // w1 presumed dead, cell back in the queue

	// w1 finishes anyway before anyone re-leases the cell.
	resp, err := co.Result(signedOK(co, "w1", id, key, `{"v":1}`))
	if err != nil || !resp.Accepted {
		t.Fatalf("late success for a queued cell must be accepted: %+v %v", resp, err)
	}
	st, _ := co.Status(id)
	if st.Done != 1 || st.Queued != 0 || st.State != StateComplete {
		t.Fatalf("done cell must leave the queue: %+v", st)
	}

	// The stale queue entry is gone: nothing left to lease, and a second
	// worker finishing the same key is deduped, not double-counted.
	if _, ok := co.Lease("w2"); ok {
		t.Fatal("a done cell must never be re-leased")
	}
	resp, _ = co.Result(signedOK(co, "w2", id, key, `{"v":2}`))
	if resp.Accepted {
		t.Fatal("second completion must be deduped")
	}
	st, _ = co.Status(id)
	if st.Done != 1 || st.State != StateComplete {
		t.Fatalf("completion must not double-count: %+v", st)
	}
	res, _ := co.Results(id)
	if string(res.Results[key]) != `{"v":1}` {
		t.Fatalf("first result must win, got %s", res.Results[key])
	}
}

// A failure report from a worker whose lease already expired must not spend
// the cell's budget, requeue it a second time, or corrupt the bookkeeping of
// the worker that now owns it.
func TestStaleFailureFromExpiredLeaseIsRejected(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 3})
	sub, _ := co.Submit(testSpec("stale", 1))
	id, key := sub.ID, "stale/cell-00"

	co.Lease("w1")
	clk.advance(11 * time.Second)
	co.ExpireLeases() // requeue #1
	co.Lease("w2")    // cell now belongs to w2

	resp, err := co.Result(ResultRequest{Worker: "w1", Campaign: id, Key: key, OK: false, Error: "boom"})
	if err != nil || resp.Accepted {
		t.Fatalf("stale failure must be rejected: %+v %v", resp, err)
	}
	// w2 still owns the lease and can finish normally.
	if !co.Heartbeat(HeartbeatRequest{Worker: "w2", Campaign: id, Key: key}) {
		t.Fatal("stale failure must not revoke the current lease")
	}
	st, _ := co.Status(id)
	if st.Leased != 1 || st.Queued != 0 || st.Requeues != 1 {
		t.Fatalf("stale failure must not requeue or spend budget: %+v", st)
	}
	resp, _ = co.Result(signedOK(co, "w2", id, key, `1`))
	if !resp.Accepted {
		t.Fatal("owner's result must be accepted")
	}
	st, _ = co.Status(id)
	if st.State != StateComplete || st.Done != 1 || st.Failed != 0 {
		t.Fatalf("campaign must complete cleanly: %+v", st)
	}
}

// A late success for a cell that already exhausted its budget revives it —
// and the Done/Failed counters must stay consistent (never Done+Failed >
// Total, never a StateFailed campaign stuck with a usable result).
func TestLateSuccessRevivesFailedCell(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 1})
	sub, _ := co.Submit(testSpec("revive", 1))
	id, key := sub.ID, "revive/cell-00"

	for _, w := range []string{"w1", "w2"} {
		co.Lease(w)
		clk.advance(11 * time.Second)
		co.ExpireLeases()
	}
	st, _ := co.Status(id)
	if st.State != StateFailed || st.Failed != 1 {
		t.Fatalf("budget must be exhausted first: %+v", st)
	}

	resp, err := co.Result(signedOK(co, "w1", id, key, `{"v":1}`))
	if err != nil || !resp.Accepted {
		t.Fatalf("late success must revive a failed cell: %+v %v", resp, err)
	}
	st, _ = co.Status(id)
	if st.Done != 1 || st.Failed != 0 || st.State != StateComplete {
		t.Fatalf("revival must rebalance the counters: %+v", st)
	}
	res, _ := co.Results(id)
	if len(res.Failures) != 0 || string(res.Results[key]) != `{"v":1}` {
		t.Fatalf("revived cell must report its result, not a failure: %+v", res)
	}
}

func TestReleasedHandbackSkipsBudget(t *testing.T) {
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 1})
	sub, _ := co.Submit(testSpec("rel", 1))
	id, key := sub.ID, "rel/cell-00"

	// Release (drain) many times: never burns the retry budget.
	for i := 0; i < 5; i++ {
		if _, ok := co.Lease("w1"); !ok {
			t.Fatalf("round %d: lease refused", i)
		}
		resp, err := co.Result(ResultRequest{Worker: "w1", Campaign: id, Key: key, Released: true})
		if err != nil || !resp.Accepted {
			t.Fatalf("round %d: release refused: %+v %v", i, resp, err)
		}
	}
	st, _ := co.Status(id)
	if st.Failed != 0 || st.Queued != 1 || st.Requeues != 5 {
		t.Fatalf("releases must requeue without failing: %+v", st)
	}
}

func TestReportedFailureSpendsBudget(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{Retries: 2})
	sub, _ := co.Submit(testSpec("fail", 1))
	id, key := sub.ID, "fail/cell-00"

	for i := 0; i < 2; i++ {
		co.Lease("w1")
		co.Result(ResultRequest{Worker: "w1", Campaign: id, Key: key, OK: false, Error: "boom", FailKind: harness.FailPanic})
		st, _ := co.Status(id)
		if st.Queued != 1 {
			t.Fatalf("retry %d must requeue: %+v", i, st)
		}
	}
	co.Lease("w1")
	co.Result(ResultRequest{Worker: "w1", Campaign: id, Key: key, OK: false, Error: "boom", FailKind: harness.FailPanic})
	st, _ := co.Status(id)
	if st.State != StateFailed || st.Failed != 1 {
		t.Fatalf("exhausted budget must fail the campaign: %+v", st)
	}
	res, _ := co.Results(id)
	if len(res.Failures) != 1 || res.Failures[0].Kind != harness.FailPanic || res.Failures[0].Attempts != 3 {
		t.Fatalf("failure record wrong: %+v", res.Failures)
	}
}

// Fair-share: with two campaigns queued, leases alternate between them
// round-robin instead of draining the first submitter.
func TestFairShareRoundRobin(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{})
	a, _ := co.Submit(testSpec("tenant-a", 4))
	b, _ := co.Submit(testSpec("tenant-b", 4))

	var got []string
	for i := 0; i < 8; i++ {
		lease, ok := co.Lease("w")
		if !ok {
			t.Fatalf("lease %d refused", i)
		}
		got = append(got, lease.Campaign)
	}
	want := []string{a.ID, b.ID, a.ID, b.ID, a.ID, b.ID, a.ID, b.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order not fair-share: got %v", got)
		}
	}
}

func TestCancelDropsQueueAndRevokesLeases(t *testing.T) {
	co := newTestCoordinator(t, nil, CoordinatorConfig{})
	sub, _ := co.Submit(testSpec("cancel", 3))
	id := sub.ID
	lease, _ := co.Lease("w1")
	if err := co.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, _ := co.Status(id)
	if st.State != StateCancelled || st.Queued != 0 {
		t.Fatalf("cancel must drop the queue: %+v", st)
	}
	if co.Heartbeat(HeartbeatRequest{Worker: "w1", Campaign: id, Key: lease.Spec.Key}) {
		t.Fatal("heartbeat on a cancelled campaign must be refused")
	}
	if resp, _ := co.Result(ResultRequest{Worker: "w1", Campaign: id, Key: lease.Spec.Key, OK: true, Result: json.RawMessage(`1`)}); resp.Accepted {
		t.Fatal("late result on a cancelled campaign must be ignored")
	}
	if _, ok := co.Lease("w1"); ok {
		t.Fatal("cancelled campaign must not lease")
	}
}

// The fleet view tracks leases, outcomes, losses, and exports per-worker
// labeled gauges on the telemetry registry.
func TestFleetViewAndMetrics(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	co := newTestCoordinator(t, clk, CoordinatorConfig{LeaseTTL: 10 * time.Second, Retries: 5, Registry: reg})
	sub, _ := co.Submit(testSpec("fleet", 2))
	id := sub.ID

	l1, _ := co.Lease("alpha")
	co.Lease("beta")
	clk.advance(time.Second)
	co.Heartbeat(HeartbeatRequest{Worker: "alpha", Campaign: id, Key: l1.Spec.Key, Cycles: 5000})
	clk.advance(time.Second)
	co.Heartbeat(HeartbeatRequest{Worker: "alpha", Campaign: id, Key: l1.Spec.Key, Cycles: 15_000})
	co.Result(signedOK(co, "alpha", id, l1.Spec.Key, `1`))
	clk.advance(11 * time.Second)
	co.ExpireLeases() // beta dies

	fleet := co.Fleet()
	if len(fleet) != 2 {
		t.Fatalf("want 2 workers, got %+v", fleet)
	}
	alpha, beta := fleet[0], fleet[1]
	if alpha.Name != "alpha" || alpha.Done != 1 || alpha.Leases != 0 {
		t.Fatalf("alpha row wrong: %+v", alpha)
	}
	if alpha.CycleRate < 9000 || alpha.CycleRate > 11_000 {
		t.Fatalf("alpha cycle rate should be ~10k cycles/s, got %g", alpha.CycleRate)
	}
	if beta.Name != "beta" || beta.Lost != 1 {
		t.Fatalf("beta must be charged a lost lease: %+v", beta)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mtvp_fleet_jobs_done{worker="alpha"} 1`,
		`mtvp_fleet_leases_lost{worker="beta"} 1`,
		"mtvp_fabric_leases_granted_total 2",
		"mtvp_fabric_lease_expiries_total 1",
		"mtvp_fabric_requeues_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	// A long-silent idle worker is pruned and its gauges retired.
	clk.advance(200 * time.Second)
	co.ExpireLeases()
	if n := len(co.Fleet()); n != 0 {
		t.Fatalf("silent workers must be pruned, got %d", n)
	}
	b.Reset()
	reg.WritePrometheus(&b)
	if strings.Contains(b.String(), `worker="alpha"`) {
		t.Error("pruned worker gauges must be unregistered")
	}
}

// A coordinator restarted on its journal directory resumes every campaign:
// done cells keep their journaled results, unfinished cells requeue.
func TestCoordinatorRestartResumes(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	co := newTestCoordinator(t, clk, CoordinatorConfig{JournalDir: dir, Retries: 3})
	sub, err := co.Submit(testSpec("restart", 4))
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID

	// Finish two cells, lease (but don't finish) a third, then "crash".
	for i := 0; i < 2; i++ {
		lease, ok := co.Lease("w1")
		if !ok {
			t.Fatal("lease refused")
		}
		co.Result(signedOK(co, "w1", id, lease.Spec.Key, fmt.Sprintf(`{"cell":%q}`, lease.Spec.Key)))
	}
	co.Lease("w1")
	co.Close()

	// Restart on the same directory.
	co2 := newTestCoordinator(t, clk, CoordinatorConfig{JournalDir: dir, Retries: 3})
	st, err := co2.Status(id)
	if err != nil {
		t.Fatalf("campaign must survive the restart: %v", err)
	}
	if st.Done != 2 || st.Queued != 2 || st.State != StateRunning {
		t.Fatalf("restart state wrong: %+v", st)
	}
	res, _ := co2.Results(id)
	if string(res.Results["restart/cell-00"]) != `{"cell":"restart/cell-00"}` {
		t.Fatalf("journaled result lost: %s", res.Results["restart/cell-00"])
	}

	// Resubmitting the same spec attaches instead of duplicating.
	r, err := co2.Submit(testSpec("restart", 4))
	if err != nil || !r.Attached || r.ID != id {
		t.Fatalf("resubmit after restart must attach: %+v %v", r, err)
	}

	// Finish the remaining cells.
	for {
		lease, ok := co2.Lease("w2")
		if !ok {
			break
		}
		co2.Result(signedOK(co2, "w2", id, lease.Spec.Key, fmt.Sprintf(`{"cell":%q}`, lease.Spec.Key)))
	}
	st, _ = co2.Status(id)
	if st.State != StateComplete || st.Done != 4 {
		t.Fatalf("campaign must complete after restart: %+v", st)
	}
}
