package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// echoServer replies to every request with a fixed body.
func echoServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// drive issues n sequential GETs through tr and returns the fault schedule
// the OnFault hook observed.
func drive(t *testing.T, tr *Transport, url string, n int) []Event {
	t.Helper()
	var events []Event
	tr.OnFault = func(ev Event) { events = append(events, ev) }
	tr.Sleep = func(time.Duration) {} // schedules matter, wall time does not
	hc := &http.Client{Transport: tr}
	for i := 0; i < n; i++ {
		resp, err := hc.Get(url + fmt.Sprintf("/route-%d", i%3))
		if err != nil {
			continue // drops surface as transport errors; that IS the fault
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return events
}

// The determinism contract: the same seed and profile against the same
// request sequence produce the identical injected fault schedule — same
// faults, same kinds, same sequence numbers, same routes.
func TestSameSeedSameSchedule(t *testing.T) {
	srv := echoServer(t, `{"payload":"0123456789abcdef"}`)
	prof := Profile{
		Name: "det", Reorder: 100_000, Drop: 150_000, Delay: 200_000,
		Duplicate: 100_000, Truncate: 100_000, Corrupt: 100_000,
	}
	run := func(seed uint64) []Event {
		return drive(t, New(prof, seed), srv.URL, 60)
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("hot profile over 60 requests must inject at least one fault")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed must yield the identical schedule:\n%v\nvs\n%v", a, b)
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatal("a different seed should yield a different schedule")
	}
}

// Whether a fault fires must not shift the stream for later requests: the
// schedule is positional, so disarming one kind leaves the remaining
// kinds' decisions unchanged.
func TestDisarmedKindConsumesNoRandomness(t *testing.T) {
	srv := echoServer(t, "x")
	armed := Profile{Drop: 200_000, Corrupt: 300_000}
	dropOnly := Profile{Drop: 200_000}

	pick := func(events []Event, k Kind) []Event {
		var out []Event
		for _, ev := range events {
			if ev.Kind == k {
				out = append(out, ev)
			}
		}
		return out
	}
	a := pick(drive(t, New(armed, 7), srv.URL, 80), KindDrop)
	b := pick(drive(t, New(dropOnly, 7), srv.URL, 80), KindDrop)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("drop schedule must not depend on other kinds being armed:\n%v\nvs\n%v", a, b)
	}
}

// Payload-damage faults actually damage payloads.
func TestTruncateAndCorruptDamageBodies(t *testing.T) {
	const body = `{"v":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}`
	srv := echoServer(t, body)

	always := uint32(1_000_000)
	get := func(tr *Transport) string {
		hc := &http.Client{Transport: tr}
		resp, err := hc.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if got := get(New(Profile{Truncate: always}, 1)); len(got) >= len(body) {
		t.Fatalf("truncate must shorten the body, got %d bytes", len(got))
	}
	got := get(New(Profile{Corrupt: always}, 1))
	if len(got) != len(body) || got == body {
		t.Fatalf("corrupt must flip a bit in place, got %q", got)
	}
	diff := 0
	for i := range body {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt must damage exactly one byte, damaged %d", diff)
	}

	tr := New(Profile{Drop: always}, 1)
	if _, err := (&http.Client{Transport: tr}).Get(srv.URL); err == nil {
		t.Fatal("drop must surface as a transport error")
	}
	if tr.Counts()["drop"] != 1 {
		t.Fatalf("drop must be counted: %v", tr.Counts())
	}
}

// Per-route overrides scope faults to matching path prefixes.
func TestPerRouteOverride(t *testing.T) {
	srv := echoServer(t, "ok")
	prof := Profile{
		PerRoute: map[string]Profile{"/api/v1/result": {Drop: 1_000_000}},
	}
	tr := New(prof, 3)
	hc := &http.Client{Transport: tr}
	if _, err := hc.Get(srv.URL + "/api/v1/lease"); err != nil {
		t.Fatalf("unmatched route must pass untouched: %v", err)
	}
	if _, err := hc.Get(srv.URL + "/api/v1/result"); err == nil {
		t.Fatal("matched route must drop")
	}
}

// Duplicate delivers the request body twice; both deliveries reach the
// server intact.
func TestDuplicateDeliversTwice(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	tr := New(Profile{Duplicate: 1_000_000}, 5)
	hc := &http.Client{Transport: tr}
	resp, err := hc.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != "payload" || bodies[1] != "payload" {
		t.Fatalf("duplicate must deliver the body twice, got %q", bodies)
	}
}

// The proxy forwards faithfully with a zero profile and injects with a hot
// one — the between-real-processes deployment shape.
func TestProxyForwardsAndInjects(t *testing.T) {
	srv := echoServer(t, `{"ok":true}`)

	clean, err := NewProxy(":0", srv.URL, Profile{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	resp, err := http.Get(clean.URL() + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != `{"ok":true}` {
		t.Fatalf("clean proxy must forward verbatim, got %q", b)
	}

	lossy, err := NewProxy(":0", srv.URL, Profile{Drop: 1_000_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	resp, err = http.Get(lossy.URL() + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dropped forward must surface as 502, got %d", resp.StatusCode)
	}
}

// FormatCounts is stable and sorted.
func TestFormatCounts(t *testing.T) {
	got := FormatCounts(map[string]uint64{"drop": 7, "corrupt": 3})
	if got != "corrupt=3 drop=7" {
		t.Fatalf("FormatCounts = %q", got)
	}
}
