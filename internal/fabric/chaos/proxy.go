package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Proxy is a listening reverse proxy that forwards everything to a target
// through a fault-injecting Transport: the way to put a hostile network
// between real processes. A worker pointed at the proxy's URL instead of
// the coordinator's experiences the profile's drops, delays, duplicates,
// and payload damage on every round trip, while the coordinator stays
// untouched.
type Proxy struct {
	// T is the underlying chaos transport (for Counts and OnFault).
	T      *Transport
	target string
	ln     net.Listener
	srv    *http.Server
}

// NewProxy starts a proxy on addr (":0" picks a free port) forwarding to
// target ("http://host:port") through prof's faults seeded with seed.
func NewProxy(addr, target string, prof Profile, seed uint64) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", addr, err)
	}
	p := &Proxy{T: New(prof, seed), target: target, ln: ln}
	hc := &http.Client{Transport: p.T, Timeout: 2 * time.Minute}
	p.srv = &http.Server{
		Handler:           http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { p.forward(hc, w, r) }),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go p.srv.Serve(ln)
	return p, nil
}

// forward replays one request against the target through the chaos
// transport. An injected drop (or a real transport error) surfaces as 502,
// which clients treat as any other network failure.
func (p *Proxy) forward(hc *http.Client, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	// GetBody lets the chaos transport duplicate the request faithfully.
	req.GetBody = func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(body)), nil }
	resp, err := hc.Do(req)
	if err != nil {
		http.Error(w, "chaos proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// URL is the proxy's base URL — hand it to workers as their coordinator.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops the proxy listener.
func (p *Proxy) Close() error { return p.srv.Close() }
