// Package chaos is a deterministic, seeded fault-injecting network layer
// for exercising the sweep fabric under hostile conditions: dropped
// requests, added latency, request reordering, duplicate delivery, and
// truncated or bit-corrupted response bodies.
//
// It mirrors internal/fault's injector idiom one layer down the stack: the
// fault classes the simulated machine survives (flipped bits, lost
// messages, stalls) are the same classes the fabric's network must
// survive, and both draw their schedules from the same seeded splitmix64
// stream (fault.Dice). A chaos run is an experiment, not a dice roll: the
// same seed and profile against the same request sequence produces the
// same fault schedule, so a fabric failure under chaos is reproducible
// from its seed.
//
// Two deployment shapes:
//
//   - Transport wraps an http.RoundTripper, injecting faults inside one
//     process (unit/e2e tests wrap a worker's or client's transport).
//   - Proxy is a listening reverse proxy built on Transport, for putting a
//     lossy network between real processes (the CI chaos job runs real
//     mtvpd binaries through it).
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mtvp/internal/fault"
)

// Kind is one injectable network fault class.
type Kind int

// Network fault kinds, in the fixed per-request roll order. The order is
// part of the determinism contract: every request rolls each armed kind
// exactly once, in this order, so the schedule is a pure function of
// (seed, profile, request sequence).
const (
	// KindReorder holds the request before sending so that later requests
	// overtake it — delivery reordering.
	KindReorder Kind = iota
	// KindDrop discards the request entirely; the caller sees a transport
	// error, as from a lost packet or reset connection.
	KindDrop
	// KindDelay adds seeded latency before the response is returned.
	KindDelay
	// KindDuplicate delivers the request twice; the server must dedup
	// (lease idempotency, result first-wins).
	KindDuplicate
	// KindTruncate cuts the response body short at a seeded offset — a torn
	// read.
	KindTruncate
	// KindCorrupt flips one seeded bit in the response body.
	KindCorrupt

	// NumKinds is the number of fault kinds (for counts arrays).
	NumKinds int = iota
)

// String names a fault kind.
func (k Kind) String() string {
	switch k {
	case KindReorder:
		return "reorder"
	case KindDrop:
		return "drop"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	}
	return "kind?"
}

// Profile is a set of per-request fault rates in parts-per-million, plus
// the latency band for delays and holds. The zero value injects nothing.
type Profile struct {
	Name string

	Reorder   uint32 // ppm: hold the request so later ones overtake
	Drop      uint32 // ppm: discard the request (transport error)
	Delay     uint32 // ppm: add latency to the response
	Duplicate uint32 // ppm: deliver the request twice
	Truncate  uint32 // ppm: cut the response body short
	Corrupt   uint32 // ppm: flip one bit in the response body

	// DelayMin/DelayMax bound injected latency and reorder holds (defaults
	// 5ms..50ms when a delay or reorder rate is armed).
	DelayMin, DelayMax time.Duration

	// PerRoute overrides the profile for requests whose URL path starts
	// with the key (longest prefix wins). Override profiles' PerRoute maps
	// are ignored — one level of routing is enough.
	PerRoute map[string]Profile
}

// rate returns the ppm rate for kind.
func (p Profile) rate(k Kind) uint32 {
	switch k {
	case KindReorder:
		return p.Reorder
	case KindDrop:
		return p.Drop
	case KindDelay:
		return p.Delay
	case KindDuplicate:
		return p.Duplicate
	case KindTruncate:
		return p.Truncate
	case KindCorrupt:
		return p.Corrupt
	}
	return 0
}

func (p Profile) delayBand() (time.Duration, time.Duration) {
	lo, hi := p.DelayMin, p.DelayMax
	if lo <= 0 {
		lo = 5 * time.Millisecond
	}
	if hi <= lo {
		hi = 50 * time.Millisecond
		if hi <= lo {
			hi = lo * 10
		}
	}
	return lo, hi
}

// Profiles returns the built-in chaos profiles, mild to vicious.
func Profiles() []Profile {
	return []Profile{
		{
			// lossy: the fabric's bread-and-butter hostile network — drops,
			// latency, duplicates. No payload damage.
			Name: "lossy",
			Drop: 20_000, Delay: 50_000, Duplicate: 10_000, Reorder: 10_000,
		},
		{
			// flaky-wire: payload damage — truncated and bit-flipped
			// responses — at rates that exercise every decode path.
			Name:     "flaky-wire",
			Truncate: 20_000, Corrupt: 20_000, Delay: 20_000,
		},
		{
			// monsoon-net: everything at once, hard. The network analogue of
			// the fault package's "monsoon" machine profile.
			Name:    "monsoon-net",
			Reorder: 30_000, Drop: 50_000, Delay: 100_000, Duplicate: 30_000,
			Truncate: 30_000, Corrupt: 30_000,
		},
	}
}

// ByName finds a built-in profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Event is one injected fault, reported to the OnFault hook.
type Event struct {
	// Seq is the 1-based request sequence number the fault fired on.
	Seq uint64
	// Route is the request's URL path.
	Route string
	// Kind is the injected fault class.
	Kind Kind
}

// Transport is a fault-injecting http.RoundTripper. Faults are rolled
// per-request from a seeded stream under a mutex, so a sequential request
// stream sees a fully deterministic schedule (concurrent streams are
// deterministic in aggregate rates but race for roll order, like a real
// network).
type Transport struct {
	// Base performs the real round trips (nil selects
	// http.DefaultTransport).
	Base http.RoundTripper
	// OnFault, when non-nil, observes every injected fault (test hook; also
	// handy for logging a chaos run's schedule). Called synchronously, in
	// roll order, before the fault takes effect.
	OnFault func(Event)
	// Sleep replaces time.Sleep for delay/reorder holds (tests make chaos
	// schedules instantaneous while keeping the roll stream identical).
	Sleep func(time.Duration)

	prof Profile

	mu     sync.Mutex
	dice   [NumKinds]*fault.Dice
	seq    uint64
	counts [NumKinds]uint64
}

// New builds a transport injecting prof's faults from seeded streams. Each
// fault kind rolls from its own stream (derived from seed), so one kind's
// schedule is a pure function of (seed, rate, request sequence) — arming
// or disarming other kinds never shifts it.
func New(prof Profile, seed uint64) *Transport {
	t := &Transport{prof: prof}
	for k := range t.dice {
		t.dice[k] = fault.NewDice(seed ^ uint64(k+1)*0x9e3779b97f4a7c15)
	}
	return t
}

// Counts returns how many faults of each kind have been injected.
func (t *Transport) Counts() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]uint64{}
	for k := 0; k < NumKinds; k++ {
		if t.counts[k] > 0 {
			out[Kind(k).String()] = t.counts[k]
		}
	}
	return out
}

// profileFor resolves the per-route override (longest matching path
// prefix) or the base profile.
func (t *Transport) profileFor(path string) Profile {
	best, bestLen := t.prof, -1
	for prefix, p := range t.prof.PerRoute {
		if len(prefix) > bestLen && strings.HasPrefix(path, prefix) {
			best, bestLen = p, len(prefix)
		}
	}
	return best
}

// schedule holds one request's rolled fault decisions.
type schedule struct {
	seq            uint64
	fire           [NumKinds]bool
	delay, reorder time.Duration
	truncAt        uint64 // raw draw; reduced mod body length at apply time
	corruptBit     uint64
}

// roll draws one request's schedule. Every armed kind consumes exactly one
// draw from its own stream (plus one for its latency band / damage
// offset), in fixed order, regardless of which faults fire — so a kind's
// schedule after N requests depends only on (seed, rate, N): neither other
// kinds being armed nor earlier faults firing can shift it.
func (t *Transport) roll(p Profile) schedule {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := schedule{seq: t.seq}
	lo, hi := p.delayBand()
	for k := 0; k < NumKinds; k++ {
		kind := Kind(k)
		rate := p.rate(kind)
		if rate == 0 {
			continue // disarmed kinds consume no randomness (Dice contract)
		}
		dice := t.dice[k]
		s.fire[k] = dice.Roll(rate)
		// Draw the fault's parameter unconditionally-when-armed, so firing
		// or not firing never shifts the stream for later requests.
		switch kind {
		case KindReorder:
			s.reorder = lo + time.Duration(dice.Rand64()%uint64(hi-lo))
		case KindDelay:
			s.delay = lo + time.Duration(dice.Rand64()%uint64(hi-lo))
		case KindTruncate:
			s.truncAt = dice.Rand64()
		case KindCorrupt:
			s.corruptBit = dice.Rand64()
		}
		if s.fire[k] {
			t.counts[k]++
		}
	}
	return s
}

func (t *Transport) emit(s schedule, route string, k Kind) {
	if t.OnFault != nil {
		t.OnFault(Event{Seq: s.seq, Route: route, Kind: k})
	}
}

func (t *Transport) sleep(d time.Duration) {
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// RoundTrip injects the rolled faults around the base round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	route := req.URL.Path
	s := t.roll(t.profileFor(route))

	if s.fire[KindReorder] {
		// Hold the request so requests issued after this one overtake it.
		t.emit(s, route, KindReorder)
		t.sleep(s.reorder)
	}
	if s.fire[KindDrop] {
		t.emit(s, route, KindDrop)
		return nil, fmt.Errorf("chaos: dropped %s %s (seq %d)", req.Method, route, s.seq)
	}
	if s.fire[KindDuplicate] && req.GetBody != nil {
		// Deliver the request an extra time first; the caller sees only the
		// second delivery's response. The server must tolerate both.
		t.emit(s, route, KindDuplicate)
		if dup := req.Clone(req.Context()); dup != nil {
			if body, err := req.GetBody(); err == nil {
				dup.Body = body
				if resp, err := base.RoundTrip(dup); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}

	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if s.fire[KindDelay] {
		t.emit(s, route, KindDelay)
		t.sleep(s.delay)
	}
	if s.fire[KindTruncate] || s.fire[KindCorrupt] {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if s.fire[KindTruncate] && len(body) > 0 {
			t.emit(s, route, KindTruncate)
			body = body[:s.truncAt%uint64(len(body))]
		}
		if s.fire[KindCorrupt] && len(body) > 0 {
			t.emit(s, route, KindCorrupt)
			bit := s.corruptBit % uint64(len(body)*8)
			body[bit/8] ^= 1 << (bit % 8)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// FormatCounts renders a transport's fault counts as a stable one-line
// summary ("corrupt=3 drop=7"), for logs and CI assertions.
func FormatCounts(counts map[string]uint64) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	return b.String()
}
