package fabric

import (
	"encoding/json"
	"testing"
)

// FuzzProtocolDecode hammers the fabric's trust boundary with adversarial
// bytes. Three properties must hold for every input:
//
//  1. Decoding any wire type never panics — a hostile worker controls
//     every byte the coordinator parses.
//  2. The attestation digest cannot be forged structurally: mutating a
//     payload byte changes the digest, and — because fields are
//     length-prefixed — shifting a byte across the key/payload boundary
//     changes it too.
//  3. A live coordinator never completes a cell on a fuzzer-supplied
//     digest unless it happens to BE the correct digest.
func FuzzProtocolDecode(f *testing.F) {
	for _, seed := range []string{
		`{"name":"sweep","fingerprint":"insts=1000","jobs":[{"key":"fig1/mcf/mtvp4","bench":"mcf","preset":"mtvp4","seed":3}]}`,
		`{"campaign":"deadbeef","spec":{"key":"a/b"},"ttl":15000000000,"heartbeat_every":5000000000}`,
		`{"worker":"host:1","campaign":"deadbeef","key":"a/b","ok":true,"result":{"ipc":1.5},"digest":"sha256:00"}`,
		`{"worker":"host:1","campaign":"deadbeef","key":"a/b","cycles":12345,"commits":678}`,
		`{"worker":"w","campaign":"c","key":"k","ok":false,"error":"boom","fail_kind":"lost-worker","released":true}`,
		"\x00\xff{]", // garbage
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: no wire type panics on arbitrary bytes.
		for _, dst := range []any{
			new(CampaignSpec), new(JobSpec), new(SubmitResponse),
			new(LeaseRequest), new(Lease), new(HeartbeatRequest),
			new(ResultRequest), new(ResultResponse), new(CampaignStatus),
			new(CampaignResults), new([]WorkerStatus),
		} {
			json.Unmarshal(data, dst) // errors are fine, panics are not
		}

		// Property 2: digest integrity over fuzz-derived fields.
		if n := len(data); n >= 3 {
			a, b := n/3, 2*n/3
			campaign := string(data[:a])
			spec := JobSpec{Key: "k" + string(data[a:b])}
			payload := json.RawMessage(data[b:])
			d0 := ResultDigest(campaign, spec, payload)

			mut := append(json.RawMessage(nil), payload...)
			mut[0] ^= 1
			if ResultDigest(campaign, spec, mut) == d0 {
				t.Fatalf("payload mutation left digest unchanged (%q)", data)
			}

			// Move the key's last byte to the payload's front: same
			// concatenated bytes, different field boundary.
			shifted := spec
			shifted.Key = spec.Key[:len(spec.Key)-1]
			moved := append(json.RawMessage{spec.Key[len(spec.Key)-1]}, payload...)
			if ResultDigest(campaign, shifted, moved) == d0 {
				t.Fatalf("field-boundary shift left digest unchanged (%q)", data)
			}
		}

		// Property 3: a live coordinator treats the fuzz input as the
		// attacker-chosen digest; the cell may only complete if the guess
		// is exactly right.
		co, err := NewCoordinator(CoordinatorConfig{Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		defer co.Close()
		spec := testSpec("fuzz", 1)
		sub, err := co.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := co.Lease("fz"); !ok {
			t.Fatal("lease refused")
		}
		payload := json.RawMessage(`{"v":1}`)
		co.Result(ResultRequest{
			Worker: "fz", Campaign: sub.ID, Key: "fuzz/cell-00",
			OK: true, Result: payload, Digest: string(data),
		})
		st, err := co.Status(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := ResultDigest(sub.ID, spec.Jobs[0], payload); st.Done == 1 && string(data) != want {
			t.Fatalf("coordinator accepted forged digest %q (want %q)", data, want)
		}
	})
}
