package vpred

import "mtvp/internal/config"

// SharingStats counts cross-context interference observed on the bank's
// tables. All counters are observational: they never influence predictions
// or training, so every sharing mode simulates identically with the probe
// on or off. Outside shared mode the contexts touch disjoint predictor
// instances, so every counter stays zero.
type SharingStats struct {
	// CrossLookups counts valid lookups whose PC was last trained by a
	// different hardware context.
	CrossLookups uint64
	// Constructive counts confident cross-context lookups that were correct:
	// one context's training helped another (the upside of sharing).
	Constructive uint64
	// Destructive counts confident cross-context lookups that were wrong:
	// another context's training misled this one.
	Destructive uint64
	// CrossTrains counts trainings that refined state last trained by a
	// different context for the same PC.
	CrossTrains uint64
	// CrossEvicts counts trainings that displaced a different context's
	// state for a different PC aliasing to the same probe slot.
	CrossEvicts uint64
}

// ownerSlot tracks which context last trained a PC, for the observational
// interference probe. The probe is a fixed-size direct-mapped shadow table,
// not the predictor's own structure, so it approximates — never alters —
// the predictor's aliasing behaviour.
type ownerSlot struct {
	pc    uint64
	ctx   int32
	valid bool
}

// ownerProbeSlots sizes the shared-mode interference probe.
const ownerProbeSlots = 4096

// Bank organises the configured predictor's tables across hardware contexts
// according to config.VPParams.Sharing and fronts the pipeline's predict and
// train call sites, which carry the hardware context ID:
//
//   - shared: one full-size predictor instance serves every context —
//     maximum effective capacity, but contexts interfere;
//   - private: every context gets its own full-size instance — isolation at
//     a Contexts-fold hardware budget, and freshly spawned contexts start
//     cold;
//   - partitioned: one table budget is divided evenly across per-context
//     instances — isolation at constant cost, with smaller tables.
//
// In shared mode the bank also runs the interference probe behind the
// lookups and trainings. The probe classifies confident cross-context hits
// as constructive or destructive using the load's actual value; like the
// oracle predictor this reads the actual at lookup time, but strictly for
// telemetry — the returned Prediction is untouched.
type Bank struct {
	mode  config.SharingMode
	preds []Predictor
	owner []ownerSlot
	stats SharingStats
}

// NewBank builds the predictor bank for the configuration's predictor,
// sharing mode, and context count.
func NewBank(cfg *config.Config) *Bank {
	b := &Bank{mode: cfg.VP.Sharing}
	contexts := cfg.Contexts
	if contexts < 1 {
		contexts = 1
	}
	switch {
	case b.mode == config.ShareShared || contexts == 1:
		b.preds = []Predictor{New(cfg)}
		if b.mode == config.ShareShared && contexts > 1 {
			b.owner = make([]ownerSlot, ownerProbeSlots)
		}
	case b.mode == config.SharePrivate:
		b.preds = make([]Predictor, contexts)
		for i := range b.preds {
			b.preds[i] = New(cfg)
		}
	default: // SharePartitioned
		b.preds = make([]Predictor, contexts)
		for i := range b.preds {
			b.preds[i] = newScaled(cfg, contexts)
		}
	}
	return b
}

func (b *Bank) pred(ctx int) Predictor {
	if len(b.preds) == 1 {
		return b.preds[0]
	}
	return b.preds[ctx%len(b.preds)]
}

// Lookup predicts the value of the load at pc fetched by hardware context
// ctx. As for Predictor.Lookup, actual is only consumed by the oracle
// predictor and by the observational interference probe.
func (b *Bank) Lookup(ctx int, pc, actual uint64) Prediction {
	pr := b.pred(ctx).Lookup(pc, actual)
	if b.owner != nil && pr.Valid {
		o := &b.owner[pc%uint64(len(b.owner))]
		if o.valid && o.pc == pc && int(o.ctx) != ctx {
			b.stats.CrossLookups++
			if pr.Confident {
				if pr.Value == actual {
					b.stats.Constructive++
				} else {
					b.stats.Destructive++
				}
			}
		}
	}
	return pr
}

// Train trains context ctx's predictor state with the committed value of
// the load at pc.
func (b *Bank) Train(ctx int, pc, actual uint64) {
	if b.owner != nil {
		o := &b.owner[pc%uint64(len(b.owner))]
		if o.valid && int(o.ctx) != ctx {
			if o.pc == pc {
				b.stats.CrossTrains++
			} else {
				b.stats.CrossEvicts++
			}
		}
		*o = ownerSlot{pc: pc, ctx: int32(ctx), valid: true}
	}
	b.pred(ctx).Train(pc, actual)
}

// Stats returns the interference counters accumulated so far.
func (b *Bank) Stats() SharingStats { return b.stats }

// Mode returns the bank's table sharing mode.
func (b *Bank) Mode() config.SharingMode { return b.mode }

// Footprint implements Sizer: total table entries across every instance in
// the bank, plus the probe.
func (b *Bank) Footprint() int {
	n := len(b.owner)
	for _, p := range b.preds {
		if s, ok := p.(Sizer); ok {
			n += s.Footprint()
		}
	}
	return n
}

// scaleDiv divides a table size by the partition count, keeping at least
// one entry.
func scaleDiv(n, div int) int {
	if n /= div; n < 1 {
		n = 1
	}
	return n
}

// newScaled builds the configured predictor with every table sized at
// 1/div of its configured budget, for way-partitioned banks.
func newScaled(cfg *config.Config, div int) Predictor {
	if div <= 1 {
		return New(cfg)
	}
	c := *cfg
	c.VP.WF.VHTEntries = scaleDiv(c.VP.WF.VHTEntries, div)
	c.VP.WF.ValPHTEntries = scaleDiv(c.VP.WF.ValPHTEntries, div)
	c.VP.DFCM.L1Entries = scaleDiv(c.VP.DFCM.L1Entries, div)
	c.VP.DFCM.L2Entries = scaleDiv(c.VP.DFCM.L2Entries, div)
	c.VP.VPQ.TableEntries = scaleDiv(c.VP.VPQ.TableEntries, div)
	c.VP.VPQ.QueueEntries = scaleDiv(c.VP.VPQ.QueueEntries, div)
	c.VP.Equality.TableEntries = scaleDiv(c.VP.Equality.TableEntries, div)
	switch c.VP.Predictor {
	case config.PredLastValue:
		return NewLastValue(scaleDiv(simpleTableEntries, div), simpleThreshold, simpleConfMax)
	case config.PredStride:
		return NewStride(scaleDiv(simpleTableEntries, div), simpleThreshold, simpleConfMax)
	}
	return New(&c)
}
