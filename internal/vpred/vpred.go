// Package vpred implements the load value predictors the paper evaluates:
// an oracle (limit study, §5.1), the hybrid Wang–Franklin predictor used for
// the realistic results (§5.4), an order-3 differential FCM predictor with
// Burtscher's improved index function, and simple last-value and stride
// predictors used as components and baselines.
package vpred

import (
	"fmt"

	"mtvp/internal/config"
)

// Candidate is one predicted value with its confidence.
type Candidate struct {
	Value uint64
	Conf  int
}

// Prediction is the outcome of a predictor lookup. Alternates lists other
// over-threshold candidate values (distinct from Value) for multiple-value
// multithreaded value prediction (§5.6).
type Prediction struct {
	Valid      bool // the predictor has history for this PC
	Value      uint64
	Conf       int
	Confident  bool
	Alternates []Candidate
}

// Predictor predicts the values load instructions will return.
//
// Lookup receives the load's actual value as well as its PC: only the
// oracle predictor uses it (the paper's limit study needs an always-correct
// predictor), and realistic predictors must ignore it. Train is called when
// the load's value resolves, in program order per thread, and performs
// value learning and confidence updates.
type Predictor interface {
	Lookup(pc, actual uint64) Prediction
	Train(pc, actual uint64)
}

// Sizer reports a predictor's allocated table footprint in entries. Every
// registered predictor implements it (property-test enforced); the bounded
// table size invariant requires the footprint to stay constant no matter
// what stream the predictor observes.
type Sizer interface {
	Footprint() int
}

// Sizing New uses for the simple last-value and stride predictors.
const (
	simpleTableEntries = 4096
	simpleThreshold    = 12
	simpleConfMax      = 32
)

// New builds the predictor selected by the configuration. Unknown kinds
// panic: Config.Validate rejects them with a structured error first, so
// reaching the panic means the config registry and this constructor switch
// disagree about what is registered.
func New(cfg *config.Config) Predictor {
	switch cfg.VP.Predictor {
	case config.PredOracle:
		return Oracle{}
	case config.PredWangFranklin:
		return NewWangFranklin(cfg.VP.WF, cfg.VP.LiberalThreshold)
	case config.PredDFCM:
		return NewDFCM(cfg.VP.DFCM)
	case config.PredFCM:
		return NewFCM(cfg.VP.DFCM)
	case config.PredLastValue:
		return NewLastValue(simpleTableEntries, simpleThreshold, simpleConfMax)
	case config.PredStride:
		return NewStride(simpleTableEntries, simpleThreshold, simpleConfMax)
	case config.PredVPQStride:
		return NewVPQStride(cfg.VP.VPQ)
	case config.PredEqualityLCV:
		return NewEqualityLCV(cfg.VP.Equality)
	default:
		panic(fmt.Sprintf("vpred: no constructor for predictor kind %d", int(cfg.VP.Predictor)))
	}
}

// BaseThreshold returns the confidence threshold of the configured
// predictor: the bar a prediction normally clears to be followed. The
// pipeline's quarantine controller uses it to derive the stricter clamped
// threshold applied to a context under misprediction-storm quarantine.
func BaseThreshold(cfg *config.Config) int {
	switch cfg.VP.Predictor {
	case config.PredWangFranklin:
		return cfg.VP.WF.Threshold
	case config.PredDFCM, config.PredFCM:
		return cfg.VP.DFCM.Threshold
	case config.PredLastValue, config.PredStride:
		return simpleThreshold // the fixed sizing New uses for these predictors
	case config.PredVPQStride:
		return cfg.VP.VPQ.Threshold
	case config.PredEqualityLCV:
		return cfg.VP.Equality.Threshold
	default:
		return 0 // oracle: no meaningful confidence scale
	}
}

// Oracle always predicts the correct value with maximum confidence. It is
// the predictor of the §5.1 limit study.
type Oracle struct{}

// Lookup returns the actual value with full confidence.
func (Oracle) Lookup(_, actual uint64) Prediction {
	return Prediction{Valid: true, Value: actual, Conf: 1 << 20, Confident: true}
}

// Train is a no-op.
func (Oracle) Train(_, _ uint64) {}

// Footprint implements Sizer: the oracle holds no state.
func (Oracle) Footprint() int { return 0 }

// LastValue predicts that a load returns the same value as last time.
type LastValue struct {
	entries   []lvEntry
	threshold int
	confMax   int
}

type lvEntry struct {
	pc    uint64
	value uint64
	conf  int
	valid bool
}

// NewLastValue returns a last-value predictor with the given table size and
// confidence parameters.
func NewLastValue(entries, threshold, confMax int) *LastValue {
	return &LastValue{
		entries:   make([]lvEntry, entries),
		threshold: threshold,
		confMax:   confMax,
	}
}

func (p *LastValue) entry(pc uint64) *lvEntry {
	return &p.entries[pc%uint64(len(p.entries))]
}

// Lookup implements Predictor.
func (p *LastValue) Lookup(pc, _ uint64) Prediction {
	e := p.entry(pc)
	if !e.valid || e.pc != pc {
		return Prediction{}
	}
	return Prediction{
		Valid:     true,
		Value:     e.value,
		Conf:      e.conf,
		Confident: e.conf >= p.threshold,
	}
}

// Train implements Predictor.
func (p *LastValue) Train(pc, actual uint64) {
	e := p.entry(pc)
	if !e.valid || e.pc != pc {
		*e = lvEntry{pc: pc, value: actual, conf: 1, valid: true}
		return
	}
	if e.value == actual {
		if e.conf < p.confMax {
			e.conf++
		}
		return
	}
	e.conf -= 8
	if e.conf < 0 {
		e.conf = 0
	}
	e.value = actual
}

// Footprint implements Sizer.
func (p *LastValue) Footprint() int { return len(p.entries) }

// Stride predicts last value plus the last observed stride.
type Stride struct {
	entries   []strideEntry
	threshold int
	confMax   int
}

type strideEntry struct {
	pc     uint64
	last   uint64
	stride int64
	conf   int
	valid  bool
}

// NewStride returns a stride predictor with the given table size and
// confidence parameters.
func NewStride(entries, threshold, confMax int) *Stride {
	return &Stride{
		entries:   make([]strideEntry, entries),
		threshold: threshold,
		confMax:   confMax,
	}
}

func (p *Stride) entry(pc uint64) *strideEntry {
	return &p.entries[pc%uint64(len(p.entries))]
}

// Lookup implements Predictor.
func (p *Stride) Lookup(pc, _ uint64) Prediction {
	e := p.entry(pc)
	if !e.valid || e.pc != pc {
		return Prediction{}
	}
	return Prediction{
		Valid:     true,
		Value:     uint64(int64(e.last) + e.stride),
		Conf:      e.conf,
		Confident: e.conf >= p.threshold,
	}
}

// Train implements Predictor.
func (p *Stride) Train(pc, actual uint64) {
	e := p.entry(pc)
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, last: actual, valid: true}
		return
	}
	stride := int64(actual) - int64(e.last)
	if stride == e.stride {
		if e.conf < p.confMax {
			e.conf++
		}
	} else {
		e.conf -= 8
		if e.conf < 0 {
			e.conf = 0
		}
		e.stride = stride
	}
	e.last = actual
}

// Footprint implements Sizer.
func (p *Stride) Footprint() int { return len(p.entries) }

var (
	_ Predictor = Oracle{}
	_ Predictor = (*LastValue)(nil)
	_ Predictor = (*Stride)(nil)
)
