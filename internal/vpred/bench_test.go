package vpred

import (
	"testing"

	"mtvp/internal/config"
)

// BenchmarkPredictorZoo measures raw lookup+train throughput of every
// registered predictor at its default sizing, plus the bank organisations
// on the VPQ stride predictor (four contexts). The op stream is the mixed
// stride/noise/repeat stream the property suite uses, pre-generated outside
// the timer; ns/op is one lookup plus one train. The ci perf job diffs
// these against the committed BENCH_5.json baseline with benchstat.
func BenchmarkPredictorZoo(b *testing.B) {
	stream := loadStream(3, 1<<16)
	mask := len(stream) - 1

	for _, name := range config.PredictorNames() {
		kind, err := config.ParsePredictor(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			cfg := config.Baseline()
			cfg.VP.Predictor = kind
			p := New(&cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := &stream[i&mask]
				p.Lookup(s.pc, s.value)
				p.Train(s.pc, s.value)
			}
		})
	}
	for _, mode := range config.SharingNames() {
		m, err := config.ParseSharing(mode)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("bank-vpq-"+mode, func(b *testing.B) {
			cfg := config.Baseline()
			cfg.Contexts = 4
			cfg.VP.Predictor = config.PredVPQStride
			cfg.VP.Sharing = m
			bank := NewBank(&cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := &stream[i&mask]
				bank.Lookup(s.ctx, s.pc, s.value)
				bank.Train(s.ctx, s.pc, s.value)
			}
		})
	}
}
