package vpred

import "mtvp/internal/config"

// Slot identifiers inside one Wang–Franklin VHT entry. The paper's
// configuration uses five learned values, hardwired zero and one, and a
// stride value — eight candidates, so a slot id fits in three bits of the
// pattern history.
const (
	wfSlotZero   = 5
	wfSlotOne    = 6
	wfSlotStride = 7
	wfSlots      = 8
	wfSlotBits   = 3
	wfSlotNone   = 0 // history code reused when nothing matched (learned 0 is replaced)
)

type wfVHTEntry struct {
	pc     uint64
	values [5]uint64 // learned values (LearnedValues <= 5)
	last   uint64    // last value, for the stride component
	stride int64
	hist   uint64 // pattern history: HistLen slot ids, 3 bits each
	valid  bool
}

type wfPHTEntry struct {
	conf [wfSlots]int16
}

// WangFranklin is the hybrid value predictor of §5.4: a PC-indexed value
// history table (VHT) holding five learned values, hardwired zero and one,
// and a stride; and a pattern-indexed value pattern history table (ValPHT)
// holding a saturating confidence per candidate slot. Confidence moves +1
// on correct predictions and −8 on incorrect ones, saturating at 32, with a
// prediction threshold of 12.
type WangFranklin struct {
	p       config.WangFranklinParams
	liberal int // secondary threshold for multi-value mode (0 = p.Threshold)
	vht     []wfVHTEntry
	pht     []wfPHTEntry
	histMsk uint64
}

// NewWangFranklin builds the predictor. liberalThreshold, when nonzero,
// is the (lower) confidence bar applied to alternate values reported for
// multiple-value prediction.
func NewWangFranklin(p config.WangFranklinParams, liberalThreshold int) *WangFranklin {
	if p.LearnedValues > 5 {
		p.LearnedValues = 5
	}
	return &WangFranklin{
		p:       p,
		liberal: liberalThreshold,
		vht:     make([]wfVHTEntry, p.VHTEntries),
		pht:     make([]wfPHTEntry, p.ValPHTEntries),
		histMsk: (1 << uint(p.HistLen*wfSlotBits)) - 1,
	}
}

func (w *WangFranklin) vhtEntry(pc uint64) *wfVHTEntry {
	return &w.vht[pc%uint64(len(w.vht))]
}

func (w *WangFranklin) phtIndex(pc, hist uint64) uint64 {
	// Mix the pattern history with PC bits so different loads sharing a
	// pattern do not fully alias.
	h := hist ^ (pc << 7) ^ (pc >> 3)
	return h % uint64(len(w.pht))
}

// slotValue returns the candidate value slot s proposes.
func (w *WangFranklin) slotValue(e *wfVHTEntry, s int) uint64 {
	switch s {
	case wfSlotZero:
		return 0
	case wfSlotOne:
		return 1
	case wfSlotStride:
		return uint64(int64(e.last) + e.stride)
	default:
		return e.values[s]
	}
}

func (w *WangFranklin) activeSlots() int {
	return w.p.LearnedValues // learned slots in use
}

// Lookup implements Predictor. The actual value is ignored.
func (w *WangFranklin) Lookup(pc, _ uint64) Prediction {
	e := w.vhtEntry(pc)
	if !e.valid || e.pc != pc {
		return Prediction{}
	}
	ph := &w.pht[w.phtIndex(pc, e.hist)]

	best, bestConf := -1, -1
	for s := 0; s < wfSlots; s++ {
		if s >= w.activeSlots() && s < wfSlotZero {
			continue
		}
		if int(ph.conf[s]) > bestConf {
			best, bestConf = s, int(ph.conf[s])
		}
	}
	// In multi-value mode the predictor itself is "more liberal" (§5.6):
	// the lowered bar applies to the primary prediction as well as to the
	// alternates, with the discriminating criticality selector expected to
	// keep the extra predictions focused on profitable loads.
	bar := w.p.Threshold
	if w.liberal > 0 && w.liberal < bar {
		bar = w.liberal
	}
	pr := Prediction{
		Valid:     true,
		Value:     w.slotValue(e, best),
		Conf:      bestConf,
		Confident: bestConf >= bar,
	}

	altBar := w.liberal
	if altBar <= 0 {
		altBar = w.p.Threshold
	}
	for s := 0; s < wfSlots; s++ {
		if s == best || (s >= w.activeSlots() && s < wfSlotZero) {
			continue
		}
		if int(ph.conf[s]) < altBar {
			continue
		}
		v := w.slotValue(e, s)
		if v == pr.Value {
			continue
		}
		dup := false
		for _, a := range pr.Alternates {
			if a.Value == v {
				dup = true
				break
			}
		}
		if !dup {
			pr.Alternates = append(pr.Alternates, Candidate{Value: v, Conf: int(ph.conf[s])})
		}
	}
	return pr
}

// Train implements Predictor: confidence update, pattern-history shift,
// learned-value replacement, and stride update, in the order the paper
// describes (stride speculatively at use, the rest at commit — the
// simulator trains in per-thread program order, which matches both).
func (w *WangFranklin) Train(pc, actual uint64) {
	e := w.vhtEntry(pc)
	if !e.valid || e.pc != pc {
		*e = wfVHTEntry{pc: pc, last: actual, valid: true}
		for i := 0; i < w.activeSlots(); i++ {
			e.values[i] = actual
		}
		return
	}
	ph := &w.pht[w.phtIndex(pc, e.hist)]

	matched := -1
	for s := 0; s < wfSlots; s++ {
		if s >= w.activeSlots() && s < wfSlotZero {
			continue
		}
		if w.slotValue(e, s) == actual {
			if matched == -1 || ph.conf[s] > ph.conf[matched] {
				matched = s
			}
			if int(ph.conf[s]) < w.p.ConfMax {
				ph.conf[s] += int16(w.p.ConfInc)
			}
		} else if int(ph.conf[s]) >= w.p.Threshold {
			// This slot would have been (or nearly been) predicted
			// and was wrong: back off hard.
			ph.conf[s] -= int16(w.p.ConfDec)
			if ph.conf[s] < 0 {
				ph.conf[s] = 0
			}
		}
	}

	histSlot := matched
	if matched == -1 {
		// No candidate matched: replace the globally least confident
		// learned value with the new one.
		victim := 0
		for s := 1; s < w.activeSlots(); s++ {
			if ph.conf[s] < ph.conf[victim] {
				victim = s
			}
		}
		e.values[victim] = actual
		ph.conf[victim] = 1
		histSlot = victim
	}

	e.hist = ((e.hist << wfSlotBits) | uint64(histSlot)) & w.histMsk
	e.stride = int64(actual) - int64(e.last)
	e.last = actual
}

// Footprint implements Sizer: VHT plus ValPHT entries.
func (w *WangFranklin) Footprint() int { return len(w.vht) + len(w.pht) }

var _ Predictor = (*WangFranklin)(nil)
