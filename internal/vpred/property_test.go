package vpred

import (
	"reflect"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/mem"
)

// predictorsUnderTest builds one fresh instance of every realistic predictor
// per call, so two calls give independent but identically-configured pairs.
func predictorsUnderTest() map[string]func() Predictor {
	return map[string]func() Predictor{
		"wf":        func() Predictor { return NewWangFranklin(config.DefaultWF(), 0) },
		"wf-multi":  func() Predictor { return NewWangFranklin(config.DefaultWF(), 6) },
		"dfcm":      func() Predictor { return NewDFCM(config.DefaultDFCM()) },
		"fcm":       func() Predictor { return NewFCM(config.DefaultDFCM()) },
		"lastvalue": func() Predictor { return NewLastValue(4096, 12, 32) },
		"stride":    func() Predictor { return NewStride(4096, 12, 32) },
	}
}

// loadStream yields a mixed pc/value stream: per-PC stride sequences with
// pseudorandom noise and repeats, so every predictor component (last value,
// stride, learned values, context history) gets exercised.
func loadStream(seed uint64, n int) []struct{ pc, value uint64 } {
	r := mem.NewRand(seed)
	const pcs = 48
	var state [pcs]uint64
	out := make([]struct{ pc, value uint64 }, n)
	for i := range out {
		p := r.Intn(pcs)
		pc := uint64(0x4000 + p*4)
		switch r.Intn(8) {
		case 0: // noise value
			state[p] = r.Next()
		case 1: // repeat (no update)
		default: // stride continuation
			state[p] += uint64(p%5) * 8
		}
		out[i] = struct{ pc, value uint64 }{pc, state[p]}
	}
	return out
}

// TestDeterministicPredictionSequence drives two identically-configured
// predictor instances with the same load stream and requires bit-identical
// prediction sequences: predictors hold no hidden nondeterministic state.
func TestDeterministicPredictionSequence(t *testing.T) {
	for name, build := range predictorsUnderTest() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			a, b := build(), build()
			for i, s := range loadStream(11, 20_000) {
				pa := a.Lookup(s.pc, s.value)
				pb := b.Lookup(s.pc, s.value)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("step %d: predictions diverge: %+v vs %+v", i, pa, pb)
				}
				a.Train(s.pc, s.value)
				b.Train(s.pc, s.value)
			}
		})
	}
}

// TestConfidenceBounds scans every confidence counter after every training
// step: counters must saturate at ConfMax and never go negative, under a
// stream engineered to hammer both the increment and the hard-backoff paths.
func TestConfidenceBounds(t *testing.T) {
	wfp := config.DefaultWF()
	dp := config.DefaultDFCM()
	wf := NewWangFranklin(wfp, 0)
	dfcm := NewDFCM(dp)
	fcm := NewFCM(dp)

	checkWF := func(step int) {
		for i := range wf.pht {
			for s, c := range wf.pht[i].conf {
				if c < 0 || int(c) > wfp.ConfMax {
					t.Fatalf("step %d: WF pht[%d] slot %d confidence %d outside [0,%d]",
						step, i, s, c, wfp.ConfMax)
				}
			}
		}
	}
	checkL2 := func(step int, name string, confAt func(i int) int, n int) {
		for i := 0; i < n; i++ {
			if c := confAt(i); c < 0 || c > dp.ConfMax {
				t.Fatalf("step %d: %s l2[%d] confidence %d outside [0,%d]",
					step, name, i, c, dp.ConfMax)
			}
		}
	}

	for i, s := range loadStream(23, 30_000) {
		wf.Train(s.pc, s.value)
		dfcm.Train(s.pc, s.value)
		fcm.Train(s.pc, s.value)
		// A full table scan per step is quadratic; sample periodically but
		// always scan the first steps, where saturation bugs surface.
		if i < 64 || i%997 == 0 {
			checkWF(i)
			checkL2(i, "dfcm", func(j int) int { return dfcm.l2[j].conf }, len(dfcm.l2))
			checkL2(i, "fcm", func(j int) int { return fcm.l2[j].conf }, len(fcm.l2))
		}
	}
}

// TestTableAliasingInBounds feeds adversarial PCs (extreme magnitudes, dense
// aliases onto deliberately tiny tables) and extreme values: every internal
// index stays within its table and lookups never panic.
func TestTableAliasingInBounds(t *testing.T) {
	wfp := config.DefaultWF()
	wfp.VHTEntries, wfp.ValPHTEntries = 8, 16 // force heavy aliasing
	dp := config.DefaultDFCM()
	dp.L1Entries, dp.L2Entries = 8, 16

	preds := map[string]Predictor{
		"wf-tiny":   NewWangFranklin(wfp, 0),
		"dfcm-tiny": NewDFCM(dp),
		"fcm-tiny":  NewFCM(dp),
		"lv-tiny":   NewLastValue(8, 12, 32),
		"stride-8":  NewStride(8, 12, 32),
	}
	pcs := []uint64{0, 1, ^uint64(0), 1 << 63, 0xdeadbeefdeadbeef, 1<<32 + 7, 3}
	vals := []uint64{0, 1, ^uint64(0), 1 << 63, 0x8000000000000001, 42}

	r := mem.NewRand(5)
	for name, p := range preds {
		for i := 0; i < 5_000; i++ {
			pc := pcs[r.Intn(len(pcs))] + uint64(r.Intn(3))
			v := vals[r.Intn(len(vals))] + r.Next()%7
			p.Lookup(pc, v) // must not panic on any alias pattern
			p.Train(pc, v)
		}
		_ = name
	}

	// Direct index checks on the hash functions with adversarial state.
	wf := preds["wf-tiny"].(*WangFranklin)
	for _, pc := range pcs {
		for _, hist := range vals {
			if idx := wf.phtIndex(pc, hist); idx >= uint64(len(wf.pht)) {
				t.Fatalf("WF pht index %d out of bounds for pc %#x hist %#x", idx, pc, hist)
			}
		}
	}
	dfcm := preds["dfcm-tiny"].(*DFCM)
	e := &dfcmL1{pc: ^uint64(0), deltas: []int64{1 << 62, -(1 << 62), -1}}
	if idx := dfcm.index(e); idx >= uint64(len(dfcm.l2)) {
		t.Fatalf("DFCM l2 index %d out of bounds", idx)
	}
	fcm := preds["fcm-tiny"].(*FCM)
	fe := &fcmL1{pc: 1 << 63, hist: []uint64{^uint64(0), 0, 1 << 62}}
	if idx := fcm.index(fe); idx >= uint64(len(fcm.l2)) {
		t.Fatalf("FCM l2 index %d out of bounds", idx)
	}
}
