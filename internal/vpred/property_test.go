package vpred

import (
	"reflect"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/mem"
)

// zooCase is one predictor under generic invariant test: a fresh-instance
// builder plus the ceiling its Lookup-visible confidence may reach.
type zooCase struct {
	name    string
	build   func() Predictor
	confMax int
}

// registeredZoo builds one case per predictor registered in the config
// registry, via the same constructor path the pipeline uses. A predictor
// added to the registry without property coverage fails here (the confMax
// table must name it).
func registeredZoo(t *testing.T) []zooCase {
	t.Helper()
	confMax := map[config.PredictorKind]int{
		config.PredOracle:       1 << 20,
		config.PredWangFranklin: config.DefaultWF().ConfMax,
		config.PredDFCM:         config.DefaultDFCM().ConfMax,
		config.PredFCM:          config.DefaultDFCM().ConfMax,
		config.PredLastValue:    simpleConfMax,
		config.PredStride:       simpleConfMax,
		config.PredVPQStride:    config.DefaultVPQStride().ConfMax,
		config.PredEqualityLCV:  config.DefaultEquality().CounterMax,
	}
	var out []zooCase
	for _, name := range config.PredictorNames() {
		kind, err := config.ParsePredictor(name)
		if err != nil {
			t.Fatalf("registry name %q does not parse: %v", name, err)
		}
		cm, ok := confMax[kind]
		if !ok {
			t.Fatalf("predictor %q is registered but has no property-test confMax entry", name)
		}
		out = append(out, zooCase{
			name: name,
			build: func() Predictor {
				cfg := config.Baseline()
				cfg.VP.Predictor = kind
				return New(&cfg)
			},
			confMax: cm,
		})
	}
	return out
}

// bankCase is one (predictor × sharing mode) bank over four hardware
// contexts.
type bankCase struct {
	name  string
	build func() *Bank
}

// registeredBanks crosses every registered predictor with every registered
// sharing mode, built through the same vpred.NewBank path the pipeline uses.
func registeredBanks(t *testing.T) []bankCase {
	t.Helper()
	var out []bankCase
	for _, pname := range config.PredictorNames() {
		kind, err := config.ParsePredictor(pname)
		if err != nil {
			t.Fatalf("registry name %q does not parse: %v", pname, err)
		}
		for _, sname := range config.SharingNames() {
			mode, err := config.ParseSharing(sname)
			if err != nil {
				t.Fatalf("sharing name %q does not parse: %v", sname, err)
			}
			kind, mode := kind, mode
			out = append(out, bankCase{
				name: pname + "/" + sname,
				build: func() *Bank {
					cfg := config.Baseline()
					cfg.Contexts = 4
					cfg.VP.Predictor = kind
					cfg.VP.Sharing = mode
					return NewBank(&cfg)
				},
			})
		}
	}
	return out
}

// loadStream yields a mixed pc/value stream: per-PC stride sequences with
// pseudorandom noise and repeats, so every predictor component (last value,
// stride, learned values, context history) gets exercised. The ctx column
// drives bank tests; plain predictors ignore it.
func loadStream(seed uint64, n int) []struct {
	pc, value uint64
	ctx       int
} {
	r := mem.NewRand(seed)
	const pcs = 48
	var state [pcs]uint64
	out := make([]struct {
		pc, value uint64
		ctx       int
	}, n)
	for i := range out {
		p := r.Intn(pcs)
		pc := uint64(0x4000 + p*4)
		switch r.Intn(8) {
		case 0: // noise value
			state[p] = r.Next()
		case 1: // repeat (no update)
		default: // stride continuation
			state[p] += uint64(p%5) * 8
		}
		out[i] = struct {
			pc, value uint64
			ctx       int
		}{pc, state[p], r.Intn(4)}
	}
	return out
}

// TestDeterministicPredictionSequence drives two identically-configured
// instances of every registered predictor with the same load stream and
// requires bit-identical prediction sequences: predictors hold no hidden
// nondeterministic state.
func TestDeterministicPredictionSequence(t *testing.T) {
	for _, zc := range registeredZoo(t) {
		zc := zc
		t.Run(zc.name, func(t *testing.T) {
			a, b := zc.build(), zc.build()
			for i, s := range loadStream(11, 20_000) {
				pa := a.Lookup(s.pc, s.value)
				pb := b.Lookup(s.pc, s.value)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("step %d: predictions diverge: %+v vs %+v", i, pa, pb)
				}
				a.Train(s.pc, s.value)
				b.Train(s.pc, s.value)
			}
		})
	}
}

// TestBankDeterministicSequence is the bank counterpart over every
// (predictor × sharing mode) pair: identical lookup/train histories across
// four contexts must give bit-identical prediction sequences and identical
// interference counters.
func TestBankDeterministicSequence(t *testing.T) {
	for _, bc := range registeredBanks(t) {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			a, b := bc.build(), bc.build()
			for i, s := range loadStream(17, 20_000) {
				pa := a.Lookup(s.ctx, s.pc, s.value)
				pb := b.Lookup(s.ctx, s.pc, s.value)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("step %d: bank predictions diverge: %+v vs %+v", i, pa, pb)
				}
				a.Train(s.ctx, s.pc, s.value)
				b.Train(s.ctx, s.pc, s.value)
			}
			if a.Stats() != b.Stats() {
				t.Fatalf("interference counters diverge: %+v vs %+v", a.Stats(), b.Stats())
			}
		})
	}
}

// TestTrainPredictConsistency holds each PC's value constant: whatever a
// predictor's internal organisation, a confident prediction for a PC that
// has only ever committed one value must be that value. Runs over every
// registered predictor and every bank (predictor × sharing mode).
func TestTrainPredictConsistency(t *testing.T) {
	const pcs = 16
	pcOf := func(i int) uint64 { return uint64(0x1000 + i*8) }
	valOf := func(i int) uint64 { return uint64(0xABC0 + i*3) }

	for _, zc := range registeredZoo(t) {
		zc := zc
		t.Run(zc.name, func(t *testing.T) {
			p := zc.build()
			r := mem.NewRand(7)
			for i := 0; i < 20_000; i++ {
				k := r.Intn(pcs)
				pr := p.Lookup(pcOf(k), valOf(k))
				if pr.Valid && pr.Confident && pr.Value != valOf(k) {
					t.Fatalf("step %d pc %#x: confident prediction %#x for constant %#x",
						i, pcOf(k), pr.Value, valOf(k))
				}
				p.Train(pcOf(k), valOf(k))
			}
		})
	}
	for _, bc := range registeredBanks(t) {
		bc := bc
		t.Run("bank/"+bc.name, func(t *testing.T) {
			b := bc.build()
			r := mem.NewRand(9)
			for i := 0; i < 20_000; i++ {
				k, ctx := r.Intn(pcs), r.Intn(4)
				pr := b.Lookup(ctx, pcOf(k), valOf(k))
				if pr.Valid && pr.Confident && pr.Value != valOf(k) {
					t.Fatalf("step %d pc %#x ctx %d: confident prediction %#x for constant %#x",
						i, pcOf(k), ctx, pr.Value, valOf(k))
				}
				b.Train(ctx, pcOf(k), valOf(k))
			}
		})
	}
}

// TestConfidenceMonotonicity trains a single PC on a constant value: the
// Lookup-visible confidence must be non-decreasing (no predictor may lose
// faith in a value that keeps repeating) and must stay within [0, confMax].
// The training count stays below the equality predictor's decay period,
// which is the one sanctioned source of downward drift.
func TestConfidenceMonotonicity(t *testing.T) {
	for _, zc := range registeredZoo(t) {
		zc := zc
		t.Run(zc.name, func(t *testing.T) {
			p := zc.build()
			const pc, val = 0x2040, 42
			prev := -1
			for i := 0; i < 2_000; i++ {
				pr := p.Lookup(pc, val)
				if pr.Valid {
					if pr.Conf < 0 || pr.Conf > zc.confMax {
						t.Fatalf("step %d: confidence %d outside [0,%d]", i, pr.Conf, zc.confMax)
					}
					if pr.Conf < prev {
						t.Fatalf("step %d: confidence fell %d -> %d on a constant stream",
							i, prev, pr.Conf)
					}
					prev = pr.Conf
				}
				p.Train(pc, val)
			}
			if prev < 0 {
				t.Fatal("predictor never produced a valid prediction on a constant stream")
			}
		})
	}
}

// TestBoundedFootprint pins the bounded-table-size invariant: every
// registered predictor (and every bank) implements Sizer, and its footprint
// after 100k mixed-stream trainings equals its footprint at construction —
// no predictor may grow state with the stream.
func TestBoundedFootprint(t *testing.T) {
	stream := loadStream(29, 100_000)
	for _, zc := range registeredZoo(t) {
		zc := zc
		t.Run(zc.name, func(t *testing.T) {
			p := zc.build()
			s, ok := p.(Sizer)
			if !ok {
				t.Fatalf("registered predictor %s does not implement Sizer", zc.name)
			}
			initial := s.Footprint()
			for _, e := range stream {
				p.Lookup(e.pc, e.value)
				p.Train(e.pc, e.value)
			}
			if got := s.Footprint(); got != initial {
				t.Fatalf("footprint grew %d -> %d over the stream", initial, got)
			}
		})
	}
	for _, bc := range registeredBanks(t) {
		bc := bc
		t.Run("bank/"+bc.name, func(t *testing.T) {
			b := bc.build()
			initial := b.Footprint()
			for _, e := range stream {
				b.Lookup(e.ctx, e.pc, e.value)
				b.Train(e.ctx, e.pc, e.value)
			}
			if got := b.Footprint(); got != initial {
				t.Fatalf("bank footprint grew %d -> %d over the stream", initial, got)
			}
		})
	}
}

// TestPartitionedFootprintConstant checks the partitioned bank's sizing
// contract: total footprint must not exceed the shared bank's (constant
// hardware budget), while the private bank's scales with the context count.
func TestPartitionedFootprintConstant(t *testing.T) {
	for _, pname := range config.PredictorNames() {
		kind, _ := config.ParsePredictor(pname)
		if kind == config.PredOracle {
			continue // stateless: every organisation has zero footprint
		}
		mk := func(mode config.SharingMode) *Bank {
			cfg := config.Baseline()
			cfg.Contexts = 4
			cfg.VP.Predictor = kind
			cfg.VP.Sharing = mode
			return NewBank(&cfg)
		}
		shared, private, part := mk(config.ShareShared), mk(config.SharePrivate), mk(config.SharePartitioned)
		sharedTables := shared.Footprint() - ownerProbeSlots // probe rides only on the shared bank
		if part.Footprint() > sharedTables {
			t.Errorf("%s: partitioned footprint %d exceeds shared budget %d",
				pname, part.Footprint(), sharedTables)
		}
		if private.Footprint() < sharedTables {
			t.Errorf("%s: private footprint %d below one full-size bank %d",
				pname, private.Footprint(), sharedTables)
		}
	}
}

// TestConfidenceBounds scans every confidence counter after every training
// step: counters must saturate at ConfMax and never go negative, under a
// stream engineered to hammer both the increment and the hard-backoff paths.
func TestConfidenceBounds(t *testing.T) {
	wfp := config.DefaultWF()
	dp := config.DefaultDFCM()
	wf := NewWangFranklin(wfp, 0)
	dfcm := NewDFCM(dp)
	fcm := NewFCM(dp)
	eqp := config.DefaultEquality()
	eq := NewEqualityLCV(eqp)
	vq := NewVPQStride(config.DefaultVPQStride())

	checkWF := func(step int) {
		for i := range wf.pht {
			for s, c := range wf.pht[i].conf {
				if c < 0 || int(c) > wfp.ConfMax {
					t.Fatalf("step %d: WF pht[%d] slot %d confidence %d outside [0,%d]",
						step, i, s, c, wfp.ConfMax)
				}
			}
		}
	}
	checkL2 := func(step int, name string, confAt func(i int) int, n int) {
		for i := 0; i < n; i++ {
			if c := confAt(i); c < 0 || c > dp.ConfMax {
				t.Fatalf("step %d: %s l2[%d] confidence %d outside [0,%d]",
					step, name, i, c, dp.ConfMax)
			}
		}
	}
	checkEq := func(step int) {
		for i := range eq.table {
			e := &eq.table[i]
			if e.eq < 0 || e.eq > eqp.CounterMax || e.neq < 0 || e.neq > eqp.CounterMax {
				t.Fatalf("step %d: eqlcv[%d] counters (%d,%d) outside [0,%d]",
					step, i, e.eq, e.neq, eqp.CounterMax)
			}
		}
	}
	checkVQ := func(step int) {
		for i := range vq.table {
			if c := vq.table[i].conf; c < 0 || c > vq.p.ConfMax {
				t.Fatalf("step %d: vpq svp[%d] confidence %d outside [0,%d]",
					step, i, c, vq.p.ConfMax)
			}
		}
		if occ := vq.occupancy(); occ < 0 || occ > len(vq.queue) {
			t.Fatalf("step %d: VPQ occupancy %d outside [0,%d]", step, occ, len(vq.queue))
		}
	}

	for i, s := range loadStream(23, 30_000) {
		wf.Train(s.pc, s.value)
		dfcm.Train(s.pc, s.value)
		fcm.Train(s.pc, s.value)
		eq.Train(s.pc, s.value)
		vq.Lookup(s.pc, s.value) // VPQ enqueue path needs lookups to fill
		vq.Train(s.pc, s.value)
		// A full table scan per step is quadratic; sample periodically but
		// always scan the first steps, where saturation bugs surface.
		if i < 64 || i%997 == 0 {
			checkWF(i)
			checkL2(i, "dfcm", func(j int) int { return dfcm.l2[j].conf }, len(dfcm.l2))
			checkL2(i, "fcm", func(j int) int { return fcm.l2[j].conf }, len(fcm.l2))
			checkEq(i)
			checkVQ(i)
		}
	}
}

// TestTableAliasingInBounds feeds adversarial PCs (extreme magnitudes, dense
// aliases onto deliberately tiny tables) and extreme values: every internal
// index stays within its table and lookups never panic.
func TestTableAliasingInBounds(t *testing.T) {
	wfp := config.DefaultWF()
	wfp.VHTEntries, wfp.ValPHTEntries = 8, 16 // force heavy aliasing
	dp := config.DefaultDFCM()
	dp.L1Entries, dp.L2Entries = 8, 16
	vqp := config.DefaultVPQStride()
	vqp.TableEntries, vqp.QueueEntries = 8, 4
	eqp := config.DefaultEquality()
	eqp.TableEntries, eqp.DecayPeriod = 8, 64

	preds := map[string]Predictor{
		"wf-tiny":    NewWangFranklin(wfp, 0),
		"dfcm-tiny":  NewDFCM(dp),
		"fcm-tiny":   NewFCM(dp),
		"lv-tiny":    NewLastValue(8, 12, 32),
		"stride-8":   NewStride(8, 12, 32),
		"vpq-tiny":   NewVPQStride(vqp),
		"eqlcv-tiny": NewEqualityLCV(eqp),
	}
	pcs := []uint64{0, 1, ^uint64(0), 1 << 63, 0xdeadbeefdeadbeef, 1<<32 + 7, 3}
	vals := []uint64{0, 1, ^uint64(0), 1 << 63, 0x8000000000000001, 42}

	r := mem.NewRand(5)
	for name, p := range preds {
		for i := 0; i < 5_000; i++ {
			pc := pcs[r.Intn(len(pcs))] + uint64(r.Intn(3))
			v := vals[r.Intn(len(vals))] + r.Next()%7
			p.Lookup(pc, v) // must not panic on any alias pattern
			p.Train(pc, v)
		}
		_ = name
	}

	// Direct index checks on the hash functions with adversarial state.
	wf := preds["wf-tiny"].(*WangFranklin)
	for _, pc := range pcs {
		for _, hist := range vals {
			if idx := wf.phtIndex(pc, hist); idx >= uint64(len(wf.pht)) {
				t.Fatalf("WF pht index %d out of bounds for pc %#x hist %#x", idx, pc, hist)
			}
		}
	}
	dfcm := preds["dfcm-tiny"].(*DFCM)
	e := &dfcmL1{pc: ^uint64(0), deltas: []int64{1 << 62, -(1 << 62), -1}}
	if idx := dfcm.index(e); idx >= uint64(len(dfcm.l2)) {
		t.Fatalf("DFCM l2 index %d out of bounds", idx)
	}
	fcm := preds["fcm-tiny"].(*FCM)
	fe := &fcmL1{pc: 1 << 63, hist: []uint64{^uint64(0), 0, 1 << 62}}
	if idx := fcm.index(fe); idx >= uint64(len(fcm.l2)) {
		t.Fatalf("FCM l2 index %d out of bounds", idx)
	}
	vq := preds["vpq-tiny"].(*VPQStride)
	if occ := vq.occupancy(); occ < 0 || occ > len(vq.queue) {
		t.Fatalf("VPQ occupancy %d outside [0,%d] after aliasing storm", occ, len(vq.queue))
	}
}
