package vpred

import (
	"reflect"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/mem"
)

// fuzzStep decodes one op byte against a small PC/value universe. The low
// bits pick the action, the high bits the PC; values come from a per-PC
// rolling state seeded by the fuzzer so streams mix strides, repeats and
// noise.
type fuzzDriver struct {
	r     *mem.Rand
	state [8]uint64
}

func newFuzzDriver(seed uint64) *fuzzDriver {
	d := &fuzzDriver{r: mem.NewRand(seed | 1)}
	for i := range d.state {
		d.state[i] = d.r.Next()
	}
	return d
}

func (d *fuzzDriver) decode(op byte) (pc, value uint64, doLookup, doTrain bool) {
	p := int(op>>3) & 7
	switch op & 7 {
	case 0: // lookup only (a squashed speculative fetch: never retires)
		doLookup = true
	case 1: // train only (a load that was never looked up)
		doTrain = true
	case 7: // value jump: break the stride, then train
		d.state[p] = d.r.Next()
		doLookup, doTrain = true, true
	default: // the common retired-load path: lookup then train, stride walk
		d.state[p] += uint64(p) * 4
		doLookup, doTrain = true, true
	}
	return uint64(0x100 + p*8), d.state[p], doLookup, doTrain
}

// FuzzVPQStridePredictor drives a deliberately tiny VPQ stride predictor
// with an arbitrary interleaving of lookups (VPQ enqueues) and trains (VPQ
// retires) — including the adversarial shapes the pipeline produces:
// speculative lookups that never retire, and retires with no matching
// in-flight entry. Invariants: queue occupancy and confidence stay bounded,
// the footprint never grows, and a twin instance fed the same stream stays
// bit-identical.
func FuzzVPQStridePredictor(f *testing.F) {
	f.Add(uint64(15), []byte{0x02, 0x0a, 0x12, 0x1a, 0x02, 0x0a})
	f.Add(uint64(1), []byte{0x00, 0x00, 0x00, 0x00, 0x01, 0x01}) // orphan storm, then bare retires
	f.Add(uint64(7), []byte{0x3f, 0x3f, 0x02, 0x3f, 0x02, 0x02}) // value jumps breaking strides
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		p := config.DefaultVPQStride()
		p.TableEntries, p.QueueEntries = 8, 4 // tiny: force aliasing and queue wrap
		a, b := NewVPQStride(p), NewVPQStride(p)
		d := newFuzzDriver(seed)
		foot := a.Footprint()
		for i, op := range ops {
			pc, v, doLookup, doTrain := d.decode(op)
			if doLookup {
				pa, pb := a.Lookup(pc, v), b.Lookup(pc, v)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("op %d: twins diverge: %+v vs %+v", i, pa, pb)
				}
				if pa.Conf < 0 || pa.Conf > p.ConfMax {
					t.Fatalf("op %d: confidence %d outside [0,%d]", i, pa.Conf, p.ConfMax)
				}
			}
			if doTrain {
				a.Train(pc, v)
				b.Train(pc, v)
			}
			if occ := a.occupancy(); occ < 0 || occ > len(a.queue) {
				t.Fatalf("op %d: occupancy %d outside [0,%d]", i, occ, len(a.queue))
			}
		}
		if got := a.Footprint(); got != foot {
			t.Fatalf("footprint grew %d -> %d", foot, got)
		}
	})
}

// FuzzEqualityLCVPredictor drives a tiny equality/LCV predictor through
// arbitrary op streams with a short decay period so the sweep fires often.
// Invariants: both dueling counters stay in [0, CounterMax], a confident
// prediction always returns the last committed value for that entry, and a
// twin instance stays bit-identical.
func FuzzEqualityLCVPredictor(f *testing.F) {
	f.Add(uint64(15), []byte{0x02, 0x0a, 0x12, 0x1a, 0x02, 0x0a})
	f.Add(uint64(3), []byte{0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01, 0x01}) // train-only: exercise decay
	f.Add(uint64(9), []byte{0x3f, 0x02, 0x3f, 0x02, 0x3f, 0x02})                   // alternating values duel the counters
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		p := config.DefaultEquality()
		p.TableEntries, p.DecayPeriod = 8, 4 // tiny table, near-constant decay pressure
		a, b := NewEqualityLCV(p), NewEqualityLCV(p)
		d := newFuzzDriver(seed)
		foot := a.Footprint()
		for i, op := range ops {
			pc, v, doLookup, doTrain := d.decode(op)
			if doLookup {
				pa, pb := a.Lookup(pc, v), b.Lookup(pc, v)
				if !reflect.DeepEqual(pa, pb) {
					t.Fatalf("op %d: twins diverge: %+v vs %+v", i, pa, pb)
				}
				if pa.Confident {
					e := &a.table[pc%uint64(len(a.table))]
					if !e.valid || e.pc != pc || pa.Value != e.value {
						t.Fatalf("op %d: confident prediction %#x does not match stored entry", i, pa.Value)
					}
				}
			}
			if doTrain {
				a.Train(pc, v)
				b.Train(pc, v)
			}
			for j := range a.table {
				e := &a.table[j]
				if e.eq < 0 || e.eq > p.CounterMax || e.neq < 0 || e.neq > p.CounterMax {
					t.Fatalf("op %d: entry %d counters (%d,%d) outside [0,%d]",
						i, j, e.eq, e.neq, p.CounterMax)
				}
			}
		}
		if got := a.Footprint(); got != foot {
			t.Fatalf("footprint grew %d -> %d", foot, got)
		}
	})
}
