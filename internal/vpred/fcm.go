package vpred

import "mtvp/internal/config"

// FCM is an order-N finite context method predictor (Sazeides & Smith): the
// level-1 table, indexed by PC, keeps a hash of the last N values; the
// level-2 table, indexed by that hash, keeps the value that followed the
// context last time, with a confidence counter. Unlike DFCM it predicts
// values directly rather than strides, so it captures repeating value
// sequences but not unseen stride continuations.
type FCM struct {
	p  config.DFCMParams // same sizing knobs as DFCM
	l1 []fcmL1
	l2 []fcmL2
}

type fcmL1 struct {
	pc     uint64
	hist   []uint64 // most recent first
	warmed int
	valid  bool
}

type fcmL2 struct {
	value uint64
	conf  int
}

// NewFCM builds an order-p.Order FCM predictor.
func NewFCM(p config.DFCMParams) *FCM {
	return &FCM{
		p:  p,
		l1: make([]fcmL1, p.L1Entries),
		l2: make([]fcmL2, p.L2Entries),
	}
}

func (f *FCM) l1Entry(pc uint64) *fcmL1 {
	return &f.l1[pc%uint64(len(f.l1))]
}

// index folds the value history with Burtscher's select-fold-shift scheme.
func (f *FCM) index(e *fcmL1) uint64 {
	var h uint64
	for i, v := range e.hist {
		x := v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)
		h ^= (x & 0xffff) >> uint(i*2) << uint(i*5)
	}
	h ^= e.pc << 3
	return h % uint64(len(f.l2))
}

// Lookup implements Predictor. The actual value is ignored.
func (f *FCM) Lookup(pc, _ uint64) Prediction {
	e := f.l1Entry(pc)
	if !e.valid || e.pc != pc || e.warmed < f.p.Order {
		return Prediction{}
	}
	l2 := &f.l2[f.index(e)]
	return Prediction{
		Valid:     true,
		Value:     l2.value,
		Conf:      l2.conf,
		Confident: l2.conf >= f.p.Threshold,
	}
}

// Train implements Predictor.
func (f *FCM) Train(pc, actual uint64) {
	e := f.l1Entry(pc)
	if !e.valid || e.pc != pc {
		*e = fcmL1{pc: pc, hist: make([]uint64, f.p.Order), valid: true}
	}
	if e.warmed >= f.p.Order {
		l2 := &f.l2[f.index(e)]
		if l2.value == actual {
			if l2.conf < f.p.ConfMax {
				l2.conf += f.p.ConfInc
			}
		} else {
			l2.conf -= f.p.ConfDec
			if l2.conf <= 0 {
				l2.value = actual
				l2.conf = 1
			}
		}
	}
	copy(e.hist[1:], e.hist)
	e.hist[0] = actual
	if e.warmed < f.p.Order {
		e.warmed++
	}
}

// Footprint implements Sizer: level-1 plus level-2 entries.
func (f *FCM) Footprint() int { return len(f.l1) + len(f.l2) }

var _ Predictor = (*FCM)(nil)
