package vpred

import "mtvp/internal/config"

// DFCM is an order-N differential finite context method predictor with
// Burtscher's improved index function: the level-1 table, indexed by PC,
// holds the last value and the recent stride history; the level-2 table,
// indexed by a hash of the stride history, holds the predicted next stride
// and a confidence counter. The paper (§5.4) finds it more aggressive than
// Wang–Franklin — more correct predictions but also more mispredictions.
type DFCM struct {
	p  config.DFCMParams
	l1 []dfcmL1
	l2 []dfcmL2
}

type dfcmL1 struct {
	pc     uint64
	last   uint64
	deltas []int64 // most recent first
	valid  bool
}

type dfcmL2 struct {
	delta int64
	conf  int
}

// NewDFCM builds an order-p.Order DFCM predictor.
func NewDFCM(p config.DFCMParams) *DFCM {
	d := &DFCM{
		p:  p,
		l1: make([]dfcmL1, p.L1Entries),
		l2: make([]dfcmL2, p.L2Entries),
	}
	return d
}

func (d *DFCM) l1Entry(pc uint64) *dfcmL1 {
	return &d.l1[pc%uint64(len(d.l1))]
}

// index implements Burtscher's improved (D)FCM index function: each stride
// in the history is folded and shifted by a different amount before being
// combined, so older strides contribute fewer bits and the hash stays
// well distributed.
func (d *DFCM) index(e *dfcmL1) uint64 {
	var h uint64
	for i, dv := range e.deltas {
		v := uint64(dv)
		// select-fold-shift per Burtscher: fold the 64-bit stride to
		// ~16 bits, then shift by position so recent strides dominate.
		f := v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)
		h ^= (f & 0xffff) >> uint(i*2) << uint(i*5)
	}
	h ^= e.pc << 3
	return h % uint64(len(d.l2))
}

// Lookup implements Predictor. The actual value is ignored.
func (d *DFCM) Lookup(pc, _ uint64) Prediction {
	e := d.l1Entry(pc)
	if !e.valid || e.pc != pc || len(e.deltas) < d.p.Order {
		return Prediction{}
	}
	l2 := &d.l2[d.index(e)]
	return Prediction{
		Valid:     true,
		Value:     uint64(int64(e.last) + l2.delta),
		Conf:      l2.conf,
		Confident: l2.conf >= d.p.Threshold,
	}
}

// Train implements Predictor.
func (d *DFCM) Train(pc, actual uint64) {
	e := d.l1Entry(pc)
	if !e.valid || e.pc != pc {
		*e = dfcmL1{pc: pc, last: actual, valid: true, deltas: make([]int64, 0, d.p.Order)}
		return
	}
	delta := int64(actual) - int64(e.last)
	if len(e.deltas) >= d.p.Order {
		l2 := &d.l2[d.index(e)]
		if l2.delta == delta {
			if l2.conf < d.p.ConfMax {
				l2.conf += d.p.ConfInc
			}
		} else {
			l2.conf -= d.p.ConfDec
			if l2.conf <= 0 {
				l2.delta = delta
				l2.conf = 1
			}
		}
	}
	// Shift the new stride into the history (most recent first).
	if len(e.deltas) < d.p.Order {
		e.deltas = append(e.deltas, 0)
	}
	copy(e.deltas[1:], e.deltas)
	e.deltas[0] = delta
	e.last = actual
}

// Footprint implements Sizer: level-1 plus level-2 entries.
func (d *DFCM) Footprint() int { return len(d.l1) + len(d.l2) }

var _ Predictor = (*DFCM)(nil)
