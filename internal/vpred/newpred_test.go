package vpred

import (
	"testing"

	"mtvp/internal/config"
)

// trainStride retires count instances of pc walking by stride, starting at
// base, and returns the last retired value.
func trainStride(p Predictor, pc, base uint64, stride int64, count int) uint64 {
	v := base
	for i := 0; i < count; i++ {
		p.Train(pc, v)
		v = uint64(int64(v) + stride)
	}
	return uint64(int64(v) - stride)
}

// TestVPQInflightExtrapolation is the core VPQ property: with k earlier
// dynamic instances of a load still in flight, the prediction for the next
// instance extrapolates last + stride*(k+1), not just last + stride.
func TestVPQInflightExtrapolation(t *testing.T) {
	vq := NewVPQStride(config.DefaultVPQStride())
	const pc = 0x500
	last := trainStride(vq, pc, 1000, 8, 20) // stride locked in, confident

	for k := 0; k < 4; k++ {
		pr := vq.Lookup(pc, 0)
		if !pr.Valid || !pr.Confident {
			t.Fatalf("lookup %d: not confident after 20 stride trainings: %+v", k, pr)
		}
		want := uint64(int64(last) + 8*int64(k+1))
		if pr.Value != want {
			t.Errorf("lookup %d (with %d in flight): predicted %d, want %d", k, k, pr.Value, want)
		}
	}
	if got := vq.inflight(pc); got != 4 {
		t.Fatalf("inflight = %d after 4 untrained lookups, want 4", got)
	}

	// Retiring one instance shifts the extrapolation window down by one.
	vq.Train(pc, last+8)
	if got := vq.inflight(pc); got != 3 {
		t.Fatalf("inflight = %d after one retirement, want 3", got)
	}
	pr := vq.Lookup(pc, 0)
	if want := last + 8 + 8*4; pr.Value != want {
		t.Errorf("post-retire lookup: predicted %d, want %d", pr.Value, want)
	}
}

// TestVPQOrphanReclaim covers the squashed-speculative-lookup path: orphan
// VPQ slots beyond the queue's capacity are dropped oldest-first, so the
// occupancy never exceeds the ring and old orphans stop inflating the
// in-flight count.
func TestVPQOrphanReclaim(t *testing.T) {
	p := config.DefaultVPQStride()
	p.QueueEntries = 4
	vq := NewVPQStride(p)
	const pcA, pcB = 0x600, 0x608
	trainStride(vq, pcA, 0, 1, 4)
	trainStride(vq, pcB, 0, 1, 4)

	for i := 0; i < 10; i++ { // 10 speculative lookups, 4-slot ring
		vq.Lookup(pcA, 0)
	}
	if occ := vq.occupancy(); occ != 4 {
		t.Fatalf("occupancy = %d after orphan storm, want 4 (full)", occ)
	}
	if got := vq.inflight(pcA); got != 4 {
		t.Fatalf("inflight(A) = %d, want 4 (oldest orphans dropped)", got)
	}

	// A lookup for B evicts A's oldest orphan rather than being refused.
	vq.Lookup(pcB, 0)
	if got, gotB := vq.inflight(pcA), vq.inflight(pcB); got != 3 || gotB != 1 {
		t.Fatalf("after B's lookup: inflight(A)=%d inflight(B)=%d, want 3,1", got, gotB)
	}

	// Retirement tombstones the oldest live A instance and the head drains.
	vq.Train(pcA, 100)
	if got := vq.inflight(pcA); got != 2 {
		t.Fatalf("inflight(A) = %d after retirement, want 2", got)
	}
	// A train with no in-flight instance (never looked up) is harmless.
	before := vq.occupancy()
	vq.Train(0x610, 7)
	if occ := vq.occupancy(); occ > before {
		t.Fatalf("occupancy grew %d -> %d on a no-match retirement", before, occ)
	}
}

// TestVPQStrideHysteresis: a confident stride survives transient breaks —
// the new stride is adopted only once confidence is fully drained.
func TestVPQStrideHysteresis(t *testing.T) {
	p := config.DefaultVPQStride()
	vq := NewVPQStride(p)
	const pc = 0x700
	last := trainStride(vq, pc, 0, 8, 40) // conf saturated at ConfMax

	// One break: stride must still be 8 (conf took a hit but is not spent).
	vq.Train(pc, last+1000)
	if e := vq.entry(pc); e.stride != 8 {
		t.Fatalf("stride flipped to %d after one break with saturated confidence", e.stride)
	}
	// Keep breaking until confidence is exhausted: then the stride flips.
	cur := last + 1000
	for i := 0; i < p.ConfMax/p.ConfDec+2; i++ {
		cur += 1000
		vq.Train(pc, cur)
	}
	if e := vq.entry(pc); e.stride != 1000 {
		t.Fatalf("stride = %d after sustained breaks, want 1000 adopted", e.stride)
	}
}

// TestEqualityConfidenceScheme walks the dueling-counter state machine: a
// constant value builds eq to threshold and predicts confidently; changing
// values push neq up, and confidence requires eq > 2*neq+1 — one lucky
// repeat among churn is not enough to predict.
func TestEqualityConfidenceScheme(t *testing.T) {
	p := config.DefaultEquality()
	q := NewEqualityLCV(p)
	const pc, val = 0x800, 42

	// Below threshold: valid but not confident. The first training
	// allocates the entry with zeroed counters, so eq lags by one.
	for i := 0; i < p.Threshold; i++ {
		q.Train(pc, val)
	}
	if pr := q.Lookup(pc, 0); !pr.Valid || pr.Confident {
		t.Fatalf("after %d equal trainings: %+v, want valid but not yet confident", p.Threshold, pr)
	}
	q.Train(pc, val)
	pr := q.Lookup(pc, 0)
	if !pr.Confident || pr.Value != val {
		t.Fatalf("at threshold: %+v, want confident prediction of %d", pr, val)
	}

	// Churn: the LCV follows the committed stream, neq rises, and once
	// eq <= 2*neq+1 the entry must stop predicting.
	for i := 0; i < p.CounterMax; i++ {
		q.Train(pc, uint64(100+i))
	}
	pr = q.Lookup(pc, 0)
	if pr.Confident {
		t.Fatalf("confident after sustained churn: %+v", pr)
	}
	if want := uint64(100 + p.CounterMax - 1); pr.Value != want {
		t.Fatalf("LCV = %d after churn, want last committed %d", pr.Value, want)
	}
}

// TestEqualityDecay: the periodic sweep drains counter bias so an entry
// whose PC went quiet loses its confidence instead of predicting a stale
// value forever.
func TestEqualityDecay(t *testing.T) {
	p := config.DefaultEquality()
	p.DecayPeriod = 8
	q := NewEqualityLCV(p)
	const quiet, busy = 0x900, 0x908

	for i := 0; i < p.CounterMax*2; i++ {
		q.Train(quiet, 7)
	}
	if pr := q.Lookup(quiet, 0); !pr.Confident {
		t.Fatalf("not confident after saturation: %+v", pr)
	}
	eq0 := q.entry(quiet).eq

	// Only the busy PC trains now; every 8th training decays the whole
	// table, including the quiet entry.
	for i := 0; i < int(p.DecayPeriod)*p.CounterMax; i++ {
		q.Train(busy, uint64(i))
	}
	e := q.entry(quiet)
	if e.eq >= eq0 {
		t.Fatalf("quiet entry eq %d did not decay from %d", e.eq, eq0)
	}
	if pr := q.Lookup(quiet, 0); pr.Confident {
		t.Fatalf("quiet entry still confident after %d decay sweeps: %+v", p.CounterMax, pr)
	}
	// Decay converges the duel toward balance, never below zero.
	if e.eq < 0 || e.neq < 0 {
		t.Fatalf("decay drove counters negative: (%d,%d)", e.eq, e.neq)
	}
}
