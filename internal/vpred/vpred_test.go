package vpred

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/mem"
)

func TestOracle(t *testing.T) {
	var p Predictor = Oracle{}
	pr := p.Lookup(0x10, 0xDEADBEEF)
	if !pr.Valid || !pr.Confident || pr.Value != 0xDEADBEEF {
		t.Errorf("oracle prediction %+v", pr)
	}
	p.Train(0x10, 1) // no-op, must not panic
}

func TestLastValueLearnsConstant(t *testing.T) {
	p := NewLastValue(256, 12, 32)
	pc := uint64(0x40)
	for i := 0; i < 20; i++ {
		p.Train(pc, 77)
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != 77 {
		t.Errorf("constant load not predicted: %+v", pr)
	}
}

func TestLastValueConfidenceCollapsesOnChange(t *testing.T) {
	p := NewLastValue(256, 12, 32)
	pc := uint64(0x40)
	for i := 0; i < 20; i++ {
		p.Train(pc, 77)
	}
	p.Train(pc, 78) // -8
	p.Train(pc, 79) // -8
	if pr := p.Lookup(pc, 0); pr.Confident {
		t.Errorf("still confident after two value changes: conf=%d", pr.Conf)
	}
}

func TestStridePredictsSequence(t *testing.T) {
	p := NewStride(256, 12, 32)
	pc := uint64(0x44)
	for i := 0; i < 20; i++ {
		p.Train(pc, uint64(1000+i*16))
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != 1000+20*16 {
		t.Errorf("stride prediction %+v, want value %d", pr, 1000+20*16)
	}
}

func TestStrideNegative(t *testing.T) {
	p := NewStride(256, 12, 32)
	pc := uint64(0x48)
	for i := 0; i < 20; i++ {
		p.Train(pc, uint64(100000-i*8))
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != uint64(100000-20*8) {
		t.Errorf("negative stride prediction %+v", pr)
	}
}

func wfParams() config.WangFranklinParams { return config.DefaultWF() }

func TestWFConstantLoad(t *testing.T) {
	p := NewWangFranklin(wfParams(), 0)
	pc := uint64(0x100)
	for i := 0; i < 40; i++ {
		p.Train(pc, 42)
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != 42 {
		t.Errorf("WF constant: %+v", pr)
	}
}

func TestWFZeroSlot(t *testing.T) {
	// The hardwired zero slot should carry mostly-zero loads.
	p := NewWangFranklin(wfParams(), 0)
	pc := uint64(0x104)
	for i := 0; i < 40; i++ {
		p.Train(pc, 0)
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != 0 {
		t.Errorf("WF zero slot: %+v", pr)
	}
}

func TestWFStrideSlot(t *testing.T) {
	p := NewWangFranklin(wfParams(), 0)
	pc := uint64(0x108)
	for i := 0; i < 60; i++ {
		p.Train(pc, uint64(0x2000+i*64))
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != uint64(0x2000+60*64) {
		t.Errorf("WF stride slot: got %#x conf=%d confident=%v, want %#x",
			pr.Value, pr.Conf, pr.Confident, 0x2000+60*64)
	}
}

func TestWFConfidenceSchedule(t *testing.T) {
	// With +1/-8 and threshold 12, a value needs 12 consecutive correct
	// outcomes before prediction, and two mistakes drop it back under.
	p := NewWangFranklin(wfParams(), 0)
	pc := uint64(0x10c)
	p.Train(pc, 5) // allocate
	for i := 0; i < 11; i++ {
		p.Train(pc, 5)
	}
	if pr := p.Lookup(pc, 0); pr.Confident {
		t.Errorf("confident after only 11 matches post-allocation: conf=%d", pr.Conf)
	}
	p.Train(pc, 5)
	if pr := p.Lookup(pc, 0); !pr.Confident {
		t.Errorf("not confident after 12 matches: conf=%d", pr.Conf)
	}
}

func TestWFRepeatingPatternViaHistory(t *testing.T) {
	// A short repeating value sequence: pattern history should allow the
	// right slot to be chosen per position. Accuracy should be high once
	// trained.
	p := NewWangFranklin(wfParams(), 0)
	pc := uint64(0x110)
	seq := []uint64{7, 7, 7, 9, 7, 7, 7, 9}
	for i := 0; i < 2000; i++ {
		p.Train(pc, seq[i%len(seq)])
	}
	correct, confident := 0, 0
	for i := 0; i < 400; i++ {
		v := seq[i%len(seq)]
		pr := p.Lookup(pc, 0)
		if pr.Confident {
			confident++
			if pr.Value == v {
				correct++
			}
		}
		p.Train(pc, v)
	}
	if confident == 0 {
		t.Fatal("never confident on a repeating pattern")
	}
	if acc := float64(correct) / float64(confident); acc < 0.85 {
		t.Errorf("pattern accuracy %.3f (%d/%d)", acc, correct, confident)
	}
}

func TestWFAccuracyGateUnpredictable(t *testing.T) {
	// Random values must not produce confident predictions under +1/-8.
	p := NewWangFranklin(wfParams(), 0)
	r := mem.NewRand(3)
	pc := uint64(0x114)
	confident := 0
	for i := 0; i < 4000; i++ {
		if p.Lookup(pc, 0).Confident {
			confident++
		}
		p.Train(pc, r.Next())
	}
	if frac := float64(confident) / 4000; frac > 0.02 {
		t.Errorf("confident on %.1f%% of random values", frac*100)
	}
}

func TestWFAlternatesForMultiValue(t *testing.T) {
	// Two strong modes mixed at random (so the pattern history cannot
	// fully separate them), with a liberal threshold: the secondary value
	// must appear in Alternates. A deterministic alternation would be
	// resolved by the pattern tables and correctly produce no alternates.
	p := NewWangFranklin(wfParams(), 2)
	r := mem.NewRand(17)
	pc := uint64(0x118)
	draw := func() uint64 {
		if r.Intn(3) == 0 {
			return 111
		}
		return 222
	}
	for i := 0; i < 3000; i++ {
		p.Train(pc, draw())
	}
	seen := false
	for i := 0; i < 256 && !seen; i++ {
		pr := p.Lookup(pc, 0)
		for _, alt := range pr.Alternates {
			if (alt.Value == 111 || alt.Value == 222) && alt.Value != pr.Value {
				seen = true
			}
		}
		p.Train(pc, draw())
	}
	if !seen {
		t.Error("mixed bimodal values produced no alternates under a liberal threshold")
	}
}

func TestDFCMStridePattern(t *testing.T) {
	p := NewDFCM(config.DefaultDFCM())
	pc := uint64(0x200)
	for i := 0; i < 100; i++ {
		p.Train(pc, uint64(5000+i*24))
	}
	pr := p.Lookup(pc, 0)
	if !pr.Confident || pr.Value != uint64(5000+100*24) {
		t.Errorf("DFCM stride: %+v", pr)
	}
}

func TestDFCMRepeatingDeltaPattern(t *testing.T) {
	// Deltas +1, +2, +100 repeating: an order-3 context predictor should
	// learn each position; a plain stride predictor cannot.
	p := NewDFCM(config.DefaultDFCM())
	pc := uint64(0x204)
	deltas := []uint64{1, 2, 100}
	v := uint64(0)
	train := func() {
		for _, d := range deltas {
			v += d
			p.Train(pc, v)
		}
	}
	for i := 0; i < 800; i++ {
		train()
	}
	correct, total := 0, 0
	for i := 0; i < 300; i++ {
		d := deltas[i%3]
		pr := p.Lookup(pc, 0)
		v += d
		if pr.Confident {
			total++
			if pr.Value == v {
				correct++
			}
		}
		p.Train(pc, v)
	}
	if total == 0 {
		t.Fatal("DFCM never confident on a repeating delta pattern")
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("DFCM pattern accuracy %.3f (%d/%d)", acc, correct, total)
	}
}

func TestDFCMMoreAggressiveThanWF(t *testing.T) {
	// §5.4: DFCM is "in general a more aggressive predictor — making more
	// correct predictions and more incorrect predictions". Feed both a
	// marginally predictable stream and compare coverage.
	wf := NewWangFranklin(wfParams(), 0)
	df := NewDFCM(config.DefaultDFCM())
	r := mem.NewRand(11)
	pc := uint64(0x208)
	v := uint64(1000)
	wfFollowed, dfFollowed := 0, 0
	for i := 0; i < 6000; i++ {
		if wf.Lookup(pc, 0).Confident {
			wfFollowed++
		}
		if df.Lookup(pc, 0).Confident {
			dfFollowed++
		}
		// 80% of the time a fixed stride; 20% a jump.
		if r.Intn(100) < 80 {
			v += 8
		} else {
			v += uint64(r.Intn(1000)) * 8
		}
		wf.Train(pc, v)
		df.Train(pc, v)
	}
	if dfFollowed <= wfFollowed {
		t.Errorf("DFCM followed %d <= WF %d; expected DFCM to be more aggressive",
			dfFollowed, wfFollowed)
	}
}

func TestNewSelectsConfiguredPredictor(t *testing.T) {
	cfg := config.Baseline()
	kinds := map[config.PredictorKind]string{
		config.PredOracle:       "vpred.Oracle",
		config.PredWangFranklin: "*vpred.WangFranklin",
		config.PredDFCM:         "*vpred.DFCM",
		config.PredLastValue:    "*vpred.LastValue",
		config.PredStride:       "*vpred.Stride",
	}
	for k := range kinds {
		cfg.VP.Predictor = k
		if New(&cfg) == nil {
			t.Errorf("New returned nil for %v", k)
		}
	}
}

func TestFCMRepeatingValueSequence(t *testing.T) {
	// A repeating value sequence with no stride structure: FCM learns it,
	// a stride predictor cannot.
	p := NewFCM(config.DefaultDFCM())
	pc := uint64(0x300)
	seq := []uint64{10, 99, 4, 7}
	for i := 0; i < 1200; i++ {
		p.Train(pc, seq[i%len(seq)])
	}
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		v := seq[i%len(seq)]
		pr := p.Lookup(pc, 0)
		if pr.Confident {
			total++
			if pr.Value == v {
				correct++
			}
		}
		p.Train(pc, v)
	}
	if total == 0 {
		t.Fatal("FCM never confident on a repeating sequence")
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("FCM accuracy %.3f (%d/%d)", acc, correct, total)
	}
}

func TestFCMCannotExtrapolateStride(t *testing.T) {
	// A pure stride sequence never repeats values, so value-based FCM
	// stays unconfident while DFCM succeeds.
	f := NewFCM(config.DefaultDFCM())
	d := NewDFCM(config.DefaultDFCM())
	pc := uint64(0x304)
	for i := 0; i < 1000; i++ {
		v := uint64(i) * 8
		f.Train(pc, v)
		d.Train(pc, v)
	}
	if f.Lookup(pc, 0).Confident {
		t.Error("FCM confident on a never-repeating stride")
	}
	if !d.Lookup(pc, 0).Confident {
		t.Error("DFCM not confident on a pure stride")
	}
}
