package vpred

import "mtvp/internal/config"

// svpEntry is one PC-tagged stride value predictor entry: last retired
// value, stride, and a saturating confidence counter.
type svpEntry struct {
	pc     uint64
	last   uint64
	stride int64
	conf   int
	valid  bool
}

// vpqSlot is one value prediction queue slot. A slot is enqueued by Lookup
// when a prediction is issued for an in-flight load and retired (tombstoned)
// by Train when a load of the same PC commits.
type vpqSlot struct {
	pc   uint64
	live bool
}

// VPQStride is a retire-trained stride predictor with an explicit value
// prediction queue, after the 721sim SVP/VPQ design: the SVP table is only
// trained at retirement, so predictions for loads whose earlier dynamic
// instances are still in flight must extrapolate — the VPQ (a phase-bit
// ring) tracks those in-flight instances, and Lookup predicts
// last + stride * (inflight + 1).
//
// Speculative threads may Lookup loads that are later squashed and never
// trained; those orphan VPQ slots are reclaimed FIFO-style — Train retires
// the oldest live instance of its PC, and a full queue drops its oldest
// slot — so the queue's contents stay a deterministic function of the
// lookup/train history.
type VPQStride struct {
	p     config.VPQStrideParams
	table []svpEntry
	queue []vpqSlot

	head, tail           int
	headPhase, tailPhase bool
}

// NewVPQStride builds the predictor from its configured sizing.
func NewVPQStride(p config.VPQStrideParams) *VPQStride {
	return &VPQStride{
		p:     p,
		table: make([]svpEntry, p.TableEntries),
		queue: make([]vpqSlot, p.QueueEntries),
	}
}

func (v *VPQStride) entry(pc uint64) *svpEntry {
	return &v.table[pc%uint64(len(v.table))]
}

// Phase-bit ring primitives: head == tail with equal phase bits means
// empty, with opposite phase bits means full.

func (v *VPQStride) empty() bool { return v.head == v.tail && v.headPhase == v.tailPhase }
func (v *VPQStride) full() bool  { return v.head == v.tail && v.headPhase != v.tailPhase }

func (v *VPQStride) push(pc uint64) {
	if v.full() {
		v.pop() // drop the oldest instance (an orphan or a stale one)
	}
	v.queue[v.tail] = vpqSlot{pc: pc, live: true}
	v.tail++
	if v.tail == len(v.queue) {
		v.tail = 0
		v.tailPhase = !v.tailPhase
	}
}

func (v *VPQStride) pop() {
	v.head++
	if v.head == len(v.queue) {
		v.head = 0
		v.headPhase = !v.headPhase
	}
}

// occupancy returns the number of slots between head and tail (live or
// tombstoned).
func (v *VPQStride) occupancy() int {
	if v.head == v.tail {
		if v.headPhase == v.tailPhase {
			return 0
		}
		return len(v.queue)
	}
	d := v.tail - v.head
	if d < 0 {
		d += len(v.queue)
	}
	return d
}

// inflight counts live queued instances of pc.
func (v *VPQStride) inflight(pc uint64) int {
	n := 0
	for i, left := v.head, v.occupancy(); left > 0; left-- {
		if s := &v.queue[i]; s.live && s.pc == pc {
			n++
		}
		if i++; i == len(v.queue) {
			i = 0
		}
	}
	return n
}

// retire tombstones the oldest live instance of pc, then drains any dead
// slots now at the head so the ring keeps its capacity available.
func (v *VPQStride) retire(pc uint64) {
	for i, left := v.head, v.occupancy(); left > 0; left-- {
		if s := &v.queue[i]; s.live && s.pc == pc {
			s.live = false
			break
		}
		if i++; i == len(v.queue) {
			i = 0
		}
	}
	for !v.empty() && !v.queue[v.head].live {
		v.pop()
	}
}

// Lookup implements Predictor. The actual value is ignored. A tag hit
// enqueues one VPQ instance for the in-flight load it predicts.
func (v *VPQStride) Lookup(pc, _ uint64) Prediction {
	e := v.entry(pc)
	if !e.valid || e.pc != pc {
		return Prediction{}
	}
	n := v.inflight(pc)
	v.push(pc)
	return Prediction{
		Valid:     true,
		Value:     uint64(int64(e.last) + e.stride*int64(n+1)),
		Conf:      e.conf,
		Confident: e.conf >= v.p.Threshold,
	}
}

// Train implements Predictor: called at retirement, it first retires the
// load's VPQ instance, then trains or replaces the SVP entry.
func (v *VPQStride) Train(pc, actual uint64) {
	v.retire(pc)
	e := v.entry(pc)
	if !e.valid || e.pc != pc {
		*e = svpEntry{pc: pc, last: actual, valid: true}
		return
	}
	stride := int64(actual) - int64(e.last)
	if stride == e.stride {
		if e.conf < v.p.ConfMax {
			e.conf += v.p.ConfInc
		}
	} else {
		e.conf -= v.p.ConfDec
		if e.conf <= 0 {
			// Only adopt the new stride once confidence in the old one is
			// exhausted (replacement hysteresis, per the exemplar design).
			e.conf = 0
			e.stride = stride
		}
	}
	e.last = actual
}

// Footprint implements Sizer: SVP entries plus VPQ slots.
func (v *VPQStride) Footprint() int { return len(v.table) + len(v.queue) }

var _ Predictor = (*VPQStride)(nil)
