package vpred

import "mtvp/internal/config"

// eqEntry is one equality predictor entry: the last committed value for the
// PC and a pair of dueling saturating counters voting "next value equals the
// last committed one" (eq) versus "it does not" (neq).
type eqEntry struct {
	pc      uint64
	value   uint64 // last committed value (LCV)
	eq, neq int
	valid   bool
}

// EqualityLCV is an equality predictor over a last-committed-value table,
// after the BALCVP exemplar design: instead of learning values directly, it
// predicts whether the next committed value will equal the last committed
// one, with per-PC dueling eq/neq counters and a periodic whole-table decay
// sweep that lets stale bias drain away.
//
// A prediction is confident only when the entry votes "equal" with high
// confidence in the exemplar's three-level scheme — eq strictly above
// 2*neq+1 — and the eq counter has reached the configured threshold.
type EqualityLCV struct {
	p      config.EqualityParams
	table  []eqEntry
	trains uint64 // total trainings, for the deterministic decay period
}

// NewEqualityLCV builds the predictor from its configured sizing.
func NewEqualityLCV(p config.EqualityParams) *EqualityLCV {
	return &EqualityLCV{p: p, table: make([]eqEntry, p.TableEntries)}
}

func (q *EqualityLCV) entry(pc uint64) *eqEntry {
	return &q.table[pc%uint64(len(q.table))]
}

// highEq reports whether the entry votes "equal" with high confidence:
// in the exemplar's low/medium/high formula, high in the taken direction
// means eq > 2*neq + 1.
func highEq(e *eqEntry) bool { return e.eq > 2*e.neq+1 }

// Lookup implements Predictor. The actual value is ignored.
func (q *EqualityLCV) Lookup(pc, _ uint64) Prediction {
	e := q.entry(pc)
	if !e.valid || e.pc != pc {
		return Prediction{}
	}
	return Prediction{
		Valid:     true,
		Value:     e.value,
		Conf:      e.eq,
		Confident: highEq(e) && e.eq >= q.p.Threshold,
	}
}

// Train implements Predictor: updates the dueling counters with the
// equality outcome, refreshes the LCV, and runs the periodic decay sweep.
func (q *EqualityLCV) Train(pc, actual uint64) {
	e := q.entry(pc)
	if !e.valid || e.pc != pc {
		*e = eqEntry{pc: pc, value: actual, valid: true}
	} else {
		if e.value == actual {
			if e.eq < q.p.CounterMax {
				e.eq++
			} else if e.neq > 0 {
				e.neq--
			}
		} else {
			if e.neq < q.p.CounterMax {
				e.neq++
			} else if e.eq > 0 {
				e.eq--
			}
			e.value = actual
		}
	}
	q.trains++
	if q.trains%q.p.DecayPeriod == 0 {
		q.decay()
	}
}

// decay drains one step of bias from every entry, sequentially per counter
// as in the exemplar (the second comparison sees the first decrement).
func (q *EqualityLCV) decay() {
	for i := range q.table {
		e := &q.table[i]
		if !e.valid {
			continue
		}
		if e.eq > e.neq {
			e.eq--
		}
		if e.neq > e.eq {
			e.neq--
		}
	}
}

// Footprint implements Sizer.
func (q *EqualityLCV) Footprint() int { return len(q.table) }

var _ Predictor = (*EqualityLCV)(nil)
