// Package stats collects the counters the simulator reports and provides
// the derived metrics the paper's figures use: useful IPC, percent speedup,
// and geometric means over benchmark groups.
package stats

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Stats accumulates event counts for one simulation run. "Useful" committed
// instructions are those committed by threads that ultimately survive —
// instructions squashed with a killed speculative thread never count.
type Stats struct {
	Cycles    uint64
	Fetched   uint64
	Issued    uint64
	Committed uint64 // useful committed instructions
	Squashed  uint64 // instructions discarded by kills or mispredicts

	// Branch prediction.
	Branches     uint64
	BranchWrong  uint64
	FetchBlocked uint64 // cycles no thread could fetch

	// Memory system.
	Loads        uint64
	Stores       uint64
	DL1Miss      uint64
	L2Miss       uint64
	L3Miss       uint64
	PrefIssued   uint64 // prefetches launched
	PrefHits     uint64 // demand hits in stream buffers
	StoreBufHits uint64 // loads forwarded from a store buffer

	// Value prediction.
	VPLookups   uint64 // predictor consulted
	VPConfident uint64 // predictor was over threshold
	VPPredicted uint64 // a prediction was followed (STVP or MTVP)
	VPCorrect   uint64
	VPWrong     uint64
	// Multi-value potential (Figure 5): followed predictions whose primary
	// value was wrong but the correct value was present and over threshold.
	VPWrongButPresent uint64

	// Predictor-table sharing interference (vpred.Bank probe; nonzero only
	// with shared tables and >= 2 hardware contexts).
	VPCrossLookups   uint64 // lookups hitting state last trained by another context
	VPShareHelpful   uint64 // confident cross-context lookups that were correct
	VPShareHarmful   uint64 // confident cross-context lookups that were wrong
	VPCrossTrains    uint64 // trains refining another context's same-PC state
	VPCrossEvictions uint64 // trains displacing another context's different-PC state

	// Threading.
	Spawns          uint64 // speculative threads created
	Confirms        uint64 // predictions confirmed (child survives)
	Kills           uint64 // children killed on misprediction
	SpawnDenied     uint64 // spawn wanted but no context free
	STVPUsed        uint64 // single-thread predictions made (incl. fallback)
	Reissues        uint64 // instructions re-executed by selective reissue
	MultiValueSaves uint64 // events where a non-primary value was the right one
	DeadlockBreaks  uint64 // recovery-controller deadlock breaks (unstick or subtree kill)

	// Fault injection (internal/fault campaigns).
	FaultsInjected    uint64 // total injected faults, all classes
	FaultPredBitFlip  uint64 // predicted-value bit flips
	FaultPredAlias    uint64 // predictor index aliasing storms
	FaultStoreDrop    uint64 // dropped store-buffer entries
	FaultStoreCorrupt uint64 // corrupted store-buffer address tags
	FaultSpawnLost    uint64 // lost spawn events
	FaultSpawnDup     uint64 // duplicated spawn events
	FaultMemDelay     uint64 // delayed memory completions
	FaultIQStick      uint64 // stuck issue-queue slots

	// Recovery controller.
	RecoveryUnsticks     uint64 // stuck issue-queue slots force-cleared
	QuarantineClamps     uint64 // contexts entering confidence-clamp quarantine
	QuarantineDisables   uint64 // contexts entering full predictor disable
	QuarantineSuppressed uint64 // predictions suppressed by an active quarantine
	Degradations         uint64 // ladder steps down (MTVP->STVP->none)
	Restorations         uint64 // ladder steps back up after cool-down

	// Campaign harness (internal/harness). Unlike every counter above these
	// aggregate over a whole campaign of runs, not one simulation: sweeps
	// merge their harness.Summary into a Stats so campaign health rides the
	// same reporting path as machine counters.
	HarnessCompleted uint64 // sweep cells that finished and were journaled
	HarnessSkipped   uint64 // cells skipped on resume (journaled result reused)
	HarnessRetried   uint64 // cells that needed at least one retry
	HarnessRetries   uint64 // retry attempts beyond each cell's first
	HarnessFailed    uint64 // cells that exhausted their retry budget
	HarnessPanics    uint64 // worker panics captured as JobFailure records
	HarnessTimeouts  uint64 // attempts canceled by the wall-clock deadline
	HarnessStalls    uint64 // attempts canceled by the progress watchdog
}

// UsefulIPC returns committed useful instructions per cycle.
func (s *Stats) UsefulIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// BranchAccuracy returns the fraction of branches predicted correctly.
func (s *Stats) BranchAccuracy() float64 {
	if s.Branches == 0 {
		return 1
	}
	return 1 - float64(s.BranchWrong)/float64(s.Branches)
}

// VPAccuracy returns the fraction of followed predictions that were correct.
func (s *Stats) VPAccuracy() float64 {
	n := s.VPCorrect + s.VPWrong
	if n == 0 {
		return 0
	}
	return float64(s.VPCorrect) / float64(n)
}

// NamedCounter pairs one exported Stats counter field with its value.
type NamedCounter struct {
	Name  string
	Value uint64
}

// Counters enumerates every exported uint64 counter field of Stats by
// reflection, in declaration order. Renderers built on it (String, the
// telemetry exporters) can never silently drop a newly added counter.
func (s *Stats) Counters() []NamedCounter {
	v := reflect.ValueOf(*s)
	t := v.Type()
	out := make([]NamedCounter, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Uint64 {
			continue
		}
		out = append(out, NamedCounter{Name: f.Name, Value: v.Field(i).Uint()})
	}
	return out
}

// String summarises the run: the derived rates first, then every nonzero
// counter as FieldName=value. The counter list comes from Counters(), so a
// counter added to the struct shows up here without any formatting change
// (the round-trip test enforces it).
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ipc=%.4f brAcc=%.3f", s.UsefulIPC(), s.BranchAccuracy())
	if s.VPCorrect+s.VPWrong > 0 {
		fmt.Fprintf(&b, " vpAcc=%.3f", s.VPAccuracy())
	}
	if s.HarnessCompleted > 0 || s.HarnessFailed > 0 || s.HarnessSkipped > 0 {
		fmt.Fprintf(&b, " cells=%d", s.HarnessCompleted)
	}
	for _, c := range s.Counters() {
		if c.Value != 0 {
			fmt.Fprintf(&b, " %s=%d", c.Name, c.Value)
		}
	}
	return b.String()
}

// SpeedupPct returns the percent speedup of ipc over base, the metric of
// Figures 1–4 and 6 ("Percent Speedup" in useful IPC).
func SpeedupPct(base, ipc float64) float64 {
	if base == 0 {
		return 0
	}
	return (ipc/base - 1) * 100
}

// GeoMeanSpeedupPct combines per-benchmark percent speedups the way the
// paper reports averages: the geometric mean of the IPC ratios, expressed
// as a percent gain. Ratios must be > 0 (i.e., speedups > −100%).
func GeoMeanSpeedupPct(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pcts {
		r := 1 + p/100
		if r <= 0 {
			r = 1e-6
		}
		sum += math.Log(r)
	}
	return (math.Exp(sum/float64(len(pcts))) - 1) * 100
}

// Row is one line of a result table: a benchmark and one value per column.
type Row struct {
	Name   string
	Values []float64
}

// Table formats experiment results the way the figure harness prints them.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Add appends a row.
func (t *Table) Add(name string, values ...float64) {
	t.Rows = append(t.Rows, Row{Name: name, Values: values})
}

// AddGeoMean appends an "average" row holding the geometric-mean percent
// speedup of each column across the existing rows.
func (t *Table) AddGeoMean(label string) {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Rows[0].Values)
	avg := make([]float64, n)
	for c := 0; c < n; c++ {
		col := make([]float64, 0, len(t.Rows))
		for _, r := range t.Rows {
			if c < len(r.Values) {
				col = append(col, r.Values[c])
			}
		}
		avg[c] = GeoMeanSpeedupPct(col)
	}
	t.Add(label, avg...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	nameW := 12
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", nameW+2, r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%14.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortRows orders rows by name, keeping any row whose name starts with
// "average" last. Deterministic output for goldens and logs.
func (t *Table) SortRows() {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		ai := strings.HasPrefix(t.Rows[i].Name, "average")
		aj := strings.HasPrefix(t.Rows[j].Name, "average")
		if ai != aj {
			return aj
		}
		return t.Rows[i].Name < t.Rows[j].Name
	})
}
