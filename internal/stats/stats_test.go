package stats

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestUsefulIPC(t *testing.T) {
	s := &Stats{Committed: 500, Cycles: 1000}
	if got := s.UsefulIPC(); got != 0.5 {
		t.Errorf("IPC = %v", got)
	}
	if (&Stats{}).UsefulIPC() != 0 {
		t.Error("zero-cycle IPC not zero")
	}
}

func TestAccuracies(t *testing.T) {
	s := &Stats{Branches: 100, BranchWrong: 10, VPCorrect: 30, VPWrong: 10}
	if got := s.BranchAccuracy(); got != 0.9 {
		t.Errorf("branch accuracy %v", got)
	}
	if got := s.VPAccuracy(); got != 0.75 {
		t.Errorf("VP accuracy %v", got)
	}
	empty := &Stats{}
	if empty.BranchAccuracy() != 1 || empty.VPAccuracy() != 0 {
		t.Error("empty-stat accuracies wrong")
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(1.0, 1.4); math.Abs(got-40) > 1e-9 {
		t.Errorf("speedup %v, want 40", got)
	}
	if got := SpeedupPct(2.0, 1.0); math.Abs(got+50) > 1e-9 {
		t.Errorf("slowdown %v, want -50", got)
	}
	if SpeedupPct(0, 5) != 0 {
		t.Error("zero baseline not handled")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// Geomean of +100% and -50% (ratios 2.0 and 0.5) is exactly 0%.
	got := GeoMeanSpeedupPct([]float64{100, -50})
	if math.Abs(got) > 1e-9 {
		t.Errorf("geomean = %v, want 0", got)
	}
	if GeoMeanSpeedupPct(nil) != 0 {
		t.Error("empty geomean not zero")
	}
	// A -100% entry must not blow up.
	if v := GeoMeanSpeedupPct([]float64{-100, 100}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("degenerate geomean = %v", v)
	}
}

// Property: the geometric mean lies between min and max of the inputs.
func TestGeoMeanBoundsQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pcts := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			pcts[i] = float64(r%400) - 90 // -90% .. +309%
			lo = math.Min(lo, pcts[i])
			hi = math.Max(hi, pcts[i])
		}
		g := GeoMeanSpeedupPct(pcts)
		return g >= lo-1e-6 && g <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tab.Add("bench1", 10, 20)
	tab.Add("bench2", 30, 40)
	tab.AddGeoMean("average")
	out := tab.String()
	for _, want := range []string{"demo", "bench1", "bench2", "average", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	avg := tab.Rows[2]
	want := GeoMeanSpeedupPct([]float64{10, 30})
	if math.Abs(avg.Values[0]-want) > 1e-9 {
		t.Errorf("geomean row col0 = %v, want %v", avg.Values[0], want)
	}
}

func TestSortRowsKeepsAverageLast(t *testing.T) {
	tab := &Table{Columns: []string{"x"}}
	tab.Add("zeta", 1)
	tab.Add("average", 2)
	tab.Add("alpha", 3)
	tab.SortRows()
	if tab.Rows[0].Name != "alpha" || tab.Rows[2].Name != "average" {
		t.Errorf("sort order: %v %v %v",
			tab.Rows[0].Name, tab.Rows[1].Name, tab.Rows[2].Name)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{Cycles: 100, Committed: 50, VPPredicted: 10, VPCorrect: 8, VPWrong: 2}
	out := s.String()
	for _, want := range []string{"ipc=0.5", "vpAcc=0.800"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats string missing %q: %s", want, out)
		}
	}
}

// TestStatsStringRoundTrip: every exported uint64 counter field renders in
// String() when nonzero, under its own field name with its exact value. A
// counter added to Stats but dropped by the renderer fails here.
func TestStatsStringRoundTrip(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	tp := v.Type()
	n := 0
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Uint64 {
			continue
		}
		// Distinct values so a transposed pair cannot cancel out.
		v.Field(i).SetUint(uint64(1000 + i))
		n++
	}
	if n == 0 {
		t.Fatal("no uint64 counter fields found — reflection walk broken")
	}

	counters := s.Counters()
	if len(counters) != n {
		t.Fatalf("Counters() returned %d entries, want %d", len(counters), n)
	}
	out := s.String()
	for _, c := range counters {
		want := fmt.Sprintf("%s=%d", c.Name, c.Value)
		if !strings.Contains(out, want) {
			t.Errorf("String() missing counter %q:\n%s", want, out)
		}
	}
}
