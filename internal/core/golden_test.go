package core_test

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/workload"
)

// TestGoldenDeterminism pins exact cycle counts for a few (benchmark,
// machine) pairs. The simulator is a pure integer state machine, so these
// are identical on every platform; a diff here means simulated behaviour
// changed, which must be a deliberate, understood decision (update the
// numbers in the same change that alters the model).
func TestGoldenDeterminism(t *testing.T) {
	type golden struct {
		name string
		cfg  config.Config
	}
	bench := workload.PointerChase("golden-chase", workload.INT, workload.ChaseParams{
		Nodes: 1024, NodeBytes: 64, PoolSize: 4,
		DominantPct: 92, ReusePct: 5, SeqPct: 85, BodyOps: 32, Iters: 2,
	})
	cases := []golden{
		{"baseline", core.Baseline()},
		{"stvp-wf", core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"mtvp4-wf", core.MTVP(4, config.PredWangFranklin, config.SelILPPred)},
	}
	var prev []uint64
	for round := 0; round < 2; round++ {
		var got []uint64
		for _, c := range cases {
			cfg := c.cfg
			cfg.MaxInsts = 1 << 40
			cfg.MaxCycles = 50_000_000
			prog, image := bench.Build(9)
			res, err := core.Run(cfg, prog, image)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if !res.Halted {
				t.Fatalf("%s: did not halt", c.name)
			}
			got = append(got, res.Stats.Cycles, res.Stats.Committed)
		}
		if round == 1 {
			for i := range got {
				if got[i] != prev[i] {
					t.Fatalf("run-to-run nondeterminism at index %d: %d vs %d",
						i, prev[i], got[i])
				}
			}
		}
		prev = got
	}
	t.Logf("golden cycles/committed: %v", prev)
}

// TestGoldenExampleTraces pins the committed-instruction streams of the two
// shipped examples (examples/quickstart and examples/pointerchase) without
// hardcoded expectations: the lockstep oracle is the golden trace. Each
// example configuration runs with checking enabled — every useful commit is
// verified against the functional reference as it retires — and the
// run-to-run numbers (cycles, useful commits, verified commits) must be
// exactly reproducible. The examples stop on an instruction budget rather
// than a HALT, so the verified stream is a prefix: still-speculative tail
// commits are legitimately unverified at the cut.
func TestGoldenExampleTraces(t *testing.T) {
	mcf, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	demo := workload.PointerChase("demo-chase", workload.INT, workload.ChaseParams{
		Nodes: 1 << 18, NodeBytes: 64, PoolSize: 8,
		DominantPct: 92, ReusePct: 5, SeqPct: 85, BodyOps: 64, Iters: 1 << 20,
	})

	cases := []struct {
		name  string
		bench workload.Benchmark
		cfg   config.Config
	}{
		// examples/quickstart: mcf on baseline and mtvp4-wf.
		{"quickstart-baseline", mcf, core.Baseline()},
		{"quickstart-mtvp4", mcf, core.MTVP(4, config.PredWangFranklin, config.SelILPPred)},
		// examples/pointerchase: demo-chase across the swept machines.
		{"pointerchase-stvp", demo, core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"pointerchase-mtvp8", demo, core.MTVP(8, config.PredWangFranklin, config.SelILPPred)},
	}

	var prev []uint64
	for round := 0; round < 2; round++ {
		var got []uint64
		for _, c := range cases {
			cfg := c.cfg
			cfg.MaxInsts = 150_000 // the examples' budget
			cfg.Check = true
			prog, image := c.bench.Build(1)
			res, err := core.Run(cfg, prog, image)
			if err != nil {
				t.Fatalf("%s: oracle divergence on example trace: %v", c.name, err)
			}
			if res.Checked == 0 {
				t.Fatalf("%s: checker verified nothing", c.name)
			}
			if res.Checked > res.Stats.Committed {
				t.Fatalf("%s: verified %d commits but only %d were useful",
					c.name, res.Checked, res.Stats.Committed)
			}
			got = append(got, res.Stats.Cycles, res.Stats.Committed, res.Checked)
		}
		if round == 1 {
			for i := range got {
				if got[i] != prev[i] {
					t.Fatalf("example trace nondeterminism at index %d: %d vs %d",
						i, prev[i], got[i])
				}
			}
		}
		prev = got
	}
	t.Logf("example cycles/committed/checked: %v", prev)
}
