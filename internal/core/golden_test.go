package core_test

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/workload"
)

// TestGoldenDeterminism pins exact cycle counts for a few (benchmark,
// machine) pairs. The simulator is a pure integer state machine, so these
// are identical on every platform; a diff here means simulated behaviour
// changed, which must be a deliberate, understood decision (update the
// numbers in the same change that alters the model).
func TestGoldenDeterminism(t *testing.T) {
	type golden struct {
		name string
		cfg  config.Config
	}
	bench := workload.PointerChase("golden-chase", workload.INT, workload.ChaseParams{
		Nodes: 1024, NodeBytes: 64, PoolSize: 4,
		DominantPct: 92, ReusePct: 5, SeqPct: 85, BodyOps: 32, Iters: 2,
	})
	cases := []golden{
		{"baseline", core.Baseline()},
		{"stvp-wf", core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"mtvp4-wf", core.MTVP(4, config.PredWangFranklin, config.SelILPPred)},
	}
	var prev []uint64
	for round := 0; round < 2; round++ {
		var got []uint64
		for _, c := range cases {
			cfg := c.cfg
			cfg.MaxInsts = 1 << 40
			cfg.MaxCycles = 50_000_000
			prog, image := bench.Build(9)
			res, err := core.Run(cfg, prog, image)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if !res.Halted {
				t.Fatalf("%s: did not halt", c.name)
			}
			got = append(got, res.Stats.Cycles, res.Stats.Committed)
		}
		if round == 1 {
			for i := range got {
				if got[i] != prev[i] {
					t.Fatalf("run-to-run nondeterminism at index %d: %d vs %d",
						i, prev[i], got[i])
				}
			}
		}
		prev = got
	}
	t.Logf("golden cycles/committed: %v", prev)
}
