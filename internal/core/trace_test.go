package core_test

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/trace"
	"mtvp/internal/workload"
)

// TestTracingIsObservational: an attached tracer must capture the MTVP
// lifecycle without changing any result.
func TestTracingIsObservational(t *testing.T) {
	bench := workload.PointerChase("trace-chase", workload.INT, workload.ChaseParams{
		Nodes: 512, NodeBytes: 64, PoolSize: 4,
		DominantPct: 92, ReusePct: 5, SeqPct: 85, BodyOps: 16, Iters: 3,
	})
	cfg := core.MTVP(4, config.PredWangFranklin, config.SelILPPred)
	cfg.MaxInsts = 1 << 40
	cfg.MaxCycles = 100_000_000

	prog1, img1 := bench.Build(2)
	plain, err := core.Run(cfg, prog1, img1)
	if err != nil {
		t.Fatal(err)
	}

	col := &trace.Collector{}
	prog2, img2 := bench.Build(2)
	traced, err := core.RunTraced(cfg, prog2, img2, col)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Stats != traced.Stats {
		t.Errorf("tracing changed results:\n%v\n%v", plain.Stats, traced.Stats)
	}
	if len(col.Events) == 0 {
		t.Fatal("no events collected")
	}
	if spawns := col.ByKind(trace.KSpawn); uint64(len(spawns)) != traced.Stats.Spawns {
		t.Errorf("spawn events %d, stat %d", len(spawns), traced.Stats.Spawns)
	}
	if kills := col.ByKind(trace.KKill); uint64(len(kills)) != traced.Stats.Kills {
		t.Errorf("kill events %d, stat %d", len(kills), traced.Stats.Kills)
	}
	if confirms := col.ByKind(trace.KConfirm); uint64(len(confirms)) != traced.Stats.Confirms {
		t.Errorf("confirm events %d, stat %d", len(confirms), traced.Stats.Confirms)
	}
	// Commit events cover every useful commit (plus killed threads'
	// later-discounted commits).
	if commits := col.ByKind(trace.KCommit); uint64(len(commits)) < traced.Stats.Committed {
		t.Errorf("commit events %d < useful commits %d", len(commits), traced.Stats.Committed)
	}
}
