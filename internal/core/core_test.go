package core_test

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/isa"
	"mtvp/internal/workload"
)

// smallBenchmarks returns one small instance per archetype, sized so runs
// reach HALT quickly but still leave the caches.
func smallBenchmarks() []workload.Benchmark {
	return []workload.Benchmark{
		workload.PointerChase("t-chase", workload.INT, workload.ChaseParams{
			Nodes: 512, NodeBytes: 64, PoolSize: 8, DominantPct: 90, ReusePct: 5, Iters: 4,
		}),
		workload.PointerChase("t-chase-fp", workload.FP, workload.ChaseParams{
			Nodes: 256, NodeBytes: 64, PoolSize: 8, DominantPct: 85, ReusePct: 5, FPVal: true, Iters: 3,
		}),
		workload.Stream("t-stream", workload.FP, workload.StreamParams{
			Arrays: 3, Len: 1024, BlockLen: 16, PoolSize: 8, DominantPct: 70, ReusePct: 20,
			Stride: 8, JumpEvery: 64, JumpBytes: 512, FP: true, Iters: 3,
		}),
		workload.Gather("t-gather", workload.FP, workload.GatherParams{
			Items: 1024, TableLen: 4096, PoolSize: 8, DominantPct: 90, ReusePct: 5,
			FPData: true, StoreOut: true, Iters: 3,
		}),
		workload.Blocked("t-blocked", workload.INT, workload.BlockedParams{
			WorkingSet: 8 << 10, MulChain: 2, Iters: 4,
		}),
		workload.Blocked("t-blocked-side", workload.INT, workload.BlockedParams{
			WorkingSet: 4 << 10, MulChain: 1,
			SideTableLen: 1 << 12, SideEvery: 24, SideDominant: 92, Iters: 4,
		}),
		workload.Blocked("t-blocked-fp", workload.FP, workload.BlockedParams{
			WorkingSet: 4 << 10, MulChain: 2, FP: true, Iters: 3,
		}),
		workload.Hash("t-hash", workload.INT, workload.HashParams{
			InputLen: 1024, TableLen: 1 << 12, PoolSize: 8, DominantPct: 60, ReusePct: 20,
			Update: true, Iters: 3,
		}),
		workload.Branchy("t-branchy", workload.INT, workload.BranchyParams{
			Tokens: 2048, Classes: 4, BiasPct: 55, TableLen: 1 << 10, Iters: 3,
		}),
		workload.BlockSort("t-sort", workload.INT, workload.SortParams{
			BufLen: 4096, Window: 256, Iters: 3,
		}),
	}
}

// machines returns every machine configuration the paper evaluates, with
// run limits suitable for running small kernels to completion.
func machines() map[string]config.Config {
	limit := func(c config.Config) config.Config {
		c.MaxInsts = 50_000_000
		c.MaxCycles = 200_000_000
		return c
	}
	return map[string]config.Config{
		"baseline":     limit(core.Baseline()),
		"stvp-oracle":  limit(core.STVPOracleLimit()),
		"stvp-wf":      limit(core.STVP(config.PredWangFranklin, config.SelILPPred)),
		"stvp-dfcm":    limit(core.STVP(config.PredDFCM, config.SelILPPred)),
		"mtvp2-oracle": limit(core.MTVPOracleLimit(2)),
		"mtvp4-oracle": limit(core.MTVPOracleLimit(4)),
		"mtvp8-oracle": limit(core.MTVPOracleLimit(8)),
		"mtvp4-wf":     limit(core.MTVP(4, config.PredWangFranklin, config.SelILPPred)),
		"mtvp4-wf-l3":  limit(core.MTVP(4, config.PredWangFranklin, config.SelL3Oracle)),
		"mtvp4-always": limit(core.MTVP(4, config.PredWangFranklin, config.SelAlways)),
		"mtvp4-nostall": limit(core.MTVPNoStall(4,
			config.PredWangFranklin, config.SelILPPred)),
		"mtvp4-multival": limit(core.MTVPMultiValue(4, 3, 6)),
		"spawn-only":     limit(core.SpawnOnly(4)),
		"wide-window":    limit(core.WideWindow()),
	}
}

// TestArchitecturalEquivalence is the load-bearing invariant of the whole
// simulator: no machine configuration — no matter how aggressively it
// speculates — may change the program's architectural results. Every small
// kernel must halt with exactly the memory image and register file the
// pure functional interpreter produces.
func TestArchitecturalEquivalence(t *testing.T) {
	for _, bench := range smallBenchmarks() {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			// Reference: pure functional execution.
			refProg, refMem := bench.Build(7)
			refCtx := isa.NewContext(refProg, refMem)
			refN := refCtx.Run(1 << 40)
			if !refCtx.Halted {
				t.Fatalf("reference run did not halt after %d insts", refN)
			}

			for name, cfg := range machines() {
				prog, image := bench.Build(7)
				res, err := core.Run(cfg, prog, image)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Halted {
					t.Fatalf("%s: did not halt (committed %d, cycles %d)",
						name, res.Stats.Committed, res.Stats.Cycles)
				}
				if res.Stats.Committed != refN {
					t.Errorf("%s: committed %d useful insts, reference executed %d",
						name, res.Stats.Committed, refN)
				}
				if addr, diff := image.Diff(refMem); diff {
					t.Errorf("%s: memory differs at %#x: got %#x want %#x",
						name, addr, image.Load(addr, 8), refMem.Load(addr, 8))
				}
			}
		})
	}
}

// TestRegisterEquivalence checks the surviving thread's register file
// matches functional execution across machines.
func TestRegisterEquivalence(t *testing.T) {
	bench := smallBenchmarks()[0]
	refProg, refMem := bench.Build(3)
	refCtx := isa.NewContext(refProg, refMem)
	refCtx.Run(1 << 40)

	for _, name := range []string{"baseline", "mtvp4-oracle", "mtvp4-wf", "spawn-only", "wide-window"} {
		cfg := machines()[name]
		prog, image := bench.Build(3)
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Halted {
			t.Fatalf("%s: did not halt", name)
		}
		if !res.RegsOK {
			t.Fatalf("%s: no surviving architectural thread", name)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if res.Regs[r] != refCtx.R[r] {
				t.Errorf("%s: reg %d = %#x, want %#x", name, r, res.Regs[r], refCtx.R[r])
			}
		}
	}
}
