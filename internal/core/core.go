// Package core is the public face of the multithreaded value prediction
// simulator: machine presets matching the paper's configurations, and the
// Run entry point that executes a workload on a configured machine and
// returns its statistics.
//
// A typical use:
//
//	bench := workload.ByName("mcf")
//	prog, image := bench.Build(1)
//	res, err := core.Run(core.MTVP(4, config.PredWangFranklin, config.SelILPPred), prog, image)
//	fmt.Println(res.Stats.UsefulIPC())
package core

import (
	"errors"
	"fmt"

	"mtvp/internal/config"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
	"mtvp/internal/pipeline"
	"mtvp/internal/stats"
	"mtvp/internal/telemetry"
	"mtvp/internal/trace"
)

// Result holds the outcome of one simulation run.
type Result struct {
	Stats  stats.Stats
	Halted bool // the program ran to completion (committed HALT)
	// Regs is the surviving architectural thread's register file (valid
	// when RegsOK; equivalence tests compare it against the functional
	// reference).
	Regs   [isa.NumRegs]uint64
	RegsOK bool
	// Checked is the number of useful commits verified against the
	// lockstep oracle (0 unless cfg.Check was set). On a checked run that
	// halted, Checked equals Stats.Committed and final registers and
	// memory were compared too.
	Checked uint64
}

// IPC returns the run's useful instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.UsefulIPC() }

// IsCanceled reports whether a run error means the simulation was canceled
// through a cfg.Observe hook (the campaign harness's deadlines, stall
// watchdog, or graceful shutdown) rather than failing on its own.
func IsCanceled(err error) bool { return errors.Is(err, pipeline.ErrCanceled) }

// Run simulates prog with its initial memory image on the machine described
// by cfg. The engine takes ownership of the image: after a run that ends at
// a HALT, the image holds the committed architectural memory state.
func Run(cfg config.Config, prog *isa.Program, image *mem.Memory) (*Result, error) {
	return RunTraced(cfg, prog, image, nil)
}

// RunTraced is Run with an optional cycle-level event tracer attached
// (see internal/trace). Tracing is observational: results are identical
// with or without it.
func RunTraced(cfg config.Config, prog *isa.Program, image *mem.Memory, tr trace.Tracer) (*Result, error) {
	return RunInstrumented(cfg, prog, image, Instruments{Tracer: tr})
}

// Instruments bundles a run's observational attachments: an event tracer
// (human-readable writer, JSONL sink, Perfetto exporter, or a trace.Multi
// of several) and a telemetry machine probe feeding a metrics registry and
// cycle-bucketed time-series sampler. All of it is strictly observational —
// results are identical with or without any attachment (test-enforced).
type Instruments struct {
	Tracer  trace.Tracer
	Machine *telemetry.Machine
}

// RunInstrumented is Run with observational instruments attached.
func RunInstrumented(cfg config.Config, prog *isa.Program, image *mem.Memory, ins Instruments) (*Result, error) {
	st := &stats.Stats{}
	eng, err := pipeline.New(&cfg, prog, image, st)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if ins.Tracer != nil {
		eng.SetTracer(ins.Tracer)
	}
	if ins.Machine != nil {
		eng.SetTelemetry(ins.Machine)
	}
	runErr := eng.Run()
	// The final partial sample bucket is flushed even for canceled or
	// aborted runs: their statistics are valid up to the final cycle.
	eng.FinishTelemetry()
	if runErr != nil {
		return nil, fmt.Errorf("core: %s: %w", prog.Name, runErr)
	}
	if eng.Halted() {
		eng.Finalize()
		// With checking enabled the committed stream was verified
		// instruction by instruction; a completed run also gets its final
		// architectural state compared against the oracle.
		if err := eng.FinalCheck(); err != nil {
			return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
		}
	}
	res := &Result{Stats: *st, Halted: eng.Halted(), Checked: eng.CheckedCommits()}
	res.Regs, res.RegsOK = eng.ArchRegs()
	return res, nil
}

// RunFunctional executes prog purely functionally (the reference machine)
// against image and returns the final register file and instruction count.
// The architectural-equivalence tests compare the timing simulator's final
// state against this.
func RunFunctional(prog *isa.Program, image *mem.Memory, maxInsts uint64) ([isa.NumRegs]uint64, uint64) {
	ctx := isa.NewContext(prog, image)
	n := ctx.Run(maxInsts)
	return ctx.R, n
}
