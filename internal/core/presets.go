package core

import "mtvp/internal/config"

// Baseline returns the Table 1 machine with no value prediction — the
// denominator of every percent-speedup figure in the paper.
func Baseline() config.Config { return config.Baseline() }

// STVP returns the single-threaded value prediction machine with
// selective-reissue recovery.
func STVP(pred config.PredictorKind, sel config.SelectorKind) config.Config {
	return config.Baseline().WithSTVP(pred, sel)
}

// MTVP returns the single-fetch-path multithreaded value prediction machine
// with the given number of hardware contexts (the paper's default
// architecture; Figures 1–3).
func MTVP(contexts int, pred config.PredictorKind, sel config.SelectorKind) config.Config {
	return config.Baseline().WithMTVP(contexts, pred, sel)
}

// MTVPSharing returns the MTVP machine with the value predictor's tables
// organised across hardware contexts per the given sharing mode (the
// shared-vs-private-vs-partitioned table study).
func MTVPSharing(contexts int, pred config.PredictorKind, mode config.SharingMode) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, pred, config.SelILPPred)
	cfg.VP.Sharing = mode
	return cfg
}

// MTVPOracleLimit returns the §5.1 limit-study machine: oracle value
// predictor, 1-cycle spawn, unbounded store buffer.
func MTVPOracleLimit(contexts int) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, config.PredOracle, config.SelILPPred)
	cfg.VP.SpawnLatency = 1
	cfg.VP.StoreBufEntries = 0 // unbounded
	return cfg
}

// STVPOracleLimit returns the single-threaded counterpart of the limit
// study.
func STVPOracleLimit() config.Config {
	cfg := config.Baseline().WithSTVP(config.PredOracle, config.SelILPPred)
	cfg.VP.StoreBufEntries = 0
	return cfg
}

// MTVPNoStall returns the Figure 4 machine: the parent thread keeps
// fetching after a spawn, with ICOUNT arbitrating between the streams.
func MTVPNoStall(contexts int, pred config.PredictorKind, sel config.SelectorKind) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, pred, sel)
	cfg.VP.FetchPolicy = config.FetchNoStall
	return cfg
}

// MTVPMultiValue returns the §5.6 machine: several predicted values may be
// followed for one load, using a more liberal confidence bar for alternates
// and the L3-miss-oracle criticality predictor.
func MTVPMultiValue(contexts, maxValues, liberalThreshold int) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, config.PredWangFranklin, config.SelL3Oracle)
	cfg.VP.MultiValue = true
	cfg.VP.MaxValuesPerLoad = maxValues
	cfg.VP.LiberalThreshold = liberalThreshold
	return cfg
}

// MTVPUnifiedSB returns the §3.3 single-fetch-path simplification of the
// store buffer: one tagged buffer (512 entries, accessible in L1 time)
// whose capacity is shared by all contexts, instead of a 128-entry private
// buffer per context.
func MTVPUnifiedSB(contexts, entries int) config.Config {
	cfg := config.Baseline().WithMTVP(contexts, config.PredWangFranklin, config.SelILPPred)
	cfg.VP.SharedStoreBuf = true
	cfg.VP.SharedStoreBufEntries = entries
	return cfg
}

// SpawnOnly returns the Figure 6 split-window machine: threads spawn at
// selected loads without value prediction, so only load-independent work
// proceeds past the stall.
func SpawnOnly(contexts int) config.Config {
	cfg := config.Baseline().SpawnOnly(contexts)
	cfg.VP.Selector = config.SelL3Oracle
	return cfg
}

// WideWindow returns the Figure 6 idealized checkpoint machine: an
// 8192-entry ROB, 8192-entry queues, and unlimited rename registers.
func WideWindow() config.Config { return config.Baseline().WideWindow() }

// WithFaults returns cfg with the named fault-injection profile armed,
// seeded for a reproducible campaign run.
func WithFaults(cfg config.Config, profile string, seed uint64) config.Config {
	cfg.Faults.Profile = profile
	cfg.Faults.Seed = seed
	return cfg
}

// Hardened returns cfg with the recovery controller tightened for campaign
// runs: a short watchdog so injected stalls are detected quickly, and a
// small deadlock budget so the degradation ladder is actually exercised.
func Hardened(cfg config.Config) config.Config {
	cfg.Recovery.WatchdogCycles = 4 * int64(cfg.MemLatency)
	cfg.Recovery.DeadlockBudget = 4
	cfg.Recovery.CooldownCommits = 20_000
	return cfg
}
