package core_test

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fault"
	"mtvp/internal/oracle"
	"mtvp/internal/workload"
)

// campaignMachines is the archetype x preset axis of the fault sweep: the
// three rungs of the degradation ladder, so every profile is validated
// against the machine it would degrade to as well as the one it starts on.
func campaignMachines() []struct {
	name string
	cfg  config.Config
} {
	return []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", core.Baseline()},
		{"stvp", core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"mtvp4", core.MTVP(4, config.PredWangFranklin, config.SelILPPred)},
	}
}

// campaignWorkloads keeps the sweep small but speculation-heavy: a
// pointer chase (predictable dominant miss, MTVP's target case) and a
// gather (dense independent loads, stresses the store buffer and spawns).
func campaignWorkloads() []workload.Benchmark {
	return []workload.Benchmark{
		workload.PointerChase("camp-chase", workload.INT, workload.ChaseParams{
			Nodes: 512, NodeBytes: 64, PoolSize: 8, DominantPct: 90, ReusePct: 5, Iters: 6,
		}),
		workload.Gather("camp-gather", workload.FP, workload.GatherParams{
			Items: 1024, TableLen: 4096, PoolSize: 8, DominantPct: 90, ReusePct: 5,
			FPData: true, StoreOut: true, Iters: 4,
		}),
	}
}

// TestFaultCampaignRecoversOrAborts is the ISSUE's acceptance sweep: every
// built-in fault profile x every machine preset x each campaign workload,
// all with the lockstep oracle checker armed. Each run must either finish
// oracle-clean (the recovery controller absorbed the faults) or abort with
// a structured *fault.Report. A divergence — a silently wrong committed
// value — or any unstructured error fails the sweep; a hang is caught by
// the suite's `go test -timeout` (the watchdog makes hangs impossible by
// construction: it ends every stall in recovery or a report).
func TestFaultCampaignRecoversOrAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("checked fault sweep is slow; skipped with -short")
	}
	var injected, aborts atomic.Uint64
	for _, p := range fault.Profiles() {
		for _, m := range campaignMachines() {
			for _, b := range campaignWorkloads() {
				p, m, b := p, m, b
				t.Run(fmt.Sprintf("%s/%s/%s", p.Name, m.name, b.Name), func(t *testing.T) {
					t.Parallel()
					cfg := core.Hardened(core.WithFaults(m.cfg, p.Name, 0xC0FFEE))
					cfg.Check = true
					cfg.MaxInsts = 20_000
					cfg.MaxCycles = 50_000_000
					cfg.Recovery.WatchdogCycles = 4_000
					prog, image := b.Build(5)
					res, err := core.Run(cfg, prog, image)
					if err != nil {
						var rep *fault.Report
						switch {
						case oracle.IsDivergence(err):
							t.Fatalf("silently wrong value committed under %s: %v", p.Name, err)
						case errors.As(err, &rep):
							// Structured abort: the contract's second
							// permitted outcome.
							aborts.Add(1)
							for _, n := range rep.Injected {
								injected.Add(n)
							}
						default:
							t.Fatalf("unstructured failure under %s: %v", p.Name, err)
						}
						return
					}
					if res.Checked == 0 {
						t.Fatal("checker verified no commits on a clean run")
					}
					injected.Add(res.Stats.FaultsInjected)
				})
			}
		}
	}
	t.Cleanup(func() {
		if injected.Load() == 0 {
			t.Error("campaign injected zero faults across every profile; the sweep tested nothing")
		}
		t.Logf("campaign: %d faults injected, %d structured aborts", injected.Load(), aborts.Load())
	})
}

// TestFaultProfilesAreTimingOnly pins the fault model's core property: an
// armed injector changes *when* things happen, never *what* the program
// computes. Every profile that completes must produce the identical
// committed-instruction count and final architectural state check as the
// checker enforces per-commit; this test just asserts the clean path is
// reachable for at least one profile (the whole sweep above may abort
// under the harshest profiles).
func TestFaultProfilesAreTimingOnly(t *testing.T) {
	cfg := core.Hardened(core.WithFaults(core.MTVP(4, config.PredWangFranklin, config.SelILPPred), "mem-jitter", 7))
	cfg.Check = true
	cfg.MaxInsts = 20_000
	cfg.MaxCycles = 50_000_000
	b := campaignWorkloads()[0]
	prog, image := b.Build(5)
	res, err := core.Run(cfg, prog, image)
	if err != nil {
		t.Fatalf("mem-jitter (pure timing faults) must always recover: %v", err)
	}
	if res.Stats.FaultMemDelay == 0 {
		t.Fatal("mem-jitter injected nothing")
	}
	if res.Checked == 0 {
		t.Fatal("checker verified no commits")
	}
}
