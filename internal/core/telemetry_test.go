package core

import (
	"reflect"
	"strings"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/telemetry"
	"mtvp/internal/trace"
	"mtvp/internal/workload"
)

// TestTelemetryIsObservational is the determinism guard for the whole
// telemetry layer: a run with every sink and probe attached — JSONL trace,
// Perfetto exporter, metrics registry, time-series sampler — and the
// lockstep oracle checker armed must produce byte-identical statistics,
// final registers, and halt state to a bare run of the same machine.
func TestTelemetryIsObservational(t *testing.T) {
	bench, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := MTVP(4, config.PredWangFranklin, config.SelILPPred)
	cfg.MaxInsts = 30_000
	cfg.Check = true // the oracle verifies every useful commit in both runs

	prog, image := bench.Build(1)
	bare, err := Run(cfg, prog, image)
	if err != nil {
		t.Fatal(err)
	}

	var jsonOut, perfOut strings.Builder
	jsonSink := telemetry.NewJSONLSink(&jsonOut)
	perfSink := telemetry.NewPerfettoSink(&perfOut)
	sampler := telemetry.NewSampler(512)
	machine := telemetry.NewMachine(telemetry.NewRegistry(), sampler)

	prog2, image2 := bench.Build(1)
	instrumented, err := RunInstrumented(cfg, prog2, image2, Instruments{
		Tracer:  trace.Multi(jsonSink, perfSink),
		Machine: machine,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonSink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := perfSink.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(bare.Stats, instrumented.Stats) {
		t.Errorf("telemetry changed the statistics:\nbare:         %s\ninstrumented: %s",
			bare.Stats.String(), instrumented.Stats.String())
	}
	if bare.Halted != instrumented.Halted || bare.Checked != instrumented.Checked {
		t.Errorf("halt/check state diverged: halted %v vs %v, checked %d vs %d",
			bare.Halted, instrumented.Halted, bare.Checked, instrumented.Checked)
	}
	if bare.RegsOK != instrumented.RegsOK || bare.Regs != instrumented.Regs {
		t.Error("telemetry changed the final architectural registers")
	}

	// The instruments actually observed the run.
	if jsonOut.Len() == 0 {
		t.Error("JSONL sink saw no events")
	}
	if !strings.Contains(perfOut.String(), "traceEvents") {
		t.Error("Perfetto sink wrote no document")
	}
	if len(sampler.Points()) == 0 {
		t.Error("sampler closed no buckets")
	}
	if machine.LoadLatency.Count() == 0 {
		t.Error("load latency histogram is empty")
	}
}
