package core_test

import (
	"fmt"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/workload"
)

// TestSharingMatrixOracleClean runs the full predictor-zoo sharing matrix —
// both new predictors plus the paper's Wang-Franklin table, under every
// table-sharing mode — through the lockstep oracle checker. Sharing is a
// timing/accuracy organisation only: whatever the tables predict, every
// commit must still verify against the in-order oracle, including the
// cross-context interference paths the shared mode introduces.
func TestSharingMatrixOracleClean(t *testing.T) {
	preds := []config.PredictorKind{
		config.PredWangFranklin, config.PredVPQStride, config.PredEqualityLCV,
	}
	modes := []config.SharingMode{
		config.ShareShared, config.SharePrivate, config.SharePartitioned,
	}
	benches := smallBenchmarks()
	// The full 10-benchmark sweep is TestDifferentialOracle's job; here a
	// load-heavy subset per cell keeps the 9-cell matrix affordable.
	benches = []workload.Benchmark{benches[0], benches[3], benches[7]}
	if testing.Short() {
		benches = benches[:1]
	}

	for _, pred := range preds {
		for _, mode := range modes {
			pred, mode := pred, mode
			t.Run(fmt.Sprintf("%s/%s", pred, mode), func(t *testing.T) {
				cfg := core.MTVPSharing(4, pred, mode)
				cfg.Check = true
				cfg.MaxInsts = 50_000_000
				cfg.MaxCycles = 200_000_000
				for _, bench := range benches {
					prog, image := bench.Build(7)
					res, err := core.Run(cfg, prog, image)
					if err != nil {
						t.Fatalf("%s: %v", bench.Name, err)
					}
					if !res.Halted {
						t.Fatalf("%s: did not halt (committed %d, cycles %d)",
							bench.Name, res.Stats.Committed, res.Stats.Cycles)
					}
					if res.Checked != res.Stats.Committed {
						t.Errorf("%s: verified %d commits, engine counted %d useful",
							bench.Name, res.Checked, res.Stats.Committed)
					}
				}
			})
		}
	}
}
