package core_test

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
)

// differentialPresets are the machine configurations the differential oracle
// sweeps: the in-order-equivalent baseline, single-threaded value prediction,
// and both MTVP fetch policies (SFP stalls the parent, MFP keeps fetching).
func differentialPresets() []struct {
	name string
	cfg  config.Config
} {
	limit := func(c config.Config) config.Config {
		c.Check = true
		c.MaxInsts = 50_000_000
		c.MaxCycles = 200_000_000
		return c
	}
	return []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", limit(core.Baseline())},
		{"stvp-wf", limit(core.STVP(config.PredWangFranklin, config.SelILPPred))},
		{"mtvp4-sfp", limit(core.MTVP(4, config.PredWangFranklin, config.SelILPPred))},
		{"mtvp4-mfp", limit(core.MTVPNoStall(4, config.PredWangFranklin, config.SelILPPred))},
	}
}

// TestDifferentialOracle runs every workload archetype on every preset with
// the lockstep oracle checker and the invariant auditor enabled: zero
// divergences, zero violations, and every useful commit verified. The
// aggregate across the sweep must clear the 200k-instruction acceptance bar
// so the checker is exercised well past warm-up transients.
func TestDifferentialOracle(t *testing.T) {
	benches := smallBenchmarks()
	if testing.Short() {
		benches = benches[:3]
	}
	var totalChecked uint64
	for _, bench := range benches {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			for _, p := range differentialPresets() {
				prog, image := bench.Build(7)
				res, err := core.Run(p.cfg, prog, image)
				if err != nil {
					t.Fatalf("%s: %v", p.name, err)
				}
				if !res.Halted {
					t.Fatalf("%s: did not halt (committed %d, cycles %d)",
						p.name, res.Stats.Committed, res.Stats.Cycles)
				}
				if res.Checked != res.Stats.Committed {
					t.Errorf("%s: verified %d commits, engine counted %d useful",
						p.name, res.Checked, res.Stats.Committed)
				}
				totalChecked += res.Checked
			}
		})
	}
	if !testing.Short() && totalChecked < 200_000 {
		t.Errorf("sweep verified only %d useful instructions, want >= 200000", totalChecked)
	}
	t.Logf("verified %d useful instructions against the oracle", totalChecked)
}

// FuzzDifferentialOracle feeds random terminating programs (the
// randomProgram generator from the equivalence fuzz) through a checked run
// on a fuzzer-chosen preset. Any oracle divergence or invariant violation
// fails the run.
func FuzzDifferentialOracle(f *testing.F) {
	for seed := uint64(1); seed <= 4; seed++ {
		for preset := uint8(0); preset < 4; preset++ {
			f.Add(seed, preset)
		}
	}
	f.Fuzz(func(t *testing.T, seed uint64, preset uint8) {
		if seed == 0 {
			seed = 1
		}
		p := differentialPresets()[int(preset)%4]
		cfg := p.cfg
		cfg.MaxCycles = 50_000_000

		prog, image := randomProgram(seed, 20+int(seed%50))
		res, err := core.Run(cfg, prog, image)
		if err != nil {
			t.Fatalf("seed %d preset %s: %v", seed, p.name, err)
		}
		if res.Halted && res.Checked != res.Stats.Committed {
			t.Fatalf("seed %d preset %s: verified %d commits, engine counted %d useful",
				seed, p.name, res.Checked, res.Stats.Committed)
		}
	})
}
