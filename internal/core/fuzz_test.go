package core_test

import (
	"fmt"
	"testing"

	"mtvp/internal/asm"
	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

// randomProgram generates a terminating program of random instructions: an
// outer counted loop whose body mixes ALU ops, loads and stores confined to
// a small region (addresses masked), data-dependent branches with bounded
// skips, and FP arithmetic. It is the adversarial input for the
// architectural-equivalence invariant.
func randomProgram(seed uint64, bodyLen int) (*isa.Program, *mem.Memory) {
	r := mem.NewRand(seed)
	m := mem.New()
	const region = 1 << 14 // 16KB data region
	for a := uint64(0); a < region; a += 8 {
		m.Store(0x10000+a, 8, r.Next()>>16)
	}

	b := asm.New(fmt.Sprintf("fuzz-%d", seed))
	// r1 = data base, r2..r9 random state, r10 loop counter.
	b.Liu(isa.R1, 0x10000)
	for reg := isa.R2; reg <= isa.R9; reg++ {
		b.Li(reg, int64(r.Next()>>40))
	}
	b.Li(isa.R10, 400) // iterations
	b.Label("loop")

	intRegs := []isa.Reg{isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9}
	fpRegs := []isa.Reg{isa.F1, isa.F2, isa.F3, isa.F4}
	pick := func(rs []isa.Reg) isa.Reg { return rs[r.Intn(len(rs))] }
	skips := 0
	for i := 0; i < bodyLen; i++ {
		switch r.Intn(16) {
		case 0, 1, 2:
			b.Add(pick(intRegs), pick(intRegs), pick(intRegs))
		case 3:
			b.Sub(pick(intRegs), pick(intRegs), pick(intRegs))
		case 4:
			b.Mul(pick(intRegs), pick(intRegs), pick(intRegs))
		case 5:
			b.Xor(pick(intRegs), pick(intRegs), pick(intRegs))
		case 6:
			b.Addi(pick(intRegs), pick(intRegs), int64(r.Intn(1000)-500))
		case 7, 8:
			// Load from a masked address computed off random state.
			ar := pick(intRegs)
			b.Andi(isa.R11, ar, region-8)
			b.Add(isa.R11, isa.R11, isa.R1)
			b.Ld(pick(intRegs), isa.R11, 0)
		case 9:
			// Store to a masked address.
			ar := pick(intRegs)
			b.Andi(isa.R11, ar, region-8)
			b.Add(isa.R11, isa.R11, isa.R1)
			b.Sd(pick(intRegs), isa.R11, 0)
		case 10:
			// Sub-word access.
			ar := pick(intRegs)
			b.Andi(isa.R11, ar, region-8)
			b.Add(isa.R11, isa.R11, isa.R1)
			if r.Intn(2) == 0 {
				b.Lb(pick(intRegs), isa.R11, 3)
			} else {
				b.Sb(pick(intRegs), isa.R11, 5)
			}
		case 11:
			// Data-dependent forward skip over one instruction.
			label := fmt.Sprintf("skip%d", skips)
			skips++
			b.Andi(isa.R12, pick(intRegs), 3)
			b.Beq(isa.R12, isa.R0, label)
			b.Addi(pick(intRegs), pick(intRegs), 13)
			b.Label(label)
		case 12:
			b.Itof(pick(fpRegs), pick(intRegs))
		case 13:
			b.Fadd(pick(fpRegs), pick(fpRegs), pick(fpRegs))
		case 14:
			b.Fmul(pick(fpRegs), pick(fpRegs), pick(fpRegs))
		default:
			b.Ftoi(pick(intRegs), pick(fpRegs))
		}
	}
	b.Addi(isa.R10, isa.R10, -1)
	b.Bne(isa.R10, isa.R0, "loop")
	// Publish final state so memory comparison sees register results.
	b.Li(isa.R13, 0x8000)
	for i, reg := range intRegs {
		b.Sd(reg, isa.R13, int64(i*8))
	}
	for i, reg := range fpRegs {
		b.Fsd(reg, isa.R13, int64(64+i*8))
	}
	b.Halt()
	return b.MustBuild(), m
}

// TestRandomProgramEquivalence fuzzes the equivalence invariant: random
// programs, the machines most likely to disagree, exact state match.
func TestRandomProgramEquivalence(t *testing.T) {
	machines := map[string]config.Config{
		"mtvp4-wf":      core.MTVP(4, config.PredWangFranklin, config.SelILPPred),
		"mtvp8-always":  core.MTVP(8, config.PredLastValue, config.SelAlways),
		"mtvp4-nostall": core.MTVPNoStall(4, config.PredWangFranklin, config.SelAlways),
		"multival":      core.MTVPMultiValue(8, 3, 2),
		"stvp-always":   core.STVP(config.PredLastValue, config.SelAlways),
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog, refMem := randomProgram(seed, 30+int(seed)*7)
			refCtx := isa.NewContext(prog, refMem)
			refN := refCtx.Run(1 << 40)
			if !refCtx.Halted {
				t.Fatal("reference did not halt")
			}

			for name, cfg := range machines {
				cfg.MaxInsts = 1 << 40
				cfg.MaxCycles = 400_000_000
				prog2, image := randomProgram(seed, 30+int(seed)*7)
				res, err := core.Run(cfg, prog2, image)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Halted {
					t.Fatalf("%s: no halt (committed %d)", name, res.Stats.Committed)
				}
				if res.Stats.Committed != refN {
					t.Errorf("%s: committed %d, want %d", name, res.Stats.Committed, refN)
				}
				if addr, diff := image.Diff(refMem); diff {
					t.Errorf("%s: memory differs at %#x: %#x vs %#x",
						name, addr, image.Load(addr, 8), refMem.Load(addr, 8))
				}
				if res.RegsOK {
					for ri := 0; ri < isa.NumRegs; ri++ {
						if res.Regs[ri] != refCtx.R[ri] {
							t.Errorf("%s: reg %d = %#x, want %#x",
								name, ri, res.Regs[ri], refCtx.R[ri])
							break
						}
					}
				}
			}
		})
	}
}
