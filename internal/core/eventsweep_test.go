package core_test

import (
	"testing"

	"mtvp/internal/core"
)

// TestEventEngineSweep is the core-level half of the event-scheduler A/B
// guarantee (internal/pipeline owns the fault/recovery and telemetry axes):
// for every workload archetype × machine preset × fast-forward setting, a
// run on the event-driven calendar must be bit-identical to a run on the
// legacy polling scan — same statistics, same architectural registers, same
// halt status — with the lockstep oracle checking every useful commit on
// both sides. The presets carry Check=true, so any divergence inside either
// scheduler (not just between them) fails the run on its own.
func TestEventEngineSweep(t *testing.T) {
	t.Setenv("MTVP_NO_EVENTQ", "") // engine choice is per-config below
	benches := smallBenchmarks()[:4]
	if testing.Short() {
		benches = benches[:2]
	}
	for _, noFF := range []bool{false, true} {
		name := "ff"
		if noFF {
			name = "noff"
		}
		t.Run(name, func(t *testing.T) {
			for _, bench := range benches {
				bench := bench
				t.Run(bench.Name, func(t *testing.T) {
					for _, p := range differentialPresets() {
						cfg := p.cfg
						cfg.DisableFastForward = noFF

						run := func(polling bool) *core.Result {
							c := cfg
							c.DisableEventQueue = polling
							prog, image := bench.Build(7)
							res, err := core.Run(c, prog, image)
							if err != nil {
								t.Fatalf("%s polling=%v: %v", p.name, polling, err)
							}
							return res
						}
						ev := run(false)
						pol := run(true)

						if !ev.Halted || !pol.Halted {
							t.Fatalf("%s: halted diverges or false: event=%v polling=%v",
								p.name, ev.Halted, pol.Halted)
						}
						if ev.Stats != pol.Stats {
							t.Errorf("%s: stats diverge:\nevent:   %+v\npolling: %+v",
								p.name, ev.Stats, pol.Stats)
						}
						if ev.RegsOK != pol.RegsOK || ev.Regs != pol.Regs {
							t.Errorf("%s: architectural registers diverge", p.name)
						}
						if ev.Checked != ev.Stats.Committed || pol.Checked != pol.Stats.Committed {
							t.Errorf("%s: oracle verified event=%d/%d polling=%d/%d commits",
								p.name, ev.Checked, ev.Stats.Committed,
								pol.Checked, pol.Stats.Committed)
						}
					}
				})
			}
		})
	}
}
