package fault

import "fmt"

// Report is the structured abort record the engine returns when its recovery
// machinery is exhausted: the break budget is spent, every context is fully
// degraded, and the pipeline still cannot make commit progress. It is the
// "never hang" half of the robustness contract — a campaign run ends either
// oracle-clean or with one of these, and callers (mtvpsim, the campaign
// tests) can pick it out of the error chain with errors.As.
type Report struct {
	// Reason is a one-line description of the terminal condition.
	Reason string
	// Cycle is the simulated cycle at which the engine gave up.
	Cycle int64
	// Committed is the number of useful instructions retired before the
	// abort.
	Committed uint64
	// Injected is the per-class count of injected faults (nil when the run
	// had no injector).
	Injected map[string]uint64
	// Breaks is the number of deadlock-break recoveries attempted.
	Breaks uint64
	// Degradations is the number of ladder steps taken before giving up.
	Degradations uint64
	// Err is the underlying error, if the abort wrapped one.
	Err error
}

// Error formats the report as a single diagnostic line.
func (r *Report) Error() string {
	msg := fmt.Sprintf(
		"fault report: %s (cycle %d, committed %d, breaks %d, degradations %d, injected: %s)",
		r.Reason, r.Cycle, r.Committed, r.Breaks, r.Degradations,
		formatCounts(r.Injected))
	if r.Err != nil {
		msg += ": " + r.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying error to errors.Is/As.
func (r *Report) Unwrap() error { return r.Err }
