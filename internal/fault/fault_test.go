package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ByName(p.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", p.Name, err)
		}
		if got.Name != p.Name {
			t.Fatalf("ByName(%q) returned %q", p.Name, got.Name)
		}
		if got.Empty() {
			t.Fatalf("built-in profile %q injects nothing", p.Name)
		}
	}
	for _, name := range []string{"", "none"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if !p.Empty() {
			t.Fatalf("ByName(%q) should be empty", name)
		}
	}
	if _, err := ByName("no-such-profile"); err == nil {
		t.Fatal("ByName of unknown profile should error")
	}
}

func TestProfileNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if seen[p.Name] {
			t.Fatalf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestInjectorDeterminism(t *testing.T) {
	prof, _ := ByName("monsoon")
	run := func() ([]bool, []uint64) {
		inj := NewInjector(prof, 42)
		var fires []bool
		var rnds []uint64
		for n := 0; n < 10_000; n++ {
			k := Kind(n % int(NumKinds))
			f := inj.Fire(k)
			fires = append(fires, f)
			if f {
				rnds = append(rnds, inj.Rand64())
			}
		}
		return fires, rnds
	}
	f1, r1 := run()
	f2, r2 := run()
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("fire sequence diverged at opportunity %d", i)
		}
	}
	if len(r1) != len(r2) {
		t.Fatalf("payload stream length diverged: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("payload stream diverged at %d", i)
		}
	}
	if len(r1) == 0 {
		t.Fatal("monsoon at 10k opportunities never fired; rates too low?")
	}
}

func TestInjectorZeroRateConsumesNoRandomness(t *testing.T) {
	// Firing a zero-rate class must not advance the RNG: enabling one
	// fault class in a profile must not reshuffle another's decisions.
	prof := Profile{Rates: [NumKinds]uint32{MemDelay: 500_000}}
	a := NewInjector(prof, 7)
	b := NewInjector(prof, 7)
	for n := 0; n < 1_000; n++ {
		a.Fire(MemDelay)
		b.Fire(IQStick) // rate 0: no-op
		b.Fire(MemDelay)
	}
	if a.Count(MemDelay) != b.Count(MemDelay) {
		t.Fatalf("zero-rate Fire perturbed the stream: %d vs %d",
			a.Count(MemDelay), b.Count(MemDelay))
	}
}

func TestInjectorRates(t *testing.T) {
	// 50% rate over 100k opportunities should land well within [45%, 55%].
	prof := Profile{Rates: [NumKinds]uint32{PredBitFlip: 500_000}}
	inj := NewInjector(prof, 3)
	const n = 100_000
	for i := 0; i < n; i++ {
		inj.Fire(PredBitFlip)
	}
	got := inj.Count(PredBitFlip)
	if got < 45_000 || got > 55_000 {
		t.Fatalf("50%% rate fired %d/%d times", got, n)
	}
	if inj.Total() != got {
		t.Fatalf("Total %d != Count %d", inj.Total(), got)
	}
	if c := inj.Counts(); c["pred-bitflip"] != got {
		t.Fatalf("Counts map %v disagrees with Count %d", c, got)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var inj *Injector
	if inj.Fire(PredBitFlip) {
		t.Fatal("nil injector fired")
	}
	if inj.Rand64() != 0 || inj.Total() != 0 || inj.Count(MemDelay) != 0 {
		t.Fatal("nil injector returned nonzero")
	}
	if inj.Counts() != nil {
		t.Fatal("nil injector Counts should be nil")
	}
	if !inj.Profile().Empty() {
		t.Fatal("nil injector profile should be empty")
	}
}

func TestBackoffBudgetAndEscalation(t *testing.T) {
	b := NewBackoff(3, 8)
	if b.Multiplier() != 1 {
		t.Fatalf("fresh multiplier = %d, want 1", b.Multiplier())
	}
	wantMult := []int64{2, 4, 8}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("break %d denied within budget", i)
		}
		if b.Multiplier() != wantMult[i] {
			t.Fatalf("after break %d multiplier = %d, want %d", i, b.Multiplier(), wantMult[i])
		}
	}
	if b.Allow() {
		t.Fatal("break allowed past exhausted budget")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
	b.Progress()
	if !b.Allow() || b.Remaining() != 2 {
		t.Fatal("Progress did not refill the budget")
	}
	b.Reset()
	if b.Multiplier() != 1 || b.Remaining() != 3 {
		t.Fatal("Reset did not restore multiplier and budget")
	}
}

func TestBackoffMultiplierCap(t *testing.T) {
	b := NewBackoff(100, 4)
	for i := 0; i < 50; i++ {
		b.Allow()
	}
	if b.Multiplier() != 4 {
		t.Fatalf("multiplier %d exceeded cap 4", b.Multiplier())
	}
}

func TestQuarantineEscalationAndHysteresis(t *testing.T) {
	q := NewQuarantine()
	if q.State() != QHealthy {
		t.Fatalf("fresh state = %v", q.State())
	}
	// 8 wrongs * 4 = 32 -> clamped.
	var escalated int
	for i := 0; i < 8; i++ {
		if q.OnWrong() {
			escalated++
		}
	}
	if q.State() != QClamped || escalated != 1 {
		t.Fatalf("after 8 wrongs: state=%v escalations=%d", q.State(), escalated)
	}
	// 8 more -> 64 -> disabled.
	for i := 0; i < 8; i++ {
		if q.OnWrong() {
			escalated++
		}
	}
	if q.State() != QDisabled || escalated != 2 {
		t.Fatalf("after 16 wrongs: state=%v escalations=%d", q.State(), escalated)
	}
	// Saturation: many more wrongs cap the score.
	for i := 0; i < 100; i++ {
		q.OnWrong()
	}
	if q.Score() != 96 {
		t.Fatalf("score %d, want saturation at 96", q.Score())
	}
	// Hysteresis down: disabled->clamped at score<=32, clamped->healthy at <=16.
	for q.State() == QDisabled {
		q.OnCorrect()
	}
	if q.Score() != 32 {
		t.Fatalf("relaxed to clamped at score %d, want 32", q.Score())
	}
	for q.State() == QClamped {
		q.OnCorrect()
	}
	if q.Score() != 16 {
		t.Fatalf("relaxed to healthy at score %d, want 16", q.Score())
	}
}

func TestQuarantineTickDecay(t *testing.T) {
	// A disabled context makes no predictions, so only Tick can walk the
	// score down. 96 points * 256 ticks each = 24576 ticks to zero.
	q := NewQuarantine()
	for q.State() != QDisabled {
		q.OnWrong()
	}
	var relaxed int
	for i := 0; i < 96*256; i++ {
		if q.Tick() {
			relaxed++
		}
	}
	if q.Score() != 0 || q.State() != QHealthy {
		t.Fatalf("after full decay: score=%d state=%v", q.Score(), q.State())
	}
	if relaxed != 2 {
		t.Fatalf("decay produced %d relaxations, want 2 (disabled->clamped->healthy)", relaxed)
	}
	// Tick at score 0 is a no-op.
	if q.Tick() {
		t.Fatal("Tick at zero score relaxed something")
	}
}

func TestQuarantineNilSafe(t *testing.T) {
	var q *Quarantine
	if q.OnWrong() || q.OnCorrect() || q.Tick() {
		t.Fatal("nil quarantine transitioned")
	}
	if q.State() != QHealthy || q.Score() != 0 {
		t.Fatal("nil quarantine not healthy")
	}
}

func TestLadderDegradeAndRestore(t *testing.T) {
	l := NewLadder(100)
	if l.Level() != LevelFull {
		t.Fatalf("fresh level = %v", l.Level())
	}
	if !l.Degrade() || l.Level() != LevelSTVP {
		t.Fatalf("first degrade -> %v, want stvp", l.Level())
	}
	if !l.Degrade() || l.Level() != LevelNone {
		t.Fatalf("second degrade -> %v, want none", l.Level())
	}
	if l.Degrade() {
		t.Fatal("degrade past LevelNone should fail")
	}
	// Restoration: one rung per full cool-down.
	if l.Progress(99) {
		t.Fatal("restored before cool-down elapsed")
	}
	if !l.Progress(1) || l.Level() != LevelSTVP {
		t.Fatalf("after 100 commits level = %v, want stvp", l.Level())
	}
	// Clock restarts: the 99 surplus from before must not carry over.
	if l.Progress(99) {
		t.Fatal("cool-down clock did not restart after restoration")
	}
	if !l.Progress(1) || l.Level() != LevelFull {
		t.Fatalf("after second cool-down level = %v, want full", l.Level())
	}
	if l.Progress(1_000) {
		t.Fatal("Progress at LevelFull restored something")
	}
}

func TestLadderDegradeResetsCooldown(t *testing.T) {
	l := NewLadder(100)
	l.Degrade()
	l.Progress(60)
	l.Degrade() // re-degrade mid-cool-down
	if l.Progress(60) {
		t.Fatal("progress survived a degrade; cool-down must restart")
	}
}

func TestReportErrorAndUnwrap(t *testing.T) {
	inner := errors.New("storeq wedged")
	r := &Report{
		Reason:       "recovery exhausted",
		Cycle:        12345,
		Committed:    678,
		Injected:     map[string]uint64{"iq-stick": 3, "mem-delay": 1},
		Breaks:       8,
		Degradations: 2,
		Err:          inner,
	}
	msg := r.Error()
	for _, want := range []string{"recovery exhausted", "cycle 12345", "breaks 8",
		"degradations 2", "iq-stick=3", "mem-delay=1", "storeq wedged"} {
		if !contains(msg, want) {
			t.Fatalf("report %q missing %q", msg, want)
		}
	}
	if !errors.Is(r, inner) {
		t.Fatal("errors.Is through Report failed")
	}
	var rep *Report
	if !errors.As(error(r), &rep) {
		t.Fatal("errors.As on Report failed")
	}
	// Wrapped one level deep, as core.Run does.
	wrapped := fmt.Errorf("core: bench: %w", error(r))
	rep = nil
	if !errors.As(wrapped, &rep) || rep.Cycle != 12345 {
		t.Fatal("errors.As through a wrap failed")
	}
	// Empty-injection rendering.
	if msg := (&Report{Reason: "x"}).Error(); !contains(msg, "injected: none") {
		t.Fatalf("empty report %q should say injected: none", msg)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// FuzzRecoveryStateMachines drives the backoff, quarantine, and ladder state
// machines with an arbitrary event stream and checks their invariants never
// break: scores stay in range, states stay in their enums, budgets never go
// negative, and a ladder never reports a level outside [Full, None].
func FuzzRecoveryStateMachines(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(4), uint8(3))
	f.Add([]byte{2, 2, 2, 2, 0, 0, 1, 5, 5, 5}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, events []byte, budget, cooldown uint8) {
		b := NewBackoff(int(budget), 8)
		q := NewQuarantine()
		l := NewLadder(uint64(cooldown))
		for _, ev := range events {
			switch ev % 6 {
			case 0:
				b.Allow()
			case 1:
				b.Progress()
			case 2:
				q.OnWrong()
			case 3:
				q.OnCorrect()
			case 4:
				q.Tick()
			case 5:
				if !l.Degrade() {
					l.Progress(uint64(cooldown) + 1)
				}
			}
			if b.Remaining() < 0 {
				t.Fatalf("backoff budget went negative: %d", b.Remaining())
			}
			if m := b.Multiplier(); m < 1 || m > 8 {
				t.Fatalf("multiplier out of range: %d", m)
			}
			if s := q.Score(); s < 0 || s > 96 {
				t.Fatalf("quarantine score out of range: %d", s)
			}
			if st := q.State(); st < QHealthy || st > QDisabled {
				t.Fatalf("quarantine state out of range: %v", st)
			}
			if lv := l.Level(); lv < LevelFull || lv > LevelNone {
				t.Fatalf("ladder level out of range: %v", lv)
			}
		}
	})
}

func TestDiceDeterminismAndRates(t *testing.T) {
	// Same seed: identical decision stream (the property the fabric's
	// spot-checker and the chaos network harness both lean on).
	a, b := NewDice(42), NewDice(42)
	for i := 0; i < 10_000; i++ {
		ppm := uint32((i % 5) * 100_000)
		if a.Roll(ppm) != b.Roll(ppm) {
			t.Fatalf("roll %d diverged between same-seed dice", i)
		}
	}
	// Zero rate consumes no randomness: interleaving dead rolls must not
	// perturb the stream.
	c, d := NewDice(7), NewDice(7)
	var cs, ds []bool
	for i := 0; i < 1000; i++ {
		c.Roll(0)
		cs = append(cs, c.Roll(500_000))
		ds = append(ds, d.Roll(500_000))
	}
	for i := range cs {
		if cs[i] != ds[i] {
			t.Fatalf("roll %d: zero-rate rolls perturbed the stream", i)
		}
	}
	// Rate sanity: ~50% at 500k ppm.
	hits := 0
	for _, h := range cs {
		if h {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Errorf("500k ppm over 1000 rolls hit %d times, want ~500", hits)
	}
	// Nil dice never fires and never panics.
	var nilDice *Dice
	if nilDice.Roll(1_000_000) || nilDice.Rand64() != 0 {
		t.Error("nil dice must be inert")
	}
}

func TestQuarantineTuned(t *testing.T) {
	// The fleet tuning: one wrong event clamps, a second disables.
	q := NewQuarantineTuned(QuarantineTuning{
		WrongCost: 32, CorrectCredit: 2, ClampAt: 32, DisableAt: 64, ScoreMax: 96, DecayEvery: 4,
	})
	if !q.OnWrong() || q.State() != QClamped {
		t.Fatalf("first strike must clamp, got %s (score %d)", q.State(), q.Score())
	}
	if !q.OnWrong() || q.State() != QDisabled {
		t.Fatalf("second strike must disable, got %s (score %d)", q.State(), q.Score())
	}
	// Rehabilitation: decay ticks walk the score back through the
	// hysteresis bands.
	for i := 0; i < 32*4; i++ { // 64 → 32: the disabled→clamped boundary
		q.Tick()
	}
	if q.State() != QClamped {
		t.Fatalf("decay to clampAt must relax to clamped, got %s (score %d)", q.State(), q.Score())
	}
	for i := 0; i < 16*4; i++ { // 32 → 16: the clamped→healthy boundary
		q.Tick()
	}
	if q.State() != QHealthy {
		t.Fatalf("full decay must rehabilitate, got %s (score %d)", q.State(), q.Score())
	}

	// Zero fields select the documented defaults.
	if def, tuned := NewQuarantine(), NewQuarantineTuned(QuarantineTuning{}); *def != *tuned {
		t.Error("zero tuning must equal the default quarantine")
	}
}
