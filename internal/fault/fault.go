// Package fault is the simulator's robustness layer: deterministic fault
// injection that exercises the speculation machinery's failure paths, and the
// state machines the pipeline's recovery controller is built from — bounded
// deadlock-break retry with exponential backoff (Backoff), per-context
// misprediction-storm quarantine (Quarantine), and the graceful-degradation
// ladder that steps MTVP down to STVP and then to the non-speculative
// baseline (Ladder).
//
// Injected faults are microarchitectural, never architectural: they corrupt
// speculation metadata (predictions, spawn events), timing state (store-queue
// entries, completion latencies, issue slots), or resource bookkeeping — the
// classes of state the engine's recovery machinery is supposed to survive.
// A checked run under any built-in profile must therefore either recover to
// an oracle-clean finish or abort with a structured Report; it must never
// hang and never commit a wrong value silently.
package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault classes, one per speculation-machinery failure path.
const (
	// PredBitFlip flips one random bit of a predicted load value (a value
	// table soft error). The prediction is followed as usual and caught by
	// the normal verify-at-resolve path.
	PredBitFlip Kind = iota
	// PredAlias garbles the PC used to index the value predictor (an
	// aliasing storm): the prediction and confidence come from someone
	// else's entry.
	PredAlias
	// StoreDrop loses a store's timing-level store-buffer entry: no
	// forwarding, no drain traffic (functional state is unaffected).
	StoreDrop
	// StoreCorrupt corrupts the address tag of a store-buffer entry, so
	// forwarding matches and drain traffic hit the wrong line.
	StoreCorrupt
	// SpawnLost drops an MTVP spawn event in flight: no child is created
	// and the parent proceeds as if the selector had declined.
	SpawnLost
	// SpawnDup duplicates a spawn event: a second child chases the same
	// predicted value and must be killed at confirmation.
	SpawnDup
	// MemDelay adds a large extra latency to a load's completion (a
	// memory-system hiccup).
	MemDelay
	// IQStick wedges an issue-queue slot: the dispatched instruction
	// refuses to issue for StickCycles, far past the commit watchdog.
	IQStick
	// NumKinds is the number of fault classes.
	NumKinds
)

var kindNames = [NumKinds]string{
	PredBitFlip:  "pred-bitflip",
	PredAlias:    "pred-alias",
	StoreDrop:    "store-drop",
	StoreCorrupt: "store-corrupt",
	SpawnLost:    "spawn-lost",
	SpawnDup:     "spawn-dup",
	MemDelay:     "mem-delay",
	IQStick:      "iq-stick",
}

// String returns the fault class name.
func (k Kind) String() string {
	if k >= 0 && k < NumKinds {
		return kindNames[k]
	}
	return "fault?"
}

// Profile is a composable fault profile: an injection rate per fault class,
// in occurrences per million opportunities, plus the payload parameters the
// timed fault classes need.
type Profile struct {
	Name  string
	Rates [NumKinds]uint32 // parts per million, per opportunity

	// MemDelayCycles is the extra completion latency of one injected
	// memory delay.
	MemDelayCycles int
	// StickCycles is how long an injected stuck issue-queue slot refuses
	// to issue. Built-in profiles size this past the commit watchdog so
	// the recovery controller, not the scheduler, must clear it.
	StickCycles int
}

// Empty reports whether the profile injects nothing.
func (p Profile) Empty() bool {
	for _, r := range p.Rates {
		if r != 0 {
			return false
		}
	}
	return true
}

// Profiles returns the built-in fault profiles, each stressing one failure
// path (plus "monsoon", which composes them all). Every profile is part of
// the fault-campaign acceptance matrix: under -check it must recover to an
// oracle-clean finish or abort with a structured Report.
func Profiles() []Profile {
	return []Profile{
		{
			Name:  "pred-flip",
			Rates: [NumKinds]uint32{PredBitFlip: 30_000},
		},
		{
			Name:  "pred-chaos",
			Rates: [NumKinds]uint32{PredBitFlip: 400_000, PredAlias: 100_000},
		},
		{
			Name:  "pred-alias",
			Rates: [NumKinds]uint32{PredAlias: 150_000},
		},
		{
			Name:  "storebuf-rot",
			Rates: [NumKinds]uint32{StoreDrop: 8_000, StoreCorrupt: 8_000},
		},
		{
			Name:  "spawn-storm",
			Rates: [NumKinds]uint32{SpawnLost: 150_000, SpawnDup: 150_000},
		},
		{
			Name:           "mem-jitter",
			Rates:          [NumKinds]uint32{MemDelay: 10_000},
			MemDelayCycles: 2_000,
		},
		{
			Name:        "stuck-iq",
			Rates:       [NumKinds]uint32{IQStick: 300},
			StickCycles: 120_000,
		},
		{
			Name:        "stuck-iq-storm",
			Rates:       [NumKinds]uint32{IQStick: 15_000},
			StickCycles: 80_000,
		},
		{
			Name: "monsoon",
			Rates: [NumKinds]uint32{
				PredBitFlip: 20_000, PredAlias: 20_000,
				StoreDrop: 2_000, StoreCorrupt: 2_000,
				SpawnLost: 50_000, SpawnDup: 50_000,
				MemDelay: 5_000, IQStick: 150,
			},
			MemDelayCycles: 1_000,
			StickCycles:    90_000,
		},
	}
}

// ByName resolves a built-in profile. The empty string and "none" name the
// empty profile (no injection).
func ByName(name string) (Profile, error) {
	if name == "" || name == "none" {
		return Profile{Name: "none"}, nil
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("fault: unknown profile %q (built-ins: %s)",
		name, strings.Join(names, ", "))
}

// Dice is the injector's seeded randomness source on its own: one
// splitmix64 stream rolling parts-per-million chances, exactly reproducible
// from the seed. It exists as a separate type because the fabric reuses the
// same idiom away from the simulator — spot-check re-leasing and the chaos
// network harness roll the same dice the fault injector does. A nil *Dice
// never fires.
type Dice struct {
	rng uint64
}

// NewDice builds a seeded dice stream (seed 0 selects a fixed default).
func NewDice(seed uint64) *Dice {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Dice{rng: seed}
}

// next advances the splitmix64 stream.
func (d *Dice) next() uint64 {
	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Roll rolls one ppm-rated chance. A zero rate consumes no randomness, so
// an unarmed site does not perturb the stream of an armed one.
func (d *Dice) Roll(ppm uint32) bool {
	if d == nil || ppm == 0 {
		return false
	}
	return d.next()%1_000_000 < uint64(ppm)
}

// Rand64 returns deterministic payload randomness from the same stream.
func (d *Dice) Rand64() uint64 {
	if d == nil {
		return 0
	}
	return d.next()
}

// Injector rolls deterministic dice at each injection opportunity. One
// seeded splitmix64 stream drives every site, so a run is exactly
// reproducible from (profile, seed). A nil *Injector never fires, letting
// call sites stay unconditional.
type Injector struct {
	prof   Profile
	dice   Dice
	counts [NumKinds]uint64
}

// NewInjector builds an injector for the profile over the given seed.
func NewInjector(p Profile, seed uint64) *Injector {
	return &Injector{prof: p, dice: *NewDice(seed)}
}

// Fire rolls one injection opportunity for fault class k, counting hits.
// Classes with a zero rate consume no randomness, so enabling one fault
// class does not perturb another's stream.
func (i *Injector) Fire(k Kind) bool {
	if i == nil {
		return false
	}
	if !i.dice.Roll(i.prof.Rates[k]) {
		return false
	}
	i.counts[k]++
	return true
}

// Rand64 returns deterministic payload randomness (bit positions, address
// perturbations) from the same stream.
func (i *Injector) Rand64() uint64 {
	if i == nil {
		return 0
	}
	return i.dice.Rand64()
}

// Profile returns the injector's profile (the zero Profile for nil).
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{}
	}
	return i.prof
}

// Count returns how many faults of class k have been injected.
func (i *Injector) Count(k Kind) uint64 {
	if i == nil {
		return 0
	}
	return i.counts[k]
}

// Total returns the total number of injected faults.
func (i *Injector) Total() uint64 {
	if i == nil {
		return 0
	}
	var n uint64
	for _, c := range i.counts {
		n += c
	}
	return n
}

// Counts returns the nonzero per-class injection counts by class name.
func (i *Injector) Counts() map[string]uint64 {
	if i == nil {
		return nil
	}
	out := make(map[string]uint64)
	for k := Kind(0); k < NumKinds; k++ {
		if i.counts[k] != 0 {
			out[k.String()] = i.counts[k]
		}
	}
	return out
}

// formatCounts renders a count map deterministically (sorted by name).
func formatCounts(m map[string]uint64) string {
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
