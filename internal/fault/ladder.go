package fault

// Level is a rung on the per-context graceful-degradation ladder.
type Level int

// Degradation levels, most capable first.
const (
	// LevelFull allows the configured speculation mode (MTVP if built).
	LevelFull Level = iota
	// LevelSTVP caps the context at single-threaded value prediction:
	// predictions may be followed but no speculative threads spawn.
	LevelSTVP
	// LevelNone runs the context non-speculatively.
	LevelNone
)

// String returns the degradation level name.
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelSTVP:
		return "stvp"
	case LevelNone:
		return "none"
	}
	return "level?"
}

// Ladder is one hardware context's graceful-degradation state: when the
// recovery controller exhausts its deadlock-break budget it steps the
// context down a rung (MTVP → STVP → baseline) rather than aborting, and a
// cool-down of clean committed instructions earns each rung back.
type Ladder struct {
	level    Level
	cooldown uint64 // commits of clean progress per restored rung
	progress uint64 // commits since the last transition
}

// NewLadder builds a ladder that restores one rung per `cooldown` clean
// commits (<= 0 selects the default of 50_000).
func NewLadder(cooldown uint64) *Ladder {
	if cooldown == 0 {
		cooldown = 50_000
	}
	return &Ladder{cooldown: cooldown}
}

// Level returns the current rung (LevelFull for nil).
func (l *Ladder) Level() Level {
	if l == nil {
		return LevelFull
	}
	return l.level
}

// Degrade steps down one rung, restarting the cool-down clock. It returns
// false when already at LevelNone — nothing left to give up, so the caller
// must abort with a structured Report instead.
func (l *Ladder) Degrade() bool {
	if l.level >= LevelNone {
		return false
	}
	l.level++
	l.progress = 0
	return true
}

// Progress credits n clean commits toward restoration and returns true when
// the cool-down elapsed and a rung was restored. The clock restarts on each
// restoration, so climbing from LevelNone back to LevelFull takes two full
// cool-downs.
func (l *Ladder) Progress(n uint64) bool {
	if l == nil || l.level == LevelFull {
		return false
	}
	l.progress += n
	if l.progress < l.cooldown {
		return false
	}
	l.level--
	l.progress = 0
	return true
}
