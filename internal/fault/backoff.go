package fault

// Backoff is the bounded retry budget behind the recovery controller's
// deadlock breaks. Each break spends one unit of budget and doubles the
// watchdog's patience (up to a cap), so a machine stuck in a break/re-stall
// loop burns through its budget in bounded time instead of thrashing
// forever. Sustained forward progress refills the budget and resets the
// multiplier, so isolated stalls hours apart each get the full allowance.
type Backoff struct {
	budget  int   // remaining breaks before the controller escalates
	initial int   // budget granted at construction / on refill
	mult    int64 // current watchdog multiplier (power of two)
	maxMult int64 // multiplier cap
}

// NewBackoff builds a budget of n breaks (n <= 0 selects the default of 8)
// with watchdog multiplier capped at maxMult (<= 0 selects 8).
func NewBackoff(n int, maxMult int64) *Backoff {
	if n <= 0 {
		n = 8
	}
	if maxMult <= 0 {
		maxMult = 8
	}
	return &Backoff{budget: n, initial: n, mult: 1, maxMult: maxMult}
}

// Allow spends one unit of budget if any remains, doubling the multiplier.
// It returns false once the budget is exhausted — the caller must escalate
// (degrade speculation, or abort with a Report) rather than retry.
func (b *Backoff) Allow() bool {
	if b.budget <= 0 {
		return false
	}
	b.budget--
	if b.mult < b.maxMult {
		b.mult *= 2
	}
	return true
}

// Multiplier returns the current watchdog patience multiplier (>= 1).
func (b *Backoff) Multiplier() int64 {
	if b == nil || b.mult < 1 {
		return 1
	}
	return b.mult
}

// Remaining returns the unspent break budget.
func (b *Backoff) Remaining() int { return b.budget }

// Progress refills the budget and relaxes the multiplier after sustained
// forward progress; the caller decides what "sustained" means (e.g. 10k
// commits with no break).
func (b *Backoff) Progress() {
	b.budget = b.initial
	b.mult = 1
}

// Reset restores the full budget and multiplier, used after an escalation
// (degradation) so the degraded machine gets a fresh allowance.
func (b *Backoff) Reset() {
	b.budget = b.initial
	b.mult = 1
}
