package fault

// QState is a quarantine level for one hardware context's view of the value
// predictor.
type QState int

// Quarantine levels, in escalating order.
const (
	// QHealthy imposes no restriction: predictions are used as configured.
	QHealthy QState = iota
	// QClamped raises the confidence bar: only predictions well above the
	// predictor's normal threshold are followed.
	QClamped
	// QDisabled suppresses value prediction entirely for the context.
	QDisabled
)

// String returns the quarantine level name.
func (s QState) String() string {
	switch s {
	case QHealthy:
		return "healthy"
	case QClamped:
		return "clamped"
	case QDisabled:
		return "disabled"
	}
	return "qstate?"
}

// Quarantine is the per-context misprediction-storm detector. It keeps a
// saturating penalty score — mispredictions add WrongCost, correct
// predictions subtract CorrectCredit, and idle time decays it — and maps
// score bands to quarantine levels with hysteresis, so a predictor that is
// being actively poisoned (by a fault campaign or a hostile workload) is
// first clamped to high-confidence predictions only, then disabled outright,
// and only re-enabled after the storm demonstrably passes.
type Quarantine struct {
	state QState
	score int

	wrongCost     int // score added per misprediction
	correctCredit int // score removed per correct prediction
	clampAt       int // score that enters QClamped
	disableAt     int // score that enters QDisabled
	scoreMax      int // saturation ceiling
	decayEvery    int // commit ticks per 1 point of passive decay
	tick          int
}

// NewQuarantine builds a detector with the default tuning: mispredictions
// cost 4, correct predictions earn back 1, clamping starts at 32, disabling
// at 64, and the score passively decays 1 point per 256 commit ticks (so a
// disabled context whose predictor makes no predictions can still recover).
func NewQuarantine() *Quarantine {
	return NewQuarantineTuned(QuarantineTuning{})
}

// QuarantineTuning parameterizes a Quarantine. The zero value of any field
// selects the predictor-storm default for that field (see NewQuarantine).
// The fabric coordinator runs the same state machine at fleet level with a
// far harsher tuning: one attested-corrupt result from a worker is worth a
// whole misprediction storm.
type QuarantineTuning struct {
	WrongCost     int // score added per wrong event
	CorrectCredit int // score removed per correct event
	ClampAt       int // score entering QClamped
	DisableAt     int // score entering QDisabled
	ScoreMax      int // saturation ceiling
	DecayEvery    int // ticks per point of passive decay
}

// NewQuarantineTuned builds a detector with explicit tuning; zero fields
// fall back to the defaults documented on NewQuarantine.
func NewQuarantineTuned(t QuarantineTuning) *Quarantine {
	def := func(v, d int) int {
		if v <= 0 {
			return d
		}
		return v
	}
	return &Quarantine{
		wrongCost:     def(t.WrongCost, 4),
		correctCredit: def(t.CorrectCredit, 1),
		clampAt:       def(t.ClampAt, 32),
		disableAt:     def(t.DisableAt, 64),
		scoreMax:      def(t.ScoreMax, 96),
		decayEvery:    def(t.DecayEvery, 256),
	}
}

// State returns the current quarantine level (QHealthy for nil).
func (q *Quarantine) State() QState {
	if q == nil {
		return QHealthy
	}
	return q.state
}

// Score returns the current penalty score.
func (q *Quarantine) Score() int {
	if q == nil {
		return 0
	}
	return q.score
}

// OnWrong records a misprediction. It returns true when the event escalated
// the quarantine level (healthy→clamped or clamped→disabled).
func (q *Quarantine) OnWrong() bool {
	if q == nil {
		return false
	}
	q.score += q.wrongCost
	if q.score > q.scoreMax {
		q.score = q.scoreMax
	}
	return q.escalate()
}

// OnCorrect records a correct, followed prediction. It returns true when the
// event relaxed the quarantine level.
func (q *Quarantine) OnCorrect() bool {
	if q == nil {
		return false
	}
	q.score -= q.correctCredit
	if q.score < 0 {
		q.score = 0
	}
	return q.relax()
}

// Tick records one commit's worth of passive time. A disabled context makes
// no predictions, so OnCorrect alone could never rehabilitate it; decay is
// what walks the score back down during the cool-down. Returns true when
// the decay relaxed the quarantine level.
func (q *Quarantine) Tick() bool {
	if q == nil || q.score == 0 {
		return false
	}
	q.tick++
	if q.tick < q.decayEvery {
		return false
	}
	q.tick = 0
	q.score--
	return q.relax()
}

// escalate raises state to match the score. Escalation has no hysteresis:
// the moment the score crosses a threshold the restriction applies.
func (q *Quarantine) escalate() bool {
	switch {
	case q.state == QHealthy && q.score >= q.clampAt:
		q.state = QClamped
		if q.score >= q.disableAt {
			q.state = QDisabled
		}
		return true
	case q.state == QClamped && q.score >= q.disableAt:
		q.state = QDisabled
		return true
	}
	return false
}

// relax lowers state with hysteresis: disabled→clamped only once the score
// falls back to the clamp threshold, clamped→healthy at half of it. The gap
// keeps a context from oscillating at a threshold boundary.
func (q *Quarantine) relax() bool {
	switch {
	case q.state == QDisabled && q.score <= q.clampAt:
		q.state = QClamped
		return true
	case q.state == QClamped && q.score <= q.clampAt/2:
		q.state = QHealthy
		return true
	}
	return false
}
