// Package asm provides a programmatic assembler for the synthetic ISA in
// internal/isa. Workload kernels are written as Go code against a Builder:
// labels name instruction positions, branch and jump targets are given by
// label, and Build resolves all fixups into absolute instruction indices.
package asm

import (
	"fmt"

	"mtvp/internal/isa"
)

// Builder accumulates instructions and resolves labels into an isa.Program.
// The zero value is not usable; call New.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int64
	fixups []fixup
	errs   []error
}

type fixup struct {
	idx   int
	label string
}

// New returns an empty Builder for a program with the given name.
func New(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int64)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Label defines a label at the current position. Redefining a label is an
// error reported by Build.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: label %q redefined", name))
		return
	}
	b.labels[name] = int64(len(b.insts))
}

func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
}

func (b *Builder) emitTo(in isa.Inst, label string) {
	b.fixups = append(b.fixups, fixup{idx: len(b.insts), label: label})
	b.emit(in)
}

// Build resolves labels and returns the assembled program.
func (b *Builder) Build() (*isa.Program, error) {
	for _, f := range b.fixups {
		tgt, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("asm: undefined label %q", f.label))
			continue
		}
		b.insts[f.idx].Imm = tgt
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	return &isa.Program{Name: b.name, Insts: insts}, nil
}

// MustBuild is Build but panics on error; workload kernels are static
// programs whose assembly errors are programming bugs.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// --- integer ALU -----------------------------------------------------------

// Add emits rd ← rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sub emits rd ← rs1 − rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd ← rs1 × rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd ← rs1 ÷ rs2 (unsigned; x÷0 = 0).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.DIV, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd ← rs1 mod rs2 (unsigned; x mod 0 = 0).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.REM, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd ← rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.AND, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd ← rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) { b.emit(isa.Inst{Op: isa.OR, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Xor emits rd ← rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sll emits rd ← rs1 << rs2.
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SLL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Srl emits rd ← rs1 >> rs2 (logical).
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SRL, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd ← (rs1 < rs2), signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SLT, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Sltu emits rd ← (rs1 < rs2), unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.SLTU, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd ← rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd ← rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ori emits rd ← rs1 | imm.
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Xori emits rd ← rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slli emits rd ← rs1 << imm.
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Srli emits rd ← rs1 >> imm (logical).
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.SRLI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Muli emits rd ← rs1 × imm.
func (b *Builder) Muli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.MULI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li emits rd ← imm (full 64-bit immediate).
func (b *Builder) Li(rd isa.Reg, imm int64) { b.emit(isa.Inst{Op: isa.LI, Rd: rd, Imm: imm}) }

// Liu emits rd ← imm for an unsigned immediate.
func (b *Builder) Liu(rd isa.Reg, imm uint64) { b.Li(rd, int64(imm)) }

// Mov emits rd ← rs (as addi rd, rs, 0).
func (b *Builder) Mov(rd, rs isa.Reg) { b.Addi(rd, rs, 0) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Inst{Op: isa.NOP}) }

// --- floating point ---------------------------------------------------------

// Fadd emits fd ← fs1 + fs2.
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FADD, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fsub emits fd ← fs1 − fs2.
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FSUB, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fmul emits fd ← fs1 × fs2.
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FMUL, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fdiv emits fd ← fs1 ÷ fs2 (x÷0 = 0).
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FDIV, Rd: fd, Rs1: fs1, Rs2: fs2})
}

// Fsqrt emits fd ← √fs1.
func (b *Builder) Fsqrt(fd, fs1 isa.Reg) { b.emit(isa.Inst{Op: isa.FSQRT, Rd: fd, Rs1: fs1}) }

// Itof emits fd ← float64(rs1).
func (b *Builder) Itof(fd, rs1 isa.Reg) { b.emit(isa.Inst{Op: isa.ITOF, Rd: fd, Rs1: rs1}) }

// Ftoi emits rd ← int64(fs1).
func (b *Builder) Ftoi(rd, fs1 isa.Reg) { b.emit(isa.Inst{Op: isa.FTOI, Rd: rd, Rs1: fs1}) }

// Flt emits rd ← (fs1 < fs2).
func (b *Builder) Flt(rd, fs1, fs2 isa.Reg) {
	b.emit(isa.Inst{Op: isa.FLT, Rd: rd, Rs1: fs1, Rs2: fs2})
}

// --- memory -----------------------------------------------------------------

// Ld emits rd ← mem64[rs1+off].
func (b *Builder) Ld(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: off})
}

// Lw emits rd ← mem32[rs1+off] (zero-extended).
func (b *Builder) Lw(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.LW, Rd: rd, Rs1: rs1, Imm: off})
}

// Lb emits rd ← mem8[rs1+off] (zero-extended).
func (b *Builder) Lb(rd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.LB, Rd: rd, Rs1: rs1, Imm: off})
}

// Fld emits fd ← mem64[rs1+off] (FP load).
func (b *Builder) Fld(fd, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.FLD, Rd: fd, Rs1: rs1, Imm: off})
}

// Sd emits mem64[rs1+off] ← rs2.
func (b *Builder) Sd(rs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.SD, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Sw emits mem32[rs1+off] ← rs2.
func (b *Builder) Sw(rs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.SW, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Sb emits mem8[rs1+off] ← rs2.
func (b *Builder) Sb(rs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.SB, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Fsd emits mem64[rs1+off] ← fs2 (FP store).
func (b *Builder) Fsd(fs2, rs1 isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.FSD, Rs1: rs1, Rs2: fs2, Imm: off})
}

// --- control flow -----------------------------------------------------------

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BEQ, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BNE, Rs1: rs1, Rs2: rs2}, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BLT, Rs1: rs1, Rs2: rs2}, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BGE, Rs1: rs1, Rs2: rs2}, label)
}

// Bltu emits a branch to label when rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BLTU, Rs1: rs1, Rs2: rs2}, label)
}

// Bgeu emits a branch to label when rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.BGEU, Rs1: rs1, Rs2: rs2}, label)
}

// J emits an unconditional jump to label.
func (b *Builder) J(label string) { b.emitTo(isa.Inst{Op: isa.J}, label) }

// Jal emits a call: rd ← return index, jump to label.
func (b *Builder) Jal(rd isa.Reg, label string) {
	b.emitTo(isa.Inst{Op: isa.JAL, Rd: rd}, label)
}

// Jr emits an indirect jump to the instruction index in rs1.
func (b *Builder) Jr(rs1 isa.Reg) { b.emit(isa.Inst{Op: isa.JR, Rs1: rs1}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.emit(isa.Inst{Op: isa.HALT}) }
