package asm

import (
	"strings"
	"testing"

	"mtvp/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := New("t")
	b.Li(isa.R1, 3) // 0
	b.Label("loop")
	b.Addi(isa.R1, isa.R1, -1)    // 1
	b.Bne(isa.R1, isa.R0, "loop") // 2 -> 1
	b.J("end")                    // 3 -> 5
	b.Nop()                       // 4
	b.Label("end")
	b.Halt() // 5
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Imm != 1 {
		t.Errorf("backward branch target = %d, want 1", p.Insts[2].Imm)
	}
	if p.Insts[3].Imm != 5 {
		t.Errorf("forward jump target = %d, want 5", p.Insts[3].Imm)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := New("t")
	b.J("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
}

func TestRedefinedLabel(t *testing.T) {
	b := New("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("expected redefined-label error, got %v", err)
	}
}

func TestBuildIsolation(t *testing.T) {
	// Build must return a copy: later emissions must not alias.
	b := New("t")
	b.Nop()
	b.Halt()
	p1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := p1.Insts[0].Op
	b.insts[0].Op = isa.ADD
	if p1.Insts[0].Op != got {
		t.Error("Build result aliases builder state")
	}
}

func TestAssembledProgramRuns(t *testing.T) {
	b := New("fib")
	b.Li(isa.R1, 0)  // fib(0)
	b.Li(isa.R2, 1)  // fib(1)
	b.Li(isa.R3, 10) // count
	b.Label("loop")
	b.Add(isa.R4, isa.R1, isa.R2)
	b.Mov(isa.R1, isa.R2)
	b.Mov(isa.R2, isa.R4)
	b.Addi(isa.R3, isa.R3, -1)
	b.Bne(isa.R3, isa.R0, "loop")
	b.Halt()
	p := b.MustBuild()

	c := isa.NewContext(p, nopMem{})
	c.Run(10_000)
	if !c.Halted {
		t.Fatal("did not halt")
	}
	if c.R[isa.R2] != 89 { // fib(11)
		t.Errorf("fib = %d, want 89", c.R[isa.R2])
	}
}

func TestEmitters(t *testing.T) {
	// Every emitter produces the opcode and operands it promises.
	b := New("ops")
	b.Add(isa.R1, isa.R2, isa.R3)
	b.Fadd(isa.F1, isa.F2, isa.F3)
	b.Ld(isa.R1, isa.R2, 8)
	b.Sd(isa.R3, isa.R2, 16)
	b.Fsd(isa.F3, isa.R2, 24)
	b.Liu(isa.R4, 1<<63)
	b.Slli(isa.R5, isa.R5, 3)
	b.Halt()
	p := b.MustBuild()

	want := []isa.Inst{
		{Op: isa.ADD, Rd: isa.R1, Rs1: isa.R2, Rs2: isa.R3},
		{Op: isa.FADD, Rd: isa.F1, Rs1: isa.F2, Rs2: isa.F3},
		{Op: isa.LD, Rd: isa.R1, Rs1: isa.R2, Imm: 8},
		{Op: isa.SD, Rs1: isa.R2, Rs2: isa.R3, Imm: 16},
		{Op: isa.FSD, Rs1: isa.R2, Rs2: isa.F3, Imm: 24},
		{Op: isa.LI, Rd: isa.R4, Imm: int64(-1 << 63)},
		{Op: isa.SLLI, Rd: isa.R5, Rs1: isa.R5, Imm: 3},
		{Op: isa.HALT},
	}
	if len(p.Insts) != len(want) {
		t.Fatalf("emitted %d insts, want %d", len(p.Insts), len(want))
	}
	for i, w := range want {
		if p.Insts[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, p.Insts[i], w)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on bad program")
		}
	}()
	b := New("bad")
	b.J("missing")
	b.MustBuild()
}

type nopMem struct{}

func (nopMem) Load(uint64, int) uint64   { return 0 }
func (nopMem) Store(uint64, int, uint64) {}
