package experiments

import (
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/workload"
)

// These tests assert the paper's qualitative claims hold in the
// reproduction — the "shape" contract of EXPERIMENTS.md. They run a subset
// of benchmarks at a reduced budget, so they check signs and orderings, not
// magnitudes.

func claimOpts(names ...string) Options {
	o := DefaultOptions()
	o.Insts = 100_000
	for _, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		o.Benchmarks = append(o.Benchmarks, b)
	}
	return o
}

func ipcOf(t *testing.T, o Options, b workload.Benchmark, cfg config.Config) float64 {
	t.Helper()
	st, err := o.run(b, "claim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st.UsefulIPC()
}

// Claim (§1, §5.1): threaded value prediction is several times more
// effective than traditional value prediction on memory-bound,
// value-predictable integer codes.
func TestClaimMTVPBeatsSTVPOnChase(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("mcf")
	b := o.Benchmarks[0]
	base := ipcOf(t, o, b, core.Baseline())
	stvp := ipcOf(t, o, b, core.STVPOracleLimit())
	mtvp8 := ipcOf(t, o, b, core.MTVPOracleLimit(8))
	if stvp <= base {
		t.Errorf("oracle STVP did not beat baseline: %.4f vs %.4f", stvp, base)
	}
	if mtvp8 <= stvp {
		t.Errorf("oracle MTVP8 (%.4f) did not beat STVP (%.4f)", mtvp8, stvp)
	}
}

// Claim (Figure 1): more hardware contexts give more speedup.
func TestClaimContextsScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("mcf")
	b := o.Benchmarks[0]
	prev := 0.0
	for _, n := range []int{2, 4, 8} {
		ipc := ipcOf(t, o, b, core.MTVPOracleLimit(n))
		if ipc < prev*0.97 { // allow tiny non-monotonic noise
			t.Errorf("mtvp%d IPC %.4f dropped well below mtvp%d", n, ipc, n/2)
		}
		prev = ipc
	}
}

// Claim (§1, §5.4): traditional value prediction shows almost nothing on FP
// codes, while MTVP with the same predictor is strongly positive on
// memory-bound FP.
func TestClaimFPAsymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("art 1")
	b := o.Benchmarks[0]
	base := ipcOf(t, o, b, core.Baseline())
	stvp := ipcOf(t, o, b, core.STVP(config.PredWangFranklin, config.SelILPPred))
	mtvp8 := ipcOf(t, o, b, core.MTVP(8, config.PredWangFranklin, config.SelILPPred))
	stvpGain := stvp/base - 1
	mtvpGain := mtvp8/base - 1
	if stvpGain > 0.05 {
		t.Errorf("STVP gain on FP gather unexpectedly large: %.1f%%", stvpGain*100)
	}
	if mtvpGain < 0.20 {
		t.Errorf("MTVP8 gain on FP gather too small: %.1f%%", mtvpGain*100)
	}
}

// Claim (Figure 4): the single fetch path policy outperforms letting the
// parent keep fetching (no-stall), on average.
func TestClaimSFPBeatsNoStall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("mcf", "parser", "art 1", "vpr r")
	var sfpSum, noStallSum float64
	for _, b := range o.Benchmarks {
		sfpSum += ipcOf(t, o, b, core.MTVP(4, config.PredWangFranklin, config.SelILPPred))
		noStallSum += ipcOf(t, o, b, core.MTVPNoStall(4, config.PredWangFranklin, config.SelILPPred))
	}
	if sfpSum < noStallSum*0.98 {
		t.Errorf("SFP total IPC %.4f well below no-stall %.4f", sfpSum, noStallSum)
	}
}

// Claim (§5.3): store-buffer capacity bounds how far a spawned thread can
// run (counted in stores); a 128-entry buffer gets nearly the performance
// of an unbounded one, while tiny buffers cost real performance. The
// binding scenario is a long resident stretch (many stores) between
// predictable long-latency loads.
func TestClaimStoreBufferSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b := workload.Blocked("sb-claim", workload.INT, workload.BlockedParams{
		WorkingSet: 16 << 10, MulChain: 1,
		SideTableLen: 1 << 20, SideEvery: 96, SideDominant: 96,
		Iters: 1 << 20,
	})
	o := DefaultOptions()
	o.Insts = 100_000
	mk := func(entries int) config.Config {
		cfg := core.MTVPOracleLimit(2)
		cfg.VP.StoreBufEntries = entries
		return cfg
	}
	tiny := ipcOf(t, o, b, mk(8))
	mid := ipcOf(t, o, b, mk(128))
	unbounded := ipcOf(t, o, b, mk(0))
	if mid < unbounded*0.85 {
		t.Errorf("128-entry buffer IPC %.4f far from unbounded %.4f", mid, unbounded)
	}
	if tiny >= mid {
		t.Errorf("8-entry buffer IPC %.4f not below 128-entry %.4f", tiny, mid)
	}
}

// Claim (Figure 6): MTVP beats even an idealized wide-window machine on
// serial-dependence integer code (it creates parallelism rather than just
// finding it), while the wide window is stronger on independent-miss FP
// code.
func TestClaimWideWindowCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("mcf", "art 1")
	chase, gather := o.Benchmarks[0], o.Benchmarks[1]

	mtvpChase := ipcOf(t, o, chase, core.MTVP(8, config.PredWangFranklin, config.SelILPPred))
	wwChase := ipcOf(t, o, chase, core.WideWindow())
	if mtvpChase <= wwChase {
		t.Errorf("on the serial chase, MTVP (%.4f) should beat the wide window (%.4f)",
			mtvpChase, wwChase)
	}

	wwGather := ipcOf(t, o, gather, core.WideWindow())
	baseGather := ipcOf(t, o, gather, core.Baseline())
	if wwGather <= baseGather {
		t.Errorf("wide window should beat baseline on independent misses: %.4f vs %.4f",
			wwGather, baseGather)
	}
}

// Claim (Figure 6): spawn-only (split window, no value prediction) is far
// less effective than the combination of spawning and value prediction on
// dependence-bound code.
func TestClaimValuePredictionIsKey(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := claimOpts("mcf")
	b := o.Benchmarks[0]
	spawnOnly := ipcOf(t, o, b, core.SpawnOnly(8))
	mtvp := ipcOf(t, o, b, core.MTVP(8, config.PredWangFranklin, config.SelILPPred))
	if mtvp <= spawnOnly {
		t.Errorf("value prediction added nothing over spawn-only: %.4f vs %.4f",
			mtvp, spawnOnly)
	}
}
