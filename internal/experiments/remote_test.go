package experiments

// Golden tests for the distributed path: the same sweep run through the
// local worker pool and through the fabric (any fleet topology, including
// one losing a worker mid-campaign) must render byte-identical tables.

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fabric"
	"mtvp/internal/fabric/chaos"
	"mtvp/internal/workload"
)

// fabricOpts runs two real built-in benchmarks (one per suite) at a tiny
// instruction budget; remote workers resolve them by name, so custom test
// kernels cannot be used here.
func fabricOpts() Options {
	o := DefaultOptions()
	o.Insts = 3000
	mcf, err := workload.ByName("mcf")
	if err != nil {
		panic(err)
	}
	swim, err := workload.ByName("swim")
	if err != nil {
		panic(err)
	}
	o.Benchmarks = []workload.Benchmark{mcf, swim}
	return o
}

// startFabric brings up an in-process coordinator plus n worker agents
// running the real simulator via RunSpec.
func startFabric(t *testing.T, n int, cfg fabric.CoordinatorConfig) (*fabric.Coordinator, string, []context.CancelFunc) {
	t.Helper()
	co, err := fabric.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fabric.NewServer(co, fabric.ServerConfig{
		Addr: "127.0.0.1:0", Token: "test-token", ExpireEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); co.Close() })

	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		done := make(chan struct{})
		go func(name string) {
			defer close(done)
			fabric.RunWorker(ctx, fabric.WorkerConfig{
				Coordinator: srv.URL(), Token: "test-token", Name: name, Slots: 2,
				Poll: 10 * time.Millisecond, Run: RunSpec,
			})
		}(fmt.Sprintf("w%d", i))
		t.Cleanup(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("worker failed to drain")
			}
		})
	}
	return co, srv.URL(), cancels
}

func renderFig2(t *testing.T, o Options) string {
	t.Helper()
	tables, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tables {
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRemoteSweepMatchesLocalByteForByte is the acceptance test: one local
// run, one 2-worker fabric run, and one 4-worker fabric run that loses a
// worker mid-campaign all render the same bytes.
func TestRemoteSweepMatchesLocalByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across a fleet")
	}

	local := renderFig2(t, fabricOpts())

	// Two healthy workers.
	o := fabricOpts()
	_, url, _ := startFabric(t, 2, fabric.CoordinatorConfig{
		LeaseTTL: 2 * time.Second, Retries: 5,
	})
	o.Coordinator, o.Token = url, "test-token"
	remote := renderFig2(t, o)
	if remote != local {
		t.Errorf("remote report differs from local:\n--- local ---\n%s--- remote ---\n%s", local, remote)
	}

	// Four workers, one killed mid-campaign (hard cancel: its in-flight
	// cells are handed back or expire; either way the campaign completes).
	o2 := fabricOpts()
	co, url2, cancels := startFabric(t, 4, fabric.CoordinatorConfig{
		LeaseTTL: 500 * time.Millisecond, Retries: 5,
	})
	o2.Coordinator, o2.Token = url2, "test-token"
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		// Wait until the campaign has leased work, then kill worker 0.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			for _, st := range co.List() {
				if st.Leased > 0 || st.Done > 0 {
					cancels[0]()
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	chaos := renderFig2(t, o2)
	<-killed
	if chaos != local {
		t.Errorf("worker-loss report differs from local:\n--- local ---\n%s--- chaos ---\n%s", local, chaos)
	}
}

// TestRemoteSweepSurvivesByzantineWorkerAndChaos is the untrusted-fleet
// acceptance test at the paper-artifact level: two honest workers and one
// always-tampering byzantine worker, all talking through a seeded lossy
// network, still render the exact local Fig2 bytes, and the byzantine
// worker ends quarantined.
func TestRemoteSweepSurvivesByzantineWorkerAndChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations across a hostile fleet")
	}

	local := renderFig2(t, fabricOpts())

	co, url, _ := startFabric(t, 0, fabric.CoordinatorConfig{
		LeaseTTL: 2 * time.Second, Retries: 8,
	})
	lossy, ok := chaos.ByName("lossy")
	if !ok {
		t.Fatal("lossy profile missing")
	}
	proxy, err := chaos.NewProxy("127.0.0.1:0", url, lossy, 2026)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	worker := func(name string, tamper func(json.RawMessage) json.RawMessage) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			fabric.RunWorker(ctx, fabric.WorkerConfig{
				Coordinator: proxy.URL(), Token: "test-token", Name: name, Slots: 2,
				Poll: 10 * time.Millisecond, Run: RunSpec, Tamper: tamper,
			})
		}()
		t.Cleanup(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Errorf("worker %s failed to drain", name)
			}
		})
	}
	worker("honest-0", nil)
	worker("honest-1", nil)
	worker("byzantine", func(json.RawMessage) json.RawMessage {
		return json.RawMessage(`{"ipc":99.9,"EVIL":true}`)
	})

	o := fabricOpts()
	o.Coordinator, o.Token = url, "test-token"
	hostile := renderFig2(t, o)
	if hostile != local {
		t.Errorf("hostile-fleet report differs from local:\n--- local ---\n%s--- hostile ---\n%s", local, hostile)
	}
	for _, w := range co.Fleet() {
		if w.Name == "byzantine" && (w.Trust != "disabled" || w.Corrupt < 2) {
			t.Errorf("byzantine worker must end quarantined: %+v", w)
		}
	}
	t.Logf("injected faults: %s", chaos.FormatCounts(proxy.T.Counts()))
}

// RunSpec must honour cancellation (the worker drain path depends on the
// simulator stopping and returning an error at the next observer poll).
func TestRunSpecCancellation(t *testing.T) {
	o := fabricOpts()
	spec := o.jobSpecs("cancel", []string{"base"}, o.Benchmarks[:1], []config.Config{core.Baseline()})[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSpec(ctx, spec, nil); err == nil {
		t.Fatal("cancelled RunSpec must return an error, not a truncated result")
	}
}

// RunSpec output must be exactly the journal-form cellResult JSON.
func TestRunSpecResultShape(t *testing.T) {
	o := fabricOpts()
	spec := o.jobSpecs("shape", []string{"base"}, o.Benchmarks[:1], []config.Config{core.Baseline()})[0]
	var beats int
	raw, err := RunSpec(context.Background(), spec, func(cy, co uint64) { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	var cell cellResult
	if err := json.Unmarshal(raw, &cell); err != nil {
		t.Fatal(err)
	}
	if cell.IPC <= 0 || cell.Stats.Committed < o.Insts {
		t.Fatalf("implausible cell result: %+v", cell)
	}
	if beats == 0 {
		t.Error("RunSpec never reported progress")
	}
}
