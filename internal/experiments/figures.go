package experiments

import (
	"fmt"
	"strings"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// Table1 renders the simulated machine's architectural parameters in the
// layout of the paper's Table 1.
func Table1() string {
	c := core.Baseline()
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-24s %s\n", k, v) }
	row("Pipeline Depth", fmt.Sprintf("%d stages (front end %d)", 2*c.FrontEndDepth, c.FrontEndDepth))
	row("Fetch Bandwidth", fmt.Sprintf("%d total instructions from %d cachelines", c.FetchWidth, c.FetchBlocks))
	row("Branch Predictor", fmt.Sprintf("2bcgskew: %dK meta and gshare, %dK bimodal",
		c.Branch.MetaEntries>>10, c.Branch.BimodalEntries>>10))
	row("Stride Prefetcher", fmt.Sprintf("PC based, %d entries, %d stream buffers",
		c.Prefetch.Entries, c.Prefetch.StreamBuffers))
	row("ROB Size", fmt.Sprintf("%d entries", c.ROBSize))
	row("Rename Registers", fmt.Sprintf("%d", c.RenameRegs))
	row("Queue Sizes", fmt.Sprintf("%d entries each IQ, FQ, MQ", c.IQSize))
	row("Issue Bandwidth", fmt.Sprintf("%d per cycle: up to %d int, %d FP, %d load/store",
		c.IssueWidth, c.IntIssue, c.FPIssue, c.MemIssue))
	row("ICache", fmt.Sprintf("%dKB %d-way, %d cycles", c.ICache.SizeBytes>>10, c.ICache.Assoc, c.ICache.Latency))
	row("L1 DCache", fmt.Sprintf("%dKB %d-way, %d cycles", c.DL1.SizeBytes>>10, c.DL1.Assoc, c.DL1.Latency))
	row("L2 Cache", fmt.Sprintf("%dKB %d-way, %d cycles", c.L2.SizeBytes>>10, c.L2.Assoc, c.L2.Latency))
	row("L3 Cache", fmt.Sprintf("%dMB %d-way, %d cycles", c.L3.SizeBytes>>20, c.L3.Assoc, c.L3.Latency))
	row("Main Memory Latency", fmt.Sprintf("%d cycles", c.MemLatency))
	return b.String()
}

// Fig1 regenerates Figure 1: oracle value prediction, ILP-pred selection,
// STVP vs MTVP with 2, 4, and 8 contexts, 1-cycle spawn, unbounded store
// buffer — percent change in useful IPC over the no-VP baseline.
func Fig1(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.STVPOracleLimit(),
		core.MTVPOracleLimit(2),
		core.MTVPOracleLimit(4),
		core.MTVPOracleLimit(8),
	}
	cols := []string{"stvp", "mtvp2", "mtvp4", "mtvp8"}
	benches := o.benches()
	ipc, err := o.sweep("fig1", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	return speedupTables("Figure 1: oracle value prediction (ILP-pred)", cols, benches, ipc), nil
}

// Fig2 regenerates Figure 2: the Figure 1 machines swept over thread spawn
// latencies of 1, 8, and 16 cycles, reported as suite averages.
func Fig2(o Options) ([]*stats.Table, error) {
	var out []*stats.Table
	for _, lat := range []int{1, 8, 16} {
		mk := func(contexts int) config.Config {
			c := core.MTVPOracleLimit(contexts)
			c.VP.SpawnLatency = lat
			return c
		}
		machines := []config.Config{core.STVPOracleLimit(), mk(2), mk(4), mk(8)}
		benches := o.benches()
		cols := []string{"stvp", "mtvp2", "mtvp4", "mtvp8"}
		ipc, err := o.sweep(fmt.Sprintf("fig2-lat%d", lat), cols, benches, machines)
		if err != nil {
			return nil, err
		}
		per := speedupTables("", cols, benches, ipc)
		avg := averagesOnly(fmt.Sprintf("Figure 2: spawn latency %d cycles", lat), cols, per)
		out = append(out, avg)
	}
	return out, nil
}

// StoreBufferSweep regenerates the §5.3 result: MTVP4 with the realistic
// predictor, varying the per-context store buffer size. Performance should
// tail off at 64 entries and below, with 128 close to unbounded.
func StoreBufferSweep(o Options) (*stats.Table, error) {
	sizes := []int{16, 32, 64, 128, 256, 512, 0}
	var machines []config.Config
	var cols []string
	for _, s := range sizes {
		c := core.MTVP(4, config.PredWangFranklin, config.SelILPPred)
		c.VP.StoreBufEntries = s
		machines = append(machines, c)
		if s == 0 {
			cols = append(cols, "unbounded")
		} else {
			cols = append(cols, fmt.Sprintf("sb%d", s))
		}
	}
	// Include a kernel where the buffer genuinely binds — a long resident
	// stretch (many stores) between predictable long-latency loads — in
	// addition to the regular suite, whose high spawn density keeps
	// per-thread store counts low.
	benches := append(o.benches(), workload.Blocked("resident+miss", workload.INT,
		workload.BlockedParams{
			WorkingSet: 16 << 10, MulChain: 1,
			SideTableLen: 1 << 20, SideEvery: 96, SideDominant: 96,
			Iters: 1 << 20,
		}))
	ipc, err := o.sweep("sb", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	return averagesOnly("Section 5.3: store buffer size sweep (mtvp4, Wang-Franklin)", cols, per), nil
}

// Fig3 regenerates Figure 3: the realistic Wang–Franklin hybrid predictor,
// 8-cycle spawn, 128-entry store buffers.
func Fig3(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.STVP(config.PredWangFranklin, config.SelILPPred),
		core.MTVP(2, config.PredWangFranklin, config.SelILPPred),
		core.MTVP(4, config.PredWangFranklin, config.SelILPPred),
		core.MTVP(8, config.PredWangFranklin, config.SelILPPred),
	}
	cols := []string{"stvp", "mtvp2", "mtvp4", "mtvp8"}
	benches := o.benches()
	ipc, err := o.sweep("fig3", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	return speedupTables("Figure 3: Wang-Franklin hybrid predictor", cols, benches, ipc), nil
}

// DFCMCompare regenerates the §5.4 text result: the order-3 DFCM predictor
// against Wang–Franklin, both under STVP and MTVP4.
func DFCMCompare(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.STVP(config.PredWangFranklin, config.SelILPPred),
		core.STVP(config.PredDFCM, config.SelILPPred),
		core.MTVP(4, config.PredWangFranklin, config.SelILPPred),
		core.MTVP(4, config.PredDFCM, config.SelILPPred),
	}
	cols := []string{"stvp-wf", "stvp-dfcm", "mtvp4-wf", "mtvp4-dfcm"}
	benches := o.benches()
	ipc, err := o.sweep("dfcm", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	return []*stats.Table{averagesOnly("Section 5.4: DFCM-3 vs Wang-Franklin", cols, per)}, nil
}

// Fig4 regenerates Figure 4: allowing the parent thread to keep fetching
// after a spawn (ICOUNT arbitration) against the single-fetch-path default.
func Fig4(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.STVP(config.PredWangFranklin, config.SelILPPred),
		core.MTVP(4, config.PredWangFranklin, config.SelILPPred),
		core.MTVPNoStall(4, config.PredWangFranklin, config.SelILPPred),
		core.MTVP(8, config.PredWangFranklin, config.SelILPPred),
		core.MTVPNoStall(8, config.PredWangFranklin, config.SelILPPred),
	}
	cols := []string{"stvp", "mtvp4-sfp", "mtvp4-nostall", "mtvp8-sfp", "mtvp8-nostall"}
	benches := o.benches()
	ipc, err := o.sweep("fig4", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	return speedupTables("Figure 4: fetch policy (single fetch path vs no-stall)", cols, benches, ipc), nil
}

// Fig5 regenerates Figure 5: of the followed predictions that were wrong,
// the fraction of all followed predictions for which the correct value was
// nonetheless in the predictor and over threshold.
func Fig5(o Options) ([]*stats.Table, error) {
	cfg := core.MTVP(8, config.PredWangFranklin, config.SelILPPred)
	var tables []*stats.Table
	for _, suite := range []workload.Suite{workload.INT, workload.FP} {
		t := &stats.Table{
			Title:   fmt.Sprintf("Figure 5: wrong primary, correct value present and over threshold — %s", suite),
			Columns: []string{"fraction"},
		}
		for _, b := range o.benches() {
			if b.Suite != suite {
				continue
			}
			st, err := o.run(b, "mtvp8-wf", cfg)
			if err != nil {
				return nil, err
			}
			frac := 0.0
			if st.VPPredicted > 0 {
				frac = float64(st.VPWrongButPresent) / float64(st.VPPredicted)
			}
			t.Add(b.Name, frac)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// MultiValue regenerates the §5.6 result: multiple-value MTVP with a more
// liberal alternate threshold and the L3-miss-oracle criticality predictor,
// against the best single-value configuration.
func MultiValue(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.MTVP(8, config.PredWangFranklin, config.SelILPPred), // best single-value
		core.MTVPMultiValue(8, 2, 6),
		core.MTVPMultiValue(8, 3, 4),
	}
	cols := []string{"mtvp8-1val", "mv-2val", "mv-3val"}
	benches := o.benches()
	ipc, err := o.sweep("multival", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	return speedupTables("Section 5.6: multiple-value MTVP", cols, benches, ipc), nil
}

// Fig6 regenerates Figure 6: the idealized wide-window (checkpoint) machine
// with an 8K ROB and unlimited rename registers, the best MTVP machine, and
// the spawn-only (split-window, no value prediction) machine.
func Fig6(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.WideWindow(),
		core.MTVP(8, config.PredWangFranklin, config.SelILPPred),
		core.SpawnOnly(8),
	}
	cols := []string{"wide-window", "best-mtvp", "spawn-only"}
	benches := o.benches()
	ipc, err := o.sweep("fig6", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	avg := averagesOnly("Figure 6: wide window vs MTVP vs spawn-only", cols, per)
	return append(per, avg), nil
}

// PrefetchAblation runs the design-choice ablation DESIGN.md calls out: the
// paper notes MTVP gains are larger and more consistent without the stride
// prefetcher; this measures both machines with it disabled.
func PrefetchAblation(o Options) ([]*stats.Table, error) {
	noPref := func(c config.Config) config.Config {
		c.Prefetch.Enabled = false
		return c
	}
	base := noPref(core.Baseline())
	machines := []config.Config{
		noPref(core.STVP(config.PredWangFranklin, config.SelILPPred)),
		noPref(core.MTVP(8, config.PredWangFranklin, config.SelILPPred)),
	}
	cols := []string{"stvp", "mtvp8"}
	benches := o.benches()
	ipc, err := o.sweepAgainst("prefetch", cols, base, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	return []*stats.Table{averagesOnly("Ablation: prefetcher disabled", cols, per)}, nil
}

// StoreBufferOrg compares the two §3.2/§3.3 store-buffer organisations:
// a private 128-entry buffer per context versus a single unified tagged
// buffer (512 entries shared), plus an undersized unified buffer to show
// where sharing binds.
func StoreBufferOrg(o Options) ([]*stats.Table, error) {
	machines := []config.Config{
		core.MTVP(8, config.PredWangFranklin, config.SelILPPred), // private 128
		core.MTVPUnifiedSB(8, 512),
		core.MTVPUnifiedSB(8, 128),
	}
	cols := []string{"private-128", "unified-512", "unified-128"}
	benches := o.benches()
	ipc, err := o.sweep("sborg", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	return []*stats.Table{averagesOnly("Ablation: store buffer organisation (mtvp8, Wang-Franklin)", cols, per)}, nil
}

// SelectorCompare runs the §5.1 selector comparison: ILP-pred against the
// L3-miss oracle and an unconditional selector, under MTVP8 oracle.
func SelectorCompare(o Options) ([]*stats.Table, error) {
	mk := func(sel config.SelectorKind) config.Config {
		c := core.MTVPOracleLimit(8)
		c.VP.Selector = sel
		return c
	}
	machines := []config.Config{
		mk(config.SelILPPred),
		mk(config.SelL3Oracle),
		mk(config.SelAlways),
	}
	cols := []string{"ilp-pred", "l3-oracle", "always"}
	benches := o.benches()
	ipc, err := o.sweep("selector", cols, benches, machines)
	if err != nil {
		return nil, err
	}
	per := speedupTables("", cols, benches, ipc)
	return []*stats.Table{averagesOnly("Ablation: criticality selector (mtvp8, oracle values)", cols, per)}, nil
}
