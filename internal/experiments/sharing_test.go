package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mtvp/internal/config"
	"mtvp/internal/core"
)

// sharingGoldenSweep runs one small oracle-checked campaign per (new
// predictor × sharing mode) and returns the IPC matrix. Check=true makes
// every cell a differential run: any oracle divergence fails the sweep.
func sharingGoldenSweep(t *testing.T, o Options) [][]float64 {
	t.Helper()
	var cols []string
	var machines []config.Config
	for _, p := range []config.PredictorKind{config.PredVPQStride, config.PredEqualityLCV} {
		for _, m := range sharingModes {
			cfg := core.MTVPSharing(4, p, m)
			cfg.Check = true
			cols = append(cols, fmt.Sprintf("%s-%s", p, sharingModeTag(m)))
			machines = append(machines, cfg)
		}
	}
	base := core.Baseline()
	base.Check = true
	ipc, err := o.sweepAgainst("sharinggold", cols, base, o.benches(), machines)
	if err != nil {
		t.Fatal(err)
	}
	return ipc
}

// TestSharingStudyGolden pins the new predictor × sharing-mode campaign:
// every cell runs under the lockstep oracle checker, and the resulting IPC
// matrix must be bit-identical across harness parallelism and with the
// idle-cycle fast-forward disabled (MTVP_NO_FASTFWD=1) — the sharing axis
// must not introduce placement- or optimisation-dependent behaviour.
func TestSharingStudyGolden(t *testing.T) {
	o := tinyOpts()

	o.Parallel = 1
	serial := sharingGoldenSweep(t, o)
	o.Parallel = 8
	parallel := sharingGoldenSweep(t, o)
	t.Setenv("MTVP_NO_FASTFWD", "1")
	noFF := sharingGoldenSweep(t, o)

	for bi := range serial {
		for ci := range serial[bi] {
			if parallel[bi][ci] != serial[bi][ci] {
				t.Errorf("cell [%d][%d]: parallelism changed IPC %v -> %v",
					bi, ci, serial[bi][ci], parallel[bi][ci])
			}
			if noFF[bi][ci] != serial[bi][ci] {
				t.Errorf("cell [%d][%d]: disabling fast-forward changed IPC %v -> %v",
					bi, ci, serial[bi][ci], noFF[bi][ci])
			}
		}
	}
}

// TestSharingStudyTables smoke-runs the full published study at tiny scale
// and checks its table contract: one speedup table per zoo predictor (six
// organisation columns each) plus the interference table, whose shared-mode
// rows must actually record cross-context traffic.
func TestSharingStudyTables(t *testing.T) {
	tables, err := SharingStudy(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sharingPreds) + 1; len(tables) != want {
		t.Fatalf("%d tables, want %d (one per predictor + interference)", len(tables), want)
	}
	for _, tab := range tables[:len(sharingPreds)] {
		if len(tab.Columns) != len(sharingModes)*len(sharingCtxs) {
			t.Errorf("%q: %d columns, want %d", tab.Title, len(tab.Columns),
				len(sharingModes)*len(sharingCtxs))
		}
	}
	interf := tables[len(tables)-1]
	if !strings.Contains(interf.Title, "interference") {
		t.Fatalf("last table is %q, want the interference table", interf.Title)
	}
	var cross float64
	for _, r := range interf.Rows {
		if len(r.Values) == 0 {
			t.Fatalf("%q: row %s has no values", interf.Title, r.Name)
		}
		cross += r.Values[0]
	}
	if cross == 0 {
		t.Error("shared-table cells recorded zero cross-context lookups")
	}
}
