// Remote execution: the experiments package speaks both sides of the sweep
// fabric. sweepRemote (wired into every sweep via Options.Coordinator)
// converts a campaign into wire-form fabric job specs and waits on the
// coordinator; RunSpec is the worker side, turning one leased spec back
// into a simulation. Cells carry their fully-resolved machine configs over
// the wire, so a worker never re-derives presets and a version-skewed
// worker cannot silently change what a job key means.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fabric"
	"mtvp/internal/harness"
	"mtvp/internal/workload"
)

// RunSpec executes one fabric job spec on this machine and returns the
// cell's journal-form result (the same cellResult JSON a local campaign
// writes). It is the RunFunc a worker agent (cmd/mtvpd work) runs leases
// with. progress receives the simulation's current cycle/commit counters
// from the engine's observer poll; ctx cancellation stops the run at the
// next poll.
func RunSpec(ctx context.Context, spec fabric.JobSpec, progress func(cycles, commits uint64)) (json.RawMessage, error) {
	b, err := workload.ByName(spec.Bench)
	if err != nil {
		return nil, fmt.Errorf("%s: unknown benchmark: %w", spec.Key, err)
	}
	prog, image := b.Build(spec.Seed)
	cfg := spec.Config
	cfg.Observe = func(cycles, commits uint64) bool {
		if progress != nil {
			progress(cycles, commits)
		}
		return ctx.Err() == nil
	}
	res, err := core.Run(cfg, prog, image)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", spec.Bench, spec.Preset, err)
	}
	return json.Marshal(cellResult{IPC: res.Stats.UsefulIPC(), Stats: res.Stats})
}

// jobSpecs converts a sweep's cells into wire form: stable keys, workload
// coordinates, and the fully-resolved machine config per cell.
func (o Options) jobSpecs(name string, labels []string, benches []workload.Benchmark, cfgs []config.Config) []fabric.JobSpec {
	specs := make([]fabric.JobSpec, 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for mi, cfg := range cfgs {
			specs = append(specs, fabric.JobSpec{
				Key:    fmt.Sprintf("%s/%s/%s", name, b.Name, labels[mi]),
				Bench:  b.Name,
				Preset: labels[mi],
				Seed:   o.Seed,
				Config: o.apply(cfg),
			})
		}
	}
	return specs
}

// sweepRemote runs one sweep through the fabric coordinator instead of the
// local worker pool: submit the cells (idempotently — a resubmission after
// a client restart attaches to the in-flight campaign), wait for the
// fleet, and assemble the matrix in job-key order exactly as the local
// path does. The report bytes are identical either way.
func (o Options) sweepRemote(ctx context.Context, name string, labels []string, benches []workload.Benchmark, cfgs []config.Config) ([][]float64, error) {
	specs := o.jobSpecs(name, labels, benches, cfgs)
	hc := o.harnessConfig(name)
	cl := fabric.NewClient(o.Coordinator, o.Token)
	start := time.Now()

	sub, err := cl.Submit(ctx, fabric.CampaignSpec{
		Name:        name,
		Fingerprint: hc.Fingerprint,
		Jobs:        specs,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: submit to %s: %w", name, o.Coordinator, err)
	}
	if sub.Attached {
		o.event(harness.Event{Kind: harness.EventWarn, Key: name,
			Err: fmt.Sprintf("attached to in-flight campaign %s (resuming, not restarting)", sub.ID)})
	}

	// Track the final counters for the campaign summary.
	var final fabric.CampaignStatus
	res, err := cl.Wait(ctx, sub.ID, func(st fabric.CampaignStatus) { final = st })
	if err != nil {
		return nil, fmt.Errorf("%s: campaign %s: %w", name, sub.ID, err)
	}
	if res.State == fabric.StateCancelled {
		return nil, fmt.Errorf("%s: campaign %s was cancelled on the coordinator", name, sub.ID)
	}

	// Fold the remote campaign into the run summary and decode the cells.
	sum := &harness.Summary{Name: name, Total: len(specs), Wall: time.Since(start)}
	results := make(map[string]cellResult, len(res.Results))
	for key, raw := range res.Results {
		var cell cellResult
		if err := json.Unmarshal(raw, &cell); err != nil {
			return nil, fmt.Errorf("%s: cell %s: undecodable result: %w", name, key, err)
		}
		results[key] = cell
		sum.Completed++
		sum.SimCycles += cell.Stats.Cycles
		sum.SimInsts += cell.Stats.Committed
	}
	sum.Failed = len(res.Failures)
	sum.Failures = append(sum.Failures, res.Failures...)
	// Best-effort straggler verdict for the summary: ask the coordinator
	// for the campaign's timeline analytics and name the slowest worker.
	// An old coordinator without the endpoint just means no note.
	if tl, err := cl.Timeline(ctx, sub.ID, 3); err == nil {
		if slow := tl.Report.Slowest(); slow != "" && len(tl.Report.Workers) > 1 {
			for _, w := range tl.Report.Workers {
				if w.Name != slow {
					continue
				}
				sum.Notes = append(sum.Notes, fmt.Sprintf(
					"%s: slowest worker %q — %.2fx fleet mean (p99 %.0f ms over %d cells); `mtvpd tail %s` for the breakdown",
					name, w.Name, w.Slowdown, w.P99MS, w.Cells, sub.ID))
			}
		}
	}
	// Every requeue (lost worker, reported failure, voluntary release) is
	// one attempt beyond a cell's first.
	sum.Attempts = sum.Completed + sum.Failed + final.Requeues
	sum.Retries = final.Requeues
	o.mergeSummary(sum)
	if len(res.Failures) > 0 {
		return nil, &harness.FailedError{Failures: res.Failures}
	}

	// Assemble in job-key order (the specs slice), never completion order.
	ipc := make([][]float64, len(benches))
	idx := 0
	for bi := range benches {
		ipc[bi] = make([]float64, len(cfgs))
		for mi := range cfgs {
			cell, ok := results[specs[idx].Key]
			if !ok {
				return nil, fmt.Errorf("%s: coordinator returned no result for %s", name, specs[idx].Key)
			}
			ipc[bi][mi] = cell.IPC
			idx++
		}
	}
	return ipc, nil
}

// event forwards a harness event to the configured sink.
func (o Options) event(ev harness.Event) {
	if o.OnEvent != nil {
		o.OnEvent(ev)
	}
}
