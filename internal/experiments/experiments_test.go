package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"mtvp/internal/harness"
	"mtvp/internal/stats"

	"mtvp/internal/workload"
)

// tinyOpts runs experiments on two small custom kernels with a short budget
// so the whole harness is exercised quickly.
func tinyOpts() Options {
	o := DefaultOptions()
	o.Insts = 4000
	o.Benchmarks = []workload.Benchmark{
		workload.PointerChase("x-int", workload.INT, workload.ChaseParams{
			Nodes: 1024, NodeBytes: 64, PoolSize: 4,
			DominantPct: 92, ReusePct: 5, SeqPct: 85, BodyOps: 24, Iters: 1 << 20,
		}),
		workload.Gather("x-fp", workload.FP, workload.GatherParams{
			Items: 4096, TableLen: 1 << 14, PoolSize: 4,
			DominantPct: 90, ReusePct: 5, FPData: true, BodyOps: 24, Iters: 1 << 20,
		}),
	}
	return o
}

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"30 stages", "16 total instructions from 2 cachelines",
		"2bcgskew: 64K meta and gshare, 16K bimodal",
		"256 entries", "1000 cycles", "4MB 16-way",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func checkTables(t *testing.T, tables []*stats.Table, wantCols int) {
	t.Helper()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	for _, tab := range tables {
		if len(tab.Columns) != wantCols {
			t.Errorf("%q: %d columns, want %d", tab.Title, len(tab.Columns), wantCols)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%q: no rows", tab.Title)
		}
		for _, r := range tab.Rows {
			if len(r.Values) != len(tab.Columns) {
				t.Errorf("%q/%s: %d values for %d columns",
					tab.Title, r.Name, len(r.Values), len(tab.Columns))
			}
		}
	}
}

func TestFig1(t *testing.T) {
	tables, err := Fig1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 4)
	if len(tables) != 2 {
		t.Errorf("%d suite tables, want 2 (INT, FP)", len(tables))
	}
}

func TestFig3(t *testing.T) {
	tables, err := Fig3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 4)
}

func TestFig2(t *testing.T) {
	tables, err := Fig2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d latency tables, want 3", len(tables))
	}
	checkTables(t, tables, 4)
}

func TestStoreBufferSweep(t *testing.T) {
	tab, err := StoreBufferSweep(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 7 {
		t.Errorf("%d sizes, want 7", len(tab.Columns))
	}
}

func TestFig4(t *testing.T) {
	tables, err := Fig4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 5)
}

func TestFig5(t *testing.T) {
	tables, err := Fig5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		for _, r := range tab.Rows {
			if r.Values[0] < 0 || r.Values[0] > 1 {
				t.Errorf("fraction %v out of range", r.Values[0])
			}
		}
	}
}

func TestFig6(t *testing.T) {
	tables, err := Fig6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
}

func TestMultiValue(t *testing.T) {
	tables, err := MultiValue(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 3)
}

func TestDFCMCompare(t *testing.T) {
	tables, err := DFCMCompare(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkTables(t, tables, 4)
}

func TestAblations(t *testing.T) {
	if tables, err := PrefetchAblation(tinyOpts()); err != nil || len(tables) == 0 {
		t.Errorf("prefetch ablation: %v", err)
	}
	if tables, err := SelectorCompare(tinyOpts()); err != nil || len(tables) == 0 {
		t.Errorf("selector compare: %v", err)
	}
}

func TestSweepParallelDeterminism(t *testing.T) {
	// The parallel sweep must give identical results regardless of worker
	// count (runs are independent; placement must not matter).
	o := tinyOpts()
	o.Parallel = 1
	t1, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = 8
	t8, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		for j, r := range t1[i].Rows {
			for k, v := range r.Values {
				if t8[i].Rows[j].Values[k] != v {
					t.Fatalf("parallelism changed results: %v vs %v",
						v, t8[i].Rows[j].Values[k])
				}
			}
		}
	}
}

// normalizeReport strips the trailing wall-time footer, the only line of a
// report allowed to differ between two runs of the same experiments.
func normalizeReport(t *testing.T, s string) string {
	t.Helper()
	i := strings.LastIndex(s, "---\nGenerated in ")
	if i < 0 {
		t.Fatalf("report missing its footer:\n%s", s)
	}
	return s[:i]
}

func TestReportByteIdenticalAcrossParallelRuns(t *testing.T) {
	// Two parallel runs of the full report must be byte-identical: rows are
	// assembled in job-key order, never completion order.
	o := tinyOpts()
	o.Parallel = 8
	var a, b strings.Builder
	if err := GenerateReport(o, &a); err != nil {
		t.Fatal(err)
	}
	if err := GenerateReport(o, &b); err != nil {
		t.Fatal(err)
	}
	ra, rb := normalizeReport(t, a.String()), normalizeReport(t, b.String())
	if ra != rb {
		t.Errorf("two parallel report runs differ:\n--- first\n%s\n--- second\n%s", ra, rb)
	}
}

func TestSweepJournalAndResume(t *testing.T) {
	// A journaled sweep resumed from its own journal skips every cell and
	// reproduces the identical tables.
	journal := filepath.Join(t.TempDir(), "fig3.jsonl")
	o := tinyOpts()
	o.Journal = journal
	o.Summary = &harness.Summary{}
	t1, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	ran := o.Summary.Completed

	o.Resume = true
	o.Summary = &harness.Summary{}
	t2, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if o.Summary.Skipped != ran || o.Summary.Completed != 0 {
		t.Errorf("resume re-ran cells: first run completed %d, resume skipped %d / completed %d",
			ran, o.Summary.Skipped, o.Summary.Completed)
	}
	for i := range t1 {
		if t1[i].String() != t2[i].String() {
			t.Errorf("resumed table %d differs:\n--- fresh\n%s\n--- resumed\n%s",
				i, t1[i], t2[i])
		}
	}

	// A journal written at different options must be refused, not mixed in.
	o.Insts = o.Insts * 2
	if _, err := Fig3(o); err == nil {
		t.Error("resume accepted a journal written at different options")
	}
}

func TestGenerateReportTiny(t *testing.T) {
	var buf strings.Builder
	if err := GenerateReport(tinyOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"## Figure 1", "## Figure 2", "## Section 5.3", "## Figure 3",
		"## Section 5.4", "## Figure 4", "## Figure 5", "## Section 5.6",
		"## Figure 6", "## Ablations", "Verdict:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
