package experiments

import (
	"errors"
	"fmt"
	"sync"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fault"
	"mtvp/internal/oracle"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// campaignBenches picks a small, representative workload pair for the fault
// campaign: one pointer-chasing INT program (the MTVP sweet spot, so the
// speculation machinery is actually exercised) and one FP stream program.
// Checked runs are ~2x slower than bare ones, so the campaign does not sweep
// the full suite.
func campaignBenches(o Options) []workload.Benchmark {
	if o.Benchmarks != nil {
		return o.Benchmarks
	}
	var out []workload.Benchmark
	for _, name := range []string{"mcf", "swim"} {
		if b, err := workload.ByName(name); err == nil {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = workload.All()[:1]
	}
	return out
}

// campaignMachines are the machines every fault profile is thrown at: the
// degradation ladder's three rungs, so profiles are validated against the
// configuration they degrade *to* as well as the one they start from.
func campaignMachines(contexts int) []struct {
	name string
	cfg  config.Config
} {
	return []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", core.Baseline()},
		{"stvp", core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"mtvp", core.MTVP(contexts, config.PredWangFranklin, config.SelILPPred)},
	}
}

// campaignOutcome is the aggregate of one profile row across all of its
// checked runs.
type campaignOutcome struct {
	injected uint64
	breaks   uint64
	unsticks uint64
	degrade  uint64
	restore  uint64
	qclamp   uint64
	qdisable uint64
	clean    int
	aborts   int
}

// FaultCampaign runs every built-in fault profile against the baseline,
// STVP, and MTVP machines with the lockstep oracle checker armed, and
// reports the robustness contract's observables: faults injected, recovery
// interventions (deadlock breaks, queue unsticks, degradations,
// restorations, quarantine actions), and whether each run finished
// oracle-clean or aborted with a structured fault report. Any other outcome
// — a divergence (wrong committed value), a hang (the driver's go test
// -timeout guards that), or an unstructured error — fails the campaign.
func FaultCampaign(o Options) ([]*stats.Table, error) {
	profiles := fault.Profiles()
	benches := campaignBenches(o)
	machines := campaignMachines(4)

	type cell struct {
		profile, machine, bench int
	}
	type result struct {
		st    *stats.Stats
		abort *fault.Report
		err   error
	}
	results := make(map[cell]result)
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan cell)
	workers := o.Parallel
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				cfg := o.apply(machines[c.machine].cfg)
				cfg = core.WithFaults(cfg, profiles[c.profile].Name, o.FaultSeed+uint64(c.bench)+1)
				cfg = core.Hardened(cfg)
				cfg.Check = true
				b := benches[c.bench]
				prog, image := b.Build(o.Seed)
				res, err := core.Run(cfg, prog, image)
				r := result{err: err}
				var rep *fault.Report
				switch {
				case err == nil:
					r.st, r.err = &res.Stats, nil
				case errors.As(err, &rep):
					// Structured abort: the machine gave up cleanly. The
					// report carries the counters the run accumulated.
					r.abort, r.err = rep, nil
				case oracle.IsDivergence(err):
					r.err = fmt.Errorf("fault campaign: profile %s on %s/%s committed a wrong value: %w",
						profiles[c.profile].Name, machines[c.machine].name, b.Name, err)
				default:
					r.err = fmt.Errorf("fault campaign: profile %s on %s/%s: %w",
						profiles[c.profile].Name, machines[c.machine].name, b.Name, err)
				}
				mu.Lock()
				results[c] = r
				mu.Unlock()
			}
		}()
	}
	for pi := range profiles {
		for mi := range machines {
			for bi := range benches {
				jobs <- cell{pi, mi, bi}
			}
		}
	}
	close(jobs)
	wg.Wait()

	t := &stats.Table{
		Title: fmt.Sprintf("Fault campaign — %d profiles x {baseline, stvp, mtvp4} x %d benches, oracle-checked",
			len(profiles), len(benches)),
		Columns: []string{"injected", "breaks", "unstick", "degrade", "restore",
			"qclamp", "qdisable", "clean", "abort"},
	}
	for pi, p := range profiles {
		var agg campaignOutcome
		for mi := range machines {
			for bi := range benches {
				r := results[cell{pi, mi, bi}]
				if r.err != nil {
					return nil, r.err
				}
				if rep := r.abort; rep != nil {
					agg.aborts++
					for _, n := range rep.Injected {
						agg.injected += n
					}
					agg.breaks += rep.Breaks
					agg.degrade += rep.Degradations
					continue
				}
				agg.clean++
				s := r.st
				agg.injected += s.FaultsInjected
				agg.breaks += s.DeadlockBreaks
				agg.unsticks += s.RecoveryUnsticks
				agg.degrade += s.Degradations
				agg.restore += s.Restorations
				agg.qclamp += s.QuarantineClamps
				agg.qdisable += s.QuarantineDisables
			}
		}
		t.Add(p.Name,
			float64(agg.injected), float64(agg.breaks), float64(agg.unsticks),
			float64(agg.degrade), float64(agg.restore),
			float64(agg.qclamp), float64(agg.qdisable),
			float64(agg.clean), float64(agg.aborts))
	}
	return []*stats.Table{t}, nil
}
