package experiments

import (
	"context"
	"errors"
	"fmt"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/fault"
	"mtvp/internal/harness"
	"mtvp/internal/oracle"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// campaignBenches picks a small, representative workload pair for the fault
// campaign: one pointer-chasing INT program (the MTVP sweet spot, so the
// speculation machinery is actually exercised) and one FP stream program.
// Checked runs are ~2x slower than bare ones, so the campaign does not sweep
// the full suite.
func campaignBenches(o Options) []workload.Benchmark {
	if o.Benchmarks != nil {
		return o.Benchmarks
	}
	var out []workload.Benchmark
	for _, name := range []string{"mcf", "swim"} {
		if b, err := workload.ByName(name); err == nil {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = workload.All()[:1]
	}
	return out
}

// campaignMachines are the machines every fault profile is thrown at: the
// degradation ladder's three rungs, so profiles are validated against the
// configuration they degrade *to* as well as the one they start from.
func campaignMachines(contexts int) []struct {
	name string
	cfg  config.Config
} {
	return []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", core.Baseline()},
		{"stvp", core.STVP(config.PredWangFranklin, config.SelILPPred)},
		{"mtvp", core.MTVP(contexts, config.PredWangFranklin, config.SelILPPred)},
	}
}

// campaignCell is one checked run's journaled outcome: either finished
// oracle-clean with the recovery counters it accumulated, or aborted with a
// structured fault report (whose counters are carried over).
type campaignCell struct {
	Abort    bool   `json:"abort"`
	Injected uint64 `json:"injected"`
	Breaks   uint64 `json:"breaks"`
	Unsticks uint64 `json:"unsticks"`
	Degrade  uint64 `json:"degrade"`
	Restore  uint64 `json:"restore"`
	Qclamp   uint64 `json:"qclamp"`
	Qdisable uint64 `json:"qdisable"`
	// Stats is the clean run's full statistics snapshot (zero on aborts;
	// journals written before this field existed unmarshal it as zero too).
	Stats stats.Stats `json:"stats,omitempty"`
}

// campaignOutcome is the aggregate of one profile row across all of its
// checked runs.
type campaignOutcome struct {
	injected uint64
	breaks   uint64
	unsticks uint64
	degrade  uint64
	restore  uint64
	qclamp   uint64
	qdisable uint64
	clean    int
	aborts   int
}

func (a *campaignOutcome) add(c campaignCell) {
	a.injected += c.Injected
	a.breaks += c.Breaks
	a.unsticks += c.Unsticks
	a.degrade += c.Degrade
	a.restore += c.Restore
	a.qclamp += c.Qclamp
	a.qdisable += c.Qdisable
	if c.Abort {
		a.aborts++
	} else {
		a.clean++
	}
}

// FaultCampaign runs every built-in fault profile against the baseline,
// STVP, and MTVP machines with the lockstep oracle checker armed, as one
// supervised harness campaign, and reports the robustness contract's
// observables: faults injected, recovery interventions (deadlock breaks,
// queue unsticks, degradations, restorations, quarantine actions), and
// whether each run finished oracle-clean or aborted with a structured fault
// report. Any other outcome — a divergence (wrong committed value), a hang
// (the harness deadline and stall watchdog guard those), or an unstructured
// error — fails its cell; divergences are marked permanent so the harness
// does not waste retries reproducing a deterministic wrong value.
func FaultCampaign(o Options) ([]*stats.Table, error) {
	profiles := fault.Profiles()
	benches := campaignBenches(o)
	machines := campaignMachines(4)

	var jobs []harness.Job[campaignCell]
	for _, p := range profiles {
		for _, m := range machines {
			for bi, b := range benches {
				p, m, b, bi := p, m, b, bi
				jobs = append(jobs, harness.Job[campaignCell]{
					Key:  fmt.Sprintf("robust/%s/%s/%s", p.Name, m.name, b.Name),
					Seed: o.FaultSeed + uint64(bi) + 1,
					Run: func(ctx context.Context, hb *harness.Heartbeat) (campaignCell, error) {
						cfg := o.apply(m.cfg)
						cfg = core.WithFaults(cfg, p.Name, o.FaultSeed+uint64(bi)+1)
						cfg = core.Hardened(cfg)
						cfg.Check = true
						cfg = o.supervised(ctx, hb, cfg)
						prog, image := b.Build(o.Seed)
						res, err := core.Run(cfg, prog, image)
						var rep *fault.Report
						switch {
						case err == nil:
							s := &res.Stats
							return campaignCell{
								Injected: s.FaultsInjected,
								Breaks:   s.DeadlockBreaks,
								Unsticks: s.RecoveryUnsticks,
								Degrade:  s.Degradations,
								Restore:  s.Restorations,
								Qclamp:   s.QuarantineClamps,
								Qdisable: s.QuarantineDisables,
								Stats:    *s,
							}, nil
						case errors.As(err, &rep):
							// Structured abort: the machine gave up cleanly.
							// The report carries the counters the run
							// accumulated.
							c := campaignCell{
								Abort:   true,
								Breaks:  rep.Breaks,
								Degrade: rep.Degradations,
							}
							for _, n := range rep.Injected {
								c.Injected += n
							}
							return c, nil
						case oracle.IsDivergence(err):
							// Deterministic: retrying reproduces it exactly.
							return campaignCell{}, harness.Permanent(fmt.Errorf(
								"fault campaign: profile %s on %s/%s committed a wrong value: %w",
								p.Name, m.name, b.Name, err))
						default:
							return campaignCell{}, fmt.Errorf("fault campaign: profile %s on %s/%s: %w",
								p.Name, m.name, b.Name, err)
						}
					},
				})
			}
		}
	}

	camp, err := harness.Run(context.Background(), o.harnessConfig("robust"), jobs)
	if camp != nil {
		for _, r := range camp.Results {
			camp.Summary.SimCycles += r.Stats.Cycles
			camp.Summary.SimInsts += r.Stats.Committed
		}
		o.mergeSummary(camp.Summary)
	}
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title: fmt.Sprintf("Fault campaign — %d profiles x {baseline, stvp, mtvp4} x %d benches, oracle-checked",
			len(profiles), len(benches)),
		Columns: []string{"injected", "breaks", "unstick", "degrade", "restore",
			"qclamp", "qdisable", "clean", "abort"},
	}
	// Rows aggregate per profile in job-key order, never completion order.
	for _, p := range profiles {
		var agg campaignOutcome
		for _, m := range machines {
			for _, b := range benches {
				agg.add(camp.Results[fmt.Sprintf("robust/%s/%s/%s", p.Name, m.name, b.Name)])
			}
		}
		t.Add(p.Name,
			float64(agg.injected), float64(agg.breaks), float64(agg.unsticks),
			float64(agg.degrade), float64(agg.restore),
			float64(agg.qclamp), float64(agg.qdisable),
			float64(agg.clean), float64(agg.aborts))
	}
	t.SortRows()
	return []*stats.Table{t}, nil
}
