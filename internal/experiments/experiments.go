// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–5). Each experiment builds the machine configurations it
// compares, runs every benchmark on each (in parallel), and returns
// formatted tables whose rows mirror the paper's: per-benchmark percent
// speedup in useful IPC over the no-value-prediction baseline, with
// geometric-mean average rows per suite.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// Options controls experiment scale. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	Insts    uint64 // useful committed instructions per run
	Seed     uint64
	Parallel int // concurrent simulations
	// Benchmarks to run; nil means the full SPEC stand-in suite.
	Benchmarks []workload.Benchmark
	// FaultProfile, when non-empty, arms the fault injector on every
	// simulated machine (see internal/fault for the built-in profiles).
	FaultProfile string
	FaultSeed    uint64
}

// DefaultOptions returns experiment options sized for a complete
// regeneration at moderate fidelity (~200k instructions per run, as a
// SimPoint-style steady-state sample).
func DefaultOptions() Options {
	return Options{
		Insts:    200_000,
		Seed:     1,
		Parallel: runtime.NumCPU(),
	}
}

func (o Options) benches() []workload.Benchmark {
	if o.Benchmarks != nil {
		return o.Benchmarks
	}
	return workload.All()
}

func (o Options) apply(cfg config.Config) config.Config {
	cfg.MaxInsts = o.Insts
	cfg.Seed = o.Seed
	if o.FaultProfile != "" {
		cfg = core.WithFaults(cfg, o.FaultProfile, o.FaultSeed)
	}
	return cfg
}

// run simulates one benchmark on one machine and returns the statistics.
func (o Options) run(b workload.Benchmark, cfg config.Config) (*stats.Stats, error) {
	prog, image := b.Build(o.Seed)
	res, err := core.Run(o.apply(cfg), prog, image)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return &res.Stats, nil
}

// job is one (benchmark, machine) simulation in a parallel sweep.
type job struct {
	bench   int
	machine int
}

// sweep runs every benchmark on the baseline plus each machine, returning
// IPCs indexed [bench][machine]; index 0 is the baseline.
func (o Options) sweep(benches []workload.Benchmark, machines []config.Config) ([][]float64, error) {
	return o.sweepAgainst(core.Baseline(), benches, machines)
}

// sweepAgainst is sweep with an explicit baseline machine (ablations that
// change the substrate, e.g. disabling the prefetcher, compare against a
// matching baseline).
func (o Options) sweepAgainst(base config.Config, benches []workload.Benchmark, machines []config.Config) ([][]float64, error) {
	cfgs := append([]config.Config{base}, machines...)
	ipc := make([][]float64, len(benches))
	for i := range ipc {
		ipc[i] = make([]float64, len(cfgs))
	}

	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	workers := o.Parallel
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				st, err := o.run(benches[j.bench], cfgs[j.machine])
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					ipc[j.bench][j.machine] = st.UsefulIPC()
				}
				mu.Unlock()
			}
		}()
	}
	for bi := range benches {
		for mi := range cfgs {
			jobs <- job{bench: bi, machine: mi}
		}
	}
	close(jobs)
	wg.Wait()
	return ipc, firstErr
}

// speedupTables converts a sweep into the paper's presentation: one table
// per suite, per-benchmark percent speedups over the baseline column, with
// a geometric-mean row.
func speedupTables(title string, columns []string, benches []workload.Benchmark, ipc [][]float64) []*stats.Table {
	var tables []*stats.Table
	for _, suite := range []workload.Suite{workload.INT, workload.FP} {
		t := &stats.Table{
			Title:   fmt.Sprintf("%s — %s", title, suite),
			Columns: columns,
		}
		for bi, b := range benches {
			if b.Suite != suite {
				continue
			}
			row := make([]float64, len(columns))
			for mi := range columns {
				row[mi] = stats.SpeedupPct(ipc[bi][0], ipc[bi][mi+1])
			}
			t.Add(b.Name, row...)
		}
		if len(t.Rows) == 0 {
			continue
		}
		t.AddGeoMean("average")
		tables = append(tables, t)
	}
	return tables
}

// averagesOnly reduces per-benchmark tables to their average rows (the
// presentation Figures 2 and 6 use).
func averagesOnly(title string, columns []string, tables []*stats.Table) *stats.Table {
	out := &stats.Table{Title: title, Columns: columns}
	for _, t := range tables {
		for _, r := range t.Rows {
			if r.Name == "average" {
				name := "AVG INT"
				if len(out.Rows) > 0 {
					name = "AVG FP"
				}
				out.Add(name, r.Values...)
			}
		}
	}
	return out
}
