// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–5). Each experiment builds the machine configurations it
// compares, runs every benchmark on each as a supervised parallel campaign
// (internal/harness), and returns formatted tables whose rows mirror the
// paper's: per-benchmark percent speedup in useful IPC over the
// no-value-prediction baseline, with geometric-mean average rows per suite.
//
// Sweep cells are harness jobs with stable keys ("fig1/mcf/mtvp4"), so a
// campaign survives panics, hangs, and flaky cells, can be checkpointed to a
// journal, and resumes after an interruption by re-running only what is
// missing. Tables are always assembled in job-key order, never completion
// order: two runs of the same sweep render byte-identical reports.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/harness"
	"mtvp/internal/stats"
	"mtvp/internal/workload"
)

// Options controls experiment scale and campaign supervision. The zero
// value is not usable; call DefaultOptions.
type Options struct {
	Insts    uint64 // useful committed instructions per run
	Seed     uint64
	Parallel int // concurrent simulations (harness worker pool)
	// Benchmarks to run; nil means the full SPEC stand-in suite.
	Benchmarks []workload.Benchmark
	// FaultProfile, when non-empty, arms the fault injector on every
	// simulated machine (see internal/fault for the built-in profiles).
	FaultProfile string
	FaultSeed    uint64

	// Campaign supervision (internal/harness).
	Timeout      time.Duration // per-cell wall-clock deadline (0 = none)
	StallTimeout time.Duration // cancel a cell whose simulated cycles stop advancing (0 = off)
	Retries      int           // re-runs per failed or timed-out cell
	Journal      string        // JSONL checkpoint path ("" = no checkpointing)
	Resume       bool          // skip journaled-done cells, re-run failures
	// HandleSignals installs the harness's graceful-shutdown handler
	// (SIGINT/SIGTERM drain workers and flush the journal) around every
	// sweep.
	HandleSignals bool
	// Coordinator, when non-empty, runs every sweep through the distributed
	// fabric (internal/fabric) at this base URL instead of the local worker
	// pool: cells are submitted as a campaign and executed by whatever
	// worker agents (mtvpd work) are attached to the coordinator. Reports
	// are byte-identical to local runs. Token authenticates the client.
	Coordinator string
	Token       string
	// Summary, when non-nil, accumulates every sweep's campaign counters
	// (completed/retried/failed/skipped cells, wall time) for reporting.
	Summary *harness.Summary
	// OnEvent, when non-nil, receives harness progress events (retries,
	// failures) for logging.
	OnEvent func(harness.Event)
	// Progress, when non-nil, receives per-job simulated-work deltas
	// (cycles, useful commits) from every supervised engine's observer
	// poll. Called from worker goroutines; implementations must be
	// goroutine-safe. Campaign telemetry (mtvpbench -metrics-addr) derives
	// live cycle rates from it.
	Progress func(dcycles, dcommits uint64)
}

// DefaultOptions returns experiment options sized for a complete
// regeneration at moderate fidelity (~200k instructions per run, as a
// SimPoint-style steady-state sample), with one retry per flaky cell.
func DefaultOptions() Options {
	return Options{
		Insts:    200_000,
		Seed:     1,
		Parallel: runtime.NumCPU(),
		Retries:  1,
	}
}

func (o Options) benches() []workload.Benchmark {
	if o.Benchmarks != nil {
		return o.Benchmarks
	}
	return workload.All()
}

func (o Options) apply(cfg config.Config) config.Config {
	cfg.MaxInsts = o.Insts
	cfg.Seed = o.Seed
	if o.FaultProfile != "" {
		cfg = core.WithFaults(cfg, o.FaultProfile, o.FaultSeed)
	}
	return cfg
}

// harnessConfig builds the campaign config for one named sweep. The
// fingerprint guards resume: a journal written at different experiment
// options refuses to mix with this campaign.
func (o Options) harnessConfig(name string) harness.Config {
	return harness.Config{
		Name:          name,
		Workers:       o.Parallel,
		Timeout:       o.Timeout,
		StallTimeout:  o.StallTimeout,
		Retries:       o.Retries,
		Journal:       o.Journal,
		Resume:        o.Resume,
		HandleSignals: o.HandleSignals,
		Fingerprint: fmt.Sprintf("insts=%d seed=%d faults=%s faultseed=%d",
			o.Insts, o.Seed, o.FaultProfile, o.FaultSeed),
		OnEvent: o.OnEvent,
	}
}

// mergeSummary folds one sweep's campaign summary into the accumulator.
func (o Options) mergeSummary(c *harness.Summary) {
	if o.Summary != nil {
		o.Summary.Merge(c)
	}
}

// supervised wires harness supervision into a machine config: the engine
// beats the job's heartbeat with its simulated cycle count (feeding the
// stall watchdog), streams per-job progress deltas to o.Progress, and
// honours context cancellation (deadlines, shutdown).
func (o Options) supervised(ctx context.Context, hb *harness.Heartbeat, cfg config.Config) config.Config {
	if ctx == nil && o.Progress == nil {
		return cfg
	}
	// The observer runs on one engine in one worker goroutine, so the
	// last-seen counters need no locking; only o.Progress itself must be
	// goroutine-safe across workers.
	var lastCycles, lastCommits uint64
	cfg.Observe = func(cycles, commits uint64) bool {
		if hb != nil {
			hb.Beat(cycles)
		}
		if o.Progress != nil {
			o.Progress(cycles-lastCycles, commits-lastCommits)
			lastCycles, lastCommits = cycles, commits
		}
		return ctx == nil || ctx.Err() == nil
	}
	return cfg
}

// run simulates one benchmark on one machine and returns the statistics.
// Failures carry the cell's full identity — benchmark and config preset —
// which the harness's JobFailure records and retry logs rely on.
func (o Options) run(b workload.Benchmark, preset string, cfg config.Config) (*stats.Stats, error) {
	return o.runCtx(context.Background(), nil, b, preset, cfg)
}

// runCtx is run under harness supervision: ctx cancellation stops the
// simulation at the next observer poll and hb receives simulated cycles.
func (o Options) runCtx(ctx context.Context, hb *harness.Heartbeat, b workload.Benchmark, preset string, cfg config.Config) (*stats.Stats, error) {
	prog, image := b.Build(o.Seed)
	res, err := core.Run(o.supervised(ctx, hb, o.apply(cfg)), prog, image)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", b.Name, preset, err)
	}
	return &res.Stats, nil
}

// sweep runs every benchmark on the baseline plus each machine as one
// harness campaign, returning IPCs indexed [bench][machine]; index 0 is the
// baseline. name identifies the sweep ("fig1") and cols name the non-base
// machines; together with the benchmark they form each cell's stable job
// key ("fig1/mcf/mtvp4").
func (o Options) sweep(name string, cols []string, benches []workload.Benchmark, machines []config.Config) ([][]float64, error) {
	return o.sweepAgainst(name, cols, core.Baseline(), benches, machines)
}

// cellResult is one sweep cell's journaled outcome: the headline IPC plus
// the run's full statistics snapshot, so a campaign journal doubles as a
// per-cell telemetry record and reports can surface simulated-work totals.
type cellResult struct {
	IPC   float64     `json:"ipc"`
	Stats stats.Stats `json:"stats"`
}

// sweepAgainst is sweep with an explicit baseline machine (ablations that
// change the substrate, e.g. disabling the prefetcher, compare against a
// matching baseline).
func (o Options) sweepAgainst(name string, cols []string, base config.Config, benches []workload.Benchmark, machines []config.Config) ([][]float64, error) {
	cfgs := append([]config.Config{base}, machines...)
	labels := append([]string{"base"}, cols...)
	if len(labels) != len(cfgs) {
		return nil, fmt.Errorf("%s: %d column labels for %d machines", name, len(cols), len(machines))
	}
	if o.Coordinator != "" {
		return o.sweepRemote(context.Background(), name, labels, benches, cfgs)
	}

	jobs := make([]harness.Job[cellResult], 0, len(benches)*len(cfgs))
	for _, b := range benches {
		for mi, cfg := range cfgs {
			b, cfg, label := b, cfg, labels[mi]
			jobs = append(jobs, harness.Job[cellResult]{
				Key:  fmt.Sprintf("%s/%s/%s", name, b.Name, label),
				Seed: o.Seed,
				Run: func(ctx context.Context, hb *harness.Heartbeat) (cellResult, error) {
					st, err := o.runCtx(ctx, hb, b, label, cfg)
					if err != nil {
						return cellResult{}, err
					}
					return cellResult{IPC: st.UsefulIPC(), Stats: *st}, nil
				},
			})
		}
	}

	camp, err := harness.Run(context.Background(), o.harnessConfig(name), jobs)
	if camp != nil {
		for _, r := range camp.Results {
			camp.Summary.SimCycles += r.Stats.Cycles
			camp.Summary.SimInsts += r.Stats.Committed
		}
		o.mergeSummary(camp.Summary)
	}
	if err != nil {
		return nil, err
	}

	// Assemble the matrix in job-key order (the jobs slice), never in
	// completion order: report rows must not depend on scheduling.
	ipc := make([][]float64, len(benches))
	for i := range ipc {
		ipc[i] = make([]float64, len(cfgs))
	}
	idx := 0
	for bi := range benches {
		for mi := range cfgs {
			ipc[bi][mi] = camp.Results[jobs[idx].Key].IPC
			idx++
		}
	}
	return ipc, nil
}

// speedupTables converts a sweep into the paper's presentation: one table
// per suite, per-benchmark percent speedups over the baseline column, with
// a geometric-mean row.
func speedupTables(title string, columns []string, benches []workload.Benchmark, ipc [][]float64) []*stats.Table {
	var tables []*stats.Table
	for _, suite := range []workload.Suite{workload.INT, workload.FP} {
		t := &stats.Table{
			Title:   fmt.Sprintf("%s — %s", title, suite),
			Columns: columns,
		}
		for bi, b := range benches {
			if b.Suite != suite {
				continue
			}
			row := make([]float64, len(columns))
			for mi := range columns {
				row[mi] = stats.SpeedupPct(ipc[bi][0], ipc[bi][mi+1])
			}
			t.Add(b.Name, row...)
		}
		if len(t.Rows) == 0 {
			continue
		}
		t.AddGeoMean("average")
		tables = append(tables, t)
	}
	return tables
}

// averagesOnly reduces per-benchmark tables to their average rows (the
// presentation Figures 2 and 6 use).
func averagesOnly(title string, columns []string, tables []*stats.Table) *stats.Table {
	out := &stats.Table{Title: title, Columns: columns}
	for _, t := range tables {
		for _, r := range t.Rows {
			if r.Name == "average" {
				name := "AVG INT"
				if len(out.Rows) > 0 {
					name = "AVG FP"
				}
				out.Add(name, r.Values...)
			}
		}
	}
	return out
}
