package experiments

import (
	"context"
	"fmt"

	"mtvp/internal/config"
	"mtvp/internal/core"
	"mtvp/internal/harness"
	"mtvp/internal/stats"
)

// Sharing-study axes: the predictor zoo crossed with every table
// organisation at two context counts. Wang–Franklin anchors the zoo to the
// paper's default predictor; VPQ stride and equality/LCV are the ported
// exemplar designs.
var (
	sharingPreds = []config.PredictorKind{
		config.PredWangFranklin,
		config.PredVPQStride,
		config.PredEqualityLCV,
	}
	sharingModes = []config.SharingMode{
		config.ShareShared,
		config.SharePrivate,
		config.SharePartitioned,
	}
	sharingCtxs = []int{2, 8}
)

// sharingModeTag abbreviates a mode for column labels: sh/pr/pt.
func sharingModeTag(m config.SharingMode) string {
	switch m {
	case config.SharePrivate:
		return "pr"
	case config.SharePartitioned:
		return "pt"
	default:
		return "sh"
	}
}

// SharingStudy runs the Durbhakula-style predictor-table organisation
// study: every zoo predictor × {shared, private, partitioned} tables ×
// {2, 8} hardware contexts on the MTVP machine. It returns one percent-
// speedup summary table per predictor (suite averages over the no-VP
// baseline) plus the cross-context interference counters the shared-table
// probe collects (vpred.Bank): constructive vs destructive sharing hits and
// cross-context evictions, summed over the benchmark suite.
func SharingStudy(o Options) ([]*stats.Table, error) {
	benches := o.benches()

	type cell struct {
		label string
		cfg   config.Config
	}
	cells := []cell{{label: "base", cfg: core.Baseline()}}
	for _, p := range sharingPreds {
		for _, m := range sharingModes {
			for _, c := range sharingCtxs {
				cells = append(cells, cell{
					label: fmt.Sprintf("%s-%s%d", p, sharingModeTag(m), c),
					cfg:   core.MTVPSharing(c, p, m),
				})
			}
		}
	}

	jobs := make([]harness.Job[cellResult], 0, len(benches)*len(cells))
	for _, b := range benches {
		for _, cl := range cells {
			b, cl := b, cl
			jobs = append(jobs, harness.Job[cellResult]{
				Key:  fmt.Sprintf("sharing/%s/%s", b.Name, cl.label),
				Seed: o.Seed,
				Run: func(ctx context.Context, hb *harness.Heartbeat) (cellResult, error) {
					st, err := o.runCtx(ctx, hb, b, cl.label, cl.cfg)
					if err != nil {
						return cellResult{}, err
					}
					return cellResult{IPC: st.UsefulIPC(), Stats: *st}, nil
				},
			})
		}
	}

	camp, err := harness.Run(context.Background(), o.harnessConfig("sharing"), jobs)
	if camp != nil {
		for _, r := range camp.Results {
			camp.Summary.SimCycles += r.Stats.Cycles
			camp.Summary.SimInsts += r.Stats.Committed
		}
		o.mergeSummary(camp.Summary)
	}
	if err != nil {
		return nil, err
	}

	// Assemble in job-key order: ipc[bench][cell] plus per-cell interference
	// sums across the suite.
	ipc := make([][]float64, len(benches))
	agg := make([]stats.Stats, len(cells))
	idx := 0
	for bi := range benches {
		ipc[bi] = make([]float64, len(cells))
		for ci := range cells {
			r := camp.Results[jobs[idx].Key]
			ipc[bi][ci] = r.IPC
			a := &agg[ci]
			a.VPCrossLookups += r.Stats.VPCrossLookups
			a.VPShareHelpful += r.Stats.VPShareHelpful
			a.VPShareHarmful += r.Stats.VPShareHarmful
			a.VPCrossTrains += r.Stats.VPCrossTrains
			a.VPCrossEvictions += r.Stats.VPCrossEvictions
			idx++
		}
	}
	// Cell index of (pred pi, mode mi, ctx ci); cells[0] is the baseline.
	cellAt := func(pi, mi, ci int) int {
		return 1 + pi*len(sharingModes)*len(sharingCtxs) + mi*len(sharingCtxs) + ci
	}

	var out []*stats.Table
	for pi, p := range sharingPreds {
		cols := make([]string, 0, len(sharingModes)*len(sharingCtxs))
		mat := make([][]float64, len(benches))
		for bi := range benches {
			mat[bi] = append(mat[bi], ipc[bi][0])
		}
		for mi, m := range sharingModes {
			for ci, c := range sharingCtxs {
				cols = append(cols, fmt.Sprintf("%s%d", sharingModeTag(m), c))
				for bi := range benches {
					mat[bi] = append(mat[bi], ipc[bi][cellAt(pi, mi, ci)])
				}
			}
		}
		title := fmt.Sprintf("Sharing study — %s (mtvp, %% speedup)", p)
		out = append(out, averagesOnly(title, cols, speedupTables(title, cols, benches, mat)))
	}

	it := &stats.Table{
		Title:   "Sharing interference — shared tables (counts summed over the suite)",
		Columns: []string{"crossLk", "helpful", "harmful", "crossTr", "evicts"},
	}
	for pi, p := range sharingPreds {
		for ci, c := range sharingCtxs {
			a := agg[cellAt(pi, 0, ci)] // sharingModes[0] is ShareShared
			it.Add(fmt.Sprintf("%s x%d", p, c),
				float64(a.VPCrossLookups), float64(a.VPShareHelpful),
				float64(a.VPShareHarmful), float64(a.VPCrossTrains),
				float64(a.VPCrossEvictions))
		}
	}
	out = append(out, it)
	return out, nil
}
