// Package trace provides cycle-level event tracing for the simulator: the
// pipeline emits structured events (fetch, issue, commit, spawn, confirm,
// kill, ...) to a Tracer, and Writer renders them as a human-readable log.
// Tracing is strictly observational — an attached tracer must never change
// simulation results.
package trace

import (
	"fmt"
	"io"
)

// Kind identifies a pipeline event.
type Kind uint8

// Pipeline event kinds.
const (
	KFetch Kind = iota
	KDispatch
	KIssue
	KComplete
	KCommit
	KSquash
	KReissue
	KPredict
	KSpawn
	KConfirm
	KKill
	KPromote
	KFault      // a fault was injected (internal/fault campaigns)
	KRecover    // the recovery controller broke a stall (unstick/kill)
	KQuarantine // a context's predictor quarantine level changed
	KDegrade    // a context stepped down the speculation ladder
	KRestore    // a context earned a speculation level back
	KCancel     // the run was canceled by an external observer (harness watchdog)
	numKinds
)

var kindNames = [numKinds]string{
	KFetch: "fetch", KDispatch: "disp", KIssue: "issue", KComplete: "done",
	KCommit: "commit", KSquash: "squash", KReissue: "reissue",
	KPredict: "predict", KSpawn: "spawn", KConfirm: "confirm",
	KKill: "kill", KPromote: "promote",
	KFault: "fault", KRecover: "recover", KQuarantine: "quarant",
	KDegrade: "degrade", KRestore: "restore", KCancel: "cancel",
}

// String returns the event kind's short name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "event?"
}

// KindByName returns the Kind whose String() is name. The mapping is the
// inverse of kindNames, so CLIs parsing kind filters cannot drift from the
// canonical names.
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// KindNames returns the canonical short name of every event kind, in kind
// order.
func KindNames() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// Event is one pipeline occurrence.
type Event struct {
	Cycle  int64
	Kind   Kind
	Thread int    // hardware context id
	Order  int64  // thread speculation order
	Seq    uint64 // instruction sequence number (0 for thread events)
	PC     int64  // instruction index (-1 for thread events)
	Text   string // disassembly or event detail

	// Peer identifies the other context of a pairwise thread event — the
	// spawning parent of a KSpawn, the retiring parent of a KConfirm —
	// with its speculation order. HasPeer distinguishes "peer is context 0"
	// from "no peer"; machine-readable sinks use it to draw spawn→confirm
	// flow arrows between context tracks.
	Peer      int
	PeerOrder int64
	HasPeer   bool
}

// Tracer receives pipeline events.
type Tracer interface {
	Emit(Event)
}

// Writer renders events to an io.Writer, optionally bounded to a maximum
// event count and filtered by kind. Kinds is consulted on every Emit, so
// setting (or changing) it at any point — even after events have been
// written — deterministically applies to all subsequent events.
type Writer struct {
	W     io.Writer
	Max   uint64 // 0 = unlimited
	Kinds []Kind // nil = all kinds
	count uint64
}

// NewWriter returns a Writer emitting every event to w.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

// pass reports whether the current kind filter admits k.
func (t *Writer) pass(k Kind) bool {
	if t.Kinds == nil {
		return true
	}
	for _, want := range t.Kinds {
		if want == k {
			return true
		}
	}
	return false
}

// Emit implements Tracer.
func (t *Writer) Emit(ev Event) {
	if !t.pass(ev.Kind) {
		return
	}
	if t.Max > 0 && t.count >= t.Max {
		return
	}
	t.count++
	if ev.Seq != 0 {
		fmt.Fprintf(t.W, "%8d %-8s T%d/%d #%-6d @%-5d %s\n",
			ev.Cycle, ev.Kind, ev.Thread, ev.Order, ev.Seq, ev.PC, ev.Text)
	} else {
		fmt.Fprintf(t.W, "%8d %-8s T%d/%d %s\n",
			ev.Cycle, ev.Kind, ev.Thread, ev.Order, ev.Text)
	}
}

// Count returns how many events were written.
func (t *Writer) Count() uint64 { return t.count }

// Collector buffers events in memory (for tests).
type Collector struct {
	Events []Event
}

// Emit implements Tracer.
func (c *Collector) Emit(ev Event) { c.Events = append(c.Events, ev) }

// ByKind returns the collected events of one kind.
func (c *Collector) ByKind(k Kind) []Event {
	var out []Event
	for _, ev := range c.Events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// multi fans one event stream out to several tracers in fixed order.
type multi struct{ ts []Tracer }

// Emit implements Tracer.
func (m *multi) Emit(ev Event) {
	for _, t := range m.ts {
		t.Emit(ev)
	}
}

// Multi combines tracers into one: every event is delivered to each non-nil
// tracer in argument order. Returns nil when no tracer remains (so callers
// can attach the result unconditionally).
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{ts: live}
}
