package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterFormatsEvents(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Cycle: 12, Kind: KCommit, Thread: 1, Order: 3, Seq: 99, PC: 7, Text: "add r1, r2, r3"})
	w.Emit(Event{Cycle: 13, Kind: KSpawn, Thread: 2, Order: 4, PC: -1, Text: "from T1/3"})
	out := buf.String()
	for _, want := range []string{"commit", "T1/3", "#99", "@7", "add r1, r2, r3", "spawn", "T2/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
}

func TestWriterMaxBound(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Max: 3}
	for i := 0; i < 10; i++ {
		w.Emit(Event{Kind: KFetch, Seq: uint64(i + 1)})
	}
	if w.Count() != 3 {
		t.Errorf("bounded writer wrote %d events", w.Count())
	}
}

func TestWriterKindFilter(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Kinds: []Kind{KSpawn, KKill}}
	w.Emit(Event{Kind: KFetch, Seq: 1})
	w.Emit(Event{Kind: KSpawn})
	w.Emit(Event{Kind: KCommit, Seq: 2})
	w.Emit(Event{Kind: KKill})
	if w.Count() != 2 {
		t.Errorf("filtered writer wrote %d events, want 2", w.Count())
	}
	if strings.Contains(buf.String(), "fetch") {
		t.Error("filtered kind leaked through")
	}
}

func TestCollector(t *testing.T) {
	c := &Collector{}
	c.Emit(Event{Kind: KSpawn})
	c.Emit(Event{Kind: KCommit})
	c.Emit(Event{Kind: KSpawn})
	if len(c.ByKind(KSpawn)) != 2 || len(c.ByKind(KKill)) != 0 {
		t.Errorf("collector filtering wrong: %d spawns", len(c.ByKind(KSpawn)))
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "event?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
