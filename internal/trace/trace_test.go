package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterFormatsEvents(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Cycle: 12, Kind: KCommit, Thread: 1, Order: 3, Seq: 99, PC: 7, Text: "add r1, r2, r3"})
	w.Emit(Event{Cycle: 13, Kind: KSpawn, Thread: 2, Order: 4, PC: -1, Text: "from T1/3"})
	out := buf.String()
	for _, want := range []string{"commit", "T1/3", "#99", "@7", "add r1, r2, r3", "spawn", "T2/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
}

func TestWriterMaxBound(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Max: 3}
	for i := 0; i < 10; i++ {
		w.Emit(Event{Kind: KFetch, Seq: uint64(i + 1)})
	}
	if w.Count() != 3 {
		t.Errorf("bounded writer wrote %d events", w.Count())
	}
}

func TestWriterKindFilter(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, Kinds: []Kind{KSpawn, KKill}}
	w.Emit(Event{Kind: KFetch, Seq: 1})
	w.Emit(Event{Kind: KSpawn})
	w.Emit(Event{Kind: KCommit, Seq: 2})
	w.Emit(Event{Kind: KKill})
	if w.Count() != 2 {
		t.Errorf("filtered writer wrote %d events, want 2", w.Count())
	}
	if strings.Contains(buf.String(), "fetch") {
		t.Error("filtered kind leaked through")
	}
}

func TestCollector(t *testing.T) {
	c := &Collector{}
	c.Emit(Event{Kind: KSpawn})
	c.Emit(Event{Kind: KCommit})
	c.Emit(Event{Kind: KSpawn})
	if len(c.ByKind(KSpawn)) != 2 || len(c.ByKind(KKill)) != 0 {
		t.Errorf("collector filtering wrong: %d spawns", len(c.ByKind(KSpawn)))
	}
}

// TestWriterKindsSetAfterEmit: the Kinds filter is consulted per event, so
// setting (or changing) it after the first Emit takes effect — the old
// lazily-cached filter silently ignored late changes.
func TestWriterKindsSetAfterEmit(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf}
	w.Emit(Event{Kind: KFetch, Seq: 1})

	w.Kinds = []Kind{KSpawn}
	w.Emit(Event{Kind: KCommit, Seq: 2})
	w.Emit(Event{Kind: KSpawn})
	if w.Count() != 2 {
		t.Errorf("writer wrote %d events, want 2 (filter set after first Emit must apply)", w.Count())
	}
	if strings.Contains(buf.String(), "commit") {
		t.Errorf("late-set filter ignored:\n%s", buf.String())
	}

	// Widening the filter later applies too.
	w.Kinds = nil
	w.Emit(Event{Kind: KCommit, Seq: 3})
	if w.Count() != 3 {
		t.Errorf("cleared filter still dropping events: count=%d", w.Count())
	}
}

// TestKindNamesExhaustive: every declared kind has a stable, unique,
// non-placeholder name, and KindByName is its exact inverse. Adding a Kind
// without naming it fails here.
func TestKindNamesExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "event?" {
			t.Errorf("kind %d has no name", k)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Errorf("KindByName(%q) = %v,%v; want %v,true", name, back, ok, k)
		}
	}
	if names := KindNames(); len(names) != int(numKinds) {
		t.Errorf("KindNames returned %d names for %d kinds", len(names), numKinds)
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted an unknown name")
	}
	if Kind(numKinds).String() != "event?" {
		t.Errorf("out-of-range kind renders %q, want the event? placeholder", Kind(numKinds).String())
	}
}

func TestMultiFansOutAndElidesNils(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi with no live tracers must return nil")
	}
	if Multi(nil, a) != Tracer(a) {
		t.Error("Multi with one live tracer must return it directly")
	}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KSpawn})
	m.Emit(Event{Kind: KKill})
	if len(a.Events) != 2 || len(b.Events) != 2 {
		t.Errorf("fan-out wrong: a=%d b=%d events", len(a.Events), len(b.Events))
	}
}
