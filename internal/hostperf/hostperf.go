// Package hostperf measures and records the simulator's host-side
// performance: how fast the host chews through simulated cycles, and how
// hard it leans on the Go heap while doing it. It backs the CLI tools'
// -cpuprofile/-memprofile flags and mtvpbench's -hostperf record, whose
// committed snapshots (BENCH_*.json at the repo root) form the project's
// performance trajectory.
//
// Simulated outcomes are deterministic; host throughput is not. Records
// therefore carry the host context (CPU count, GOOS/GOARCH, Go version) so
// a BENCH_*.json from one machine is never silently compared against
// another's.
package hostperf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// StartProfiles starts a runtime/pprof CPU profile to cpuPath and arranges
// a heap profile to memPath, either of which may be empty. The returned
// stop function (never nil) ends the CPU profile and writes the heap
// snapshot; call it exactly once, on every exit path that should keep the
// profiles.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// Collect first so the profile shows live steady-state heap,
			// not garbage awaiting the next GC cycle.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}

// Record is the host-performance ledger of one experiment (one campaign of
// cells, or one standalone run with Cells == 1).
type Record struct {
	Name string `json:"name"`

	// Host wall time for the whole experiment and per completed cell.
	WallSec        float64 `json:"wall_sec"`
	Cells          int     `json:"cells"`
	WallPerCellSec float64 `json:"wall_per_cell_sec,omitempty"`

	// Simulated work and host throughput.
	SimCycles     uint64  `json:"sim_cycles"`
	SimInsts      uint64  `json:"sim_insts"`
	McyclesPerSec float64 `json:"sim_mcycles_per_sec"`
	MinstsPerSec  float64 `json:"sim_minsts_per_sec"`

	// Host heap pressure over the experiment (runtime.MemStats deltas,
	// cumulative across all worker goroutines).
	Allocs        uint64  `json:"host_allocs"`
	AllocBytes    uint64  `json:"host_alloc_bytes"`
	AllocsPerCell float64 `json:"host_allocs_per_cell,omitempty"`
}

// Report is the top-level -hostperf document.
type Report struct {
	Schema    string   `json:"schema"` // "mtvp-hostperf/1"
	Tool      string   `json:"tool"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Records   []Record `json:"records"`
}

// NewReport stamps an empty report with the host context.
func NewReport(tool string) *Report {
	return &Report{
		Schema:    "mtvp-hostperf/1",
		Tool:      tool,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Write emits the report as indented JSON.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Meter captures host counters at a start point; Stop turns the deltas
// since then into a Record. One Meter per experiment.
type Meter struct {
	start time.Time
	mem   runtime.MemStats
}

// StartMeter snapshots the wall clock and the heap counters.
func StartMeter() *Meter {
	m := &Meter{start: time.Now()}
	runtime.ReadMemStats(&m.mem)
	return m
}

// Stop closes the measurement interval and builds the record. cells is the
// number of campaign cells completed in the interval; simCycles/simInsts
// are the simulated cycles and useful committed instructions they covered.
func (m *Meter) Stop(name string, cells int, simCycles, simInsts uint64) Record {
	wall := time.Since(m.start).Seconds()
	var now runtime.MemStats
	runtime.ReadMemStats(&now)

	rec := Record{
		Name:       name,
		WallSec:    wall,
		Cells:      cells,
		SimCycles:  simCycles,
		SimInsts:   simInsts,
		Allocs:     now.Mallocs - m.mem.Mallocs,
		AllocBytes: now.TotalAlloc - m.mem.TotalAlloc,
	}
	if wall > 0 {
		rec.McyclesPerSec = float64(simCycles) / wall / 1e6
		rec.MinstsPerSec = float64(simInsts) / wall / 1e6
	}
	if cells > 0 {
		rec.WallPerCellSec = wall / float64(cells)
		rec.AllocsPerCell = float64(rec.Allocs) / float64(cells)
	}
	return rec
}
