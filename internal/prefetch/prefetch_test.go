package prefetch

import (
	"testing"

	"mtvp/internal/config"
)

func params() config.PrefetchParams {
	return config.PrefetchParams{
		Enabled:       true,
		Entries:       256,
		StreamBuffers: 8,
		BufferDepth:   4,
		MinConfidence: 2,
	}
}

// drain issues and completes every wanted prefetch at the given ready cycle.
func drain(pf *Prefetcher, ready int64) []uint64 {
	var lines []uint64
	for {
		la, ok := pf.NextPrefetch()
		if !ok {
			return lines
		}
		pf.Complete(la, ready)
		lines = append(lines, la)
	}
}

func TestTrainingAllocatesStream(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x10)
	// Three misses with a stable 64-byte stride: conf reaches 2.
	pf.Train(pc, 0x1000, 0)
	pf.Train(pc, 0x1040, 10)
	pf.Train(pc, 0x1080, 20)
	lines := drain(pf, 100)
	if len(lines) != 4 {
		t.Fatalf("issued %d prefetches, want BufferDepth=4", len(lines))
	}
	if lines[0] != 0x10c0 {
		t.Errorf("first prefetch at %#x, want 0x10c0", lines[0])
	}
	if !pf.Probe(0x10c0) {
		t.Error("probe missed a buffered line")
	}
}

func TestUnstableStrideDoesNotAllocate(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x10)
	pf.Train(pc, 0x1000, 0)
	pf.Train(pc, 0x1040, 10)
	pf.Train(pc, 0x2000, 20) // break
	pf.Train(pc, 0x5000, 30) // break
	if lines := drain(pf, 100); len(lines) != 0 {
		t.Errorf("unstable stride issued %d prefetches", len(lines))
	}
}

func TestDemandHitConsumesAndExtends(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x10)
	pf.Train(pc, 0x1000, 0)
	pf.Train(pc, 0x1040, 1)
	pf.Train(pc, 0x1080, 2)
	drain(pf, 50)

	ready, ok := pf.Demand(0x10c0, 60)
	if !ok || ready != 50 {
		t.Fatalf("demand hit = (%d, %v), want (50, true)", ready, ok)
	}
	if _, again := pf.Demand(0x10c0, 61); again {
		t.Error("line served twice")
	}
	// Consuming a line lets the stream run one line further ahead.
	if lines := drain(pf, 70); len(lines) != 1 {
		t.Errorf("stream extended by %d lines, want 1", len(lines))
	}
}

func TestSubLineStrideRoundsToLine(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x20)
	// 8-byte stride: the stream must advance by whole lines.
	for i := 0; i < 4; i++ {
		pf.Train(pc, uint64(0x3000+8*i), int64(i))
	}
	lines := drain(pf, 10)
	if len(lines) == 0 {
		t.Fatal("no prefetches for dense stride")
	}
	for i := 1; i < len(lines); i++ {
		if lines[i]-lines[i-1] != 64 {
			t.Errorf("stream advanced %d bytes, want 64", lines[i]-lines[i-1])
		}
	}
}

func TestNegativeStride(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x30)
	pf.Train(pc, 0x9000, 0)
	pf.Train(pc, 0x8fc0, 1)
	pf.Train(pc, 0x8f80, 2)
	lines := drain(pf, 10)
	if len(lines) == 0 {
		t.Fatal("no prefetches for descending stream")
	}
	if lines[0] != 0x8f40 {
		t.Errorf("descending prefetch at %#x, want 0x8f40", lines[0])
	}
}

// TestRedirectAfterJump: a stream whose PC jumps far away (plane boundary)
// must be redirected rather than parked forever — the regression behind the
// original stream-coverage bug.
func TestRedirectAfterJump(t *testing.T) {
	pf := New(params(), 64)
	pc := uint64(0x40)
	for i := 0; i < 4; i++ {
		pf.Train(pc, uint64(0x10000+64*i), int64(i))
	}
	drain(pf, 10)
	// Jump 1MB away, then resume the same stride.
	base := uint64(0x110000)
	for i := 0; i < 4; i++ {
		pf.Train(pc, base+uint64(64*i), int64(10+i))
	}
	lines := drain(pf, 20)
	found := false
	for _, la := range lines {
		if la >= base {
			found = true
		}
	}
	if !found {
		t.Error("stream not redirected after the access point jumped away")
	}
}

func TestStreamBufferLRUEviction(t *testing.T) {
	p := params()
	p.StreamBuffers = 2
	pf := New(p, 64)
	alloc := func(pc, base uint64, at int64) {
		pf.Train(pc, base, at)
		pf.Train(pc, base+64, at+1)
		pf.Train(pc, base+128, at+2)
	}
	alloc(0x1, 0x10000, 0)
	alloc(0x2, 0x20000, 10)
	alloc(0x3, 0x30000, 20) // evicts the LRU stream (pc 0x1)
	drain(pf, 100)
	if pf.Probe(0x10000 + 192) {
		t.Error("evicted stream still probed")
	}
}

func TestTableAliasing(t *testing.T) {
	p := params()
	p.Entries = 4
	pf := New(p, 64)
	// Two PCs aliasing to the same entry keep resetting each other.
	pf.Train(0x0, 0x1000, 0)
	pf.Train(0x4, 0x9000, 1)
	pf.Train(0x0, 0x1040, 2)
	pf.Train(0x4, 0x9040, 3)
	if lines := drain(pf, 10); len(lines) != 0 {
		t.Errorf("aliased PCs issued %d prefetches", len(lines))
	}
}
