// Package prefetch implements the PC-based stride prefetcher of Table 1: a
// 256-entry PC-indexed stride table that allocates up to 8 stream buffers.
// Training happens on L1 demand misses in issue order, so loads issuing out
// of order can mistrain a stream — the prefetcher/value-prediction
// interaction the paper highlights in §5.1.
package prefetch

import "mtvp/internal/config"

type tableEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int
	valid    bool
}

type stream struct {
	valid   bool
	pc      uint64
	stride  int64            // line-granular advance, in bytes
	next    uint64           // next line address to prefetch
	pending int              // prefetches this stream still wants issued
	lines   map[uint64]int64 // prefetched line → ready cycle
	used    uint64           // LRU tick
}

// Prefetcher is the stride table plus its stream buffers.
type Prefetcher struct {
	p         config.PrefetchParams
	lineBytes int
	table     []tableEntry
	streams   []stream
	issued    map[uint64]int // line → stream index awaiting Complete
	tick      uint64
}

// New returns a prefetcher sized by p for the given cache line size.
func New(p config.PrefetchParams, lineBytes int) *Prefetcher {
	pf := &Prefetcher{
		p:         p,
		lineBytes: lineBytes,
		table:     make([]tableEntry, p.Entries),
		streams:   make([]stream, p.StreamBuffers),
		issued:    make(map[uint64]int),
	}
	return pf
}

func (pf *Prefetcher) lineAlign(addr uint64) uint64 {
	return addr &^ uint64(pf.lineBytes-1)
}

// Train observes a demand load (pc, addr) that missed the L1 at cycle now.
// A stable stride allocates or redirects a stream buffer for that PC.
func (pf *Prefetcher) Train(pc, addr uint64, now int64) {
	e := &pf.table[pc%uint64(len(pf.table))]
	if !e.valid || e.pc != pc {
		*e = tableEntry{pc: pc, lastAddr: addr, valid: true}
		return
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < 1<<20 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	if e.conf >= pf.p.MinConfidence {
		pf.allocate(pc, addr, stride)
	}
}

// allocate points a stream buffer at the run following addr. An existing
// stream for the same PC is redirected only if the new start has run past
// it; otherwise it keeps streaming.
func (pf *Prefetcher) allocate(pc, addr uint64, stride int64) {
	adv := stride
	if adv > 0 && adv < int64(pf.lineBytes) {
		adv = int64(pf.lineBytes)
	} else if adv < 0 && -adv < int64(pf.lineBytes) {
		adv = -int64(pf.lineBytes)
	}
	next := pf.lineAlign(uint64(int64(addr) + adv))

	victim := -1
	for i := range pf.streams {
		s := &pf.streams[i]
		if s.valid && s.pc == pc {
			if s.stride == adv {
				// Still tracking the demand point? Leave it alone.
				// If the access pattern jumped elsewhere (a plane
				// boundary), fall through and redirect the stream.
				diff := abs64(int64(next) - int64(s.next))
				if diff <= abs64(adv)*int64(pf.p.BufferDepth+2) {
					return
				}
			}
			victim = i // redirect this PC's stream
			break
		}
	}
	if victim == -1 {
		for i := range pf.streams {
			s := &pf.streams[i]
			if !s.valid {
				victim = i
				break
			}
			if victim == -1 || s.used < pf.streams[victim].used {
				victim = i
			}
		}
	}
	pf.tick++
	pf.streams[victim] = stream{
		valid:   true,
		pc:      pc,
		stride:  adv,
		next:    next,
		pending: pf.p.BufferDepth,
		lines:   make(map[uint64]int64),
		used:    pf.tick,
	}
}

// Demand checks the stream buffers for lineAddr. On a hit the line moves to
// the cache (the caller fills it) and the stream advances by one more line.
func (pf *Prefetcher) Demand(lineAddr uint64, now int64) (int64, bool) {
	for i := range pf.streams {
		s := &pf.streams[i]
		if !s.valid {
			continue
		}
		if ready, ok := s.lines[lineAddr]; ok {
			delete(s.lines, lineAddr)
			pf.tick++
			s.used = pf.tick
			s.pending++
			return ready, true
		}
	}
	return 0, false
}

// Probe reports whether lineAddr is (or will be) in any stream buffer,
// without side effects.
func (pf *Prefetcher) Probe(lineAddr uint64) bool {
	for i := range pf.streams {
		s := &pf.streams[i]
		if !s.valid {
			continue
		}
		if _, ok := s.lines[lineAddr]; ok {
			return true
		}
		if _, ok := pf.issued[lineAddr]; ok {
			return true
		}
	}
	return false
}

// NextPrefetch returns the next line address a stream buffer wants fetched,
// or ok=false when no stream has work. The caller must invoke Complete with
// the supplying level's ready cycle.
func (pf *Prefetcher) NextPrefetch() (uint64, bool) {
	for i := range pf.streams {
		s := &pf.streams[i]
		if !s.valid || s.pending <= 0 {
			continue
		}
		if len(s.lines)+pf.pendingFor(i) >= pf.p.BufferDepth {
			s.pending = 0
			continue
		}
		la := s.next
		if _, dup := pf.issued[la]; dup {
			s.next = uint64(int64(s.next) + s.stride)
			continue
		}
		s.next = uint64(int64(s.next) + s.stride)
		s.pending--
		pf.issued[la] = i
		return la, true
	}
	return 0, false
}

func (pf *Prefetcher) pendingFor(idx int) int {
	n := 0
	for _, i := range pf.issued {
		if i == idx {
			n++
		}
	}
	return n
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Complete records that the prefetch of lineAddr will finish at ready.
func (pf *Prefetcher) Complete(lineAddr uint64, ready int64) {
	idx, ok := pf.issued[lineAddr]
	if !ok {
		return
	}
	delete(pf.issued, lineAddr)
	s := &pf.streams[idx]
	if s.valid {
		s.lines[lineAddr] = ready
	}
}
