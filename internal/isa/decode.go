package isa

// Decoded is the per-static-instruction predecode record. The timing layer
// consults instruction properties (class, sources, memory width, control
// behaviour) on every fetch and dispatch of every dynamic instance; decoding
// the whole program once into a flat PC-indexed table turns those per-fetch
// switch walks into field loads.
type Decoded struct {
	Inst     Inst
	Class    Class
	InstAddr uint64 // byte address of the instruction
	MemSize  int    // access width in bytes (0 for non-memory ops)

	SrcRegs [3]Reg // source registers, R0 omitted; first NumSrcs valid
	NumSrcs int

	HasDest   bool
	IsLoad    bool
	IsStore   bool
	IsBranch  bool
	IsControl bool
}

// Srcs returns the instruction's source registers (a view into the table
// entry; do not retain across mutation).
func (d *Decoded) Srcs() []Reg { return d.SrcRegs[:d.NumSrcs] }

// Decode builds the predecode table for p, one entry per static
// instruction, indexed by PC.
func (p *Program) Decode() []Decoded {
	out := make([]Decoded, len(p.Insts))
	for pc := range p.Insts {
		in := p.Insts[pc]
		d := &out[pc]
		d.Inst = in
		d.Class = in.Op.Class()
		d.InstAddr = p.InstAddr(int64(pc))
		d.MemSize = in.Op.MemSize()
		d.HasDest = in.HasDest()
		d.IsLoad = in.Op.IsLoad()
		d.IsStore = in.Op.IsStore()
		d.IsBranch = in.Op.IsBranch()
		d.IsControl = in.Op.IsControl()
		d.NumSrcs = len(in.SrcRegs(d.SrcRegs[:0]))
	}
	return out
}
