package isa

import "fmt"

// Inst is one struct-encoded instruction. Field meaning depends on the
// opcode; see the Op documentation. Unused fields are zero.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// HasDest reports whether the instruction writes a register. A write to R0
// is treated as no destination (R0 is hardwired to zero).
func (in Inst) HasDest() bool {
	switch in.Op.Class() {
	case ClassStore, ClassBranch, ClassHalt, ClassNop:
		return false
	case ClassJump:
		if in.Op != JAL {
			return false
		}
	}
	return in.Rd != R0
}

// SrcRegs appends the registers the instruction reads to dst and returns
// the result. R0 is omitted: it is always ready and always zero.
func (in Inst) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != R0 {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case NOP, LI, J, JAL, HALT:
		// no register sources
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
		FADD, FSUB, FMUL, FDIV, FLT, FLE, FEQ,
		BEQ, BNE, BLT, BGE, BLTU, BGEU:
		add(in.Rs1)
		add(in.Rs2)
	case SB, SH, SW, SD, FSD:
		add(in.Rs1) // address base
		add(in.Rs2) // store data
	default:
		// immediate ALU, unary FP, loads, JR: one source
		add(in.Rs1)
	}
	return dst
}

// String renders the instruction in assembly-like form.
func (in Inst) String() string {
	r := func(x Reg) string {
		if x.IsFP() {
			return fmt.Sprintf("f%d", x-32)
		}
		return fmt.Sprintf("r%d", x)
	}
	switch in.Op.Class() {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case ClassJump:
		switch in.Op {
		case J:
			return fmt.Sprintf("j @%d", in.Imm)
		case JAL:
			return fmt.Sprintf("jal %s, @%d", r(in.Rd), in.Imm)
		default:
			return fmt.Sprintf("jr %s", r(in.Rs1))
		}
	}
	switch in.Op {
	case LI:
		return fmt.Sprintf("li %s, %d", r(in.Rd), in.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, MULI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case FSQRT, FNEG, FABS, ITOF, FTOI:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.Rd), r(in.Rs1))
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	}
}

// Program is an assembled instruction sequence. The PC is an index into
// Insts; CodeBase maps instruction indices to byte addresses for the
// instruction cache (each instruction occupies 4 bytes of the address space).
type Program struct {
	Name     string
	Insts    []Inst
	CodeBase uint64
}

// InstBytes is the architectural size of one instruction in the byte
// address space seen by the instruction cache.
const InstBytes = 4

// InstAddr returns the byte address of the instruction at index pc.
func (p *Program) InstAddr(pc int64) uint64 {
	return p.CodeBase + uint64(pc)*InstBytes
}

// At returns the instruction at index pc and whether pc is in range.
func (p *Program) At(pc int64) (Inst, bool) {
	if pc < 0 || pc >= int64(len(p.Insts)) {
		return Inst{}, false
	}
	return p.Insts[pc], true
}
