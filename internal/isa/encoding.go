package isa

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Programs serialise to a small binary format so assembled workloads can be
// written to disk and reloaded (e.g. to ship a kernel alongside a trace).
//
// Layout (little-endian):
//
//	magic   "MTVP"        4 bytes
//	version uint32        currently 1
//	nameLen uint32, name  UTF-8 bytes
//	codeBase uint64
//	count   uint32        instruction count
//	insts   count × 12    op u8, rd u8, rs1 u8, rs2 u8, imm i64
const (
	progMagic   = "MTVP"
	progVersion = 1
)

// WriteTo serialises the program. It implements io.WriterTo.
func (p *Program) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(data interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := io.WriteString(w, progMagic); err != nil {
		return n, err
	}
	n += int64(len(progMagic))
	if err := write(uint32(progVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(len(p.Name))); err != nil {
		return n, err
	}
	if _, err := io.WriteString(w, p.Name); err != nil {
		return n, err
	}
	n += int64(len(p.Name))
	if err := write(p.CodeBase); err != nil {
		return n, err
	}
	if err := write(uint32(len(p.Insts))); err != nil {
		return n, err
	}
	for _, in := range p.Insts {
		if err := write([4]uint8{uint8(in.Op), uint8(in.Rd), uint8(in.Rs1), uint8(in.Rs2)}); err != nil {
			return n, err
		}
		if err := write(in.Imm); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadProgram deserialises a program written by WriteTo, validating the
// magic, version, opcodes, and registers.
func ReadProgram(r io.Reader) (*Program, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("isa: reading magic: %w", err)
	}
	if string(magic[:]) != progMagic {
		return nil, fmt.Errorf("isa: bad magic %q", magic)
	}
	read := func(data interface{}) error {
		return binary.Read(r, binary.LittleEndian, data)
	}
	var version, nameLen uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != progVersion {
		return nil, fmt.Errorf("isa: unsupported program version %d", version)
	}
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("isa: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	p := &Program{Name: string(name)}
	if err := read(&p.CodeBase); err != nil {
		return nil, err
	}
	var count uint32
	if err := read(&count); err != nil {
		return nil, err
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("isa: unreasonable instruction count %d", count)
	}
	p.Insts = make([]Inst, count)
	for i := range p.Insts {
		var ops [4]uint8
		if err := read(&ops); err != nil {
			return nil, err
		}
		in := Inst{Op: Op(ops[0]), Rd: Reg(ops[1]), Rs1: Reg(ops[2]), Rs2: Reg(ops[3])}
		if err := read(&in.Imm); err != nil {
			return nil, err
		}
		if in.Op >= numOps {
			return nil, fmt.Errorf("isa: instruction %d: bad opcode %d", i, in.Op)
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return nil, fmt.Errorf("isa: instruction %d: bad register", i)
		}
		p.Insts[i] = in
	}
	return p, nil
}
