// Package isa defines the synthetic 64-bit RISC instruction set executed by
// the simulator, together with a functional interpreter whose contexts can be
// forked — the property multithreaded value prediction depends on.
//
// The ISA is deliberately small but complete enough to express the SPEC-like
// kernels in internal/workload: a flat 64-register file (32 integer, 32
// floating point), three-operand ALU and FP arithmetic, sized loads and
// stores, compare-and-branch control flow, and indirect jumps. Instructions
// are struct-encoded (no bit packing); the program counter is an instruction
// index, and branch/jump targets are absolute indices resolved by
// internal/asm.
package isa

// Reg names one of the 64 architectural registers. Indices 0–31 are the
// integer file (R0 is hardwired to zero); indices 32–63 are the floating
// point file, whose values are stored as IEEE-754 bit patterns in uint64.
type Reg uint8

// NumRegs is the total architectural register count (integer + FP).
const NumRegs = 64

// Integer registers. R0 always reads as zero; writes to it are discarded.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Floating point registers F0–F31 occupy register indices 32–63.
const (
	F0 Reg = iota + 32
	F1
	F2
	F3
	F4
	F5
	F6
	F7
	F8
	F9
	F10
	F11
	F12
	F13
	F14
	F15
	F16
	F17
	F18
	F19
	F20
	F21
	F22
	F23
	F24
	F25
	F26
	F27
	F28
	F29
	F30
	F31
)

// IsFP reports whether r belongs to the floating point file.
func (r Reg) IsFP() bool { return r >= 32 }

// Op is an instruction opcode.
type Op uint8

// Opcodes. Three-operand forms are Rd ← Rs1 op Rs2; immediate forms are
// Rd ← Rs1 op Imm. Memory operands address [Rs1 + Imm]. Branches compare
// Rs1 with Rs2 and jump to the absolute instruction index in Imm.
const (
	NOP Op = iota

	// Integer ALU, register forms.
	ADD
	SUB
	MUL
	DIV // unsigned divide; division by zero yields 0
	REM // unsigned remainder; remainder by zero yields 0
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // signed set-less-than
	SLTU // unsigned set-less-than

	// Integer ALU, immediate forms.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	MULI
	LI // Rd ← Imm (full 64-bit immediate)

	// Floating point (operands in the FP file unless noted).
	FADD
	FSUB
	FMUL
	FDIV // division by zero yields 0 (no IEEE traps in this ISA)
	FSQRT
	FNEG
	FABS
	FLT  // Rd(int) ← Rs1 < Rs2
	FLE  // Rd(int) ← Rs1 <= Rs2
	FEQ  // Rd(int) ← Rs1 == Rs2
	ITOF // Rd(fp) ← float64(int64(Rs1))
	FTOI // Rd(int) ← int64(float64(Rs1))

	// Loads: Rd ← mem[Rs1+Imm]; sub-word loads zero-extend.
	LB
	LH
	LW
	LD
	FLD // load 8 bytes into an FP register

	// Stores: mem[Rs1+Imm] ← Rs2 (low Size bytes).
	SB
	SH
	SW
	SD
	FSD // store an FP register's 8 bytes

	// Control flow. Branch targets and J/JAL targets are absolute
	// instruction indices carried in Imm.
	BEQ
	BNE
	BLT  // signed
	BGE  // signed
	BLTU // unsigned
	BGEU // unsigned
	J
	JAL // Rd ← PC+1 (link, as an instruction index), then jump
	JR  // PC ← Rs1
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra",
	SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLLI: "slli",
	SRLI: "srli", SRAI: "srai", MULI: "muli", LI: "li",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FSQRT: "fsqrt",
	FNEG: "fneg", FABS: "fabs", FLT: "flt", FLE: "fle", FEQ: "feq",
	ITOF: "itof", FTOI: "ftoi",
	LB: "lb", LH: "lh", LW: "lw", LD: "ld", FLD: "fld",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd", FSD: "fsd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	J: "j", JAL: "jal", JR: "jr", HALT: "halt",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// Class groups opcodes by the functional unit and issue queue they use.
type Class uint8

// Instruction classes. Loads and stores dispatch to the memory queue,
// FP arithmetic to the FP queue, and everything else to the integer queue.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassHalt
)

var classNames = []string{
	ClassNop: "nop", ClassIntALU: "ialu", ClassIntMul: "imul",
	ClassIntDiv: "idiv", ClassFPAdd: "fadd", ClassFPMul: "fmul",
	ClassFPDiv: "fdiv", ClassLoad: "load", ClassStore: "store",
	ClassBranch: "branch", ClassJump: "jump", ClassHalt: "halt",
}

// String returns a short name for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// Class returns the instruction class for the opcode.
func (op Op) Class() Class {
	switch op {
	case NOP:
		return ClassNop
	case MUL, MULI:
		return ClassIntMul
	case DIV, REM:
		return ClassIntDiv
	case FADD, FSUB, FNEG, FABS, FLT, FLE, FEQ, ITOF, FTOI:
		return ClassFPAdd
	case FMUL:
		return ClassFPMul
	case FDIV, FSQRT:
		return ClassFPDiv
	case LB, LH, LW, LD, FLD:
		return ClassLoad
	case SB, SH, SW, SD, FSD:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return ClassBranch
	case J, JAL, JR:
		return ClassJump
	case HALT:
		return ClassHalt
	default:
		return ClassIntALU
	}
}

// IsLoad reports whether the opcode reads memory.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether the opcode writes memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsBranch reports whether the opcode is a conditional branch.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsControl reports whether the opcode can redirect the PC.
func (op Op) IsControl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump || c == ClassHalt
}

// MemSize returns the access width in bytes for memory opcodes, or 0.
func (op Op) MemSize() int {
	switch op {
	case LB, SB:
		return 1
	case LH, SH:
		return 2
	case LW, SW:
		return 4
	case LD, SD, FLD, FSD:
		return 8
	default:
		return 0
	}
}
