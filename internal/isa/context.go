package isa

import "math"

// MemAccess is the data memory a context executes against. A speculative
// context is given a store-buffer overlay (internal/storebuf) whose reads
// fall through to its ancestors and ultimately to flat memory; the
// architectural context is given flat memory directly.
type MemAccess interface {
	Load(addr uint64, size int) uint64
	Store(addr uint64, size int, val uint64)
}

// Exec records the functional outcome of one executed instruction. The
// timing model consumes Execs: dependences come from the instruction's
// registers, while addresses, values, and branch outcomes come from here.
type Exec struct {
	Inst   Inst
	PC     int64
	NextPC int64
	Taken  bool // branch outcome (conditional branches only)

	Addr  uint64 // effective address (memory ops)
	Value uint64 // result written to Rd, or the value stored
}

// Context is one architectural execution context: a register file, a PC,
// and a view of memory. Contexts are the unit of forking for multithreaded
// value prediction: Fork copies the register state so a spawned thread can
// run ahead with a predicted value while the parent's state stays intact.
type Context struct {
	Prog    *Program
	PC      int64
	R       [NumRegs]uint64
	Mem     MemAccess
	Halted  bool
	Retired uint64 // instructions executed by Step in this context
}

// NewContext returns a context at the program's first instruction.
func NewContext(p *Program, mem MemAccess) *Context {
	return &Context{Prog: p, Mem: mem}
}

// Fork returns a copy of the context executing against mem. The copy shares
// the program but has its own register file and PC, mirroring the flash
// register-map copy performed at thread spawn.
func (c *Context) Fork(mem MemAccess) *Context {
	nc := *c
	nc.Mem = mem
	nc.Retired = 0
	return &nc
}

// Reg returns the value of r (R0 reads as zero).
func (c *Context) Reg(r Reg) uint64 {
	if r == R0 {
		return 0
	}
	return c.R[r]
}

// SetReg writes v to r (writes to R0 are discarded).
func (c *Context) SetReg(r Reg, v uint64) {
	if r != R0 {
		c.R[r] = v
	}
}

// Peek returns the instruction the context will execute next and whether
// the context can execute at all.
func (c *Context) Peek() (Inst, bool) {
	if c.Halted {
		return Inst{}, false
	}
	return c.Prog.At(c.PC)
}

// EffAddr computes the effective address of a memory instruction using the
// current register state, without executing it.
func (c *Context) EffAddr(in Inst) uint64 {
	return c.Reg(in.Rs1) + uint64(in.Imm)
}

// Step executes one instruction, updating registers, memory, and the PC,
// and returns the execution record. Executing past the end of the program
// or a HALT halts the context; Step then reports ok=false.
func (c *Context) Step() (Exec, bool) {
	in, ok := c.Peek()
	if !ok {
		c.Halted = true
		return Exec{}, false
	}
	e := Exec{Inst: in, PC: c.PC, NextPC: c.PC + 1}
	s1, s2 := c.Reg(in.Rs1), c.Reg(in.Rs2)
	f1, f2 := math.Float64frombits(s1), math.Float64frombits(s2)

	switch in.Op {
	case NOP:
	case ADD:
		e.Value = s1 + s2
	case SUB:
		e.Value = s1 - s2
	case MUL:
		e.Value = s1 * s2
	case DIV:
		if s2 != 0 {
			e.Value = s1 / s2
		}
	case REM:
		if s2 != 0 {
			e.Value = s1 % s2
		}
	case AND:
		e.Value = s1 & s2
	case OR:
		e.Value = s1 | s2
	case XOR:
		e.Value = s1 ^ s2
	case SLL:
		e.Value = s1 << (s2 & 63)
	case SRL:
		e.Value = s1 >> (s2 & 63)
	case SRA:
		e.Value = uint64(int64(s1) >> (s2 & 63))
	case SLT:
		e.Value = b2u(int64(s1) < int64(s2))
	case SLTU:
		e.Value = b2u(s1 < s2)
	case ADDI:
		e.Value = s1 + uint64(in.Imm)
	case ANDI:
		e.Value = s1 & uint64(in.Imm)
	case ORI:
		e.Value = s1 | uint64(in.Imm)
	case XORI:
		e.Value = s1 ^ uint64(in.Imm)
	case SLLI:
		e.Value = s1 << (uint64(in.Imm) & 63)
	case SRLI:
		e.Value = s1 >> (uint64(in.Imm) & 63)
	case SRAI:
		e.Value = uint64(int64(s1) >> (uint64(in.Imm) & 63))
	case MULI:
		e.Value = s1 * uint64(in.Imm)
	case LI:
		e.Value = uint64(in.Imm)

	case FADD:
		e.Value = math.Float64bits(f1 + f2)
	case FSUB:
		e.Value = math.Float64bits(f1 - f2)
	case FMUL:
		e.Value = math.Float64bits(f1 * f2)
	case FDIV:
		if f2 != 0 {
			e.Value = math.Float64bits(f1 / f2)
		}
	case FSQRT:
		if f1 > 0 {
			e.Value = math.Float64bits(math.Sqrt(f1))
		}
	case FNEG:
		e.Value = math.Float64bits(-f1)
	case FABS:
		e.Value = math.Float64bits(math.Abs(f1))
	case FLT:
		e.Value = b2u(f1 < f2)
	case FLE:
		e.Value = b2u(f1 <= f2)
	case FEQ:
		e.Value = b2u(f1 == f2)
	case ITOF:
		e.Value = math.Float64bits(float64(int64(s1)))
	case FTOI:
		e.Value = uint64(int64(f1))

	case LB, LH, LW, LD, FLD:
		e.Addr = s1 + uint64(in.Imm)
		e.Value = c.Mem.Load(e.Addr, in.Op.MemSize())
	case SB, SH, SW, SD, FSD:
		e.Addr = s1 + uint64(in.Imm)
		e.Value = s2
		c.Mem.Store(e.Addr, in.Op.MemSize(), s2)

	case BEQ:
		e.Taken = s1 == s2
	case BNE:
		e.Taken = s1 != s2
	case BLT:
		e.Taken = int64(s1) < int64(s2)
	case BGE:
		e.Taken = int64(s1) >= int64(s2)
	case BLTU:
		e.Taken = s1 < s2
	case BGEU:
		e.Taken = s1 >= s2
	case J:
		e.NextPC = in.Imm
	case JAL:
		e.Value = uint64(c.PC + 1)
		e.NextPC = in.Imm
	case JR:
		e.NextPC = int64(s1)
	case HALT:
		c.Halted = true
		e.NextPC = c.PC
	}

	if in.Op.IsBranch() && e.Taken {
		e.NextPC = in.Imm
	}
	if in.HasDest() {
		c.R[in.Rd] = e.Value
	}
	c.PC = e.NextPC
	c.Retired++
	return e, true
}

// Run executes until the context halts or max instructions have retired,
// returning the number executed. It is the reference "perfect machine" used
// by the architectural-equivalence tests.
func (c *Context) Run(max uint64) uint64 {
	var n uint64
	for n < max {
		if _, ok := c.Step(); !ok {
			break
		}
		n++
	}
	return n
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
