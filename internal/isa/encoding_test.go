package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestProgramRoundTrip(t *testing.T) {
	p := &Program{
		Name:     "round-trip",
		CodeBase: 0x4000,
		Insts: []Inst{
			{Op: LI, Rd: R1, Imm: -12345},
			{Op: ADD, Rd: R2, Rs1: R1, Rs2: R3},
			{Op: FLD, Rd: F4, Rs1: R2, Imm: 64},
			{Op: BEQ, Rs1: R1, Rs2: R2, Imm: 0},
			{Op: HALT},
		},
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.CodeBase != p.CodeBase || len(got.Insts) != len(p.Insts) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Insts {
		if got.Insts[i] != p.Insts[i] {
			t.Errorf("inst %d: %+v != %+v", i, got.Insts[i], p.Insts[i])
		}
	}
}

// Property: any program of valid instructions round-trips exactly.
func TestProgramRoundTripQuick(t *testing.T) {
	f := func(name string, base uint64, raw []struct {
		Op       uint8
		Rd, A, B uint8
		Imm      int64
	}) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		p := &Program{Name: name, CodeBase: base}
		for _, r := range raw {
			p.Insts = append(p.Insts, Inst{
				Op:  Op(r.Op % uint8(numOps)),
				Rd:  Reg(r.Rd % NumRegs),
				Rs1: Reg(r.A % NumRegs),
				Rs2: Reg(r.B % NumRegs),
				Imm: r.Imm,
			})
		}
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadProgram(&buf)
		if err != nil {
			return false
		}
		if got.Name != p.Name || got.CodeBase != p.CodeBase || len(got.Insts) != len(p.Insts) {
			return false
		}
		for i := range p.Insts {
			if got.Insts[i] != p.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadProgramRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01\x00\x00\x00"),
		"truncated": []byte("MTVP\x01\x00\x00"),
	}
	for name, data := range cases {
		if _, err := ReadProgram(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Valid header, invalid opcode.
	p := &Program{Name: "x", Insts: []Inst{{Op: HALT}}}
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	data[len(data)-12] = 0xFF // corrupt the opcode byte
	if _, err := ReadProgram(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "opcode") {
		t.Errorf("bad opcode accepted or wrong error: %v", err)
	}
}
