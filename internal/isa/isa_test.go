package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegFiles(t *testing.T) {
	if R0.IsFP() {
		t.Error("R0 classified as FP")
	}
	if R31.IsFP() {
		t.Error("R31 classified as FP")
	}
	if !F0.IsFP() || !F31.IsFP() {
		t.Error("F0/F31 not classified as FP")
	}
	if F0 != 32 || F31 != 63 {
		t.Errorf("FP register indices wrong: F0=%d F31=%d", F0, F31)
	}
}

func TestOpClasses(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassIntALU}, {SUB, ClassIntALU}, {AND, ClassIntALU},
		{SLT, ClassIntALU}, {ADDI, ClassIntALU}, {LI, ClassIntALU},
		{MUL, ClassIntMul}, {MULI, ClassIntMul},
		{DIV, ClassIntDiv}, {REM, ClassIntDiv},
		{FADD, ClassFPAdd}, {FSUB, ClassFPAdd}, {ITOF, ClassFPAdd},
		{FTOI, ClassFPAdd}, {FLT, ClassFPAdd},
		{FMUL, ClassFPMul},
		{FDIV, ClassFPDiv}, {FSQRT, ClassFPDiv},
		{LB, ClassLoad}, {LH, ClassLoad}, {LW, ClassLoad},
		{LD, ClassLoad}, {FLD, ClassLoad},
		{SB, ClassStore}, {SD, ClassStore}, {FSD, ClassStore},
		{BEQ, ClassBranch}, {BGEU, ClassBranch},
		{J, ClassJump}, {JAL, ClassJump}, {JR, ClassJump},
		{HALT, ClassHalt}, {NOP, ClassNop},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestMemSize(t *testing.T) {
	sizes := map[Op]int{
		LB: 1, LH: 2, LW: 4, LD: 8, FLD: 8,
		SB: 1, SH: 2, SW: 4, SD: 8, FSD: 8,
		ADD: 0, BEQ: 0,
	}
	for op, want := range sizes {
		if got := op.MemSize(); got != want {
			t.Errorf("%v.MemSize() = %d, want %d", op, got, want)
		}
	}
}

func TestSrcRegs(t *testing.T) {
	check := func(in Inst, want ...Reg) {
		t.Helper()
		got := in.SrcRegs(nil)
		if len(got) != len(want) {
			t.Fatalf("%v: srcs %v, want %v", in, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: srcs %v, want %v", in, got, want)
			}
		}
	}
	check(Inst{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3}, R2, R3)
	check(Inst{Op: ADD, Rd: R1, Rs1: R0, Rs2: R3}, R3) // R0 omitted
	check(Inst{Op: ADDI, Rd: R1, Rs1: R2}, R2)
	check(Inst{Op: LI, Rd: R1})
	check(Inst{Op: LD, Rd: R1, Rs1: R2}, R2)
	check(Inst{Op: SD, Rs1: R2, Rs2: R3}, R2, R3)
	check(Inst{Op: BEQ, Rs1: R4, Rs2: R5}, R4, R5)
	check(Inst{Op: JR, Rs1: R9}, R9)
	check(Inst{Op: J})
	check(Inst{Op: HALT})
	check(Inst{Op: FADD, Rd: F1, Rs1: F2, Rs2: F3}, F2, F3)
}

func TestHasDest(t *testing.T) {
	cases := map[bool][]Inst{
		true: {
			{Op: ADD, Rd: R1}, {Op: LI, Rd: R2}, {Op: LD, Rd: R3},
			{Op: JAL, Rd: R31}, {Op: FADD, Rd: F1},
		},
		false: {
			{Op: ADD, Rd: R0}, // writes to R0 are discarded
			{Op: SD}, {Op: BEQ}, {Op: J}, {Op: JR}, {Op: HALT}, {Op: NOP},
		},
	}
	for want, insts := range cases {
		for _, in := range insts {
			if got := in.HasDest(); got != want {
				t.Errorf("%v.HasDest() = %v, want %v", in, got, want)
			}
		}
	}
}

// flatMem is a trivial MemAccess for interpreter tests.
type flatMem map[uint64]byte

func (m flatMem) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m flatMem) Store(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

func runProg(t *testing.T, insts []Inst) *Context {
	t.Helper()
	p := &Program{Name: "t", Insts: insts}
	c := NewContext(p, flatMem{})
	c.Run(10_000)
	if !c.Halted {
		t.Fatalf("program did not halt")
	}
	return c
}

func TestIntArithmetic(t *testing.T) {
	c := runProg(t, []Inst{
		{Op: LI, Rd: R1, Imm: 7},
		{Op: LI, Rd: R2, Imm: -3},
		{Op: ADD, Rd: R3, Rs1: R1, Rs2: R2},  // 4
		{Op: SUB, Rd: R4, Rs1: R1, Rs2: R2},  // 10
		{Op: MUL, Rd: R5, Rs1: R1, Rs2: R1},  // 49
		{Op: SLT, Rd: R6, Rs1: R2, Rs2: R1},  // 1 (signed -3 < 7)
		{Op: SLTU, Rd: R7, Rs1: R2, Rs2: R1}, // 0 (unsigned huge > 7)
		{Op: HALT},
	})
	want := map[Reg]uint64{R3: 4, R4: 10, R5: 49, R6: 1, R7: 0}
	for r, v := range want {
		if c.R[r] != v {
			t.Errorf("R%d = %d, want %d", r, int64(c.R[r]), v)
		}
	}
}

func TestDivByZeroYieldsZero(t *testing.T) {
	c := runProg(t, []Inst{
		{Op: LI, Rd: R1, Imm: 42},
		{Op: DIV, Rd: R2, Rs1: R1, Rs2: R0},
		{Op: REM, Rd: R3, Rs1: R1, Rs2: R0},
		{Op: HALT},
	})
	if c.R[R2] != 0 || c.R[R3] != 0 {
		t.Errorf("div/rem by zero: got %d, %d; want 0, 0", c.R[R2], c.R[R3])
	}
}

func TestR0Hardwired(t *testing.T) {
	c := runProg(t, []Inst{
		{Op: LI, Rd: R0, Imm: 99},
		{Op: ADDI, Rd: R1, Rs1: R0, Imm: 5},
		{Op: HALT},
	})
	if c.R[R0] != 0 {
		t.Errorf("R0 = %d after write, want 0", c.R[R0])
	}
	if c.R[R1] != 5 {
		t.Errorf("R1 = %d, want 5", c.R[R1])
	}
}

func TestFloatOps(t *testing.T) {
	bits := math.Float64bits
	c := runProg(t, []Inst{
		{Op: LI, Rd: R1, Imm: int64(bits(2.5))},
		{Op: LI, Rd: R2, Imm: int64(bits(4.0))},
		{Op: ADDI, Rd: 32 + 1, Rs1: R1}, // F1 = 2.5 via int move
		{Op: ADDI, Rd: 32 + 2, Rs1: R2}, // F2 = 4.0
		{Op: FADD, Rd: F3, Rs1: F1, Rs2: F2},
		{Op: FMUL, Rd: F4, Rs1: F1, Rs2: F2},
		{Op: FSQRT, Rd: F5, Rs1: F2},
		{Op: FLT, Rd: R5, Rs1: F1, Rs2: F2},
		{Op: HALT},
	})
	if got := math.Float64frombits(c.R[F3]); got != 6.5 {
		t.Errorf("fadd = %v, want 6.5", got)
	}
	if got := math.Float64frombits(c.R[F4]); got != 10.0 {
		t.Errorf("fmul = %v, want 10", got)
	}
	if got := math.Float64frombits(c.R[F5]); got != 2.0 {
		t.Errorf("fsqrt = %v, want 2", got)
	}
	if c.R[R5] != 1 {
		t.Errorf("flt = %d, want 1", c.R[R5])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := runProg(t, []Inst{
		{Op: LI, Rd: R1, Imm: 0x1000},
		{Op: LI, Rd: R2, Imm: 0x1122334455667788},
		{Op: SD, Rs1: R1, Rs2: R2, Imm: 8},
		{Op: LD, Rd: R3, Rs1: R1, Imm: 8},
		{Op: LW, Rd: R4, Rs1: R1, Imm: 8},
		{Op: LH, Rd: R5, Rs1: R1, Imm: 8},
		{Op: LB, Rd: R6, Rs1: R1, Imm: 8},
		{Op: HALT},
	})
	if c.R[R3] != 0x1122334455667788 {
		t.Errorf("ld = %#x", c.R[R3])
	}
	if c.R[R4] != 0x55667788 {
		t.Errorf("lw = %#x (sub-word loads zero-extend)", c.R[R4])
	}
	if c.R[R5] != 0x7788 {
		t.Errorf("lh = %#x", c.R[R5])
	}
	if c.R[R6] != 0x88 {
		t.Errorf("lb = %#x", c.R[R6])
	}
}

func TestBranchesAndJumps(t *testing.T) {
	// Loop: sum 1..5 with BNE, then skip over a JAL/JR pair.
	c := runProg(t, []Inst{
		{Op: LI, Rd: R1, Imm: 5},              // 0: counter
		{Op: ADD, Rd: R2, Rs1: R2, Rs2: R1},   // 1: sum += counter
		{Op: ADDI, Rd: R1, Rs1: R1, Imm: -1},  // 2
		{Op: BNE, Rs1: R1, Rs2: R0, Imm: 1},   // 3: loop to 1
		{Op: JAL, Rd: R31, Imm: 6},            // 4: call 6, R31 = 5
		{Op: HALT},                            // 5
		{Op: ADDI, Rd: R3, Rs1: R2, Imm: 100}, // 6: callee
		{Op: JR, Rs1: R31},                    // 7: return to 5
	})
	if c.R[R2] != 15 {
		t.Errorf("loop sum = %d, want 15", c.R[R2])
	}
	if c.R[R3] != 115 {
		t.Errorf("callee result = %d, want 115", c.R[R3])
	}
	if c.R[R31] != 5 {
		t.Errorf("link = %d, want 5", c.R[R31])
	}
}

func TestHaltAndOutOfRange(t *testing.T) {
	p := &Program{Name: "t", Insts: []Inst{{Op: NOP}}}
	c := NewContext(p, flatMem{})
	n := c.Run(100)
	if n != 1 || !c.Halted {
		t.Errorf("run past end: n=%d halted=%v", n, c.Halted)
	}
	if _, ok := c.Step(); ok {
		t.Error("Step on halted context succeeded")
	}
}

// TestForkIsolation: a forked context diverges without touching the parent.
func TestForkIsolation(t *testing.T) {
	p := &Program{Name: "t", Insts: []Inst{
		{Op: ADDI, Rd: R1, Rs1: R1, Imm: 1},
		{Op: J, Imm: 0},
	}}
	parent := NewContext(p, flatMem{})
	parent.Step()
	child := parent.Fork(flatMem{})
	child.SetReg(R1, 100)
	for i := 0; i < 4; i++ {
		child.Step()
	}
	if parent.R[R1] != 1 {
		t.Errorf("parent R1 = %d, want 1", parent.R[R1])
	}
	if child.R[R1] != 102 {
		t.Errorf("child R1 = %d, want 102", child.R[R1])
	}
	if child.Retired != 4 || parent.Retired != 1 {
		t.Errorf("retired counts: parent %d (want 1), child %d (want 4)",
			parent.Retired, child.Retired)
	}
}

// Property: ALU results match direct Go computation for random operands.
func TestALUQuick(t *testing.T) {
	p := &Program{Name: "q", Insts: []Inst{
		{Op: ADD, Rd: R3, Rs1: R1, Rs2: R2},
		{Op: SUB, Rd: R4, Rs1: R1, Rs2: R2},
		{Op: MUL, Rd: R5, Rs1: R1, Rs2: R2},
		{Op: XOR, Rd: R6, Rs1: R1, Rs2: R2},
		{Op: SRL, Rd: R7, Rs1: R1, Rs2: R2},
		{Op: SRA, Rd: R8, Rs1: R1, Rs2: R2},
		{Op: HALT},
	}}
	f := func(a, b uint64) bool {
		c := NewContext(p, flatMem{})
		c.SetReg(R1, a)
		c.SetReg(R2, b)
		c.Run(100)
		return c.R[R3] == a+b &&
			c.R[R4] == a-b &&
			c.R[R5] == a*b &&
			c.R[R6] == a^b &&
			c.R[R7] == a>>(b&63) &&
			c.R[R8] == uint64(int64(a)>>(b&63))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: memory round trips through every access size.
func TestMemRoundTripQuick(t *testing.T) {
	f := func(addr uint64, val uint64, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		addr %= 1 << 40
		m := flatMem{}
		m.Store(addr, size, val)
		got := m.Load(addr, size)
		want := val
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisasmSmoke(t *testing.T) {
	insts := []Inst{
		{Op: ADD, Rd: R1, Rs1: R2, Rs2: R3},
		{Op: LD, Rd: R1, Rs1: R2, Imm: 16},
		{Op: SD, Rs1: R2, Rs2: R3, Imm: -8},
		{Op: BEQ, Rs1: R1, Rs2: R2, Imm: 42},
		{Op: FADD, Rd: F1, Rs1: F2, Rs2: F3},
		{Op: LI, Rd: R9, Imm: 123},
		{Op: JAL, Rd: R31, Imm: 7},
		{Op: JR, Rs1: R31},
		{Op: HALT},
	}
	for _, in := range insts {
		if s := in.String(); s == "" || s == "op?" {
			t.Errorf("bad disasm for %#v: %q", in, s)
		}
	}
}
