package mem

// Rand is a small deterministic xorshift64* generator used to initialise
// workload data and to drive property tests. It is not cryptographic; it
// exists so runs are reproducible without importing math/rand state into
// every package.
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (zero is remapped so the
// generator never sticks at zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Next returns the next 64-bit pseudo-random value.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Uint64n returns a pseudo-random value in [0, n). n must be nonzero.
func (r *Rand) Uint64n(n uint64) uint64 { return r.Next() % n }

// Float64 returns a pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}
