// Package mem provides the flat, sparsely paged physical memory image that
// backs every simulation. Workloads initialise it deterministically; the
// architectural thread's committed stores are its only writers during a run.
package mem

import "encoding/binary"

const (
	pageShift = 12
	// PageSize is the allocation granule of the sparse image.
	PageSize = 1 << pageShift
	pageMask = PageSize - 1
)

// Memory is a sparse 64-bit byte-addressable memory. The zero value is an
// empty memory where every byte reads as zero; pages are allocated on first
// write. Memory implements isa.MemAccess.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// GetByte returns the byte at addr (zero if the page is unallocated).
func (m *Memory) GetByte(addr uint64) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// PutByte stores b at addr, allocating the page if needed.
func (m *Memory) PutByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Load reads size bytes (1, 2, 4, or 8) little-endian starting at addr and
// zero-extends to uint64. Accesses may straddle page boundaries.
func (m *Memory) Load(addr uint64, size int) uint64 {
	// Fast path: aligned 8-byte access within one page.
	if size == 8 && addr&7 == 0 {
		if p := m.page(addr, false); p != nil {
			off := addr & pageMask
			return binary.LittleEndian.Uint64(p[off : off+8])
		}
		return 0
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.GetByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Store writes the low size bytes of val little-endian starting at addr.
func (m *Memory) Store(addr uint64, size int, val uint64) {
	if size == 8 && addr&7 == 0 {
		p := m.page(addr, true)
		off := addr & pageMask
		binary.LittleEndian.PutUint64(p[off:off+8], val)
		return
	}
	for i := 0; i < size; i++ {
		m.PutByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// Pages returns the number of allocated pages (for footprint reporting).
func (m *Memory) Pages() int { return len(m.pages) }

// Clone returns a deep copy of the memory image. The architectural-
// equivalence tests clone the initial image so the reference interpreter and
// the timing simulator run against identical state.
func (m *Memory) Clone() *Memory {
	nm := New()
	for pn, p := range m.pages {
		cp := *p
		nm.pages[pn] = &cp
	}
	return nm
}

// Equal reports whether two memories hold identical contents. Unallocated
// pages compare equal to all-zero pages.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for pn, p := range m.pages {
		op := o.pages[pn]
		if op == nil {
			if *p != ([PageSize]byte{}) {
				return false
			}
			continue
		}
		if *p != *op {
			return false
		}
	}
	return true
}

// Diff returns the address of the first differing byte between m and o, and
// whether any difference exists. It is a test/debug helper.
func (m *Memory) Diff(o *Memory) (uint64, bool) {
	if a, ok := m.diffIn(o); ok {
		return a, true
	}
	return o.diffIn(m)
}

func (m *Memory) diffIn(o *Memory) (uint64, bool) {
	for pn, p := range m.pages {
		base := pn << pageShift
		for i := range p {
			if p[i] != o.GetByte(base+uint64(i)) {
				return base + uint64(i), true
			}
		}
	}
	return 0, false
}
