package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if v := m.Load(0x1234, 8); v != 0 {
		t.Errorf("unwritten memory = %#x, want 0", v)
	}
	if m.Pages() != 0 {
		t.Errorf("reads allocated %d pages", m.Pages())
	}
}

func TestStoreLoadSizes(t *testing.T) {
	m := New()
	m.Store(0x100, 8, 0x1122334455667788)
	for _, c := range []struct {
		size int
		want uint64
	}{{1, 0x88}, {2, 0x7788}, {4, 0x55667788}, {8, 0x1122334455667788}} {
		if got := m.Load(0x100, c.size); got != c.want {
			t.Errorf("load size %d = %#x, want %#x", c.size, got, c.want)
		}
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.Store(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Load(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Errorf("straddling load = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("straddle allocated %d pages, want 2", m.Pages())
	}
}

func TestUnalignedFastPathBypass(t *testing.T) {
	m := New()
	m.Store(0x101, 8, 0x0123456789ABCDEF) // unaligned 8-byte
	if got := m.Load(0x101, 8); got != 0x0123456789ABCDEF {
		t.Errorf("unaligned round trip = %#x", got)
	}
	if got := m.Load(0x100, 1); got != 0 {
		t.Errorf("neighbour byte = %#x, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Store(0x40, 8, 42)
	c := m.Clone()
	c.Store(0x40, 8, 99)
	if m.Load(0x40, 8) != 42 {
		t.Error("clone shares storage with original")
	}
	if c.Load(0x40, 8) != 99 {
		t.Error("clone did not take the write")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := New(), New()
	if !a.Equal(b) {
		t.Error("empty memories unequal")
	}
	a.Store(0x1000, 8, 7)
	if a.Equal(b) {
		t.Error("differing memories compare equal")
	}
	if addr, diff := a.Diff(b); !diff || addr != 0x1000 {
		t.Errorf("Diff = (%#x, %v), want (0x1000, true)", addr, diff)
	}
	b.Store(0x1000, 8, 7)
	if !a.Equal(b) {
		t.Error("identical memories unequal")
	}
	// A page of explicit zeroes equals an unallocated page.
	a.Store(0x999000, 8, 0)
	if !a.Equal(b) {
		t.Error("explicit zero page breaks equality")
	}
}

// Property: Store then Load round-trips at any address and size.
func TestRoundTripQuick(t *testing.T) {
	m := New()
	f := func(addr, val uint64, sel uint8) bool {
		size := []int{1, 2, 4, 8}[sel%4]
		addr %= 1 << 44
		m.Store(addr, size, val)
		want := val
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return m.Load(addr, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the paged memory behaves exactly like a flat map of bytes.
func TestAgainstReferenceQuick(t *testing.T) {
	type op struct {
		Addr uint64
		Val  uint64
		Sel  uint8
	}
	f := func(ops []op) bool {
		m := New()
		ref := map[uint64]byte{}
		for _, o := range ops {
			size := []int{1, 2, 4, 8}[o.Sel%4]
			addr := o.Addr % (1 << 20)
			m.Store(addr, size, o.Val)
			for i := 0; i < size; i++ {
				ref[addr+uint64(i)] = byte(o.Val >> (8 * i))
			}
		}
		for a, b := range ref {
			if byte(m.Load(a, 1)) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Next() == NewRand(2).Next() {
		t.Error("different seeds agree on first value")
	}
	z := NewRand(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}
