package storebuf

import (
	"testing"

	"mtvp/internal/mem"
)

// TestPartialWidthForwarding is the table-driven sub-word forwarding matrix:
// stores and loads of every width and offset combination, layered across an
// overlay over initialised flat memory, must splice bytes exactly.
func TestPartialWidthForwarding(t *testing.T) {
	const base = 0x1000
	cases := []struct {
		name   string
		stores []struct {
			addr uint64
			size int
			val  uint64
		}
		loadAddr uint64
		loadSize int
		want     uint64
	}{
		{
			name: "full-width-hit",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base, 8, 0x1122334455667788}},
			loadAddr: base, loadSize: 8, want: 0x1122334455667788,
		},
		{
			name: "byte-from-middle-of-doubleword",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base, 8, 0x1122334455667788}},
			loadAddr: base + 3, loadSize: 1, want: 0x55,
		},
		{
			name: "half-from-top-of-doubleword",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base, 8, 0x1122334455667788}},
			loadAddr: base + 6, loadSize: 2, want: 0x1122,
		},
		{
			name: "word-from-bottom-of-doubleword",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base, 8, 0x1122334455667788}},
			loadAddr: base, loadSize: 4, want: 0x55667788,
		},
		{
			name: "subword-overwrite-layers",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{
				{base, 8, 0x1111111111111111},
				{base + 2, 2, 0xabcd},
				{base + 3, 1, 0xef},
			},
			loadAddr: base, loadSize: 8, want: 0x11111111efcd1111,
		},
		{
			name: "load-spans-store-and-memory",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base + 4, 4, 0xdeadbeef}},
			loadAddr: base, loadSize: 8, want: 0xdeadbeef_a0a0a0a0,
		},
		{
			name: "load-below-store-untouched",
			stores: []struct {
				addr uint64
				size int
				val  uint64
			}{{base + 8, 8, ^uint64(0)}},
			loadAddr: base, loadSize: 8, want: 0xa0a0a0a0a0a0a0a0,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := mem.New()
			for a := uint64(base) - 16; a < base+32; a++ {
				m.Store(a, 1, 0xa0) // recognisable background
			}
			o := New(m)
			for _, s := range tc.stores {
				o.Store(s.addr, s.size, s.val)
			}
			if got := o.Load(tc.loadAddr, tc.loadSize); got != tc.want {
				t.Fatalf("load [%#x +%d] = %#x, want %#x", tc.loadAddr, tc.loadSize, got, tc.want)
			}
			full, any := o.Covered(tc.loadAddr, tc.loadSize)
			wantAny := false
			for _, s := range tc.stores {
				if s.addr < tc.loadAddr+uint64(tc.loadSize) && tc.loadAddr < s.addr+uint64(s.size) {
					wantAny = true
				}
			}
			if any != wantAny {
				t.Fatalf("Covered any=%v, want %v", any, wantAny)
			}
			if full && !wantAny {
				t.Fatal("Covered reports full coverage with no overlapping store")
			}
		})
	}
}

// TestSameCycleStoreLoad models the same-cycle store→load pair: the
// functional overlay must make a store visible to a program-order-later load
// immediately, with no settling delay, including when only part of the load
// is supplied by the store.
func TestSameCycleStoreLoad(t *testing.T) {
	m := mem.New()
	m.Store(0x2000, 8, 0x0102030405060708)
	o := New(m)

	o.Store(0x2000, 4, 0xcafebabe)
	if got := o.Load(0x2000, 4); got != 0xcafebabe {
		t.Fatalf("same-cycle forward = %#x, want 0xcafebabe", got)
	}
	// The upper half still comes from memory in the same access.
	if got := o.Load(0x2000, 8); got != 0x01020304cafebabe {
		t.Fatalf("merged same-cycle load = %#x, want 0x01020304cafebabe", got)
	}
	// Immediate read-after-write of the freshest value wins over older data.
	o.Store(0x2000, 4, 0x11223344)
	if got := o.Load(0x2000, 8); got != 0x0102030411223344 {
		t.Fatalf("second same-cycle load = %#x, want 0x0102030411223344", got)
	}
}

// TestSpeculativeStoreIsolation walks the spawn lifecycle: before the parent
// commits (collapses), a speculative child's stores are visible only to the
// child and its descendants, never to the parent or flat memory; after
// confirmation they become visible; after a kill they vanish.
func TestSpeculativeStoreIsolation(t *testing.T) {
	const addr = 0x3000
	m := mem.New()
	m.Store(addr, 8, 0x5555)

	root := New(m)
	root.Store(addr+8, 8, 0x7777) // pre-fork parent store

	// Spawn: parent's overlay freezes, parent continues on tops[0], the
	// speculative child on tops[1].
	tops := root.Fork(2)
	parent, child := tops[0], tops[1]

	child.Store(addr, 8, 0xbadbad)
	if got := parent.Load(addr, 8); got != 0x5555 {
		t.Fatalf("child store leaked to parent: %#x", got)
	}
	if got := m.Load(addr, 8); got != 0x5555 {
		t.Fatalf("child store leaked to flat memory: %#x", got)
	}
	if got := child.Load(addr, 8); got != 0xbadbad {
		t.Fatalf("child cannot see its own store: %#x", got)
	}
	// Both sides still see the pre-fork parent store through the chain.
	if got := child.Load(addr+8, 8); got != 0x7777 {
		t.Fatalf("child lost pre-fork parent store: %#x", got)
	}
	if got := parent.Load(addr+8, 8); got != 0x7777 {
		t.Fatalf("parent lost pre-fork store: %#x", got)
	}

	// A grandchild forked from the child sees the child's speculation.
	gtops := child.Fork(2)
	childCont, grand := gtops[0], gtops[1]
	if got := grand.Load(addr, 8); got != 0xbadbad {
		t.Fatalf("grandchild cannot see ancestor speculation: %#x", got)
	}

	// Kill the grandchild: its overlay releases without touching state.
	grand.Release()
	if got := childCont.Load(addr, 8); got != 0xbadbad {
		t.Fatalf("kill of grandchild corrupted child view: %#x", got)
	}

	// Confirm: the parent's path dies, the child collapses its now
	// singly-referenced frozen ancestors and drains to memory.
	parent.Release()
	childCont.Collapse()
	if got := childCont.Load(addr, 8); got != 0xbadbad {
		t.Fatalf("collapse changed the surviving view: %#x", got)
	}
	childCont.DrainTo(m)
	if got := m.Load(addr, 8); got != 0xbadbad {
		t.Fatalf("confirmed store did not reach memory: %#x", got)
	}
	if got := m.Load(addr+8, 8); got != 0x7777 {
		t.Fatalf("pre-fork store lost on drain: %#x", got)
	}
}

// TestKilledChildStoresDiscarded is the mirror image: the parent survives,
// the child dies, and the child's speculative stores must never reach any
// surviving view or memory.
func TestKilledChildStoresDiscarded(t *testing.T) {
	const addr = 0x4000
	m := mem.New()
	m.Store(addr, 8, 0x1234)

	root := New(m)
	tops := root.Fork(2)
	parent, child := tops[0], tops[1]
	child.Store(addr, 8, 0xdead)
	child.Release() // misprediction: child killed

	parent.Collapse()
	if got := parent.Load(addr, 8); got != 0x1234 {
		t.Fatalf("killed child's store visible to parent: %#x", got)
	}
	parent.DrainTo(m)
	if got := m.Load(addr, 8); got != 0x1234 {
		t.Fatalf("killed child's store reached memory: %#x", got)
	}
}

// TestFrozenStorePanics pins the containment guard: writing through a frozen
// (forked-away) overlay is a thread-management bug and must panic rather
// than silently corrupt a shared view.
func TestFrozenStorePanics(t *testing.T) {
	root := New(mem.New())
	root.Fork(2)
	defer func() {
		if recover() == nil {
			t.Fatal("store to frozen overlay did not panic")
		}
	}()
	root.Store(0x100, 8, 1)
}
