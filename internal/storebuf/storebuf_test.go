package storebuf

import (
	"testing"
	"testing/quick"

	"mtvp/internal/mem"
)

func TestOverlayShadowsParent(t *testing.T) {
	m := mem.New()
	m.Store(0x100, 8, 1)
	o := New(m)
	if got := o.Load(0x100, 8); got != 1 {
		t.Errorf("fall-through read = %d, want 1", got)
	}
	o.Store(0x100, 8, 2)
	if got := o.Load(0x100, 8); got != 2 {
		t.Errorf("shadowed read = %d, want 2", got)
	}
	if got := m.Load(0x100, 8); got != 1 {
		t.Errorf("overlay leaked to memory: %d", got)
	}
}

func TestByteGranularMerge(t *testing.T) {
	m := mem.New()
	m.Store(0x200, 8, 0xAAAAAAAAAAAAAAAA)
	o := New(m)
	o.Store(0x200, 1, 0xBB) // overwrite only the low byte
	if got := o.Load(0x200, 8); got != 0xAAAAAAAAAAAAAABB {
		t.Errorf("merged read = %#x", got)
	}
}

func TestForkSemantics(t *testing.T) {
	m := mem.New()
	root := New(m)
	root.Store(0x10, 8, 1)

	tops := root.Fork(2)
	parent, child := tops[0], tops[1]
	if !root.Frozen() {
		t.Error("fork did not freeze the forked overlay")
	}

	parent.Store(0x10, 8, 2) // parent's post-fork write
	child.Store(0x18, 8, 3)  // child's write

	if got := child.Load(0x10, 8); got != 1 {
		t.Errorf("child sees parent's post-fork write: %d", got)
	}
	if got := parent.Load(0x18, 8); got != 0 {
		t.Errorf("parent sees child's write: %d", got)
	}
	if got := child.Load(0x18, 8); got != 3 {
		t.Errorf("child lost its own write: %d", got)
	}
}

func TestStoreToFrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("store to frozen overlay did not panic")
		}
	}()
	o := New(mem.New())
	o.Fork(1)
	o.Store(0, 1, 1)
}

func TestReleaseUnwindsChain(t *testing.T) {
	m := mem.New()
	root := New(m)
	tops := root.Fork(2)
	if root.Refs() != 2 {
		t.Fatalf("fork refs = %d, want 2", root.Refs())
	}
	tops[1].Release() // kill the child path
	if root.Refs() != 1 {
		t.Errorf("after child release, refs = %d, want 1", root.Refs())
	}
	tops[0].Release()
	if root.Refs() != 0 {
		t.Errorf("after both releases, refs = %d, want 0", root.Refs())
	}
}

func TestCollapseFoldsSingleRefAncestors(t *testing.T) {
	m := mem.New()
	root := New(m)
	root.Store(0x10, 8, 1)
	root.Store(0x20, 8, 2)
	tops := root.Fork(2)
	survivor, dead := tops[0], tops[1]
	survivor.Store(0x10, 8, 9) // shadows root's value

	dead.Release()
	survivor.Collapse()
	if survivor.Parent() != m {
		t.Fatal("collapse did not splice out the frozen ancestor")
	}
	if got := survivor.Load(0x10, 8); got != 9 {
		t.Errorf("shadowed value lost: %d", got)
	}
	if got := survivor.Load(0x20, 8); got != 2 {
		t.Errorf("ancestor value lost: %d", got)
	}
}

func TestCollapseStopsAtSharedAncestor(t *testing.T) {
	m := mem.New()
	root := New(m)
	tops := root.Fork(2) // both referents alive
	tops[0].Collapse()
	if tops[0].Parent() != root {
		t.Error("collapse folded an ancestor that another path still uses")
	}
}

func TestDrainTo(t *testing.T) {
	m := mem.New()
	m.Store(0x8, 8, 7)
	root := New(m)
	root.Store(0x10, 8, 1)
	tops := root.Fork(2)
	tops[1].Release()
	top := tops[0]
	top.Store(0x10, 8, 2) // newer write must win the drain
	top.Store(0x18, 8, 3)

	top.DrainTo(m)
	if got := m.Load(0x10, 8); got != 2 {
		t.Errorf("drained value = %d, want 2 (newest wins)", got)
	}
	if got := m.Load(0x18, 8); got != 3 {
		t.Errorf("drained value = %d, want 3", got)
	}
	if got := m.Load(0x8, 8); got != 7 {
		t.Errorf("untouched value clobbered: %d", got)
	}
}

func TestCovered(t *testing.T) {
	o := New(mem.New())
	o.Store(0x100, 4, 0xFFFFFFFF)
	if full, any := o.Covered(0x100, 4); !full || !any {
		t.Errorf("exact range: full=%v any=%v", full, any)
	}
	if full, any := o.Covered(0x100, 8); full || !any {
		t.Errorf("partial range: full=%v any=%v", full, any)
	}
	if full, any := o.Covered(0x200, 8); full || any {
		t.Errorf("uncovered range: full=%v any=%v", full, any)
	}
}

// Property: a chain of overlays with interleaved stores reads back exactly
// like sequential execution against flat memory, and DrainTo reproduces the
// flat image. This is invariant 2 of DESIGN.md.
func TestChainEquivalenceQuick(t *testing.T) {
	type op struct {
		Addr uint64
		Val  uint64
		Sel  uint8
		Fork bool
	}
	f := func(ops []op) bool {
		flat := mem.New() // reference: all stores applied in order
		backing := mem.New()
		top := New(backing) // overlay chain, forked at Fork ops
		for _, o := range ops {
			if o.Fork {
				tops := top.Fork(2)
				tops[1].Release() // simulate the dead sibling path
				top = tops[0]
			}
			size := []int{1, 2, 4, 8}[o.Sel%4]
			addr := o.Addr % 4096
			flat.Store(addr, size, o.Val)
			top.Store(addr, size, o.Val)
		}
		for a := uint64(0); a < 4096; a += 8 {
			if top.Load(a, 8) != flat.Load(a, 8) {
				return false
			}
		}
		top.DrainTo(backing)
		return backing.Equal(flat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: after any fork tree with one surviving leaf, Collapse preserves
// every readable byte.
func TestCollapsePreservesQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		m := mem.New()
		top := New(m)
		for i, v := range vals {
			addr := uint64(i%64) * 8
			top.Store(addr, 8, v)
			if i%3 == 0 {
				tops := top.Fork(2)
				tops[1].Release()
				top = tops[0]
			}
		}
		before := map[uint64]uint64{}
		for a := uint64(0); a < 64*8; a += 8 {
			before[a] = top.Load(a, 8)
		}
		top.Collapse()
		for a, v := range before {
			if top.Load(a, 8) != v {
				return false
			}
		}
		return top.Parent() == m // fully folded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
