// Package storebuf implements the speculative store buffering that makes
// threaded value prediction possible: a spawned thread may commit
// instructions, but its stores must stay buffered — invisible to older
// threads, visible to itself and its descendants — until its value
// prediction is confirmed.
//
// The functional mechanism is a copy-on-write overlay chain. Each hardware
// context executes against its own mutable Overlay; spawning a thread
// freezes the parent's overlay and gives both parent and child fresh
// overlays chained to it. A load walks its chain (newest overlay first) down
// to flat memory, which is exactly the paper's "searched by every load ...
// used in preference to the value stored in memory" semantics, generalised
// to the thread tree.
//
// Timing-level capacity (the 128-entry store buffer of §5.3) is accounted
// separately by the pipeline; overlays carry functional state only.
package storebuf

import (
	"fmt"

	"mtvp/internal/isa"
)

// Overlay is one speculative store buffer: a byte-granular write log over a
// parent memory view. It implements isa.MemAccess.
type Overlay struct {
	parent isa.MemAccess
	data   map[uint64]byte
	frozen bool
	refs   int
	stores uint64
}

// New returns a mutable overlay whose reads fall through to parent. If the
// parent is itself an *Overlay its reference count is incremented.
func New(parent isa.MemAccess) *Overlay {
	if p, ok := parent.(*Overlay); ok {
		p.refs++
	}
	return &Overlay{parent: parent, data: make(map[uint64]byte), refs: 1}
}

// Parent returns the memory view this overlay falls through to.
func (o *Overlay) Parent() isa.MemAccess { return o.parent }

// Frozen reports whether the overlay has been sealed by a fork.
func (o *Overlay) Frozen() bool { return o.frozen }

// Refs returns the number of live referents (owning context plus child
// overlays).
func (o *Overlay) Refs() int { return o.refs }

// Stores returns the number of Store calls applied to this overlay.
func (o *Overlay) Stores() uint64 { return o.stores }

// Bytes returns the number of distinct bytes written.
func (o *Overlay) Bytes() int { return len(o.data) }

// Load reads size bytes little-endian, taking each byte from the newest
// overlay in the chain that has written it.
func (o *Overlay) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(o.loadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

func (o *Overlay) loadByte(addr uint64) byte {
	for cur := o; ; {
		if b, ok := cur.data[addr]; ok {
			return b
		}
		p, ok := cur.parent.(*Overlay)
		if !ok {
			return byte(cur.parent.Load(addr, 1))
		}
		cur = p
	}
}

// Store writes the low size bytes of val. Storing to a frozen overlay is a
// bug in the thread-management logic and panics.
func (o *Overlay) Store(addr uint64, size int, val uint64) {
	if o.frozen {
		panic("storebuf: store to frozen overlay")
	}
	for i := 0; i < size; i++ {
		o.data[addr+uint64(i)] = byte(val >> (8 * i))
	}
	o.stores++
}

// Covered reports how much of [addr, addr+size) the overlay chain (excluding
// flat memory) supplies: full means every byte, any means at least one.
func (o *Overlay) Covered(addr uint64, size int) (full, any bool) {
	full = true
	for i := 0; i < size; i++ {
		if o.coveredByte(addr + uint64(i)) {
			any = true
		} else {
			full = false
		}
	}
	return full, any
}

func (o *Overlay) coveredByte(addr uint64) bool {
	for cur := o; ; {
		if _, ok := cur.data[addr]; ok {
			return true
		}
		p, ok := cur.parent.(*Overlay)
		if !ok {
			return false
		}
		cur = p
	}
}

// Fork seals the overlay and returns n fresh overlays chained to it: one for
// the continuing parent thread and one per spawned child. The receiver keeps
// one reference per returned overlay (the caller's own reference is
// released — contexts move to the new tops).
func (o *Overlay) Fork(n int) []*Overlay {
	o.frozen = true
	o.refs-- // the forking context abandons its direct reference
	tops := make([]*Overlay, n)
	for i := range tops {
		tops[i] = New(o)
	}
	return tops
}

// Release drops one reference. When the last reference to an overlay is
// dropped (a killed speculative path), its parent's reference is dropped in
// turn, unwinding the dead branch of the thread tree.
func (o *Overlay) Release() {
	o.refs--
	if o.refs < 0 {
		panic("storebuf: overlay over-released")
	}
	if o.refs == 0 {
		if p, ok := o.parent.(*Overlay); ok {
			p.Release()
		}
	}
}

// Collapse absorbs frozen, singly-referenced ancestors into this overlay.
// After a prediction resolves and the losing path is released, the fork-point
// overlay has one referent left; folding it upward keeps load chains short.
// The owning context's view is unchanged.
func (o *Overlay) Collapse() {
	for {
		p, ok := o.parent.(*Overlay)
		if !ok || !p.frozen || p.refs != 1 {
			return
		}
		for a, b := range p.data {
			if _, shadowed := o.data[a]; !shadowed {
				o.data[a] = b
			}
		}
		o.parent = p.parent // p's reference to its parent transfers to o
		p.refs = 0
	}
}

// DrainTo writes the overlay chain's contents into dst, oldest overlay
// first, and empties the chain. It is used when the surviving thread's
// speculative state becomes architectural at the end of a run.
func (o *Overlay) DrainTo(dst isa.MemAccess) {
	var chain []*Overlay
	for cur := o; ; {
		chain = append(chain, cur)
		p, ok := cur.parent.(*Overlay)
		if !ok {
			break
		}
		cur = p
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for a, b := range chain[i].data {
			dst.Store(a, 1, uint64(b))
		}
		chain[i].data = make(map[uint64]byte)
	}
}

// CheckChain validates the structural invariants of the overlay chain above
// o: every ancestor must be frozen with a positive reference count, and the
// chain must bottom out at flat memory without a cycle. The pipeline's
// invariant auditor runs it over each live thread's overlay so corruption of
// the speculation tree (e.g. under fault campaigns) is caught as a structured
// failure instead of a wrong value.
func (o *Overlay) CheckChain() error {
	seen := make(map[*Overlay]bool)
	for cur := o; ; {
		if seen[cur] {
			return fmt.Errorf("storebuf: overlay chain cycle")
		}
		seen[cur] = true
		if cur.refs <= 0 {
			return fmt.Errorf("storebuf: overlay in live chain has %d refs", cur.refs)
		}
		if cur != o && !cur.frozen {
			return fmt.Errorf("storebuf: interior overlay not frozen")
		}
		p, ok := cur.parent.(*Overlay)
		if !ok {
			return nil
		}
		cur = p
	}
}

var _ isa.MemAccess = (*Overlay)(nil)
