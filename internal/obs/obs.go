// Package obs is the sweep fabric's causal observability layer: a span
// model for the life of one campaign cell as it crosses the process
// boundary (coordinator → worker → coordinator), a bounded in-memory span
// store, heartbeat-fed fleet time series, and the straggler analytics that
// turn raw spans into "which worker is dragging the p99".
//
// Identity is deterministic by construction. A cell's trace ID is derived
// from (campaign ID, job key) and a span's ID from (trace ID, kind,
// attempt) — no wall clock, no randomness — so the *logical* span DAG of a
// campaign is a pure function of its spec: the same campaign run on one
// worker, on a chaotic four-worker fleet, or reconstructed from a journal
// after a coordinator crash stitches into the same tree (only durations
// differ). That property is golden-tested alongside the fabric's
// byte-identical report tests.
//
// The span vocabulary follows the cell lifecycle:
//
//	cell (root, submit → terminal)
//	└── queue(a)          waiting for lease attempt a
//	    └── lease(a)      granted to one worker, heartbeat-extended
//	        ├── execute(a)  the worker's simulation run (worker-reported,
//	        │               clamped into the coordinator's lease window)
//	        └── report(a)   the result delivery
//	├── verify            vote collection under -verify/spot-checks
//	│   └── vote(i)       one worker's attestation digest
//	└── journal           the fsynced checkpoint write
//
// Spans of the attempt that won the cell are marked Final; the canonical
// DAG (dag.go) is defined over those.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies a span within the cell lifecycle.
type Kind string

// Span kinds, in lifecycle order.
const (
	KindCell    Kind = "cell"    // root: submit → terminal state
	KindQueue   Kind = "queue"   // waiting for a lease
	KindLease   Kind = "lease"   // granted to a worker, heartbeat-extended
	KindExecute Kind = "execute" // the worker's simulation run
	KindReport  Kind = "report"  // result delivery back to the coordinator
	KindVerify  Kind = "verify"  // attestation vote collection (quorums, spot checks)
	KindVote    Kind = "vote"    // one worker's attestation vote
	KindJournal Kind = "journal" // the fsynced checkpoint write
)

// Span statuses.
const (
	StatusOK        = "ok"
	StatusError     = "error"
	StatusExpired   = "expired"   // lease lost to heartbeat expiry
	StatusReleased  = "released"  // lease handed back by a draining worker
	StatusCorrupt   = "corrupt"   // result rejected by attestation
	StatusFailed    = "failed"    // cell exhausted its retry budget
	StatusCancelled = "cancelled" // campaign cancelled
)

// TraceID derives a cell's deterministic trace identity from its campaign
// ID and job key. No wall clock or randomness participates: resubmitting,
// resuming, or re-running the same campaign yields the same trace IDs.
func TraceID(campaign, key string) string {
	h := sha256.New()
	// Length-prefixed fields (like the fabric's attestation digest) so no
	// concatenation of adjacent fields can collide.
	fmt.Fprintf(h, "mtvp-trace:%d:%s:%d:%s", len(campaign), campaign, len(key), key)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// SpanID derives a span's deterministic identity within its trace from the
// span kind and attempt ordinal (0 for the singleton cell/verify/journal
// spans, the lease attempt number otherwise, the vote ordinal for votes).
func SpanID(trace string, kind Kind, attempt int) string {
	h := sha256.New()
	fmt.Fprintf(h, "mtvp-span:%d:%s:%d:%s:%d", len(trace), trace, len(kind), kind, attempt)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Span is one interval (or instant, Start == End) in a cell's timeline.
// Identity fields (Trace, ID, Parent, Kind, Key, Attempt) are deterministic
// functions of the campaign spec; times, worker attribution, and progress
// counters describe the particular run.
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Key    string `json:"key"`
	// Worker attributes worker-side spans (lease/execute/report/vote) to a
	// fleet agent; coordinator-side spans leave it empty.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	Start time.Time `json:"start"`
	// End is zero while the span is open (Perfetto renders open spans as
	// running to the end of the trace).
	End    time.Time `json:"end,omitzero"`
	Status string    `json:"status,omitempty"`

	// Cycles/Commits carry the simulated progress the span covered
	// (heartbeat-fed on lease spans, final counts on execute spans).
	Cycles  uint64 `json:"cycles,omitempty"`
	Commits uint64 `json:"commits,omitempty"`

	// Note carries human-readable context: requeue reasons, vote digests,
	// quorum outcomes.
	Note string `json:"note,omitempty"`

	// Final marks the spans of the attempt that won the cell — the
	// canonical path the logical-DAG golden tests compare.
	Final bool `json:"final,omitempty"`
}

// DurationMS returns the span's wall duration in milliseconds (0 while
// open).
func (s *Span) DurationMS() float64 {
	if s.End.IsZero() || s.End.Before(s.Start) {
		return 0
	}
	return float64(s.End.Sub(s.Start)) / float64(time.Millisecond)
}

// Trace is one campaign's bounded in-memory span store. All methods are
// safe for concurrent use (the coordinator mutates under its own lock; the
// HTTP trace/timeline endpoints read concurrently). When the store is
// full, new spans are counted as dropped rather than evicting history —
// the journal keeps the durable copy, and the Dropped count makes the
// truncation visible instead of silent.
type Trace struct {
	mu       sync.Mutex
	campaign string
	limit    int
	order    []string
	byID     map[string]*Span
	dropped  int
}

// DefaultSpanLimit bounds a campaign's span store when no explicit limit is
// configured: 8 spans per cell covers the canonical 6-span path plus a
// couple of requeues, floored so small campaigns still absorb churn.
func DefaultSpanLimit(cells int) int {
	limit := 8 * cells
	if limit < 1024 {
		limit = 1024
	}
	return limit
}

// NewTrace returns an empty span store for one campaign holding at most
// limit spans (<=0 selects DefaultSpanLimit for 0 cells, i.e. 1024).
func NewTrace(campaign string, limit int) *Trace {
	if limit <= 0 {
		limit = DefaultSpanLimit(0)
	}
	return &Trace{campaign: campaign, limit: limit, byID: map[string]*Span{}}
}

// Campaign returns the campaign ID the store belongs to.
func (t *Trace) Campaign() string { return t.campaign }

// Start upserts a span: a new ID is inserted (dropped if the store is
// full), a known ID is overwritten in place (journal reload seeding an
// already-open span, or an attempt-number reuse after resume).
func (t *Trace) Start(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.byID[s.ID]; ok {
		*old = s
		return
	}
	if len(t.order) >= t.limit {
		t.dropped++
		return
	}
	cp := s
	t.byID[s.ID] = &cp
	t.order = append(t.order, s.ID)
}

// End closes an open span with its terminal status. Unknown or already
// closed spans are left untouched (the span may have been dropped at the
// store bound, or journal-reloaded closed).
func (t *Trace) End(id string, end time.Time, status string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok && s.End.IsZero() {
		s.End = end
		s.Status = status
	}
}

// Update applies f to the span with the given ID, if present.
func (t *Trace) Update(id string, f func(*Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok {
		f(s)
	}
}

// Seed bulk-loads journaled spans (crash resume). Seeded spans upsert by
// ID, so reloading on top of a fresh install replaces the placeholder
// root/queue spans with the journaled truth.
func (t *Trace) Seed(spans []Span) {
	for _, s := range spans {
		t.Start(s)
	}
}

// Snapshot returns copies of every stored span in insertion order.
func (t *Trace) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, *t.byID[id])
	}
	return out
}

// CellSpans returns copies of the spans belonging to one cell key, in
// insertion order.
func (t *Trace) CellSpans(key string) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, id := range t.order {
		if s := t.byID[id]; s.Key == key {
			out = append(out, *s)
		}
	}
	return out
}

// EndOpen closes every still-open span with the given status (campaign
// cancellation).
func (t *Trace) EndOpen(end time.Time, status string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range t.order {
		if s := t.byID[id]; s.End.IsZero() {
			s.End = end
			s.Status = status
		}
	}
}

// Dropped returns how many spans were discarded at the store bound.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of stored spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// kindOrder ranks span kinds in lifecycle order for deterministic sorting.
var kindOrder = map[Kind]int{
	KindCell: 0, KindQueue: 1, KindLease: 2, KindExecute: 3,
	KindReport: 4, KindVerify: 5, KindVote: 6, KindJournal: 7,
}

// SortCanonical orders spans deterministically by (key, attempt, lifecycle
// kind, id) — the order exports and golden tests use, independent of
// insertion interleaving across workers.
func SortCanonical(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		if ka, kb := kindOrder[a.Kind], kindOrder[b.Kind]; ka != kb {
			return ka < kb
		}
		return a.ID < b.ID
	})
}
