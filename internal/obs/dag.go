package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one vertex of a logical span DAG: identity and parentage only,
// no times, no worker attribution. Two runs of the same campaign — local,
// one worker, or a chaotic fleet — must produce equal node sets over their
// final (winning-attempt) spans.
type Node struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Key    string `json:"key"`
}

// CanonicalDAG predicts the logical span DAG of a campaign that completes
// every cell on its first attempt: per cell, the root span, one queue and
// one lease for attempt 1, the execute and report children, and the
// journal checkpoint. This is the "local run" reference the determinism
// golden test compares fleet runs against.
func CanonicalDAG(campaign string, keys []string) []Node {
	var nodes []Node
	for _, key := range keys {
		tr := TraceID(campaign, key)
		root := SpanID(tr, KindCell, 0)
		lease := SpanID(tr, KindLease, 1)
		nodes = append(nodes,
			Node{ID: root, Kind: KindCell, Key: key},
			Node{ID: SpanID(tr, KindQueue, 1), Parent: root, Kind: KindQueue, Key: key},
			Node{ID: lease, Parent: root, Kind: KindLease, Key: key},
			Node{ID: SpanID(tr, KindExecute, 1), Parent: lease, Kind: KindExecute, Key: key},
			Node{ID: SpanID(tr, KindReport, 1), Parent: lease, Kind: KindReport, Key: key},
			Node{ID: SpanID(tr, KindJournal, 0), Parent: root, Kind: KindJournal, Key: key},
		)
	}
	sortNodes(nodes)
	return nodes
}

// LogicalDAG projects recorded spans onto their logical DAG, keeping only
// Final spans (the winning attempt's path) so requeues, lost leases, and
// quorum churn — which legitimately vary run to run — drop out. With
// renumber set, the winning attempt is renumbered to 1 so a cell that
// succeeded on attempt 3 after two worker deaths still matches the
// canonical first-attempt DAG (the *IDs* of churned attempts differ, but
// the logical shape does not).
func LogicalDAG(spans []Span, renumber bool) []Node {
	var nodes []Node
	for i := range spans {
		s := &spans[i]
		if !s.Final {
			continue
		}
		id, parent := s.ID, s.Parent
		if renumber && s.Attempt > 1 {
			tr := s.Trace
			root := SpanID(tr, KindCell, 0)
			switch s.Kind {
			case KindQueue:
				id, parent = SpanID(tr, KindQueue, 1), root
			case KindLease:
				id, parent = SpanID(tr, KindLease, 1), root
			case KindExecute:
				id, parent = SpanID(tr, KindExecute, 1), SpanID(tr, KindLease, 1)
			case KindReport:
				id, parent = SpanID(tr, KindReport, 1), SpanID(tr, KindLease, 1)
			}
		}
		nodes = append(nodes, Node{ID: id, Parent: parent, Kind: s.Kind, Key: s.Key})
	}
	sortNodes(nodes)
	return nodes
}

func sortNodes(nodes []Node) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Key != nodes[j].Key {
			return nodes[i].Key < nodes[j].Key
		}
		if ka, kb := kindOrder[nodes[i].Kind], kindOrder[nodes[j].Kind]; ka != kb {
			return ka < kb
		}
		return nodes[i].ID < nodes[j].ID
	})
}

// DiffDAG returns a human-readable description of the first differences
// between two logical DAGs ("" when equal). Used by the determinism golden
// tests to print actionable failures.
func DiffDAG(want, got []Node) string {
	index := func(ns []Node) map[string]Node {
		m := make(map[string]Node, len(ns))
		for _, n := range ns {
			m[n.ID] = n
		}
		return m
	}
	wi, gi := index(want), index(got)
	var b strings.Builder
	for _, n := range want {
		g, ok := gi[n.ID]
		if !ok {
			fmt.Fprintf(&b, "missing %s span %s for %q\n", n.Kind, n.ID, n.Key)
			continue
		}
		if g.Parent != n.Parent || g.Kind != n.Kind || g.Key != n.Key {
			fmt.Fprintf(&b, "span %s: want %+v, got %+v\n", n.ID, n, g)
		}
	}
	for _, n := range got {
		if _, ok := wi[n.ID]; !ok {
			fmt.Fprintf(&b, "unexpected %s span %s for %q\n", n.Kind, n.ID, n.Key)
		}
	}
	if b.Len() == 0 && len(want) != len(got) {
		fmt.Fprintf(&b, "node count: want %d, got %d\n", len(want), len(got))
	}
	return b.String()
}
