package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Point is one sample in a fleet time series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Series is a bounded append-only time series. When the store fills it
// halves itself by dropping every other point and doubles the keep stride,
// so a long campaign keeps full history at progressively coarser
// resolution instead of losing either its head or its tail.
type Series struct {
	mu     sync.Mutex
	name   string
	limit  int
	stride int
	skip   int
	pts    []Point
}

// NewSeries returns a bounded series holding at most limit points
// (<=0 selects 512).
func NewSeries(name string, limit int) *Series {
	if limit <= 0 {
		limit = 512
	}
	if limit < 8 {
		limit = 8
	}
	return &Series{name: name, limit: limit, stride: 1}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Add appends a sample, decimating (stride-doubling) when full.
func (s *Series) Add(t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.stride - 1
	if len(s.pts) >= s.limit {
		kept := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			kept = append(kept, s.pts[i])
		}
		s.pts = kept
		s.stride *= 2
		s.skip = s.stride - 1
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Snapshot returns a copy of the stored points in time order.
func (s *Series) Snapshot() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	return out
}

// Digest is a bounded reservoir of duration samples (milliseconds)
// supporting quantile queries. Below the bound it is exact; above it,
// samples overwrite slots round-robin, biasing toward recency — good
// enough for straggler attribution, cheap enough to keep per worker.
type Digest struct {
	mu    sync.Mutex
	limit int
	n     uint64
	sum   float64
	max   float64
	buf   []float64
	next  int
}

// NewDigest returns a digest keeping at most limit samples (<=0 selects
// 256).
func NewDigest(limit int) *Digest {
	if limit <= 0 {
		limit = 256
	}
	return &Digest{limit: limit}
}

// Add records one duration sample in milliseconds.
func (d *Digest) Add(ms float64) {
	if math.IsNaN(ms) || ms < 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	d.sum += ms
	if ms > d.max {
		d.max = ms
	}
	if len(d.buf) < d.limit {
		d.buf = append(d.buf, ms)
		return
	}
	d.buf[d.next] = ms
	d.next = (d.next + 1) % d.limit
}

// Count returns the number of samples ever added.
func (d *Digest) Count() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// Mean returns the exact mean over all samples ever added (0 when empty).
func (d *Digest) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Max returns the largest sample ever added.
func (d *Digest) Max() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Quantile returns the q-th quantile (0..1) over the retained window,
// 0 when empty.
func (d *Digest) Quantile(q float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return 0
	}
	tmp := make([]float64, len(d.buf))
	copy(tmp, d.buf)
	sort.Float64s(tmp)
	if q <= 0 {
		return tmp[0]
	}
	if q >= 1 {
		return tmp[len(tmp)-1]
	}
	idx := int(math.Ceil(q*float64(len(tmp)))) - 1
	if idx < 0 {
		idx = 0
	}
	return tmp[idx]
}
