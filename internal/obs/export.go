package obs

import (
	"io"
	"sort"
	"time"

	"mtvp/internal/telemetry"
)

// Track assignment for the campaign trace: the coordinator's own spans
// (cell roots, queues, verify/vote bookkeeping, journal writes) render on
// tid 0; each worker gets its own track, sorted by name, holding the
// lease/execute/report spans it owned. Flow arrows stitch the cross-track
// causality: queue→lease when a cell leaves the coordinator's queue for a
// worker, and report→journal when the result lands back.
const coordinatorTID = 0

// WriteTrace streams the campaign's spans as Chrome trace-event JSON to w,
// reusing the telemetry TraceWriter (same document shape as the pipeline
// Perfetto exporter). end anchors still-open spans; pass the current time
// for a live campaign. Span times are exported at microsecond resolution
// relative to the earliest span start, so traces from any wall-clock epoch
// load cleanly.
func WriteTrace(w io.Writer, name string, spans []Span, end time.Time) error {
	tw := telemetry.NewTraceWriter(w)

	spans = append([]Span(nil), spans...)
	SortCanonical(spans)

	// Earliest start anchors ts 0.
	var epoch time.Time
	for i := range spans {
		if epoch.IsZero() || spans[i].Start.Before(epoch) {
			epoch = spans[i].Start
		}
	}
	ts := func(t time.Time) int64 {
		if t.Before(epoch) {
			return 0
		}
		return t.Sub(epoch).Microseconds()
	}

	// Assign worker tracks in sorted-name order.
	workerSet := map[string]bool{}
	for i := range spans {
		if w := spans[i].Worker; w != "" {
			workerSet[w] = true
		}
	}
	workers := make([]string, 0, len(workerSet))
	for w := range workerSet {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	tidOf := map[string]int{"": coordinatorTID}
	for i, w := range workers {
		tidOf[w] = coordinatorTID + 1 + i
	}

	tw.Emit(telemetry.TraceEvent{Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "campaign " + name}})
	tw.Emit(telemetry.TraceEvent{Name: "thread_name", Ph: "M", PID: 0, TID: coordinatorTID,
		Args: map[string]any{"name": "coordinator"}})
	tw.Emit(telemetry.TraceEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: coordinatorTID,
		Args: map[string]any{"sort_index": 0}})
	for i, w := range workers {
		tid := coordinatorTID + 1 + i
		tw.Emit(telemetry.TraceEvent{Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": "worker " + w}})
		tw.Emit(telemetry.TraceEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"sort_index": tid}})
	}

	// Flow arrow ids must be unique per flow; derive from span insertion
	// order so they are stable.
	flowID := int64(0)
	for i := range spans {
		s := &spans[i]
		tid := tidOf[s.Worker]
		if s.Kind == KindCell || s.Kind == KindQueue || s.Kind == KindVerify || s.Kind == KindJournal {
			tid = coordinatorTID // coordinator bookkeeping, regardless of attribution
		}
		args := map[string]any{
			"trace": s.Trace, "span": s.ID, "key": s.Key, "status": s.Status,
		}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if s.Attempt > 0 {
			args["attempt"] = s.Attempt
		}
		if s.Worker != "" {
			args["worker"] = s.Worker
		}
		if s.Cycles > 0 {
			args["cycles"] = s.Cycles
		}
		if s.Commits > 0 {
			args["commits"] = s.Commits
		}
		if s.Note != "" {
			args["note"] = s.Note
		}
		if s.Final {
			args["final"] = true
		}

		label := string(s.Kind) + " " + s.Key
		cat := string(s.Kind)
		switch {
		case s.Start.Equal(s.End):
			tw.Emit(telemetry.TraceEvent{Name: label, Ph: "i", TS: ts(s.Start),
				PID: 0, TID: tid, Cat: cat, S: "t", Args: args})
		case s.End.IsZero():
			// Still open: a complete event up to the anchor so mid-run
			// scrapes remain one well-formed document.
			dur := int64(0)
			if !end.IsZero() {
				dur = ts(end) - ts(s.Start)
			}
			if dur < 0 {
				dur = 0
			}
			args["open"] = true
			tw.Emit(telemetry.TraceEvent{Name: label, Ph: "X", TS: ts(s.Start),
				Dur: dur, PID: 0, TID: tid, Cat: cat, Args: args})
		default:
			tw.Emit(telemetry.TraceEvent{Name: label, Ph: "X", TS: ts(s.Start),
				Dur: ts(s.End) - ts(s.Start), PID: 0, TID: tid, Cat: cat, Args: args})
		}

		// Flow arrows for the cross-track hops: queue→lease (cell leaves
		// the coordinator for a worker) and report→journal (result lands
		// back). Emitted as s/f pairs anchored at the handoff instants.
		if s.Kind == KindLease && s.Worker != "" {
			flowID++
			tw.Emit(telemetry.TraceEvent{Name: "dispatch", Ph: "s", TS: ts(s.Start),
				PID: 0, TID: coordinatorTID, Cat: "flow", ID: flowID})
			tw.Emit(telemetry.TraceEvent{Name: "dispatch", Ph: "f", BP: "e", TS: ts(s.Start),
				PID: 0, TID: tid, Cat: "flow", ID: flowID})
			if !s.End.IsZero() && s.Status == StatusOK {
				flowID++
				tw.Emit(telemetry.TraceEvent{Name: "result", Ph: "s", TS: ts(s.End),
					PID: 0, TID: tid, Cat: "flow", ID: flowID})
				tw.Emit(telemetry.TraceEvent{Name: "result", Ph: "f", BP: "e", TS: ts(s.End),
					PID: 0, TID: coordinatorTID, Cat: "flow", ID: flowID})
			}
		}
	}

	return tw.Close()
}
