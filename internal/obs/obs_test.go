package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestIDsDeterministicAndDistinct(t *testing.T) {
	tr1 := TraceID("campaign-a", "fig1/mcf/mtvp4")
	tr2 := TraceID("campaign-a", "fig1/mcf/mtvp4")
	if tr1 != tr2 {
		t.Fatalf("TraceID not deterministic: %q vs %q", tr1, tr2)
	}
	if len(tr1) != 16 {
		t.Fatalf("TraceID length = %d, want 16", len(tr1))
	}
	seen := map[string]string{}
	for _, campaign := range []string{"a", "b"} {
		for _, key := range []string{"k1", "k2"} {
			id := TraceID(campaign, key)
			if prev, dup := seen[id]; dup {
				t.Fatalf("TraceID collision: %s for %s/%s and %s", id, campaign, key, prev)
			}
			seen[id] = campaign + "/" + key
		}
	}
	// Separator injection must not collide: ("a\x00b","c") vs ("a","b\x00c").
	if TraceID("a\x00b", "c") == TraceID("a", "b\x00c") {
		t.Fatal("TraceID separator injection collision")
	}
	s1 := SpanID(tr1, KindLease, 1)
	s2 := SpanID(tr1, KindLease, 2)
	s3 := SpanID(tr1, KindQueue, 1)
	if s1 == s2 || s1 == s3 || s2 == s3 {
		t.Fatalf("SpanID collisions: %s %s %s", s1, s2, s3)
	}
	if s1 != SpanID(tr1, KindLease, 1) {
		t.Fatal("SpanID not deterministic")
	}
}

func TestTraceStoreBoundAndUpsert(t *testing.T) {
	tr := NewTrace("c", 3)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tr.Start(Span{ID: SpanID("t", KindQueue, i), Kind: KindQueue, Key: "k", Start: base})
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (bounded)", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// Upsert on a known ID replaces in place even when full.
	id := SpanID("t", KindQueue, 0)
	tr.Start(Span{ID: id, Kind: KindQueue, Key: "k2", Start: base})
	found := false
	for _, s := range tr.Snapshot() {
		if s.ID == id {
			found = true
			if s.Key != "k2" {
				t.Fatalf("upsert did not replace: key %q", s.Key)
			}
		}
	}
	if !found {
		t.Fatal("upserted span missing from snapshot")
	}
	// End closes open spans once; later Ends do not overwrite.
	tr.End(id, base.Add(time.Second), StatusOK)
	tr.End(id, base.Add(2*time.Second), StatusError)
	for _, s := range tr.CellSpans("k2") {
		if s.ID == id {
			if s.Status != StatusOK || !s.End.Equal(base.Add(time.Second)) {
				t.Fatalf("End overwrote closed span: %+v", s)
			}
		}
	}
}

func TestTraceEndOpenAndSeed(t *testing.T) {
	tr := NewTrace("c", 0)
	base := time.Unix(1000, 0)
	tr.Start(Span{ID: "a", Kind: KindCell, Key: "k", Start: base})
	tr.Start(Span{ID: "b", Kind: KindQueue, Key: "k", Start: base})
	tr.End("b", base.Add(time.Second), StatusOK)
	tr.EndOpen(base.Add(5*time.Second), StatusCancelled)
	snap := tr.Snapshot()
	for _, s := range snap {
		switch s.ID {
		case "a":
			if s.Status != StatusCancelled {
				t.Fatalf("open span not cancelled: %+v", s)
			}
		case "b":
			if s.Status != StatusOK {
				t.Fatalf("closed span overwritten: %+v", s)
			}
		}
	}
	// Seeding into a fresh store reproduces the snapshot (journal resume).
	tr2 := NewTrace("c", 0)
	tr2.Seed(snap)
	if got := len(tr2.Snapshot()); got != len(snap) {
		t.Fatalf("seeded %d spans, got %d", len(snap), got)
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := NewSeries("rate", 8)
	base := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		s.Add(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	pts := s.Snapshot()
	if len(pts) > 8 {
		t.Fatalf("series exceeded bound: %d points", len(pts))
	}
	if len(pts) < 2 {
		t.Fatalf("series over-decimated: %d points", len(pts))
	}
	// Time-ordered, spanning early to late.
	for i := 1; i < len(pts); i++ {
		if !pts[i].T.After(pts[i-1].T) {
			t.Fatalf("series out of order at %d", i)
		}
	}
	if pts[0].V != 0 {
		t.Fatalf("lost series head: first point %v", pts[0])
	}
	if pts[len(pts)-1].V < 50 {
		t.Fatalf("lost series tail: last point %v", pts[len(pts)-1])
	}
}

func TestDigestQuantiles(t *testing.T) {
	d := NewDigest(1000)
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Quantile(0.5); got < 45 || got > 55 {
		t.Fatalf("p50 = %v, want ~50", got)
	}
	if got := d.Quantile(0.99); got < 95 || got > 100 {
		t.Fatalf("p99 = %v, want ~99", got)
	}
	if got := d.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if got := d.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
	if got := d.Count(); got != 100 {
		t.Fatalf("count = %v, want 100", got)
	}
	// Bound respected; mean stays exact past the bound.
	small := NewDigest(4)
	for i := 1; i <= 100; i++ {
		small.Add(float64(i))
	}
	if got := small.Mean(); got != 50.5 {
		t.Fatalf("bounded mean = %v, want 50.5", got)
	}
	// NaN and negatives ignored.
	before := d.Count()
	d.Add(-1)
	if d.Count() != before {
		t.Fatal("negative sample accepted")
	}
}

// buildRun fabricates a two-cell campaign's spans: cell k1 done by worker
// w-fast in 10ms, cell k2 done by w-slow in 100ms after one requeue.
func buildRun(campaign string) []Span {
	base := time.Unix(2000, 0)
	mk := func(key string, kind Kind, attempt int, parentKind Kind, parentAttempt int, worker string, start, end time.Duration, status string, final bool) Span {
		trc := TraceID(campaign, key)
		var parent string
		if parentKind != "" {
			parent = SpanID(trc, parentKind, parentAttempt)
		}
		s := Span{
			Trace: trc, ID: SpanID(trc, kind, attempt), Parent: parent,
			Kind: kind, Key: key, Worker: worker, Attempt: attempt,
			Start: base.Add(start), Status: status, Final: final,
		}
		if end >= 0 {
			s.End = base.Add(end)
		}
		return s
	}
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Span{
		// k1: clean first-attempt completion on w-fast.
		mk("k1", KindCell, 0, "", 0, "", 0, ms(15), StatusOK, true),
		mk("k1", KindQueue, 1, KindCell, 0, "", 0, ms(2), StatusOK, true),
		mk("k1", KindLease, 1, KindCell, 0, "w-fast", ms(2), ms(12), StatusOK, true),
		mk("k1", KindExecute, 1, KindLease, 1, "w-fast", ms(3), ms(11), StatusOK, true),
		mk("k1", KindReport, 1, KindLease, 1, "w-fast", ms(11), ms(12), StatusOK, true),
		mk("k1", KindJournal, 0, KindCell, 0, "", ms(12), ms(15), StatusOK, true),
		// k2: attempt 1 expired on w-slow, attempt 2 succeeded on w-slow.
		mk("k2", KindCell, 0, "", 0, "", 0, ms(130), StatusOK, true),
		mk("k2", KindQueue, 1, KindCell, 0, "", 0, ms(5), StatusOK, false),
		mk("k2", KindLease, 1, KindCell, 0, "w-slow", ms(5), ms(20), StatusExpired, false),
		mk("k2", KindQueue, 2, KindCell, 0, "", ms(20), ms(25), StatusOK, true),
		mk("k2", KindLease, 2, KindCell, 0, "w-slow", ms(25), ms(125), StatusOK, true),
		mk("k2", KindExecute, 2, KindLease, 2, "w-slow", ms(26), ms(120), StatusOK, true),
		mk("k2", KindReport, 2, KindLease, 2, "w-slow", ms(120), ms(125), StatusOK, true),
		mk("k2", KindJournal, 0, KindCell, 0, "", ms(125), ms(130), StatusOK, true),
	}
}

func TestAnalyzeStragglers(t *testing.T) {
	rep := Analyze(buildRun("c"), 10, time.Time{})
	if rep.Cells != 2 {
		t.Fatalf("cells = %d, want 2", rep.Cells)
	}
	if got := rep.Slowest(); got != "w-slow" {
		t.Fatalf("Slowest = %q, want w-slow", got)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(rep.Workers))
	}
	// Sorted by slowdown descending: w-slow first.
	if rep.Workers[0].Name != "w-slow" || rep.Workers[0].Slowdown <= rep.Workers[1].Slowdown {
		t.Fatalf("worker order wrong: %+v", rep.Workers)
	}
	if rep.Workers[0].Slowdown <= 1 {
		t.Fatalf("w-slow slowdown = %v, want > 1", rep.Workers[0].Slowdown)
	}
	// Tail: k2 is the slowest cell, attributed to w-slow with a requeue.
	if len(rep.Tail) != 2 || rep.Tail[0].Key != "k2" {
		t.Fatalf("tail = %+v", rep.Tail)
	}
	tc := rep.Tail[0]
	if tc.Worker != "w-slow" || tc.Attempts != 2 || tc.Requeues != 1 {
		t.Fatalf("tail cell attribution: %+v", tc)
	}
	if tc.ExecMS <= 0 || tc.QueueMS <= 0 || tc.TotalMS < tc.ExecMS {
		t.Fatalf("tail cell breakdown: %+v", tc)
	}
	// k limits the tail.
	if got := Analyze(buildRun("c"), 1, time.Time{}); len(got.Tail) != 1 {
		t.Fatalf("k=1 tail = %d", len(got.Tail))
	}
}

func TestAnalyzeOpenSpansUseNow(t *testing.T) {
	base := time.Unix(2000, 0)
	trc := TraceID("c", "k")
	spans := []Span{
		{Trace: trc, ID: SpanID(trc, KindCell, 0), Kind: KindCell, Key: "k", Start: base},
		{Trace: trc, ID: SpanID(trc, KindLease, 1), Kind: KindLease, Key: "k",
			Worker: "w", Attempt: 1, Start: base},
	}
	rep := Analyze(spans, 5, base.Add(2*time.Second))
	if len(rep.Workers) != 1 || rep.Workers[0].MeanMS < 1900 {
		t.Fatalf("open lease not measured to now: %+v", rep.Workers)
	}
}

func TestCanonicalAndLogicalDAGMatch(t *testing.T) {
	campaign := "deadbeef"
	keys := []string{"k1", "k2"}
	want := CanonicalDAG(campaign, keys)
	// 6 spans per cell.
	if len(want) != 12 {
		t.Fatalf("canonical nodes = %d, want 12", len(want))
	}
	got := LogicalDAG(buildRun(campaign), true)
	if diff := DiffDAG(want, got); diff != "" {
		t.Fatalf("DAG mismatch:\n%s", diff)
	}
	// Without renumbering, k2's attempt-2 path keeps its own IDs and the
	// DAGs differ.
	raw := LogicalDAG(buildRun(campaign), false)
	if diff := DiffDAG(want, raw); diff == "" {
		t.Fatal("expected mismatch without renumbering")
	}
}

func TestDiffDAGReportsDifferences(t *testing.T) {
	a := CanonicalDAG("c", []string{"k1"})
	b := CanonicalDAG("c", []string{"k2"})
	diff := DiffDAG(a, b)
	if !strings.Contains(diff, "missing") || !strings.Contains(diff, "unexpected") {
		t.Fatalf("diff did not describe both sides:\n%s", diff)
	}
}

func TestWriteTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	spans := buildRun("c")
	// Add one open span to exercise the live-scrape path.
	trc := TraceID("c", "k3")
	spans = append(spans,
		Span{Trace: trc, ID: SpanID(trc, KindCell, 0), Kind: KindCell, Key: "k3",
			Start: time.Unix(2000, 0)},
		Span{Trace: trc, ID: SpanID(trc, KindLease, 1), Kind: KindLease, Key: "k3",
			Worker: "w-fast", Attempt: 1, Start: time.Unix(2000, 0)},
	)
	if err := WriteTrace(&buf, "test", spans, time.Unix(2001, 0)); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var tracks, executes, flows, opens int
	workerTIDs := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks++
			}
		case "X":
			if strings.HasPrefix(ev.Name, "execute") {
				executes++
				if ev.TID == coordinatorTID {
					t.Fatal("execute span on coordinator track")
				}
				workerTIDs[ev.TID] = true
			}
			if ev.Args["open"] == true {
				opens++
				if ev.Dur <= 0 {
					t.Fatalf("open span with non-positive dur: %+v", ev)
				}
			}
		case "s":
			flows++
		}
	}
	// coordinator + w-fast + w-slow tracks.
	if tracks != 3 {
		t.Fatalf("thread_name tracks = %d, want 3", tracks)
	}
	if executes != 2 {
		t.Fatalf("execute slices = %d, want 2", executes)
	}
	if len(workerTIDs) != 2 {
		t.Fatalf("execute spans spread over %d worker tracks, want 2", len(workerTIDs))
	}
	if flows == 0 {
		t.Fatal("no flow arrows emitted")
	}
	if opens == 0 {
		t.Fatal("open span not exported")
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := buildRun("c")[2]
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	// Compare via re-marshal: time.Time's == is location-sensitive.
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip mismatch:\n %s\n %s", b, b2)
	}
	// Open spans must omit the zero End rather than emitting year-1 noise.
	s.End = time.Time{}
	b, _ = json.Marshal(s)
	if bytes.Contains(b, []byte(`"end"`)) {
		t.Fatalf("zero End serialized: %s", b)
	}
}
