package obs

import (
	"sort"
	"time"
)

// WorkerStats is one worker's straggler profile over the spans it executed.
type WorkerStats struct {
	Name   string  `json:"name"`
	Cells  int     `json:"cells"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// Slowdown is the worker's mean lease duration relative to the fleet
	// mean (1.0 = average, 2.0 = twice as slow). 0 when the fleet mean is
	// unknown.
	Slowdown float64 `json:"slowdown"`
}

// TailCell is one of the K slowest cells with its span breakdown.
type TailCell struct {
	Key    string `json:"key"`
	Worker string `json:"worker,omitempty"`
	// TotalMS is the cell's end-to-end wall time (cell span duration, or
	// the winning lease duration if the root is still open).
	TotalMS  float64 `json:"total_ms"`
	QueueMS  float64 `json:"queue_ms"`
	LeaseMS  float64 `json:"lease_ms"`
	ExecMS   float64 `json:"exec_ms"`
	ReportMS float64 `json:"report_ms"`
	VerifyMS float64 `json:"verify_ms"`
	Attempts int     `json:"attempts"`
	Requeues int     `json:"requeues"`
}

// Report is the straggler analytics over one campaign's spans.
type Report struct {
	Cells       int           `json:"cells"`
	FleetP50MS  float64       `json:"fleet_p50_ms"`
	FleetP99MS  float64       `json:"fleet_p99_ms"`
	FleetMeanMS float64       `json:"fleet_mean_ms"`
	Workers     []WorkerStats `json:"workers,omitempty"`
	Tail        []TailCell    `json:"tail,omitempty"`
}

// Slowest returns the worker with the highest Slowdown ("" when unknown).
func (r *Report) Slowest() string {
	name, worst := "", 0.0
	for _, w := range r.Workers {
		if w.Slowdown > worst {
			worst, name = w.Slowdown, w.Name
		}
	}
	return name
}

// Analyze computes the straggler report over a campaign's spans: per-cell
// duration digests from final lease spans, per-worker p50/p99 and relative
// slowdown, and the k slowest cells with their span breakdowns. Open spans
// are measured up to now so a live campaign's laggards surface mid-run.
func Analyze(spans []Span, k int, now time.Time) Report {
	if k <= 0 {
		k = 10
	}
	dur := func(s *Span) float64 {
		if s.End.IsZero() {
			if now.IsZero() || now.Before(s.Start) {
				return 0
			}
			return float64(now.Sub(s.Start)) / 1e6
		}
		return s.DurationMS()
	}

	type cellAgg struct {
		TailCell
		winner float64 // the lease duration that produced the result
	}
	cells := map[string]*cellAgg{}
	fleet := NewDigest(4096)
	workers := map[string]*Digest{}
	workerCells := map[string]int{}

	for i := range spans {
		s := &spans[i]
		c := cells[s.Key]
		if c == nil {
			c = &cellAgg{TailCell: TailCell{Key: s.Key}}
			cells[s.Key] = c
		}
		d := dur(s)
		switch s.Kind {
		case KindCell:
			c.TotalMS = d
		case KindQueue:
			c.QueueMS += d
		case KindLease:
			c.Attempts++
			if s.Attempt > 1 {
				c.Requeues++
			}
			c.LeaseMS += d
			// Only completed-or-final leases feed worker digests: an open
			// lease on a live campaign still counts (that's the straggler
			// being slow right now), but a zero-duration placeholder does
			// not.
			if d > 0 {
				if workers[s.Worker] == nil {
					workers[s.Worker] = NewDigest(1024)
				}
				workers[s.Worker].Add(d)
				workerCells[s.Worker]++
				fleet.Add(d)
			}
			if s.Final || s.Status == StatusOK {
				c.Worker = s.Worker
				c.winner = d
			}
		case KindExecute:
			c.ExecMS += d
		case KindReport:
			c.ReportMS += d
		case KindVerify:
			c.VerifyMS = d
		}
	}

	rep := Report{
		Cells:       len(cells),
		FleetP50MS:  fleet.Quantile(0.50),
		FleetP99MS:  fleet.Quantile(0.99),
		FleetMeanMS: fleet.Mean(),
	}

	for name, dg := range workers {
		ws := WorkerStats{
			Name:   name,
			Cells:  workerCells[name],
			P50MS:  dg.Quantile(0.50),
			P99MS:  dg.Quantile(0.99),
			MeanMS: dg.Mean(),
		}
		if rep.FleetMeanMS > 0 {
			ws.Slowdown = ws.MeanMS / rep.FleetMeanMS
		}
		rep.Workers = append(rep.Workers, ws)
	}
	sort.Slice(rep.Workers, func(i, j int) bool {
		if rep.Workers[i].Slowdown != rep.Workers[j].Slowdown {
			return rep.Workers[i].Slowdown > rep.Workers[j].Slowdown
		}
		return rep.Workers[i].Name < rep.Workers[j].Name
	})

	tail := make([]*cellAgg, 0, len(cells))
	for _, c := range cells {
		if c.TotalMS == 0 {
			// Root still open (live campaign) or missing: fall back to the
			// winning lease, then to accumulated lease time.
			if c.winner > 0 {
				c.TotalMS = c.winner
			} else {
				c.TotalMS = c.LeaseMS
			}
		}
		tail = append(tail, c)
	}
	sort.Slice(tail, func(i, j int) bool {
		if tail[i].TotalMS != tail[j].TotalMS {
			return tail[i].TotalMS > tail[j].TotalMS
		}
		return tail[i].Key < tail[j].Key
	})
	if len(tail) > k {
		tail = tail[:k]
	}
	for _, c := range tail {
		rep.Tail = append(rep.Tail, c.TailCell)
	}
	return rep
}
