package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server exposes a registry over HTTP for live campaign observation:
//
//	/metrics       Prometheus text exposition of every registered instrument
//	/healthz       200 "ok" while the server is up (campaign workers live)
//	/debug/pprof/  the standard net/http/pprof surface
//
// The server binds immediately (so ":0" callers can read the chosen port
// from Addr) and serves until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
}

// NewServer binds addr (host:port; port 0 picks a free port) and starts
// serving reg in a background goroutine.
func NewServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, reg: reg}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Campaign is the live-telemetry instrument set of one harness campaign:
// job outcome counters, an in-flight gauge, aggregate simulated progress
// fed from the engines' config.Observe polls, and a heartbeat whose age is
// exported as a scrape-time gauge (a growing age means every worker has
// gone quiet).
type Campaign struct {
	JobsDone    *Counter
	JobsFailed  *Counter
	JobsRetried *Counter
	JobsSkipped *Counter
	JobsStarted *Counter
	InFlight    *Gauge

	SimCycles  *Counter // simulated cycles, summed across all jobs
	SimCommits *Counter // useful committed instructions, summed across all jobs

	lastBeat atomic.Int64 // unix nanos of the last Observe poll
}

// NewCampaign registers the campaign instrument set in reg.
func NewCampaign(reg *Registry) *Campaign {
	c := &Campaign{
		JobsDone:    reg.Counter("mtvp_jobs_done_total", "campaign cells completed"),
		JobsFailed:  reg.Counter("mtvp_jobs_failed_total", "campaign cells that exhausted their retries"),
		JobsRetried: reg.Counter("mtvp_jobs_retried_total", "campaign cell retry attempts"),
		JobsSkipped: reg.Counter("mtvp_jobs_skipped_total", "campaign cells skipped on resume"),
		JobsStarted: reg.Counter("mtvp_jobs_started_total", "campaign cells dispatched to a worker"),
		InFlight:    reg.Gauge("mtvp_jobs_in_flight", "campaign cells currently running"),
		SimCycles:   reg.Counter("mtvp_sim_cycles_total", "simulated cycles across all campaign jobs"),
		SimCommits:  reg.Counter("mtvp_sim_commits_total", "useful committed instructions across all campaign jobs"),
	}
	c.lastBeat.Store(time.Now().UnixNano())
	reg.GaugeFunc("mtvp_heartbeat_age_seconds",
		"seconds since any running job last reported simulated progress",
		func() float64 { return c.HeartbeatAge().Seconds() })
	return c
}

// Progress feeds one job's simulated-progress delta (from the engine's
// config.Observe poll) and refreshes the heartbeat. Safe from any worker
// goroutine.
func (c *Campaign) Progress(dCycles, dCommits uint64) {
	c.SimCycles.Add(dCycles)
	c.SimCommits.Add(dCommits)
	c.lastBeat.Store(time.Now().UnixNano())
}

// HeartbeatAge returns the time since the last Progress call.
func (c *Campaign) HeartbeatAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - c.lastBeat.Load())
}
