package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerServesMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	campaign := NewCampaign(reg)
	srv, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	campaign.JobsStarted.Inc()
	campaign.InFlight.Add(1)
	campaign.Progress(5000, 1200)
	campaign.JobsDone.Inc()
	campaign.InFlight.Add(-1)

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE mtvp_jobs_done_total counter",
		"mtvp_jobs_done_total 1",
		"mtvp_jobs_started_total 1",
		"mtvp_jobs_in_flight 0",
		"mtvp_sim_cycles_total 5000",
		"mtvp_sim_commits_total 1200",
		"mtvp_heartbeat_age_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// pprof index is mounted.
	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	if age := campaign.HeartbeatAge(); age < 0 || age > time.Minute {
		t.Errorf("heartbeat age implausible: %v", age)
	}
}
