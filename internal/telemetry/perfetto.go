package telemetry

import (
	"fmt"
	"io"

	"mtvp/internal/trace"
)

// PerfettoSink exports the pipeline event stream in the Chrome trace-event
// JSON format, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// Mapping:
//   - Each hardware context renders as one track (pid 0, tid = context id,
//     named "ctx N" via thread_name metadata). One simulated cycle is one
//     microsecond of trace time.
//   - A speculative thread's lifetime is a duration slice on its context's
//     track: opened at KSpawn, closed at KConfirm or KKill.
//   - Spawn→confirm/kill causality renders as flow arrows: a flow starts on
//     the parent's track at the spawn cycle and finishes on the child's
//     track where the speculation resolves (the flow id is the child's
//     unique speculation order).
//   - Every other event kind renders as a thread-scoped instant.
//
// The JSON is streamed through a TraceWriter: NewPerfettoSink writes the
// object prefix, Emit appends events, Close writes the suffix. A sink that
// is never Closed is not valid JSON.
type PerfettoSink struct {
	tw      *TraceWriter
	named   map[int]bool  // context tracks already given a thread_name
	open    map[int64]int // speculation order -> tid of an open spawn slice
	procSet bool
}

// machineTID is the synthetic track for machine-level events that carry no
// context (trace events with Thread < 0, e.g. an observer cancellation).
const machineTID = 1 << 20

// NewPerfettoSink returns a sink streaming Chrome trace-event JSON to w.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	return &PerfettoSink{
		tw:    NewTraceWriter(w),
		named: map[int]bool{},
		open:  map[int64]int{},
	}
}

func (s *PerfettoSink) write(te TraceEvent) { s.tw.Emit(te) }

// nameTrack emits the one-time metadata events naming a context's track.
func (s *PerfettoSink) nameTrack(tid int) {
	if s.named[tid] {
		return
	}
	s.named[tid] = true
	if !s.procSet {
		s.procSet = true
		s.write(TraceEvent{Name: "process_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": "mtvp machine"}})
	}
	label := fmt.Sprintf("ctx %d", tid)
	if tid == machineTID {
		label = "machine"
	}
	s.write(TraceEvent{Name: "thread_name", Ph: "M", PID: 0, TID: tid,
		Args: map[string]any{"name": label}})
	// Sort context tracks by id.
	s.write(TraceEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: tid,
		Args: map[string]any{"sort_index": tid}})
}

// Emit implements trace.Tracer.
func (s *PerfettoSink) Emit(ev trace.Event) {
	tid := ev.Thread
	if tid < 0 {
		tid = machineTID
	}
	s.nameTrack(tid)
	ts := ev.Cycle // 1 cycle = 1 us of trace time

	args := map[string]any{"order": ev.Order}
	if ev.Text != "" {
		args["text"] = ev.Text
	}
	if ev.Seq != 0 {
		args["seq"] = ev.Seq
	}
	if ev.PC >= 0 {
		args["pc"] = ev.PC
	}

	switch ev.Kind {
	case trace.KSpawn:
		// Lifetime slice on the child's track...
		s.write(TraceEvent{Name: fmt.Sprintf("spec o%d", ev.Order), Ph: "B",
			TS: ts, PID: 0, TID: tid, Cat: "spec", Args: args})
		s.open[ev.Order] = tid
		// ...and a flow arrow from the spawning parent's track.
		if ev.HasPeer {
			ptid := ev.Peer
			s.nameTrack(ptid)
			s.write(TraceEvent{Name: "spawn", Ph: "s", TS: ts, PID: 0, TID: ptid,
				Cat: "spawn", ID: ev.Order})
		} else {
			s.write(TraceEvent{Name: "spawn", Ph: "s", TS: ts, PID: 0, TID: tid,
				Cat: "spawn", ID: ev.Order})
		}
	case trace.KConfirm, trace.KKill:
		s.write(TraceEvent{Name: ev.Kind.String(), Ph: "i", TS: ts, PID: 0, TID: tid,
			Cat: "spec", S: "t", Args: args})
		if openTID, ok := s.open[ev.Order]; ok {
			delete(s.open, ev.Order)
			s.write(TraceEvent{Name: fmt.Sprintf("spec o%d", ev.Order), Ph: "E",
				TS: ts, PID: 0, TID: openTID})
			s.write(TraceEvent{Name: "spawn", Ph: "f", BP: "e", TS: ts, PID: 0,
				TID: tid, Cat: "spawn", ID: ev.Order})
		}
	default:
		s.write(TraceEvent{Name: ev.Kind.String(), Ph: "i", TS: ts, PID: 0, TID: tid,
			Cat: "pipe", S: "t", Args: args})
	}
}

// Close ends the stream: open lifetime slices are deliberately left
// unclosed — Perfetto renders them as running to the end of the trace,
// which is exactly what an unresolved speculation at run end is.
func (s *PerfettoSink) Close() error { return s.tw.Close() }

// Err returns the first write or encoding error, if any.
func (s *PerfettoSink) Err() error { return s.tw.Err() }
