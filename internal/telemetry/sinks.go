package telemetry

import (
	"bufio"
	"encoding/json"
	"io"

	"mtvp/internal/trace"
)

// jsonEvent is the machine-readable rendering of one trace.Event.
type jsonEvent struct {
	Cycle  int64  `json:"cycle"`
	Kind   string `json:"kind"`
	Thread int    `json:"thread"`
	Order  int64  `json:"order"`
	Seq    uint64 `json:"seq,omitempty"`
	PC     *int64 `json:"pc,omitempty"`
	Text   string `json:"text,omitempty"`
	Peer   *int   `json:"peer,omitempty"`
}

// JSONLSink renders pipeline events as one JSON object per line — the
// machine-readable sibling of trace.Writer's human-readable log. Close (or
// Flush) must be called to drain the write buffer.
type JSONLSink struct {
	// Kinds restricts output to the listed event kinds; nil passes all.
	// Like trace.Writer, the filter is consulted per event, so it may be
	// changed at any time.
	Kinds []trace.Kind

	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

func (s *JSONLSink) pass(k trace.Kind) bool {
	if s.Kinds == nil {
		return true
	}
	for _, want := range s.Kinds {
		if want == k {
			return true
		}
	}
	return false
}

// Emit implements trace.Tracer.
func (s *JSONLSink) Emit(ev trace.Event) {
	if s.err != nil || !s.pass(ev.Kind) {
		return
	}
	je := jsonEvent{
		Cycle:  ev.Cycle,
		Kind:   ev.Kind.String(),
		Thread: ev.Thread,
		Order:  ev.Order,
		Seq:    ev.Seq,
		Text:   ev.Text,
	}
	if ev.PC >= 0 {
		pc := ev.PC
		je.PC = &pc
	}
	if ev.HasPeer {
		peer := ev.Peer
		je.Peer = &peer
	}
	s.err = s.enc.Encode(je)
}

// Flush drains buffered lines to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Close flushes the sink.
func (s *JSONLSink) Close() error { return s.Flush() }
