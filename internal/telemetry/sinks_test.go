package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"mtvp/internal/trace"
)

func TestJSONLSinkRendersEvents(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&b)
	s.Emit(trace.Event{Cycle: 42, Kind: trace.KCommit, Thread: 1, Order: 3, Seq: 9, PC: 17, Text: "add r1, r2, r3"})
	s.Emit(trace.Event{Cycle: 43, Kind: trace.KSpawn, Thread: 2, Order: 4, PC: -1, Peer: 1, PeerOrder: 3, HasPeer: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev["kind"] != "commit" || ev["cycle"] != float64(42) || ev["pc"] != float64(17) {
		t.Errorf("commit event wrong: %v", ev)
	}
	if _, has := ev["peer"]; has {
		t.Error("peerless event rendered a peer field")
	}
	ev = nil // Unmarshal merges into a live map; start fresh per line
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if ev["kind"] != "spawn" || ev["peer"] != float64(1) {
		t.Errorf("spawn event wrong: %v", ev)
	}
	if _, has := ev["pc"]; has {
		t.Error("thread event (PC -1) rendered a pc field")
	}
}

func TestJSONLSinkKindFilter(t *testing.T) {
	var b strings.Builder
	s := NewJSONLSink(&b)
	s.Emit(trace.Event{Kind: trace.KFetch, Seq: 1})
	s.Kinds = []trace.Kind{trace.KKill} // set after the first Emit: applies
	s.Emit(trace.Event{Kind: trace.KFetch, Seq: 2})
	s.Emit(trace.Event{Kind: trace.KKill})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(b.String())
	if n := len(strings.Split(out, "\n")); n != 2 {
		t.Errorf("filtered sink wrote %d lines, want 2:\n%s", n, out)
	}
	if strings.Count(out, `"fetch"`) != 1 || strings.Count(out, `"kill"`) != 1 {
		t.Errorf("filter wrong:\n%s", out)
	}
}
