package telemetry

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("in_flight", "running")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	// Re-registering the same name returns the same instrument.
	if r.Counter("jobs_total", "jobs") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestHistogramLogBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1010 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if m := h.Mean(); m < 168 || m > 169 {
		t.Errorf("mean = %v", m)
	}
	// Expected bucketing: 0 -> bound 1; 1 -> bound 2; 2,3 -> bound 4;
	// 4 -> bound 8; 1000 -> bound 1024.
	want := map[uint64]uint64{1: 1, 2: 1, 4: 2, 8: 1, 1024: 1}
	bs := h.Buckets()
	if len(bs) != len(want) {
		t.Fatalf("bucket count = %d, want %d (%v)", len(bs), len(want), bs)
	}
	var prev uint64
	for _, b := range bs {
		if b.UpperBound <= prev {
			t.Errorf("buckets not ascending: %v", bs)
		}
		prev = b.UpperBound
		if want[b.UpperBound] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.UpperBound, b.Count, want[b.UpperBound])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last by name").Add(3)
	r.Gauge("aa_gauge", "first by name").Set(-2)
	r.GaugeFunc("mm_func", "computed", func() float64 { return 1.5 })
	h := r.Histogram("hh_hist", "latency")
	h.Observe(1)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP aa_gauge first by name",
		"# TYPE aa_gauge gauge",
		"aa_gauge -2",
		"# TYPE zz_total counter",
		"zz_total 3",
		"mm_func 1.5",
		"# TYPE hh_hist histogram",
		`hh_hist_bucket{le="2"} 1`,
		`hh_hist_bucket{le="4"} 2`, // cumulative
		`hh_hist_bucket{le="+Inf"} 2`,
		"hh_hist_sum 4",
		"hh_hist_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic name ordering.
	if strings.Index(out, "aa_gauge") > strings.Index(out, "zz_total") {
		t.Error("metrics not sorted by name")
	}
	// Two scrapes render identically.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if got := b2.String(); got != out {
		t.Errorf("scrape not deterministic:\n%s\nvs\n%s", out, got)
	}
}

func TestObserveAllocationFree(t *testing.T) {
	var h Histogram
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(17)
	}); n != 0 {
		t.Errorf("hot path allocates %.1f allocs/op, want 0", n)
	}
}

func TestLabeledGaugeFamilies(t *testing.T) {
	r := NewRegistry()
	r.LabeledGaugeFunc("fleet_leases", `worker="w1"`, "leases held", func() float64 { return 2 })
	r.LabeledGaugeFunc("fleet_leases", `worker="w2"`, "leases held", func() float64 { return 3 })
	// Re-registering the same series is a no-op, not a duplicate.
	r.LabeledGaugeFunc("fleet_leases", `worker="w1"`, "leases held", func() float64 { return 99 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP fleet_leases leases held\n",
		"# TYPE fleet_leases gauge\n",
		`fleet_leases{worker="w1"} 2` + "\n",
		`fleet_leases{worker="w2"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family, not per series.
	if strings.Count(out, "# TYPE fleet_leases gauge") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	if strings.Contains(out, "} 99") {
		t.Errorf("re-registration replaced an existing series:\n%s", out)
	}

	// Unregister retires exactly one series.
	if !r.Unregister("fleet_leases", `worker="w1"`) {
		t.Fatal("Unregister returned false for a live series")
	}
	if r.Unregister("fleet_leases", `worker="w1"`) {
		t.Fatal("second Unregister should return false")
	}
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if strings.Contains(out, `worker="w1"`) || !strings.Contains(out, `worker="w2"`) {
		t.Errorf("unregister removed the wrong series:\n%s", out)
	}
}
