package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// CycleCounters is the cumulative counter snapshot the pipeline engine
// hands the machine probe every cycle. Plain uint64s passed by value: the
// per-cycle feed allocates nothing.
type CycleCounters struct {
	Committed uint64
	Squashed  uint64
	Loads     uint64
	DL1Miss   uint64
	VPCorrect uint64
	VPWrong   uint64
	Spawns    uint64
	Confirms  uint64
	Kills     uint64

	// Predictor-table sharing interference (vpred.Bank, shared mode only;
	// zero otherwise).
	VPCrossLookups uint64 // lookups hitting state last trained by another context
	VPCrossEvicts  uint64 // trains displacing another context's state
}

// CycleGauges is the instantaneous machine state at a cycle: window and
// queue occupancy, thread population, and store-buffer pressure.
type CycleGauges struct {
	ROBUsed      int
	RenameUsed   int
	IQUsed       int
	FQUsed       int
	MQUsed       int
	StoreBufUsed int
	LiveThreads  int
	SpecThreads  int
}

// Machine is the instrument set one simulated machine feeds: occupancy
// gauges refreshed every cycle, event histograms fed at spawn/confirm/kill and
// load completion, and an optional cycle-bucketed time-series sampler.
// Construct with NewMachine; all instruments live in the given registry so
// they render on /metrics and in Prometheus text alongside everything else.
type Machine struct {
	// Gauges (instantaneous, refreshed every cycle).
	ROBUsed      *Gauge
	RenameUsed   *Gauge
	IQUsed       *Gauge
	FQUsed       *Gauge
	MQUsed       *Gauge
	StoreBufUsed *Gauge
	LiveThreads  *Gauge
	SpecThreads  *Gauge

	// Event-driven scheduler calendar (pipeline/events.go). Zero when the
	// engine runs the legacy polling scan. These live only in the registry
	// (/metrics), never in the sampler's time series, so the series stay
	// bit-identical across scheduler modes.
	EventQDepth   *Gauge // pending wake entries in the calendar
	EventQFired   *Gauge // cumulative entries fired (popped at their cycle)
	EventQDeduped *Gauge // cumulative enqueues absorbed by the dedup ring

	// Histograms (distributional quantities the paper's dynamics argument
	// rests on).
	LoadLatency     *Histogram // cycles from issue to completion, loads only
	SpecLifetime    *Histogram // cycles from spawn to confirm or kill
	ConfirmDistance *Histogram // instructions a confirmed child committed past the load
	KillDistance    *Histogram // instructions a killed child had committed (discounted)
	SpawnDepth      *Histogram // speculation-chain depth of each spawned thread

	sampler *Sampler
}

// NewMachine registers the machine instrument set in reg and attaches the
// optional sampler (nil = no time series).
func NewMachine(reg *Registry, sampler *Sampler) *Machine {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Machine{
		ROBUsed:      reg.Gauge("mtvp_sim_rob_used", "reorder buffer entries in use"),
		RenameUsed:   reg.Gauge("mtvp_sim_rename_used", "rename registers in use"),
		IQUsed:       reg.Gauge("mtvp_sim_iq_used", "integer queue entries in use"),
		FQUsed:       reg.Gauge("mtvp_sim_fq_used", "FP queue entries in use"),
		MQUsed:       reg.Gauge("mtvp_sim_mq_used", "memory queue entries in use"),
		StoreBufUsed: reg.Gauge("mtvp_sim_storebuf_used", "speculative store buffer entries in use"),
		LiveThreads:  reg.Gauge("mtvp_sim_threads_live", "live hardware contexts"),
		SpecThreads:  reg.Gauge("mtvp_sim_threads_spec", "in-flight speculative threads"),

		EventQDepth:   reg.Gauge("mtvp_sim_eventq_depth", "pending wake entries in the scheduler calendar"),
		EventQFired:   reg.Gauge("mtvp_sim_eventq_fired_total", "calendar entries fired since the run began"),
		EventQDeduped: reg.Gauge("mtvp_sim_eventq_deduped_total", "enqueues absorbed by the calendar dedup ring"),

		LoadLatency:     reg.Histogram("mtvp_sim_load_latency_cycles", "load issue-to-completion latency"),
		SpecLifetime:    reg.Histogram("mtvp_sim_spec_lifetime_cycles", "speculative thread lifetime, spawn to confirm or kill"),
		ConfirmDistance: reg.Histogram("mtvp_sim_confirm_distance_insts", "instructions committed past the load by a confirmed child"),
		KillDistance:    reg.Histogram("mtvp_sim_kill_distance_insts", "instructions discounted from a killed child"),
		SpawnDepth:      reg.Histogram("mtvp_sim_spawn_depth", "speculation-chain depth at spawn"),

		sampler: sampler,
	}
}

// Tick feeds one simulated cycle: the engine calls it once per cycle with
// the instantaneous gauges and the cumulative counters. Allocation-free
// except when a sample bucket closes.
func (m *Machine) Tick(cycle int64, g CycleGauges, c CycleCounters) {
	m.ROBUsed.Set(int64(g.ROBUsed))
	m.RenameUsed.Set(int64(g.RenameUsed))
	m.IQUsed.Set(int64(g.IQUsed))
	m.FQUsed.Set(int64(g.FQUsed))
	m.MQUsed.Set(int64(g.MQUsed))
	m.StoreBufUsed.Set(int64(g.StoreBufUsed))
	m.LiveThreads.Set(int64(g.LiveThreads))
	m.SpecThreads.Set(int64(g.SpecThreads))
	if m.sampler != nil {
		m.sampler.tick(cycle, g, c)
	}
}

// TickIdleRange feeds a fast-forwarded idle cycle span [from, to] in one
// call. The caller guarantees the machine was frozen across the span: the
// gauges and cumulative counters it passes held at every cycle in it. The
// gauges are set once and the sampler closes every bucket that would have
// closed during the span, producing byte-identical points to per-cycle
// Ticks (each close sees the same frozen snapshot a real tick would have).
func (m *Machine) TickIdleRange(from, to int64, g CycleGauges, c CycleCounters) {
	m.ROBUsed.Set(int64(g.ROBUsed))
	m.RenameUsed.Set(int64(g.RenameUsed))
	m.IQUsed.Set(int64(g.IQUsed))
	m.FQUsed.Set(int64(g.FQUsed))
	m.MQUsed.Set(int64(g.MQUsed))
	m.StoreBufUsed.Set(int64(g.StoreBufUsed))
	m.LiveThreads.Set(int64(g.LiveThreads))
	m.SpecThreads.Set(int64(g.SpecThreads))
	if m.sampler != nil {
		m.sampler.tickIdleRange(from, to, g, c)
	}
}

// Finish closes the sampler's final partial bucket (call once, when the
// run ends).
func (m *Machine) Finish(cycle int64, g CycleGauges, c CycleCounters) {
	if m.sampler != nil {
		m.sampler.finish(cycle, g, c)
	}
}

// Sampler accumulates cycle-bucketed time series: every Every cycles it
// closes a bucket, converting the counter deltas since the previous bucket
// into rates (useful IPC, VP accuracy) and recording the instantaneous
// occupancy gauges.
type Sampler struct {
	// Every is the bucket width in cycles; <=0 selects 1024.
	Every int64

	points    []Point
	started   bool
	lastCycle int64
	last      CycleCounters
}

// DefaultSampleEvery is the default time-series bucket width in cycles.
const DefaultSampleEvery = 1024

// NewSampler returns a sampler with the given bucket width (<=0 selects
// DefaultSampleEvery).
func NewSampler(every int64) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Sampler{Every: every}
}

// Point is one closed time-series bucket.
type Point struct {
	Cycle int64 `json:"cycle"` // cycle the bucket closed at

	// Rates over the bucket.
	IPC        float64 `json:"ipc"`    // useful commits per cycle
	VPAccuracy float64 `json:"vp_acc"` // resolved-prediction accuracy (0 when none resolved)

	// Deltas over the bucket.
	Committed uint64 `json:"committed"`
	Squashed  uint64 `json:"squashed"`
	Loads     uint64 `json:"loads"`
	DL1Miss   uint64 `json:"dl1_miss"`
	Spawns    uint64 `json:"spawns"`
	Confirms  uint64 `json:"confirms"`
	Kills     uint64 `json:"kills"`
	// Predictor-table sharing interference deltas (shared mode only).
	VPCross      uint64 `json:"vp_cross"`
	VPCrossEvict uint64 `json:"vp_cross_evict"`

	// Instantaneous occupancy at bucket close.
	Occupancy    int `json:"occupancy"` // reorder buffer entries in use
	RenameUsed   int `json:"rename_used"`
	IQUsed       int `json:"iq_used"`
	StoreBufUsed int `json:"storebuf_used"`
	LiveThreads  int `json:"live_threads"`
	SpecThreads  int `json:"spec_threads"`
}

// Points returns the closed buckets, oldest first.
func (s *Sampler) Points() []Point { return s.points }

func (s *Sampler) every() int64 {
	if s.Every <= 0 {
		return DefaultSampleEvery
	}
	return s.Every
}

func (s *Sampler) tick(cycle int64, g CycleGauges, c CycleCounters) {
	if !s.started {
		s.started = true
		s.lastCycle = cycle - 1
	}
	if cycle-s.lastCycle < s.every() {
		return
	}
	s.close(cycle, g, c)
}

// tickIdleRange replays per-cycle ticks over an idle span [from, to] where
// the gauge/counter snapshot held constant, closing exactly the buckets the
// per-cycle loop would have closed, at the same cycles, with the same data.
func (s *Sampler) tickIdleRange(from, to int64, g CycleGauges, c CycleCounters) {
	if !s.started {
		s.started = true
		s.lastCycle = from - 1
	}
	for s.lastCycle+s.every() <= to {
		s.close(s.lastCycle+s.every(), g, c)
	}
}

func (s *Sampler) finish(cycle int64, g CycleGauges, c CycleCounters) {
	if !s.started || cycle <= s.lastCycle {
		return
	}
	s.close(cycle, g, c)
}

func (s *Sampler) close(cycle int64, g CycleGauges, c CycleCounters) {
	width := cycle - s.lastCycle
	p := Point{
		Cycle:     cycle,
		Committed: c.Committed - s.last.Committed,
		Squashed:  c.Squashed - s.last.Squashed,
		Loads:     c.Loads - s.last.Loads,
		DL1Miss:   c.DL1Miss - s.last.DL1Miss,
		Spawns:    c.Spawns - s.last.Spawns,
		Confirms:  c.Confirms - s.last.Confirms,
		Kills:     c.Kills - s.last.Kills,

		VPCross:      c.VPCrossLookups - s.last.VPCrossLookups,
		VPCrossEvict: c.VPCrossEvicts - s.last.VPCrossEvicts,

		Occupancy:    g.ROBUsed,
		RenameUsed:   g.RenameUsed,
		IQUsed:       g.IQUsed,
		StoreBufUsed: g.StoreBufUsed,
		LiveThreads:  g.LiveThreads,
		SpecThreads:  g.SpecThreads,
	}
	if width > 0 {
		// Killed threads' commits are discounted retroactively, so a
		// bucket dominated by kills can go net-negative; clamp to zero
		// rather than report a negative rate.
		if c.Committed >= s.last.Committed {
			p.IPC = float64(p.Committed) / float64(width)
		} else {
			p.Committed = 0
		}
	}
	dc := c.VPCorrect - s.last.VPCorrect
	dw := c.VPWrong - s.last.VPWrong
	if c.VPCorrect >= s.last.VPCorrect && c.VPWrong >= s.last.VPWrong && dc+dw > 0 {
		p.VPAccuracy = float64(dc) / float64(dc+dw)
	}
	s.points = append(s.points, p)
	s.lastCycle = cycle
	s.last = c
}

// seriesColumns names the CSV columns, in Point field order.
var seriesColumns = []string{
	"cycle", "ipc", "vp_acc",
	"committed", "squashed", "loads", "dl1_miss", "spawns", "confirms", "kills",
	"vp_cross", "vp_cross_evict",
	"occupancy", "rename_used", "iq_used", "storebuf_used", "live_threads", "spec_threads",
}

// WriteCSV renders the series as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(seriesColumns, ",")); err != nil {
		return err
	}
	for _, p := range s.points {
		_, err := fmt.Fprintf(w, "%d,%.6f,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.Cycle, p.IPC, p.VPAccuracy,
			p.Committed, p.Squashed, p.Loads, p.DL1Miss, p.Spawns, p.Confirms, p.Kills,
			p.VPCross, p.VPCrossEvict,
			p.Occupancy, p.RenameUsed, p.IQUsed, p.StoreBufUsed, p.LiveThreads, p.SpecThreads)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the series as one JSON object per line.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, p := range s.points {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}
