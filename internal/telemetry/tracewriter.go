package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// TraceEvent is one Chrome trace-event object. Field names follow the
// trace-event format spec. It is the shared wire type for every trace
// exporter in the tree: the pipeline PerfettoSink and the fabric's
// campaign trace endpoint both emit these through a TraceWriter.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"` // complete events (ph "X")
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceWriter streams a Chrome trace-event JSON document to an io.Writer:
// NewTraceWriter writes the object prefix, Emit appends events (managing
// commas), Close writes the suffix and flushes. A writer that is never
// Closed has not produced valid JSON. Errors are sticky: the first failure
// is kept and every later call is a no-op, so callers may emit
// unconditionally and check Err (or Close) once.
type TraceWriter struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewTraceWriter returns a writer streaming Chrome trace-event JSON to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: bufio.NewWriter(w)}
	_, t.err = t.w.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	return t
}

// Emit appends one trace event.
func (t *TraceWriter) Emit(te TraceEvent) {
	if t.err != nil {
		return
	}
	b, err := json.Marshal(te)
	if err != nil {
		t.err = err
		return
	}
	if t.n > 0 {
		if err := t.w.WriteByte(','); err != nil {
			t.err = err
			return
		}
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Close writes the JSON suffix and flushes. The writer must not be used
// afterwards.
func (t *TraceWriter) Close() error {
	if t.err != nil {
		return t.err
	}
	if _, err := t.w.WriteString("]}"); err != nil {
		return err
	}
	return t.w.Flush()
}

// Err returns the first write or encoding error, if any.
func (t *TraceWriter) Err() error { return t.err }
