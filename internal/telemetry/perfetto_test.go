package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"mtvp/internal/trace"
)

// perfettoDoc mirrors the Chrome trace-event JSON object format.
type perfettoDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		ID   int64          `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestPerfettoExport(t *testing.T) {
	var b strings.Builder
	s := NewPerfettoSink(&b)
	// Parent ctx 0 spawns order-5 speculation onto ctx 1; it is confirmed.
	s.Emit(trace.Event{Cycle: 10, Kind: trace.KSpawn, Thread: 1, Order: 5, PC: -1,
		Peer: 0, PeerOrder: 2, HasPeer: true})
	s.Emit(trace.Event{Cycle: 12, Kind: trace.KCommit, Thread: 0, Order: 2, Seq: 7, PC: 3, Text: "ld r1"})
	s.Emit(trace.Event{Cycle: 30, Kind: trace.KConfirm, Thread: 1, Order: 5, PC: -1})
	// Machine-level event (no context).
	s.Emit(trace.Event{Cycle: 40, Kind: trace.KCancel, Thread: -1, Order: 0, PC: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}

	var doc perfettoDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}

	tracks := map[string]bool{}
	var openB, closeE, flowS, flowF, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "B":
			openB++
			if ev.TID != 1 || ev.TS != 10 {
				t.Errorf("spawn slice on tid %d at ts %d, want child track 1 at 10", ev.TID, ev.TS)
			}
		case "E":
			closeE++
			if ev.TID != 1 || ev.TS != 30 {
				t.Errorf("slice close on tid %d at ts %d, want track 1 at 30", ev.TID, ev.TS)
			}
		case "s":
			flowS++
			if ev.TID != 0 || ev.ID != 5 {
				t.Errorf("flow start on tid %d id %d, want parent track 0 id 5", ev.TID, ev.ID)
			}
		case "f":
			flowF++
			if ev.TID != 1 || ev.ID != 5 || ev.BP != "e" {
				t.Errorf("flow finish wrong: tid=%d id=%d bp=%q", ev.TID, ev.ID, ev.BP)
			}
		case "i":
			instants++
		}
	}
	for _, want := range []string{"ctx 0", "ctx 1", "machine"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	if openB != 1 || closeE != 1 {
		t.Errorf("lifetime slices: %d open / %d close, want 1/1", openB, closeE)
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow arrows: %d start / %d finish, want 1/1", flowS, flowF)
	}
	if instants < 2 { // the commit and confirm instants at least
		t.Errorf("instants = %d", instants)
	}
}

// TestPerfettoUnresolvedSpeculation: a spawn with no confirm/kill leaves its
// slice open (rendered running to trace end) and the export is still valid
// JSON after Close.
func TestPerfettoUnresolvedSpeculation(t *testing.T) {
	var b strings.Builder
	s := NewPerfettoSink(&b)
	s.Emit(trace.Event{Cycle: 5, Kind: trace.KSpawn, Thread: 2, Order: 9, PC: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export invalid: %v", err)
	}
	// A kill for a speculation that was never opened must not emit a close.
	var b2 strings.Builder
	s2 := NewPerfettoSink(&b2)
	s2.Emit(trace.Event{Cycle: 5, Kind: trace.KKill, Thread: 2, Order: 9, PC: -1})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b2.String()), &doc); err != nil {
		t.Fatalf("export invalid: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "E" || ev.Ph == "f" {
			t.Errorf("kill without a spawn emitted a %q event", ev.Ph)
		}
	}
}
