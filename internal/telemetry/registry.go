// Package telemetry is the simulator's observability layer: a metrics
// registry (counters, gauges, log-bucketed histograms) with a
// zero-allocation hot path, a cycle-bucketed time-series sampler the
// pipeline engine feeds every cycle, machine-readable trace sinks (JSONL
// and Chrome trace-event / Perfetto), and an HTTP endpoint serving
// Prometheus-style /metrics, /healthz, and pprof for live campaigns.
//
// Everything here is strictly observational: an attached sampler or sink
// must never change simulation results (test-enforced in internal/core).
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All mutators are atomic so
// campaign-side counters can be fed from worker goroutines while an HTTP
// scraper reads them; on the simulator's single-goroutine hot path the
// uncontended atomic is effectively a plain add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log2 buckets: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with bucket 0 holding
// exact zeros.
const histBuckets = 65

// Histogram accumulates a distribution in power-of-two buckets. Observe is
// allocation-free: one atomic add into a fixed bucket array.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// HistBucket is one non-empty histogram bucket: Count observations with
// value < UpperBound (exclusive; the bucket spans [UpperBound/2, UpperBound)).
type HistBucket struct {
	UpperBound uint64
	Count      uint64
}

// Buckets returns the non-empty buckets in ascending bound order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		out = append(out, HistBucket{UpperBound: upperBound(i), Count: n})
	}
	return out
}

// upperBound returns the exclusive upper bound of log2 bucket i.
func upperBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1 << uint(i)
}

// metric is one registered instrument.
type metric struct {
	name, help string
	labels     string // Prometheus label set rendered inside {...}, "" for none
	counter    *Counter
	gauge      *Gauge
	gaugeFunc  func() float64
	hist       *Histogram
}

// series is the full exposition identity of a metric: name plus labels.
func (m *metric) series() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Registry holds named instruments. Registration (setup time) allocates;
// the returned instruments are then fed without locks or allocation.
// Export order is sorted by name, so rendered output is deterministic.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func (r *Registry) register(name, help string, fill func(*metric)) *metric {
	return r.registerLabeled(name, "", help, fill)
}

func (r *Registry) registerLabeled(name, labels, help string, fill func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := &metric{name: name, labels: labels, help: help}
	key := m.series()
	if m, ok := r.byName[key]; ok {
		return m
	}
	fill(m)
	r.byName[key] = m
	r.metrics = append(r.metrics, m)
	sort.Slice(r.metrics, func(i, j int) bool { return r.metrics[i].series() < r.metrics[j].series() })
	return m
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time (e.g.
// a heartbeat age derived from wall-clock now).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, func(m *metric) { m.gaugeFunc = f })
}

// LabeledCounter returns (registering on first use) a counter rendered with
// a Prometheus label set, e.g. LabeledCounter("mtvp_fleet_corrupt_total",
// `worker="w1"`, ...) exports `mtvp_fleet_corrupt_total{worker="w1"} 3`.
// Series sharing a metric name render as one family under a single
// HELP/TYPE header; the fabric coordinator uses this for per-worker
// attestation-failure counts.
func (r *Registry) LabeledCounter(name, labels, help string) *Counter {
	return r.registerLabeled(name, labels, help, func(m *metric) { m.counter = &Counter{} }).counter
}

// LabeledGaugeFunc registers a scrape-time gauge rendered with a Prometheus
// label set, e.g. LabeledGaugeFunc("mtvp_fleet_leases", `worker="w1"`, ...)
// exports `mtvp_fleet_leases{worker="w1"} 2`. Series sharing a metric name
// (differing only in labels) render as one family under a single HELP/TYPE
// header; the fabric coordinator uses this for its per-worker fleet view.
// Re-registering an existing (name, labels) pair is a no-op.
func (r *Registry) LabeledGaugeFunc(name, labels, help string, f func() float64) {
	r.registerLabeled(name, labels, help, func(m *metric) { m.gaugeFunc = f })
}

// Unregister removes the series with the given name and label set (use
// labels "" for unlabeled instruments). Existing handles to the removed
// instrument keep working but no longer export. It returns whether a
// series was removed; the fabric coordinator uses it to retire the gauges
// of workers pruned after prolonged silence.
func (r *Registry) Unregister(name, labels string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := (&metric{name: name, labels: labels}).series()
	if _, ok := r.byName[key]; !ok {
		return false
	}
	delete(r.byName, key)
	for i, m := range r.metrics {
		if m.series() == key {
			r.metrics = append(r.metrics[:i], r.metrics[i+1:]...)
			break
		}
	}
	return true
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, func(m *metric) { m.hist = &Histogram{} }).hist
}

// snapshot returns the registered metrics in name order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format, sorted by metric name then label set. Histograms
// render as cumulative _bucket series plus _sum and _count. Labeled series
// sharing a metric name render under one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastHeader := ""
	for _, m := range r.snapshot() {
		if m.name != lastHeader {
			lastHeader = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			kind := ""
			switch {
			case m.counter != nil:
				kind = "counter"
			case m.gauge != nil, m.gaugeFunc != nil:
				kind = "gauge"
			}
			if kind != "" {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kind); err != nil {
					return err
				}
			}
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.series(), m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.series(), m.gauge.Value())
		case m.gaugeFunc != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", m.series(), m.gaugeFunc())
		case m.hist != nil:
			err = writePromHistogram(w, m.name, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}
