package telemetry

import (
	"strings"
	"testing"
)

func TestSamplerBucketsAndRates(t *testing.T) {
	s := NewSampler(100)
	m := NewMachine(NewRegistry(), s)

	var c CycleCounters
	for cycle := int64(1); cycle <= 250; cycle++ {
		c.Committed = uint64(cycle) * 2 // IPC 2.0 throughout
		if cycle == 150 {
			c.VPCorrect, c.VPWrong = 8, 2
		}
		m.Tick(cycle, CycleGauges{ROBUsed: int(cycle), SpecThreads: 1}, c)
	}
	m.Finish(250, CycleGauges{ROBUsed: 250, SpecThreads: 1}, c)

	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (two full buckets + the final partial)", len(pts))
	}
	if pts[0].Cycle != 100 || pts[1].Cycle != 200 || pts[2].Cycle != 250 {
		t.Errorf("bucket close cycles: %d %d %d", pts[0].Cycle, pts[1].Cycle, pts[2].Cycle)
	}
	for i, p := range pts {
		if p.IPC < 1.99 || p.IPC > 2.01 {
			t.Errorf("point %d IPC = %v, want 2.0", i, p.IPC)
		}
		if p.SpecThreads != 1 {
			t.Errorf("point %d spec threads = %d", i, p.SpecThreads)
		}
	}
	if pts[0].Occupancy != 100 || pts[2].Occupancy != 250 {
		t.Errorf("occupancy snapshots: %d %d", pts[0].Occupancy, pts[2].Occupancy)
	}
	// VP deltas landed in the second bucket only.
	if pts[0].VPAccuracy != 0 || pts[1].VPAccuracy != 0.8 || pts[2].VPAccuracy != 0 {
		t.Errorf("vp accuracy per bucket: %v %v %v",
			pts[0].VPAccuracy, pts[1].VPAccuracy, pts[2].VPAccuracy)
	}
	// Finishing twice (or after no progress) adds nothing.
	m.Finish(250, CycleGauges{}, c)
	if len(s.Points()) != 3 {
		t.Error("double Finish added a bucket")
	}
}

// TestSamplerNegativeCommitClamp: a killed speculative thread's commits are
// discounted retroactively, so a bucket's committed delta can be net
// negative; the sampler clamps it to zero instead of wrapping.
func TestSamplerNegativeCommitClamp(t *testing.T) {
	s := NewSampler(10)
	var c CycleCounters
	s.tick(1, CycleGauges{}, c)
	c.Committed = 100
	s.tick(11, CycleGauges{}, c) // first bucket closes with 100 commits
	c.Committed = 40             // 60 commits discounted by kills
	s.tick(21, CycleGauges{}, c)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Committed != 0 || pts[1].IPC != 0 {
		t.Errorf("negative bucket not clamped: committed=%d ipc=%v",
			pts[1].Committed, pts[1].IPC)
	}
}

func TestSeriesCSVAndJSONL(t *testing.T) {
	s := NewSampler(10)
	var c CycleCounters
	c.Committed = 2
	c.Loads = 3
	s.tick(1, CycleGauges{}, c)
	c.Committed = 22 // 22 commits over the 11-cycle epoch [0,11): IPC 2.0
	s.tick(11, CycleGauges{ROBUsed: 5, LiveThreads: 2, SpecThreads: 1}, c)

	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv.String())
	}
	header := lines[0]
	for _, col := range []string{"cycle", "ipc", "occupancy", "spec_threads"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing %q: %s", col, header)
		}
	}
	if !strings.HasPrefix(lines[1], "11,2.000000,") {
		t.Errorf("csv row wrong: %s", lines[1])
	}

	var jl strings.Builder
	if err := s.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cycle":11`, `"ipc":2`, `"spec_threads":1`} {
		if !strings.Contains(jl.String(), want) {
			t.Errorf("jsonl missing %q: %s", want, jl.String())
		}
	}
}

func TestMachineGaugesLandInRegistry(t *testing.T) {
	reg := NewRegistry()
	m := NewMachine(reg, nil)
	m.Tick(1, CycleGauges{ROBUsed: 12, StoreBufUsed: 7, LiveThreads: 3, SpecThreads: 2}, CycleCounters{})
	m.LoadLatency.Observe(9)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mtvp_sim_rob_used 12",
		"mtvp_sim_storebuf_used 7",
		"mtvp_sim_threads_live 3",
		"mtvp_sim_threads_spec 2",
		"mtvp_sim_load_latency_cycles_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
