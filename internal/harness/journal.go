package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"mtvp/internal/obs"
)

// The journal is a JSONL checkpoint stream: one header line per campaign
// (appended each time a process opens the file) and one record line per
// finished cell. Records are appended and fsynced as cells complete, so an
// interruption — SIGINT, crash, SIGKILL — loses at most the in-flight
// cells; a torn final line from a mid-write kill is tolerated on load. On
// resume, the latest record per key wins: "done" cells are skipped and
// their results reused, "failed" cells re-run.
//
// The journal API is exported because it outgrew this package: the
// distributed sweep fabric (internal/fabric) persists every campaign it
// coordinates through the same fsynced stream, so a coordinator crash is
// exactly as resumable as a local campaign crash.

// Journal record kinds and cell statuses.
const (
	KindHeader = "campaign"
	KindCell   = "cell"
	// KindSpan records a finalized cell's observability spans (the fabric
	// coordinator writes one per cell as it completes), so a crash-resumed
	// coordinator reconstructs campaign timelines, not just results. Loaders
	// that predate span records skip unknown kinds, so the journal stays
	// backward- and forward-compatible.
	KindSpan = "spans"

	StatusDone   = "done"
	StatusFailed = "failed"
)

// Record is one journal line.
type Record struct {
	Kind string `json:"kind"`

	// Header fields.
	Campaign    string `json:"campaign,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Cell fields.
	Key       string          `json:"key,omitempty"`
	Status    string          `json:"status,omitempty"`
	Attempts  int             `json:"attempts,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	FailKind  FailKind        `json:"fail_kind,omitempty"`
	Error     string          `json:"error,omitempty"`
	Stack     string          `json:"stack,omitempty"`
	ElapsedMS int64           `json:"elapsed_ms,omitempty"`

	// Worker identifies which fabric worker produced the record (empty for
	// local in-process campaigns).
	Worker string `json:"worker,omitempty"`

	// Digest is the result's attestation digest (fabric.ResultDigest over
	// campaign ID, job key, config fingerprint, and the result payload) when
	// the record came through the sweep fabric's verified path; empty for
	// local campaigns. A coordinator reloading a journal re-verifies it, so
	// at-rest corruption of a result is caught at resume instead of leaking
	// into a report.
	Digest string `json:"digest,omitempty"`

	// Spans carries a finalized cell's observability timeline (KindSpan
	// records only).
	Spans []obs.Span `json:"spans,omitempty"`
}

// LoadJournal reads a journal for resume, returning the latest record per
// cell key plus human-readable warnings about tolerated damage. A missing
// file is an empty (fresh) campaign. A header whose fingerprint differs
// from fingerprint (both non-empty) is an error: the journal belongs to a
// campaign run with different options.
//
// Damage tolerance is deliberately narrow: a SIGKILL can tear at most the
// final record mid-write (writes are line-atomic under the journal mutex),
// so an unparseable *last* line is skipped with a warning, while an
// unparseable line with valid records after it cannot be a torn tail and
// fails the resume — silently dropping mid-file records would resurrect
// completed cells and break report identity.
func LoadJournal(path, fingerprint string) (map[string]*Record, []string, error) {
	recs, _, warns, err := LoadJournalFull(path, fingerprint)
	return recs, warns, err
}

// LoadJournalFull is LoadJournal plus the per-cell span records (latest
// KindSpan record per key wins, mirroring cell-record semantics): the
// fabric coordinator uses it to reconstruct campaign timelines across a
// crash/restart.
func LoadJournalFull(path, fingerprint string) (map[string]*Record, map[string][]obs.Span, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*Record{}, map[string][]obs.Span{}, nil, nil
		}
		return nil, nil, nil, fmt.Errorf("harness: resume: %w", err)
	}
	defer f.Close()

	out := map[string]*Record{}
	spans := map[string][]obs.Span{}
	var warns []string
	tornLine := 0 // 1-based line number of a pending unparseable line
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if tornLine != 0 {
			// A parseable-or-not line after the bad one: the damage is not a
			// torn tail, it is mid-file corruption.
			return nil, nil, nil, fmt.Errorf("harness: resume: %s:%d: corrupt record is not the final line (journal damaged mid-file)",
				path, tornLine)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Remember it; only acceptable if nothing follows.
			tornLine = lineNo
			continue
		}
		switch rec.Kind {
		case KindHeader:
			if fingerprint != "" && rec.Fingerprint != "" && rec.Fingerprint != fingerprint {
				return nil, nil, nil, fmt.Errorf("harness: resume: journal %s was written with different options (%q, want %q)",
					path, rec.Fingerprint, fingerprint)
			}
		case KindCell:
			if rec.Key != "" {
				r := rec
				out[rec.Key] = &r
			}
		case KindSpan:
			if rec.Key != "" {
				spans[rec.Key] = rec.Spans
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: resume: reading %s: %w", path, err)
	}
	if tornLine != 0 {
		warns = append(warns, fmt.Sprintf("harness: resume: %s:%d: skipping torn final record (interrupted mid-write); its cell will re-run",
			path, tornLine))
	}
	return out, spans, warns, nil
}

// Journal appends checkpoint records. All methods are nil-safe so callers
// can thread an unconfigured journal through unconditionally. Writes are
// serialized by the caller (the campaign mutex locally, the coordinator
// mutex in the fabric).
type Journal struct {
	f *os.File
	w *bufio.Writer
}

// OpenJournal opens (creating if needed) the journal for appending and
// writes the campaign header.
func OpenJournal(path, name, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	j.Append(Record{Kind: KindHeader, Campaign: name, Fingerprint: fingerprint})
	return j, nil
}

// Append marshals one record, writes it as a line, and syncs: a checkpoint
// that is not durable is not a checkpoint.
func (j *Journal) Append(rec Record) {
	if j == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return // results are plain data types; marshal failure means no checkpoint, not no result
	}
	j.w.Write(b)
	j.w.WriteByte('\n')
	j.w.Flush()
	j.f.Sync()
}

// Done checkpoints a completed cell with its JSON-encoded result. worker
// attributes the cell to a fabric worker and digest carries the result's
// attestation digest ("" for both on local campaigns).
func (j *Journal) Done(key string, attempts int, result any, worker, digest string) {
	if j == nil {
		return
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return
	}
	j.Append(Record{Kind: KindCell, Key: key, Status: StatusDone, Attempts: attempts, Result: raw, Worker: worker, Digest: digest})
}

// Spans checkpoints a finalized cell's observability timeline. Span
// records ride the same fsynced stream as results, so a coordinator
// crash/restart reconstructs campaign traces for completed cells.
func (j *Journal) Spans(key string, spans []obs.Span) {
	if j == nil || len(spans) == 0 {
		return
	}
	j.Append(Record{Kind: KindSpan, Key: key, Spans: spans})
}

// Failed checkpoints a cell that exhausted its attempts.
func (j *Journal) Failed(f JobFailure, worker string) {
	if j == nil {
		return
	}
	j.Append(Record{
		Kind: KindCell, Key: f.Key, Status: StatusFailed,
		Attempts: f.Attempts, Seed: f.Seed,
		FailKind: f.Kind, Error: f.Err, Stack: f.Stack,
		Worker: worker,
	})
}

// Flush forces buffered records to disk.
func (j *Journal) Flush() {
	if j == nil {
		return
	}
	j.w.Flush()
	j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.Flush()
	j.f.Close()
}
