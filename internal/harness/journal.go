package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// The journal is a JSONL checkpoint stream: one header line per campaign
// (appended each time a process opens the file) and one record line per
// finished cell. Records are appended and fsynced as cells complete, so an
// interruption — SIGINT, crash, SIGKILL — loses at most the in-flight
// cells; a torn final line from a mid-write kill is tolerated on load. On
// resume, the latest record per key wins: "done" cells are skipped and
// their results reused, "failed" cells re-run.

const (
	kindHeader = "campaign"
	kindCell   = "cell"

	statusDone   = "done"
	statusFailed = "failed"
)

// record is one journal line.
type record struct {
	Kind string `json:"kind"`

	// Header fields.
	Campaign    string `json:"campaign,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Cell fields.
	Key       string          `json:"key,omitempty"`
	Status    string          `json:"status,omitempty"`
	Attempts  int             `json:"attempts,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	FailKind  FailKind        `json:"fail_kind,omitempty"`
	Error     string          `json:"error,omitempty"`
	Stack     string          `json:"stack,omitempty"`
	ElapsedMS int64           `json:"elapsed_ms,omitempty"`
}

// loadJournal reads a journal for resume, returning the latest record per
// cell key. A missing file is an empty (fresh) campaign. A header whose
// fingerprint differs from fingerprint (both non-empty) is an error: the
// journal belongs to a campaign run with different options.
func loadJournal(path, fingerprint string) (map[string]*record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*record{}, nil
		}
		return nil, fmt.Errorf("harness: resume: %w", err)
	}
	defer f.Close()

	out := map[string]*record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail line from a mid-write kill: ignore. (Torn lines
			// can only be last — writes are line-atomic under the journal
			// mutex — so anything unparseable is the kill point.)
			continue
		}
		switch rec.Kind {
		case kindHeader:
			if fingerprint != "" && rec.Fingerprint != "" && rec.Fingerprint != fingerprint {
				return nil, fmt.Errorf("harness: resume: journal %s was written with different options (%q, want %q)",
					path, rec.Fingerprint, fingerprint)
			}
		case kindCell:
			if rec.Key != "" {
				r := rec
				out[rec.Key] = &r
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: resume: reading %s: %w", path, err)
	}
	return out, nil
}

// journal appends checkpoint records. All methods are nil-safe so callers
// can thread an unconfigured journal through unconditionally; writes are
// serialized by the campaign mutex.
type journal struct {
	f *os.File
	w *bufio.Writer
}

// openJournal opens (creating if needed) the journal for appending and
// writes the campaign header.
func openJournal(path, name, fingerprint string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: journal: %w", err)
	}
	j := &journal{f: f, w: bufio.NewWriter(f)}
	j.append(record{Kind: kindHeader, Campaign: name, Fingerprint: fingerprint})
	return j, nil
}

// append marshals one record, writes it as a line, and syncs: a checkpoint
// that is not durable is not a checkpoint.
func (j *journal) append(rec record) {
	if j == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return // results are plain data types; marshal failure means no checkpoint, not no result
	}
	j.w.Write(b)
	j.w.WriteByte('\n')
	j.w.Flush()
	j.f.Sync()
}

// done checkpoints a completed cell with its JSON-encoded result.
func (j *journal) done(key string, attempts int, result any) {
	if j == nil {
		return
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return
	}
	j.append(record{Kind: kindCell, Key: key, Status: statusDone, Attempts: attempts, Result: raw})
}

// failed checkpoints a cell that exhausted its attempts.
func (j *journal) failed(f JobFailure) {
	if j == nil {
		return
	}
	j.append(record{
		Kind: kindCell, Key: f.Key, Status: statusFailed,
		Attempts: f.Attempts, Seed: f.Seed,
		FailKind: f.Kind, Error: f.Err, Stack: f.Stack,
	})
}

// flush forces buffered records to disk.
func (j *journal) flush() {
	if j == nil {
		return
	}
	j.w.Flush()
	j.f.Sync()
}

// close flushes and closes the journal file.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.flush()
	j.f.Close()
}
