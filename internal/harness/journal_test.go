package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mtvp/internal/obs"
)

// writeJournal builds a journal with a header and n done cells, returning
// the path and the file's full contents.
func writeJournal(t *testing.T, n int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, err := OpenJournal(path, "torn", "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j.Done(fmt.Sprintf("cell-%02d", i), 1, i*10, "", "")
	}
	j.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, b
}

// A journal whose final record is byte-truncated (the SIGKILL-mid-write
// case) must resume by skipping the torn tail with a warning, not fail.
func TestResumeSkipsTornFinalRecord(t *testing.T) {
	path, full := writeJournal(t, 4)

	// Truncate at several depths into the final record, including cutting
	// into the middle of the JSON and leaving a bare "{".
	lastLine := full[:len(full)-1] // drop trailing newline
	lastStart := strings.LastIndexByte(string(lastLine), '\n') + 1
	for _, cut := range []int{1, 5, (len(full) - lastStart) / 2} {
		if err := os.WriteFile(path, full[:lastStart+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, warns, err := LoadJournal(path, "fp")
		if err != nil {
			t.Fatalf("cut=%d: torn tail must be tolerated, got error: %v", cut, err)
		}
		if len(warns) != 1 || !strings.Contains(warns[0], "torn final record") {
			t.Fatalf("cut=%d: want one torn-tail warning, got %q", cut, warns)
		}
		if len(recs) != 3 {
			t.Fatalf("cut=%d: want the 3 intact cells, got %d", cut, len(recs))
		}
		if recs["cell-03"] != nil {
			t.Fatalf("cut=%d: torn cell-03 must not resume as done", cut)
		}
	}
}

// An undamaged journal resumes with no warnings.
func TestResumeCleanJournalNoWarnings(t *testing.T) {
	path, _ := writeJournal(t, 4)
	recs, warns, err := LoadJournal(path, "fp")
	if err != nil || len(warns) != 0 {
		t.Fatalf("clean journal: err=%v warns=%q", err, warns)
	}
	if len(recs) != 4 {
		t.Fatalf("want 4 cells, got %d", len(recs))
	}
}

// Corruption that is NOT a torn tail — an unparseable line with valid
// records after it — must fail the resume loudly: silently dropping
// mid-file records would resurrect completed cells.
func TestResumeRejectsMidFileCorruption(t *testing.T) {
	path, full := writeJournal(t, 4)
	lines := strings.SplitAfter(string(full), "\n")
	lines[2] = lines[2][:len(lines[2])/2] + "\n" // tear a middle record
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadJournal(path, "fp")
	if err == nil || !strings.Contains(err.Error(), "mid-file") {
		t.Fatalf("mid-file corruption must fail resume, got %v", err)
	}
}

// A harness.Run resume over a byte-truncated journal completes the torn
// cell and surfaces the warning through OnEvent — the end-to-end contract
// of the hardening.
func TestRunResumesAcrossTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	jobs := make([]Job[int], 4)
	var ran []string
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key:  fmt.Sprintf("cell-%02d", i),
			Seed: uint64(i),
			Run: func(context.Context, *Heartbeat) (int, error) {
				ran = append(ran, fmt.Sprintf("cell-%02d", i))
				return i * 10, nil
			},
		}
	}
	cfg := Config{Name: "torn", Workers: 1, Journal: path, Fingerprint: "fp"}
	if _, err := Run(context.Background(), cfg, jobs); err != nil {
		t.Fatal(err)
	}

	// Tear the final record, then resume: only the torn cell re-runs.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	ran = nil
	var warned bool
	cfg.Resume = true
	cfg.OnEvent = func(ev Event) {
		if ev.Kind == EventWarn && strings.Contains(ev.Err, "torn final record") {
			warned = true
		}
	}
	camp, err := Run(context.Background(), cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Fatal("resume over a torn tail must emit an EventWarn")
	}
	if len(ran) != 1 || ran[0] != "cell-03" {
		t.Fatalf("only the torn cell should re-run, ran %v", ran)
	}
	for i := 0; i < 4; i++ {
		if got := camp.Results[fmt.Sprintf("cell-%02d", i)]; got != i*10 {
			t.Fatalf("cell-%02d = %d, want %d", i, got, i*10)
		}
	}
}

// InterruptedError maps signals to the conventional 128+signum exit codes.
func TestInterruptedErrorExitCodes(t *testing.T) {
	cases := []struct {
		sig  os.Signal
		want int
	}{
		{syscall.SIGINT, 130},
		{syscall.SIGTERM, 143},
		{nil, 130},
	}
	for _, c := range cases {
		e := &InterruptedError{Sig: c.sig, msg: "interrupted"}
		if got := e.ExitCode(); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.sig, got, c.want)
		}
		if !errors.Is(e, ErrInterrupted) {
			t.Errorf("InterruptedError must match ErrInterrupted")
		}
	}
}

// The journal accepts raw JSON results without double-encoding them.
func TestJournalRawResultRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "raw.jsonl")
	j, err := OpenJournal(path, "raw", "")
	if err != nil {
		t.Fatal(err)
	}
	j.Done("k", 1, json.RawMessage(`{"ipc":1.25}`), "w1", "sha256:feed")
	j.Close()
	recs, _, err := LoadJournal(path, "")
	if err != nil {
		t.Fatal(err)
	}
	rec := recs["k"]
	if rec == nil || string(rec.Result) != `{"ipc":1.25}` || rec.Worker != "w1" || rec.Digest != "sha256:feed" {
		t.Fatalf("bad round trip: %+v", rec)
	}
}

// Span records ride the journal next to cell records: LoadJournalFull
// returns the latest span set per key, plain LoadJournal skips them (older
// readers keep working), and a torn span tail is tolerated like any other
// torn record.
func TestJournalSpanRecordsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	j, err := OpenJournal(path, "obs", "fp")
	if err != nil {
		t.Fatal(err)
	}
	j.Done("cell-00", 1, 42, "w1", "digest")
	mk := func(id string, attempt int) obs.Span {
		return obs.Span{
			Trace: "t0", ID: id, Kind: obs.KindLease, Key: "cell-00",
			Worker: "w1", Attempt: attempt,
			Start:  time.Unix(1_700_000_000, 0).UTC(),
			End:    time.Unix(1_700_000_009, 0).UTC(),
			Status: obs.StatusOK, Final: true,
		}
	}
	j.Spans("cell-00", []obs.Span{mk("aaaa", 1)})
	// A rewrite for the same key supersedes the first set.
	j.Spans("cell-00", []obs.Span{mk("aaaa", 1), mk("bbbb", 2)})
	j.Close()

	recs, spans, warns, err := LoadJournalFull(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("unexpected warnings: %q", warns)
	}
	if recs["cell-00"] == nil {
		t.Fatal("cell record lost")
	}
	got := spans["cell-00"]
	if len(got) != 2 || got[0].ID != "aaaa" || got[1].ID != "bbbb" {
		t.Fatalf("latest span set must win: %+v", got)
	}
	if !got[0].Start.Equal(time.Unix(1_700_000_000, 0)) || got[1].Attempt != 2 {
		t.Fatalf("span fields must round-trip: %+v", got)
	}

	// The plain loader ignores span records entirely.
	recs2, _, err := LoadJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 1 || recs2["cell-00"] == nil {
		t.Fatalf("LoadJournal must still see exactly the cell record: %+v", recs2)
	}
}
