package harness

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// The interruption tests re-exec this test binary as a helper process
// running a slow journaled campaign, kill it mid-sweep (SIGKILL for the
// crash case, SIGINT for the graceful-drain case), then resume from the
// journal in-process and require the resumed campaign's report to be
// byte-identical to an uninterrupted run's.

const (
	helperEnv    = "MTVP_HARNESS_HELPER"
	helperJrnEnv = "MTVP_HARNESS_JOURNAL"
	helperSigEnv = "MTVP_HARNESS_SIGNALS"
)

// helperJobs is the deterministic slow sweep both processes run: every cell
// beats while "simulating", sleeps ~120ms, and returns a value derived only
// from its index.
func helperJobs() []Job[int] {
	var jobs []Job[int]
	for i := 0; i < 16; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key:  fmt.Sprintf("sweep/cell-%02d", i),
			Seed: uint64(i),
			Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
				for tick := uint64(1); tick <= 12; tick++ {
					hb.Beat(tick * 1024)
					select {
					case <-ctx.Done():
						return 0, ctx.Err()
					case <-time.After(10 * time.Millisecond):
					}
				}
				return i*31 + 7, nil
			},
		})
	}
	return jobs
}

// report renders campaign results sorted by job key — never by completion
// order — so two runs of the same sweep are byte-comparable.
func report(c *Campaign[int]) string {
	keys := make([]string, 0, len(c.Results))
	for k := range c.Results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %d\n", k, c.Results[k])
	}
	return b.String()
}

// TestHelperSlowCampaign is not a real test: it is the body of the helper
// process the interruption tests spawn. Guarded by an env var so the
// normal test run skips it.
func TestHelperSlowCampaign(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process body; spawned by the interruption tests")
	}
	cfg := Config{
		Name:          "helper",
		Workers:       2,
		Journal:       os.Getenv(helperJrnEnv),
		Resume:        true,
		HandleSignals: os.Getenv(helperSigEnv) == "1",
	}
	_, err := Run(context.Background(), cfg, helperJobs())
	if err != nil && !errors.Is(err, ErrInterrupted) {
		t.Fatalf("helper campaign: %v", err)
	}
	fmt.Println("HELPER-EXITED-CLEANLY")
}

// spawnHelper starts the helper process and returns it plus its journal path.
func spawnHelper(t *testing.T, handleSignals bool) (*exec.Cmd, string) {
	t.Helper()
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperSlowCampaign$", "-test.v")
	sig := "0"
	if handleSignals {
		sig = "1"
	}
	cmd.Env = append(os.Environ(),
		helperEnv+"=1", helperJrnEnv+"="+journal, helperSigEnv+"="+sig)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning helper: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	})
	return cmd, journal
}

// waitForDone polls the journal until at least n cells are recorded done
// (the helper is mid-sweep with real completed work to lose).
func waitForDone(t *testing.T, journal string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if countDone(journal) >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("helper never journaled %d done cells", n)
}

func countDone(journal string) int {
	f, err := os.Open(journal)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"status":"done"`) {
			n++
		}
	}
	return n
}

// uninterruptedReport runs the same sweep start-to-finish with no journal.
func uninterruptedReport(t *testing.T) string {
	t.Helper()
	camp, err := Run(context.Background(), Config{Workers: 4}, helperJobs())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	return report(camp)
}

// TestSIGKILLThenResumeMatchesUninterrupted is the acceptance criterion: a
// campaign killed with SIGKILL mid-sweep and relaunched with resume produces
// the same report as a run that was never interrupted.
func TestSIGKILLThenResumeMatchesUninterrupted(t *testing.T) {
	cmd, journal := spawnHelper(t, false)
	waitForDone(t, journal, 3)
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	doneBefore := countDone(journal)
	camp, err := Run(context.Background(),
		Config{Name: "helper", Workers: 4, Journal: journal, Resume: true}, helperJobs())
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if camp.Summary.Skipped != doneBefore {
		t.Errorf("resume skipped %d cells, journal had %d done", camp.Summary.Skipped, doneBefore)
	}
	if camp.Summary.Skipped+camp.Summary.Completed != 16 {
		t.Errorf("resume did not cover the sweep: %+v", camp.Summary)
	}
	if got, want := report(camp), uninterruptedReport(t); got != want {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
}

// TestSIGINTDrainsAndResumes: the graceful-shutdown handler lets in-flight
// cells finish, flushes the journal, and exits cleanly; resume completes
// the sweep with the identical report.
func TestSIGINTDrainsAndResumes(t *testing.T) {
	cmd, journal := spawnHelper(t, true)
	waitForDone(t, journal, 2)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("helper did not exit cleanly after SIGINT: %v\n%s", err, cmd.Stdout)
	}

	camp, err := Run(context.Background(),
		Config{Name: "helper", Workers: 4, Journal: journal, Resume: true}, helperJobs())
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if camp.Summary.Skipped == 0 {
		t.Error("nothing was drained to the journal before the SIGINT exit")
	}
	if got, want := report(camp), uninterruptedReport(t); got != want {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
}
