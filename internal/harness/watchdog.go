package harness

import (
	"context"
	"sync/atomic"
	"time"
)

// Heartbeat is a job's progress channel to the stall watchdog: the job (or
// the simulator, through its config.Observe hook) calls Beat with a
// monotonically advancing progress value — simulated cycles, in the sweeps —
// and the watchdog cancels the attempt when the value stops changing. A nil
// Heartbeat is safe to beat.
type Heartbeat struct {
	v     atomic.Uint64
	beats atomic.Uint64
}

// Beat reports progress. The value only has to change while the job is
// making progress; simulated-cycle counts are the natural choice.
func (h *Heartbeat) Beat(progress uint64) {
	if h == nil {
		return
	}
	h.v.Store(progress)
	h.beats.Add(1)
}

// Load returns the last beaten progress value.
func (h *Heartbeat) Load() uint64 {
	if h == nil {
		return 0
	}
	return h.v.Load()
}

// watch starts the simulated-cycle progress watchdog: once the job has
// beaten at least once, if the heartbeat value then fails to advance for
// stall, onStall fires (the runner cancels the attempt's context with
// ErrStalled). Jobs that never beat are left to the wall-clock deadline.
// The returned func stops the watchdog. A stall of 0 disables it.
func watch(ctx context.Context, hb *Heartbeat, stall time.Duration, onStall func()) (stop func()) {
	if stall <= 0 {
		return func() {}
	}
	poll := stall / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	stopCh := make(chan struct{})
	go func() {
		t := time.NewTicker(poll)
		defer t.Stop()
		var (
			armed      bool
			last       uint64
			lastChange time.Time
		)
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopCh:
				return
			case now := <-t.C:
				if hb.beats.Load() == 0 {
					continue // not armed until the first beat
				}
				cur := hb.Load()
				if !armed || cur != last {
					armed, last, lastChange = true, cur, now
					continue
				}
				if now.Sub(lastChange) > stall {
					onStall()
					return
				}
			}
		}
	}()
	return func() { close(stopCh) }
}
