// Package harness is the resilient parallel campaign runner behind the
// experiment sweeps: it executes sweep cells (benchmark × machine-config
// jobs) on a bounded worker pool and keeps a multi-hour campaign alive
// through the failures that would kill a naive fan-out loop.
//
//   - Every job runs under a per-attempt wall-clock deadline and a
//     simulated-cycle progress watchdog: the job reports progress through a
//     Heartbeat, and an attempt whose heartbeat stops advancing is canceled
//     through its context (the simulator honours cancellation via
//     config.Config.Observe).
//   - A panic inside a job is captured in the worker — stack, job key, seed
//     — and becomes a structured JobFailure record instead of process death.
//   - Failed and timed-out attempts are retried with exponential backoff and
//     a bounded budget, reusing internal/fault's Backoff machinery (the same
//     state machine that paces the simulated machine's own recoveries).
//   - Progress checkpoints stream to a JSONL journal, so a campaign cut down
//     by a crash or SIGKILL resumes by skipping already-completed cells and
//     re-running only the failures. A graceful-shutdown handler (SIGINT /
//     SIGTERM) stops dispatch, drains in-flight workers, and flushes the
//     journal; a second signal cancels in-flight jobs too.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mtvp/internal/fault"
)

// Sentinel causes attached to job contexts and campaign errors.
var (
	// ErrDeadline is the cancellation cause when a job attempt exceeds its
	// wall-clock deadline.
	ErrDeadline = errors.New("harness: job deadline exceeded")
	// ErrStalled is the cancellation cause when a job attempt's heartbeat
	// stops advancing for longer than the stall timeout.
	ErrStalled = errors.New("harness: job progress stalled")
	// ErrInterrupted wraps the campaign error after a graceful shutdown:
	// completed cells are journaled, undispatched cells were never started.
	ErrInterrupted = errors.New("harness: campaign interrupted")
)

// InterruptedError is the concrete campaign error after a graceful
// shutdown. It matches errors.Is(err, ErrInterrupted) and remembers which
// signal triggered the drain so CLIs can exit with the conventional
// 128+signum code (130 for SIGINT, 143 for SIGTERM — containers send
// SIGTERM). Sig is nil when the caller's own context died instead.
type InterruptedError struct {
	Sig os.Signal
	msg string
}

func (e *InterruptedError) Error() string { return e.msg }

func (e *InterruptedError) Unwrap() error { return ErrInterrupted }

// ExitCode returns the conventional process exit code for the interrupting
// signal: 128+signum for a known signal, 130 otherwise (the historical
// SIGINT default this harness always used).
func (e *InterruptedError) ExitCode() int {
	if s, ok := e.Sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 130
}

// Config tunes one campaign run. The zero value is usable: every worker the
// machine has, no deadlines, no retries, no journal.
type Config struct {
	// Name identifies the campaign in the journal header and summaries.
	Name string
	// Workers bounds the pool; <1 selects GOMAXPROCS.
	Workers int
	// Timeout is the per-attempt wall-clock deadline (0 = none).
	Timeout time.Duration
	// StallTimeout cancels an attempt whose Heartbeat has not advanced for
	// this long (0 = watchdog off). Jobs that never beat are only subject
	// to Timeout.
	StallTimeout time.Duration
	// Retries is how many times a failed or timed-out job is re-run after
	// its first attempt.
	Retries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it via the fault.Backoff multiplier, capped at BackoffMax.
	// Zero selects 100ms (and 10s for BackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Grace is how long a worker waits, after canceling an attempt, for the
	// job function to return cooperatively before abandoning its goroutine
	// and moving on (a truly wedged job leaks one goroutine instead of
	// wedging the campaign). Zero selects 1s.
	Grace time.Duration
	// Journal is the JSONL checkpoint path ("" = no checkpointing). Records
	// are appended and fsynced as cells finish, so a SIGKILL loses at most
	// the in-flight cells.
	Journal string
	// Resume loads an existing journal first: cells recorded "done" are
	// skipped and their journaled results reused; "failed" cells re-run.
	Resume bool
	// Fingerprint guards resume: it is written into the journal header and
	// must match the prior run's (campaigns run with different options must
	// not silently mix results).
	Fingerprint string
	// HandleSignals installs the graceful-shutdown handler for the duration
	// of the campaign: the first SIGINT/SIGTERM stops dispatching queued
	// cells and drains in-flight workers; a second cancels in-flight jobs.
	HandleSignals bool
	// OnEvent, when non-nil, receives progress events (retries, failures,
	// completions) for logging. Called from worker goroutines.
	OnEvent func(Event)
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 100 * time.Millisecond
	}
	return c.BackoffBase
}

func (c Config) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 10 * time.Second
	}
	return c.BackoffMax
}

func (c Config) grace() time.Duration {
	if c.Grace <= 0 {
		return time.Second
	}
	return c.Grace
}

// Job is one sweep cell: a stable key (the journal identity, e.g.
// "fig1/mcf/mtvp4"), the seed it runs with (recorded in failures), and the
// function that computes its result.
type Job[R any] struct {
	Key  string
	Seed uint64
	Run  func(ctx context.Context, hb *Heartbeat) (R, error)
}

// FailKind classifies why a job attempt (or cell) failed.
type FailKind string

// Failure kinds.
const (
	FailError       FailKind = "error"       // the job returned an error
	FailPanic       FailKind = "panic"       // the job panicked (stack captured)
	FailTimeout     FailKind = "timeout"     // wall-clock deadline exceeded
	FailStall       FailKind = "stall"       // progress watchdog fired
	FailInterrupted FailKind = "interrupted" // campaign shutdown canceled the attempt
)

// JobFailure is the structured record of a cell that exhausted its attempts.
type JobFailure struct {
	Key      string   `json:"key"`
	Seed     uint64   `json:"seed"`
	Kind     FailKind `json:"kind"`
	Attempts int      `json:"attempts"`
	Err      string   `json:"error"`
	// Stack is the captured goroutine stack when Kind is FailPanic.
	Stack string `json:"stack,omitempty"`
}

func (f JobFailure) String() string {
	return fmt.Sprintf("%s: %s after %d attempt(s): %s", f.Key, f.Kind, f.Attempts, f.Err)
}

// FailedError is the campaign error when cells exhausted their retry
// budgets: the rest of the campaign completed and was journaled.
type FailedError struct {
	Failures []JobFailure
}

func (e *FailedError) Error() string {
	return fmt.Sprintf("harness: %d cell(s) exhausted retries (first: %s)",
		len(e.Failures), e.Failures[0].String())
}

// PanicError is the error a captured job panic is converted to.
type PanicError struct {
	Value string
	Stack string
}

func (e *PanicError) Error() string { return "panic: " + e.Value }

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks a job error as not worth retrying (e.g. a deterministic
// oracle divergence: re-running the same cell reproduces it exactly).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// EventKind tags OnEvent notifications.
type EventKind string

// Event kinds.
const (
	EventStart EventKind = "start" // a worker picked the cell up
	EventDone  EventKind = "done"
	EventSkip  EventKind = "skip" // resumed from the journal
	EventRetry EventKind = "retry"
	EventFail  EventKind = "fail"
	EventDrain EventKind = "drain" // shutdown signal: dispatch stopped
	EventWarn  EventKind = "warn"  // tolerated damage (e.g. a torn journal tail); text in Err
)

// Event is one campaign progress notification.
type Event struct {
	Kind    EventKind
	Key     string
	Attempt int
	Err     string
}

// Campaign is the outcome of a Run: results keyed by job key (completed and
// resumed cells only) and the aggregate summary.
type Campaign[R any] struct {
	Results map[string]R
	Summary *Summary
}

// outcome is a worker's verdict on one cell.
type outcome[R any] struct {
	res      R
	fail     *JobFailure
	attempts int
	timeouts int
	stalls   int
	panics   int
}

// Run executes the jobs on the configured pool and blocks until every
// dispatched cell has completed, failed its retry budget, or been drained by
// a shutdown signal. It returns the campaign (always non-nil, with whatever
// completed) and an error that is nil on full success, a *FailedError when
// cells exhausted retries, or wraps ErrInterrupted after a graceful
// shutdown.
func Run[R any](ctx context.Context, cfg Config, jobs []Job[R]) (*Campaign[R], error) {
	start := time.Now()
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" || j.Run == nil {
			return nil, fmt.Errorf("harness: job with empty key or nil Run")
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("harness: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
	}

	camp := &Campaign[R]{
		Results: make(map[string]R, len(jobs)),
		Summary: &Summary{Name: cfg.Name, Total: len(jobs)},
	}
	sum := camp.Summary

	// Journal: load prior state when resuming, then open for appending.
	var prior map[string]*Record
	if cfg.Journal != "" && cfg.Resume {
		var (
			warns []string
			err   error
		)
		prior, warns, err = LoadJournal(cfg.Journal, cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		for _, w := range warns {
			cfg.emit(Event{Kind: EventWarn, Err: w})
		}
	}
	var jnl *Journal
	if cfg.Journal != "" {
		var err error
		jnl, err = OpenJournal(cfg.Journal, cfg.Name, cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		defer jnl.Close()
	}

	// Partition: journaled-done cells are skipped, everything else runs.
	var torun []Job[R]
	for _, j := range jobs {
		rec := prior[j.Key]
		if rec != nil && rec.Status == StatusDone {
			var r R
			if err := json.Unmarshal(rec.Result, &r); err == nil {
				camp.Results[j.Key] = r
				sum.Skipped++
				cfg.emit(Event{Kind: EventSkip, Key: j.Key})
				continue
			}
			// A corrupt result record is treated as not-done: re-run.
		}
		torun = append(torun, j)
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	drainCh := make(chan struct{})
	var drainSig atomic.Value // os.Signal that triggered the drain
	if cfg.HandleSignals {
		sigCh := make(chan os.Signal, 2)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		go func() {
			select {
			case s := <-sigCh:
				drainSig.Store(s)
				cfg.emit(Event{Kind: EventDrain})
				close(drainCh) // first signal: stop dispatch, drain workers
			case <-runCtx.Done():
				return
			}
			select {
			case <-sigCh:
				cancel(ErrInterrupted) // second signal: cancel in-flight jobs
			case <-runCtx.Done():
			}
		}()
	}

	var (
		mu    sync.Mutex // camp.Results, sum, journal appends
		wg    sync.WaitGroup
		jobCh = make(chan Job[R])
	)
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg.emit(Event{Kind: EventStart, Key: j.Key})
				o := execute(runCtx, cfg, j)
				mu.Lock()
				sum.Attempts += o.attempts
				sum.Timeouts += o.timeouts
				sum.Stalls += o.stalls
				sum.Panics += o.panics
				if o.attempts > 1 {
					sum.Retried++
					sum.Retries += o.attempts - 1
				}
				if o.fail == nil {
					camp.Results[j.Key] = o.res
					sum.Completed++
					jnl.Done(j.Key, o.attempts, o.res, "", "")
				} else {
					sum.Failed++
					sum.Failures = append(sum.Failures, *o.fail)
					jnl.Failed(*o.fail, "")
				}
				mu.Unlock()
				if o.fail == nil {
					cfg.emit(Event{Kind: EventDone, Key: j.Key, Attempt: o.attempts})
				} else {
					cfg.emit(Event{Kind: EventFail, Key: j.Key, Attempt: o.attempts, Err: o.fail.Err})
				}
			}
		}()
	}

	drained := false
feed:
	for _, j := range torun {
		select {
		case jobCh <- j:
		case <-drainCh:
			drained = true
			break feed
		case <-runCtx.Done():
			drained = true
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	jnl.Flush()

	sum.Unrun = sum.Total - sum.Completed - sum.Skipped - sum.Failed
	sort.Slice(sum.Failures, func(i, k int) bool { return sum.Failures[i].Key < sum.Failures[k].Key })
	sum.Wall = time.Since(start)

	if drained || runCtx.Err() != nil {
		if cause := context.Cause(runCtx); cause != nil && !errors.Is(cause, ErrInterrupted) {
			// The caller's own context died (not our signal handler).
			return camp, &InterruptedError{msg: fmt.Sprintf("%v: %v", ErrInterrupted, cause)}
		}
		sig, _ := drainSig.Load().(os.Signal)
		return camp, &InterruptedError{
			Sig: sig,
			msg: fmt.Sprintf("%v: %d of %d cell(s) not run (resume with the journal to finish)",
				ErrInterrupted, sum.Unrun, sum.Total),
		}
	}
	if sum.Failed > 0 {
		return camp, &FailedError{Failures: sum.Failures}
	}
	return camp, nil
}

func (c Config) emit(ev Event) {
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
}

// execute runs one cell to its final verdict: attempts with supervision,
// retries with exponential backoff on a bounded fault.Backoff budget.
func execute[R any](ctx context.Context, cfg Config, j Job[R]) outcome[R] {
	var o outcome[R]
	// Budget of cfg.Retries re-runs; the multiplier doubles per retry, the
	// same machinery that paces the simulator's own deadlock recoveries.
	// (fault.NewBackoff treats <=0 as "default budget", so only build one
	// when retries were actually requested.)
	var bo *fault.Backoff
	if cfg.Retries > 0 {
		bo = fault.NewBackoff(cfg.Retries, 64)
	}
	for {
		o.attempts++
		res, err, cause := attempt(ctx, cfg, j)
		if err == nil {
			o.res = res
			o.fail = nil
			return o
		}
		fail := classify(j, err, cause, o.attempts)
		switch fail.Kind {
		case FailTimeout:
			o.timeouts++
		case FailStall:
			o.stalls++
		case FailPanic:
			o.panics++
		}
		o.fail = &fail

		var perm *permanentError
		retryable := fail.Kind != FailInterrupted && !errors.As(err, &perm)
		if !retryable || ctx.Err() != nil || bo == nil || !bo.Allow() {
			return o
		}
		cfg.emit(Event{Kind: EventRetry, Key: j.Key, Attempt: o.attempts, Err: fail.Err})
		delay := cfg.backoffBase() * time.Duration(bo.Multiplier())
		if max := cfg.backoffMax(); delay > max {
			delay = max
		}
		if !sleepCtx(ctx, delay) {
			return o
		}
	}
}

// attempt runs the job once under its deadline and stall watchdog, capturing
// panics. It returns the job's result or error plus the context cause that
// canceled the attempt (nil when the job ended on its own). The job runs in
// its own goroutine so a wedged job that ignores cancellation is abandoned
// after a grace period instead of wedging the worker.
func attempt[R any](ctx context.Context, cfg Config, j Job[R]) (res R, err error, cause error) {
	jctx := ctx
	var cancelT context.CancelFunc
	if cfg.Timeout > 0 {
		jctx, cancelT = context.WithTimeoutCause(jctx, cfg.Timeout, ErrDeadline)
		defer cancelT()
	}
	jctx, cancelS := context.WithCancelCause(jctx)
	defer cancelS(nil)

	hb := &Heartbeat{}
	stopWatch := watch(jctx, hb, cfg.StallTimeout, func() { cancelS(ErrStalled) })
	defer stopWatch()

	type ret struct {
		res R
		err error
	}
	done := make(chan ret, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- ret{err: &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}}
			}
		}()
		r, e := j.Run(jctx, hb)
		done <- ret{res: r, err: e}
	}()

	var out ret
	select {
	case out = <-done:
	case <-jctx.Done():
		// Give the job a grace period to notice cancellation (the simulator
		// polls its Observe hook every ~1024 cycles, so this is normally
		// microseconds); a job that never returns is abandoned.
		t := time.NewTimer(cfg.grace())
		defer t.Stop()
		select {
		case out = <-done:
		case <-t.C:
			out = ret{err: fmt.Errorf("job abandoned: did not return within %s of cancellation", cfg.grace())}
		}
	}
	if jctx.Err() != nil {
		cause = context.Cause(jctx)
	}
	return out.res, out.err, cause
}

// classify folds an attempt error and its cancellation cause into a
// structured failure record.
func classify[R any](j Job[R], err, cause error, attempts int) JobFailure {
	f := JobFailure{Key: j.Key, Seed: j.Seed, Attempts: attempts, Err: err.Error(), Kind: FailError}
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		f.Kind = FailPanic
		f.Stack = pe.Stack
	case errors.Is(cause, ErrDeadline):
		f.Kind = FailTimeout
	case errors.Is(cause, ErrStalled):
		f.Kind = FailStall
	case cause != nil:
		f.Kind = FailInterrupted
	}
	return f
}

// sleepCtx sleeps for d, returning false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
