package harness

import (
	"fmt"
	"io"
	"time"

	"mtvp/internal/stats"
)

// Summary aggregates one campaign's health: how many cells completed, were
// skipped on resume, retried, failed, or were never run (drained by a
// shutdown), plus attempt-level counters and wall time. Sweeps merge their
// summaries so a whole experiment run reports one table.
type Summary struct {
	Name string

	Total     int // cells submitted
	Completed int // cells that finished and were journaled
	Skipped   int // cells resumed from the journal
	Retried   int // cells that needed at least one retry
	Failed    int // cells that exhausted their retry budget
	Unrun     int // cells never dispatched (shutdown drain)

	Attempts int // total attempts, first tries included
	Retries  int // attempts beyond each cell's first
	Timeouts int // attempts canceled by the wall-clock deadline
	Stalls   int // attempts canceled by the progress watchdog
	Panics   int // attempts that panicked (captured)

	Wall time.Duration

	// Simulated work aggregated from per-cell stats snapshots (sweeps fill
	// these from each cell's stats.Stats): total machine cycles simulated
	// and useful instructions committed across every completed cell.
	SimCycles uint64
	SimInsts  uint64

	// Failures holds the structured records of failed cells, sorted by key.
	Failures []JobFailure

	// Notes are free-form observability lines printed under the summary
	// table (e.g. the fabric's straggler verdict for a remote campaign).
	Notes []string
}

// Merge folds another campaign's summary into s (wall times add — sweeps
// within an experiment run back to back).
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	if s.Name == "" {
		s.Name = o.Name
	}
	s.Total += o.Total
	s.Completed += o.Completed
	s.Skipped += o.Skipped
	s.Retried += o.Retried
	s.Failed += o.Failed
	s.Unrun += o.Unrun
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.Stalls += o.Stalls
	s.Panics += o.Panics
	s.Wall += o.Wall
	s.SimCycles += o.SimCycles
	s.SimInsts += o.SimInsts
	s.Failures = append(s.Failures, o.Failures...)
	s.Notes = append(s.Notes, o.Notes...)
}

// AddTo accumulates the campaign counters into a stats.Stats, the same
// reporting path the simulated machine's counters use.
func (s *Summary) AddTo(st *stats.Stats) {
	st.HarnessCompleted += uint64(s.Completed)
	st.HarnessSkipped += uint64(s.Skipped)
	st.HarnessRetried += uint64(s.Retried)
	st.HarnessRetries += uint64(s.Retries)
	st.HarnessFailed += uint64(s.Failed)
	st.HarnessPanics += uint64(s.Panics)
	st.HarnessTimeouts += uint64(s.Timeouts)
	st.HarnessStalls += uint64(s.Stalls)
}

// Table renders the summary as the campaign health table the CLIs print.
func (s *Summary) Table() *stats.Table {
	title := "Campaign summary"
	if s.Name != "" {
		title += " — " + s.Name
	}
	title += " (wall " + s.Wall.Round(time.Millisecond).String() + ")"
	t := &stats.Table{
		Title: title,
		Columns: []string{"completed", "retried", "failed", "skipped", "unrun",
			"attempts", "timeouts", "stalls", "panics", "Mcycles", "Minsts"},
	}
	t.Add("cells",
		float64(s.Completed), float64(s.Retried), float64(s.Failed),
		float64(s.Skipped), float64(s.Unrun),
		float64(s.Attempts), float64(s.Timeouts), float64(s.Stalls), float64(s.Panics),
		float64(s.SimCycles)/1e6, float64(s.SimInsts)/1e6)
	return t
}

// Render writes the health table followed by any observability notes (the
// form the CLIs print).
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintln(w, s.Table())
	for _, n := range s.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}
