package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mtvp/internal/stats"
)

// fastCfg is a campaign config with aggressive supervision for tests:
// short deadlines, a short stall watchdog, quick backoff.
func fastCfg(journal string) Config {
	return Config{
		Name:         "test",
		Workers:      4,
		Timeout:      300 * time.Millisecond,
		StallTimeout: 50 * time.Millisecond,
		Retries:      2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   5 * time.Millisecond,
		Grace:        50 * time.Millisecond,
		Journal:      journal,
	}
}

// TestFailurePaths drives every supervised failure mode through one
// campaign: panicking, hanging (both cooperative and ctx-deaf), stalling,
// flaky-then-succeeding, and permanently failing jobs, and checks the
// retry counts, failure kinds, and journal records each produces.
func TestFailurePaths(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")

	var flakyTries atomic.Int64
	jobs := []Job[int]{
		{Key: "ok", Seed: 7, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			hb.Beat(1)
			return 42, nil
		}},
		{Key: "panics", Seed: 8, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			panic("injected test panic")
		}},
		{Key: "hangs-cooperative", Seed: 9, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			// Beats continuously (so the stall watchdog stays happy) but
			// never finishes: the wall-clock deadline must cancel it.
			for i := uint64(1); ; i++ {
				hb.Beat(i)
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(time.Millisecond):
				}
			}
		}},
		{Key: "hangs-deaf", Seed: 10, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			select {} // ignores cancellation entirely: must be abandoned
		}},
		{Key: "stalls", Seed: 11, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			// Progresses briefly, then the "simulation" wedges: beats stop
			// advancing while wall-clock work continues.
			hb.Beat(1)
			hb.Beat(2)
			<-ctx.Done()
			return 0, ctx.Err()
		}},
		{Key: "flaky", Seed: 12, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			hb.Beat(1)
			if flakyTries.Add(1) < 3 {
				return 0, errors.New("transient flake")
			}
			return 7, nil
		}},
		{Key: "permanent", Seed: 13, Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
			return 0, Permanent(errors.New("deterministic divergence"))
		}},
	}

	camp, err := Run(context.Background(), fastCfg(journal), jobs)
	var fe *FailedError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FailedError, got %v", err)
	}

	s := camp.Summary
	if s.Completed != 2 || s.Failed != 5 || s.Total != 7 {
		t.Errorf("summary completed=%d failed=%d total=%d, want 2/5/7", s.Completed, s.Failed, s.Total)
	}
	if got := camp.Results["ok"]; got != 42 {
		t.Errorf("ok result = %d, want 42", got)
	}
	if got := camp.Results["flaky"]; got != 7 {
		t.Errorf("flaky result = %d, want 7", got)
	}
	if n := flakyTries.Load(); n != 3 {
		t.Errorf("flaky attempts = %d, want 3 (two retries)", n)
	}
	if s.Retried == 0 || s.Retries < 2 {
		t.Errorf("summary retried=%d retries=%d, want >=1/>=2", s.Retried, s.Retries)
	}
	if s.Timeouts == 0 {
		t.Errorf("no timeout attempts counted")
	}
	if s.Stalls == 0 {
		t.Errorf("no stall attempts counted")
	}
	if s.Panics == 0 {
		t.Errorf("no panic attempts counted")
	}

	// Failures are sorted by key and carry structured identity.
	byKey := map[string]JobFailure{}
	for i, f := range s.Failures {
		byKey[f.Key] = f
		if i > 0 && s.Failures[i-1].Key > f.Key {
			t.Errorf("failures not sorted by key: %q before %q", s.Failures[i-1].Key, f.Key)
		}
	}
	checks := []struct {
		key      string
		kind     FailKind
		attempts int
		seed     uint64
	}{
		{"panics", FailPanic, 3, 8},
		{"hangs-cooperative", FailTimeout, 3, 9},
		{"hangs-deaf", FailTimeout, 3, 10},
		{"stalls", FailStall, 3, 11},
		{"permanent", FailError, 1, 13}, // Permanent: no retries
	}
	for _, c := range checks {
		f, ok := byKey[c.key]
		if !ok {
			t.Errorf("no failure record for %q", c.key)
			continue
		}
		if f.Kind != c.kind || f.Attempts != c.attempts || f.Seed != c.seed {
			t.Errorf("%s: kind=%s attempts=%d seed=%d, want %s/%d/%d",
				c.key, f.Kind, f.Attempts, f.Seed, c.kind, c.attempts, c.seed)
		}
	}
	if pf := byKey["panics"]; !strings.Contains(pf.Stack, "harness_test") {
		t.Errorf("panic failure lacks a captured stack: %q", pf.Stack)
	}

	// The journal holds the same verdicts, durably.
	recs, _, err := LoadJournal(journal, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		rec := recs[c.key]
		if rec == nil || rec.Status != StatusFailed || rec.FailKind != c.kind {
			t.Errorf("journal record for %q = %+v, want failed/%s", c.key, rec, c.kind)
		}
	}
	okRec := recs["ok"]
	if okRec == nil || okRec.Status != StatusDone {
		t.Fatalf("journal record for ok = %+v, want done", okRec)
	}
	var v int
	if err := json.Unmarshal(okRec.Result, &v); err != nil || v != 42 {
		t.Errorf("journaled result for ok = %s (%v), want 42", okRec.Result, err)
	}
	if recs["panics"].Stack == "" {
		t.Errorf("journaled panic record lacks stack")
	}
}

// TestResumeRerunsExactlyTheFailedCells runs a campaign with one failing
// cell, then resumes from its journal: completed cells must be skipped
// (their journaled results reused, job functions not re-invoked) and only
// the failed cell re-run.
func TestResumeRerunsExactlyTheFailedCells(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")

	var invoked [3]atomic.Int64
	var cFails atomic.Bool
	cFails.Store(true)
	mkJobs := func() []Job[int] {
		return []Job[int]{
			{Key: "a", Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
				invoked[0].Add(1)
				return 1, nil
			}},
			{Key: "b", Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
				invoked[1].Add(1)
				return 2, nil
			}},
			{Key: "c", Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
				invoked[2].Add(1)
				if cFails.Load() {
					return 0, errors.New("c is down")
				}
				return 3, nil
			}},
		}
	}

	cfg := fastCfg(journal)
	cfg.Retries = 0
	if _, err := Run(context.Background(), cfg, mkJobs()); err == nil {
		t.Fatal("first campaign should report the failed cell")
	}

	cFails.Store(false)
	cfg.Resume = true
	camp, err := Run(context.Background(), cfg, mkJobs())
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	if camp.Summary.Skipped != 2 || camp.Summary.Completed != 1 {
		t.Errorf("resume skipped=%d completed=%d, want 2/1", camp.Summary.Skipped, camp.Summary.Completed)
	}
	if invoked[0].Load() != 1 || invoked[1].Load() != 1 {
		t.Errorf("completed cells re-invoked on resume: a=%d b=%d, want 1/1",
			invoked[0].Load(), invoked[1].Load())
	}
	if invoked[2].Load() != 2 {
		t.Errorf("failed cell invoked %d times, want 2 (once per campaign)", invoked[2].Load())
	}
	for key, want := range map[string]int{"a": 1, "b": 2, "c": 3} {
		if camp.Results[key] != want {
			t.Errorf("result[%s] = %d, want %d", key, camp.Results[key], want)
		}
	}
}

// TestResumeFingerprintMismatch: a journal written under different campaign
// options must refuse to resume rather than silently mix results.
func TestResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	jobs := []Job[int]{{Key: "a", Run: func(ctx context.Context, hb *Heartbeat) (int, error) { return 1, nil }}}

	cfg := Config{Journal: journal, Fingerprint: "insts=1000 seed=1"}
	if _, err := Run(context.Background(), cfg, jobs); err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	cfg.Fingerprint = "insts=2000 seed=1"
	if _, err := Run(context.Background(), cfg, jobs); err == nil {
		t.Fatal("resume with a different fingerprint should fail")
	}
}

// TestJournalTornTailTolerated: a SIGKILL can land mid-write; the torn last
// line must not poison resume.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	jobs := []Job[int]{{Key: "a", Run: func(ctx context.Context, hb *Heartbeat) (int, error) { return 5, nil }}}
	if _, err := Run(context.Background(), Config{Journal: journal}, jobs); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"kind":"cell","key":"b","status":"do`) // torn mid-record
	f.Close()

	recs, _, err := LoadJournal(journal, "")
	if err != nil {
		t.Fatalf("torn tail broke resume: %v", err)
	}
	if recs["a"] == nil || recs["a"].Status != StatusDone {
		t.Errorf("intact record lost: %+v", recs["a"])
	}
	if recs["b"] != nil {
		t.Errorf("torn record resurrected: %+v", recs["b"])
	}
}

// TestDuplicateKeysRejected: journal identity must be unambiguous.
func TestDuplicateKeysRejected(t *testing.T) {
	jobs := []Job[int]{
		{Key: "dup", Run: func(ctx context.Context, hb *Heartbeat) (int, error) { return 1, nil }},
		{Key: "dup", Run: func(ctx context.Context, hb *Heartbeat) (int, error) { return 2, nil }},
	}
	if _, err := Run(context.Background(), Config{}, jobs); err == nil {
		t.Fatal("duplicate keys should be rejected")
	}
}

// TestParentContextCancelInterrupts: a canceled caller context surfaces as
// ErrInterrupted with partial results journaled.
func TestParentContextCancelInterrupts(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var done atomic.Int64
	var jobs []Job[int]
	for i := 0; i < 12; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key: fmt.Sprintf("cell-%02d", i),
			Run: func(ctx context.Context, hb *Heartbeat) (int, error) {
				if done.Add(1) == 2 {
					cancel() // interrupt mid-campaign
				}
				select {
				case <-time.After(20 * time.Millisecond):
				case <-ctx.Done():
				}
				return i, nil
			},
		})
	}
	cfg := Config{Workers: 2, Journal: journal, Grace: time.Second}
	camp, err := Run(ctx, cfg, jobs)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if camp.Summary.Completed == 0 {
		t.Error("no cells completed before the interrupt")
	}
	if camp.Summary.Completed+camp.Summary.Failed+camp.Summary.Unrun != camp.Summary.Total {
		t.Errorf("summary does not account for every cell: %+v", camp.Summary)
	}
	recs, _, err := LoadJournal(journal, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != camp.Summary.Completed+camp.Summary.Failed {
		t.Errorf("journal has %d records, summary says %d completed + %d failed",
			len(recs), camp.Summary.Completed, camp.Summary.Failed)
	}
}

// TestSummaryMergeAndStats: summaries merge and land in stats.Stats.
func TestSummaryMergeAndStats(t *testing.T) {
	a := &Summary{Name: "fig1", Total: 4, Completed: 3, Failed: 1, Retried: 1,
		Retries: 2, Attempts: 6, Timeouts: 1, Stalls: 1, Panics: 1, Wall: time.Second,
		SimCycles: 100, SimInsts: 50}
	b := &Summary{Total: 2, Completed: 1, Skipped: 1, Wall: time.Second,
		SimCycles: 25, SimInsts: 10}
	a.Merge(b)
	if a.Total != 6 || a.Completed != 4 || a.Skipped != 1 || a.Wall != 2*time.Second {
		t.Errorf("merge wrong: %+v", a)
	}
	if a.SimCycles != 125 || a.SimInsts != 60 {
		t.Errorf("simulated-work merge wrong: cycles=%d insts=%d", a.SimCycles, a.SimInsts)
	}

	var st stats.Stats
	a.AddTo(&st)
	if st.HarnessCompleted != 4 || st.HarnessSkipped != 1 || st.HarnessRetried != 1 ||
		st.HarnessRetries != 2 || st.HarnessFailed != 1 || st.HarnessPanics != 1 ||
		st.HarnessTimeouts != 1 || st.HarnessStalls != 1 {
		t.Errorf("AddTo wrong: %+v", st)
	}
	if !strings.Contains(st.String(), "cells=4") {
		t.Errorf("Stats.String missing harness counters: %s", st.String())
	}

	tab := a.Table()
	if len(tab.Columns) != 11 || len(tab.Rows) != 1 {
		t.Errorf("summary table shape wrong: %+v", tab)
	}
}

// TestZeroConfig: the zero Config runs a plain parallel campaign.
func TestZeroConfig(t *testing.T) {
	var jobs []Job[int]
	for i := 0; i < 32; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key: fmt.Sprintf("cell-%02d", i),
			Run: func(ctx context.Context, hb *Heartbeat) (int, error) { return i * i, nil },
		})
	}
	camp, err := Run(context.Background(), Config{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if camp.Results[fmt.Sprintf("cell-%02d", i)] != i*i {
			t.Fatalf("wrong result for cell %d", i)
		}
	}
	if camp.Summary.Completed != 32 || camp.Summary.Attempts != 32 {
		t.Errorf("summary: %+v", camp.Summary)
	}
}
