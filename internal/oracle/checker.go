package oracle

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

// Record is one committed instruction as reported by the timing pipeline:
// which hardware context committed it (and that thread's speculation order),
// its global fetch sequence number, and the functional execution record the
// machine believes it committed.
type Record struct {
	Seq    uint64
	Thread int   // hardware context slot
	Order  int64 // thread speculation order (disambiguates slot reuse)
	Ex     isa.Exec
}

// Checker verifies the engine's useful commit stream against an Oracle in
// lockstep. The engine calls Note for every commit (useful or not yet known
// to be) to populate the per-thread history rings, and Verify for each
// commit once it is known to be useful, in program order. Verify steps the
// oracle one instruction and compares PC, next-PC, branch outcome, effective
// address, and destination/store value; the first mismatch produces a
// *Divergence whose report embeds the recent commit history of every thread.
type Checker struct {
	o       *Oracle
	window  int
	rings   map[int]*ring
	threads []int // ring keys in first-seen order
	lastSeq uint64
	started bool
	fatal   *Divergence
}

// DefaultWindow is the per-thread commit history kept for divergence
// reports when the configuration does not specify one.
const DefaultWindow = 8

// NewChecker builds a lockstep checker over a private oracle. window is the
// number of recent commits remembered per hardware context for the
// divergence dump (<= 0 selects DefaultWindow).
func NewChecker(prog *isa.Program, image *mem.Memory, window int) *Checker {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Checker{
		o:      New(prog, image),
		window: window,
		rings:  make(map[int]*ring),
	}
}

// Oracle returns the checker's reference machine.
func (c *Checker) Oracle() *Oracle { return c.o }

// Verified returns how many useful commits have been checked so far.
func (c *Checker) Verified() uint64 { return c.o.Steps() }

// Note records a commit in the reporting window without verifying it. The
// engine calls it for every commit, including commits of still-speculative
// threads that may later be discarded.
func (c *Checker) Note(r Record) {
	rg := c.rings[r.Thread]
	if rg == nil {
		rg = newRing(c.window)
		c.rings[r.Thread] = rg
		c.threads = append(c.threads, r.Thread)
	}
	rg.push(r)
}

// Verify checks one useful commit against the next oracle step. Calls must
// arrive in program order (strictly increasing Seq); the engine guarantees
// this by verifying a thread's commits only once all older threads' useful
// work has drained. A non-nil return is a *Divergence; once a divergence is
// recorded every later call returns the same error.
func (c *Checker) Verify(r Record) error {
	if c.fatal != nil {
		return c.fatal
	}
	if c.started && r.Seq <= c.lastSeq {
		return c.fail(r, isa.Exec{}, false,
			fmt.Sprintf("commit order violation: seq %d after seq %d", r.Seq, c.lastSeq))
	}
	c.started = true
	c.lastSeq = r.Seq

	want, ok := c.o.Step()
	if !ok {
		return c.fail(r, want, false,
			"oracle already halted: the machine committed a useful instruction past the end of the program")
	}
	if want == r.Ex {
		return nil
	}
	return c.fail(r, want, true, diffExec(r.Ex, want))
}

// Final compares end-of-run architectural state: the surviving thread's
// register file and the engine's drained memory image against the oracle's.
// It is meaningful only after the engine committed a HALT and Finalize
// drained the surviving overlay; if the oracle has not reached its own HALT
// (the commit stream was verified only as a prefix), Final reports that.
func (c *Checker) Final(regs [isa.NumRegs]uint64, image *mem.Memory) error {
	if c.fatal != nil {
		return c.fatal
	}
	if !c.o.Halted() {
		return fmt.Errorf("oracle: engine halted after %d verified commits but the oracle has not reached HALT (next pc %d)",
			c.Verified(), c.o.PC())
	}
	oregs := c.o.Regs()
	for r := 0; r < isa.NumRegs; r++ {
		if regs[r] != oregs[r] {
			return fmt.Errorf("oracle: final register %d = %#x, oracle has %#x", r, regs[r], oregs[r])
		}
	}
	if addr, diff := image.Diff(c.o.Mem()); diff {
		return fmt.Errorf("oracle: final memory differs at %#x: engine %#x, oracle %#x",
			addr, image.Load(addr, 8), c.o.Mem().Load(addr, 8))
	}
	return nil
}

func (c *Checker) fail(r Record, want isa.Exec, haveWant bool, reason string) error {
	d := &Divergence{
		N:       c.Verified(),
		Rec:     r,
		Want:    want,
		HasWant: haveWant,
		Reason:  reason,
		Dump:    c.dump(),
	}
	c.fatal = d
	return d
}

// dump renders the recent commit history of every hardware context.
func (c *Checker) dump() string {
	var b strings.Builder
	ids := append([]int(nil), c.threads...)
	sort.Ints(ids)
	for _, id := range ids {
		rg := c.rings[id]
		recs := rg.snapshot()
		fmt.Fprintf(&b, "  T%d (last %d commits):\n", id, len(recs))
		for _, r := range recs {
			fmt.Fprintf(&b, "    %s\n", formatRecord(r))
		}
	}
	return b.String()
}

// Divergence describes the first mismatch between the machine's useful
// commit stream and the oracle. Its Error string is a full report: the
// offending commit, the oracle's expectation, and the recent commit window
// of every hardware context.
type Divergence struct {
	N       uint64 // useful commits verified before this one
	Rec     Record // the machine's commit
	Want    isa.Exec
	HasWant bool // Want holds an oracle expectation (false for ordering faults)
	Reason  string
	Dump    string
}

func (d *Divergence) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "oracle divergence at useful commit #%d: %s\n", d.N, d.Reason)
	fmt.Fprintf(&b, "  got:  %s\n", formatRecord(d.Rec))
	if d.HasWant {
		fmt.Fprintf(&b, "  want: %s\n", formatExec(d.Want))
	}
	b.WriteString("recent commits by hardware context:\n")
	b.WriteString(d.Dump)
	return strings.TrimRight(b.String(), "\n")
}

// IsDivergence reports whether err's chain contains an oracle *Divergence.
// Callers distinguishing wrong-answer aborts (divergence) from exhausted
// recovery (a fault report) — exit codes, campaign assertions — use this
// rather than matching error strings.
func IsDivergence(err error) bool {
	var d *Divergence
	return errors.As(err, &d)
}

// diffExec names the mismatching fields between a committed execution
// record and the oracle's expectation for the same step.
func diffExec(got, want isa.Exec) string {
	var parts []string
	if got.PC != want.PC {
		parts = append(parts, fmt.Sprintf("pc %d != oracle %d", got.PC, want.PC))
	}
	if got.Inst != want.Inst {
		parts = append(parts, fmt.Sprintf("inst %q != oracle %q", got.Inst.String(), want.Inst.String()))
	}
	if got.NextPC != want.NextPC {
		parts = append(parts, fmt.Sprintf("next-pc %d != oracle %d", got.NextPC, want.NextPC))
	}
	if got.Taken != want.Taken {
		parts = append(parts, fmt.Sprintf("branch taken %v != oracle %v", got.Taken, want.Taken))
	}
	if got.Addr != want.Addr {
		parts = append(parts, fmt.Sprintf("addr %#x != oracle %#x", got.Addr, want.Addr))
	}
	if got.Value != want.Value {
		parts = append(parts, fmt.Sprintf("value %#x != oracle %#x", got.Value, want.Value))
	}
	if len(parts) == 0 {
		return "execution records differ"
	}
	return strings.Join(parts, "; ")
}

func formatRecord(r Record) string {
	return fmt.Sprintf("seq %-8d T%d/%d %s", r.Seq, r.Thread, r.Order, formatExec(r.Ex))
}

func formatExec(e isa.Exec) string {
	s := fmt.Sprintf("pc %-6d %-24s", e.PC, e.Inst.String())
	op := e.Inst.Op
	switch {
	case op.IsLoad():
		s += fmt.Sprintf(" [%#x] -> %#x", e.Addr, e.Value)
	case op.IsStore():
		s += fmt.Sprintf(" %#x -> [%#x]", e.Value, e.Addr)
	case op.IsBranch():
		s += fmt.Sprintf(" taken=%v next=%d", e.Taken, e.NextPC)
	case e.Inst.HasDest():
		s += fmt.Sprintf(" = %#x", e.Value)
	}
	return s
}

// ring is a fixed-capacity commit history.
type ring struct {
	buf  []Record
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]Record, n)} }

func (r *ring) push(rec Record) {
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the ring's contents oldest-first.
func (r *ring) snapshot() []Record {
	if !r.full {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
