// Package oracle provides the differential-checking net for the timing
// simulator: a standalone in-order functional interpreter over a private
// clone of the initial memory image (the Oracle), and a lockstep Checker
// that the pipeline feeds every useful committed instruction so any
// divergence between the out-of-order SMT machine and plain sequential
// execution is caught at the first wrong commit, not at the end of the run.
//
// The checker exists because the simulator's headline results are only as
// credible as its commit stream. Execution-driven simulators traditionally
// ship exactly this kind of functional checker; here it validates the
// execute-at-fetch contexts, the copy-on-write store-buffer overlays, the
// spawn/confirm/kill thread machinery, and the useful-commit accounting all
// at once, because an error in any of them surfaces as a committed
// instruction whose PC, destination value, or store effect differs from the
// in-order reference.
package oracle

import (
	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

// Oracle is the in-order reference machine: one functional context stepping
// a private clone of the workload's initial memory image. It has no timing,
// no speculation, and shares no mutable state with the engine under test.
type Oracle struct {
	ctx *isa.Context
	mem *mem.Memory
}

// New builds an oracle for prog. The image is cloned, so the caller may
// hand the original to the timing simulator; the two never alias.
func New(prog *isa.Program, image *mem.Memory) *Oracle {
	m := image.Clone()
	return &Oracle{ctx: isa.NewContext(prog, m), mem: m}
}

// Step executes the next instruction in order and returns its execution
// record. ok is false once the oracle has halted (HALT or end of program).
func (o *Oracle) Step() (isa.Exec, bool) { return o.ctx.Step() }

// PC returns the program counter of the next instruction to execute.
func (o *Oracle) PC() int64 { return o.ctx.PC }

// Halted reports whether the oracle has executed a HALT (or run off the end
// of the program).
func (o *Oracle) Halted() bool { return o.ctx.Halted }

// Steps returns the number of instructions the oracle has executed.
func (o *Oracle) Steps() uint64 { return o.ctx.Retired }

// Regs returns the oracle's architectural register file.
func (o *Oracle) Regs() [isa.NumRegs]uint64 { return o.ctx.R }

// Mem returns the oracle's private memory image. Callers must treat it as
// read-only; it is compared against the engine's image at end of run.
func (o *Oracle) Mem() *mem.Memory { return o.mem }
