// Package workload provides the synthetic stand-ins for the SPEC CPU2000
// benchmarks the paper evaluates. Seven parameterised archetypes — pointer
// chase, FP stream, sparse gather, cache-resident compute, hash lookup,
// branchy token processing, and block sort — are instantiated with
// per-benchmark working sets, value-reuse rates, and branch behaviour to
// mimic each SPEC program's memory-boundedness, load-value locality, and
// available ILP (the three axes the paper's results turn on).
package workload

import (
	"fmt"
	"math"
	"sort"

	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

// Suite labels a benchmark as SPEC INT or SPEC FP.
type Suite int

// Benchmark suites.
const (
	INT Suite = iota
	FP
)

func (s Suite) String() string {
	if s == FP {
		return "SPEC FP"
	}
	return "SPEC INT"
}

// Benchmark is a runnable synthetic kernel.
type Benchmark struct {
	Name  string
	Suite Suite
	Kind  string // archetype name
	build func(seed uint64) (*isa.Program, *mem.Memory)
}

// Build assembles the program and initialises its memory image. Every call
// returns fresh state; runs are deterministic in (benchmark, seed).
func (b Benchmark) Build(seed uint64) (*isa.Program, *mem.Memory) {
	return b.build(seed ^ nameHash(b.Name))
}

func nameHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var registry []Benchmark

func register(b Benchmark) { registry = append(registry, b) }

// All returns every registered benchmark, INT suite first, each suite in
// name order.
func All() []Benchmark {
	out := append([]Benchmark(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the benchmarks of one suite, in name order.
func BySuite(s Suite) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in All() order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// --- shared data-initialisation helpers -------------------------------------

// dataBase is where workload data begins; low addresses are left unused so
// stray null-pointer-style accesses in killed speculative threads read zero
// pages rather than workload data.
const dataBase = 1 << 20

// valuePool draws k reusable payload values; pool[0] is the dominant value
// (zero for integer pools, a fixed real for FP pools — mirroring the
// mostly-zero fields real value-prediction studies find). Integer pools are
// small-ish values; FP pools are bit patterns of well-behaved reals.
func valuePool(r *mem.Rand, k int, fp bool) []uint64 {
	pool := make([]uint64, k)
	for i := range pool {
		if fp {
			pool[i] = math.Float64bits(float64(r.Intn(1000)) / 8.0)
		} else {
			pool[i] = uint64(r.Intn(1 << 16))
		}
	}
	if fp {
		pool[0] = math.Float64bits(1.0)
	} else {
		pool[0] = 0
	}
	return pool
}

// drawValue models the value locality of real programs: with probability
// dominantPct/100 it returns the pool's dominant value (think mcf's
// mostly-zero cost fields or art's thresholded activations — this is what
// makes a load predictable under the paper's strict +1/−8 confidence); with
// probability reusePct/100 it returns some other pool value; otherwise a
// fresh pseudo-random value.
func drawValue(r *mem.Rand, pool []uint64, dominantPct, reusePct int, fp bool) uint64 {
	n := r.Intn(100)
	if n < dominantPct {
		return pool[0]
	}
	if n < dominantPct+reusePct && len(pool) > 1 {
		return pool[1+r.Intn(len(pool)-1)]
	}
	if fp {
		return math.Float64bits(r.Float64() * 1000)
	}
	return r.Next() >> 16
}

// permutation returns a random permutation of [0, n).
func permutation(r *mem.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// runPermutation returns a visiting order over [0, n) made of
// address-sequential runs spliced together in random order, such that a
// fraction seqPct/100 of steps advance to the next index and the rest jump
// to the start of another run.
func runPermutation(r *mem.Rand, n, seqPct int) []int {
	if seqPct <= 0 {
		return permutation(r, n)
	}
	// Cut [0, n) into runs with geometric lengths of mean 1/(1-p).
	var runs [][2]int // start, len
	start := 0
	length := 1
	for i := 1; i < n; i++ {
		if r.Intn(100) < seqPct {
			length++
			continue
		}
		runs = append(runs, [2]int{start, length})
		start, length = i, 1
	}
	runs = append(runs, [2]int{start, length})
	for i := len(runs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		runs[i], runs[j] = runs[j], runs[i]
	}
	order := make([]int, 0, n)
	for _, run := range runs {
		for k := 0; k < run[1]; k++ {
			order = append(order, run[0]+k)
		}
	}
	return order
}
