package workload

import (
	"testing"

	"mtvp/internal/isa"
	"mtvp/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 26 {
		t.Fatalf("only %d benchmarks registered", len(all))
	}
	ints, fps := BySuite(INT), BySuite(FP)
	if len(ints) < 12 || len(fps) < 12 {
		t.Errorf("suite sizes: %d INT, %d FP", len(ints), len(fps))
	}
	// The paper's headline benchmarks must exist.
	for _, name := range []string{"mcf", "vpr r", "parser", "swim", "art 1", "gcc 1", "crafty"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing benchmark %q", name)
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
	}
	if len(Names()) != len(all) {
		t.Error("Names() length mismatch")
	}
}

func TestEveryBenchmarkBuildsAndRuns(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, image := b.Build(1)
			if len(prog.Insts) == 0 {
				t.Fatal("empty program")
			}
			ctx := isa.NewContext(prog, image)
			n := ctx.Run(30_000)
			if n != 30_000 && !ctx.Halted {
				t.Fatalf("stopped after %d insts without halting", n)
			}
			if ctx.Halted {
				t.Fatalf("halted after only %d insts — suite kernels must run far past any budget", n)
			}
		})
	}
}

func TestBuildDeterminism(t *testing.T) {
	b, _ := ByName("mcf")
	p1, m1 := b.Build(3)
	p2, m2 := b.Build(3)
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatal("program lengths differ between builds")
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	if !m1.Equal(m2) {
		t.Error("memory images differ between identical builds")
	}
	_, m3 := b.Build(4)
	if m1.Equal(m3) {
		t.Error("different seeds produced identical images")
	}
}

func TestSeedsMixedPerBenchmark(t *testing.T) {
	// Two benchmarks with the same user seed must still get different
	// data (the name is folded into the seed).
	a, _ := ByName("art 1")
	b, _ := ByName("art 4")
	_, ma := a.Build(1)
	_, mb := b.Build(1)
	if ma.Equal(mb) {
		t.Error("distinct benchmarks share a memory image")
	}
}

func TestRunPermutationCoversAll(t *testing.T) {
	r := mem.NewRand(5)
	for _, seqPct := range []int{0, 50, 88, 100} {
		order := runPermutation(r, 1000, seqPct)
		if len(order) != 1000 {
			t.Fatalf("seqPct %d: length %d", seqPct, len(order))
		}
		seen := make([]bool, 1000)
		for _, v := range order {
			if v < 0 || v >= 1000 || seen[v] {
				t.Fatalf("seqPct %d: bad or repeated index %d", seqPct, v)
			}
			seen[v] = true
		}
	}
}

func TestRunPermutationSequentialFraction(t *testing.T) {
	r := mem.NewRand(7)
	order := runPermutation(r, 50_000, 85)
	seq := 0
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1]+1 {
			seq++
		}
	}
	frac := float64(seq) / float64(len(order)-1)
	if frac < 0.80 || frac > 0.90 {
		t.Errorf("sequential fraction %.3f, want ~0.85", frac)
	}
}

func TestDrawValueDistribution(t *testing.T) {
	r := mem.NewRand(9)
	pool := valuePool(r, 8, false)
	if pool[0] != 0 {
		t.Errorf("dominant integer pool value = %d, want 0", pool[0])
	}
	dominant, reused := 0, 0
	const n = 100_000
	inPool := func(v uint64) bool {
		for _, p := range pool[1:] {
			if p == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		v := drawValue(r, pool, 70, 20, false)
		switch {
		case v == pool[0]:
			dominant++
		case inPool(v):
			reused++
		}
	}
	if f := float64(dominant) / n; f < 0.67 || f > 0.73 {
		t.Errorf("dominant fraction %.3f, want ~0.70", f)
	}
	if f := float64(reused) / n; f < 0.16 || f > 0.24 {
		t.Errorf("reuse fraction %.3f, want ~0.20", f)
	}
}

// TestChaseAccumulatorMatchesDirectWalk verifies the pointer-chase kernel's
// functional semantics against an independent walk of the initialised
// memory image.
func TestChaseAccumulatorMatchesDirectWalk(t *testing.T) {
	p := ChaseParams{
		Nodes: 64, NodeBytes: 64, PoolSize: 4,
		DominantPct: 60, ReusePct: 20, SeqPct: 50, BodyOps: 4, Iters: 2,
	}
	b := PointerChase("t", INT, p)
	prog, image := b.Build(11)

	// Independent walk over a clone (the kernel stores into nodes).
	walk := image.Clone()
	cur := walkStart(t, prog)
	var acc uint64
	for it := 0; it < int(p.Iters); it++ {
		for n := 0; n < p.Nodes; n++ {
			val := walk.Load(cur+8, 8)
			acc += val
			if val&1 == 1 {
				acc += 7
			}
			cur = walk.Load(cur, 8)
		}
	}

	ctx := isa.NewContext(prog, image)
	ctx.Run(1 << 30)
	if !ctx.Halted {
		t.Fatal("did not halt")
	}
	if got := image.Load(resultBase, 8); got != acc {
		t.Errorf("kernel accumulator %#x, direct walk %#x", got, acc)
	}
}

// walkStart extracts the start node address from the program's Liu.
func walkStart(t *testing.T, prog *isa.Program) uint64 {
	t.Helper()
	// The chase kernel's first LI into R1 after the filler init holds the
	// start address.
	for _, in := range prog.Insts {
		if in.Op == isa.LI && in.Rd == isa.R1 {
			return uint64(in.Imm)
		}
	}
	t.Fatal("no start-address LI found")
	return 0
}

func TestWorkingSetScales(t *testing.T) {
	small := Gather("s", FP, GatherParams{
		Items: 1024, TableLen: 1 << 10, PoolSize: 4,
		DominantPct: 80, ReusePct: 10, FPData: true, Iters: 1,
	})
	large := Gather("l", FP, GatherParams{
		Items: 1024, TableLen: 1 << 16, PoolSize: 4,
		DominantPct: 80, ReusePct: 10, FPData: true, Iters: 1,
	})
	_, ms := small.Build(1)
	_, ml := large.Build(1)
	if ml.Pages() <= ms.Pages() {
		t.Errorf("large table pages %d <= small %d", ml.Pages(), ms.Pages())
	}
}
