package workload

// This file instantiates the SPEC CPU2000 stand-ins. Parameters are chosen
// to place each benchmark where the paper's data places it along three
// axes: memory-boundedness (table/working-set size vs the 4MB L3),
// load-value locality (DominantPct/ReusePct — what fraction of loads a
// strict-confidence predictor can cover), and available ILP / branchiness.
//
// The long pass counts (iters) are effectively infinite: experiment runs
// stop on a committed-instruction budget, so every run samples the kernel's
// steady state, like the paper's SimPoint windows.

const iters = 1 << 20

func init() {
	// ---- SPEC INT ----------------------------------------------------

	// gzip: hash-table compression. Dictionary updates churn the table, so
	// value locality is moderate; the table spills the L2.
	register(Hash("gzip g", INT, HashParams{
		InputLen: 64 << 10, TableLen: 1 << 17, PoolSize: 24,
		DominantPct: 55, ReusePct: 25, Update: true, BodyOps: 40, Iters: iters,
	}))
	register(Hash("gzip r", INT, HashParams{
		InputLen: 64 << 10, TableLen: 1 << 18, PoolSize: 24,
		DominantPct: 40, ReusePct: 25, Update: true, BodyOps: 40, Iters: iters,
	}))

	// vpr: placement/routing — scattered reads of a large routing-resource
	// table with strongly repeated costs. The paper's realistic-predictor
	// standout (224%+).
	register(Gather("vpr r", INT, GatherParams{
		Items: 64 << 10, TableLen: 1 << 20, PoolSize: 12,
		DominantPct: 92, ReusePct: 5, StoreOut: true, BodyOps: 50, Iters: iters,
	}))

	// gcc inputs: branchy token processing over small tables; little
	// memory stall, so value prediction has little traction.
	register(Branchy("gcc 1", INT, BranchyParams{
		Tokens: 64 << 10, Classes: 4, BiasPct: 60, TableLen: 1 << 12, Iters: iters,
	}))
	register(Branchy("gcc 2", INT, BranchyParams{
		Tokens: 64 << 10, Classes: 5, BiasPct: 45, TableLen: 1 << 13, Iters: iters,
	}))
	register(Branchy("gcc e", INT, BranchyParams{
		Tokens: 48 << 10, Classes: 3, BiasPct: 70, TableLen: 1 << 12, Iters: iters,
	}))
	register(Branchy("gcc i", INT, BranchyParams{
		Tokens: 64 << 10, Classes: 4, BiasPct: 50, TableLen: 1 << 14, Iters: iters,
	}))

	// mcf: the canonical pointer chaser — a 16MB arc network walked in
	// randomised order, with mostly-zero cost fields. Misses to memory on
	// nearly every node; huge MTVP headroom.
	register(PointerChase("mcf", INT, ChaseParams{
		Nodes: 1 << 18, NodeBytes: 64, PoolSize: 8,
		DominantPct: 93, ReusePct: 4, SeqPct: 88, BodyOps: 70, Iters: iters,
	}))

	// crafty: bitboard chess — cache-resident, multiply-heavy.
	register(Blocked("crafty", INT, BlockedParams{
		WorkingSet: 32 << 10, MulChain: 3, Iters: iters,
	}))

	// parser: dictionary linked lists, mid-sized, moderately repeated
	// payloads.
	register(PointerChase("parser", INT, ChaseParams{
		Nodes: 1 << 16, NodeBytes: 64, PoolSize: 16,
		DominantPct: 88, ReusePct: 8, SeqPct: 60, BodyOps: 55, Iters: iters,
	}))

	// eon: C++ ray tracing — cache-resident FP-flavoured compute.
	register(Blocked("eon r", INT, BlockedParams{
		WorkingSet: 48 << 10, MulChain: 2, FP: true, Iters: iters,
	}))

	// perlbmk: hash-driven interpreter state, mostly L2-resident.
	register(Hash("perlbmk", INT, HashParams{
		InputLen: 32 << 10, TableLen: 1 << 14, PoolSize: 24,
		DominantPct: 70, ReusePct: 15, BodyOps: 35, Iters: iters,
	}))

	// gap: computer algebra over large integer vectors — streaming.
	register(Stream("gap", INT, StreamParams{
		Arrays: 2, Len: 128 << 10, BlockLen: 16, PoolSize: 16,
		DominantPct: 60, ReusePct: 20, Stride: 8, BodyOps: 25, Iters: iters,
	}))

	// vortex: object database — large lookup structures with highly
	// repeated fields.
	register(Hash("vortex", INT, HashParams{
		InputLen: 64 << 10, TableLen: 1 << 19, PoolSize: 12,
		DominantPct: 90, ReusePct: 6, BodyOps: 45, Iters: iters,
	}))

	// bzip2: block sorting with data-dependent secondary accesses.
	register(BlockSort("bzip g", INT, SortParams{
		BufLen: 1 << 19, Window: 1 << 10, BodyOps: 30, Iters: iters,
	}))
	register(BlockSort("bzip p", INT, SortParams{
		BufLen: 1 << 20, Window: 1 << 12, BodyOps: 30, Iters: iters,
	}))

	// twolf: annealing over a mid-sized cell grid; mostly cache-resident.
	register(Blocked("twolf", INT, BlockedParams{
		WorkingSet: 96 << 10, MulChain: 1, Iters: iters,
	}))

	// ---- SPEC FP -----------------------------------------------------

	// wupwise: lattice QCD — dense streams with smooth (run-repeated)
	// values.
	register(Stream("wupwise", FP, StreamParams{
		Arrays: 6, Len: 128 << 10, BlockLen: 32, PoolSize: 12,
		DominantPct: 55, ReusePct: 30, Stride: 8, BodyOps: 30, FP: true, Iters: iters,
	}))

	// swim: shallow water — large piecewise-smooth grids; the prefetcher
	// catches the strides but plane boundaries break it, and values are
	// highly run-repeated (131% in Figure 3).
	register(Stream("swim", FP, StreamParams{
		Arrays: 9, Len: 96 << 10, BlockLen: 64, PoolSize: 8,
		DominantPct: 80, ReusePct: 15, Stride: 8,
		JumpEvery: 512, JumpBytes: 4096, BodyOps: 35, FP: true, Iters: iters,
	}))

	// mgrid: multigrid — frequent plane jumps defeat the stride tables.
	register(Stream("mgrid", FP, StreamParams{
		Arrays: 3, Len: 128 << 10, BlockLen: 16, PoolSize: 12,
		DominantPct: 60, ReusePct: 25, Stride: 8,
		JumpEvery: 64, JumpBytes: 8192, BodyOps: 30, FP: true, Iters: iters,
	}))

	// applu: SSOR solver — wider-strided streams.
	register(Stream("applu", FP, StreamParams{
		Arrays: 5, Len: 96 << 10, BlockLen: 48, PoolSize: 12,
		DominantPct: 55, ReusePct: 25, Stride: 16, BodyOps: 35, FP: true, Iters: iters,
	}))

	// mesa: software rasteriser — cache-resident FP.
	register(Blocked("mesa", FP, BlockedParams{
		WorkingSet: 64 << 10, MulChain: 2, FP: true, Iters: iters,
	}))

	// galgel: fluid dynamics with gather-style sparse access.
	register(Gather("galgel", FP, GatherParams{
		Items: 64 << 10, TableLen: 1 << 19, PoolSize: 16,
		DominantPct: 75, ReusePct: 15, FPData: true, BodyOps: 40, Iters: iters,
	}))

	// art: neural network — huge gather tables of thresholded (massively
	// repeated) activations; the paper's biggest winner.
	register(Gather("art 1", FP, GatherParams{
		Items: 96 << 10, TableLen: 1 << 21, PoolSize: 6,
		DominantPct: 93, ReusePct: 5, FPData: true, StoreOut: true, BodyOps: 45, Iters: iters,
	}))
	register(Gather("art 4", FP, GatherParams{
		Items: 96 << 10, TableLen: 1 << 21, PoolSize: 6,
		DominantPct: 88, ReusePct: 8, FPData: true, StoreOut: true, BodyOps: 45, Iters: iters,
	}))

	// equake: sparse matrix-vector — indirect, moderate value reuse.
	register(Gather("equake", FP, GatherParams{
		Items: 64 << 10, TableLen: 1 << 20, PoolSize: 24,
		DominantPct: 60, ReusePct: 20, FPData: true, BodyOps: 50, Iters: iters,
	}))

	// facerec: image-graph matching — gathers over a mid-sized model.
	register(Gather("facerec", FP, GatherParams{
		Items: 64 << 10, TableLen: 1 << 19, PoolSize: 20,
		DominantPct: 70, ReusePct: 15, FPData: true, BodyOps: 40, Iters: iters,
	}))

	// ammp: molecular dynamics — pointer-linked atom lists with FP
	// payloads.
	register(PointerChase("ammp", FP, ChaseParams{
		Nodes: 1 << 17, NodeBytes: 64, PoolSize: 12,
		DominantPct: 85, ReusePct: 8, SeqPct: 72, BodyOps: 50, FPVal: true, Iters: iters,
	}))

	// lucas: Lucas-Lehmer FFT — large-stride sweeps (one element per
	// line), hard on the L1 but stride-learnable.
	register(Stream("lucas", FP, StreamParams{
		Arrays: 2, Len: 64 << 10, BlockLen: 32, PoolSize: 16,
		DominantPct: 50, ReusePct: 25, Stride: 64, BodyOps: 25, FP: true, Iters: iters,
	}))

	// fma3d: crash simulation — many medium streams.
	register(Stream("fma3d", FP, StreamParams{
		Arrays: 8, Len: 64 << 10, BlockLen: 48, PoolSize: 16,
		DominantPct: 50, ReusePct: 25, Stride: 24, BodyOps: 30, FP: true, Iters: iters,
	}))

	// sixtrack: particle tracking — long FP dependence chains, resident.
	register(Blocked("sixtrack", FP, BlockedParams{
		WorkingSet: 128 << 10, MulChain: 4, FP: true, Iters: iters,
	}))

	// apsi: pollution modelling — streams with occasional plane breaks.
	register(Stream("apsi", FP, StreamParams{
		Arrays: 4, Len: 96 << 10, BlockLen: 40, PoolSize: 16,
		DominantPct: 60, ReusePct: 20, Stride: 8,
		JumpEvery: 256, JumpBytes: 2048, BodyOps: 30, FP: true, Iters: iters,
	}))
}
